#include "src/packer/packer.h"

#include <stdexcept>

#include "src/bytecode/assembler.h"
#include "src/bytecode/insn.h"
#include "src/bytecode/remap.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"

namespace dexlego::packer {

using bc::MethodAssembler;
using bc::Op;

std::vector<PackerSpec> table1_packers() {
  // Designated initializers: unspecified members take their defaults.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"
  std::vector<PackerSpec> packers;
  packers.push_back({.vendor = "360", .key = 0x5a});
  packers.push_back({.vendor = "Alibaba", .key = 0x33, .anti_debug = true});
  packers.push_back({.vendor = "Tencent", .key = 0x77, .partitions = 3});
  packers.push_back({.vendor = "Baidu", .key = 0xc1});
  packers.push_back(
      {.vendor = "Bangcle", .key = 0x2f, .self_modifying_stub = true});
  packers.push_back(
      {.vendor = "NetQin", .unavailable_reason = "The service is offline now"});
  packers.push_back({.vendor = "APKProtect",
                     .unavailable_reason = "Unresponsive to packing requests"});
  packers.push_back({.vendor = "Ijiami",
                     .unavailable_reason = "Samples are rejected by human agents"});
#pragma GCC diagnostic pop
  return packers;
}

PackerSpec packer_360() { return table1_packers()[0]; }

std::string shell_class(const PackerSpec& spec) {
  return "Lpacker/" + spec.vendor + "/Shell;";
}

namespace {

std::vector<uint8_t> rolling_xor(std::vector<uint8_t> data, uint8_t key) {
  uint8_t rolling = key;
  for (uint8_t& b : data) {
    b ^= rolling;
    rolling = static_cast<uint8_t>(rolling * 31 + 7);
  }
  return data;
}

// Builds the shell DEX: an Activity that decrypts + loads the payload
// partitions and proxies the lifecycle into the original entry activity.
dex::DexFile build_shell(const PackerSpec& spec, const std::string& orig_entry,
                         int partitions) {
  dex::DexBuilder b;
  std::string shell = shell_class(spec);

  uint32_t load = b.intern_method("Ldalvik/system/DexClassLoader;",
                                  "loadFromAsset", "V",
                                  {"Ljava/lang/String;", "I"});
  uint32_t forname = b.intern_method("Ljava/lang/Class;", "forName",
                                     "Ljava/lang/Class;", {"Ljava/lang/String;"});
  uint32_t newinst = b.intern_method("Ljava/lang/Class;", "newInstance",
                                     "Ljava/lang/Object;", {});
  uint32_t getm = b.intern_method("Ljava/lang/Class;", "getMethod",
                                  "Ljava/lang/reflect/Method;",
                                  {"Ljava/lang/String;"});
  uint32_t invoke_m = b.intern_method("Ljava/lang/reflect/Method;", "invoke",
                                      "Ljava/lang/Object;", {"Ljava/lang/Object;"});
  uint32_t is_emu = b.intern_method("Landroid/os/Build;", "isEmulator", "I", {});
  uint32_t noise_m = b.intern_method(shell, "shellNoise", "V", {});
  uint32_t tamper_m = b.intern_method(shell, "antiTamper", "V", {});
  uint32_t entry_s = b.intern_string(orig_entry);

  b.start_class(shell, "Landroid/app/Activity;");
  b.add_instance_field("target", "Ljava/lang/Object;");
  b.add_instance_field("targetCls", "Ljava/lang/Class;");
  uint32_t f_target = b.intern_field(shell, "Ljava/lang/Object;", "target");
  uint32_t f_cls = b.intern_field(shell, "Ljava/lang/Class;", "targetCls");

  if (spec.self_modifying_stub) {
    // shellNoise: a 2-iteration loop whose const operand the native
    // antiTamper flips between iterations — packer code that self-modifies
    // while unpacking (no clean "all code released" point).
    MethodAssembler as(4, 1);  // this in v3
    auto loop = as.make_label();
    auto done = as.make_label();
    as.const16(1, 0);
    as.const16(2, 2);
    as.bind(loop);
    as.if_test(Op::kIfGe, 1, 2, done);
    as.const16(0, 0);  // patch site: antiTamper flips the literal
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(tamper_m),
              {static_cast<uint8_t>(3)});
    as.add_lit8(1, 1, 1);
    as.goto_(loop);
    as.bind(done);
    as.return_void();
    b.add_virtual_method("shellNoise", "V", {}, as.finish());
    b.add_native_method("antiTamper", "V", {});
  }

  {
    // onCreate: [probe] [self-mod noise] load partitions, then
    // target = forName(entry).newInstance(); targetCls = cls;
    // getMethod(cls, "onCreate").invoke(target)
    MethodAssembler as(5, 1);  // this in v4
    if (spec.anti_debug) {
      as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(is_emu), {});
      as.move_result(0);  // probed and ignored: packers log, we proceed
    }
    if (spec.self_modifying_stub) {
      as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(noise_m), {4});
    }
    for (int p = 0; p < partitions; ++p) {
      uint32_t asset = b.intern_string("assets/" + spec.vendor + "/p" +
                                       std::to_string(p) + ".bin");
      as.const_string(0, static_cast<uint16_t>(asset));
      as.const16(1, spec.key);
      as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(load), {0, 1});
    }
    as.const_string(0, static_cast<uint16_t>(entry_s));
    as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(forname), {0});
    as.move_result(0);  // v0 = Class
    as.iput(0, 4, static_cast<uint16_t>(f_cls));
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(newinst), {0});
    as.move_result(1);  // v1 = instance
    as.iput(1, 4, static_cast<uint16_t>(f_target));
    uint32_t oncreate_s = b.intern_string("onCreate");
    as.const_string(2, static_cast<uint16_t>(oncreate_s));
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(getm), {0, 2});
    as.move_result(2);
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(invoke_m), {2, 1});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }

  // Lifecycle proxies: invoke the same-named method on the unpacked target,
  // tolerating targets that do not define it.
  for (const char* stage : {"onStart", "onResume", "onPause", "onDestroy"}) {
    MethodAssembler as(4, 1);  // this in v3
    auto out = as.make_label();
    auto handler = as.make_label();
    uint32_t stage_s = b.intern_string(stage);
    as.iget(0, 3, static_cast<uint16_t>(f_target));
    as.if_testz(Op::kIfEqz, 0, out);
    as.begin_try();
    as.iget(1, 3, static_cast<uint16_t>(f_cls));
    as.const_string(2, static_cast<uint16_t>(stage_s));
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(getm), {1, 2});
    as.move_result(1);
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(invoke_m), {1, 0});
    as.end_try(handler);
    as.bind(out);
    as.return_void();
    as.bind(handler);
    as.move_exception(0);
    as.return_void();
    b.add_virtual_method(stage, "V", {}, as.finish());
  }
  return std::move(b).build();
}

}  // namespace

std::optional<dex::Apk> pack(const dex::Apk& original, const PackerSpec& spec) {
  if (!spec.available()) return std::nullopt;

  dex::DexFile orig = dex::load_classes(original);
  dex::Manifest manifest = original.manifest();
  if (manifest.entry_class.empty()) {
    throw std::invalid_argument("packing requires a manifest entry class");
  }

  // Split the original into `partitions` payload DEX files (class-wise
  // packing loads them piecewise — no single release point).
  int partitions =
      std::min<int>(spec.partitions, static_cast<int>(orig.classes.size()));
  if (partitions < 1) partitions = 1;
  std::vector<dex::DexBuilder> parts;
  for (int p = 0; p < partitions; ++p) parts.emplace_back();
  for (size_t i = 0; i < orig.classes.size(); ++i) {
    bc::copy_class(orig, orig.classes[i], parts[i % partitions]);
  }

  dex::Apk packed = original;  // keep manifest extras + existing assets
  for (int p = 0; p < partitions; ++p) {
    std::vector<uint8_t> payload =
        dex::write_dex(std::move(parts[static_cast<size_t>(p)]).build());
    packed.set_entry("assets/" + spec.vendor + "/p" + std::to_string(p) + ".bin",
                     rolling_xor(std::move(payload), spec.key));
  }
  packed.set_classes(
      dex::write_dex(build_shell(spec, manifest.entry_class, partitions)));

  dex::Manifest shell_manifest = manifest;
  shell_manifest.entry_class = shell_class(spec);
  packed.set_manifest(shell_manifest);
  return packed;
}

void register_packer_natives(rt::Runtime& rt) {
  for (const PackerSpec& spec : table1_packers()) {
    if (!spec.self_modifying_stub) continue;
    std::string shell = shell_class(spec);
    rt.register_native(
        shell + "->antiTamper", [shell](rt::NativeContext& ctx, std::span<rt::Value>) {
          rt::RtClass* cls = ctx.runtime.linker().resolve(shell);
          if (cls == nullptr) return rt::Value::Null();
          rt::RtMethod* noise = cls->find_declared("shellNoise");
          if (noise == nullptr || !noise->code) return rt::Value::Null();
          // Flip the literal of the first const/16 in shellNoise.
          std::span<const uint16_t> insns(noise->code->insns);
          size_t pc = 0;
          while (pc < insns.size()) {
            bc::Insn insn = bc::decode_at(insns, pc);
            if (insn.op == Op::kConst16 && insn.a == 0) {
              noise->patch_code_unit(pc + 1, noise->code->insns[pc + 1] ^ 1);
              break;
            }
            pc += insn.width;
          }
          return rt::Value::Null();
        });
  }
}

}  // namespace dexlego::packer
