// Commercial-packer analogs (Table I). Each preset reproduces the public
// mechanism of one packing service the paper tested: the original DEX is
// encrypted into APK assets, classes.ldex is replaced with a shell whose
// entry activity decrypts and dynamically loads the payload at runtime, then
// transfers control to the original entry activity through reflection —
// exactly the "replaces the original DEX file with a shell DEX file and
// dynamically releases the original at runtime" flow of Section I.
//
// Vendor differences modelled:
//   360      — whole-DEX rolling-xor shell (the preset Table III uses).
//   Alibaba  — whole-DEX shell + anti-debug probe in the stub.
//   Tencent  — class-wise packing: the DEX is split into partitions that are
//              decrypted and loaded separately (no single release point).
//   Baidu    — whole-DEX shell with a different key schedule.
//   Bangcle  — shell whose stub *self-modifies* (a native patches the stub's
//              own bytecode during unpacking), interleaving packer code and
//              app code the way Section I warns about.
// NetQin, APKProtect and Ijiami were already unavailable in the paper
// (service offline / unresponsive / human-rejected); they are reported as
// unavailable here too rather than fabricated.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::packer {

struct PackerSpec {
  std::string vendor;       // "360", "Alibaba", ...
  uint8_t key = 0;          // asset encryption key (0 = service unavailable)
  int partitions = 1;       // >1 = class-wise packing
  bool anti_debug = false;  // stub probes the environment first
  bool self_modifying_stub = false;  // stub native patches its own bytecode
  std::string unavailable_reason;    // non-empty: cannot pack (Table I rows)

  bool available() const { return unavailable_reason.empty(); }
};

// The eight packers of Table I (five working presets + three unavailable).
std::vector<PackerSpec> table1_packers();
// The preset used for the packed-suite experiment (Table III): "360".
PackerSpec packer_360();

// Packs an APK: returns the shell APK, or nullopt when the service is
// unavailable. Throws std::invalid_argument on malformed input.
std::optional<dex::Apk> pack(const dex::Apk& original, const PackerSpec& spec);

// Registers the native methods packer stubs rely on (the vendors' .so
// analog). Must be called on any runtime that executes packed apps.
void register_packer_natives(rt::Runtime& rt);

// Descriptor of the shell entry activity for a vendor.
std::string shell_class(const PackerSpec& spec);

}  // namespace dexlego::packer
