// Monotonic timing helpers shared by the batch-pipeline stats
// (src/pipeline/batch.h) and the bench binaries (via bench/bench_util.h).
// Wall time is steady_clock so measurements never go backwards under NTP
// adjustments; CPU time is per-thread (CLOCK_THREAD_CPUTIME_ID) so parallel
// workers report their own consumption, not the whole process's.
#pragma once

#include <chrono>
#include <cmath>
#include <ctime>
#include <utility>
#include <vector>

namespace dexlego::support {

// Wall-clock stopwatch on the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// CPU time consumed by the calling thread, in milliseconds. Returns 0.0 on
// platforms without a per-thread CPU clock.
inline double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) / 1e6;
  }
#endif
  return 0.0;
}

// Runs `fn` once and returns its wall time in milliseconds.
template <typename Fn>
double time_call_ms(Fn&& fn) {
  Stopwatch sw;
  std::forward<Fn>(fn)();
  return sw.elapsed_ms();
}

// Mean / standard deviation of a sample set (population stddev, matching the
// paper's launch-time tables).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};

inline MeanStd mean_std(const std::vector<double>& samples) {
  MeanStd out;
  if (samples.empty()) return out;
  for (double v : samples) out.mean += v;
  out.mean /= static_cast<double>(samples.size());
  for (double v : samples) out.stddev += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(out.stddev / static_cast<double>(samples.size()));
  return out;
}

}  // namespace dexlego::support
