#include "src/support/hash.h"

namespace dexlego::support {

uint32_t adler32(std::span<const uint8_t> data) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = 1, b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % kMod;
    b = (b + a) % kMod;
  }
  return (b << 16) | a;
}

std::array<uint8_t, 20> sha1(std::span<const uint8_t> data) {
  // Straight FIPS 180-1 implementation: 512-bit blocks, 80-round compression.
  uint32_t h[5] = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u,
                   0xc3d2e1f0u};
  // Message + 0x80 + zero pad + 64-bit bit length, padded to a block multiple.
  uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  size_t padded = ((data.size() + 8) / 64 + 1) * 64;
  auto byte_at = [&](size_t i) -> uint8_t {
    if (i < data.size()) return data[i];
    if (i == data.size()) return 0x80;
    if (i >= padded - 8) return static_cast<uint8_t>(bit_len >> (8 * (padded - 1 - i)));
    return 0;
  };
  auto rol = [](uint32_t v, int n) { return (v << n) | (v >> (32 - n)); };
  for (size_t block = 0; block < padded; block += 64) {
    uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
      size_t i = block + static_cast<size_t>(t) * 4;
      w[t] = (static_cast<uint32_t>(byte_at(i)) << 24) |
             (static_cast<uint32_t>(byte_at(i + 1)) << 16) |
             (static_cast<uint32_t>(byte_at(i + 2)) << 8) |
             static_cast<uint32_t>(byte_at(i + 3));
    }
    for (int t = 16; t < 80; ++t) {
      w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      uint32_t f, k;
      if (t < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdcu;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6u;
      }
      uint32_t tmp = rol(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rol(b, 30);
      b = a;
      a = tmp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  std::array<uint8_t, 20> digest;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) {
      digest[static_cast<size_t>(i * 4 + j)] =
          static_cast<uint8_t>(h[i] >> (24 - 8 * j));
    }
  }
  return digest;
}

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}

uint64_t fnv1a(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a(std::string_view s) {
  return fnv1a(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                                        s.size()));
}

void Fnv1a::add(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xff;
    h_ *= kFnvPrime;
  }
}

void Fnv1a::add_bytes(std::span<const uint8_t> data) {
  for (uint8_t byte : data) {
    h_ ^= byte;
    h_ *= kFnvPrime;
  }
}

}  // namespace dexlego::support
