#include "src/support/hash.h"

namespace dexlego::support {

uint32_t adler32(std::span<const uint8_t> data) {
  constexpr uint32_t kMod = 65521;
  uint32_t a = 1, b = 0;
  for (uint8_t byte : data) {
    a = (a + byte) % kMod;
    b = (b + a) % kMod;
  }
  return (b << 16) | a;
}

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}

uint64_t fnv1a(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t byte : data) {
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t fnv1a(std::string_view s) {
  return fnv1a(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()),
                                        s.size()));
}

void Fnv1a::add(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xff;
    h_ *= kFnvPrime;
  }
}

void Fnv1a::add_bytes(std::span<const uint8_t> data) {
  for (uint8_t byte : data) {
    h_ ^= byte;
    h_ *= kFnvPrime;
  }
}

}  // namespace dexlego::support
