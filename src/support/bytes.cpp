#include "src/support/bytes.h"

#include <fstream>

namespace dexlego::support {

void ByteWriter::u16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void ByteWriter::bytes(std::span<const uint8_t> data) { raw(data.data(), data.size()); }

void ByteWriter::raw(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::align(size_t alignment) {
  while (buf_.size() % alignment != 0) buf_.push_back(0);
}

void ByteWriter::patch_u32(size_t offset, uint32_t v) {
  if (offset + 4 > buf_.size()) throw std::logic_error("patch_u32 out of range");
  for (int i = 0; i < 4; ++i) buf_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
}

void ByteReader::need(size_t n) const {
  // Subtract rather than add: `pos_ + n` can wrap for hostile sizes (e.g. a
  // length field of SIZE_MAX), which would silently pass the check and read
  // out of bounds.
  if (n > data_.size() - pos_) throw ParseError("unexpected end of data");
}

uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

uint16_t ByteReader::u16() {
  need(2);
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

uint32_t ByteReader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t ByteReader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string ByteReader::str() {
  uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<uint8_t> ByteReader::bytes(size_t n) {
  need(n);
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void ByteReader::seek(size_t pos) {
  if (pos > data_.size()) throw ParseError("seek out of range");
  pos_ = pos;
}

void ByteReader::skip(size_t n) {
  need(n);
  pos_ += n;
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open file for read: " + path);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open file for write: " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace dexlego::support
