// Checksums used by the LDEX container (adler32, mirroring real DEX headers),
// SHA-1 for the real-DEX header signature field, and fast non-cryptographic
// hashing for dedup of collection trees.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace dexlego::support {

// Adler-32 as used in the real DEX header checksum field.
uint32_t adler32(std::span<const uint8_t> data);

// SHA-1 as used in the real DEX header signature field (20 bytes).
std::array<uint8_t, 20> sha1(std::span<const uint8_t> data);

// FNV-1a 64-bit, used to fingerprint instruction arrays / collection trees.
uint64_t fnv1a(std::span<const uint8_t> data);
uint64_t fnv1a(std::string_view s);

// Incremental FNV-1a combiner for hashing structured data.
class Fnv1a {
 public:
  void add(uint64_t v);
  void add_bytes(std::span<const uint8_t> data);
  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace dexlego::support
