// Deterministic RNG (splitmix64) so that sample generation, fuzzing and
// packer key derivation are reproducible run-to-run. Header-only.
#pragma once

#include <cstdint>

namespace dexlego::support {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) { return next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // Fork an independent stream (for per-sample generators).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

 private:
  uint64_t state_;
};

}  // namespace dexlego::support
