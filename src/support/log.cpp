#include "src/support/log.h"

#include <atomic>
#include <cstdio>

namespace dexlego::support {

namespace {
// Atomic: pipeline worker threads read the level while a main thread may
// still be configuring it.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace dexlego::support
