// Byte-level serialization helpers shared by the LDEX writer/reader, the
// collection-file format and the .lapk archive. Little-endian throughout.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dexlego::support {

// Thrown by ByteReader on any out-of-bounds or malformed read. The LDEX
// reader converts this into a verification failure instead of crashing.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

// Append-only growable buffer with positional patching (used to backfill
// offsets in headers once section sizes are known).
class ByteWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

  // Length-prefixed UTF-8 string (u32 length + bytes, no terminator).
  void str(std::string_view s);
  void bytes(std::span<const uint8_t> data);
  void raw(const void* data, size_t n);

  // Pad with zero bytes until the buffer size is a multiple of `alignment`.
  void align(size_t alignment);

  size_t size() const { return buf_.size(); }
  void patch_u32(size_t offset, uint32_t v);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Bounds-checked sequential reader over a borrowed byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8();
  uint16_t u16();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str();
  std::vector<uint8_t> bytes(size_t n);

  void seek(size_t pos);
  void skip(size_t n);
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(size_t n) const;
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

// Whole-file helpers (binary). Throw std::runtime_error on IO failure.
std::vector<uint8_t> read_file(const std::string& path);
void write_file(const std::string& path, std::span<const uint8_t> data);

}  // namespace dexlego::support
