// Minimal leveled logging. Benches and examples set the level; the library
// defaults to warnings only so test output stays readable.
#pragma once

#include <sstream>
#include <string>

namespace dexlego::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dexlego::support

#define DL_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::dexlego::support::log_level())) \
    ;                                                              \
  else                                                             \
    ::dexlego::support::detail::LogLine(level)

#define DL_DEBUG DL_LOG(::dexlego::support::LogLevel::kDebug)
#define DL_INFO DL_LOG(::dexlego::support::LogLevel::kInfo)
#define DL_WARN DL_LOG(::dexlego::support::LogLevel::kWarn)
#define DL_ERROR DL_LOG(::dexlego::support::LogLevel::kError)
