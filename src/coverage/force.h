// Force execution (paper Section IV-E, Fig. 4) — the first force-execution
// prototype "on Android". Iteratively:
//   1. branch analysis identifies Uncovered Conditional Branches (UCBs) in
//      the accumulated coverage of previous executions,
//   2. path analysis computes, per UCB, the chain of branch outcomes that
//      steers control flow from the method entry to the UCB,
//   3. the paths are written to path files which drive the next execution:
//      the interpreter's force_branch hook overrides the corresponding
//      conditional outcomes, and unhandled exceptions raised on infeasible
//      paths are tolerated by clearing them.
// Iteration stops when no new UCB appears.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/coverage/fuzzer.h"
#include "src/coverage/tracker.h"
#include "src/dex/archive.h"
#include "src/runtime/hooks.h"

namespace dexlego::coverage {

// A set of forced branch outcomes ("path file" content): one decision per
// (method, branch pc).
class ForcePlan {
 public:
  void set(const std::string& method_key, uint32_t pc, bool outcome);
  const bool* find(const std::string& method_key, uint32_t pc) const;
  size_t size() const { return outcomes_.size(); }

  // Path-file round trip (the paper stores paths in files between runs).
  std::vector<uint8_t> serialize() const;
  static ForcePlan deserialize(std::span<const uint8_t> data);

 private:
  std::map<std::pair<std::string, uint32_t>, bool> outcomes_;
};

// Runtime hooks applying a ForcePlan: overrides the planned branches and
// clears unhandled exceptions (bounded per run to avoid pathological loops).
class ForceHooks : public rt::RuntimeHooks {
 public:
  explicit ForceHooks(const ForcePlan& plan, size_t tolerate_cap = 4096)
      : plan_(plan), tolerate_cap_(tolerate_cap) {}

  bool force_branch(rt::RtMethod& method, uint32_t dex_pc, bool* outcome) override;
  bool tolerate_exception(rt::RtMethod& method, uint32_t dex_pc) override;

  size_t forced() const { return forced_; }
  size_t tolerated() const { return tolerated_; }

 private:
  const ForcePlan& plan_;
  size_t tolerate_cap_;
  size_t forced_ = 0;
  size_t tolerated_ = 0;
};

struct ForceOptions {
  int max_iterations = 64;
  FuzzOptions run;             // runtime config + natives for each forced run
  EventSequence seed_sequence; // inputs/clicks driving each forced run
};

struct ForceResult {
  CoverageTracker coverage;  // seed coverage + everything force reached
  int iterations = 0;
  size_t ucbs_targeted = 0;
};

// Computes the branch decisions steering execution from the method entry to
// `ucb_pc`, then forces `outcome` at the UCB itself. Returns false when no
// static path exists. Exposed for tests.
bool compute_path(const dex::CodeItem& code, const std::string& method_key,
                  uint32_t ucb_pc, bool outcome, ForcePlan& plan);

// Iterative force execution seeded with previous coverage (typically a fuzz
// result, per the paper: "our force execution starts from the execution
// result of the previous execution").
ForceResult force_execute(const dex::Apk& apk, const ForceOptions& options,
                          const CoverageTracker& seed);

}  // namespace dexlego::coverage
