// Force execution (paper Section IV-E, Fig. 4) — the first force-execution
// prototype "on Android". Iteratively:
//   1. branch analysis identifies Uncovered Conditional Branches (UCBs) in
//      the accumulated coverage of previous executions,
//   2. path analysis computes, per UCB, the chain of branch outcomes that
//      steers control flow from the method entry to the UCB,
//   3. the paths are written to path files which drive the next execution:
//      the interpreter's force_branch hook overrides the corresponding
//      conditional outcomes, and unhandled exceptions raised on infeasible
//      paths are tolerated by clearing them.
// Iteration stops when no new UCB appears.
//
// This header holds the plan-level primitives (ForcePlan, ForceHooks,
// compute_path) and the app-level drivers. Exploration itself is the
// worklist-driven ForceEngine in src/coverage/force_engine.h: every UCB gets
// its own independently-runnable plan (a branch-decision prefix + the path
// to the UCB), so plans shard across pipeline workers. force_execute() runs
// the engine's waves serially in-process; single_plan_force_execute() keeps
// the pre-engine algorithm (one combined plan re-run per iteration) as the
// comparison baseline for bench/force_paths and the coverage tests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/coverage/fuzzer.h"
#include "src/coverage/tracker.h"
#include "src/dex/archive.h"
#include "src/runtime/hooks.h"

namespace dexlego::coverage {

// A set of forced branch outcomes ("path file" content): one decision per
// (method, branch pc).
class ForcePlan {
 public:
  void set(const std::string& method_key, uint32_t pc, bool outcome);
  const bool* find(const std::string& method_key, uint32_t pc) const;
  size_t size() const { return outcomes_.size(); }
  bool empty() const { return outcomes_.empty(); }

  // Content hash of the serialized form (support::fnv1a — the DedupStore
  // idiom): equal plans fingerprint equally in any run, which is what the
  // ForceEngine's visited-path set keys on.
  uint64_t fingerprint() const;

  // Path-file round trip (the paper stores paths in files between runs).
  // deserialize throws support::ParseError on truncated, oversized or
  // trailing-garbage input; try_deserialize returns nullopt instead.
  std::vector<uint8_t> serialize() const;
  static ForcePlan deserialize(std::span<const uint8_t> data);
  static std::optional<ForcePlan> try_deserialize(std::span<const uint8_t> data);

  bool operator==(const ForcePlan&) const = default;

 private:
  std::map<std::pair<std::string, uint32_t>, bool> outcomes_;
};

// Runtime hooks applying a ForcePlan: overrides the planned branches and
// clears unhandled exceptions (bounded per run to avoid pathological loops).
class ForceHooks : public rt::RuntimeHooks {
 public:
  explicit ForceHooks(const ForcePlan& plan, size_t tolerate_cap = 4096)
      : plan_(plan), tolerate_cap_(tolerate_cap) {}

  uint32_t subscribed_events() const override {
    return rt::hook_mask(rt::HookEvent::kForceBranch) |
           rt::hook_mask(rt::HookEvent::kTolerateException);
  }

  bool force_branch(rt::RtMethod& method, uint32_t dex_pc, bool* outcome) override;
  bool tolerate_exception(rt::RtMethod& method, uint32_t dex_pc) override;

  size_t forced() const { return forced_; }
  size_t tolerated() const { return tolerated_; }

 private:
  const ForcePlan& plan_;
  size_t tolerate_cap_;
  size_t forced_ = 0;
  size_t tolerated_ = 0;
};

// Exploration budgets of the worklist engine (src/coverage/force_engine.h).
struct ForceEngineOptions {
  int max_depth = 8;       // forced-prefix generations per plan
  size_t max_plans = 512;  // total plan units issued per app
  int max_waves = 64;      // frontier rounds (Fig. 4 iterations)
};

struct ForceOptions {
  ForceEngineOptions engine;   // exploration budgets
  FuzzOptions run;             // runtime config + natives for each forced run
  EventSequence seed_sequence; // inputs/clicks driving each forced run
  // When set, forced runs install the APK and call this instead of replaying
  // seed_sequence — lets callers force-execute under the same driver the
  // batch pipeline uses (e.g. core::default_driver).
  std::function<void(rt::Runtime&)> driver;
};

struct ForceResult {
  CoverageTracker coverage;  // seed coverage + everything force reached
  int iterations = 0;        // waves executed
  size_t ucbs_targeted = 0;
  size_t paths_executed = 0;  // forced runs (plan units) performed
};

// Computes the branch decisions steering execution from the method entry to
// `ucb_pc`, then forces `outcome` at the UCB itself. Returns false when no
// static path exists. Exposed for tests.
bool compute_path(const dex::CodeItem& code, const std::string& method_key,
                  uint32_t ucb_pc, bool outcome, ForcePlan& plan);

// Iterative force execution seeded with previous coverage (typically a fuzz
// result, per the paper: "our force execution starts from the execution
// result of the previous execution"). Runs the ForceEngine's waves serially:
// one fresh runtime per plan unit.
ForceResult force_execute(const dex::Apk& apk, const ForceOptions& options,
                          const CoverageTracker& seed);

// The pre-engine algorithm: per iteration, ONE combined plan holding at most
// one UCB path per method, replayed in a single run. Kept as the baseline
// the ForceEngine is measured against (bench/force_paths, pipeline tests);
// the engine strictly dominates it because combined plans interfere (forcing
// method A's path can starve method B's forced branch, which is then never
// retried) and because plans never inherit the prefix that reached a UCB.
ForceResult single_plan_force_execute(const dex::Apk& apk,
                                      const ForceOptions& options,
                                      const CoverageTracker& seed);

}  // namespace dexlego::coverage
