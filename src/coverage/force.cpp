#include "src/coverage/force.h"

#include <deque>
#include <set>

#include "src/bytecode/insn.h"
#include "src/coverage/force_engine.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::coverage {

void ForcePlan::set(const std::string& method_key, uint32_t pc, bool outcome) {
  outcomes_[{method_key, pc}] = outcome;
}

const bool* ForcePlan::find(const std::string& method_key, uint32_t pc) const {
  auto it = outcomes_.find({method_key, pc});
  return it == outcomes_.end() ? nullptr : &it->second;
}

uint64_t ForcePlan::fingerprint() const { return support::fnv1a(serialize()); }

std::vector<uint8_t> ForcePlan::serialize() const {
  support::ByteWriter w;
  w.u32(static_cast<uint32_t>(outcomes_.size()));
  for (const auto& [key, outcome] : outcomes_) {
    w.str(key.first);
    w.u32(key.second);
    w.u8(outcome ? 1 : 0);
  }
  return w.take();
}

ForcePlan ForcePlan::deserialize(std::span<const uint8_t> data) {
  support::ByteReader r(data);
  ForcePlan plan;
  uint32_t n = r.u32();
  // Every entry needs >= 9 bytes (string length + pc + outcome); a count the
  // payload can't possibly hold is rejected up front instead of looping into
  // a guaranteed truncation (or an attacker-sized allocation).
  if (n > r.remaining() / 9) {
    throw support::ParseError("force plan count exceeds payload");
  }
  for (uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    uint32_t pc = r.u32();
    plan.outcomes_[{std::move(key), pc}] = r.u8() != 0;
  }
  if (!r.at_end()) {
    throw support::ParseError("trailing bytes after force plan");
  }
  return plan;
}

std::optional<ForcePlan> ForcePlan::try_deserialize(
    std::span<const uint8_t> data) {
  try {
    return deserialize(data);
  } catch (const support::ParseError&) {
    return std::nullopt;
  }
}

bool ForceHooks::force_branch(rt::RtMethod& method, uint32_t dex_pc,
                              bool* outcome) {
  const bool* planned = plan_.find(CoverageTracker::method_key(method), dex_pc);
  if (planned == nullptr) return false;
  *outcome = *planned;
  ++forced_;
  return true;
}

bool ForceHooks::tolerate_exception(rt::RtMethod& method, uint32_t dex_pc) {
  (void)method, (void)dex_pc;
  if (tolerated_ >= tolerate_cap_) return false;
  ++tolerated_;
  return true;
}

bool compute_path(const dex::CodeItem& code, const std::string& method_key,
                  uint32_t ucb_pc, bool outcome, ForcePlan& plan) {
  std::span<const uint16_t> insns(code.insns);
  // BFS over pcs; edges annotated with the branch decision that selects them.
  struct Edge {
    size_t from = SIZE_MAX;
    int decision = -1;  // -1: unconditional, 0: branch not taken, 1: taken
  };
  std::map<size_t, Edge> parent;
  std::deque<size_t> queue;
  parent[0] = Edge{};
  queue.push_back(0);
  bool found = false;
  while (!queue.empty()) {
    size_t pc = queue.front();
    queue.pop_front();
    if (pc == ucb_pc) {
      found = true;
      break;
    }
    bc::Insn insn;
    try {
      insn = bc::decode_at(insns, pc);
    } catch (const support::ParseError&) {
      continue;
    }
    auto visit = [&](size_t next, int decision) {
      if (next >= insns.size() || parent.contains(next)) return;
      parent[next] = Edge{pc, decision};
      queue.push_back(next);
    };
    if (bc::is_conditional_branch(insn.op)) {
      visit(pc + insn.width, 0);
      visit(pc + static_cast<size_t>(insn.off), 1);
    } else {
      try {
        for (size_t next : bc::successors_at(insns, pc)) visit(next, -1);
      } catch (const support::ParseError&) {
      }
    }
  }
  if (!found) return false;

  // Walk back collecting branch decisions along the path.
  size_t pc = ucb_pc;
  while (pc != 0) {
    const Edge& edge = parent.at(pc);
    if (edge.decision >= 0) {
      plan.set(method_key, static_cast<uint32_t>(edge.from), edge.decision == 1);
    }
    pc = edge.from;
  }
  plan.set(method_key, ucb_pc, outcome);
  return true;
}

namespace {

// One forced run: fresh runtime, the plan's ForceHooks attached, coverage
// recorded into `tracker`. Replays options.seed_sequence unless a driver is
// supplied.
void run_plan(const dex::Apk& apk, const ForcePlan& plan,
              const ForceOptions& options, CoverageTracker& tracker) {
  ForceHooks hooks(plan);
  if (options.driver) {
    rt::RuntimeConfig cfg;
    cfg.step_limit = options.run.steps_per_run;
    rt::Runtime runtime(cfg);
    if (options.run.configure_runtime) options.run.configure_runtime(runtime);
    runtime.add_hooks(&tracker);
    for (rt::RuntimeHooks* extra : options.run.extra_hooks) {
      runtime.add_hooks(extra);
    }
    runtime.add_hooks(&hooks);
    runtime.install(apk);
    options.driver(runtime);
    return;
  }
  FuzzOptions run = options.run;
  run.extra_hooks.push_back(&hooks);
  execute_sequence(apk, options.seed_sequence, run, tracker);
}

}  // namespace

ForceResult force_execute(const dex::Apk& apk, const ForceOptions& options,
                          const CoverageTracker& seed) {
  dex::DexFile app = dex::load_classes(apk);
  ForceEngine engine(app, options.engine);
  engine.observe(PlanUnit{}, seed);  // baseline: the seed's natural coverage

  ForceResult result;
  for (;;) {
    std::vector<PlanUnit> wave = engine.next_wave();
    if (wave.empty()) break;
    ++result.iterations;
    for (const PlanUnit& unit : wave) {
      CoverageTracker tracker;
      run_plan(apk, unit.plan, options, tracker);
      engine.observe(unit, tracker);
      ++result.paths_executed;
    }
  }
  result.coverage.merge(engine.coverage());
  result.ucbs_targeted = engine.stats().ucbs_targeted;
  return result;
}

ForceResult single_plan_force_execute(const dex::Apk& apk,
                                      const ForceOptions& options,
                                      const CoverageTracker& seed) {
  dex::DexFile app = dex::load_classes(apk);
  // Static index: method key -> code item.
  std::map<std::string, const dex::CodeItem*> code_of;
  for (const dex::ClassDef& cls : app.classes) {
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (m.code) {
          code_of[CoverageTracker::method_key(app, m.method_ref)] = &*m.code;
        }
      }
    }
  }

  ForceResult result;
  result.coverage.merge(seed);
  std::set<std::tuple<std::string, uint32_t, bool>> attempted;

  for (int iter = 0; iter < options.engine.max_waves; ++iter) {
    // Branch analysis: find new UCBs in the accumulated coverage.
    ForcePlan plan;
    size_t targeted = 0;
    for (const auto& [key, code] : code_of) {
      const auto* branch_map = result.coverage.branches(key);
      if (branch_map == nullptr) continue;
      for (const auto& [pc, seen] : *branch_map) {
        if (seen.taken && seen.untaken) continue;
        bool want = !seen.taken;  // the unseen side
        auto attempt = std::make_tuple(key, pc, want);
        if (attempted.contains(attempt)) continue;
        if (compute_path(*code, key, pc, want, plan)) {
          attempted.insert(attempt);
          ++targeted;
          break;  // one UCB per method per iteration
        }
        attempted.insert(attempt);
      }
    }
    if (targeted == 0) break;  // no new UCB: terminate (paper Fig. 4)
    result.ucbs_targeted += targeted;
    ++result.iterations;

    // Next execution follows the one combined path file.
    CoverageTracker tracker;
    run_plan(apk, plan, options, tracker);
    result.coverage.merge(tracker);
    ++result.paths_executed;
  }
  return result;
}

}  // namespace dexlego::coverage
