// Worklist-driven force execution — the exploration half of Section IV-E,
// rebuilt as an engine whose unit of work is one independently-runnable
// forced execution. The frontier holds (method, pc, outcome) targets, each
// carried by a branch-plan *prefix*: the plan of the run that first observed
// the UCB's branch site, extended with the intraprocedural path to the UCB
// (compute_path). A visited-path fingerprint set (support::fnv1a over the
// serialized plan, the DedupStore hashing idiom) dedups the frontier, plan
// generation is deterministically ordered (methods and pcs ascend), and
// depth / plan / wave budgets bound the exploration.
//
// The engine itself never executes anything: callers run each wave's plan
// units (serially in force_execute, sharded across worker threads by
// pipeline::run_batch), feed the observed per-run coverage back through
// observe(), and ask for the next wave. Because accumulated coverage is a
// set union and observations are replayed in plan order, the frontier — and
// therefore everything collected — is identical whatever the thread count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/coverage/force.h"
#include "src/coverage/tracker.h"
#include "src/dex/dex.h"

namespace dexlego::coverage {

// One frontier item: a fully-specified forced execution. depth counts the
// forced-prefix generations (1 = reached from natural execution).
struct PlanUnit {
  ForcePlan plan;
  std::string target_method;  // UCB this plan steers to; empty = baseline run
  uint32_t target_pc = 0;
  bool target_outcome = false;
  int depth = 0;
};

class ForceEngine {
 public:
  struct Stats {
    int waves = 0;             // non-empty frontiers issued
    size_t plans_issued = 0;   // plan units handed out
    size_t ucbs_targeted = 0;  // distinct (method, pc, outcome) targets
    size_t pruned_depth = 0;   // targets dropped by max_depth
    size_t pruned_budget = 0;  // targets dropped by max_plans
  };

  // `app` is the static image UCBs are computed against. The engine copies
  // the code items it needs, so the DexFile may be destroyed afterwards.
  explicit ForceEngine(const dex::DexFile& app, ForceEngineOptions options = {});

  // Feeds one executed unit's coverage back. MUST be called in plan order
  // (baseline first, then each wave's units in issue order) — that ordering
  // is what makes prefix attribution, and thus the whole exploration,
  // scheduling-independent. The baseline run is a default-constructed
  // PlanUnit with an empty plan.
  void observe(const PlanUnit& unit, const CoverageTracker& run_coverage);

  // Computes the next frontier from everything observed so far. Empty means
  // converged or out of budget.
  std::vector<PlanUnit> next_wave();

  // Union of every observed run's coverage.
  const CoverageTracker& coverage() const { return accumulated_; }
  const Stats& stats() const { return stats_; }

 private:
  // The plan of the run that first observed a branch site — the shallowest
  // known way to get execution there. Shared across the sites one run
  // discovered.
  struct Prefix {
    ForcePlan plan;
    int depth = 0;
  };

  ForceEngineOptions options_;
  std::map<std::string, dex::CodeItem> code_of_;  // method key -> static code
  CoverageTracker accumulated_;
  // (method key, pc) -> first-seeing run's prefix, filled in observe order.
  std::map<std::pair<std::string, uint32_t>, std::shared_ptr<const Prefix>>
      first_seen_;
  std::set<std::tuple<std::string, uint32_t, bool>> attempted_;
  std::set<uint64_t> visited_plans_;  // plan fingerprints
  Stats stats_;
};

}  // namespace dexlego::coverage
