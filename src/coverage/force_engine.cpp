#include "src/coverage/force_engine.h"

namespace dexlego::coverage {

ForceEngine::ForceEngine(const dex::DexFile& app, ForceEngineOptions options)
    : options_(options) {
  for (const dex::ClassDef& cls : app.classes) {
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (m.code) {
          code_of_[CoverageTracker::method_key(app, m.method_ref)] = *m.code;
        }
      }
    }
  }
}

void ForceEngine::observe(const PlanUnit& unit,
                          const CoverageTracker& run_coverage) {
  accumulated_.merge(run_coverage);
  // Claim every branch site this run saw first: calling observe() in plan
  // order makes the winner — and so the whole frontier — schedule-
  // independent.
  std::shared_ptr<const Prefix> prefix;
  for (const auto& [key, sites] : run_coverage.branch_sites()) {
    for (const auto& [pc, seen] : sites) {
      (void)seen;
      if (!prefix) {
        prefix = std::make_shared<const Prefix>(Prefix{unit.plan, unit.depth});
      }
      first_seen_.try_emplace({key, pc}, prefix);
    }
  }
}

std::vector<PlanUnit> ForceEngine::next_wave() {
  std::vector<PlanUnit> wave;
  if (stats_.waves >= options_.max_waves) return wave;

  // Branch analysis over the accumulated coverage, in deterministic order:
  // methods ascend (code_of_ is an ordered map), pcs ascend, untaken side
  // before taken. Both uncovered sides of a branch become separate targets.
  for (const auto& [key, code] : code_of_) {
    const auto* branch_map = accumulated_.branches(key);
    if (branch_map == nullptr) continue;
    for (const auto& [pc, seen] : *branch_map) {
      for (bool want : {false, true}) {
        bool covered = want ? seen.taken : seen.untaken;
        if (covered) continue;
        auto target = std::make_tuple(key, pc, want);
        if (!attempted_.insert(target).second) continue;
        auto seen_it = first_seen_.find({key, pc});
        const Prefix* prefix =
            seen_it != first_seen_.end() ? seen_it->second.get() : nullptr;
        int depth = (prefix != nullptr ? prefix->depth : 0) + 1;
        if (depth > options_.max_depth) {
          ++stats_.pruned_depth;
          continue;
        }
        if (stats_.plans_issued >= options_.max_plans) {
          ++stats_.pruned_budget;
          continue;
        }
        // Path analysis: the prefix plan that reached the branch site,
        // extended with the intraprocedural path to the UCB.
        ForcePlan plan = prefix != nullptr ? prefix->plan : ForcePlan();
        if (!compute_path(code, key, pc, want, plan)) continue;
        if (!visited_plans_.insert(plan.fingerprint()).second) continue;
        ++stats_.plans_issued;
        ++stats_.ucbs_targeted;
        wave.push_back(PlanUnit{std::move(plan), key, pc, want, depth});
      }
    }
  }
  if (!wave.empty()) ++stats_.waves;
  return wave;
}

}  // namespace dexlego::coverage
