#include "src/coverage/fuzzer.h"

#include <algorithm>

#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"

namespace dexlego::coverage {

namespace {
// Input dictionary without app-specific magic values — random fuzzing rarely
// satisfies semantic guards, which is what Table VII measures.
const char* kDictionary[] = {"", "", "a", "test", "1234", "hello world",
                             "x", "", "0", "fuzz"};

std::string random_text(support::Rng& rng) {
  return kDictionary[rng.below(std::size(kDictionary))];
}
}  // namespace

EventSequence EventSequence::random(support::Rng& rng, int max_clicks) {
  EventSequence seq;
  int inputs = static_cast<int>(rng.below(6));
  for (int i = 0; i < inputs; ++i) {
    seq.text_inputs[static_cast<int>(rng.below(24))] = random_text(rng);
  }
  seq.click_rounds.assign(1 + rng.below(2), 0);
  for (int& r : seq.click_rounds) r = static_cast<int>(rng.below(max_clicks)) + 1;
  seq.lifecycle_cycles = static_cast<int>(rng.below(3)) + 1;
  return seq;
}

EventSequence EventSequence::mutate(support::Rng& rng) const {
  EventSequence out = *this;
  switch (rng.below(3)) {
    case 0:
      out.text_inputs[static_cast<int>(rng.below(24))] = random_text(rng);
      break;
    case 1:
      if (!out.click_rounds.empty()) {
        out.click_rounds[rng.below(out.click_rounds.size())] =
            static_cast<int>(rng.below(8)) + 1;
      }
      break;
    default:
      out.lifecycle_cycles = static_cast<int>(rng.below(3)) + 1;
      break;
  }
  return out;
}

EventSequence EventSequence::crossover(const EventSequence& a,
                                       const EventSequence& b,
                                       support::Rng& rng) {
  EventSequence out = rng.chance(0.5) ? a : b;
  const EventSequence& other = rng.chance(0.5) ? a : b;
  for (const auto& [id, text] : other.text_inputs) {
    if (rng.chance(0.5)) out.text_inputs[id] = text;
  }
  return out;
}

void execute_sequence(const dex::Apk& apk, const EventSequence& seq,
                      const FuzzOptions& options, CoverageTracker& tracker) {
  rt::RuntimeConfig cfg;
  cfg.step_limit = options.steps_per_run;
  rt::Runtime runtime(cfg);
  if (options.configure_runtime) options.configure_runtime(runtime);
  runtime.add_hooks(&tracker);
  for (rt::RuntimeHooks* hooks : options.extra_hooks) runtime.add_hooks(hooks);
  runtime.install(apk);
  for (const auto& [id, text] : seq.text_inputs) runtime.set_text_input(id, text);
  runtime.launch();
  for (int rounds : seq.click_rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (int id : runtime.ui_clickable_ids()) {
        runtime.fire_click(id);
        if (runtime.interp().aborted()) return;
      }
    }
  }
  for (int i = 0; i < seq.lifecycle_cycles; ++i) {
    runtime.call_activity_method("onPause");
    runtime.call_activity_method("onResume");
  }
  runtime.call_activity_method("onPause");
  runtime.call_activity_method("onDestroy");
}

FuzzResult fuzz_app(const dex::Apk& apk, const FuzzOptions& options) {
  support::Rng rng(options.seed);
  dex::DexFile app = dex::load_classes(apk);
  FuzzResult result;

  std::vector<EventSequence> population;
  for (int i = 0; i < options.population; ++i) {
    population.push_back(EventSequence::random(rng, options.max_clicks));
  }

  for (int gen = 0; gen < options.generations; ++gen) {
    std::vector<std::pair<double, EventSequence>> scored;
    for (const EventSequence& seq : population) {
      CoverageTracker run_tracker;
      execute_sequence(apk, seq, options, run_tracker);
      ++result.runs;
      double fitness = run_tracker.report(app).instruction_pct();
      scored.emplace_back(fitness, seq);
      result.coverage.merge(run_tracker);
      if (fitness > result.best_fitness) {
        result.best_fitness = fitness;
        result.best = seq;
      }
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    // Elitism + mutation + crossover (multi-objective Sapienz reduced to the
    // coverage objective; sequence length stays bounded by construction).
    population.clear();
    size_t elite = std::max<size_t>(1, scored.size() / 3);
    for (size_t i = 0; i < elite; ++i) population.push_back(scored[i].second);
    while (population.size() < static_cast<size_t>(options.population)) {
      if (rng.chance(0.4) && scored.size() >= 2) {
        population.push_back(EventSequence::crossover(
            scored[rng.below(elite)].second, scored[rng.below(scored.size())].second,
            rng));
      } else {
        population.push_back(scored[rng.below(elite)].second.mutate(rng));
      }
    }
  }
  return result;
}

}  // namespace dexlego::coverage
