#include "src/coverage/tracker.h"

#include "src/bytecode/insn.h"
#include "src/support/bytes.h"

namespace dexlego::coverage {

std::string CoverageTracker::method_key(const rt::RtMethod& method) {
  return (method.declaring != nullptr ? method.declaring->descriptor : "?") +
         "->" + method.name + method.shorty;
}

std::string CoverageTracker::method_key(const dex::DexFile& file,
                                        uint32_t method_ref) {
  const dex::MethodRef& ref = file.methods.at(method_ref);
  return file.type_descriptor(ref.class_type) + "->" + file.string_at(ref.name) +
         file.proto_shorty(ref.proto);
}

void CoverageTracker::on_instruction(rt::RtMethod& method, uint32_t dex_pc,
                                     std::span<const uint16_t> code) {
  (void)code;
  pcs_[method_key(method)].insert(dex_pc);
}

void CoverageTracker::on_branch(rt::RtMethod& method, uint32_t dex_pc,
                                bool taken) {
  BranchSeen& seen = branches_[method_key(method)][dex_pc];
  if (taken) {
    seen.taken = true;
  } else {
    seen.untaken = true;
  }
}

const std::set<uint32_t>* CoverageTracker::executed_pcs(
    const std::string& key) const {
  auto it = pcs_.find(key);
  return it == pcs_.end() ? nullptr : &it->second;
}

const std::map<uint32_t, CoverageTracker::BranchSeen>* CoverageTracker::branches(
    const std::string& key) const {
  auto it = branches_.find(key);
  return it == branches_.end() ? nullptr : &it->second;
}

void CoverageTracker::merge(const CoverageTracker& other) {
  for (const auto& [key, pcs] : other.pcs_) pcs_[key].insert(pcs.begin(), pcs.end());
  for (const auto& [key, branch_map] : other.branches_) {
    for (const auto& [pc, seen] : branch_map) {
      BranchSeen& mine = branches_[key][pc];
      mine.taken |= seen.taken;
      mine.untaken |= seen.untaken;
    }
  }
}

CoverageTracker::Report CoverageTracker::report(const dex::DexFile& app) const {
  Report report;
  for (const dex::ClassDef& cls : app.classes) {
    bool class_covered = false;
    bool class_has_code = false;
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (!m.code) continue;
        class_has_code = true;
        ++report.methods_total;
        std::string key = method_key(app, m.method_ref);
        const std::set<uint32_t>* executed = executed_pcs(key);
        if (executed != nullptr && !executed->empty()) {
          ++report.methods_covered;
          class_covered = true;
        }

        // Instructions and branch sides from the static code.
        std::span<const uint16_t> insns(m.code->insns);
        std::set<uint32_t> lines_hit;
        std::set<uint32_t> lines_all;
        auto line_of = [&](uint16_t pc) -> uint32_t {
          uint32_t line = 0;
          for (const dex::LineEntry& e : m.code->lines) {
            if (e.pc <= pc) line = e.line;
          }
          return line;
        };
        size_t pc = 0;
        while (pc < insns.size()) {
          bc::Insn insn;
          try {
            insn = bc::decode_at(insns, pc);
          } catch (const support::ParseError&) {
            break;
          }
          if (insn.op != bc::Op::kPayload) {
            ++report.instructions_total;
            uint32_t line = line_of(static_cast<uint16_t>(pc));
            if (line != 0) lines_all.insert(line);
            bool hit = executed != nullptr &&
                       executed->contains(static_cast<uint32_t>(pc));
            if (hit) {
              ++report.instructions_covered;
              if (line != 0) lines_hit.insert(line);
            }
            if (bc::is_conditional_branch(insn.op)) {
              report.branches_total += 2;
              const auto* branch_map = branches(key);
              if (branch_map != nullptr) {
                auto bit = branch_map->find(static_cast<uint32_t>(pc));
                if (bit != branch_map->end()) {
                  report.branches_covered += (bit->second.taken ? 1 : 0) +
                                             (bit->second.untaken ? 1 : 0);
                }
              }
            }
          }
          pc += insn.width;
        }
        report.lines_total += lines_all.size();
        report.lines_covered += lines_hit.size();
      }
    }
    if (class_has_code) {
      ++report.classes_total;
      if (class_covered) ++report.classes_covered;
    }
  }
  return report;
}

}  // namespace dexlego::coverage
