// Sapienz-analog UI fuzzer: evolves event sequences (text inputs + click
// orders + lifecycle cycles) against a coverage fitness function. Used as
// the input generator for the DroidBench runs (paper V-B) and as the
// baseline of the force-execution coverage experiment (Table VII).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/coverage/tracker.h"
#include "src/dex/archive.h"
#include "src/runtime/runtime.h"
#include "src/support/rng.h"

namespace dexlego::coverage {

struct FuzzOptions {
  int generations = 4;
  int population = 6;
  int max_clicks = 8;
  uint64_t seed = 0x5a11e42;
  uint64_t steps_per_run = 5'000'000;
  std::function<void(rt::Runtime&)> configure_runtime;
  // Extra hooks attached to every run (e.g. a DexLego collector).
  std::vector<rt::RuntimeHooks*> extra_hooks;
};

// One individual: the inputs and the event schedule of a run.
struct EventSequence {
  std::map<int, std::string> text_inputs;  // view id -> text
  std::vector<int> click_rounds;           // how many click passes
  int lifecycle_cycles = 1;                // onPause/onResume repetitions

  static EventSequence random(support::Rng& rng, int max_clicks);
  EventSequence mutate(support::Rng& rng) const;
  static EventSequence crossover(const EventSequence& a, const EventSequence& b,
                                 support::Rng& rng);
};

struct FuzzResult {
  CoverageTracker coverage;  // accumulated over every executed individual
  size_t runs = 0;
  EventSequence best;
  double best_fitness = 0.0;
};

// Executes one event sequence against a fresh runtime.
void execute_sequence(const dex::Apk& apk, const EventSequence& seq,
                      const FuzzOptions& options, CoverageTracker& tracker);

FuzzResult fuzz_app(const dex::Apk& apk, const FuzzOptions& options);

}  // namespace dexlego::coverage
