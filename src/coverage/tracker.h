// JaCoCo-analog coverage tracker (Table VII granularities: class / method /
// line / branch / instruction). A RuntimeHooks implementation that records
// executed pcs and branch outcomes per method identity, then scores them
// against the app's static totals.
#pragma once

#include <map>
#include <set>
#include <string>

#include "src/dex/dex.h"
#include "src/runtime/hooks.h"

namespace dexlego::coverage {

class CoverageTracker : public rt::RuntimeHooks {
 public:
  uint32_t subscribed_events() const override {
    return rt::hook_mask(rt::HookEvent::kInstruction) |
           rt::hook_mask(rt::HookEvent::kBranch);
  }
  void on_instruction(rt::RtMethod& method, uint32_t dex_pc,
                      std::span<const uint16_t> code) override;
  void on_branch(rt::RtMethod& method, uint32_t dex_pc, bool taken) override;

  struct Report {
    size_t classes_total = 0, classes_covered = 0;
    size_t methods_total = 0, methods_covered = 0;
    size_t lines_total = 0, lines_covered = 0;
    size_t branches_total = 0, branches_covered = 0;  // branch *sides*
    size_t instructions_total = 0, instructions_covered = 0;

    double class_pct() const { return ratio(classes_covered, classes_total); }
    double method_pct() const { return ratio(methods_covered, methods_total); }
    double line_pct() const { return ratio(lines_covered, lines_total); }
    double branch_pct() const { return ratio(branches_covered, branches_total); }
    double instruction_pct() const {
      return ratio(instructions_covered, instructions_total);
    }

   private:
    static double ratio(size_t a, size_t b) {
      return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
    }
  };

  // Scores recorded coverage against the app's static structure.
  Report report(const dex::DexFile& app) const;

  // Executed pcs for a method ("class->name shorty" key); empty if never run.
  const std::set<uint32_t>* executed_pcs(const std::string& key) const;
  // Branch outcomes seen: pc -> {taken?, untaken?}.
  struct BranchSeen {
    bool taken = false;
    bool untaken = false;
  };
  const std::map<uint32_t, BranchSeen>* branches(const std::string& key) const;
  // Every branch site observed, keyed by method: lets the force engine
  // enumerate sites without knowing method keys up front.
  const std::map<std::string, std::map<uint32_t, BranchSeen>>& branch_sites()
      const {
    return branches_;
  }

  static std::string method_key(const rt::RtMethod& method);
  static std::string method_key(const dex::DexFile& file, uint32_t method_ref);

  // Merge another tracker's observations (fuzz + force accumulation).
  void merge(const CoverageTracker& other);

 private:
  std::map<std::string, std::set<uint32_t>> pcs_;
  std::map<std::string, std::map<uint32_t, BranchSeen>> branches_;
};

}  // namespace dexlego::coverage
