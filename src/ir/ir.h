// Typed SSA intermediate representation for LDEX method bodies. Each IR
// instruction wraps its decoded bc::Insn and links operands to SSA values;
// basic blocks carry phi nodes whose operands align with the predecessor
// list. The lifter (lift.h) builds this form from raw code units and the
// lowering pass (lower.h) re-emits code units — byte-identical to the
// source when no optimization pass ran (ARCHITECTURE invariant 15).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::ir {

using ValueId = uint32_t;
inline constexpr ValueId kNoValue = 0xffffffffu;
inline constexpr uint32_t kNoBlock = 0xffffffffu;

// Instruction index markers for Value::def_inst.
inline constexpr int32_t kPhiDef = -1;    // defined by a phi node
inline constexpr int32_t kEntryDef = -2;  // live-in at function entry

// Coarse type lattice inferred from opcode formats and method shorties.
// kUnknown doubles as bottom (never seen) and top (conflicting evidence);
// the taint engine only needs the ref/int split, so this stays coarse.
enum class TypeKind : uint8_t { kUnknown, kInt, kWide, kRef };

const char* type_name(TypeKind kind);

// One SSA value: a single static assignment of an original frame register
// (origin_reg >= 0) or a pass-introduced temporary (origin_reg < 0).
struct Value {
  TypeKind type = TypeKind::kUnknown;
  int32_t origin_reg = -1;     // frame register this value versions
  uint32_t def_block = kNoBlock;
  int32_t def_inst = kEntryDef;  // index into Block::insts, or kPhiDef/kEntryDef
};

// Phi node: dest merges one incoming value per predecessor edge, in
// Block::preds order. `reg` records the original register being joined.
struct Phi {
  ValueId dest = kNoValue;
  uint16_t reg = 0;
  std::vector<ValueId> args;  // aligned with the owning block's preds
};

// IR instruction: the decoded source instruction plus SSA operand links.
// `uses` aligns with insn_read_regs(src); `def` is set when the opcode
// writes a register (insn_written_reg) or produces an invoke result.
struct Inst {
  bc::Insn src;
  uint32_t orig_pc = 0;  // code-unit pc in the source body
  ValueId def = kNoValue;
  std::vector<ValueId> uses;
  bool dead = false;  // set by passes; lowering skips dead instructions
};

// Basic block. Blocks are kept in ascending start_pc order ("layout order")
// so lowering can re-emit the original instruction sequence.
struct Block {
  uint32_t id = 0;
  uint32_t start_pc = 0;
  bool reachable = true;  // false: raw block, no SSA links, emitted verbatim
  std::vector<Phi> phis;
  std::vector<Inst> insts;
  std::vector<uint32_t> preds;
  std::vector<uint32_t> succs;
  uint32_t idom = kNoBlock;  // immediate dominator (reachable blocks only)
};

// Switch payload island: raw data units re-emitted verbatim by lowering.
struct PayloadIsland {
  uint32_t pc = 0;
  std::vector<uint16_t> units;       // header + targets, exactly as decoded
  std::vector<uint32_t> switch_pcs;  // original pcs of referencing switches
};

// A whole method body in SSA form.
struct Function {
  uint16_t registers_size = 0;  // original frame size
  uint16_t ins_size = 0;
  size_t code_units = 0;  // original insns.size()
  bool drop_unreachable = false;  // set by DCE: lowering drops raw blocks
  std::vector<Block> blocks;  // blocks[0] is the entry; layout order
  std::vector<Value> values;
  std::vector<PayloadIsland> payloads;
  std::vector<dex::TryItem> tries;   // source coordinates
  std::vector<dex::LineEntry> lines; // source coordinates

  // Pseudo-register modelling the interpreter's "last invoke result" slot:
  // invokes define it, kMoveResult reads it. Never appears in encodings.
  uint16_t result_reg() const { return registers_size; }
  uint16_t ssa_regs() const { return static_cast<uint16_t>(registers_size + 1); }

  Value& value(ValueId id) { return values[id]; }
  const Value& value(ValueId id) const { return values[id]; }
  ValueId new_value(TypeKind type, int32_t origin_reg, uint32_t def_block,
                    int32_t def_inst);
};

// Frame registers read by an instruction, in a fixed per-opcode order that
// Inst::uses must follow. The invoke-result pseudo register is not included
// (the lifter links it explicitly for kMoveResult).
void insn_read_regs(const bc::Insn& insn, std::vector<uint8_t>& out);
// Frame register written, if any. Invokes return nullopt (they define the
// result pseudo register instead).
std::optional<uint8_t> insn_written_reg(const bc::Insn& insn);
// True when kMoveResult consumes the pseudo result register.
inline bool reads_result(const bc::Insn& insn) {
  return insn.op == bc::Op::kMoveResult;
}
// True when the opcode defines the pseudo result register.
inline bool writes_result(const bc::Insn& insn) { return bc::is_invoke(insn.op); }

// Recomputes immediate dominators of reachable blocks from the CFG
// (iterative Cooper–Harvey–Kennedy). Returns idom per block id, kNoBlock
// for the entry and for unreachable blocks. Shared by lift and verify.
std::vector<uint32_t> compute_idoms(const Function& fn);

// True when block a dominates block b under the given idom vector.
bool dominates(const std::vector<uint32_t>& idom, uint32_t a, uint32_t b);

// SSA well-formedness check: (1) every value has exactly one definition and
// its def_block/def_inst coordinates are accurate, (2) each phi has exactly
// one operand per predecessor, (3) every use is dominated by its definition.
// Returns human-readable violations; empty means well-formed.
std::vector<std::string> verify_function(const Function& fn);

// Textual dump ("%3:int = add %1, %2") for debugging and golden tests.
std::string to_string(const Function& fn);

}  // namespace dexlego::ir
