// Lifts LDEX method bodies into the SSA IR (ir.h): linear decode, basic
// blocks at branch targets and try boundaries, dominator-tree phi
// placement, register renaming, and type inference from opcode formats and
// method shorties. Throws support::ParseError when the body does not
// decode linearly (the same condition the verifier rejects).
#pragma once

#include "src/dex/dex.h"
#include "src/ir/ir.h"

namespace dexlego::ir {

// Lifts a code item without pool context; all types are structural
// (consts, news). Exception edges follow the interpreter contract: every
// instruction covered by a try range gets its own block with an edge to
// the handler, so handler phis join exactly the states the per-pc
// bytecode engine would merge.
Function lift_code(const dex::CodeItem& code);

// Lifts with pool context: additionally infers value types from field /
// proto descriptors and the method's own shorty (argument registers).
Function lift_method(const dex::DexFile& file, const dex::MethodDef& method);

}  // namespace dexlego::ir
