// IR optimization passes. Each pass mutates a Function in place and leaves
// it SSA-well-formed (verify_function clean); lowering honours the marks
// the pass leaves behind (Inst::dead, Function::drop_unreachable). The
// contract every pass must keep: the lowered body stays behaviourally
// equivalent to the source under all interpreter dispatch tiers
// (ARCHITECTURE invariant 15), checked by the differential oracle.
#pragma once

#include "src/ir/ir.h"

namespace dexlego::ir {

struct DceStats {
  uint32_t insts_removed = 0;   // pure instructions whose value is unused
  uint32_t blocks_dropped = 0;  // unreachable raw blocks scheduled for drop
  uint32_t units_removed = 0;   // code units the removals free up
};

// Dead-code elimination. Removes pure instructions whose results are never
// observed and schedules unreachable blocks (plus orphaned switch
// payloads) for dropping at lowering time. Anything that can throw, touch
// the heap, transfer control or return is a root and always survives —
// division, array/field accesses and invokes keep their exception
// behaviour exactly.
DceStats dead_code_elim(Function& fn);

}  // namespace dexlego::ir
