#include "src/ir/lift.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/support/bytes.h"

namespace dexlego::ir {

namespace {

using bc::Insn;
using bc::Op;

// Decoded instruction with its pc, before block formation.
struct RawInst {
  uint32_t pc = 0;
  Insn insn;
};

struct Sweep {
  std::vector<RawInst> insts;
  std::vector<PayloadIsland> payloads;
  std::set<uint32_t> inst_pcs;  // pcs that start a real instruction
};

Sweep decode_sweep(const dex::CodeItem& code) {
  Sweep sweep;
  std::span<const uint16_t> units(code.insns);
  size_t pc = 0;
  while (pc < units.size()) {
    Insn insn = bc::decode_at(units, pc);
    size_t width = bc::consumed_units(insn);
    if (insn.op == Op::kPayload) {
      PayloadIsland island;
      island.pc = static_cast<uint32_t>(pc);
      island.units.assign(units.begin() + static_cast<ptrdiff_t>(pc),
                          units.begin() + static_cast<ptrdiff_t>(pc + width));
      sweep.payloads.push_back(std::move(island));
    } else {
      sweep.insts.push_back({static_cast<uint32_t>(pc), insn});
      sweep.inst_pcs.insert(static_cast<uint32_t>(pc));
    }
    pc += width;
  }
  return sweep;
}

// Control-flow successors of one instruction (fallthrough first, then
// branch targets in encoding order). Empty for return/throw.
std::vector<uint32_t> insn_successors(std::span<const uint16_t> units,
                                      const RawInst& ri) {
  std::vector<uint32_t> out;
  const Insn& insn = ri.insn;
  uint32_t next = ri.pc + insn.width;
  switch (insn.op) {
    case Op::kReturnVoid:
    case Op::kReturn:
    case Op::kThrow:
      break;
    case Op::kGoto:
      out.push_back(static_cast<uint32_t>(ri.pc + insn.off));
      break;
    case Op::kPackedSwitch: {
      out.push_back(next);
      bc::SwitchPayload payload = bc::read_switch_payload(units, ri.pc, insn);
      for (int32_t rel : payload.rel_targets) {
        out.push_back(static_cast<uint32_t>(ri.pc + rel));
      }
      break;
    }
    default:
      out.push_back(next);
      if (bc::is_conditional_branch(insn.op)) {
        out.push_back(static_cast<uint32_t>(ri.pc + insn.off));
      }
      break;
  }
  return out;
}

bool is_terminator(Op op) {
  return !bc::can_continue(op) || bc::is_conditional_branch(op) ||
         op == Op::kPackedSwitch;
}

TypeKind kind_from_descriptor(std::string_view desc) {
  if (desc.empty()) return TypeKind::kUnknown;
  switch (desc[0]) {
    case 'L':
    case '[':
      return TypeKind::kRef;
    case 'J':
    case 'D':
      return TypeKind::kWide;
    case 'V':
      return TypeKind::kUnknown;
    default:
      return TypeKind::kInt;
  }
}

// Internal 5-point lattice for inference: kUnknown is bottom, conflicts
// collapse back to kUnknown in the public TypeKind at the end.
TypeKind join_types(TypeKind a, TypeKind b, bool& conflict) {
  if (a == TypeKind::kUnknown) return b;
  if (b == TypeKind::kUnknown) return a;
  if (a == b) return a;
  conflict = true;
  return a;
}

class Lifter {
 public:
  explicit Lifter(const dex::CodeItem& code) : code_(code) {}

  Function run() {
    fn_.registers_size = code_.registers_size;
    fn_.ins_size = code_.ins_size;
    fn_.code_units = code_.insns.size();
    fn_.tries = code_.tries;
    fn_.lines = code_.lines;

    Sweep sweep = decode_sweep(code_);
    fn_.payloads = std::move(sweep.payloads);
    build_blocks(sweep);
    link_switch_payloads();
    mark_reachable();
    strip_unreachable_edges();
    idom_ = compute_idoms(fn_);
    for (Block& b : fn_.blocks) b.idom = idom_[b.id];
    place_phis();
    rename();
    return std::move(fn_);
  }

 private:
  void build_blocks(const Sweep& sweep) {
    std::span<const uint16_t> units(code_.insns);
    std::set<uint32_t> leaders;
    if (!sweep.insts.empty()) leaders.insert(sweep.insts.front().pc);
    auto leader_at = [&](uint32_t pc) {
      if (!sweep.inst_pcs.count(pc)) {
        throw support::ParseError("branch target " + std::to_string(pc) +
                                  " is not an instruction start");
      }
      leaders.insert(pc);
    };
    for (const RawInst& ri : sweep.insts) {
      uint32_t next = ri.pc + ri.insn.width;
      if (is_terminator(ri.insn.op)) {
        for (uint32_t succ : insn_successors(units, ri)) leader_at(succ);
        if (sweep.inst_pcs.count(next)) leaders.insert(next);
      }
    }
    // Exception semantics: every instruction covered by a try range forms
    // its own block with an edge to the handler, so handler joins see the
    // post-state of each covered instruction — exactly what the per-pc
    // bytecode taint engine merges.
    for (const dex::TryItem& t : fn_.tries) {
      leader_at(t.handler_pc);
      for (const RawInst& ri : sweep.insts) {
        if (ri.pc >= t.start_pc && ri.pc < t.end_pc) {
          leaders.insert(ri.pc);
          uint32_t next = ri.pc + ri.insn.width;
          if (sweep.inst_pcs.count(next)) leaders.insert(next);
        }
      }
    }

    // Synthetic empty entry block: holds the live-in definitions and keeps
    // the real pc-0 block free to receive back edges.
    fn_.blocks.emplace_back();
    fn_.blocks[0].id = 0;
    fn_.blocks[0].start_pc = 0;

    std::map<uint32_t, uint32_t> block_at;  // leader pc -> block id
    for (uint32_t pc : leaders) {
      Block b;
      b.id = static_cast<uint32_t>(fn_.blocks.size());
      b.start_pc = pc;
      block_at[pc] = b.id;
      fn_.blocks.push_back(std::move(b));
    }
    for (const RawInst& ri : sweep.insts) {
      auto it = block_at.upper_bound(ri.pc);
      --it;
      Inst inst;
      inst.src = ri.insn;
      inst.orig_pc = ri.pc;
      fn_.blocks[it->second].insts.push_back(std::move(inst));
    }

    auto add_edge = [&](uint32_t from, uint32_t to) {
      fn_.blocks[from].succs.push_back(to);
      fn_.blocks[to].preds.push_back(from);
    };
    if (fn_.blocks.size() > 1) add_edge(0, block_at.begin()->second);
    for (uint32_t id = 1; id < fn_.blocks.size(); ++id) {
      Block& b = fn_.blocks[id];
      if (b.insts.empty()) continue;  // trailing leader with no instructions
      const Inst& last = b.insts.back();
      RawInst ri{last.orig_pc, last.src};
      if (is_terminator(last.src.op)) {
        for (uint32_t succ : insn_successors(units, ri)) {
          auto it = block_at.find(succ);
          if (it == block_at.end()) {
            throw support::ParseError("branch target " + std::to_string(succ) +
                                      " has no block");
          }
          add_edge(id, it->second);
        }
      } else {
        uint32_t next = last.orig_pc + last.src.width;
        auto it = block_at.find(next);
        if (it != block_at.end()) add_edge(id, it->second);
        // else: falls off the end or into a payload — verifier territory;
        // the block simply has no normal successor here.
      }
      // Handler edges for covered instructions (exactly one per block
      // thanks to the per-instruction try split above).
      for (const dex::TryItem& t : fn_.tries) {
        for (const Inst& inst : b.insts) {
          if (inst.orig_pc >= t.start_pc && inst.orig_pc < t.end_pc) {
            add_edge(id, block_at.at(t.handler_pc));
            break;
          }
        }
      }
    }
  }

  void link_switch_payloads() {
    for (const Block& b : fn_.blocks) {
      for (const Inst& inst : b.insts) {
        if (inst.src.op != Op::kPackedSwitch) continue;
        uint32_t payload_pc =
            static_cast<uint32_t>(inst.orig_pc + inst.src.off);
        for (PayloadIsland& island : fn_.payloads) {
          if (island.pc == payload_pc) {
            island.switch_pcs.push_back(inst.orig_pc);
          }
        }
      }
    }
  }

  void mark_reachable() {
    for (Block& b : fn_.blocks) b.reachable = false;
    std::vector<uint32_t> stack{0};
    if (fn_.blocks.empty()) return;
    fn_.blocks[0].reachable = true;
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      for (uint32_t s : fn_.blocks[id].succs) {
        if (!fn_.blocks[s].reachable) {
          fn_.blocks[s].reachable = true;
          stack.push_back(s);
        }
      }
    }
  }

  // Unreachable blocks are kept for verbatim re-emission but leave the
  // CFG entirely: their edges would otherwise force phi operands that no
  // reachable definition can supply.
  void strip_unreachable_edges() {
    for (Block& b : fn_.blocks) {
      if (b.reachable) {
        std::erase_if(b.preds,
                      [&](uint32_t p) { return !fn_.blocks[p].reachable; });
        std::erase_if(b.succs,
                      [&](uint32_t s) { return !fn_.blocks[s].reachable; });
      } else {
        b.preds.clear();
        b.succs.clear();
      }
    }
  }

  void place_phis() {
    // Dominance frontiers (Cooper–Harvey–Kennedy "runner" formulation).
    std::vector<std::set<uint32_t>> frontier(fn_.blocks.size());
    for (const Block& b : fn_.blocks) {
      if (!b.reachable || b.preds.size() < 2) continue;
      for (uint32_t p : b.preds) {
        for (uint32_t runner = p;
             runner != kNoBlock && runner != idom_[b.id];
             runner = idom_[runner]) {
          frontier[runner].insert(b.id);
        }
      }
    }

    // Definition sites per SSA register (frame registers + invoke result).
    // The synthetic entry defines everything live-in.
    std::vector<std::set<uint32_t>> def_blocks(fn_.ssa_regs());
    for (uint16_t r = 0; r < fn_.ssa_regs(); ++r) def_blocks[r].insert(0);
    for (const Block& b : fn_.blocks) {
      if (!b.reachable) continue;
      for (const Inst& inst : b.insts) {
        if (auto w = insn_written_reg(inst.src)) def_blocks[*w].insert(b.id);
        if (writes_result(inst.src)) def_blocks[fn_.result_reg()].insert(b.id);
      }
    }

    for (uint16_t r = 0; r < fn_.ssa_regs(); ++r) {
      if (def_blocks[r].size() < 2) continue;  // entry-only: no joins needed
      std::set<uint32_t> has_phi;
      std::vector<uint32_t> work(def_blocks[r].begin(), def_blocks[r].end());
      while (!work.empty()) {
        uint32_t d = work.back();
        work.pop_back();
        for (uint32_t f : frontier[d]) {
          if (has_phi.insert(f).second) {
            Phi phi;
            phi.reg = r;
            phi.args.assign(fn_.blocks[f].preds.size(), kNoValue);
            fn_.blocks[f].phis.push_back(std::move(phi));
            if (!def_blocks[r].count(f)) work.push_back(f);
          }
        }
      }
    }
  }

  void rename() {
    std::vector<std::vector<ValueId>> stack(fn_.ssa_regs());
    // Live-in definitions, owned by the synthetic entry.
    for (uint16_t r = 0; r < fn_.ssa_regs(); ++r) {
      stack[r].push_back(fn_.new_value(TypeKind::kUnknown, r, 0, kEntryDef));
    }

    std::vector<std::vector<uint32_t>> children(fn_.blocks.size());
    for (const Block& b : fn_.blocks) {
      if (b.reachable && b.id != 0 && idom_[b.id] != kNoBlock) {
        children[idom_[b.id]].push_back(b.id);
      }
    }

    struct Frame {
      uint32_t block;
      bool entered = false;
      std::vector<uint16_t> pushed;  // regs to pop on exit
    };
    std::vector<Frame> dfs;
    dfs.push_back({0, false, {}});
    std::vector<uint8_t> regs_buf;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      if (frame.entered) {
        for (auto it = frame.pushed.rbegin(); it != frame.pushed.rend(); ++it) {
          stack[*it].pop_back();
        }
        dfs.pop_back();
        continue;
      }
      frame.entered = true;
      Block& b = fn_.blocks[frame.block];

      for (Phi& phi : b.phis) {
        phi.dest = fn_.new_value(TypeKind::kUnknown, phi.reg, b.id, kPhiDef);
        stack[phi.reg].push_back(phi.dest);
        frame.pushed.push_back(phi.reg);
      }
      for (size_t i = 0; i < b.insts.size(); ++i) {
        Inst& inst = b.insts[i];
        if (reads_result(inst.src)) {
          inst.uses.push_back(stack[fn_.result_reg()].back());
        } else {
          insn_read_regs(inst.src, regs_buf);
          for (uint8_t r : regs_buf) {
            if (r >= fn_.registers_size) {
              throw support::ParseError("register v" + std::to_string(r) +
                                        " out of frame");
            }
            inst.uses.push_back(stack[r].back());
          }
        }
        uint16_t def_reg;
        bool has_def = false;
        if (auto w = insn_written_reg(inst.src)) {
          if (*w >= fn_.registers_size) {
            throw support::ParseError("register v" + std::to_string(*w) +
                                      " out of frame");
          }
          def_reg = *w;
          has_def = true;
        } else if (writes_result(inst.src)) {
          def_reg = fn_.result_reg();
          has_def = true;
        }
        if (has_def) {
          inst.def = fn_.new_value(TypeKind::kUnknown, def_reg, b.id,
                                   static_cast<int32_t>(i));
          stack[def_reg].push_back(inst.def);
          frame.pushed.push_back(def_reg);
        }
      }
      for (uint32_t s : b.succs) {
        Block& succ = fn_.blocks[s];
        for (Phi& phi : succ.phis) {
          for (size_t j = 0; j < succ.preds.size(); ++j) {
            if (succ.preds[j] == b.id) phi.args[j] = stack[phi.reg].back();
          }
        }
      }
      for (auto it = children[b.id].rbegin(); it != children[b.id].rend();
           ++it) {
        dfs.push_back({*it, false, {}});
      }
    }
  }

  const dex::CodeItem& code_;
  Function fn_;
  std::vector<uint32_t> idom_;
};

// Seeds and propagates TypeKind facts over the SSA graph. Conflicting
// evidence collapses to kUnknown (the analysis treats that as "any").
void infer_types(Function& fn, const dex::DexFile* file,
                 const dex::MethodDef* method) {
  // Seed argument registers from the method shorty. Arguments occupy the
  // trailing ins_size registers; instance methods pass `this` first.
  if (file != nullptr && method != nullptr) {
    const dex::MethodRef& ref = file->methods.at(method->method_ref);
    const dex::Proto& proto = file->protos.at(ref.proto);
    std::vector<TypeKind> arg_kinds;
    if ((method->access_flags & dex::kAccStatic) == 0) {
      arg_kinds.push_back(TypeKind::kRef);  // this
    }
    for (uint32_t p : proto.param_types) {
      arg_kinds.push_back(kind_from_descriptor(file->type_descriptor(p)));
    }
    uint16_t base = static_cast<uint16_t>(fn.registers_size - fn.ins_size);
    for (ValueId v = 0; v < fn.values.size(); ++v) {
      Value& val = fn.values[v];
      if (val.def_inst != kEntryDef || val.origin_reg < base ||
          val.origin_reg >= fn.registers_size) {
        continue;
      }
      size_t arg_index = static_cast<size_t>(val.origin_reg - base);
      if (arg_index < arg_kinds.size()) val.type = arg_kinds[arg_index];
    }
  }

  // Structural seeds + propagation worklist over moves, phis, move-result.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Block& b : fn.blocks) {
      if (!b.reachable) continue;
      for (Phi& phi : b.phis) {
        TypeKind t = TypeKind::kUnknown;
        bool conflict = false;
        for (ValueId a : phi.args) {
          if (a != kNoValue) t = join_types(t, fn.values[a].type, conflict);
        }
        if (conflict) t = TypeKind::kUnknown;
        if (!conflict && t != TypeKind::kUnknown &&
            fn.values[phi.dest].type != t) {
          fn.values[phi.dest].type = t;
          changed = true;
        }
      }
      for (Inst& inst : b.insts) {
        if (inst.def == kNoValue) continue;
        TypeKind t = TypeKind::kUnknown;
        switch (inst.src.op) {
          case Op::kConst16:
          case Op::kConst32:
          case Op::kAdd:
          case Op::kSub:
          case Op::kMul:
          case Op::kDiv:
          case Op::kRem:
          case Op::kAnd:
          case Op::kOr:
          case Op::kXor:
          case Op::kShl:
          case Op::kShr:
          case Op::kCmp:
          case Op::kAddLit8:
          case Op::kMulLit8:
          case Op::kNeg:
          case Op::kNot:
          case Op::kArrayLength:
          case Op::kInstanceOf:
            t = TypeKind::kInt;
            break;
          case Op::kConstWide:
            t = TypeKind::kWide;
            break;
          case Op::kConstString:
          case Op::kConstNull:
          case Op::kNewInstance:
          case Op::kNewArray:
          case Op::kMoveException:
            t = TypeKind::kRef;
            break;
          case Op::kMove:
          case Op::kMoveResult:
            if (!inst.uses.empty()) t = fn.values[inst.uses[0]].type;
            break;
          case Op::kIget:
          case Op::kSget:
            if (file != nullptr && inst.src.idx < file->fields.size()) {
              t = kind_from_descriptor(
                  file->type_descriptor(file->fields[inst.src.idx].type));
            }
            break;
          case Op::kInvokeVirtual:
          case Op::kInvokeDirect:
          case Op::kInvokeStatic:
            if (file != nullptr && inst.src.idx < file->methods.size()) {
              const dex::Proto& p =
                  file->protos.at(file->methods[inst.src.idx].proto);
              t = kind_from_descriptor(file->type_descriptor(p.return_type));
            }
            break;
          default:
            break;
        }
        if (t != TypeKind::kUnknown && fn.values[inst.def].type != t) {
          fn.values[inst.def].type = t;
          changed = true;
        }
      }
    }
  }
}

}  // namespace

Function lift_code(const dex::CodeItem& code) {
  Function fn = Lifter(code).run();
  infer_types(fn, nullptr, nullptr);
  return fn;
}

Function lift_method(const dex::DexFile& file, const dex::MethodDef& method) {
  if (!method.code.has_value()) {
    throw support::ParseError("lift_method: method has no code");
  }
  Function fn = Lifter(*method.code).run();
  infer_types(fn, &file, &method);
  return fn;
}

}  // namespace dexlego::ir
