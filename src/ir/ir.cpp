#include "src/ir/ir.h"

#include <algorithm>
#include <sstream>

namespace dexlego::ir {

using bc::Insn;
using bc::Op;

const char* type_name(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt: return "int";
    case TypeKind::kWide: return "wide";
    case TypeKind::kRef: return "ref";
    case TypeKind::kUnknown: break;
  }
  return "?";
}

ValueId Function::new_value(TypeKind type, int32_t origin_reg,
                            uint32_t def_block, int32_t def_inst) {
  values.push_back(Value{type, origin_reg, def_block, def_inst});
  return static_cast<ValueId>(values.size() - 1);
}

void insn_read_regs(const Insn& insn, std::vector<uint8_t>& out) {
  out.clear();
  switch (insn.op) {
    case Op::kMove:
      out.push_back(insn.b);
      break;
    case Op::kReturn:
    case Op::kThrow:
    case Op::kPackedSwitch:
    case Op::kSput:
      out.push_back(insn.a);
      break;
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
      out.push_back(insn.a);
      out.push_back(insn.b);
      break;
    case Op::kIfEqz:
    case Op::kIfNez:
    case Op::kIfLtz:
    case Op::kIfGez:
    case Op::kIfGtz:
    case Op::kIfLez:
      out.push_back(insn.a);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
      out.push_back(insn.b);
      out.push_back(insn.c);
      break;
    case Op::kAddLit8:
    case Op::kMulLit8:
    case Op::kNeg:
    case Op::kNot:
    case Op::kNewArray:
    case Op::kArrayLength:
    case Op::kIget:
    case Op::kInstanceOf:
      out.push_back(insn.b);
      break;
    case Op::kAput:  // vB[vC] <- vA
      out.push_back(insn.a);
      out.push_back(insn.b);
      out.push_back(insn.c);
      break;
    case Op::kIput:  // vB.field <- vA
      out.push_back(insn.a);
      out.push_back(insn.b);
      break;
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      for (uint8_t i = 0; i < insn.a && i < 4; ++i) out.push_back(insn.args[i]);
      break;
    default:
      break;
  }
}

std::optional<uint8_t> insn_written_reg(const Insn& insn) {
  switch (insn.op) {
    case Op::kMove:
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide:
    case Op::kConstString:
    case Op::kConstNull:
    case Op::kMoveResult:
    case Op::kMoveException:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAddLit8:
    case Op::kMulLit8:
    case Op::kNeg:
    case Op::kNot:
    case Op::kNewInstance:
    case Op::kNewArray:
    case Op::kArrayLength:
    case Op::kAget:
    case Op::kIget:
    case Op::kSget:
    case Op::kInstanceOf:
      return insn.a;
    default:
      return std::nullopt;
  }
}

namespace {

// Reverse postorder over reachable blocks (entry first).
std::vector<uint32_t> reverse_postorder(const Function& fn) {
  std::vector<uint32_t> order;
  if (fn.blocks.empty()) return order;
  std::vector<uint8_t> state(fn.blocks.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<uint32_t, size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const Block& blk = fn.blocks[b];
    if (next < blk.succs.size()) {
      uint32_t s = blk.succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<uint32_t> compute_idoms(const Function& fn) {
  std::vector<uint32_t> idom(fn.blocks.size(), kNoBlock);
  if (fn.blocks.empty()) return idom;
  std::vector<uint32_t> rpo = reverse_postorder(fn);
  std::vector<uint32_t> rpo_index(fn.blocks.size(), kNoBlock);
  for (uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  auto intersect = [&](uint32_t a, uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  idom[0] = 0;  // sentinel: entry's idom is itself during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t i = 1; i < rpo.size(); ++i) {
      uint32_t b = rpo[i];
      uint32_t new_idom = kNoBlock;
      for (uint32_t p : fn.blocks[b].preds) {
        if (rpo_index[p] == kNoBlock || idom[p] == kNoBlock) continue;
        new_idom = (new_idom == kNoBlock) ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  idom[0] = kNoBlock;  // entry has no immediate dominator
  return idom;
}

bool dominates(const std::vector<uint32_t>& idom, uint32_t a, uint32_t b) {
  // Walk b's dominator chain up to the entry; chains are short in practice.
  for (uint32_t cur = b; cur != kNoBlock; cur = idom[cur]) {
    if (cur == a) return true;
  }
  return false;
}

namespace {

struct DefSite {
  uint32_t block = kNoBlock;
  int32_t inst = kEntryDef;
  bool seen = false;
};

}  // namespace

std::vector<std::string> verify_function(const Function& fn) {
  std::vector<std::string> errors;
  auto fail = [&](std::string msg) { errors.push_back(std::move(msg)); };

  std::vector<DefSite> defs(fn.values.size());
  auto record_def = [&](ValueId v, uint32_t block, int32_t inst) {
    if (v >= fn.values.size()) {
      fail("def of out-of-range value %" + std::to_string(v));
      return;
    }
    if (defs[v].seen) {
      fail("value %" + std::to_string(v) + " defined more than once");
      return;
    }
    defs[v] = DefSite{block, inst, true};
    const Value& val = fn.values[v];
    if (val.def_block != block || val.def_inst != inst) {
      fail("value %" + std::to_string(v) + " def coordinates stale: stored (" +
           std::to_string(val.def_block) + "," + std::to_string(val.def_inst) +
           ") actual (" + std::to_string(block) + "," + std::to_string(inst) +
           ")");
    }
  };

  // Entry defs: values with def_inst == kEntryDef belong to block 0.
  for (ValueId v = 0; v < fn.values.size(); ++v) {
    if (fn.values[v].def_inst == kEntryDef) {
      if (fn.values[v].def_block != 0) {
        fail("entry value %" + std::to_string(v) + " not in block 0");
      }
      defs[v] = DefSite{0, kEntryDef, true};
    }
  }

  for (const Block& b : fn.blocks) {
    if (!b.reachable) {
      // Raw blocks carry no SSA links.
      if (!b.phis.empty()) {
        fail("unreachable block " + std::to_string(b.id) + " has phis");
      }
      for (const Inst& inst : b.insts) {
        if (inst.def != kNoValue || !inst.uses.empty()) {
          fail("unreachable block " + std::to_string(b.id) +
               " has SSA-linked instruction at pc " +
               std::to_string(inst.orig_pc));
        }
      }
      continue;
    }
    for (const Phi& phi : b.phis) {
      record_def(phi.dest, b.id, kPhiDef);
      if (phi.args.size() != b.preds.size()) {
        fail("phi %" + std::to_string(phi.dest) + " in block " +
             std::to_string(b.id) + " has " + std::to_string(phi.args.size()) +
             " operands for " + std::to_string(b.preds.size()) +
             " predecessors");
      }
    }
    for (size_t i = 0; i < b.insts.size(); ++i) {
      if (b.insts[i].def != kNoValue) {
        record_def(b.insts[i].def, b.id, static_cast<int32_t>(i));
      }
    }
    // Edge consistency: every pred lists us as succ and vice versa.
    for (uint32_t p : b.preds) {
      const auto& ss = fn.blocks[p].succs;
      if (std::find(ss.begin(), ss.end(), b.id) == ss.end()) {
        fail("block " + std::to_string(b.id) + " pred " + std::to_string(p) +
             " does not list it as successor");
      }
    }
  }

  std::vector<uint32_t> idom = compute_idoms(fn);

  auto check_use = [&](ValueId v, uint32_t use_block, int32_t use_inst,
                       const char* what) {
    if (v >= fn.values.size() || !defs[v].seen) {
      fail(std::string(what) + " in block " + std::to_string(use_block) +
           " uses undefined value %" + std::to_string(v));
      return;
    }
    const DefSite& d = defs[v];
    if (d.block == use_block) {
      // Same block: entry/phi defs precede all instructions; instruction
      // defs must precede the use.
      if (d.inst >= 0 && use_inst >= 0 && d.inst >= use_inst) {
        fail(std::string(what) + " in block " + std::to_string(use_block) +
             " uses value %" + std::to_string(v) + " before its definition");
      }
      return;
    }
    if (!dominates(idom, d.block, use_block)) {
      fail(std::string(what) + " in block " + std::to_string(use_block) +
           " uses value %" + std::to_string(v) + " whose def block " +
           std::to_string(d.block) + " does not dominate it");
    }
  };

  for (const Block& b : fn.blocks) {
    if (!b.reachable) continue;
    for (const Phi& phi : b.phis) {
      // A phi operand must be defined in or above the corresponding
      // predecessor (it is "used" at the end of that edge).
      for (size_t i = 0; i < phi.args.size() && i < b.preds.size(); ++i) {
        ValueId v = phi.args[i];
        uint32_t pred = b.preds[i];
        if (v >= fn.values.size() || !defs[v].seen) {
          fail("phi %" + std::to_string(phi.dest) + " operand " +
               std::to_string(i) + " undefined");
          continue;
        }
        if (defs[v].block != pred && !dominates(idom, defs[v].block, pred)) {
          fail("phi %" + std::to_string(phi.dest) + " operand %" +
               std::to_string(v) + " def block " +
               std::to_string(defs[v].block) + " does not dominate pred " +
               std::to_string(pred));
        }
      }
    }
    for (size_t i = 0; i < b.insts.size(); ++i) {
      for (ValueId v : b.insts[i].uses) {
        check_use(v, b.id, static_cast<int32_t>(i), "instruction");
      }
    }
  }
  return errors;
}

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "function: regs=" << fn.registers_size << " ins=" << fn.ins_size
     << " values=" << fn.values.size() << "\n";
  auto val = [&](ValueId v) {
    std::ostringstream s;
    if (v == kNoValue) {
      s << "%?";
    } else {
      s << "%" << v;
      if (fn.values[v].type != TypeKind::kUnknown) {
        s << ":" << type_name(fn.values[v].type);
      }
    }
    return s.str();
  };
  for (const Block& b : fn.blocks) {
    os << "b" << b.id << " @" << b.start_pc
       << (b.reachable ? "" : " (unreachable)") << "  preds=[";
    for (size_t i = 0; i < b.preds.size(); ++i) {
      os << (i ? "," : "") << b.preds[i];
    }
    os << "] succs=[";
    for (size_t i = 0; i < b.succs.size(); ++i) {
      os << (i ? "," : "") << b.succs[i];
    }
    os << "]\n";
    for (const Phi& phi : b.phis) {
      os << "  " << val(phi.dest) << " = phi v" << phi.reg << " [";
      for (size_t i = 0; i < phi.args.size(); ++i) {
        os << (i ? ", " : "") << val(phi.args[i]);
      }
      os << "]\n";
    }
    for (const Inst& inst : b.insts) {
      os << "  ";
      if (inst.dead) os << "(dead) ";
      if (inst.def != kNoValue) os << val(inst.def) << " = ";
      os << bc::op_info(inst.src.op).name;
      for (size_t i = 0; i < inst.uses.size(); ++i) {
        os << (i ? ", " : " ") << val(inst.uses[i]);
      }
      os << "  ; pc=" << inst.orig_pc << "\n";
    }
  }
  return os.str();
}

}  // namespace dexlego::ir
