// Whole-file IR round-trip driver: lifts every code-bearing method to SSA,
// lowers it back, and checks the lowered body is byte-identical to the
// source (the invariant-15 contract when no pass ran). Optionally applies
// dead-code elimination and rewrites the optimized bodies in place — the
// differential oracle then owns proving trace equivalence.
#pragma once

#include <string>
#include <vector>

#include "src/dex/dex.h"

namespace dexlego::ir {

struct RoundtripStats {
  uint32_t methods = 0;         // code-bearing methods visited
  uint32_t lifted = 0;          // lift + SSA verify succeeded
  uint32_t byte_identical = 0;  // lower(lift(code)) == code
  uint32_t mismatched = 0;      // lowered bytes differ (contract violation)
  uint32_t failed = 0;          // lift/lower/SSA-verify error
  uint32_t dce_insts_removed = 0;
  uint32_t dce_units_removed = 0;
  uint32_t dce_methods_changed = 0;  // bodies rewritten by DCE

  bool clean() const { return mismatched == 0 && failed == 0; }
};

struct RoundtripOptions {
  bool apply_dce = false;    // rewrite bodies with dead code removed
  bool check_ssa = true;     // run verify_function on every lifted body
};

// Round-trips every method body in `file`. With apply_dce, bodies where
// DCE removed anything are replaced by the optimized lowering (only when
// it still passes the bytecode verifier). Per-method problems are
// appended to `errors` when non-null.
RoundtripStats roundtrip_file(dex::DexFile& file, const RoundtripOptions& options,
                              std::vector<std::string>* errors = nullptr);

// Single-method byte-identity probe for tests: lifts `method`, lowers it,
// compares bytes. Returns false (with a message) on any failure.
bool roundtrip_identical(const dex::DexFile& file, const dex::MethodDef& method,
                         std::string* error = nullptr);

}  // namespace dexlego::ir
