#include "src/ir/roundtrip.h"

#include <exception>

#include "src/bytecode/verify_code.h"
#include "src/ir/ir.h"
#include "src/ir/lift.h"
#include "src/ir/lower.h"
#include "src/ir/passes.h"

namespace dexlego::ir {

namespace {

bool same_body(const dex::CodeItem& a, const dex::CodeItem& b) {
  return a.registers_size == b.registers_size && a.ins_size == b.ins_size &&
         a.insns == b.insns && a.tries.size() == b.tries.size() &&
         [&] {
           for (size_t i = 0; i < a.tries.size(); ++i) {
             if (a.tries[i].start_pc != b.tries[i].start_pc ||
                 a.tries[i].end_pc != b.tries[i].end_pc ||
                 a.tries[i].handler_pc != b.tries[i].handler_pc) {
               return false;
             }
           }
           if (a.lines.size() != b.lines.size()) return false;
           for (size_t i = 0; i < a.lines.size(); ++i) {
             if (a.lines[i].pc != b.lines[i].pc ||
                 a.lines[i].line != b.lines[i].line) {
               return false;
             }
           }
           return true;
         }();
}

void roundtrip_method(dex::DexFile& file, dex::MethodDef& method,
                      const RoundtripOptions& options, RoundtripStats& stats,
                      std::vector<std::string>* errors) {
  if (!method.code.has_value()) return;
  ++stats.methods;
  std::string where = file.pretty_method(method.method_ref);
  auto report = [&](const std::string& what) {
    if (errors != nullptr) errors->push_back(where + ": " + what);
  };
  try {
    Function fn = lift_method(file, method);
    if (options.check_ssa) {
      std::vector<std::string> ssa_errors = verify_function(fn);
      if (!ssa_errors.empty()) {
        ++stats.failed;
        report("SSA verify: " + ssa_errors.front());
        return;
      }
    }
    ++stats.lifted;
    dex::CodeItem lowered = lower(fn);
    if (same_body(*method.code, lowered)) {
      ++stats.byte_identical;
    } else {
      ++stats.mismatched;
      report("lower(lift(code)) differs from source");
      return;
    }
    if (options.apply_dce) {
      DceStats dce = dead_code_elim(fn);
      if (dce.insts_removed == 0 && !fn.drop_unreachable) return;
      dex::CodeItem optimized = lower(fn);
      dex::VerifyResult check = bc::verify_code(file, optimized, where);
      if (!check.ok()) {
        ++stats.failed;
        report("DCE output fails verify: " + check.errors.front());
        return;
      }
      stats.dce_insts_removed += dce.insts_removed;
      stats.dce_units_removed += dce.units_removed;
      ++stats.dce_methods_changed;
      method.code = std::move(optimized);
    }
  } catch (const std::exception& e) {
    ++stats.failed;
    report(e.what());
  }
}

}  // namespace

RoundtripStats roundtrip_file(dex::DexFile& file,
                              const RoundtripOptions& options,
                              std::vector<std::string>* errors) {
  RoundtripStats stats;
  for (dex::ClassDef& cls : file.classes) {
    for (dex::MethodDef& m : cls.direct_methods) {
      roundtrip_method(file, m, options, stats, errors);
    }
    for (dex::MethodDef& m : cls.virtual_methods) {
      roundtrip_method(file, m, options, stats, errors);
    }
  }
  return stats;
}

bool roundtrip_identical(const dex::DexFile& file,
                         const dex::MethodDef& method, std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (!method.code.has_value()) return fail("method has no code");
  try {
    Function fn = lift_method(file, method);
    std::vector<std::string> ssa_errors = verify_function(fn);
    if (!ssa_errors.empty()) return fail("SSA verify: " + ssa_errors.front());
    dex::CodeItem lowered = lower(fn);
    if (!same_body(*method.code, lowered)) {
      return fail("lower(lift(code)) differs from source");
    }
    return true;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

}  // namespace dexlego::ir
