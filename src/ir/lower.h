// Lowers SSA IR back to LDEX code units. Out-of-SSA is copy-free when the
// function came straight from the lifter (every phi joins versions of one
// original register), so `lower(lift(code)) == code` byte-for-byte; passes
// that introduce values or drop instructions trigger copy insertion /
// scratch-register allocation and offset, try-range and line-table
// remapping. Throws support::ParseError when the result cannot be encoded
// (offset overflow, register pressure past v255, copies on critical edges).
#pragma once

#include "src/dex/dex.h"
#include "src/ir/ir.h"

namespace dexlego::ir {

dex::CodeItem lower(const Function& fn);

}  // namespace dexlego::ir
