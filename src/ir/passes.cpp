#include "src/ir/passes.h"

#include <vector>

namespace dexlego::ir {

namespace {

using bc::Op;

// Opcodes with no observable effect beyond their register result: cannot
// throw, touch the heap, or transfer control under the interpreter.
// kMoveException stays a root (it consumes the pending-exception slot) and
// every potentially-throwing opcode (div/rem, array and field accesses,
// new-instance/new-array, invokes) keeps its exception behaviour.
bool is_pure(Op op) {
  switch (op) {
    case Op::kNop:
    case Op::kMove:
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide:
    case Op::kConstString:
    case Op::kConstNull:
    case Op::kMoveResult:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAddLit8:
    case Op::kMulLit8:
    case Op::kNeg:
    case Op::kNot:
    case Op::kInstanceOf:
      return true;
    default:
      return false;
  }
}

}  // namespace

DceStats dead_code_elim(Function& fn) {
  DceStats stats;
  std::vector<uint8_t> live(fn.values.size(), 0);
  std::vector<ValueId> work;
  auto mark = [&](ValueId v) {
    if (v != kNoValue && !live[v]) {
      live[v] = 1;
      work.push_back(v);
    }
  };

  // Roots: uses of every effectful instruction.
  for (const Block& b : fn.blocks) {
    if (!b.reachable) continue;
    for (const Inst& inst : b.insts) {
      if (is_pure(inst.src.op)) continue;
      for (ValueId u : inst.uses) mark(u);
    }
  }

  // Propagate through definitions: a live value keeps its defining
  // instruction, which keeps its own uses; live phis keep their operands.
  while (!work.empty()) {
    ValueId v = work.back();
    work.pop_back();
    const Value& val = fn.values[v];
    if (val.def_inst == kEntryDef || val.def_block >= fn.blocks.size()) {
      continue;
    }
    const Block& b = fn.blocks[val.def_block];
    if (val.def_inst == kPhiDef) {
      for (const Phi& phi : b.phis) {
        if (phi.dest == v) {
          for (ValueId a : phi.args) mark(a);
          break;
        }
      }
    } else if (val.def_inst >= 0 &&
               static_cast<size_t>(val.def_inst) < b.insts.size()) {
      for (ValueId u : b.insts[val.def_inst].uses) mark(u);
    }
  }

  for (Block& b : fn.blocks) {
    if (!b.reachable) {
      // Raw unreachable blocks are dropped wholesale at lowering time.
      for (const Inst& inst : b.insts) {
        stats.units_removed +=
            static_cast<uint32_t>(bc::consumed_units(inst.src));
      }
      if (!b.insts.empty()) {
        ++stats.blocks_dropped;
        fn.drop_unreachable = true;
      }
      continue;
    }
    for (Inst& inst : b.insts) {
      if (inst.dead || !is_pure(inst.src.op)) continue;
      if (inst.def != kNoValue && live[inst.def]) continue;
      inst.dead = true;
      ++stats.insts_removed;
      stats.units_removed += static_cast<uint32_t>(bc::consumed_units(inst.src));
    }
  }
  return stats;
}

}  // namespace dexlego::ir
