#include "src/ir/lower.h"

#include <algorithm>
#include <map>

#include "src/support/bytes.h"

namespace dexlego::ir {

namespace {

using bc::Insn;
using bc::Op;

// Rewrites the register operands of inst.src from the SSA value → register
// assignment. Field order mirrors insn_read_regs / insn_written_reg.
Insn rebuild_insn(const Inst& inst, const std::vector<uint16_t>& reg_of) {
  Insn out = inst.src;
  if (inst.def == kNoValue && inst.uses.empty()) return out;  // raw / no regs
  auto reg8 = [&](ValueId v) {
    uint16_t r = reg_of[v];
    if (r > 0xff) {
      throw support::ParseError("lower: register v" + std::to_string(r) +
                                " not encodable");
    }
    return static_cast<uint8_t>(r);
  };
  const auto& u = inst.uses;
  switch (out.op) {
    case Op::kMove:
      out.b = reg8(u[0]);
      break;
    case Op::kReturn:
    case Op::kThrow:
    case Op::kPackedSwitch:
    case Op::kSput:
      out.a = reg8(u[0]);
      break;
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
      out.a = reg8(u[0]);
      out.b = reg8(u[1]);
      break;
    case Op::kIfEqz:
    case Op::kIfNez:
    case Op::kIfLtz:
    case Op::kIfGez:
    case Op::kIfGtz:
    case Op::kIfLez:
      out.a = reg8(u[0]);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
      out.b = reg8(u[0]);
      out.c = reg8(u[1]);
      break;
    case Op::kAddLit8:
    case Op::kMulLit8:
    case Op::kNeg:
    case Op::kNot:
    case Op::kNewArray:
    case Op::kArrayLength:
    case Op::kIget:
    case Op::kInstanceOf:
      out.b = reg8(u[0]);
      break;
    case Op::kAput:
      out.a = reg8(u[0]);
      out.b = reg8(u[1]);
      out.c = reg8(u[2]);
      break;
    case Op::kIput:
      out.a = reg8(u[0]);
      out.b = reg8(u[1]);
      break;
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      for (size_t i = 0; i < u.size() && i < 4; ++i) out.args[i] = reg8(u[i]);
      break;
    default:
      break;
  }
  // kMoveResult's use is the pseudo result register — never encoded.
  if (inst.def != kNoValue && insn_written_reg(inst.src).has_value()) {
    out.a = reg8(inst.def);
  }
  return out;
}

bool is_branch(Op op) {
  return op == Op::kGoto || bc::is_conditional_branch(op) ||
         op == Op::kPackedSwitch;
}

// One scheduled emission: either an original IR instruction, an inserted
// copy, or a payload island.
struct EmitItem {
  enum class Kind { kInst, kCopy, kPayload } kind = Kind::kInst;
  const Inst* inst = nullptr;          // kInst
  Insn copy;                           // kCopy
  const PayloadIsland* island = nullptr;  // kPayload
  uint32_t old_pc = 0;   // kInst / kPayload only (copies have no old pc)
  bool has_old_pc = false;
  uint32_t new_pc = 0;
  size_t width = 0;
};

}  // namespace

dex::CodeItem lower(const Function& fn) {
  // 1. Register assignment: every lifter-made value keeps its origin
  // register; pass-introduced temporaries get scratch registers above the
  // frame (index registers_size is reserved for the result pseudo slot).
  std::vector<uint16_t> reg_of(fn.values.size(), 0);
  uint16_t next_scratch = static_cast<uint16_t>(fn.registers_size + 1);
  for (ValueId v = 0; v < fn.values.size(); ++v) {
    if (fn.values[v].origin_reg >= 0) {
      reg_of[v] = static_cast<uint16_t>(fn.values[v].origin_reg);
    } else {
      reg_of[v] = next_scratch++;
    }
  }

  // 2. Copy insertion: a phi whose operand lives in a different register
  // than its destination needs a move at the end of the predecessor.
  std::map<uint32_t, std::vector<Insn>> copies;  // block id -> moves
  for (const Block& b : fn.blocks) {
    if (!b.reachable) continue;
    for (const Phi& phi : b.phis) {
      uint16_t dreg = reg_of[phi.dest];
      for (size_t i = 0; i < phi.args.size() && i < b.preds.size(); ++i) {
        ValueId a = phi.args[i];
        if (a == kNoValue || reg_of[a] == dreg) continue;
        const Block& pred = fn.blocks[b.preds[i]];
        if (pred.succs.size() > 1) {
          throw support::ParseError(
              "lower: phi copy needed on critical edge from block " +
              std::to_string(pred.id));
        }
        if (dreg > 0xff || reg_of[a] > 0xff) {
          throw support::ParseError("lower: copy register not encodable");
        }
        Insn mv;
        mv.op = Op::kMove;
        mv.a = static_cast<uint8_t>(dreg);
        mv.b = static_cast<uint8_t>(reg_of[a]);
        mv.width = bc::op_info(Op::kMove).width;
        auto& list = copies[pred.id];
        if (std::find(list.begin(), list.end(), mv) == list.end()) {
          // A later copy must not read a register an earlier one wrote
          // (parallel-copy cycles need a temp we do not allocate).
          for (const Insn& prev : list) {
            if (prev.a == mv.b) {
              throw support::ParseError(
                  "lower: parallel phi copies require a temporary");
            }
          }
          list.push_back(mv);
        }
      }
    }
  }

  // 3. Schedule emission in layout order, interleaving payload islands at
  // their original positions. Dead instructions and (under DCE) raw
  // unreachable blocks are skipped.
  auto payload_live = [&](const PayloadIsland& island) {
    if (!fn.drop_unreachable) return true;
    for (const Block& b : fn.blocks) {
      if (!b.reachable) continue;
      for (const Inst& inst : b.insts) {
        if (inst.src.op == Op::kPackedSwitch && !inst.dead &&
            std::find(island.switch_pcs.begin(), island.switch_pcs.end(),
                      inst.orig_pc) != island.switch_pcs.end()) {
          return true;
        }
      }
    }
    return false;
  };

  std::vector<EmitItem> items;
  size_t next_payload = 0;
  std::vector<const PayloadIsland*> payloads;
  for (const PayloadIsland& p : fn.payloads) {
    if (payload_live(p)) payloads.push_back(&p);
  }
  auto flush_payloads_before = [&](uint32_t pc) {
    while (next_payload < payloads.size() && payloads[next_payload]->pc < pc) {
      EmitItem item;
      item.kind = EmitItem::Kind::kPayload;
      item.island = payloads[next_payload];
      item.old_pc = payloads[next_payload]->pc;
      item.has_old_pc = true;
      item.width = payloads[next_payload]->units.size();
      items.push_back(item);
      ++next_payload;
    }
  };

  for (const Block& b : fn.blocks) {
    if (!b.reachable && fn.drop_unreachable) continue;
    if (!b.insts.empty()) flush_payloads_before(b.insts.front().orig_pc);
    auto copy_it = copies.find(b.id);
    size_t term_index = b.insts.size();
    if (copy_it != copies.end() && !b.insts.empty() &&
        is_branch(b.insts.back().src.op)) {
      term_index = b.insts.size() - 1;
    }
    for (size_t i = 0; i < b.insts.size(); ++i) {
      if (copy_it != copies.end() && i == term_index) {
        for (const Insn& mv : copy_it->second) {
          // The terminator must not read the copy destination.
          for (ValueId u : b.insts[i].uses) {
            if (reg_of[u] == mv.a) {
              throw support::ParseError(
                  "lower: phi copy clobbers terminator operand");
            }
          }
          EmitItem item;
          item.kind = EmitItem::Kind::kCopy;
          item.copy = mv;
          item.width = mv.width;
          items.push_back(item);
        }
      }
      const Inst& inst = b.insts[i];
      if (inst.dead) continue;
      EmitItem item;
      item.kind = EmitItem::Kind::kInst;
      item.inst = &inst;
      item.old_pc = inst.orig_pc;
      item.has_old_pc = true;
      item.width = bc::consumed_units(inst.src);
      items.push_back(item);
    }
    if (copy_it != copies.end() && term_index == b.insts.size()) {
      for (const Insn& mv : copy_it->second) {
        EmitItem item;
        item.kind = EmitItem::Kind::kCopy;
        item.copy = mv;
        item.width = mv.width;
        items.push_back(item);
      }
    }
  }
  flush_payloads_before(0xffffffffu);

  // 4. Layout: assign new pcs; build the old→new map over survivors.
  std::map<uint32_t, uint32_t> new_pc;  // old pc -> new pc
  {
    uint32_t pc = 0;
    for (EmitItem& item : items) {
      item.new_pc = pc;
      if (item.has_old_pc) new_pc[item.old_pc] = pc;
      pc += static_cast<uint32_t>(item.width);
    }
  }
  uint32_t total_units = 0;
  for (const EmitItem& item : items) {
    total_units += static_cast<uint32_t>(item.width);
  }
  // Resolve an old pc to the new pc of the first surviving item at or
  // after it (dead instructions between were removed, so jumping to the
  // next survivor is behaviour-preserving).
  auto resolve = [&](uint32_t old_pc) -> uint32_t {
    auto it = new_pc.lower_bound(old_pc);
    if (it == new_pc.end()) return total_units;
    return it->second;
  };

  // 5. Emit, recomputing branch offsets against the new layout.
  dex::CodeItem out;
  // Scratch registers occupy [registers_size + 1, next_scratch); when any
  // were allocated the frame grows to cover them (slot registers_size stays
  // an unused spacer for the result pseudo register).
  out.registers_size = (next_scratch > fn.registers_size + 1)
                           ? next_scratch
                           : fn.registers_size;
  out.ins_size = fn.ins_size;
  auto checked_off = [&](int64_t off) {
    if (off < -0x8000 || off > 0x7fff) {
      throw support::ParseError("lower: branch offset out of range");
    }
    return static_cast<int32_t>(off);
  };
  for (const EmitItem& item : items) {
    switch (item.kind) {
      case EmitItem::Kind::kCopy:
        bc::encode_to(item.copy, out.insns);
        break;
      case EmitItem::Kind::kInst: {
        Insn insn = rebuild_insn(*item.inst, reg_of);
        if (is_branch(insn.op)) {
          uint32_t old_target =
              static_cast<uint32_t>(item.old_pc + item.inst->src.off);
          insn.off = checked_off(static_cast<int64_t>(resolve(old_target)) -
                                 item.new_pc);
        }
        bc::encode_to(insn, out.insns);
        break;
      }
      case EmitItem::Kind::kPayload: {
        const PayloadIsland& island = *item.island;
        std::vector<uint16_t> units = island.units;
        if (!island.switch_pcs.empty()) {
          // Re-target relative entries against the (possibly moved)
          // referencing switch. Multiple switches sharing one payload must
          // agree on the shift.
          uint32_t sw_old = island.switch_pcs.front();
          uint32_t sw_new = resolve(sw_old);
          for (uint32_t other : island.switch_pcs) {
            int64_t shift_a =
                static_cast<int64_t>(sw_new) - static_cast<int64_t>(sw_old);
            int64_t shift_b = static_cast<int64_t>(resolve(other)) -
                              static_cast<int64_t>(other);
            if (shift_a != shift_b) {
              throw support::ParseError(
                  "lower: shared switch payload with diverging shifts");
            }
          }
          for (size_t i = 4; i < units.size(); ++i) {
            int32_t old_rel = static_cast<int16_t>(units[i]);
            uint32_t old_target = static_cast<uint32_t>(sw_old + old_rel);
            int32_t new_rel = checked_off(
                static_cast<int64_t>(resolve(old_target)) - sw_new);
            units[i] = static_cast<uint16_t>(new_rel & 0xffff);
          }
        }
        out.insns.insert(out.insns.end(), units.begin(), units.end());
        break;
      }
    }
  }

  // 6. Remap exception ranges and line entries into the new layout.
  for (const dex::TryItem& t : fn.tries) {
    uint32_t s = resolve(t.start_pc);
    uint32_t e = resolve(t.end_pc);
    uint32_t h = resolve(t.handler_pc);
    if (s >= e || h >= total_units) continue;  // range died under DCE
    dex::TryItem nt;
    nt.start_pc = static_cast<uint16_t>(s);
    nt.end_pc = static_cast<uint16_t>(e);
    nt.handler_pc = static_cast<uint16_t>(h);
    out.tries.push_back(nt);
  }
  for (const dex::LineEntry& line : fn.lines) {
    auto it = new_pc.find(line.pc);
    if (it == new_pc.end()) continue;  // instruction removed
    out.lines.push_back(dex::LineEntry{static_cast<uint16_t>(it->second),
                                       line.line});
  }
  return out;
}

}  // namespace dexlego::ir
