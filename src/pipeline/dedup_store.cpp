#include "src/pipeline/dedup_store.h"

#include <mutex>
#include <stdexcept>
#include <unordered_set>

#include "src/core/files.h"
#include "src/support/hash.h"
#include "src/support/log.h"

namespace dexlego::pipeline {

namespace {

// Default salted hash: salt 0 keeps the historical plain FNV-1a ids; the
// re-hash chain folds the salt into the stream so two contents that collide
// unsalted separate with overwhelming probability at every later salt.
DedupStore::Id default_hash(std::span<const uint8_t> content, uint64_t salt) {
  if (salt == 0) return support::fnv1a(content);
  support::Fnv1a h;
  h.add(salt);
  h.add_bytes(content);
  return h.digest();
}

size_t normalize_shards(size_t requested) {
  if (requested < 1) requested = 1;
  if (requested > 256) requested = 256;
  size_t shards = 1;
  while (shards < requested) shards <<= 1;
  return shards;
}

}  // namespace

DedupStore::DedupStore() : DedupStore(Options{}) {}

DedupStore::DedupStore(HashFn hash)
    : DedupStore(Options{kDefaultShards, std::move(hash)}) {}

DedupStore::DedupStore(Options options)
    : hash_(options.hash ? std::move(options.hash) : HashFn(default_hash)),
      shards_(normalize_shards(options.shards)) {}

DedupStore::InternResult DedupStore::intern(std::span<const uint8_t> content) {
  return intern(std::vector<uint8_t>(content.begin(), content.end()));
}

DedupStore::InternResult DedupStore::intern(std::vector<uint8_t>&& content) {
  // Hashing (and the caller's serialization/copy) happen before any lock.
  Id id = hash_(content, 0);
  for (uint64_t salt = 1;; ++salt) {
    Shard& shard = shard_for(id);
    {
      // Fast path: at steady state nearly every intern is a hit, so probe
      // under the shared lock first — concurrent hits on one shard do not
      // serialize, and counter bumps are relaxed atomics.
      std::shared_lock<std::shared_mutex> read(shard.mu);
      auto it = shard.entries.find(id);
      if (it != shard.entries.end() && it->second == content) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        shard.bytes_deduped.fetch_add(content.size(),
                                      std::memory_order_relaxed);
        return {id, false};
      }
      if (it != shard.entries.end()) {
        // 64-bit collision with a different resident content. Aliasing
        // would be silent corruption and throwing would let a hostile app
        // with an embedded colliding pair kill its own analysis job — so
        // fail open: deterministically re-key this content with the next
        // salt and retry on that salt's shard.
        if (salt > 64) {
          // 64 consecutive salted collisions is beyond adversarial; treat
          // the hash function as broken rather than loop forever.
          throw std::runtime_error(
              "DedupStore: unresolvable hash collision chain");
        }
        id = hash_(content, salt);
        continue;
      }
    }
    // Likely miss: take the exclusive lock and re-check, since another
    // thread may have inserted (or collided into) this id between the two
    // lock acquisitions.
    std::unique_lock<std::shared_mutex> write(shard.mu);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) {
      if (it->second == content) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        shard.bytes_deduped.fetch_add(content.size(),
                                      std::memory_order_relaxed);
        return {id, false};
      }
      if (salt > 64) {
        throw std::runtime_error(
            "DedupStore: unresolvable hash collision chain");
      }
      id = hash_(content, salt);
      continue;
    }
    if (salt > 1) {
      // This content's collision chain was just discovered: count the
      // links once, at insert. Later interns of the same content re-walk
      // the chain to the same id but are steady-state hits — counting or
      // logging those would hand a hostile colliding pair a per-intern
      // log-spam amplifier.
      shard.collisions.fetch_add(salt - 1, std::memory_order_relaxed);
      DL_WARN << "dedup store hash collision; content re-keyed to id " << id
              << " after " << (salt - 1) << " salted re-hashes";
    }
    // Write-ahead hook before the entry becomes visible: a persistence
    // subclass appends to its shard log here, so memory never holds an
    // entry the log does not (a throw aborts the intern pre-insert).
    persist(id, content);
    shard.bytes_stored.fetch_add(content.size(), std::memory_order_relaxed);
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    shard.entries.emplace(id, std::move(content));
    return {id, true};
  }
}

const std::vector<uint8_t>* DedupStore::lookup(Id id) const {
  Shard& shard = shard_for(id);
  std::shared_lock<std::shared_mutex> read(shard.mu);
  auto it = shard.entries.find(id);
  // Values are heap nodes in the map; the pointer outlives the lock because
  // entries are never erased and rehashing moves buckets, not values.
  return it == shard.entries.end() ? nullptr : &it->second;
}

void DedupStore::reset_intern_counters() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> write(shard.mu);
    shard.hits.store(0, std::memory_order_relaxed);
    shard.misses.store(0, std::memory_order_relaxed);
    shard.bytes_deduped.store(0, std::memory_order_relaxed);
    shard.collisions.store(0, std::memory_order_relaxed);
  }
}

DedupStore::Stats DedupStore::stats() const {
  Stats total;
  for (Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> read(shard.mu);
    total.entries += shard.entries.size();
    total.hits += shard.hits.load(std::memory_order_relaxed);
    total.misses += shard.misses.load(std::memory_order_relaxed);
    total.bytes_stored += shard.bytes_stored.load(std::memory_order_relaxed);
    total.bytes_deduped +=
        shard.bytes_deduped.load(std::memory_order_relaxed);
    total.collisions += shard.collisions.load(std::memory_order_relaxed);
  }
  return total;
}

InternedCollection intern_collection(const core::CollectionOutput& output,
                                     DedupStore& store) {
  InternedCollection interned;
  std::unordered_set<DedupStore::Id> seen;
  for (const auto& [key, rec] : output.methods) {
    std::vector<DedupStore::Id>& ids = interned.tree_ids[key];
    for (const auto& tree : rec.trees) {
      // serialize_tree returns a fresh buffer, so this binds the
      // ownership-taking overload: a miss moves instead of copying inside
      // the shard lock.
      DedupStore::InternResult result =
          store.intern(core::serialize_tree(*tree));
      ids.push_back(result.id);
      ++interned.interns;
      if (seen.insert(result.id).second) ++interned.unique_trees;
      if (result.inserted) {
        ++interned.misses;
      } else {
        ++interned.hits;
      }
    }
  }
  return interned;
}

}  // namespace dexlego::pipeline
