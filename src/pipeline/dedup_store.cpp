#include "src/pipeline/dedup_store.h"

#include <stdexcept>

#include "src/core/files.h"
#include "src/support/hash.h"
#include "src/support/log.h"

namespace dexlego::pipeline {

namespace {

// Default salted hash: salt 0 keeps the historical plain FNV-1a ids; the
// re-hash chain folds the salt into the stream so two contents that collide
// unsalted separate with overwhelming probability at every later salt.
DedupStore::Id default_hash(std::span<const uint8_t> content, uint64_t salt) {
  if (salt == 0) return support::fnv1a(content);
  support::Fnv1a h;
  h.add(salt);
  h.add_bytes(content);
  return h.digest();
}

}  // namespace

DedupStore::DedupStore() : hash_(default_hash) {}

DedupStore::DedupStore(HashFn hash)
    : hash_(hash ? std::move(hash) : HashFn(default_hash)) {}

DedupStore::InternResult DedupStore::intern(std::span<const uint8_t> content) {
  return intern(std::vector<uint8_t>(content.begin(), content.end()));
}

DedupStore::InternResult DedupStore::intern(std::vector<uint8_t>&& content) {
  Id id = hash_(content, 0);
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t salt = 1;; ++salt) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      if (salt > 1) {
        // This content's collision chain was just discovered: count the
        // links once, at insert. Later interns of the same content re-walk
        // the chain to the same id but are steady-state hits — counting or
        // logging those would hand a hostile colliding pair a per-intern
        // log-spam amplifier.
        stats_.collisions += salt - 1;
        DL_WARN << "dedup store hash collision; content re-keyed to id " << id
                << " after " << (salt - 1) << " salted re-hashes";
      }
      stats_.bytes_stored += content.size();
      entries_.emplace(id, std::move(content));
      ++stats_.misses;
      stats_.entries = entries_.size();
      return {id, true};
    }
    if (it->second == content) {
      ++stats_.hits;
      stats_.bytes_deduped += content.size();
      return {id, false};
    }
    // 64-bit collision with a different resident content. Aliasing would be
    // silent corruption and throwing would let a hostile app with an
    // embedded colliding pair kill its own analysis job — so fail open:
    // deterministically re-key this content with the next salt and retry.
    if (salt > 64) {
      // 64 consecutive salted collisions is beyond adversarial; treat the
      // hash function as broken rather than loop forever.
      throw std::runtime_error("DedupStore: unresolvable hash collision chain");
    }
    id = hash_(content, salt);
  }
}

const std::vector<uint8_t>* DedupStore::lookup(Id id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

DedupStore::Stats DedupStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

InternedCollection intern_collection(const core::CollectionOutput& output,
                                     DedupStore& store) {
  InternedCollection interned;
  for (const auto& [key, rec] : output.methods) {
    std::vector<DedupStore::Id>& ids = interned.tree_ids[key];
    for (const auto& tree : rec.trees) {
      // serialize_tree returns a fresh buffer, so this binds the
      // ownership-taking overload: a miss moves instead of copying inside
      // the store mutex.
      DedupStore::InternResult result =
          store.intern(core::serialize_tree(*tree));
      ids.push_back(result.id);
      if (result.inserted) {
        ++interned.misses;
      } else {
        ++interned.hits;
      }
    }
  }
  return interned;
}

}  // namespace dexlego::pipeline
