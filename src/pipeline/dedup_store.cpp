#include "src/pipeline/dedup_store.h"

#include <stdexcept>

#include "src/core/files.h"
#include "src/support/hash.h"
#include "src/support/log.h"

namespace dexlego::pipeline {

DedupStore::InternResult DedupStore::intern(std::span<const uint8_t> content) {
  return intern(std::vector<uint8_t>(content.begin(), content.end()));
}

DedupStore::InternResult DedupStore::intern(std::vector<uint8_t>&& content) {
  Id id = support::fnv1a(content);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    if (it->second != content) {
      // 64-bit FNV collision. FNV-1a is non-cryptographic and our input
      // domain includes hostile apps, so aliasing the two contents under one
      // id would be silent corruption — fail loudly instead; the batch
      // worker contains the throw to this one job.
      ++stats_.collisions;
      DL_ERROR << "dedup store hash collision on id " << id;
      throw std::runtime_error(
          "DedupStore: content hash collision on id " + std::to_string(id));
    }
    ++stats_.hits;
    stats_.bytes_deduped += content.size();
    return {id, false};
  }
  stats_.bytes_stored += content.size();
  entries_.emplace(id, std::move(content));
  ++stats_.misses;
  stats_.entries = entries_.size();
  return {id, true};
}

const std::vector<uint8_t>* DedupStore::lookup(Id id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

DedupStore::Stats DedupStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

InternedCollection intern_collection(const core::CollectionOutput& output,
                                     DedupStore& store) {
  InternedCollection interned;
  for (const auto& [key, rec] : output.methods) {
    std::vector<DedupStore::Id>& ids = interned.tree_ids[key];
    for (const auto& tree : rec.trees) {
      // serialize_tree returns a fresh buffer, so this binds the
      // ownership-taking overload: a miss moves instead of copying inside
      // the store mutex.
      DedupStore::InternResult result =
          store.intern(core::serialize_tree(*tree));
      ids.push_back(result.id);
      if (result.inserted) {
        ++interned.misses;
      } else {
        ++interned.hits;
      }
    }
  }
  return interned;
}

}  // namespace dexlego::pipeline
