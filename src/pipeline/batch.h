// Batch extraction pipeline — shards work across a worker thread pool and
// runs the full DexLego loop (paper Fig. 1) per app:
//
//   collect (instrumented execution, Section IV-A)
//   -> dedup  (intern collected trees into a shared DedupStore)
//   -> reassemble (offline, Section IV-B)
//   -> verify (structural + instruction-level DEX verification)
//
// The unit of work is an *(app, plan)* pair. A plain job is one unit (its
// trivial plan: natural execution). A job with force execution enabled
// expands into waves of units — a baseline collection run, then one unit
// per ForceEngine plan — so a single app's path exploration shards across
// the same workers that shard apps. Units are independent: each builds its
// own Runtime/Collector, per-unit collections merge in plan order
// (core::merge_collection), and the frontier is derived from order-
// independent coverage unions, so the per-app output is byte-identical
// whether the batch runs on 1 thread or 16 (asserted by
// tests/pipeline_test.cpp). The only shared state is the content-addressed
// DedupStore and the work queue. Per-app and fleet-wide stats (coverage,
// leak counts, forced paths, dedup hit rate, wall/CPU time) ride along in
// the report; bench/pipeline_throughput.cpp and bench/force_paths.cpp turn
// them into throughput trajectories.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/dexlego.h"
#include "src/coverage/force.h"
#include "src/dex/archive.h"
#include "src/pipeline/dedup_store.h"

namespace dexlego::pipeline {

// One input app plus everything needed to execute it.
struct BatchJob {
  std::string name;
  std::string scenario = "custom";  // "droidbench", "generated", "packed", ...
  dex::Apk apk;
  // Registers the sample's native methods on every runtime the job creates.
  std::function<void(rt::Runtime&)> configure_runtime;
  // Per-job reveal options (driver, runs, collector/reassemble tuning).
  core::DexLegoOptions reveal;
  bool expect_leak = false;  // ground truth when the scenario knows it
  // Force-execution exploration (docs/FORCE_EXECUTION.md): when true the job
  // expands into (app, plan) units explored wave by wave under these
  // budgets, instead of the single natural-execution unit.
  bool force = false;
  coverage::ForceEngineOptions force_options;
};

// Everything measured about one job. `dex` is the reassembled classes.ldex
// (the byte-identity anchor). Dedup attribution is split into deterministic
// counters (`dedup_interns`, `unique_trees` — pure functions of this job's
// collection, identical at any thread count) and the advisory first-insert
// split (`dedup_hits`/`dedup_misses` — which job pays the miss for a shared
// body depends on worker scheduling; their SUM equals `dedup_interns` and is
// deterministic). All other fields except the timings are deterministic.
struct JobResult {
  std::string name;
  std::string scenario;
  bool ok = false;     // worker finished without an exception
  std::string error;   // exception text when !ok
  bool expect_leak = false;

  bool verified = false;              // reassembled DEX passed the verifier
  size_t leaks_observed = 0;          // leaks seen during collection runs
  double instruction_coverage = 0.0;  // of the original DEX, collection runs
  double branch_coverage = 0.0;       // branch sides of the original DEX
  size_t forced_branches = 0;         // branch outcomes overridden (force jobs)
  size_t force_paths = 0;             // forced plan units executed
  int force_waves = 0;                // frontier rounds the engine issued
  core::ReassembleStats reassemble;
  size_t collection_bytes = 0;  // five-file total (Table VI metric)
  uint64_t dedup_interns = 0;   // deterministic: trees offered to the store
  uint64_t unique_trees = 0;    // deterministic: distinct tree ids in this job
  uint64_t dedup_hits = 0;      // advisory: content already present
  uint64_t dedup_misses = 0;    // advisory: this job inserted first

  uint64_t dex_fingerprint = 0;  // fnv1a of `dex`
  std::vector<uint8_t> dex;      // revealed classes.ldex (empty if !keep_dex)

  double wall_ms = 0.0;
  double cpu_ms = 0.0;  // worker-thread CPU time
};

// Fleet-wide aggregation. Deterministic across thread counts except the
// wall/CPU timings and apps_per_sec.
struct FleetStats {
  size_t threads = 0;
  size_t jobs = 0;
  size_t ok = 0;
  size_t verified = 0;
  size_t expected_leaky = 0;
  size_t observed_leaky = 0;  // jobs with leaks_observed > 0
  double mean_instruction_coverage = 0.0;
  double mean_branch_coverage = 0.0;
  size_t forced_paths = 0;  // forced plan units across the fleet

  // IR round-trip stage (enable_ir_roundtrip / dexlego_batch --ir-roundtrip):
  // summed per-job ReassembleStats ir_* counters. Zero unless enabled.
  size_t ir_methods = 0;
  size_t ir_byte_identical = 0;
  size_t ir_failed = 0;

  DedupStore::Stats store;     // snapshot after the batch
  uint64_t dedup_interns = 0;  // deterministic: sum of per-job dedup_interns
  uint64_t unique_trees = 0;   // deterministic: sum of per-job unique_trees
  uint64_t dedup_hits = 0;     // this batch's interns only; hits + misses ==
  uint64_t dedup_misses = 0;   // dedup_interns on every schedule
  double dedup_hit_rate = 0.0;

  double wall_ms = 0.0;  // whole-batch wall time
  double cpu_ms = 0.0;   // summed worker CPU time
  double apps_per_sec = 0.0;

  // Scheduler observability (merged from per-worker tallies after the pool
  // joins): locked queue acquisitions vs tasks claimed. queue_pops <<
  // queue_tasks means the chunked pop is amortizing the queue lock; see
  // docs/PIPELINE.md "Batch pops".
  uint64_t queue_pops = 0;
  uint64_t queue_tasks = 0;
  size_t max_chunk = 0;  // largest chunk one pop claimed
};

struct BatchReport {
  std::vector<JobResult> jobs;  // index-aligned with the input job list
  FleetStats fleet;
};

struct BatchOptions {
  // 0 = one worker per hardware thread. 1 = run inline on the caller thread
  // (the sequential baseline the tests compare against).
  size_t threads = 0;
  // Shared store to intern into; batches sharing one store dedup across
  // batches too. nullptr = a private store per run_batch call.
  DedupStore* store = nullptr;
  // Shard count for that private store (DedupStore::Options::shards; 0 =
  // the store's default). Ignored when `store` is provided — the provided
  // store's own shard count wins. Outputs are byte-identical at any value.
  size_t store_shards = 0;
  // Keep the reassembled DEX bytes in each JobResult (fingerprints are
  // always kept). Turn off for huge fleets to bound memory.
  bool keep_dex = true;
};

// Runs every job and returns per-job results in input order plus fleet
// stats. Never throws for job failures: a worker exception — std:: or not —
// lands in JobResult::{ok,error} and the remaining jobs still run.
BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options = {});

// Runs ONE job start-to-finish on the calling thread, interning into
// `store`: the exact per-job path run_batch's workers execute (classic jobs
// through the single-unit reveal; force jobs through baseline + waves,
// folded in plan order — the waves just run serially here instead of
// sharding across a pool). The extraction service's workers use this to
// multiplex many tenants' jobs onto one queue while reusing the batch
// semantics bit for bit. Fail-closed like run_batch: never throws for job
// failures.
JobResult run_job(const BatchJob& job, DedupStore& store, bool keep_dex = true);

}  // namespace dexlego::pipeline
