// Thread-safe, content-addressed store for collected method bodies — the
// dedup stage of the batch pipeline (docs/PIPELINE.md). Generalizes the
// per-method unique-tree check the Collector performs during one app's runs
// (paper Section IV-A: only unique collection trees are kept) to the fleet
// level: serialized trees are keyed by content hash (support/hash FNV-1a),
// so identical method bodies collected from different apps, repeated
// executions or packed/unpacked variants of the same program are stored
// once, no matter which worker thread gets there first.
//
// Ids are the 64-bit content hash itself, so they are stable across runs,
// thread counts, insertion orders AND shard counts — the property
// tests/pipeline_test.cpp asserts under concurrent insert.
//
// Concurrency shape: the store is sharded by fingerprint prefix (the top
// bits of the id pick the shard), each shard owning its own map, lock and
// stat counters. Workers interning unrelated contents therefore touch
// disjoint locks, and the common steady-state case — a dedup *hit* — takes
// only a shared (reader) lock plus relaxed atomic counter bumps, so hits
// from many threads proceed in parallel. Serialization, hashing and the
// copy of the incoming buffer all happen before any lock is taken; a miss
// holds its shard's exclusive lock only for the map insert itself.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/collection.h"

namespace dexlego::pipeline {

class DedupStore {
 public:
  // Content-hash id. Stable: the same bytes always intern to the same id.
  using Id = uint64_t;

  // Salted content hash. salt 0 is the primary id; salts 1, 2, ... key the
  // deterministic re-hash chain walked on collisions. Injectable so tests
  // can force collisions (a real 64-bit FNV collision is not constructible
  // by brute force); production always uses the default.
  using HashFn = std::function<Id(std::span<const uint8_t>, uint64_t salt)>;

  struct Options {
    // Shard count; rounded up to a power of two and clamped to [1, 256].
    // 1 reproduces the historical single-map store (forced-collision and
    // determinism tests use it); the default spreads contention well past
    // any worker count run_batch produces.
    size_t shards = kDefaultShards;
    // Null falls back to the default salted FNV-1a.
    HashFn hash;
  };
  static constexpr size_t kDefaultShards = 64;

  // Default-constructed stores use the salted FNV-1a and kDefaultShards.
  DedupStore();
  explicit DedupStore(HashFn hash);
  explicit DedupStore(Options options);
  virtual ~DedupStore() = default;
  DedupStore(const DedupStore&) = delete;
  DedupStore& operator=(const DedupStore&) = delete;

  // Power-of-two shard count this store actually runs with.
  size_t shard_count() const { return shards_.size(); }

  struct InternResult {
    Id id = 0;
    bool inserted = false;  // false = content was already present (a hit)
  };

  // Interns `content`, storing a copy only on first sight. Thread-safe.
  // A 64-bit hash collision (two different contents, one id) must not alias
  // — FNV-1a is non-cryptographic and the input domain includes hostile
  // apps — but it must not kill the job either (an embedded colliding pair
  // would be an adversary-controlled analysis denial). The store fails
  // open: the incoming content is deterministically re-keyed along a salted
  // re-hash chain (salt 1, 2, ...) until it finds its own entry or a free
  // id, and the collision is counted in Stats::collisions. Under a
  // collision the id assignment depends on which content arrived first
  // (same caveat as per-job hit attribution, docs/PIPELINE.md); re-interning
  // the same content always re-walks to the same id. Each probe of the
  // chain locks only the shard the salted id lands in.
  InternResult intern(std::span<const uint8_t> content);
  // Ownership-taking variant: a miss moves the buffer into the store
  // instead of copying it inside the shard lock.
  InternResult intern(std::vector<uint8_t>&& content);

  // Stored bytes for an id, or nullptr. The pointer stays valid for the
  // store's lifetime (entries are never erased, and map values are stable
  // across rehash). Takes only the owning shard's shared lock.
  const std::vector<uint8_t>* lookup(Id id) const;

  struct Stats {
    size_t entries = 0;          // unique contents stored
    uint64_t hits = 0;           // interns that found existing content
    uint64_t misses = 0;         // interns that stored new content
    uint64_t bytes_stored = 0;   // sum of unique content sizes
    uint64_t bytes_deduped = 0;  // bytes NOT stored thanks to hits
    uint64_t collisions = 0;     // re-hash chain links created (pathological);
                                 // counted once at discovery, not per re-walk

    double hit_rate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) /
                                    static_cast<double>(total);
    }
  };
  // Folded totals across all shards. Every field is shard- and thread-count
  // invariant for a given input population (asserted by pipeline_test);
  // only the per-shard split varies with the shard count.
  Stats stats() const;

  // Zeroes the intern counters (hits, misses, bytes_deduped, collisions)
  // while keeping entries and bytes_stored, which describe resident content.
  // The persistent store calls this after log replay so a reopened store
  // reports only the interns performed *since* open, not the replay's.
  // Not safe concurrently with intern().
  void reset_intern_counters();

 protected:
  // Write-ahead hook, called on the miss path with the final (possibly
  // collision-re-keyed) id immediately BEFORE the in-memory insert, while the
  // owning shard's exclusive lock is held. The base store is purely
  // in-memory, so this is a no-op; service::PersistentDedupStore overrides it
  // to append the content to the shard's durable log. A throw here aborts
  // the intern before the memory insert, so an entry is never visible in
  // memory without having reached the log first (write-ahead ordering).
  virtual void persist(Id id, std::span<const uint8_t> content) {
    (void)id;
    (void)content;
  }

  // Shard index for an id — the same mapping shard_for uses, exposed so a
  // persistence subclass can mirror the memory sharding with one log file
  // per shard (persist then runs under that shard's exclusive lock, making
  // per-log append ordering free).
  size_t shard_index(Id id) const { return (id >> 56) & (shards_.size() - 1); }

 private:
  // One shard: its slice of the id space plus its own stat counters. The
  // counters are atomics so the hit fast path can bump them under the
  // *shared* lock; they fold into Stats on demand. Cache-line aligned so
  // neighbouring shards' locks and counters never false-share.
  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Id, std::vector<uint8_t>> entries;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> bytes_stored{0};
    std::atomic<uint64_t> bytes_deduped{0};
    std::atomic<uint64_t> collisions{0};
  };

  Shard& shard_for(Id id) const {
    // Fingerprint-prefix sharding: the top byte of the id picks the shard
    // (shards_.size() is a power of two <= 256, so the mask keeps a slice
    // of that prefix). Using high bits keeps the mapping disjoint from any
    // low-bit structure the map's own bucketing keys on.
    return shards_[(id >> 56) & (shards_.size() - 1)];
  }

  HashFn hash_;  // never null; defaults to the salted FNV-1a
  // unique_ptr-free stable storage: sized once in the constructor, never
  // resized, so Shard references stay valid without further indirection.
  mutable std::vector<Shard> shards_;
};

// Result of interning one app's collection output: the tree ids per method,
// plus this call's attribution counters. `interns` (total trees offered) and
// `unique_trees` (distinct content ids within THIS collection) are pure
// functions of the collection and therefore deterministic across thread
// counts and schedules. `hits`/`misses` split the interns by whether the
// shared store already held the content — advisory first-insert attribution:
// when two concurrent jobs share a body, which one pays the miss depends on
// scheduling. Fleet totals (hits + misses, store entries/bytes) stay
// deterministic; see docs/PIPELINE.md "Dedup store semantics".
struct InternedCollection {
  std::map<core::MethodKey, std::vector<DedupStore::Id>> tree_ids;
  uint64_t interns = 0;       // deterministic: trees offered to the store
  uint64_t unique_trees = 0;  // deterministic: distinct ids in this collection
  uint64_t hits = 0;          // advisory: content already present
  uint64_t misses = 0;        // advisory: this job inserted first
};

// Serializes every collection tree of `output` (core::serialize_tree) and
// interns it into `store`.
InternedCollection intern_collection(const core::CollectionOutput& output,
                                     DedupStore& store);

}  // namespace dexlego::pipeline
