#include "src/pipeline/batch.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "src/core/files.h"
#include "src/coverage/force_engine.h"
#include "src/coverage/tracker.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/support/hash.h"
#include "src/support/timer.h"

namespace dexlego::pipeline {

namespace {

// --- the classic single-unit path (natural execution, whole reveal) -------

JobResult run_one(const BatchJob& job, DedupStore& store, bool keep_dex) {
  JobResult result;
  result.name = job.name;
  result.scenario = job.scenario;
  result.expect_leak = job.expect_leak;

  support::Stopwatch wall;
  double cpu_start = support::thread_cpu_ms();
  try {
    coverage::CoverageTracker tracker;
    size_t leaks = 0;

    core::DexLegoOptions options = job.reveal;
    auto base_configure = options.configure_runtime;
    options.configure_runtime = [&, base_configure](rt::Runtime& runtime) {
      if (base_configure) base_configure(runtime);
      if (job.configure_runtime) job.configure_runtime(runtime);
      runtime.add_hooks(&tracker);
    };
    auto base_driver = options.driver;
    options.driver = [&](rt::Runtime& runtime, int run_index) {
      if (base_driver) {
        base_driver(runtime, run_index);
      } else {
        core::default_driver(runtime, run_index);
      }
      leaks += runtime.leaks().size();
    };

    core::DexLego dexlego(options);
    core::RevealResult reveal = dexlego.reveal(job.apk);

    InternedCollection interned = intern_collection(reveal.collection, store);
    result.dedup_interns = interned.interns;
    result.unique_trees = interned.unique_trees;
    result.dedup_hits = interned.hits;
    result.dedup_misses = interned.misses;

    result.verified = reveal.verified;
    result.leaks_observed = leaks;
    result.reassemble = reveal.stats;
    result.collection_bytes = reveal.files.total_size();

    const std::vector<uint8_t>& dex_bytes = reveal.revealed_apk.classes();
    result.dex_fingerprint = support::fnv1a(dex_bytes);
    if (keep_dex) result.dex = dex_bytes;

    // Coverage of the *original* image. Meaningless for packed inputs whose
    // classes.ldex is the shell stub, so a parse failure just leaves 0.
    try {
      dex::DexFile original = dex::load_classes(job.apk);
      coverage::CoverageTracker::Report report = tracker.report(original);
      result.instruction_coverage = report.instruction_pct();
      result.branch_coverage = report.branch_pct();
    } catch (const std::exception&) {
    }

    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  result.wall_ms = wall.elapsed_ms();
  result.cpu_ms = support::thread_cpu_ms() - cpu_start;
  return result;
}

// --- the (app, plan) unit path (force-execution jobs) ---------------------

// Everything one executed plan unit hands back to its app's coordinator.
struct UnitOutput {
  core::CollectionOutput collection;
  coverage::CoverageTracker coverage;
  size_t leaks = 0;
  size_t forced = 0;
  double cpu_ms = 0.0;
  bool ok = false;
  std::string error;
};

// Executes one (app, plan) unit through the same DexLego collect phase the
// classic path uses, with a per-unit coverage tracker and — for non-empty
// plans — the plan's ForceHooks riding along. The baseline unit honors the
// job's run count; forced units replay the driver once.
UnitOutput run_unit(const BatchJob& job, const coverage::PlanUnit& unit) {
  UnitOutput out;
  double cpu_start = support::thread_cpu_ms();
  try {
    coverage::ForceHooks force_hooks(unit.plan);

    core::DexLegoOptions options = job.reveal;
    options.runs = unit.plan.empty() ? std::max(1, options.runs) : 1;
    auto base_configure = options.configure_runtime;
    options.configure_runtime = [&, base_configure](rt::Runtime& runtime) {
      if (base_configure) base_configure(runtime);
      if (job.configure_runtime) job.configure_runtime(runtime);
      runtime.add_hooks(&out.coverage);
      if (!unit.plan.empty()) runtime.add_hooks(&force_hooks);
    };
    auto base_driver = options.driver;
    options.driver = [&](rt::Runtime& runtime, int run_index) {
      if (base_driver) {
        base_driver(runtime, run_index);
      } else {
        core::default_driver(runtime, run_index);
      }
      out.leaks += runtime.leaks().size();
    };

    out.collection = core::DexLego::collect(job.apk, options);
    out.forced = force_hooks.forced();
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  out.cpu_ms = support::thread_cpu_ms() - cpu_start;
  return out;
}

// Per-app coordination state. Workers only touch an app's state while the
// scheduler lock is held or while they own its wave (outstanding hit zero).
struct AppState {
  const BatchJob* job = nullptr;
  JobResult result;
  bool classic = true;  // no force: single unit through run_one

  std::unique_ptr<coverage::ForceEngine> engine;
  std::vector<coverage::PlanUnit> wave_units;
  std::vector<UnitOutput> wave_outputs;
  size_t outstanding = 0;  // units of the current wave still executing

  core::CollectionOutput merged;  // plan-order merge of unit collections
  size_t leaks = 0;
  size_t forced_branches = 0;
  size_t force_paths = 0;
  int waves_folded = 0;  // waves merged so far (0 = baseline pending)
  double start_ms = -1.0;
  double cpu_ms = 0.0;
  bool failed = false;
};

// Reassembles and verifies a finished force app from its merged collection.
void finalize_force_app(AppState& app, DedupStore& store, bool keep_dex) {
  JobResult& result = app.result;
  try {
    core::CollectionFiles files = core::encode_collection(app.merged);
    core::RevealResult reveal = core::DexLego::reassemble_files(
        files, app.job->apk, app.job->reveal.reassemble);

    InternedCollection interned = intern_collection(reveal.collection, store);
    result.dedup_interns = interned.interns;
    result.unique_trees = interned.unique_trees;
    result.dedup_hits = interned.hits;
    result.dedup_misses = interned.misses;

    result.verified = reveal.verified;
    result.leaks_observed = app.leaks;
    result.reassemble = reveal.stats;
    result.collection_bytes = reveal.files.total_size();

    const std::vector<uint8_t>& dex_bytes = reveal.revealed_apk.classes();
    result.dex_fingerprint = support::fnv1a(dex_bytes);
    if (keep_dex) result.dex = dex_bytes;

    try {
      dex::DexFile original = dex::load_classes(app.job->apk);
      coverage::CoverageTracker::Report report =
          app.engine->coverage().report(original);
      result.instruction_coverage = report.instruction_pct();
      result.branch_coverage = report.branch_pct();
    } catch (const std::exception&) {
    }

    result.forced_branches = app.forced_branches;
    result.force_paths = app.force_paths;
    result.force_waves = app.engine->stats().waves;
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
}

// Wave end: folds the finished wave in plan order, asks the engine for the
// next frontier, and either fills wave_units for re-dispatch or finalizes.
// Called with exclusive ownership of the app (outstanding == 0).
void advance_force_app(AppState& app, DedupStore& store, bool keep_dex) {
  double cpu_start = support::thread_cpu_ms();
  bool baseline_wave = app.waves_folded == 0;
  if (baseline_wave && app.engine == nullptr) {
    try {
      app.engine = std::make_unique<coverage::ForceEngine>(
          dex::load_classes(app.job->apk), app.job->force_options);
    } catch (const std::exception& e) {
      app.failed = true;
      app.result.error = std::string("force engine: ") + e.what();
    } catch (...) {
      app.failed = true;
      app.result.error = "force engine: non-std exception";
    }
  }

  try {
    for (size_t s = 0; !app.failed && s < app.wave_units.size(); ++s) {
      UnitOutput& out = app.wave_outputs[s];
      app.cpu_ms += out.cpu_ms;
      if (!out.ok) {
        if (baseline_wave) {
          // No baseline collection: the job fails like a classic job would.
          app.failed = true;
          app.result.error = out.error;
          break;
        }
        // A failed forced path loses only that path. Observing whatever
        // coverage it recorded before dying keeps the observation sequence —
        // and thus the frontier — identical on every schedule, since the
        // failure itself is deterministic for a given plan.
        app.engine->observe(app.wave_units[s], out.coverage);
        continue;
      }
      app.leaks += out.leaks;
      app.forced_branches += out.forced;
      core::merge_collection(app.merged, std::move(out.collection),
                             app.job->reveal.collector.max_variants);
      app.engine->observe(app.wave_units[s], out.coverage);
    }
    if (!baseline_wave) app.force_paths += app.wave_units.size();
    ++app.waves_folded;

    app.wave_units.clear();
    app.wave_outputs.clear();
    if (!app.failed) {
      app.wave_units = app.engine->next_wave();
    }
  } catch (const std::exception& e) {
    app.failed = true;
    app.result.error = e.what();
    app.wave_units.clear();
    app.wave_outputs.clear();
  } catch (...) {
    // Fail closed: a non-std throw (hostile native code can raise anything)
    // must cost this job, not the worker thread — an escape here would
    // std::terminate the whole fleet.
    app.failed = true;
    app.result.error = "unknown exception (non-std type)";
    app.wave_units.clear();
    app.wave_outputs.clear();
  }
  if (!app.wave_units.empty()) {
    app.wave_outputs = std::vector<UnitOutput>(app.wave_units.size());
    app.outstanding = app.wave_units.size();
    app.cpu_ms += support::thread_cpu_ms() - cpu_start;
    return;
  }

  // Converged (or failed): finish the job.
  if (!app.failed) finalize_force_app(app, store, keep_dex);
  app.cpu_ms += support::thread_cpu_ms() - cpu_start;
  app.result.cpu_ms = app.cpu_ms;
}

}  // namespace

JobResult run_job(const BatchJob& job, DedupStore& store, bool keep_dex) {
  if (!job.force) return run_one(job, store, keep_dex);

  // Force job, inline: the same baseline + wave machinery run_batch shards
  // across workers, executed serially on the calling thread. advance_force_app
  // owns the fold/frontier/finalize logic in both cases, so the output is
  // byte-identical to the sharded path (tests/service_test.cpp anchors this).
  support::Stopwatch wall;
  AppState app;
  app.job = &job;
  app.classic = false;
  app.result.name = job.name;
  app.result.scenario = job.scenario;
  app.result.expect_leak = job.expect_leak;
  app.wave_units.push_back(coverage::PlanUnit{});  // baseline run
  app.wave_outputs = std::vector<UnitOutput>(1);
  app.outstanding = 1;
  while (!app.wave_units.empty()) {
    for (size_t s = 0; s < app.wave_units.size(); ++s) {
      app.wave_outputs[s] = run_unit(job, app.wave_units[s]);
    }
    advance_force_app(app, store, keep_dex);
  }
  app.result.ok = app.result.ok && !app.failed;
  app.result.wall_ms = wall.elapsed_ms();
  return std::move(app.result);
}

BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Plain jobs can use at most one worker each; force jobs fan out into plan
  // units, so extra workers stay useful even for a single app.
  bool any_force = false;
  for (const BatchJob& job : jobs) any_force |= job.force;
  if (!any_force && threads > jobs.size() && !jobs.empty()) {
    threads = jobs.size();
  }

  DedupStore local_store{DedupStore::Options{
      options.store_shards == 0 ? DedupStore::kDefaultShards
                                : options.store_shards,
      DedupStore::HashFn{}}};
  DedupStore& store = options.store != nullptr ? *options.store : local_store;

  BatchReport report;
  report.jobs.resize(jobs.size());
  support::Stopwatch wall;

  // Scheduler state: a dynamic queue of (app, wave-slot) tasks. Plain jobs
  // contribute one task; force jobs re-enqueue a task per plan unit at every
  // wave end, so one app's exploration spreads across all workers. Workers
  // claim *chunks* of tasks per lock acquisition (adaptive to queue depth),
  // so with thousands of small apps the queue mutex leaves the hot path.
  struct Task {
    size_t app = 0;
    size_t slot = 0;
  };
  std::mutex mu;  // guards queue and force-wave handoff only
  std::condition_variable cv;
  std::deque<Task> queue;
  std::vector<AppState> states(jobs.size());
  // Completion count is an atomic, not mu-guarded state: classic jobs finish
  // without ever re-taking the queue lock.
  std::atomic<size_t> apps_remaining{jobs.size()};

  for (size_t i = 0; i < jobs.size(); ++i) {
    AppState& app = states[i];
    app.job = &jobs[i];
    app.classic = !jobs[i].force;
    app.result.name = jobs[i].name;
    app.result.scenario = jobs[i].scenario;
    app.result.expect_leak = jobs[i].expect_leak;
    if (!app.classic) {
      app.wave_units.push_back(coverage::PlanUnit{});  // baseline run
      app.wave_outputs = std::vector<UnitOutput>(1);
      app.outstanding = 1;
    }
    queue.push_back(Task{i, 0});
  }

  // How many tasks one lock acquisition may claim: share the visible
  // backlog across workers (keeping ~2 refills per worker in reserve so a
  // heavyweight chunk cannot starve siblings), floor 1, cap 32.
  constexpr size_t kMaxChunk = 32;
  auto chunk_for = [threads](size_t depth) {
    size_t share = depth / (threads * 2);
    return share < 1 ? size_t{1} : (share > kMaxChunk ? kMaxChunk : share);
  };

  // Decrements the fleet's remaining-app count (batched per chunk for
  // classic jobs). The worker that takes the count to zero locks and
  // releases mu before notifying: the empty lock pairs with the mutex a
  // sleeper holds while evaluating its wait predicate, so the final wakeup
  // cannot be lost — and the notify itself happens with no lock held.
  auto finish_apps = [&](size_t n) {
    if (apps_remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
      { std::lock_guard<std::mutex> barrier(mu); }
      cv.notify_all();
    }
  };

  // Per-worker scheduler tallies, merged into FleetStats after the join —
  // workers never touch shared stats mid-batch.
  struct WorkerLocal {
    uint64_t pops = 0;
    uint64_t tasks = 0;
    size_t max_chunk = 0;
  };
  std::vector<WorkerLocal> locals(threads);

  auto worker = [&](size_t worker_index) {
    WorkerLocal& local = locals[worker_index];
    std::vector<Task> chunk;
    chunk.reserve(kMaxChunk);
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&]() {
        return !queue.empty() ||
               apps_remaining.load(std::memory_order_acquire) == 0;
      });
      if (queue.empty()) return;  // apps_remaining == 0
      size_t take = chunk_for(queue.size());
      chunk.clear();
      while (chunk.size() < take && !queue.empty()) {
        chunk.push_back(queue.front());
        queue.pop_front();
      }
      lock.unlock();
      ++local.pops;
      local.tasks += chunk.size();
      if (chunk.size() > local.max_chunk) local.max_chunk = chunk.size();

      size_t classic_done = 0;
      for (const Task& task : chunk) {
        AppState& app = states[task.app];
        // Only the task that starts an app can observe an unset start time:
        // classic jobs have one task, and a force job's first wave is the
        // single baseline unit whose completion hands the app off under mu.
        if (app.start_ms < 0.0) app.start_ms = wall.elapsed_ms();

        if (app.classic) {
          // The app's state is exclusively ours (one task per classic job),
          // so the result lands without any lock.
          app.result = run_one(*app.job, store, options.keep_dex);
          ++classic_done;
          continue;
        }

        UnitOutput out = run_unit(*app.job, app.wave_units[task.slot]);
        lock.lock();
        app.wave_outputs[task.slot] = std::move(out);
        bool wave_done = --app.outstanding == 0;
        lock.unlock();
        if (!wave_done) continue;  // wave still in flight elsewhere

        // Last unit of the wave: this worker owns the app until it either
        // enqueues the next wave or finishes the job.
        advance_force_app(app, store, options.keep_dex);
        if (!app.wave_units.empty()) {
          size_t enqueued = app.wave_units.size();
          lock.lock();
          for (size_t s = 0; s < enqueued; ++s) {
            queue.push_back(Task{task.app, s});
          }
          lock.unlock();
          // Wake only as many workers as there are new units (everyone, at
          // chunk granularity, once a wave outgrows the pool) — and do it
          // with the lock released so the woken thread never immediately
          // blocks on mu.
          if (enqueued == 1) {
            cv.notify_one();
          } else {
            cv.notify_all();
          }
        } else {
          app.result.ok = app.result.ok && !app.failed;
          app.result.wall_ms = wall.elapsed_ms() - app.start_ms;
          finish_apps(1);
        }
      }
      if (classic_done > 0) finish_apps(classic_done);
      lock.lock();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (std::thread& thread : pool) thread.join();
  }

  for (size_t i = 0; i < jobs.size(); ++i) {
    report.jobs[i] = std::move(states[i].result);
  }

  FleetStats& fleet = report.fleet;
  fleet.wall_ms = wall.elapsed_ms();
  fleet.threads = threads;
  fleet.jobs = jobs.size();
  for (const WorkerLocal& local : locals) {
    fleet.queue_pops += local.pops;
    fleet.queue_tasks += local.tasks;
    if (local.max_chunk > fleet.max_chunk) fleet.max_chunk = local.max_chunk;
  }
  for (const JobResult& job : report.jobs) {
    if (job.ok) ++fleet.ok;
    if (job.verified) ++fleet.verified;
    if (job.expect_leak) ++fleet.expected_leaky;
    if (job.leaks_observed > 0) ++fleet.observed_leaky;
    fleet.mean_instruction_coverage += job.instruction_coverage;
    fleet.mean_branch_coverage += job.branch_coverage;
    fleet.forced_paths += job.force_paths;
    fleet.dedup_interns += job.dedup_interns;
    fleet.unique_trees += job.unique_trees;
    fleet.dedup_hits += job.dedup_hits;
    fleet.dedup_misses += job.dedup_misses;
    fleet.ir_methods += job.reassemble.ir_methods;
    fleet.ir_byte_identical += job.reassemble.ir_byte_identical;
    fleet.ir_failed += job.reassemble.ir_failed;
    fleet.cpu_ms += job.cpu_ms;
  }
  if (fleet.jobs > 0) {
    fleet.mean_instruction_coverage /= static_cast<double>(fleet.jobs);
    fleet.mean_branch_coverage /= static_cast<double>(fleet.jobs);
  }
  uint64_t interns = fleet.dedup_hits + fleet.dedup_misses;
  fleet.dedup_hit_rate =
      interns == 0 ? 0.0
                   : static_cast<double>(fleet.dedup_hits) /
                         static_cast<double>(interns);
  fleet.store = store.stats();
  if (fleet.wall_ms > 0.0) {
    fleet.apps_per_sec =
        static_cast<double>(fleet.jobs) / (fleet.wall_ms / 1000.0);
  }
  return report;
}

}  // namespace dexlego::pipeline
