#include "src/pipeline/batch.h"

#include <atomic>
#include <thread>

#include "src/coverage/tracker.h"
#include "src/dex/io.h"
#include "src/support/hash.h"
#include "src/support/timer.h"

namespace dexlego::pipeline {

namespace {

JobResult run_one(const BatchJob& job, DedupStore& store, bool keep_dex) {
  JobResult result;
  result.name = job.name;
  result.scenario = job.scenario;
  result.expect_leak = job.expect_leak;

  support::Stopwatch wall;
  double cpu_start = support::thread_cpu_ms();
  try {
    coverage::CoverageTracker tracker;
    size_t leaks = 0;

    core::DexLegoOptions options = job.reveal;
    auto base_configure = options.configure_runtime;
    options.configure_runtime = [&, base_configure](rt::Runtime& runtime) {
      if (base_configure) base_configure(runtime);
      if (job.configure_runtime) job.configure_runtime(runtime);
      runtime.add_hooks(&tracker);
    };
    auto base_driver = options.driver;
    options.driver = [&](rt::Runtime& runtime, int run_index) {
      if (base_driver) {
        base_driver(runtime, run_index);
      } else {
        core::default_driver(runtime, run_index);
      }
      leaks += runtime.leaks().size();
    };

    core::DexLego dexlego(options);
    core::RevealResult reveal = dexlego.reveal(job.apk);

    InternedCollection interned = intern_collection(reveal.collection, store);
    result.dedup_hits = interned.hits;
    result.dedup_misses = interned.misses;

    result.verified = reveal.verified;
    result.leaks_observed = leaks;
    result.reassemble = reveal.stats;
    result.collection_bytes = reveal.files.total_size();

    const std::vector<uint8_t>& dex_bytes = reveal.revealed_apk.classes();
    result.dex_fingerprint = support::fnv1a(dex_bytes);
    if (keep_dex) result.dex = dex_bytes;

    // Coverage of the *original* image. Meaningless for packed inputs whose
    // classes.ldex is the shell stub, so a parse failure just leaves 0.
    try {
      dex::DexFile original = dex::read_dex(job.apk.classes());
      result.instruction_coverage = tracker.report(original).instruction_pct();
    } catch (const std::exception&) {
    }

    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  result.wall_ms = wall.elapsed_ms();
  result.cpu_ms = support::thread_cpu_ms() - cpu_start;
  return result;
}

}  // namespace

BatchReport run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (threads > jobs.size() && !jobs.empty()) threads = jobs.size();

  DedupStore local_store;
  DedupStore& store = options.store != nullptr ? *options.store : local_store;

  BatchReport report;
  report.jobs.resize(jobs.size());
  support::Stopwatch wall;

  if (threads <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      report.jobs[i] = run_one(jobs[i], store, options.keep_dex);
    }
  } else {
    // Work queue: a shared cursor; each worker claims the next unclaimed job
    // so long jobs don't serialize behind a static partition.
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&]() {
        for (size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          report.jobs[i] = run_one(jobs[i], store, options.keep_dex);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
  }

  FleetStats& fleet = report.fleet;
  fleet.wall_ms = wall.elapsed_ms();
  fleet.threads = threads;
  fleet.jobs = jobs.size();
  for (const JobResult& job : report.jobs) {
    if (job.ok) ++fleet.ok;
    if (job.verified) ++fleet.verified;
    if (job.expect_leak) ++fleet.expected_leaky;
    if (job.leaks_observed > 0) ++fleet.observed_leaky;
    fleet.mean_instruction_coverage += job.instruction_coverage;
    fleet.dedup_hits += job.dedup_hits;
    fleet.dedup_misses += job.dedup_misses;
    fleet.cpu_ms += job.cpu_ms;
  }
  if (fleet.jobs > 0) {
    fleet.mean_instruction_coverage /= static_cast<double>(fleet.jobs);
  }
  uint64_t interns = fleet.dedup_hits + fleet.dedup_misses;
  fleet.dedup_hit_rate =
      interns == 0 ? 0.0
                   : static_cast<double>(fleet.dedup_hits) /
                         static_cast<double>(interns);
  fleet.store = store.stats();
  if (fleet.wall_ms > 0.0) {
    fleet.apps_per_sec =
        static_cast<double>(fleet.jobs) / (fleet.wall_ms / 1000.0);
  }
  return report;
}

}  // namespace dexlego::pipeline
