#include "src/pipeline/scenarios.h"

#include <map>

#include "src/benchsuite/appgen.h"
#include "src/benchsuite/droidbench.h"
#include "src/fuzz/mutator.h"
#include "src/packer/packer.h"
#include "src/support/rng.h"
#include "src/unpackers/unpackers.h"

namespace dexlego::pipeline {

namespace {

// The packed-scenario sample set mirrors the differential suite's packed
// parameterization: replayable samples spanning clicks, ICC, lifecycle,
// dynamic loading and a benign control.
const char* const kPackableSamples[] = {"Straight1", "Button1",
                                        "Icc1",      "Lifecycle7",
                                        "DynLoad1",  "PrivateDataLeak3",
                                        "Clean1"};

std::function<void(rt::Runtime&)> with_packer_natives(
    std::function<void(rt::Runtime&)> sample_configure) {
  return [sample_configure = std::move(sample_configure)](rt::Runtime& rt) {
    packer::register_packer_natives(rt);
    if (sample_configure) sample_configure(rt);
  };
}

}  // namespace

std::vector<BatchJob> droidbench_jobs() {
  suite::DroidBench bench = suite::build_droidbench();
  std::vector<BatchJob> jobs;
  jobs.reserve(bench.samples.size());
  for (suite::Sample& sample : bench.samples) {
    BatchJob job;
    job.name = sample.name;
    job.scenario = "droidbench";
    job.apk = std::move(sample.apk);
    job.configure_runtime = std::move(sample.configure_runtime);
    job.expect_leak = sample.leaky;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> generated_jobs(size_t count, uint64_t seed0,
                                     size_t units) {
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    suite::AppSpec spec;
    spec.seed = seed0 + i;
    spec.name = "gen-s" + std::to_string(spec.seed);
    spec.package = "gen.s" + std::to_string(spec.seed);
    spec.target_units = units;
    spec.full_coverage_style = true;

    BatchJob job;
    job.name = spec.name;
    job.scenario = "generated";
    job.apk = suite::generate_app(spec).apk;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> guarded_jobs(size_t count, uint64_t seed0, size_t units) {
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    suite::AppSpec spec;
    spec.seed = seed0 + i;
    spec.name = "guarded-s" + std::to_string(spec.seed);
    spec.package = "guarded.s" + std::to_string(spec.seed);
    spec.target_units = units;
    spec.guarded_fraction = 0.5;
    spec.dead_fraction = 0.1;

    BatchJob job;
    job.name = spec.name;
    job.scenario = "guarded";
    job.apk = suite::generate_app(spec).apk;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> packed_jobs() {
  suite::DroidBench bench = suite::build_droidbench();
  std::vector<BatchJob> jobs;
  for (const packer::PackerSpec& spec : packer::table1_packers()) {
    if (!spec.available()) continue;
    for (const char* name : kPackableSamples) {
      const suite::Sample* sample = bench.find(name);
      if (sample == nullptr) continue;
      std::optional<dex::Apk> packed = packer::pack(sample->apk, spec);
      if (!packed.has_value()) continue;

      BatchJob job;
      job.name = spec.vendor + "/" + sample->name;
      job.scenario = "packed";
      job.apk = std::move(*packed);
      job.configure_runtime = with_packer_natives(sample->configure_runtime);
      job.expect_leak = sample->leaky;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<BatchJob> unpacker_baseline_jobs() {
  suite::DroidBench bench = suite::build_droidbench();
  packer::PackerSpec spec = packer::packer_360();
  std::vector<BatchJob> jobs;
  for (const char* name : kPackableSamples) {
    const suite::Sample* sample = bench.find(name);
    if (sample == nullptr) continue;
    std::optional<dex::Apk> packed = packer::pack(sample->apk, spec);
    if (!packed.has_value()) continue;

    unpackers::UnpackOptions unpack;
    unpack.configure_runtime = with_packer_natives(sample->configure_runtime);
    unpackers::UnpackResult dump = unpackers::dexhunter_unpack(*packed, unpack);

    BatchJob job;
    job.name = std::string("dexhunter/") + sample->name;
    job.scenario = "unpacked";
    job.apk = std::move(dump.unpacked);
    // The dump's entry is still the shell class, so replaying it needs the
    // packer natives alongside the sample's own.
    job.configure_runtime = with_packer_natives(sample->configure_runtime);
    job.expect_leak = sample->leaky;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> realdex_jobs(size_t count, uint64_t seed0,
                                   size_t units) {
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    suite::AppSpec spec;
    spec.seed = seed0 + i;
    spec.name = "realdex-s" + std::to_string(spec.seed);
    spec.package = "realdex.s" + std::to_string(spec.seed);
    spec.target_units = units;
    spec.full_coverage_style = true;
    // Every third job ships split multidex so the classesN.dex merge path
    // runs under the pipeline, not just in unit tests.
    spec.real_dex_parts = i % 3 == 2 ? 2 + i % 2 : 1;

    BatchJob job;
    job.name = spec.name;
    job.scenario = "realdex";
    job.apk = suite::generate_app(spec).apk;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

// Shared generator behind large_corpus_jobs (version 0) and
// large_corpus_update_jobs (version >= 1). One rng stream per app index
// drives ALL structural draws (size jitter, library picks, library
// fraction), so an app keeps its shape, name and libraries across versions;
// a catalog update only re-seeds the app's OWN body stream for the mutated
// subset. That makes version N a faithful "10% of the market shipped an
// update" corpus: unmutated apps are byte-identical to version 0, mutated
// apps change their unique code but still dedup their library bodies.
std::vector<BatchJob> large_corpus_versioned(size_t count, uint64_t seed0,
                                             size_t units, size_t library_pool,
                                             size_t mutate_every,
                                             uint64_t version) {
  if (library_pool < 1) library_pool = 1;
  if (units < 200) units = 200;
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    support::Rng rng(seed0 + i);

    const bool mutated =
        version > 0 && mutate_every > 0 && i % mutate_every == 0;
    suite::AppSpec spec;
    spec.seed = seed0 + i;
    // A mutated app is the SAME app (name, package, libraries) shipping new
    // app-local code: only the body-stream seed moves, displaced far out of
    // the per-app seed range so no version collides with another app.
    if (mutated) spec.seed = seed0 + i + 0x5EED0000ull * version;
    spec.name = "mkt-s" + std::to_string(seed0 + i);
    spec.package = "mkt.s" + std::to_string(seed0 + i);
    // Sizes jitter 0.6x-1.4x around the target so the queue sees a mixed
    // workload instead of uniform quanta.
    spec.target_units =
        units - units / 5 * 2 + static_cast<size_t>(rng.below(units / 5 * 4));
    spec.full_coverage_style = true;

    // 1-4 embedded libraries, drawn with a popularity skew (the nested
    // below() biases toward low pool indices the way a handful of support
    // libraries dominates a real market corpus). ~65% of the app's units
    // land in library bodies that dedup against every other app embedding
    // the same seed.
    size_t n_libraries = 1 + static_cast<size_t>(rng.below(4));
    for (size_t l = 0; l < n_libraries; ++l) {
      uint64_t pick = rng.below(rng.below(library_pool) + 1);
      // Library seeds live far from the per-app seed range so an app's own
      // partitions can never accidentally share a body stream.
      uint64_t lib_seed = 0x11B0000000ull + pick;
      bool duplicate = false;
      for (uint64_t seen : spec.library_seeds) duplicate |= seen == lib_seed;
      if (!duplicate) spec.library_seeds.push_back(lib_seed);
    }
    spec.library_fraction = static_cast<double>(rng.range(55, 75)) / 100.0;

    BatchJob job;
    job.name = spec.name;
    job.scenario = "large_corpus";
    job.apk = suite::generate_app(spec).apk;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace

std::vector<BatchJob> large_corpus_jobs(size_t count, uint64_t seed0,
                                        size_t units, size_t library_pool) {
  return large_corpus_versioned(count, seed0, units, library_pool,
                                /*mutate_every=*/0, /*version=*/0);
}

std::vector<BatchJob> large_corpus_update_jobs(size_t count, uint64_t seed0,
                                               size_t units,
                                               size_t library_pool,
                                               size_t mutate_every,
                                               uint64_t version) {
  return large_corpus_versioned(count, seed0, units, library_pool,
                                mutate_every, version);
}

std::vector<BatchJob> fuzz_jobs(size_t count, uint64_t seed0) {
  std::vector<BatchJob> jobs;
  jobs.reserve(count);
  std::vector<std::string> behavioral = fuzz::behavioral_seed_keys();
  std::vector<std::string> bytecode = fuzz::bytecode_seed_keys();
  // Resolving a seed rebuilds its base app from scratch; the pools are a
  // handful of keys, so cache like run_campaign's up-front seed map does.
  std::map<std::string, fuzz::SeedInput> seeds;
  for (size_t i = 0; i < count; ++i) {
    uint64_t rng_seed = seed0 + i;
    // Alternate families; both pre-filter to hostile-but-*valid* apps, so
    // every job is expected to collect, reassemble and verify.
    fuzz::Family family =
        i % 2 == 0 ? fuzz::Family::kBehavioral : fuzz::Family::kBytecode;
    const std::vector<std::string>& pool =
        family == fuzz::Family::kBehavioral ? behavioral : bytecode;
    support::Rng rng(rng_seed);
    const std::string& key = pool[rng.below(pool.size())];
    auto it = seeds.find(key);
    if (it == seeds.end()) {
      it = seeds.emplace(key, fuzz::resolve_seed(key)).first;
    }
    const fuzz::SeedInput& seed = it->second;
    std::vector<fuzz::MutationOp> ops =
        fuzz::plan_ops(family, seed, rng.next(), 4);
    fuzz::Mutant mutant = fuzz::apply_ops(family, seed, ops);

    BatchJob job;
    job.name = std::string(fuzz::family_name(family)) + "-s" +
               std::to_string(rng_seed);
    job.scenario = "fuzz";
    // Hostile apps routinely loop forever (goto-loop mutants); bound each
    // collection run like the fuzz oracle does instead of burning the
    // pipeline-default 200M-step budget per phase.
    job.reveal.runtime.step_limit = 400'000;
    job.apk = std::move(mutant.apk);
    job.configure_runtime = std::move(mutant.configure_runtime);
    // Ground truth only survives for behavioral mutants (the recipe *sets*
    // leak_flows); a bytecode mutation may sever the seed's leaking path.
    job.expect_leak =
        family == fuzz::Family::kBehavioral && mutant.expect_leak;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> replicate_jobs(const std::vector<BatchJob>& jobs,
                                     int repeat) {
  std::vector<BatchJob> replicated;
  if (repeat < 1) repeat = 1;
  replicated.reserve(jobs.size() * static_cast<size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    for (const BatchJob& job : jobs) {
      BatchJob copy = job;
      copy.name = job.name + "#r" + std::to_string(r);
      replicated.push_back(std::move(copy));
    }
  }
  return replicated;
}

std::vector<BatchJob>& enable_force(std::vector<BatchJob>& jobs,
                                    const coverage::ForceEngineOptions& options) {
  for (BatchJob& job : jobs) {
    job.force = true;
    job.force_options = options;
  }
  return jobs;
}

std::vector<BatchJob>& enable_ir_roundtrip(std::vector<BatchJob>& jobs) {
  for (BatchJob& job : jobs) {
    job.reveal.reassemble.ir_roundtrip = true;
  }
  return jobs;
}

std::vector<BatchJob> all_jobs() {
  std::vector<BatchJob> jobs = droidbench_jobs();
  std::vector<BatchJob> more = generated_jobs(8);
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = guarded_jobs(4);
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = packed_jobs();
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = unpacker_baseline_jobs();
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = realdex_jobs(6);
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = fuzz_jobs(6);
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  more = large_corpus_jobs(12);
  for (BatchJob& job : more) jobs.push_back(std::move(job));
  return jobs;
}

}  // namespace dexlego::pipeline
