// Canned input populations for the batch pipeline — one builder per
// workload the paper evaluates: the DroidBench-analog suite (Section V-B),
// seed-deterministic generated apps (benchsuite::appgen, the Table I/V-VIII
// populations), the guarded force-execution population (Table VII), packed
// inputs (src/packer presets, Table I/III) and snapshot dumps from the
// unpacker baselines (src/unpackers, Section VI-B). Each builder returns
// ready-to-run BatchJobs: apk + natives + ground truth; enable_force()
// switches a list to (app, plan)-sharded ForceEngine exploration.
#pragma once

#include <cstdint>
#include <vector>

#include "src/pipeline/batch.h"

namespace dexlego::pipeline {

// All 134 DroidBench-analog samples, with per-sample natives and the
// leaky/benign ground truth attached.
std::vector<BatchJob> droidbench_jobs();

// `count` generated full-coverage apps (seeds seed0, seed0+1, ...) of about
// `units` code units each. Deterministic: the same arguments always produce
// byte-identical apps.
std::vector<BatchJob> generated_jobs(size_t count, uint64_t seed0 = 101,
                                     size_t units = 1200);

// `count` generated apps with half their code behind semantic input guards
// and a slice in never-called methods (the Table VII force-execution
// population): the workload where ForceEngine exploration pays. Pair with
// enable_force() or dexlego_batch --scenario guarded --force.
std::vector<BatchJob> guarded_jobs(size_t count, uint64_t seed0 = 301,
                                   size_t units = 4000);

// A set of replayable DroidBench samples packed with every available
// Table I packer preset (shell + encrypted payload; the pipeline's
// collection phase is what unpacks them).
std::vector<BatchJob> packed_jobs();

// The same packed samples first dumped by the DexHunter-analog unpacker;
// the pipeline then runs on the dump, demonstrating that snapshot dumps are
// just another input scenario.
std::vector<BatchJob> unpacker_baseline_jobs();

// `count` generated apps shipped as real Android DEX containers
// (classes.dex instead of classes.ldex; every third job is split multidex —
// classes.dex + classes2.dex + ...). Exercises the src/dex/real frontend
// through the whole pipeline; results must be byte-identical to the same
// apps in LDEX containers (ARCHITECTURE invariant 12).
std::vector<BatchJob> realdex_jobs(size_t count, uint64_t seed0 = 501,
                                   size_t units = 1200);

// `count` market-style apps for scaling runs (the 10k-app corpus behind
// bench/pipeline_throughput's gated multi-core speedup). Each app embeds
// 1-4 shared libraries drawn with a popularity skew from a fixed pool of
// `library_pool` library seeds — popular libraries recur across thousands
// of apps, so roughly two thirds of every app's method bodies dedup
// fleet-wide (realistic market reuse, not the ~14% DroidBench shows) while
// the rest stays unique app code. Deterministic in (count, seed0); app
// sizes jitter around `units` code units.
std::vector<BatchJob> large_corpus_jobs(size_t count, uint64_t seed0 = 1701,
                                        size_t units = 900,
                                        size_t library_pool = 48);

// The same market corpus after a catalog update: every `mutate_every`-th app
// (indices 0, mutate_every, ...) ships new app-local code — same name,
// package, size class and embedded libraries, different body seed — while
// every other app is byte-identical to large_corpus_jobs with the same
// (count, seed0, units, library_pool). The incremental-extraction workload:
// a warm service re-extracts only the mutated apps (docs/SERVICE.md).
// `version` distinguishes successive updates (1, 2, ...); version 0 IS the
// base corpus.
std::vector<BatchJob> large_corpus_update_jobs(size_t count,
                                               uint64_t seed0 = 1701,
                                               size_t units = 900,
                                               size_t library_pool = 48,
                                               size_t mutate_every = 10,
                                               uint64_t version = 1);

// `count` hostile-but-valid apps from the fuzzer's mutator families
// (docs/FUZZING.md): behavioral mutants (guard stacking, reflection mazes,
// self-modifying writes, nested packing) plus verifier-clean bytecode
// mutants, seeded from seed0 so the population is deterministic. The
// adversarial counterpart of generated_jobs.
std::vector<BatchJob> fuzz_jobs(size_t count, uint64_t seed0 = 901);

// Concatenation of every builder above.
std::vector<BatchJob> all_jobs();

// `repeat` copies of the job list, names suffixed "#r<k>" so every copy
// stays distinguishable in reports — the workload-scaling knob shared by
// dexlego_batch --repeat and the throughput bench.
std::vector<BatchJob> replicate_jobs(const std::vector<BatchJob>& jobs,
                                     int repeat);

// Turns every job into an (app, plan)-sharded force-execution job with the
// given exploration budgets (dexlego_batch --force; docs/FORCE_EXECUTION.md).
// Returns `jobs` for chaining.
std::vector<BatchJob>& enable_force(std::vector<BatchJob>& jobs,
                                    const coverage::ForceEngineOptions& options);

// Turns on the optional IR round-trip stage for every job: each reassembled
// body is lifted to SSA and lowered back, and the byte-identity counts ride
// along in JobResult::reassemble (ir_methods / ir_byte_identical /
// ir_failed). dexlego_batch --ir-roundtrip. Returns `jobs` for chaining.
std::vector<BatchJob>& enable_ir_roundtrip(std::vector<BatchJob>& jobs);

}  // namespace dexlego::pipeline
