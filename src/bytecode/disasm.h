// Smali-style disassembler. Used by tests (semantic diffing of reassembled
// output), the examples (to show Code 2/Code 3-style listings like the
// paper's) and debugging.
#pragma once

#include <span>
#include <string>

#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::bc {

// One instruction; `file` may be null (pool indices shown raw).
std::string disassemble_insn(const dex::DexFile* file, const Insn& insn, size_t pc);

// Whole code item with pc prefixes and payload annotations.
std::string disassemble_code(const dex::DexFile& file, const dex::CodeItem& code);

// Every method of a class, ".method"-framed like smali.
std::string disassemble_class(const dex::DexFile& file, const dex::ClassDef& cls);

}  // namespace dexlego::bc
