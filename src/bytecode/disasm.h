// Smali-style disassembler plus the batch predecoder. The disassembler is
// used by tests (semantic diffing of reassembled output), the examples (to
// show Code 2/Code 3-style listings like the paper's) and debugging. The
// predecoder is the decode-once half of the interpreter's cached dispatch
// path (src/runtime/predecode.h): one linear sweep maps every reachable
// instruction start to its decoded form, and each mapped slot keeps the
// source units the decode consumed so self-modifying writes are detected
// per slot instead of trusting the sweep forever.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::bc {

// One predecoded slot, indexed by code-unit pc. `mapped` is true when a
// decode is memoized for this pc — either the linear sweep started an
// instruction here or the interpreter lazily decoded a hostile jump target
// (self-modified code may branch into the middle of a swept instruction).
// decode_at is a pure function of the units it consumes, so a memoized
// decode is exact as long as those units are unchanged; `src` holds the
// first `src_len` of them (kMaxGuardUnits bounds the guard: every field of
// Insn is derived from the first 5 units, payload target lists are re-read
// live by the switch instruction).
struct PredecodedUnit {
  static constexpr size_t kMaxGuardUnits = 5;

  Insn insn;
  std::array<uint16_t, kMaxGuardUnits> src{};
  uint8_t src_len = 0;
  bool mapped = false;

  // True when the live units under this slot still match the units the
  // memoized decode consumed (the per-slot self-modification guard).
  bool src_matches(std::span<const uint16_t> code, size_t pc) const {
    if (pc + src_len > code.size()) return false;
    for (size_t i = 0; i < src_len; ++i) {
      if (code[pc + i] != src[i]) return false;
    }
    return true;
  }

  // Memoizes `decoded` for the instruction at code[pc] (records the guard
  // units). `consumed` is the actual unit count the decode consumed, which
  // for switch payloads can exceed Insn::width's 8-bit range.
  void memoize(std::span<const uint16_t> code, size_t pc, const Insn& decoded,
               size_t consumed);
};

// Batch decode: one linear sweep from pc 0, memoizing every instruction
// start. Stops quietly at the first undecodable pc (garbage tails decode
// lazily — and fail identically — when execution actually reaches them).
// Returns one slot per code unit; slots inside multi-unit instructions or
// payloads stay unmapped.
std::vector<PredecodedUnit> predecode_linear(std::span<const uint16_t> code);

// --- superinstruction fusion metadata (threaded dispatch tier) -------------
// The threaded interpreter (docs/INTERPRETER.md) fuses the hottest adjacent
// instruction pairs into one dispatch. Legality is per format group: the
// head must fall through into the tail, and both ends must belong to one of
// three families whose combined handler can execute the pair without an
// intervening full dispatch. The families mirror the pairs that dominate
// extraction workloads: compare feeding a conditional branch, constant
// materialization feeding a register move, and field load feeding a call.
enum class FuseKind : uint8_t {
  kNone = 0,
  kCmpBranch = 1,   // kCmp + any conditional branch (two-reg if / ifz group)
  kConstMove = 2,   // kConst16/kConst32/kConstWide + kMove
  kIgetInvoke = 3,  // kIget + any invoke
};
inline constexpr size_t kFuseKindCount = 4;  // including kNone

std::string_view fuse_kind_name(FuseKind kind);

// The family a (head, tail) adjacent pair belongs to, or kNone when the
// pair is not a legal superinstruction.
inline FuseKind fuse_kind(Op head, Op tail) {
  switch (head) {
    case Op::kCmp:
      return is_conditional_branch(tail) ? FuseKind::kCmpBranch : FuseKind::kNone;
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide:
      return tail == Op::kMove ? FuseKind::kConstMove : FuseKind::kNone;
    case Op::kIget:
      return is_invoke(tail) ? FuseKind::kIgetInvoke : FuseKind::kNone;
    default:
      return FuseKind::kNone;
  }
}

// Static per-method fusion profile: how many legal adjacent pairs of each
// family the predecoded sweep found. The threaded tier's predecoder fuses
// families hottest-first from this profile (src/runtime/predecode.h).
struct FusionProfile {
  std::array<uint32_t, kFuseKindCount> pairs{};
  uint32_t total() const {
    uint32_t sum = 0;
    for (size_t k = 1; k < kFuseKindCount; ++k) sum += pairs[k];
    return sum;
  }
};
FusionProfile fusion_profile(std::span<const PredecodedUnit> units);

// One instruction; `file` may be null (pool indices shown raw).
std::string disassemble_insn(const dex::DexFile* file, const Insn& insn, size_t pc);

// Whole code item with pc prefixes and payload annotations.
std::string disassemble_code(const dex::DexFile& file, const dex::CodeItem& code);

// Every method of a class, ".method"-framed like smali.
std::string disassemble_class(const dex::DexFile& file, const dex::ClassDef& cls);

}  // namespace dexlego::bc
