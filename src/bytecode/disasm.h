// Smali-style disassembler plus the batch predecoder. The disassembler is
// used by tests (semantic diffing of reassembled output), the examples (to
// show Code 2/Code 3-style listings like the paper's) and debugging. The
// predecoder is the decode-once half of the interpreter's cached dispatch
// path (src/runtime/predecode.h): one linear sweep maps every reachable
// instruction start to its decoded form, and each mapped slot keeps the
// source units the decode consumed so self-modifying writes are detected
// per slot instead of trusting the sweep forever.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::bc {

// One predecoded slot, indexed by code-unit pc. `mapped` is true when a
// decode is memoized for this pc — either the linear sweep started an
// instruction here or the interpreter lazily decoded a hostile jump target
// (self-modified code may branch into the middle of a swept instruction).
// decode_at is a pure function of the units it consumes, so a memoized
// decode is exact as long as those units are unchanged; `src` holds the
// first `src_len` of them (kMaxGuardUnits bounds the guard: every field of
// Insn is derived from the first 5 units, payload target lists are re-read
// live by the switch instruction).
struct PredecodedUnit {
  static constexpr size_t kMaxGuardUnits = 5;

  Insn insn;
  std::array<uint16_t, kMaxGuardUnits> src{};
  uint8_t src_len = 0;
  bool mapped = false;

  // True when the live units under this slot still match the units the
  // memoized decode consumed (the per-slot self-modification guard).
  bool src_matches(std::span<const uint16_t> code, size_t pc) const {
    if (pc + src_len > code.size()) return false;
    for (size_t i = 0; i < src_len; ++i) {
      if (code[pc + i] != src[i]) return false;
    }
    return true;
  }

  // Memoizes `decoded` for the instruction at code[pc] (records the guard
  // units). `consumed` is the actual unit count the decode consumed, which
  // for switch payloads can exceed Insn::width's 8-bit range.
  void memoize(std::span<const uint16_t> code, size_t pc, const Insn& decoded,
               size_t consumed);
};

// Batch decode: one linear sweep from pc 0, memoizing every instruction
// start. Stops quietly at the first undecodable pc (garbage tails decode
// lazily — and fail identically — when execution actually reaches them).
// Returns one slot per code unit; slots inside multi-unit instructions or
// payloads stay unmapped.
std::vector<PredecodedUnit> predecode_linear(std::span<const uint16_t> code);

// One instruction; `file` may be null (pool indices shown raw).
std::string disassemble_insn(const dex::DexFile* file, const Insn& insn, size_t pc);

// Whole code item with pc prefixes and payload annotations.
std::string disassemble_code(const dex::DexFile& file, const dex::CodeItem& code);

// Every method of a class, ".method"-framed like smali.
std::string disassemble_class(const dex::DexFile& file, const dex::ClassDef& cls);

}  // namespace dexlego::bc
