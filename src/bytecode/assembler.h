// MethodAssembler — label-based builder for LDEX code items. All sample
// programs, the synthetic app generators, the packer stubs and DexLego's
// reassembler emit code through this class, which resolves forward branches,
// lays out switch payloads after the code stream and records line tables.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::bc {

class MethodAssembler {
 public:
  // registers = total frame registers, ins = trailing argument registers.
  MethodAssembler(uint16_t registers, uint16_t ins);

  using Label = size_t;
  Label make_label();
  // Binds `label` to the current emission point. A label may be bound once.
  void bind(Label label);

  // Source line for subsequently emitted instructions (coverage granularity).
  void line(uint32_t line_number);

  // --- instruction emitters (regs are frame-register numbers) ---
  void nop();
  void move(uint8_t dst, uint8_t src);
  void const16(uint8_t dst, int16_t v);
  void const32(uint8_t dst, int32_t v);
  void const_wide(uint8_t dst, int64_t v);
  void const_string(uint8_t dst, uint16_t string_idx);
  void const_null(uint8_t dst);
  void move_result(uint8_t dst);
  void move_exception(uint8_t dst);
  void return_void();
  void return_value(uint8_t src);
  void throw_value(uint8_t src);
  void goto_(Label target);
  // op must be one of the if-test opcodes.
  void if_test(Op op, uint8_t a, uint8_t b, Label target);
  void if_testz(Op op, uint8_t a, Label target);
  void binop(Op op, uint8_t dst, uint8_t lhs, uint8_t rhs);
  void add_lit8(uint8_t dst, uint8_t src, int8_t lit);
  void mul_lit8(uint8_t dst, uint8_t src, int8_t lit);
  void unop(Op op, uint8_t dst, uint8_t src);
  void new_instance(uint8_t dst, uint16_t type_idx);
  void new_array(uint8_t dst, uint8_t len_reg, uint16_t type_idx);
  void array_length(uint8_t dst, uint8_t array_reg);
  void aget(uint8_t dst, uint8_t array_reg, uint8_t index_reg);
  void aput(uint8_t src, uint8_t array_reg, uint8_t index_reg);
  void iget(uint8_t dst, uint8_t obj_reg, uint16_t field_idx);
  void iput(uint8_t src, uint8_t obj_reg, uint16_t field_idx);
  void sget(uint8_t dst, uint16_t field_idx);
  void sput(uint8_t src, uint16_t field_idx);
  void invoke(Op op, uint16_t method_idx, std::initializer_list<uint8_t> args);
  void invoke(Op op, uint16_t method_idx, const std::vector<uint8_t>& args);
  void instance_of(uint8_t dst, uint8_t obj_reg, uint16_t type_idx);
  // Packed switch over keys first_key..first_key+targets.size()-1.
  void packed_switch(uint8_t reg, int32_t first_key, const std::vector<Label>& targets);

  // --- try/catch (catch-all handler, Dalvik-style pc ranges) ---
  void begin_try();
  void end_try(Label handler);

  size_t current_pc() const { return code_.size(); }

  // Resolves all fixups, lays out switch payloads, emits the line table.
  // Throws std::logic_error on unbound labels or out-of-range branches.
  dex::CodeItem finish();

 private:
  void emit(const Insn& insn);
  void fixup_branch(Label target, size_t insn_pc, size_t unit_offset);

  struct Fixup {
    Label label;
    size_t insn_pc;      // branch instruction start (offset base)
    size_t unit_offset;  // code unit holding the rel16 to patch
  };
  struct PendingSwitch {
    size_t insn_pc;       // switch instruction start
    int32_t first_key;
    std::vector<Label> targets;
  };

  uint16_t registers_;
  uint16_t ins_;
  std::vector<uint16_t> code_;
  std::vector<std::optional<size_t>> labels_;
  std::vector<Fixup> fixups_;
  std::vector<PendingSwitch> switches_;
  std::vector<dex::TryItem> tries_;
  std::vector<size_t> open_tries_;  // start pcs of begin_try without end_try yet
  std::vector<std::pair<size_t, Label>> try_handler_fixups_;  // try index, handler
  std::vector<dex::LineEntry> lines_;
  uint32_t current_line_ = 0;
};

}  // namespace dexlego::bc
