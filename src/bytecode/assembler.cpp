#include "src/bytecode/assembler.h"

#include <stdexcept>

namespace dexlego::bc {

MethodAssembler::MethodAssembler(uint16_t registers, uint16_t ins)
    : registers_(registers), ins_(ins) {
  if (ins > registers) throw std::logic_error("ins exceeds registers");
}

MethodAssembler::Label MethodAssembler::make_label() {
  labels_.emplace_back(std::nullopt);
  return labels_.size() - 1;
}

void MethodAssembler::bind(Label label) {
  if (labels_.at(label).has_value()) throw std::logic_error("label bound twice");
  labels_[label] = code_.size();
}

void MethodAssembler::line(uint32_t line_number) { current_line_ = line_number; }

void MethodAssembler::emit(const Insn& insn) {
  if (current_line_ != 0 &&
      (lines_.empty() || lines_.back().line != current_line_)) {
    lines_.push_back({static_cast<uint16_t>(code_.size()), current_line_});
  }
  encode_to(insn, code_);
}

void MethodAssembler::nop() { emit({.op = Op::kNop}); }

void MethodAssembler::move(uint8_t dst, uint8_t src) {
  emit({.op = Op::kMove, .a = dst, .b = src});
}

void MethodAssembler::const16(uint8_t dst, int16_t v) {
  emit({.op = Op::kConst16, .a = dst, .lit = v});
}

void MethodAssembler::const32(uint8_t dst, int32_t v) {
  emit({.op = Op::kConst32, .a = dst, .lit = v});
}

void MethodAssembler::const_wide(uint8_t dst, int64_t v) {
  emit({.op = Op::kConstWide, .a = dst, .lit = v});
}

void MethodAssembler::const_string(uint8_t dst, uint16_t string_idx) {
  emit({.op = Op::kConstString, .a = dst, .idx = string_idx});
}

void MethodAssembler::const_null(uint8_t dst) {
  emit({.op = Op::kConstNull, .a = dst});
}

void MethodAssembler::move_result(uint8_t dst) {
  emit({.op = Op::kMoveResult, .a = dst});
}

void MethodAssembler::move_exception(uint8_t dst) {
  emit({.op = Op::kMoveException, .a = dst});
}

void MethodAssembler::return_void() { emit({.op = Op::kReturnVoid}); }

void MethodAssembler::return_value(uint8_t src) {
  emit({.op = Op::kReturn, .a = src});
}

void MethodAssembler::throw_value(uint8_t src) {
  emit({.op = Op::kThrow, .a = src});
}

void MethodAssembler::goto_(Label target) {
  size_t pc = code_.size();
  emit({.op = Op::kGoto});
  fixups_.push_back({target, pc, pc + 1});
}

void MethodAssembler::if_test(Op op, uint8_t a, uint8_t b, Label target) {
  if (!is_two_reg_if(op)) throw std::logic_error("not a two-register if opcode");
  size_t pc = code_.size();
  emit({.op = op, .a = a, .b = b});
  fixups_.push_back({target, pc, pc + 2});
}

void MethodAssembler::if_testz(Op op, uint8_t a, Label target) {
  if (!is_conditional_branch(op) || is_two_reg_if(op)) {
    throw std::logic_error("not a zero-test if opcode");
  }
  size_t pc = code_.size();
  emit({.op = op, .a = a});
  fixups_.push_back({target, pc, pc + 1});
}

void MethodAssembler::binop(Op op, uint8_t dst, uint8_t lhs, uint8_t rhs) {
  if (op < Op::kAdd || op > Op::kCmp) throw std::logic_error("not a binop");
  emit({.op = op, .a = dst, .b = lhs, .c = rhs});
}

void MethodAssembler::add_lit8(uint8_t dst, uint8_t src, int8_t lit) {
  emit({.op = Op::kAddLit8,
        .a = dst,
        .b = src,
        .c = static_cast<uint8_t>(lit),
        .lit = lit});
}

void MethodAssembler::mul_lit8(uint8_t dst, uint8_t src, int8_t lit) {
  emit({.op = Op::kMulLit8,
        .a = dst,
        .b = src,
        .c = static_cast<uint8_t>(lit),
        .lit = lit});
}

void MethodAssembler::unop(Op op, uint8_t dst, uint8_t src) {
  if (op != Op::kNeg && op != Op::kNot) throw std::logic_error("not a unop");
  emit({.op = op, .a = dst, .b = src});
}

void MethodAssembler::new_instance(uint8_t dst, uint16_t type_idx) {
  emit({.op = Op::kNewInstance, .a = dst, .idx = type_idx});
}

void MethodAssembler::new_array(uint8_t dst, uint8_t len_reg, uint16_t type_idx) {
  emit({.op = Op::kNewArray, .a = dst, .b = len_reg, .idx = type_idx});
}

void MethodAssembler::array_length(uint8_t dst, uint8_t array_reg) {
  emit({.op = Op::kArrayLength, .a = dst, .b = array_reg});
}

void MethodAssembler::aget(uint8_t dst, uint8_t array_reg, uint8_t index_reg) {
  emit({.op = Op::kAget, .a = dst, .b = array_reg, .c = index_reg});
}

void MethodAssembler::aput(uint8_t src, uint8_t array_reg, uint8_t index_reg) {
  emit({.op = Op::kAput, .a = src, .b = array_reg, .c = index_reg});
}

void MethodAssembler::iget(uint8_t dst, uint8_t obj_reg, uint16_t field_idx) {
  emit({.op = Op::kIget, .a = dst, .b = obj_reg, .idx = field_idx});
}

void MethodAssembler::iput(uint8_t src, uint8_t obj_reg, uint16_t field_idx) {
  emit({.op = Op::kIput, .a = src, .b = obj_reg, .idx = field_idx});
}

void MethodAssembler::sget(uint8_t dst, uint16_t field_idx) {
  emit({.op = Op::kSget, .a = dst, .idx = field_idx});
}

void MethodAssembler::sput(uint8_t src, uint16_t field_idx) {
  emit({.op = Op::kSput, .a = src, .idx = field_idx});
}

void MethodAssembler::invoke(Op op, uint16_t method_idx,
                             std::initializer_list<uint8_t> args) {
  invoke(op, method_idx, std::vector<uint8_t>(args));
}

void MethodAssembler::invoke(Op op, uint16_t method_idx,
                             const std::vector<uint8_t>& args) {
  if (!is_invoke(op)) throw std::logic_error("not an invoke opcode");
  if (args.size() > 4) throw std::logic_error("invoke supports at most 4 args");
  Insn insn{.op = op, .a = static_cast<uint8_t>(args.size()), .idx = method_idx};
  for (size_t i = 0; i < args.size(); ++i) insn.args[i] = args[i];
  emit(insn);
}

void MethodAssembler::instance_of(uint8_t dst, uint8_t obj_reg, uint16_t type_idx) {
  emit({.op = Op::kInstanceOf, .a = dst, .b = obj_reg, .idx = type_idx});
}

void MethodAssembler::packed_switch(uint8_t reg, int32_t first_key,
                                    const std::vector<Label>& targets) {
  if (targets.empty()) throw std::logic_error("empty switch");
  size_t pc = code_.size();
  emit({.op = Op::kPackedSwitch, .a = reg});
  switches_.push_back({pc, first_key, targets});
}

void MethodAssembler::begin_try() { open_tries_.push_back(code_.size()); }

void MethodAssembler::end_try(Label handler) {
  if (open_tries_.empty()) throw std::logic_error("end_try without begin_try");
  size_t start = open_tries_.back();
  open_tries_.pop_back();
  dex::TryItem item;
  item.start_pc = static_cast<uint16_t>(start);
  item.end_pc = static_cast<uint16_t>(code_.size());
  tries_.push_back(item);
  try_handler_fixups_.emplace_back(tries_.size() - 1, handler);
}

void MethodAssembler::fixup_branch(Label target, size_t insn_pc, size_t unit_offset) {
  const auto& bound = labels_.at(target);
  if (!bound) throw std::logic_error("unbound label");
  ptrdiff_t delta = static_cast<ptrdiff_t>(*bound) - static_cast<ptrdiff_t>(insn_pc);
  if (delta < INT16_MIN || delta > INT16_MAX) {
    throw std::logic_error("branch offset out of rel16 range");
  }
  code_.at(unit_offset) = static_cast<uint16_t>(static_cast<int16_t>(delta));
}

dex::CodeItem MethodAssembler::finish() {
  if (!open_tries_.empty()) throw std::logic_error("unterminated try block");

  // Lay out switch payloads after the instruction stream. The code must end
  // in a non-continuing instruction (return/goto/throw) so execution can
  // never fall into payload data — the code verifier enforces this too.
  for (const PendingSwitch& sw : switches_) {
    size_t payload_pc = code_.size();
    ptrdiff_t delta =
        static_cast<ptrdiff_t>(payload_pc) - static_cast<ptrdiff_t>(sw.insn_pc);
    if (delta > INT16_MAX) throw std::logic_error("switch payload out of range");
    code_.at(sw.insn_pc + 1) = static_cast<uint16_t>(static_cast<int16_t>(delta));
    code_.push_back(static_cast<uint16_t>(Op::kPayload));
    code_.push_back(static_cast<uint16_t>(sw.targets.size()));
    code_.push_back(static_cast<uint16_t>(sw.first_key & 0xffff));
    code_.push_back(static_cast<uint16_t>((sw.first_key >> 16) & 0xffff));
    for (Label t : sw.targets) {
      const auto& bound = labels_.at(t);
      if (!bound) throw std::logic_error("unbound switch label");
      ptrdiff_t rel =
          static_cast<ptrdiff_t>(*bound) - static_cast<ptrdiff_t>(sw.insn_pc);
      if (rel < INT16_MIN || rel > INT16_MAX) {
        throw std::logic_error("switch target out of rel16 range");
      }
      code_.push_back(static_cast<uint16_t>(static_cast<int16_t>(rel)));
    }
  }

  for (const Fixup& fx : fixups_) fixup_branch(fx.label, fx.insn_pc, fx.unit_offset);
  for (const auto& [try_index, handler] : try_handler_fixups_) {
    const auto& bound = labels_.at(handler);
    if (!bound) throw std::logic_error("unbound try handler label");
    tries_.at(try_index).handler_pc = static_cast<uint16_t>(*bound);
  }

  dex::CodeItem item;
  item.registers_size = registers_;
  item.ins_size = ins_;
  item.insns = std::move(code_);
  item.tries = std::move(tries_);
  item.lines = std::move(lines_);
  return item;
}

}  // namespace dexlego::bc
