// The LDEX instruction set — a Dalvik-style register machine. Instructions
// are variable width (1..5 sixteen-bit code units, matching the paper's
// description of Android bytecode in Section II-B). Code unit 0 packs the
// opcode in the low byte and the primary operand (register or invoke argc)
// in the high byte; further units carry registers, literals, pool indices
// and branch offsets.
//
// Branch offsets (goto / if* / switch payload targets) are signed 16-bit
// values in code units, relative to the *start* of the branching
// instruction — the same convention as real Dalvik, which is what makes
// `dex_pc`-keyed instruction comparison (Algorithm 1) meaningful.
#pragma once

#include <cstdint>
#include <string_view>

namespace dexlego::bc {

enum class Op : uint8_t {
  kNop = 0x00,           // [op|0]
  kMove = 0x01,          // [op|vA][vB]                 vA <- vB
  kConst16 = 0x02,       // [op|vA][lit16]              vA <- sext(lit16)
  kConst32 = 0x03,       // [op|vA][lo][hi]             vA <- lit32
  kConstWide = 0x04,     // [op|vA][l0][l1][l2][l3]     vA <- lit64
  kConstString = 0x05,   // [op|vA][string_idx]
  kConstNull = 0x06,     // [op|vA]
  kMoveResult = 0x07,    // [op|vA]                     vA <- last invoke result
  kMoveException = 0x08, // [op|vA]                     vA <- pending exception
  kReturnVoid = 0x09,    // [op|0]
  kReturn = 0x0a,        // [op|vA]
  kThrow = 0x0b,         // [op|vA]
  kGoto = 0x0c,          // [op|0][off16]
  kIfEq = 0x0d,          // [op|vA][vB|0][off16]
  kIfNe = 0x0e,
  kIfLt = 0x0f,
  kIfGe = 0x10,
  kIfGt = 0x11,
  kIfLe = 0x12,
  kIfEqz = 0x13,         // [op|vA][off16]
  kIfNez = 0x14,
  kIfLtz = 0x15,
  kIfGez = 0x16,
  kIfGtz = 0x17,
  kIfLez = 0x18,
  kAdd = 0x19,           // [op|vA][vB|vC]              vA <- vB op vC
  kSub = 0x1a,
  kMul = 0x1b,
  kDiv = 0x1c,           // throws on division by zero
  kRem = 0x1d,
  kAnd = 0x1e,
  kOr = 0x1f,
  kXor = 0x20,
  kShl = 0x21,
  kShr = 0x22,
  kCmp = 0x23,           // vA <- sign(vB - vC) in {-1,0,1}
  kAddLit8 = 0x24,       // [op|vA][vB|lit8]            vA <- vB + sext(lit8)
  kMulLit8 = 0x25,
  kNeg = 0x26,           // [op|vA][vB|0]
  kNot = 0x27,
  kNewInstance = 0x28,   // [op|vA][type_idx]
  kNewArray = 0x29,      // [op|vA][vB|0][type_idx]     vA <- new T[vB]
  kArrayLength = 0x2a,   // [op|vA][vB|0]
  kAget = 0x2b,          // [op|vA][vB|vC]              vA <- vB[vC]
  kAput = 0x2c,          // [op|vA][vB|vC]              vB[vC] <- vA
  kIget = 0x2d,          // [op|vA][vB|0][field_idx]    vA <- vB.field
  kIput = 0x2e,          // [op|vA][vB|0][field_idx]    vB.field <- vA
  kSget = 0x2f,          // [op|vA][field_idx]
  kSput = 0x30,          // [op|vA][field_idx]
  kInvokeVirtual = 0x31, // [op|argc][method_idx][a0|a1][a2|a3]
  kInvokeDirect = 0x32,
  kInvokeStatic = 0x33,
  kPackedSwitch = 0x34,  // [op|vA][payload_off16]
  kInstanceOf = 0x35,    // [op|vA][vB|0][type_idx]
  // Switch payload pseudo-instruction (data, never executed):
  // [op|0][count][first_key_lo][first_key_hi][rel_target16 x count]
  kPayload = 0x36,
  kMaxOp = kPayload,
};

// What kind of constant-pool index (if any) an opcode's idx operand carries.
enum class RefKind : uint8_t { kNone, kString, kType, kField, kMethod };

// Static per-opcode metadata. Width 0 means variable (payload only).
struct OpInfo {
  std::string_view name;
  uint8_t width;  // in 16-bit code units; 0 = variable (kPayload)
  RefKind ref;
};

const OpInfo& op_info(Op op);
bool valid_op(uint8_t raw);

inline bool is_conditional_branch(Op op) {
  return op >= Op::kIfEq && op <= Op::kIfLez;
}
inline bool is_two_reg_if(Op op) { return op >= Op::kIfEq && op <= Op::kIfLe; }
inline bool is_invoke(Op op) {
  return op == Op::kInvokeVirtual || op == Op::kInvokeDirect ||
         op == Op::kInvokeStatic;
}
inline bool is_return(Op op) { return op == Op::kReturnVoid || op == Op::kReturn; }
// Whether execution can fall through to the next instruction.
inline bool can_continue(Op op) {
  return !is_return(op) && op != Op::kGoto && op != Op::kThrow && op != Op::kPayload;
}

}  // namespace dexlego::bc
