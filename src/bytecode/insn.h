// Decoded instruction form plus decode/encode between the 16-bit code-unit
// representation (what the interpreter executes and DexLego collects) and a
// structured view (what analyses consume).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/bytecode/opcodes.h"

namespace dexlego::bc {

struct Insn {
  Op op = Op::kNop;
  uint8_t a = 0;                  // primary register, or argc for invokes
  uint8_t b = 0;                  // second register
  uint8_t c = 0;                  // third register / lit8
  int64_t lit = 0;                // const literal (sign-extended)
  int32_t off = 0;                // branch offset in code units (rel. to insn start)
  uint16_t idx = 0;               // pool index (see op_info().ref)
  std::array<uint8_t, 4> args{};  // invoke argument registers
  uint16_t payload_count = 0;     // kPayload only
  uint8_t width = 1;              // total code units

  bool operator==(const Insn&) const = default;
};

// Decodes the instruction starting at code[pc]. Throws support::ParseError on
// truncated or invalid encodings (the runtime turns this into a verify error,
// never undefined behaviour — self-modifying code may write garbage).
Insn decode_at(std::span<const uint16_t> code, size_t pc);

// True number of code units a decoded instruction occupies. Equals
// insn.width except for switch payloads, whose 4 + payload_count extent can
// exceed the 8-bit width field.
inline size_t consumed_units(const Insn& insn) {
  return insn.op == Op::kPayload ? 4 + static_cast<size_t>(insn.payload_count)
                                 : insn.width;
}

// Width of the instruction at pc without full decoding (payload-aware).
size_t width_at(std::span<const uint16_t> code, size_t pc);

// Re-encodes a decoded instruction to code units. encode(decode_at(x)) == x
// for all valid encodings (property-tested).
std::vector<uint16_t> encode(const Insn& insn);
void encode_to(const Insn& insn, std::vector<uint16_t>& out);

// Switch payload view: keys first_key..first_key+count-1 map to
// switch_pc + target[i].
struct SwitchPayload {
  int32_t first_key = 0;
  std::vector<int32_t> rel_targets;  // relative to the switch instruction
};
// Reads the payload referenced by a kPackedSwitch at switch_pc.
SwitchPayload read_switch_payload(std::span<const uint16_t> code, size_t switch_pc,
                                  const Insn& switch_insn);

// All successor pcs of the instruction at pc (fallthrough + branch targets).
// Returns empty for return/throw. Used by the CFG builder, the force-execution
// branch analysis and the code verifier.
std::vector<size_t> successors_at(std::span<const uint16_t> code, size_t pc);

}  // namespace dexlego::bc
