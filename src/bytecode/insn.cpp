#include "src/bytecode/insn.h"

#include "src/support/bytes.h"

namespace dexlego::bc {

using support::ParseError;

namespace {
void need(std::span<const uint16_t> code, size_t pc, size_t units) {
  if (pc + units > code.size()) throw ParseError("truncated instruction");
}
}  // namespace

Insn decode_at(std::span<const uint16_t> code, size_t pc) {
  need(code, pc, 1);
  uint16_t unit0 = code[pc];
  uint8_t raw_op = static_cast<uint8_t>(unit0 & 0xff);
  if (!valid_op(raw_op)) throw ParseError("invalid opcode " + std::to_string(raw_op));

  Insn insn;
  insn.op = static_cast<Op>(raw_op);
  insn.a = static_cast<uint8_t>(unit0 >> 8);

  switch (insn.op) {
    case Op::kNop:
    case Op::kConstNull:
    case Op::kMoveResult:
    case Op::kMoveException:
    case Op::kReturnVoid:
    case Op::kReturn:
    case Op::kThrow:
      insn.width = 1;
      break;
    case Op::kMove:
      need(code, pc, 2);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.width = 2;
      break;
    case Op::kConst16:
      need(code, pc, 2);
      insn.lit = static_cast<int16_t>(code[pc + 1]);
      insn.width = 2;
      break;
    case Op::kConst32:
      need(code, pc, 3);
      insn.lit = static_cast<int32_t>(code[pc + 1] |
                                      (static_cast<uint32_t>(code[pc + 2]) << 16));
      insn.width = 3;
      break;
    case Op::kConstWide: {
      need(code, pc, 5);
      uint64_t v = 0;
      for (int i = 0; i < 4; ++i) v |= static_cast<uint64_t>(code[pc + 1 + i]) << (16 * i);
      insn.lit = static_cast<int64_t>(v);
      insn.width = 5;
      break;
    }
    case Op::kConstString:
      need(code, pc, 2);
      insn.idx = code[pc + 1];
      insn.width = 2;
      break;
    case Op::kGoto:
      need(code, pc, 2);
      insn.off = static_cast<int16_t>(code[pc + 1]);
      insn.width = 2;
      break;
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
      need(code, pc, 3);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.off = static_cast<int16_t>(code[pc + 2]);
      insn.width = 3;
      break;
    case Op::kIfEqz:
    case Op::kIfNez:
    case Op::kIfLtz:
    case Op::kIfGez:
    case Op::kIfGtz:
    case Op::kIfLez:
      need(code, pc, 2);
      insn.off = static_cast<int16_t>(code[pc + 1]);
      insn.width = 2;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
    case Op::kAput:
      need(code, pc, 2);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.c = static_cast<uint8_t>(code[pc + 1] >> 8);
      insn.width = 2;
      break;
    case Op::kAddLit8:
    case Op::kMulLit8:
      need(code, pc, 2);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.c = static_cast<uint8_t>(code[pc + 1] >> 8);  // lit8 payload
      insn.lit = static_cast<int8_t>(insn.c);
      insn.width = 2;
      break;
    case Op::kNeg:
    case Op::kNot:
    case Op::kArrayLength:
      need(code, pc, 2);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.width = 2;
      break;
    case Op::kNewInstance:
      need(code, pc, 2);
      insn.idx = code[pc + 1];
      insn.width = 2;
      break;
    case Op::kNewArray:
    case Op::kInstanceOf:
      need(code, pc, 3);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.idx = code[pc + 2];
      insn.width = 3;
      break;
    case Op::kIget:
    case Op::kIput:
      need(code, pc, 3);
      insn.b = static_cast<uint8_t>(code[pc + 1] & 0xff);
      insn.idx = code[pc + 2];
      insn.width = 3;
      break;
    case Op::kSget:
    case Op::kSput:
      need(code, pc, 2);
      insn.idx = code[pc + 1];
      insn.width = 2;
      break;
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      need(code, pc, 4);
      if (insn.a > 4) throw ParseError("invoke argc > 4");
      insn.idx = code[pc + 1];
      insn.args[0] = static_cast<uint8_t>(code[pc + 2] & 0xff);
      insn.args[1] = static_cast<uint8_t>(code[pc + 2] >> 8);
      insn.args[2] = static_cast<uint8_t>(code[pc + 3] & 0xff);
      insn.args[3] = static_cast<uint8_t>(code[pc + 3] >> 8);
      insn.width = 4;
      break;
    case Op::kPackedSwitch:
      need(code, pc, 2);
      insn.off = static_cast<int16_t>(code[pc + 1]);
      insn.width = 2;
      break;
    case Op::kPayload: {
      need(code, pc, 4);
      insn.payload_count = code[pc + 1];
      insn.lit = static_cast<int32_t>(code[pc + 2] |
                                      (static_cast<uint32_t>(code[pc + 3]) << 16));
      need(code, pc, 4 + static_cast<size_t>(insn.payload_count));
      insn.width = static_cast<uint8_t>(4 + insn.payload_count);
      break;
    }
  }
  return insn;
}

size_t width_at(std::span<const uint16_t> code, size_t pc) {
  need(code, pc, 1);
  uint8_t raw_op = static_cast<uint8_t>(code[pc] & 0xff);
  if (!valid_op(raw_op)) throw ParseError("invalid opcode");
  Op op = static_cast<Op>(raw_op);
  if (op == Op::kPayload) {
    need(code, pc, 2);
    return 4 + static_cast<size_t>(code[pc + 1]);
  }
  return op_info(op).width;
}

void encode_to(const Insn& insn, std::vector<uint16_t>& out) {
  auto unit0 = static_cast<uint16_t>(static_cast<uint8_t>(insn.op) |
                                     (static_cast<uint16_t>(insn.a) << 8));
  out.push_back(unit0);
  switch (insn.op) {
    case Op::kNop:
    case Op::kConstNull:
    case Op::kMoveResult:
    case Op::kMoveException:
    case Op::kReturnVoid:
    case Op::kReturn:
    case Op::kThrow:
      break;
    case Op::kMove:
    case Op::kNeg:
    case Op::kNot:
    case Op::kArrayLength:
      out.push_back(insn.b);
      break;
    case Op::kConst16:
      out.push_back(static_cast<uint16_t>(insn.lit & 0xffff));
      break;
    case Op::kConst32:
      out.push_back(static_cast<uint16_t>(insn.lit & 0xffff));
      out.push_back(static_cast<uint16_t>((insn.lit >> 16) & 0xffff));
      break;
    case Op::kConstWide:
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<uint16_t>((insn.lit >> (16 * i)) & 0xffff));
      }
      break;
    case Op::kConstString:
    case Op::kNewInstance:
    case Op::kSget:
    case Op::kSput:
      out.push_back(insn.idx);
      break;
    case Op::kGoto:
    case Op::kIfEqz:
    case Op::kIfNez:
    case Op::kIfLtz:
    case Op::kIfGez:
    case Op::kIfGtz:
    case Op::kIfLez:
    case Op::kPackedSwitch:
      out.push_back(static_cast<uint16_t>(insn.off & 0xffff));
      break;
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
      out.push_back(insn.b);
      out.push_back(static_cast<uint16_t>(insn.off & 0xffff));
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
    case Op::kAput:
    case Op::kAddLit8:
    case Op::kMulLit8:
      out.push_back(static_cast<uint16_t>(insn.b | (static_cast<uint16_t>(insn.c) << 8)));
      break;
    case Op::kNewArray:
    case Op::kInstanceOf:
    case Op::kIget:
    case Op::kIput:
      out.push_back(insn.b);
      out.push_back(insn.idx);
      break;
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      out.push_back(insn.idx);
      out.push_back(static_cast<uint16_t>(insn.args[0] |
                                          (static_cast<uint16_t>(insn.args[1]) << 8)));
      out.push_back(static_cast<uint16_t>(insn.args[2] |
                                          (static_cast<uint16_t>(insn.args[3]) << 8)));
      break;
    case Op::kPayload:
      out.push_back(insn.payload_count);
      out.push_back(static_cast<uint16_t>(insn.lit & 0xffff));
      out.push_back(static_cast<uint16_t>((insn.lit >> 16) & 0xffff));
      // Caller appends the target list; encode() only emits the header here.
      break;
  }
}

std::vector<uint16_t> encode(const Insn& insn) {
  std::vector<uint16_t> out;
  encode_to(insn, out);
  return out;
}

SwitchPayload read_switch_payload(std::span<const uint16_t> code, size_t switch_pc,
                                  const Insn& switch_insn) {
  size_t payload_pc = switch_pc + static_cast<size_t>(switch_insn.off);
  Insn payload = decode_at(code, payload_pc);
  if (payload.op != Op::kPayload) throw ParseError("switch target is not a payload");
  SwitchPayload result;
  result.first_key = static_cast<int32_t>(payload.lit);
  result.rel_targets.reserve(payload.payload_count);
  for (uint16_t i = 0; i < payload.payload_count; ++i) {
    result.rel_targets.push_back(static_cast<int16_t>(code[payload_pc + 4 + i]));
  }
  return result;
}

std::vector<size_t> successors_at(std::span<const uint16_t> code, size_t pc) {
  Insn insn = decode_at(code, pc);
  std::vector<size_t> succ;
  if (can_continue(insn.op)) succ.push_back(pc + insn.width);
  if (insn.op == Op::kGoto || is_conditional_branch(insn.op)) {
    succ.push_back(pc + static_cast<size_t>(insn.off));
  } else if (insn.op == Op::kPackedSwitch) {
    SwitchPayload payload = read_switch_payload(code, pc, insn);
    for (int32_t rel : payload.rel_targets) {
      succ.push_back(pc + static_cast<size_t>(rel));
    }
  }
  return succ;
}

}  // namespace dexlego::bc
