// Instruction-level verifier: walks every code item checking opcode validity,
// instruction alignment, branch targets landing on instruction starts, pool
// index bounds against the owning DexFile, register bounds against the frame
// size, and payload reachability (payloads must not be reachable by
// fallthrough). DexLego's reassembled output must pass this — the paper's
// claim is that the reassembled DEX is *valid*, not just textually plausible.
#pragma once

#include "src/dex/dex.h"
#include "src/dex/verify.h"

namespace dexlego::bc {

// Verifies one code item against its file (for pool bounds).
dex::VerifyResult verify_code(const dex::DexFile& file, const dex::CodeItem& code,
                              const std::string& context);

// Structural + instruction-level verification of a whole file.
dex::VerifyResult verify_dex(const dex::DexFile& file);

}  // namespace dexlego::bc
