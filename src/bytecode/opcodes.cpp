#include "src/bytecode/opcodes.h"

#include <array>
#include <stdexcept>

namespace dexlego::bc {

namespace {
constexpr size_t kOpCount = static_cast<size_t>(Op::kMaxOp) + 1;

constexpr std::array<OpInfo, kOpCount> kOpTable = {{
    {"nop", 1, RefKind::kNone},
    {"move", 2, RefKind::kNone},
    {"const/16", 2, RefKind::kNone},
    {"const/32", 3, RefKind::kNone},
    {"const-wide", 5, RefKind::kNone},
    {"const-string", 2, RefKind::kString},
    {"const-null", 1, RefKind::kNone},
    {"move-result", 1, RefKind::kNone},
    {"move-exception", 1, RefKind::kNone},
    {"return-void", 1, RefKind::kNone},
    {"return", 1, RefKind::kNone},
    {"throw", 1, RefKind::kNone},
    {"goto", 2, RefKind::kNone},
    {"if-eq", 3, RefKind::kNone},
    {"if-ne", 3, RefKind::kNone},
    {"if-lt", 3, RefKind::kNone},
    {"if-ge", 3, RefKind::kNone},
    {"if-gt", 3, RefKind::kNone},
    {"if-le", 3, RefKind::kNone},
    {"if-eqz", 2, RefKind::kNone},
    {"if-nez", 2, RefKind::kNone},
    {"if-ltz", 2, RefKind::kNone},
    {"if-gez", 2, RefKind::kNone},
    {"if-gtz", 2, RefKind::kNone},
    {"if-lez", 2, RefKind::kNone},
    {"add-int", 2, RefKind::kNone},
    {"sub-int", 2, RefKind::kNone},
    {"mul-int", 2, RefKind::kNone},
    {"div-int", 2, RefKind::kNone},
    {"rem-int", 2, RefKind::kNone},
    {"and-int", 2, RefKind::kNone},
    {"or-int", 2, RefKind::kNone},
    {"xor-int", 2, RefKind::kNone},
    {"shl-int", 2, RefKind::kNone},
    {"shr-int", 2, RefKind::kNone},
    {"cmp", 2, RefKind::kNone},
    {"add-int/lit8", 2, RefKind::kNone},
    {"mul-int/lit8", 2, RefKind::kNone},
    {"neg-int", 2, RefKind::kNone},
    {"not-int", 2, RefKind::kNone},
    {"new-instance", 2, RefKind::kType},
    {"new-array", 3, RefKind::kType},
    {"array-length", 2, RefKind::kNone},
    {"aget", 2, RefKind::kNone},
    {"aput", 2, RefKind::kNone},
    {"iget", 3, RefKind::kField},
    {"iput", 3, RefKind::kField},
    {"sget", 2, RefKind::kField},
    {"sput", 2, RefKind::kField},
    {"invoke-virtual", 4, RefKind::kMethod},
    {"invoke-direct", 4, RefKind::kMethod},
    {"invoke-static", 4, RefKind::kMethod},
    {"packed-switch", 2, RefKind::kNone},
    {"instance-of", 3, RefKind::kType},
    {"switch-payload", 0, RefKind::kNone},
}};
}  // namespace

const OpInfo& op_info(Op op) {
  auto idx = static_cast<size_t>(op);
  if (idx >= kOpCount) throw std::out_of_range("invalid opcode");
  return kOpTable[idx];
}

bool valid_op(uint8_t raw) { return raw <= static_cast<uint8_t>(Op::kMaxOp); }

}  // namespace dexlego::bc
