#include "src/bytecode/dalvik_map.h"

#include <array>

#include "src/bytecode/insn.h"
#include "src/support/bytes.h"

namespace dexlego::bc {

namespace {

struct DalvikEntry {
  uint8_t value;
  std::string_view name;
};

// Indexed by LDEX Op. Values are the real AOSP opcodes whose semantics the
// LDEX instruction mirrors; where LDEX collapses a family (e.g. one `aget`
// for all element widths) the plain-int member represents it. kPayload is
// special-cased by the transcoder (ident unit 0x0100, not an opcode byte).
constexpr std::array<DalvikEntry, static_cast<size_t>(Op::kMaxOp) + 1>
    kDalvikTable = {{
        {0x00, "nop"},             // kNop
        {0x01, "move"},            // kMove
        {0x13, "const/16"},        // kConst16
        {0x14, "const"},           // kConst32
        {0x18, "const-wide"},      // kConstWide
        {0x1a, "const-string"},    // kConstString
        {0x12, "const/4"},         // kConstNull (loads the null literal)
        {0x0a, "move-result"},     // kMoveResult
        {0x0d, "move-exception"},  // kMoveException
        {0x0e, "return-void"},     // kReturnVoid
        {0x0f, "return"},          // kReturn
        {0x27, "throw"},           // kThrow
        {0x29, "goto/16"},         // kGoto (16-bit offset form)
        {0x32, "if-eq"},           // kIfEq
        {0x33, "if-ne"},           // kIfNe
        {0x34, "if-lt"},           // kIfLt
        {0x35, "if-ge"},           // kIfGe
        {0x36, "if-gt"},           // kIfGt
        {0x37, "if-le"},           // kIfLe
        {0x38, "if-eqz"},          // kIfEqz
        {0x39, "if-nez"},          // kIfNez
        {0x3a, "if-ltz"},          // kIfLtz
        {0x3b, "if-gez"},          // kIfGez
        {0x3c, "if-gtz"},          // kIfGtz
        {0x3d, "if-lez"},          // kIfLez
        {0x90, "add-int"},         // kAdd
        {0x91, "sub-int"},         // kSub
        {0x92, "mul-int"},         // kMul
        {0x93, "div-int"},         // kDiv
        {0x94, "rem-int"},         // kRem
        {0x95, "and-int"},         // kAnd
        {0x96, "or-int"},          // kOr
        {0x97, "xor-int"},         // kXor
        {0x98, "shl-int"},         // kShl
        {0x99, "shr-int"},         // kShr
        {0x31, "cmp-long"},        // kCmp (three-register compare)
        {0xd8, "add-int/lit8"},    // kAddLit8
        {0xda, "mul-int/lit8"},    // kMulLit8
        {0x7b, "neg-int"},         // kNeg
        {0x7c, "not-int"},         // kNot
        {0x22, "new-instance"},    // kNewInstance
        {0x23, "new-array"},       // kNewArray
        {0x21, "array-length"},    // kArrayLength
        {0x44, "aget"},            // kAget
        {0x4b, "aput"},            // kAput
        {0x52, "iget"},            // kIget
        {0x59, "iput"},            // kIput
        {0x60, "sget"},            // kSget
        {0x67, "sput"},            // kSput
        {0x6e, "invoke-virtual"},  // kInvokeVirtual
        {0x70, "invoke-direct"},   // kInvokeDirect
        {0x71, "invoke-static"},   // kInvokeStatic
        {0x2b, "packed-switch"},   // kPackedSwitch
        {0x20, "instance-of"},     // kInstanceOf
        {0x00, "packed-switch-payload"},  // kPayload (ident 0x0100)
    }};

// Reverse lookup built once; 0xff = unmapped.
constexpr std::array<uint8_t, 256> build_reverse() {
  std::array<uint8_t, 256> rev{};
  for (auto& v : rev) v = 0xff;
  for (size_t i = 0; i + 1 < kDalvikTable.size(); ++i) {  // kPayload excluded
    rev[kDalvikTable[i].value] = static_cast<uint8_t>(i);
  }
  return rev;
}

constexpr std::array<uint8_t, 256> kReverse = build_reverse();

}  // namespace

uint8_t dalvik_opcode(Op op) {
  return kDalvikTable[static_cast<size_t>(op)].value;
}

std::optional<Op> op_from_dalvik(uint8_t raw) {
  uint8_t ldex = kReverse[raw];
  if (ldex == 0xff) return std::nullopt;
  return static_cast<Op>(ldex);
}

std::string_view dalvik_name(Op op) {
  return kDalvikTable[static_cast<size_t>(op)].name;
}

std::vector<uint16_t> transcode_to_dalvik(std::span<const uint16_t> insns) {
  std::vector<uint16_t> out(insns.begin(), insns.end());
  size_t pc = 0;
  while (pc < insns.size()) {
    size_t width = width_at(insns, pc);  // throws ParseError on garbage
    if (width == 0 || pc + width > insns.size()) {
      throw support::ParseError("truncated instruction during transcode");
    }
    Op op = static_cast<Op>(insns[pc] & 0xff);
    if (op == Op::kPayload) {
      out[pc] = kDalvikPackedSwitchPayload;
    } else {
      out[pc] = static_cast<uint16_t>((insns[pc] & 0xff00) |
                                      dalvik_opcode(op));
    }
    pc += width;
  }
  return out;
}

std::vector<uint16_t> transcode_from_dalvik(std::span<const uint16_t> insns) {
  std::vector<uint16_t> out(insns.begin(), insns.end());
  size_t pc = 0;
  while (pc < insns.size()) {
    uint16_t unit = insns[pc];
    size_t width;
    if (unit == kDalvikPackedSwitchPayload) {
      if (pc + 4 > insns.size()) {
        throw support::ParseError("truncated switch payload in real DEX code");
      }
      width = 4 + static_cast<size_t>(insns[pc + 1]);
      out[pc] = static_cast<uint16_t>(Op::kPayload);
    } else {
      std::optional<Op> op = op_from_dalvik(static_cast<uint8_t>(unit & 0xff));
      if (!op.has_value()) {
        throw support::ParseError("real DEX opcode outside the mapped set");
      }
      width = op_info(*op).width;
      out[pc] = static_cast<uint16_t>((unit & 0xff00) |
                                      static_cast<uint16_t>(*op));
    }
    if (width == 0 || pc + width > insns.size()) {
      throw support::ParseError("truncated instruction in real DEX code");
    }
    pc += width;
  }
  return out;
}

}  // namespace dexlego::bc
