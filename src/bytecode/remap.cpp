#include "src/bytecode/remap.h"

#include <set>
#include <stdexcept>

#include "src/bytecode/insn.h"

namespace dexlego::bc {

namespace {

uint32_t remap_ref(const dex::DexFile& src, dex::DexBuilder& dst, RefKind kind,
                   uint16_t idx) {
  switch (kind) {
    case RefKind::kString:
      return dst.intern_string(src.string_at(idx));
    case RefKind::kType:
      return dst.intern_type(src.type_descriptor(idx));
    case RefKind::kField: {
      const dex::FieldRef& f = src.fields.at(idx);
      return dst.intern_field(src.type_descriptor(f.class_type),
                              src.type_descriptor(f.type), src.string_at(f.name));
    }
    case RefKind::kMethod: {
      const dex::MethodRef& m = src.methods.at(idx);
      const dex::Proto& proto = src.protos.at(m.proto);
      std::vector<std::string> params;
      params.reserve(proto.param_types.size());
      for (uint32_t p : proto.param_types) params.push_back(src.type_descriptor(p));
      return dst.intern_method(src.type_descriptor(m.class_type),
                               src.string_at(m.name),
                               src.type_descriptor(proto.return_type), params);
    }
    case RefKind::kNone:
      return 0;
  }
  return 0;
}

}  // namespace

dex::CodeItem remap_code(const dex::DexFile& src, const dex::CodeItem& code,
                         dex::DexBuilder& dst) {
  dex::CodeItem out = code;
  std::span<const uint16_t> insns(code.insns);
  size_t pc = 0;
  while (pc < insns.size()) {
    Insn insn = decode_at(insns, pc);
    RefKind kind = op_info(insn.op).ref;
    if (kind != RefKind::kNone) {
      uint32_t idx = remap_ref(src, dst, kind, insn.idx);
      if (idx > 0xffff) throw std::runtime_error("pool overflow in remap");
      size_t idx_unit;
      switch (insn.op) {
        case Op::kIget:
        case Op::kIput:
        case Op::kNewArray:
        case Op::kInstanceOf:
          idx_unit = 2;
          break;
        default:
          idx_unit = 1;
          break;
      }
      out.insns.at(pc + idx_unit) = static_cast<uint16_t>(idx);
    }
    pc += insn.width;
  }
  return out;
}

void copy_class(const dex::DexFile& src, const dex::ClassDef& cls,
                dex::DexBuilder& dst) {
  const std::string& descriptor = src.type_descriptor(cls.type_idx);
  std::string super = cls.super_type_idx != dex::kNoIndex
                          ? src.type_descriptor(cls.super_type_idx)
                          : "";
  dst.start_class(descriptor, super, cls.access_flags);

  auto copy_field = [&](const dex::FieldDef& f, bool is_static) {
    const dex::FieldRef& ref = src.fields.at(f.field_ref);
    std::optional<dex::EncodedValue> init;
    if (f.static_init) {
      init = *f.static_init;
      if (init->kind == dex::EncodedValue::Kind::kString) {
        init->string_idx = dst.intern_string(src.string_at(f.static_init->string_idx));
      }
    }
    if (is_static) {
      dst.add_static_field(src.string_at(ref.name), src.type_descriptor(ref.type),
                           init, f.access_flags);
    } else {
      dst.add_instance_field(src.string_at(ref.name),
                             src.type_descriptor(ref.type), f.access_flags);
    }
  };
  for (const dex::FieldDef& f : cls.static_fields) copy_field(f, true);
  for (const dex::FieldDef& f : cls.instance_fields) copy_field(f, false);

  auto copy_method = [&](const dex::MethodDef& m, bool direct) {
    const dex::MethodRef& ref = src.methods.at(m.method_ref);
    const dex::Proto& proto = src.protos.at(ref.proto);
    std::vector<std::string> params;
    for (uint32_t p : proto.param_types) params.push_back(src.type_descriptor(p));
    const std::string& name = src.string_at(ref.name);
    const std::string& ret = src.type_descriptor(proto.return_type);
    if (m.access_flags & dex::kAccNative) {
      dst.add_native_method(name, ret, params, m.access_flags);
      return;
    }
    dex::CodeItem code = m.code ? remap_code(src, *m.code, dst) : dex::CodeItem{};
    if (direct) {
      dst.add_direct_method(name, ret, params, std::move(code), m.access_flags);
    } else {
      dst.add_virtual_method(name, ret, params, std::move(code), m.access_flags);
    }
  };
  for (const dex::MethodDef& m : cls.direct_methods) copy_method(m, true);
  for (const dex::MethodDef& m : cls.virtual_methods) copy_method(m, false);
}

dex::DexFile merge_dex_files(std::span<const dex::DexFile* const> files) {
  dex::DexBuilder dst;
  std::set<std::string> seen;
  for (const dex::DexFile* file : files) {
    for (const dex::ClassDef& cls : file->classes) {
      const std::string& descriptor = file->type_descriptor(cls.type_idx);
      if (!seen.insert(descriptor).second) continue;
      copy_class(*file, cls, dst);
    }
  }
  return std::move(dst).build();
}

}  // namespace dexlego::bc
