#include "src/bytecode/disasm.h"

#include <algorithm>
#include <sstream>

#include "src/support/bytes.h"

namespace dexlego::bc {

void PredecodedUnit::memoize(std::span<const uint16_t> code, size_t pc,
                             const Insn& decoded, size_t consumed) {
  insn = decoded;
  src_len = static_cast<uint8_t>(std::min(consumed, kMaxGuardUnits));
  for (size_t i = 0; i < src_len; ++i) src[i] = code[pc + i];
  mapped = true;
}

std::vector<PredecodedUnit> predecode_linear(std::span<const uint16_t> code) {
  std::vector<PredecodedUnit> units(code.size());
  size_t pc = 0;
  while (pc < code.size()) {
    Insn insn;
    size_t consumed;
    try {
      insn = decode_at(code, pc);
      consumed = consumed_units(insn);
    } catch (const support::ParseError&) {
      break;  // garbage tail: later pcs decode lazily if ever executed
    }
    units[pc].memoize(code, pc, insn, consumed);
    pc += consumed;
  }
  return units;
}

std::string_view fuse_kind_name(FuseKind kind) {
  switch (kind) {
    case FuseKind::kCmpBranch: return "cmp+branch";
    case FuseKind::kConstMove: return "const+move";
    case FuseKind::kIgetInvoke: return "iget+invoke";
    case FuseKind::kNone: break;
  }
  return "none";
}

FusionProfile fusion_profile(std::span<const PredecodedUnit> units) {
  FusionProfile profile;
  for (size_t pc = 0; pc < units.size(); ++pc) {
    if (!units[pc].mapped) continue;
    size_t tail = pc + consumed_units(units[pc].insn);
    if (tail >= units.size() || !units[tail].mapped) continue;
    FuseKind kind = fuse_kind(units[pc].insn.op, units[tail].insn.op);
    profile.pairs[static_cast<size_t>(kind)]++;
  }
  return profile;
}

namespace {
std::string reg(uint8_t r) { return "v" + std::to_string(r); }
}  // namespace

std::string disassemble_insn(const dex::DexFile* file, const Insn& insn, size_t pc) {
  const OpInfo& info = op_info(insn.op);
  std::ostringstream os;
  os << info.name;

  auto ref_name = [&](uint16_t idx) -> std::string {
    if (file == nullptr) return "@" + std::to_string(idx);
    try {
      switch (info.ref) {
        case RefKind::kString:
          return "\"" + file->string_at(idx) + "\"";
        case RefKind::kType:
          return file->type_descriptor(idx);
        case RefKind::kField:
          return file->pretty_field(idx);
        case RefKind::kMethod:
          return file->pretty_method(idx);
        default:
          return "@" + std::to_string(idx);
      }
    } catch (const std::out_of_range&) {
      return "@!" + std::to_string(idx);
    }
  };

  switch (insn.op) {
    case Op::kNop:
    case Op::kReturnVoid:
      break;
    case Op::kConstNull:
    case Op::kMoveResult:
    case Op::kMoveException:
    case Op::kReturn:
    case Op::kThrow:
      os << " " << reg(insn.a);
      break;
    case Op::kMove:
    case Op::kNeg:
    case Op::kNot:
    case Op::kArrayLength:
      os << " " << reg(insn.a) << ", " << reg(insn.b);
      break;
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide:
      os << " " << reg(insn.a) << ", #" << insn.lit;
      break;
    case Op::kConstString:
      os << " " << reg(insn.a) << ", " << ref_name(insn.idx);
      break;
    case Op::kGoto:
      os << " :" << (static_cast<ptrdiff_t>(pc) + insn.off);
      break;
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
      os << " " << reg(insn.a) << ", " << reg(insn.b) << ", :"
         << (static_cast<ptrdiff_t>(pc) + insn.off);
      break;
    case Op::kIfEqz:
    case Op::kIfNez:
    case Op::kIfLtz:
    case Op::kIfGez:
    case Op::kIfGtz:
    case Op::kIfLez:
      os << " " << reg(insn.a) << ", :" << (static_cast<ptrdiff_t>(pc) + insn.off);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
    case Op::kAput:
      os << " " << reg(insn.a) << ", " << reg(insn.b) << ", " << reg(insn.c);
      break;
    case Op::kAddLit8:
    case Op::kMulLit8:
      os << " " << reg(insn.a) << ", " << reg(insn.b) << ", #" << insn.lit;
      break;
    case Op::kNewInstance:
      os << " " << reg(insn.a) << ", " << ref_name(insn.idx);
      break;
    case Op::kNewArray:
    case Op::kInstanceOf:
      os << " " << reg(insn.a) << ", " << reg(insn.b) << ", " << ref_name(insn.idx);
      break;
    case Op::kIget:
    case Op::kIput:
      os << " " << reg(insn.a) << ", " << reg(insn.b) << ", " << ref_name(insn.idx);
      break;
    case Op::kSget:
    case Op::kSput:
      os << " " << reg(insn.a) << ", " << ref_name(insn.idx);
      break;
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic: {
      os << " {";
      for (uint8_t i = 0; i < insn.a; ++i) {
        if (i > 0) os << ", ";
        os << reg(insn.args[i]);
      }
      os << "}, " << ref_name(insn.idx);
      break;
    }
    case Op::kPackedSwitch:
      os << " " << reg(insn.a) << ", :payload@"
         << (static_cast<ptrdiff_t>(pc) + insn.off);
      break;
    case Op::kPayload:
      os << " first_key=" << insn.lit << " count=" << insn.payload_count;
      break;
  }
  return os.str();
}

std::string disassemble_code(const dex::DexFile& file, const dex::CodeItem& code) {
  std::ostringstream os;
  os << "    .registers " << code.registers_size << " (ins " << code.ins_size
     << ")\n";
  std::span<const uint16_t> insns(code.insns);
  size_t pc = 0;
  while (pc < insns.size()) {
    Insn insn = decode_at(insns, pc);
    os << "    " << pc << ": " << disassemble_insn(&file, insn, pc) << "\n";
    pc += insn.width;
  }
  for (const dex::TryItem& t : code.tries) {
    os << "    .catchall {" << t.start_pc << " .. " << t.end_pc << "} -> "
       << t.handler_pc << "\n";
  }
  return os.str();
}

std::string disassemble_class(const dex::DexFile& file, const dex::ClassDef& cls) {
  std::ostringstream os;
  os << ".class " << file.type_descriptor(cls.type_idx) << "\n";
  if (cls.super_type_idx != dex::kNoIndex) {
    os << ".super " << file.type_descriptor(cls.super_type_idx) << "\n";
  }
  auto dump_methods = [&](const std::vector<dex::MethodDef>& methods) {
    for (const dex::MethodDef& m : methods) {
      os << ".method " << file.pretty_method(m.method_ref);
      if (m.access_flags & dex::kAccNative) os << " (native)";
      os << "\n";
      if (m.code) os << disassemble_code(file, *m.code);
      os << ".end method\n";
    }
  };
  dump_methods(cls.direct_methods);
  dump_methods(cls.virtual_methods);
  return os.str();
}

}  // namespace dexlego::bc
