// Opcode/format mapping between the LDEX instruction set and the real Dalvik
// Executable opcode space (the `dex\n`-magic frontend/backend in
// src/dex/real/). Every LDEX opcode maps to a distinct real Dalvik opcode
// value whose semantics it mirrors (kIfEq -> 0x32 if-eq, kInvokeStatic ->
// 0x71 invoke-static, ...), so the mapping is bijective and transcoding is
// exactly invertible: a real-DEX code item stores the Dalvik opcode byte in
// code unit 0 while keeping the LDEX operand layout (the documented format
// deviation — see docs/DEX_FORMAT.md).
//
// Switch payloads map to the real packed-switch-payload ident unit 0x0100.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/bytecode/opcodes.h"

namespace dexlego::bc {

// Real Dalvik packed-switch-payload identifier (full 16-bit ident unit).
inline constexpr uint16_t kDalvikPackedSwitchPayload = 0x0100;

// The real Dalvik opcode value an LDEX opcode transcodes to.
uint8_t dalvik_opcode(Op op);

// Reverse map; nullopt for Dalvik opcodes with no LDEX correspondent.
std::optional<Op> op_from_dalvik(uint8_t raw);

// AOSP mnemonic of the mapped opcode ("if-eq", "invoke-static", ...).
std::string_view dalvik_name(Op op);

// Rewrites an LDEX instruction stream's opcode bytes to their Dalvik values
// (operand units untouched). Walks real instruction boundaries; throws
// support::ParseError on undecodable input, so garbage never reaches a real
// DEX container unnoticed.
std::vector<uint16_t> transcode_to_dalvik(std::span<const uint16_t> insns);

// Exact inverse of transcode_to_dalvik. Throws support::ParseError on
// unmapped opcodes or truncated instructions (hostile real-DEX code items
// fail closed).
std::vector<uint16_t> transcode_from_dalvik(std::span<const uint16_t> insns);

}  // namespace dexlego::bc
