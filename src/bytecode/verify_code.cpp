#include "src/bytecode/verify_code.h"

#include <set>

#include "src/bytecode/insn.h"
#include "src/support/bytes.h"

namespace dexlego::bc {

namespace {

class CodeVerifier {
 public:
  CodeVerifier(const dex::DexFile& file, const dex::CodeItem& code,
               const std::string& context, dex::VerifyResult& result)
      : file_(file), code_(code), context_(context), result_(result) {}

  void run() {
    if (code_.insns.empty()) {
      fail("empty instruction array");
      return;
    }
    if (!collect_starts()) return;
    check_instructions();
    check_flow_termination();
  }

 private:
  void fail(const std::string& msg) {
    result_.errors.push_back(context_ + ": " + msg);
  }

  // First pass: decode linearly to learn instruction boundaries.
  bool collect_starts() {
    std::span<const uint16_t> insns(code_.insns);
    size_t pc = 0;
    while (pc < insns.size()) {
      size_t width;
      try {
        width = width_at(insns, pc);
        if (pc + width > insns.size()) {
          fail("instruction at " + std::to_string(pc) + " runs past code end");
          return false;
        }
      } catch (const support::ParseError& e) {
        fail("undecodable instruction at " + std::to_string(pc) + ": " + e.what());
        return false;
      }
      starts_.insert(pc);
      uint8_t raw = static_cast<uint8_t>(insns[pc] & 0xff);
      if (static_cast<Op>(raw) == Op::kPayload) payloads_.insert(pc);
      pc += width;
    }
    return true;
  }

  void check_ref(const Insn& insn, size_t pc) {
    const OpInfo& info = op_info(insn.op);
    bool ok = true;
    switch (info.ref) {
      case RefKind::kString: ok = insn.idx < file_.strings.size(); break;
      case RefKind::kType: ok = insn.idx < file_.types.size(); break;
      case RefKind::kField: ok = insn.idx < file_.fields.size(); break;
      case RefKind::kMethod: ok = insn.idx < file_.methods.size(); break;
      case RefKind::kNone: break;
    }
    if (!ok) {
      fail("pool index out of bounds at pc " + std::to_string(pc));
    }
  }

  void check_regs(const Insn& insn, size_t pc) {
    auto check = [&](uint8_t r) {
      if (r >= code_.registers_size) {
        fail("register v" + std::to_string(r) + " out of frame at pc " +
             std::to_string(pc));
      }
    };
    switch (insn.op) {
      case Op::kNop:
      case Op::kReturnVoid:
      case Op::kGoto:
      case Op::kPayload:
        break;
      case Op::kInvokeVirtual:
      case Op::kInvokeDirect:
      case Op::kInvokeStatic:
        for (uint8_t i = 0; i < insn.a; ++i) check(insn.args[i]);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kRem:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kShl:
      case Op::kShr:
      case Op::kCmp:
      case Op::kAget:
      case Op::kAput:
        check(insn.a);
        check(insn.b);
        check(insn.c);
        break;
      case Op::kMove:
      case Op::kNeg:
      case Op::kNot:
      case Op::kArrayLength:
      case Op::kNewArray:
      case Op::kInstanceOf:
      case Op::kIget:
      case Op::kIput:
      case Op::kIfEq:
      case Op::kIfNe:
      case Op::kIfLt:
      case Op::kIfGe:
      case Op::kIfGt:
      case Op::kIfLe:
      case Op::kAddLit8:
      case Op::kMulLit8:
        check(insn.a);
        check(insn.b);
        break;
      default:
        check(insn.a);
        break;
    }
  }

  void check_branch_target(size_t pc, ptrdiff_t target) {
    if (target < 0 || static_cast<size_t>(target) >= code_.insns.size() ||
        !starts_.contains(static_cast<size_t>(target))) {
      fail("branch target " + std::to_string(target) +
           " from pc " + std::to_string(pc) + " is not an instruction start");
      return;
    }
    if (payloads_.contains(static_cast<size_t>(target))) {
      fail("branch into switch payload from pc " + std::to_string(pc));
    }
  }

  void check_instructions() {
    std::span<const uint16_t> insns(code_.insns);
    for (size_t pc : starts_) {
      Insn insn = decode_at(insns, pc);
      check_ref(insn, pc);
      check_regs(insn, pc);
      if (insn.op == Op::kGoto || is_conditional_branch(insn.op)) {
        check_branch_target(pc, static_cast<ptrdiff_t>(pc) + insn.off);
      } else if (insn.op == Op::kPackedSwitch) {
        ptrdiff_t ppc = static_cast<ptrdiff_t>(pc) + insn.off;
        if (ppc < 0 || !payloads_.contains(static_cast<size_t>(ppc))) {
          fail("switch at pc " + std::to_string(pc) + " has no payload");
          continue;
        }
        SwitchPayload payload = read_switch_payload(insns, pc, insn);
        for (int32_t rel : payload.rel_targets) {
          check_branch_target(pc, static_cast<ptrdiff_t>(pc) + rel);
        }
      }
    }
    for (const dex::TryItem& t : code_.tries) {
      if (!starts_.contains(t.handler_pc)) {
        fail("try handler not at instruction start");
      }
    }
  }

  // Execution must never fall off the end of the array or into a payload.
  void check_flow_termination() {
    std::span<const uint16_t> insns(code_.insns);
    for (size_t pc : starts_) {
      Insn insn = decode_at(insns, pc);
      if (insn.op == Op::kPayload) continue;
      if (!can_continue(insn.op)) continue;
      size_t next = pc + insn.width;
      if (next >= insns.size()) {
        fail("execution can run off code end at pc " + std::to_string(pc));
      } else if (payloads_.contains(next)) {
        fail("execution can fall into switch payload after pc " +
             std::to_string(pc));
      }
    }
  }

  const dex::DexFile& file_;
  const dex::CodeItem& code_;
  std::string context_;
  dex::VerifyResult& result_;
  std::set<size_t> starts_;
  std::set<size_t> payloads_;
};

}  // namespace

dex::VerifyResult verify_code(const dex::DexFile& file, const dex::CodeItem& code,
                              const std::string& context) {
  dex::VerifyResult result;
  CodeVerifier(file, code, context, result).run();
  return result;
}

dex::VerifyResult verify_dex(const dex::DexFile& file) {
  dex::VerifyResult result = dex::verify_structure(file);
  if (!result.ok()) return result;  // pool indices unsafe to chase further
  for (const dex::ClassDef& cls : file.classes) {
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (!m.code) continue;
        dex::VerifyResult mr =
            verify_code(file, *m.code, file.pretty_method(m.method_ref));
        for (std::string& e : mr.errors) result.errors.push_back(std::move(e));
      }
    }
  }
  return result;
}

}  // namespace dexlego::bc
