// Cross-DEX class copying: re-interns every pool reference a code item makes
// (strings, types, fields, methods) into a target DexBuilder and rewrites the
// instruction operands. Used by the class-wise packers (splitting one DEX
// into several) and by the DexHunter/AppSpear baselines (merging every
// in-memory image into one dump).
#pragma once

#include <span>

#include "src/dex/builder.h"
#include "src/dex/dex.h"

namespace dexlego::bc {

// Copies `code` from `src` into the pools of `dst`, remapping operands.
dex::CodeItem remap_code(const dex::DexFile& src, const dex::CodeItem& code,
                         dex::DexBuilder& dst);

// Copies a whole class definition (fields, methods, code) into `dst`.
void copy_class(const dex::DexFile& src, const dex::ClassDef& cls,
                dex::DexBuilder& dst);

// Merges several DEX files into one; duplicate class descriptors keep the
// first definition (class-loader order semantics).
dex::DexFile merge_dex_files(std::span<const dex::DexFile* const> files);

}  // namespace dexlego::bc
