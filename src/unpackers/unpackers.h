// Method-level dump-based unpacking baselines (paper Section VI-B and
// Table III):
//
//   DexHunter analog — dumps the *file images* of every DEX registered with
//   the runtime after execution (the mmapped regions at the "right timing").
//   Dynamically loaded payloads are captured; runtime bytecode patches are
//   NOT (the dump reflects the file bytes, i.e. one snapshot state).
//
//   AppSpear analog — re-serializes the *linked runtime structures*
//   (classes/methods as the class linker holds them) at dump time. Captures
//   the post-execution state of each method's single code array — again one
//   snapshot per method, so self-modifying divergences are lost.
//
// Both therefore recover packed + dynamically loaded code but cannot
// represent per-execution divergences or resolve reflection, which is
// exactly the gap DexLego's instruction-level collection closes.
#pragma once

#include <functional>
#include <string>

#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::unpackers {

struct UnpackOptions {
  std::function<void(rt::Runtime&)> configure_runtime;  // natives etc.
  std::function<void(rt::Runtime&)> driver;             // default: launch+clicks
};

struct UnpackResult {
  dex::Apk unpacked;     // original APK with the dumped DEX spliced in
  size_t images = 0;     // DEX images observed (1 shell + payloads)
  size_t classes = 0;    // classes in the dump
};

UnpackResult dexhunter_unpack(const dex::Apk& packed,
                              const UnpackOptions& options = {});
UnpackResult appspear_unpack(const dex::Apk& packed,
                             const UnpackOptions& options = {});

}  // namespace dexlego::unpackers
