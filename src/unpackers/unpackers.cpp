#include "src/unpackers/unpackers.h"

#include "src/bytecode/remap.h"
#include "src/dex/builder.h"
#include "src/dex/io.h"

namespace dexlego::unpackers {

namespace {

void run_app(rt::Runtime& runtime, const dex::Apk& apk,
             const UnpackOptions& options) {
  if (options.configure_runtime) options.configure_runtime(runtime);
  runtime.install(apk);
  if (options.driver) {
    options.driver(runtime);
  } else {
    runtime.launch();
    for (int id : runtime.ui_clickable_ids()) runtime.fire_click(id);
    runtime.call_activity_method("onPause");
    runtime.call_activity_method("onDestroy");
  }
}

}  // namespace

UnpackResult dexhunter_unpack(const dex::Apk& packed,
                              const UnpackOptions& options) {
  rt::Runtime runtime;
  run_app(runtime, packed, options);

  // Dump = merge of all in-memory DEX file images (shell + released
  // payloads), exactly as mapped from "disk" — runtime patches invisible.
  std::vector<const dex::DexFile*> files;
  for (const auto& image : runtime.linker().images()) {
    files.push_back(&image->file);
  }
  UnpackResult result;
  result.images = files.size();
  dex::DexFile merged = bc::merge_dex_files(files);
  result.classes = merged.classes.size();
  result.unpacked = packed;
  result.unpacked.set_classes(dex::write_dex(merged));
  return result;
}

UnpackResult appspear_unpack(const dex::Apk& packed,
                             const UnpackOptions& options) {
  rt::Runtime runtime;
  run_app(runtime, packed, options);

  // Rebuild from the class linker's live structures: every loaded class with
  // its methods' *current* code arrays (one snapshot per method).
  dex::DexBuilder builder;
  UnpackResult result;
  result.images = runtime.linker().images().size();
  for (rt::RtClass* cls : runtime.linker().loaded_classes()) {
    builder.start_class(cls->descriptor,
                        cls->super_descriptor.empty() ? "Ljava/lang/Object;"
                                                      : cls->super_descriptor,
                        cls->access_flags);
    for (const rt::RtField& f : cls->instance_fields) {
      builder.add_instance_field(f.name, f.type_descriptor, f.access_flags);
    }
    for (const rt::RtField& f : cls->static_fields) {
      std::optional<dex::EncodedValue> init;
      if (f.init) {
        init = *f.init;
        if (init->kind == dex::EncodedValue::Kind::kString && f.image != nullptr) {
          init->string_idx =
              builder.intern_string(f.image->file.string_at(f.init->string_idx));
        }
      }
      builder.add_static_field(f.name, f.type_descriptor, init, f.access_flags);
    }
    for (const auto& method : cls->methods) {
      const dex::DexFile& src = method->image->file;
      const dex::MethodRef& ref = src.methods.at(method->dex_method_idx);
      const dex::Proto& proto = src.protos.at(ref.proto);
      std::vector<std::string> params;
      for (uint32_t p : proto.param_types) params.push_back(src.type_descriptor(p));
      const std::string& ret = src.type_descriptor(proto.return_type);
      bool direct = method->is_static() || method->is_constructor() ||
                    (method->access_flags & dex::kAccPrivate) != 0;
      if (method->is_native()) {
        builder.add_native_method(method->name, ret, params, method->access_flags);
        continue;
      }
      if (!method->code) continue;
      dex::CodeItem code = bc::remap_code(src, *method->code, builder);
      if (direct) {
        builder.add_direct_method(method->name, ret, params, std::move(code),
                                  method->access_flags);
      } else {
        builder.add_virtual_method(method->name, ret, params, std::move(code),
                                   method->access_flags);
      }
    }
  }
  dex::DexFile dumped = std::move(builder).build();
  result.classes = dumped.classes.size();
  result.unpacked = packed;
  result.unpacked.set_classes(dex::write_dex(dumped));
  return result;
}

}  // namespace dexlego::unpackers
