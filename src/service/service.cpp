#include "src/service/service.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/support/bytes.h"
#include "src/support/hash.h"
#include "src/support/log.h"
#include "src/support/timer.h"

namespace dexlego::service {

namespace fs = std::filesystem;

namespace {

// apps.log: an 8-byte header then fixed 88-byte records, append-only with
// last-wins semantics per app key (a re-extracted app simply appends a
// fresher record). Torn tails truncate on load, like the store segments.
constexpr uint32_t kManifestMagic = 0x48504144;        // "DAPH"
constexpr uint32_t kManifestRecordMagic = 0x52504144;  // "DAPR"
constexpr uint32_t kManifestVersion = 1;
constexpr size_t kManifestHeaderBytes = 8;
constexpr size_t kManifestRecordBytes = 88;

uint64_t bits_of(double v) {
  uint64_t out;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

double double_of(uint64_t v) {
  double out;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

bool terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kRejected;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

ExtractionService::ExtractionService(std::string store_dir,
                                     ServiceOptions options)
    : dir_(std::move(store_dir)), options_(options) {
  PersistentDedupStore::Options store_options;
  store_options.shards = options_.store_shards;
  store_options.fsync = options_.fsync;
  store_ = std::make_unique<PersistentDedupStore>(dir_, store_options);
  load_manifest();

  size_t threads = options_.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads < 1) threads = 1;
  options_.threads = threads;  // fixed before workers read it for chunking
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExtractionService::~ExtractionService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused service still drains its accepted jobs
    cv_work_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    if (manifest_file_) {
      std::fflush(manifest_file_);
      std::fclose(manifest_file_);
      manifest_file_ = nullptr;
    }
  }
  store_.reset();  // flushes the generation-stamped index (flush_on_close)
}

uint64_t ExtractionService::job_bytes(const pipeline::BatchJob& job) {
  uint64_t total = 0;
  for (const std::string& name : job.apk.entry_names()) {
    total += job.apk.entry(name).size();
  }
  return total;
}

uint64_t ExtractionService::cache_key(const pipeline::BatchJob& job) {
  // Content fingerprint of the INPUT: the serialized apk plus the scenario
  // tag. Jobs whose reveal options differ per scenario must use distinct
  // scenario strings — the contract docs/SERVICE.md spells out.
  support::Fnv1a h;
  std::vector<uint8_t> bytes = job.apk.write();
  h.add_bytes(bytes);
  h.add(support::fnv1a(job.scenario));
  return h.digest();
}

void ExtractionService::set_quota(const std::string& tenant,
                                  TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  state.quota = quota;
  state.quota_set = true;
}

JobId ExtractionService::submit(pipeline::BatchJob job,
                                const std::string& tenant) {
  const uint64_t bytes = job_bytes(job);
  std::lock_guard<std::mutex> lock(mu_);
  const JobId id = next_id_++;
  Record& record = records_[id];
  record.status.id = id;
  record.status.tenant = tenant;
  record.bytes = bytes;
  ++stats_.submitted;

  TenantState& state = tenants_[tenant];
  const TenantQuota& quota =
      state.quota_set ? state.quota : options_.default_quota;
  const bool over_jobs =
      quota.max_in_flight != 0 && state.in_flight + 1 > quota.max_in_flight;
  const bool over_bytes =
      quota.max_in_flight_bytes != 0 &&
      state.in_flight_bytes + bytes > quota.max_in_flight_bytes;
  if (stopping_ || over_jobs || over_bytes) {
    record.status.state = JobState::kRejected;
    record.status.error =
        stopping_ ? "service is shutting down"
        : over_jobs
            ? "tenant quota exceeded: max_in_flight=" +
                  std::to_string(quota.max_in_flight)
            : "tenant quota exceeded: max_in_flight_bytes=" +
                  std::to_string(quota.max_in_flight_bytes);
    ++stats_.rejected;
    cv_done_.notify_all();
    return id;
  }

  record.job = std::move(job);
  record.status.state = JobState::kQueued;
  state.in_flight += 1;
  state.in_flight_bytes += bytes;
  queue_.push_back(id);
  cv_work_.notify_one();
  return id;
}

std::vector<JobId> ExtractionService::submit_batch(
    std::vector<pipeline::BatchJob> jobs, const std::string& tenant) {
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (pipeline::BatchJob& job : jobs) {
    ids.push_back(submit(std::move(job), tenant));
  }
  return ids;
}

JobStatus ExtractionService::poll(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    JobStatus missing;
    missing.id = id;
    missing.state = JobState::kRejected;
    missing.error = "unknown job id";
    return missing;
  }
  return it->second.status;
}

JobStatus ExtractionService::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    JobStatus missing;
    missing.id = id;
    missing.state = JobState::kRejected;
    missing.error = "unknown job id";
    return missing;
  }
  Record& record = it->second;  // node-stable across rehash; never erased
  cv_done_.wait(lock, [&] { return terminal(record.status.state); });
  return record.status;
}

bool ExtractionService::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end() || it->second.status.state != JobState::kQueued) {
    return false;  // already claimed, terminal, or unknown
  }
  auto pos = std::find(queue_.begin(), queue_.end(), id);
  if (pos == queue_.end()) return false;
  queue_.erase(pos);
  it->second.status.state = JobState::kCancelled;
  it->second.status.error = "cancelled before execution";
  ++stats_.cancelled;
  release_tenant(it->second.status.tenant, it->second.bytes);
  cv_done_.notify_all();
  return true;
}

void ExtractionService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void ExtractionService::resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  cv_work_.notify_all();
}

void ExtractionService::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void ExtractionService::checkpoint() {
  store_->flush();
  std::lock_guard<std::mutex> lock(manifest_mu_);
  if (manifest_file_) std::fflush(manifest_file_);
}

ServiceStats ExtractionService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ExtractionService::manifest_entries() const {
  std::lock_guard<std::mutex> lock(manifest_mu_);
  return manifest_.size();
}

void ExtractionService::release_tenant(const std::string& tenant,
                                       uint64_t bytes) {
  TenantState& state = tenants_[tenant];
  if (state.in_flight > 0) state.in_flight -= 1;
  state.in_flight_bytes -= std::min(state.in_flight_bytes, bytes);
}

void ExtractionService::worker_loop() {
  for (;;) {
    std::vector<Record*> chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Chunked pop, same shape as run_batch's queue: claim a slice sized
      // to the backlog so deep queues amortize the lock, shallow queues
      // still spread across workers.
      const size_t chunk_size = std::clamp<size_t>(
          queue_.size() / (2 * options_.threads), size_t{1}, size_t{32});
      while (chunk.size() < chunk_size && !queue_.empty()) {
        const JobId id = queue_.front();
        queue_.pop_front();
        Record& record = records_.at(id);
        record.status.state = JobState::kRunning;
        chunk.push_back(&record);
      }
      running_ += chunk.size();
    }
    for (Record* record : chunk) execute(*record);
  }
}

void ExtractionService::execute(Record& record) {
  // record.job is immutable once queued and only this worker owns the
  // record until the terminal publish below, so the extraction itself runs
  // without holding mu_.
  const pipeline::BatchJob& job = record.job;
  pipeline::JobResult result;
  bool warm = false;
  try {
    uint64_t key = 0;
    const bool cacheable = !job.force;  // force exploration is never cached
    if (cacheable) key = cache_key(job);
    if (cacheable && options_.incremental) warm = try_warm(job, key, result);
    if (!warm) {
      // keep_dex forced on: the revealed dex must be persisted for future
      // warm hits even when the caller does not want the bytes back.
      result = pipeline::run_job(job, *store_, /*keep_dex=*/true);
      if (result.ok && cacheable) {
        ManifestEntry entry;
        std::vector<uint8_t> dex = result.dex;
        entry.dex_id = store_->intern(std::move(dex)).id;
        entry.dex_fingerprint = result.dex_fingerprint;
        entry.tree_count = result.unique_trees;
        entry.leaks = result.leaks_observed;
        entry.verified = result.verified;
        entry.instruction_coverage = result.instruction_coverage;
        entry.branch_coverage = result.branch_coverage;
        entry.collection_bytes = result.collection_bytes;
        // Ordering is the crash contract: the dex bytes hit the store log
        // (write-ahead, inside intern) before this record exists, so a
        // manifest entry can never point at bytes a crash lost.
        append_manifest(key, entry);
      }
    }
    if (!options_.keep_dex) {
      result.dex.clear();
      result.dex.shrink_to_fit();
    }
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  } catch (...) {
    // Fail closed for non-std throws too: the tenant's job fails, the
    // worker survives.
    result.ok = false;
    result.error = "unknown exception (non-std type)";
  }
  if (result.name.empty()) result.name = job.name;
  if (result.scenario.empty()) result.scenario = job.scenario;

  std::lock_guard<std::mutex> lock(mu_);
  JobStatus& status = record.status;
  status.incremental = warm;
  status.methods_new = warm ? 0 : result.dedup_misses;
  status.methods_reused = warm ? result.unique_trees : result.dedup_hits;
  status.state = result.ok ? JobState::kDone : JobState::kFailed;
  status.error = result.error;
  status.result = std::move(result);
  if (status.state == JobState::kDone) {
    ++stats_.completed;
    if (warm) ++stats_.incremental_hits;
  } else {
    ++stats_.failed;
  }
  stats_.methods_new += status.methods_new;
  stats_.methods_reused += status.methods_reused;
  release_tenant(status.tenant, record.bytes);
  running_ -= 1;
  cv_done_.notify_all();
}

bool ExtractionService::try_warm(const pipeline::BatchJob& job, uint64_t key,
                                 pipeline::JobResult& result) {
  ManifestEntry entry;
  {
    std::lock_guard<std::mutex> lock(manifest_mu_);
    auto it = manifest_.find(key);
    if (it == manifest_.end()) return false;
    entry = it->second;
  }
  const std::vector<uint8_t>* dex = store_->lookup(entry.dex_id);
  if (!dex) return false;  // payload unexpectedly missing: run cold
  support::Stopwatch wall;
  result = pipeline::JobResult{};
  result.name = job.name;
  result.scenario = job.scenario;
  result.expect_leak = job.expect_leak;
  result.ok = true;
  result.verified = entry.verified;
  result.leaks_observed = static_cast<size_t>(entry.leaks);
  result.instruction_coverage = entry.instruction_coverage;
  result.branch_coverage = entry.branch_coverage;
  result.collection_bytes = static_cast<size_t>(entry.collection_bytes);
  result.unique_trees = entry.tree_count;
  result.dex_fingerprint = entry.dex_fingerprint;
  if (options_.keep_dex) result.dex = *dex;
  result.wall_ms = wall.elapsed_ms();
  return true;
}

void ExtractionService::load_manifest() {
  const std::string path = dir_ + "/apps.log";
  size_t valid = 0;
  size_t dropped_unresolved = 0;
  if (fs::exists(path)) {
    std::vector<uint8_t> data = support::read_file(path);
    if (data.size() >= kManifestHeaderBytes) {
      support::ByteReader header(
          std::span<const uint8_t>(data.data(), kManifestHeaderBytes));
      if (header.u32() == kManifestMagic && header.u32() == kManifestVersion) {
        valid = kManifestHeaderBytes;
        while (valid + kManifestRecordBytes <= data.size()) {
          const uint8_t* rec = data.data() + valid;
          const size_t body = kManifestRecordBytes - sizeof(uint64_t);
          uint64_t stored_checksum;
          std::memcpy(&stored_checksum, rec + body, sizeof stored_checksum);
          support::ByteReader r(std::span<const uint8_t>(rec, body));
          if (r.u32() != kManifestRecordMagic ||
              r.u32() != 0 ||  // reserved
              support::fnv1a(std::span<const uint8_t>(rec, body)) !=
                  stored_checksum) {
            break;  // torn/corrupt tail
          }
          const uint64_t key = r.u64();
          ManifestEntry entry;
          entry.dex_id = r.u64();
          entry.dex_fingerprint = r.u64();
          entry.tree_count = r.u64();
          entry.leaks = r.u64();
          entry.verified = r.u64() != 0;
          entry.instruction_coverage = double_of(r.u64());
          entry.branch_coverage = double_of(r.u64());
          entry.collection_bytes = r.u64();
          valid += kManifestRecordBytes;
          if (store_->lookup(entry.dex_id) == nullptr) {
            // The record survived but its dex payload did not (e.g. the
            // store log's tail was torn further back than the manifest's).
            // Serving it warm would fabricate bytes; drop it and let the
            // app re-extract cold.
            ++dropped_unresolved;
            continue;
          }
          manifest_[key] = entry;  // last record for a key wins
        }
      }
    }
    if (valid < data.size()) {
      DL_WARN << "service manifest: dropped " << (data.size() - valid)
              << " torn tail bytes from " << path;
      std::error_code ec;
      fs::resize_file(path, valid, ec);
      if (ec) {
        throw std::runtime_error("service manifest: cannot truncate " + path +
                                 ": " + ec.message());
      }
    }
  }
  if (dropped_unresolved > 0) {
    DL_WARN << "service manifest: dropped " << dropped_unresolved
            << " records whose dex payload is not in the store";
  }
  manifest_file_ = std::fopen(path.c_str(), "ab");
  if (!manifest_file_) {
    throw std::runtime_error("service manifest: cannot open " + path);
  }
  if (valid == 0) {
    support::ByteWriter header;
    header.u32(kManifestMagic);
    header.u32(kManifestVersion);
    if (std::fwrite(header.data().data(), 1, header.size(), manifest_file_) !=
            header.size() ||
        std::fflush(manifest_file_) != 0) {
      throw std::runtime_error("service manifest: cannot write header of " +
                               path);
    }
  }
}

void ExtractionService::append_manifest(uint64_t key,
                                        const ManifestEntry& entry) {
  support::ByteWriter w;
  w.u32(kManifestRecordMagic);
  w.u32(0);  // reserved
  w.u64(key);
  w.u64(entry.dex_id);
  w.u64(entry.dex_fingerprint);
  w.u64(entry.tree_count);
  w.u64(entry.leaks);
  w.u64(entry.verified ? 1 : 0);
  w.u64(bits_of(entry.instruction_coverage));
  w.u64(bits_of(entry.branch_coverage));
  w.u64(entry.collection_bytes);
  w.u64(support::fnv1a(std::span<const uint8_t>(w.data())));

  std::lock_guard<std::mutex> lock(manifest_mu_);
  if (std::fwrite(w.data().data(), 1, w.size(), manifest_file_) != w.size() ||
      std::fflush(manifest_file_) != 0) {
    throw std::runtime_error("service manifest: append failed");
  }
  manifest_[key] = entry;
}

}  // namespace dexlego::service
