#include "src/service/persistent_store.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/support/bytes.h"
#include "src/support/hash.h"
#include "src/support/log.h"

namespace dexlego::service {

namespace fs = std::filesystem;

namespace {

pipeline::DedupStore::Options base_options(
    const PersistentDedupStore::Options& options) {
  pipeline::DedupStore::Options base;
  base.shards = options.shards;
  base.hash = options.hash;
  return base;
}

uint32_t read_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint64_t read_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

PersistentDedupStore::PersistentDedupStore(std::string dir, Options options)
    : DedupStore(base_options(options)),
      dir_(std::move(dir)),
      fsync_(options.fsync),
      flush_on_close_(options.flush_on_close) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec && !fs::is_directory(dir_)) {
    throw std::runtime_error("persistent store: cannot create directory " +
                             dir_ + ": " + ec.message());
  }

  // Replay every segment present, whatever shard count wrote it: ids are
  // content hashes, so each replayed payload re-interns into whichever
  // memory shard the CURRENT layout maps it to.
  std::array<uint64_t, 256> trusted_sizes{};
  load_index(trusted_sizes);
  for (size_t i = 0; i < 256; ++i) {
    if (fs::exists(segment_path(i))) {
      ++open_stats_.segments;
      replay_segment(i, trusted_sizes[i]);
    }
  }
  // Replay drives the normal intern path, which counts every record as a
  // hit or miss; a reopened store should report only post-open activity.
  reset_intern_counters();

  // Append handles for the current layout's segments (replay — including
  // any torn-tail truncation — happened above, so "append" lands exactly
  // after the last valid record).
  segments_.resize(shard_count(), nullptr);
  segment_mu_ = std::make_unique<std::mutex[]>(shard_count());
  for (size_t s = 0; s < shard_count(); ++s) {
    const std::string path = segment_path(s);
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (!f) {
      throw std::runtime_error("persistent store: cannot open " + path);
    }
    segments_[s] = f;
    if (segment_sizes_[s].load(std::memory_order_relaxed) == 0) {
      support::ByteWriter header;
      header.u32(kSegmentMagic);
      header.u32(kFormatVersion);
      if (std::fwrite(header.data().data(), 1, header.size(), f) !=
              header.size() ||
          std::fflush(f) != 0) {
        throw std::runtime_error("persistent store: cannot write header of " +
                                 path);
      }
      segment_sizes_[s].store(kSegmentHeaderBytes, std::memory_order_relaxed);
    }
  }
  replaying_ = false;
}

PersistentDedupStore::~PersistentDedupStore() {
  if (flush_on_close_) {
    try {
      flush();
    } catch (const std::exception& e) {
      DL_WARN << "persistent store: flush on close failed: " << e.what();
    }
  }
  for (std::FILE* f : segments_) {
    if (f) std::fclose(f);
  }
}

std::string PersistentDedupStore::segment_path(size_t shard) const {
  return dir_ + "/shard-" + std::to_string(shard) + ".log";
}

void PersistentDedupStore::replay_segment(size_t file_index,
                                          uint64_t trusted_size) {
  const std::string path = segment_path(file_index);
  std::vector<uint8_t> data = support::read_file(path);
  // An index claiming more bytes than the file holds means the file lost
  // data behind the index's back — distrust the index for this segment and
  // checksum-validate everything.
  if (trusted_size > data.size()) trusted_size = 0;

  size_t valid = 0;
  uint64_t entries = 0;
  if (data.size() >= kSegmentHeaderBytes &&
      read_u32(data.data()) == kSegmentMagic &&
      read_u32(data.data() + 4) == kFormatVersion) {
    valid = kSegmentHeaderBytes;
    while (valid + kRecordHeaderBytes <= data.size()) {
      const uint8_t* rec = data.data() + valid;
      const uint32_t magic = read_u32(rec);
      const uint32_t len = read_u32(rec + 4);
      if (magic != kRecordMagic || len > kMaxRecordPayload ||
          valid + kRecordHeaderBytes + len > data.size()) {
        break;  // torn or corrupt tail starts here
      }
      const uint64_t checksum = read_u64(rec + 8);
      std::span<const uint8_t> payload(rec + kRecordHeaderBytes, len);
      if (valid + kRecordHeaderBytes + len <= trusted_size) {
        ++open_stats_.trusted_records;
      } else {
        if (support::fnv1a(payload) != checksum) break;
        ++open_stats_.validated_records;
      }
      InternResult result =
          intern(std::vector<uint8_t>(payload.begin(), payload.end()));
      if (result.inserted) {
        ++open_stats_.restored_entries;
        open_stats_.restored_bytes += len;
      }
      ++entries;
      valid += kRecordHeaderBytes + len;
    }
  }
  if (valid < data.size()) {
    open_stats_.truncated_bytes += data.size() - valid;
    ++open_stats_.truncated_records;
    std::error_code ec;
    fs::resize_file(path, valid, ec);
    if (ec) {
      throw std::runtime_error("persistent store: cannot truncate torn tail of " +
                               path + ": " + ec.message());
    }
    DL_WARN << "persistent store: dropped " << (data.size() - valid)
            << " torn tail bytes from " << path;
  }
  segment_sizes_[file_index].store(valid, std::memory_order_relaxed);
  segment_entries_[file_index].store(entries, std::memory_order_relaxed);
}

void PersistentDedupStore::load_index(std::array<uint64_t, 256>& trusted_sizes) {
  trusted_sizes.fill(0);
  const std::string path = dir_ + "/index.bin";
  if (!fs::exists(path)) return;
  try {
    std::vector<uint8_t> data = support::read_file(path);
    if (data.size() < sizeof(uint64_t)) return;
    const size_t body = data.size() - sizeof(uint64_t);
    const uint64_t want =
        support::fnv1a(std::span<const uint8_t>(data.data(), body));
    if (read_u64(data.data() + body) != want) return;
    support::ByteReader r(std::span<const uint8_t>(data.data(), body));
    if (r.u32() != kIndexMagic || r.u32() != kFormatVersion) return;
    const uint64_t generation = r.u64();
    const uint32_t slots = r.u32();
    if (slots > 256) return;
    std::array<uint64_t, 256> sizes{};
    for (uint32_t i = 0; i < slots; ++i) {
      sizes[i] = r.u64();
      (void)r.u64();  // entry count: informational, not needed for trust
    }
    if (!r.at_end()) return;
    trusted_sizes = sizes;
    generation_ = generation;
    open_stats_.index_valid = true;
    open_stats_.generation = generation;
  } catch (const std::exception&) {
    // Unreadable or malformed index: fall back to full checksum validation.
  }
}

void PersistentDedupStore::write_index() {
  support::ByteWriter w;
  w.u32(kIndexMagic);
  w.u32(kFormatVersion);
  w.u64(generation_);
  w.u32(256);
  for (size_t i = 0; i < 256; ++i) {
    w.u64(segment_sizes_[i].load(std::memory_order_relaxed));
    w.u64(segment_entries_[i].load(std::memory_order_relaxed));
  }
  w.u64(support::fnv1a(std::span<const uint8_t>(w.data())));
  const std::string tmp = dir_ + "/index.tmp";
  const std::string path = dir_ + "/index.bin";
  support::write_file(tmp, w.data());
  if (fsync_) {
    if (std::FILE* f = std::fopen(tmp.c_str(), "rb")) {
      ::fsync(fileno(f));
      std::fclose(f);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("persistent store: cannot publish index: " +
                             ec.message());
  }
}

void PersistentDedupStore::flush() {
  for (size_t s = 0; s < segments_.size(); ++s) {
    std::lock_guard<std::mutex> lock(segment_mu_[s]);
    if (std::fflush(segments_[s]) != 0) {
      throw std::runtime_error("persistent store: flush failed for " +
                               segment_path(s));
    }
    if (fsync_) ::fsync(fileno(segments_[s]));
  }
  ++generation_;
  write_index();
}

void PersistentDedupStore::persist(Id id, std::span<const uint8_t> content) {
  if (replaying_) return;  // replay re-interns what the log already holds
  const size_t s = shard_index(id);
  uint8_t header[kRecordHeaderBytes];
  const uint32_t magic = kRecordMagic;
  const uint32_t len = static_cast<uint32_t>(content.size());
  const uint64_t checksum = support::fnv1a(content);
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &len, 4);
  std::memcpy(header + 8, &checksum, 8);

  std::lock_guard<std::mutex> lock(segment_mu_[s]);
  std::FILE* f = segments_[s];
  if (std::fwrite(header, 1, sizeof header, f) != sizeof header ||
      (len != 0 && std::fwrite(content.data(), 1, len, f) != len) ||
      std::fflush(f) != 0) {
    throw std::runtime_error(
        "persistent store: append failed for " + segment_path(s) +
        " (entry not inserted; log tail will be repaired on reopen)");
  }
  if (fsync_) ::fsync(fileno(f));
  segment_sizes_[s].fetch_add(kRecordHeaderBytes + content.size(),
                              std::memory_order_relaxed);
  segment_entries_[s].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace dexlego::service
