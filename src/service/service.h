// Long-running extraction service: lifts pipeline::run_batch's
// one-shot fleet into a submit/poll job API over a persistent store
// (docs/SERVICE.md). Multiple tenants multiplex jobs onto one chunked work
// queue and one PersistentDedupStore, so method bodies extracted for any
// tenant dedup against every other's — and against everything extracted by
// previous incarnations of the service on the same store directory.
//
// The pieces:
//   - async job API: submit(BatchJob) -> JobId, poll/wait/cancel. Workers
//     run pipeline::run_job, the exact per-job path run_batch executes, so
//     service output is byte-identical to a batch run on the same inputs.
//   - per-tenant quotas + failure isolation: a tenant's in-flight job count
//     and byte budget cap what it can queue (breach -> kRejected, nothing
//     enqueued); a job that throws — std:: or not — fails only its own
//     JobId, never the worker or another tenant's jobs.
//   - incremental extraction: completed apps are recorded in a durable
//     manifest keyed by content fingerprint (apk bytes + scenario). A
//     resubmitted identical app is served warm from the manifest + store —
//     byte-identical dex, zero re-extraction — so after an app-store
//     catalog update only the changed apps pay for collection (ARCHITECTURE
//     invariant 14: warm incremental output == cold full output).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/pipeline/batch.h"
#include "src/service/persistent_store.h"

namespace dexlego::service {

using JobId = uint64_t;

enum class JobState {
  kQueued,     // accepted, waiting for a worker
  kRunning,    // claimed by a worker
  kDone,       // finished ok (cold or warm)
  kFailed,     // job-level failure; error says why
  kCancelled,  // dequeued by cancel() before a worker claimed it
  kRejected,   // refused at submit: tenant quota breach
};

const char* job_state_name(JobState state);

// Per-tenant admission budget, enforced at submit over that tenant's jobs
// still queued or running. 0 means unlimited. Bytes are measured as the
// submitted apk's entry payload total — the memory the queue pins.
struct TenantQuota {
  size_t max_in_flight = 0;
  uint64_t max_in_flight_bytes = 0;
};

// Snapshot of one job. `result` is populated once terminal (kDone/kFailed);
// `incremental` marks a warm manifest hit. methods_new/methods_reused split
// the job's method trees by whether the persistent store already held them
// (for a warm hit: everything reused, nothing new).
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string error;
  bool incremental = false;
  uint64_t methods_new = 0;
  uint64_t methods_reused = 0;
  pipeline::JobResult result;
};

struct ServiceOptions {
  size_t threads = 0;       // 0 = one worker per hardware thread
  size_t store_shards = 16; // PersistentDedupStore segment/shard count
  bool keep_dex = true;     // keep revealed dex bytes in JobStatus::result
  bool incremental = true;  // serve manifest hits warm; false = always cold
  TenantQuota default_quota;  // applies to tenants without a set_quota entry
  bool fsync = false;         // fsync store appends (PersistentDedupStore)
};

// Fleet counters since construction (not persisted).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;  // kDone
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t incremental_hits = 0;  // kDone jobs served warm
  uint64_t methods_new = 0;
  uint64_t methods_reused = 0;
};

class ExtractionService {
 public:
  // Opens (creating/replaying as needed) the persistent store and the app
  // manifest under `store_dir`, then starts the worker pool. Throws
  // std::runtime_error when the directory is unusable.
  explicit ExtractionService(std::string store_dir, ServiceOptions options = {});
  // Drains the queue (finishing every accepted job), joins the workers and
  // flushes the store + manifest.
  ~ExtractionService();

  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  // Replaces `tenant`'s quota (otherwise ServiceOptions::default_quota
  // applies). Affects subsequent submits only.
  void set_quota(const std::string& tenant, TenantQuota quota);

  // Enqueues one job for `tenant`. Always returns a JobId — a quota breach
  // yields an id already in state kRejected (poll it for the error), so a
  // misbehaving tenant observes its own rejections without exceptions.
  JobId submit(pipeline::BatchJob job, const std::string& tenant = "default");
  std::vector<JobId> submit_batch(std::vector<pipeline::BatchJob> jobs,
                                  const std::string& tenant = "default");

  // Snapshot of a job's state. Unknown ids return state kRejected with an
  // error instead of throwing.
  JobStatus poll(JobId id) const;
  // Blocks until the job is terminal, then returns its final status.
  JobStatus wait(JobId id);
  // Dequeues a still-queued job. Returns false once a worker has claimed it
  // (running jobs are not interrupted) or if it is already terminal.
  bool cancel(JobId id);

  // Deterministic-scheduling aids for tests: pause() stops workers from
  // claiming NEW jobs (running ones finish), so submissions accumulate in
  // the queue; resume() releases them.
  void pause();
  void resume();
  // Blocks until no job is queued or running.
  void wait_idle();

  // Durability barrier: flushes the store (generation-stamped index) and
  // the manifest, so everything completed so far survives a crash without
  // tail re-validation on the next open.
  void checkpoint();

  ServiceStats stats() const;
  size_t manifest_entries() const;
  PersistentDedupStore& store() { return *store_; }
  const PersistentDedupStore::OpenStats& open_stats() const {
    return store_->open_stats();
  }

 private:
  // One manifest record: what a completed job produced, keyed by the app's
  // content fingerprint. dex_id addresses the revealed dex bytes in the
  // persistent store (interned there BEFORE the manifest record is
  // appended, so a manifest entry never outlives its payload — records
  // whose dex_id does not resolve at load are dropped).
  struct ManifestEntry {
    uint64_t dex_id = 0;
    uint64_t dex_fingerprint = 0;
    uint64_t tree_count = 0;  // JobResult::unique_trees
    uint64_t leaks = 0;
    bool verified = false;
    double instruction_coverage = 0.0;
    double branch_coverage = 0.0;
    uint64_t collection_bytes = 0;
  };

  struct TenantState {
    TenantQuota quota;
    bool quota_set = false;  // false = default_quota applies
    size_t in_flight = 0;
    uint64_t in_flight_bytes = 0;
  };

  struct Record {
    pipeline::BatchJob job;
    JobStatus status;
    uint64_t bytes = 0;  // quota accounting charge
  };

  static uint64_t job_bytes(const pipeline::BatchJob& job);
  static uint64_t cache_key(const pipeline::BatchJob& job);

  void worker_loop();
  void execute(Record& record);
  // Serves a warm result from the manifest if the fingerprint is present and
  // its dex payload resolves in the store; returns false (result untouched)
  // when the app must run cold.
  bool try_warm(const pipeline::BatchJob& job, uint64_t key,
                pipeline::JobResult& result);
  void load_manifest();
  void append_manifest(uint64_t key, const ManifestEntry& entry);
  // Requires mu_ held.
  void release_tenant(const std::string& tenant, uint64_t bytes);

  std::string dir_;
  ServiceOptions options_;
  std::unique_ptr<PersistentDedupStore> store_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::deque<JobId> queue_;
  std::unordered_map<JobId, Record> records_;
  std::unordered_map<std::string, TenantState> tenants_;
  ServiceStats stats_;
  JobId next_id_ = 1;
  size_t running_ = 0;
  bool paused_ = false;
  bool stopping_ = false;

  mutable std::mutex manifest_mu_;
  std::unordered_map<uint64_t, ManifestEntry> manifest_;
  std::FILE* manifest_file_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace dexlego::service
