// Durable content-addressed store backing the extraction service
// (docs/SERVICE.md): a pipeline::DedupStore whose miss path writes through
// to an append-only log segment per shard before the entry becomes visible
// in memory (write-ahead ordering, via DedupStore::persist). Reopening a
// store directory replays the logs into memory, so method bodies persisted
// by one process incarnation dedup against everything a later incarnation
// interns — the substrate that makes incremental re-extraction of updated
// apps cheap.
//
// On-disk layout (<dir>/):
//   shard-<i>.log  append-only segments: an 8-byte header, then records of
//                  [magic u32][payload_len u32][fnv1a(payload) u64][payload].
//                  Records are only ever appended; a torn tail (crash mid-
//                  append) is detected by checksum/bounds validation on
//                  reopen and truncated away.
//   index.bin      generation-stamped snapshot of per-segment sizes and
//                  entry counts, rewritten atomically (tmp + rename) on
//                  every flush(). On reopen a valid index lets replay trust
//                  the indexed prefix of each segment (skip checksum
//                  verification) and validate only the tail appended since
//                  the last flush; a missing/corrupt index — or a segment
//                  shorter than the index claims — falls back to validating
//                  that whole segment. Either way the in-memory index is
//                  rebuilt from the logs, never from index.bin alone.
//
// Crash contract: every entry visible in memory was appended to its log
// first, so losing the process loses at most buffered tail records — never
// an entry another component observed and then depended on *after a
// flush()*. The extraction service orders its own durable writes on top of
// this (revealed-DEX bytes intern before the app manifest records them).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/pipeline/dedup_store.h"

namespace dexlego::service {

class PersistentDedupStore : public pipeline::DedupStore {
 public:
  // Segment format constants, exposed so the crash-recovery tests can
  // compute record boundaries instead of guessing offsets.
  static constexpr size_t kSegmentHeaderBytes = 8;   // magic + version
  static constexpr size_t kRecordHeaderBytes = 16;   // magic + len + checksum
  static constexpr uint32_t kSegmentMagic = 0x474F4C44;  // "DLOG"
  static constexpr uint32_t kRecordMagic = 0x43455244;   // "DREC"
  static constexpr uint32_t kIndexMagic = 0x58444944;    // "DIDX"
  static constexpr uint32_t kFormatVersion = 1;
  // A single method tree beyond this is a corruption artifact, not data.
  static constexpr uint32_t kMaxRecordPayload = 1u << 30;

  struct Options {
    // Shard count for BOTH the in-memory store and the log segments (one
    // segment per memory shard, so persist() runs under the shard lock that
    // already serializes it). A directory written with a different shard
    // count reopens fine: replay reads every shard-*.log present.
    size_t shards = 16;
    pipeline::DedupStore::HashFn hash;
    // fsync(2) each appended record (and the index on flush). Default off:
    // the crash model is process death, which loses only libc buffers we
    // fflush eagerly anyway; power-loss durability costs an fsync per miss.
    bool fsync = false;
    // Write the generation-stamped index on destruction. Tests set this
    // false to simulate a crash (no clean shutdown, index left stale).
    bool flush_on_close = true;
  };

  // What reopen found. `restored_entries` counts unique contents replayed
  // into memory; `trusted_records` rode the index fast path,
  // `validated_records` had their checksums verified (tail appended after
  // the last flush, or everything when the index was missing/stale);
  // `truncated_bytes`/`truncated_records` measure the torn tail dropped.
  struct OpenStats {
    bool index_valid = false;
    uint64_t generation = 0;  // of the loaded index; 0 when none
    size_t segments = 0;
    size_t restored_entries = 0;
    uint64_t restored_bytes = 0;
    size_t trusted_records = 0;
    size_t validated_records = 0;
    size_t truncated_records = 0;
    uint64_t truncated_bytes = 0;
  };

  // Opens (creating if needed) the store at `dir` and replays its logs.
  // Throws std::runtime_error when the directory cannot be created or a
  // segment cannot be opened for append.
  explicit PersistentDedupStore(std::string dir)
      : PersistentDedupStore(std::move(dir), Options{}) {}
  PersistentDedupStore(std::string dir, Options options);
  ~PersistentDedupStore() override;

  const OpenStats& open_stats() const { return open_stats_; }
  const std::string& dir() const { return dir_; }
  uint64_t generation() const { return generation_; }

  // Flushes every segment (fsync when configured) and atomically rewrites
  // the generation-stamped index. Safe to call while other threads intern:
  // records appended concurrently simply land past the indexed prefix and
  // get tail-validated on the next reopen.
  void flush();

 protected:
  // DedupStore write-ahead hook: append the record to the shard's segment
  // (fflush, optional fsync) before the in-memory insert. Runs under the
  // shard's exclusive lock; throws on I/O failure, which aborts the intern
  // and fails only the calling job.
  void persist(Id id, std::span<const uint8_t> content) override;

 private:
  std::string segment_path(size_t shard) const;
  void replay_segment(size_t file_index, uint64_t trusted_size);
  void load_index(std::array<uint64_t, 256>& trusted_sizes);
  void write_index();

  std::string dir_;
  bool fsync_ = false;
  bool flush_on_close_ = true;
  bool replaying_ = true;  // suppress persist() during constructor replay
  uint64_t generation_ = 0;
  OpenStats open_stats_;

  // One append handle + mutex per CURRENT shard. The mutex is technically
  // redundant (persist runs under the memory shard's exclusive lock, and
  // segment i maps to memory shard i) but keeps the file handle's safety
  // independent of that invariant; it is never contended.
  std::vector<std::FILE*> segments_;
  std::unique_ptr<std::mutex[]> segment_mu_;
  // Sizes/counts per segment FILE INDEX (0..255 — legacy segments from a
  // different shard count keep their slots so the index can keep trusting
  // them). Atomics: flush() snapshots them while interns append.
  std::array<std::atomic<uint64_t>, 256> segment_sizes_{};
  std::array<std::atomic<uint64_t>, 256> segment_entries_{};
};

}  // namespace dexlego::service
