#include "src/dex/io.h"

#include <cstring>

#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::dex {

using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

namespace {

// Hostile counts: a count field may not promise more elements than the
// remaining bytes can possibly encode (the ByteReader::need subtraction
// pattern lifted to element counts). Checking *before* vector::reserve keeps
// count bombs from turning into bad_alloc/OOM instead of a clean ParseError
// — found by the structural fuzzer (tests/data/fuzz/).
void check_count(const ByteReader& r, uint64_t n, size_t min_elem_bytes,
                 const char* what) {
  if (n > r.remaining() / min_elem_bytes) {
    throw ParseError(std::string("implausible ") + what + " count");
  }
}

void write_encoded_value(ByteWriter& w, const EncodedValue& v) {
  w.u8(static_cast<uint8_t>(v.kind));
  w.i64(v.i);
  w.u32(v.string_idx);
}

EncodedValue read_encoded_value(ByteReader& r) {
  EncodedValue v;
  uint8_t kind = r.u8();
  if (kind > 2) throw ParseError("bad encoded value kind");
  v.kind = static_cast<EncodedValue::Kind>(kind);
  v.i = r.i64();
  v.string_idx = r.u32();
  return v;
}

void write_code_item(ByteWriter& w, const CodeItem& code) {
  w.u16(code.registers_size);
  w.u16(code.ins_size);
  w.u32(static_cast<uint32_t>(code.insns.size()));
  for (uint16_t unit : code.insns) w.u16(unit);
  w.u32(static_cast<uint32_t>(code.tries.size()));
  for (const TryItem& t : code.tries) {
    w.u16(t.start_pc);
    w.u16(t.end_pc);
    w.u16(t.handler_pc);
  }
  w.u32(static_cast<uint32_t>(code.lines.size()));
  for (const LineEntry& e : code.lines) {
    w.u16(e.pc);
    w.u32(e.line);
  }
}

CodeItem read_code_item(ByteReader& r) {
  CodeItem code;
  code.registers_size = r.u16();
  code.ins_size = r.u16();
  uint32_t n_insns = r.u32();
  check_count(r, n_insns, 2, "insns");
  code.insns.reserve(n_insns);
  for (uint32_t i = 0; i < n_insns; ++i) code.insns.push_back(r.u16());
  uint32_t n_tries = r.u32();
  check_count(r, n_tries, 6, "tries");
  for (uint32_t i = 0; i < n_tries; ++i) {
    TryItem t;
    t.start_pc = r.u16();
    t.end_pc = r.u16();
    t.handler_pc = r.u16();
    code.tries.push_back(t);
  }
  uint32_t n_lines = r.u32();
  check_count(r, n_lines, 6, "lines");
  for (uint32_t i = 0; i < n_lines; ++i) {
    LineEntry e;
    e.pc = r.u16();
    e.line = r.u32();
    code.lines.push_back(e);
  }
  return code;
}

void write_field_def(ByteWriter& w, const FieldDef& f) {
  w.u32(f.field_ref);
  w.u32(f.access_flags);
  w.u8(f.static_init ? 1 : 0);
  if (f.static_init) write_encoded_value(w, *f.static_init);
}

FieldDef read_field_def(ByteReader& r) {
  FieldDef f;
  f.field_ref = r.u32();
  f.access_flags = r.u32();
  if (r.u8()) f.static_init = read_encoded_value(r);
  return f;
}

void write_method_def(ByteWriter& w, const MethodDef& m) {
  w.u32(m.method_ref);
  w.u32(m.access_flags);
  w.u8(m.code ? 1 : 0);
  if (m.code) write_code_item(w, *m.code);
}

MethodDef read_method_def(ByteReader& r) {
  MethodDef m;
  m.method_ref = r.u32();
  m.access_flags = r.u32();
  if (r.u8()) m.code = read_code_item(r);
  return m;
}

}  // namespace

std::vector<uint8_t> write_dex(const DexFile& file) {
  // Body first so the header can carry its checksum.
  ByteWriter body;
  body.u32(static_cast<uint32_t>(file.strings.size()));
  body.u32(static_cast<uint32_t>(file.types.size()));
  body.u32(static_cast<uint32_t>(file.protos.size()));
  body.u32(static_cast<uint32_t>(file.fields.size()));
  body.u32(static_cast<uint32_t>(file.methods.size()));
  body.u32(static_cast<uint32_t>(file.classes.size()));

  for (const std::string& s : file.strings) body.str(s);
  for (uint32_t t : file.types) body.u32(t);
  for (const Proto& p : file.protos) {
    body.u32(p.return_type);
    body.u32(static_cast<uint32_t>(p.param_types.size()));
    for (uint32_t param : p.param_types) body.u32(param);
  }
  for (const FieldRef& f : file.fields) {
    body.u32(f.class_type);
    body.u32(f.type);
    body.u32(f.name);
  }
  for (const MethodRef& m : file.methods) {
    body.u32(m.class_type);
    body.u32(m.proto);
    body.u32(m.name);
  }
  for (const ClassDef& cls : file.classes) {
    body.u32(cls.type_idx);
    body.u32(cls.super_type_idx);
    body.u32(cls.access_flags);
    body.u32(static_cast<uint32_t>(cls.static_fields.size()));
    for (const FieldDef& f : cls.static_fields) write_field_def(body, f);
    body.u32(static_cast<uint32_t>(cls.instance_fields.size()));
    for (const FieldDef& f : cls.instance_fields) write_field_def(body, f);
    body.u32(static_cast<uint32_t>(cls.direct_methods.size()));
    for (const MethodDef& m : cls.direct_methods) write_method_def(body, m);
    body.u32(static_cast<uint32_t>(cls.virtual_methods.size()));
    for (const MethodDef& m : cls.virtual_methods) write_method_def(body, m);
  }

  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(support::adler32(body.data()));
  out.u32(static_cast<uint32_t>(sizeof(kMagic) + 8 + body.size()));
  out.bytes(body.data());
  return out.take();
}

DexFile read_dex(std::span<const uint8_t> data) {
  ByteReader r(data);
  auto magic = r.bytes(sizeof(kMagic));
  if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("bad LDEX magic");
  }
  uint32_t checksum = r.u32();
  uint32_t file_size = r.u32();
  if (file_size != data.size()) throw ParseError("LDEX size mismatch");
  if (support::adler32(data.subspan(sizeof(kMagic) + 8)) != checksum) {
    throw ParseError("LDEX checksum mismatch");
  }

  DexFile file;
  uint32_t n_strings = r.u32();
  uint32_t n_types = r.u32();
  uint32_t n_protos = r.u32();
  uint32_t n_fields = r.u32();
  uint32_t n_methods = r.u32();
  uint32_t n_classes = r.u32();

  // Minimal encoded sizes per element; a count promising more than the
  // remaining bytes could hold is hostile, not merely truncated.
  check_count(r, n_strings, 4, "string");
  check_count(r, n_types, 4, "type");
  check_count(r, n_protos, 8, "proto");
  check_count(r, n_fields, 12, "field");
  check_count(r, n_methods, 12, "method");
  check_count(r, n_classes, 28, "class");

  file.strings.reserve(n_strings);
  for (uint32_t i = 0; i < n_strings; ++i) file.strings.push_back(r.str());
  file.types.reserve(n_types);
  for (uint32_t i = 0; i < n_types; ++i) file.types.push_back(r.u32());
  file.protos.reserve(n_protos);
  for (uint32_t i = 0; i < n_protos; ++i) {
    Proto p;
    p.return_type = r.u32();
    uint32_t n_params = r.u32();
    check_count(r, n_params, 4, "proto param");
    p.param_types.reserve(n_params);
    for (uint32_t j = 0; j < n_params; ++j) p.param_types.push_back(r.u32());
    file.protos.push_back(std::move(p));
  }
  file.fields.reserve(n_fields);
  for (uint32_t i = 0; i < n_fields; ++i) {
    FieldRef f;
    f.class_type = r.u32();
    f.type = r.u32();
    f.name = r.u32();
    file.fields.push_back(f);
  }
  file.methods.reserve(n_methods);
  for (uint32_t i = 0; i < n_methods; ++i) {
    MethodRef m;
    m.class_type = r.u32();
    m.proto = r.u32();
    m.name = r.u32();
    file.methods.push_back(m);
  }
  file.classes.reserve(n_classes);
  for (uint32_t i = 0; i < n_classes; ++i) {
    ClassDef cls;
    cls.type_idx = r.u32();
    cls.super_type_idx = r.u32();
    cls.access_flags = r.u32();
    uint32_t n = r.u32();
    for (uint32_t j = 0; j < n; ++j) cls.static_fields.push_back(read_field_def(r));
    n = r.u32();
    for (uint32_t j = 0; j < n; ++j) cls.instance_fields.push_back(read_field_def(r));
    n = r.u32();
    for (uint32_t j = 0; j < n; ++j) cls.direct_methods.push_back(read_method_def(r));
    n = r.u32();
    for (uint32_t j = 0; j < n; ++j) cls.virtual_methods.push_back(read_method_def(r));
    file.classes.push_back(std::move(cls));
  }
  if (!r.at_end()) throw ParseError("trailing bytes after LDEX payload");
  return file;
}

}  // namespace dexlego::dex
