// DexBuilder — interning front-end for constructing DexFile models. All
// sample programs, the synthetic app generators and DexLego's reassembler
// build their output through this class, so pool deduplication and index
// stability live in exactly one place.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/dex/dex.h"

namespace dexlego::dex {

class DexBuilder {
 public:
  DexBuilder();

  // --- pool interning (returns a stable pool index) ---
  uint32_t intern_string(std::string_view s);
  uint32_t intern_type(std::string_view descriptor);
  uint32_t intern_proto(std::string_view return_type,
                        const std::vector<std::string>& param_types);
  uint32_t intern_field(std::string_view class_descriptor,
                        std::string_view type_descriptor, std::string_view name);
  uint32_t intern_method(std::string_view class_descriptor, std::string_view name,
                         std::string_view return_type,
                         const std::vector<std::string>& param_types);

  // --- class construction ---
  // Starts a class; returns its index into classes(). Descriptor form
  // "Lcom/pkg/Name;". Super defaults to the framework Object analog.
  size_t start_class(std::string_view descriptor,
                     std::string_view super_descriptor = "Ljava/lang/Object;",
                     uint32_t access_flags = kAccPublic);

  // All add_* calls target the most recently started class.
  void add_static_field(std::string_view name, std::string_view type,
                        std::optional<EncodedValue> init = std::nullopt,
                        uint32_t access_flags = kAccPublic | kAccStatic);
  void add_instance_field(std::string_view name, std::string_view type,
                          uint32_t access_flags = kAccPublic);
  // Direct = static / private / constructor. Returns the method pool index.
  uint32_t add_direct_method(std::string_view name, std::string_view return_type,
                             const std::vector<std::string>& params, CodeItem code,
                             uint32_t access_flags = kAccPublic | kAccStatic);
  uint32_t add_virtual_method(std::string_view name, std::string_view return_type,
                              const std::vector<std::string>& params, CodeItem code,
                              uint32_t access_flags = kAccPublic);
  // Native method: no code item, dispatched through the runtime native bridge.
  uint32_t add_native_method(std::string_view name, std::string_view return_type,
                             const std::vector<std::string>& params,
                             uint32_t access_flags = kAccPublic | kAccNative);

  // Convenience for static string/int initializers.
  EncodedValue string_value(std::string_view s);
  static EncodedValue int_value(int64_t v);
  static EncodedValue null_value();

  const DexFile& file() const { return file_; }
  DexFile build() &&;

 private:
  ClassDef& current_class();

  DexFile file_;
  std::map<std::string, uint32_t, std::less<>> string_map_;
  std::map<uint32_t, uint32_t> type_map_;  // string idx -> type idx
  std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint32_t> proto_map_;
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint32_t> field_map_;
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint32_t> method_map_;
};

}  // namespace dexlego::dex
