#include "src/dex/archive.h"

#include <cstring>
#include <sstream>

#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::dex {

using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

namespace {
constexpr char kApkMagic[4] = {'L', 'A', 'P', 'K'};
}

std::string Manifest::serialize() const {
  std::ostringstream os;
  os << "package=" << package << "\n";
  os << "entry_class=" << entry_class << "\n";
  os << "version=" << version << "\n";
  for (const std::string& p : permissions) os << "permission=" << p << "\n";
  return os.str();
}

Manifest Manifest::parse(std::span<const uint8_t> data) {
  Manifest m;
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data.data()), data.size()));
  std::string line;
  while (std::getline(is, line)) {
    auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    if (key == "package") m.package = value;
    else if (key == "entry_class") m.entry_class = value;
    else if (key == "version") m.version = value;
    else if (key == "permission") m.permissions.push_back(value);
  }
  return m;
}

void Apk::set_manifest(const Manifest& manifest) {
  std::string text = manifest.serialize();
  set_entry(kManifestEntry, std::vector<uint8_t>(text.begin(), text.end()));
}

Manifest Apk::manifest() const { return Manifest::parse(entry(kManifestEntry)); }

void Apk::set_entry(const std::string& name, std::vector<uint8_t> data) {
  entries_[name] = std::move(data);
}

bool Apk::has_entry(const std::string& name) const { return entries_.count(name) > 0; }

const std::vector<uint8_t>& Apk::entry(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw std::out_of_range("no apk entry: " + name);
  return it->second;
}

void Apk::remove_entry(const std::string& name) { entries_.erase(name); }

std::vector<std::string> Apk::entry_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, _] : entries_) names.push_back(name);
  return names;
}

std::vector<uint8_t> Apk::write() const {
  ByteWriter w;
  w.raw(kApkMagic, sizeof(kApkMagic));
  w.u32(static_cast<uint32_t>(entries_.size()));
  support::Fnv1a combined;
  for (const auto& [name, data] : entries_) {
    w.str(name);
    w.u32(static_cast<uint32_t>(data.size()));
    w.bytes(data);
    combined.add(support::fnv1a(data));
  }
  w.u64(combined.digest());
  return w.take();
}

Apk Apk::read(std::span<const uint8_t> data) {
  ByteReader r(data);
  auto magic = r.bytes(sizeof(kApkMagic));
  if (std::memcmp(magic.data(), kApkMagic, sizeof(kApkMagic)) != 0) {
    throw ParseError("bad LAPK magic");
  }
  Apk apk;
  uint32_t count = r.u32();
  // Each entry needs at least its two length prefixes plus the trailing
  // digest; a larger count is hostile (the dex::io check_count pattern).
  if (count > r.remaining() / 8) {
    throw ParseError("implausible LAPK entry count");
  }
  support::Fnv1a combined;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.str();
    uint32_t size = r.u32();
    auto blob = r.bytes(size);
    combined.add(support::fnv1a(blob));
    apk.entries_.emplace(std::move(name), std::move(blob));
  }
  if (r.u64() != combined.digest()) throw ParseError("LAPK digest mismatch");
  if (!r.at_end()) throw ParseError("trailing bytes after LAPK payload");
  return apk;
}

}  // namespace dexlego::dex
