// In-memory model of an LDEX file — the DEX-like executable format used by
// the whole reproduction. Mirrors the real Dalvik Executable layout at the
// level DexLego cares about: constant pools indexed by instructions, class
// definitions that own field/method definitions, and exactly one 16-bit
// instruction array per method (the constraint that makes reassembling
// self-modifying code non-trivial, Section IV-B of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dexlego::dex {

inline constexpr uint32_t kNoIndex = 0xffffffffu;

// Method prototype: return type + parameter types (type pool indices).
struct Proto {
  uint32_t return_type = 0;
  std::vector<uint32_t> param_types;

  bool operator==(const Proto&) const = default;
};

// Reference pools. Instructions address fields/methods through these,
// exactly like field_ids / method_ids in real DEX.
struct FieldRef {
  uint32_t class_type = 0;  // type pool index of declaring class
  uint32_t type = 0;        // type pool index of field type
  uint32_t name = 0;        // string pool index

  bool operator==(const FieldRef&) const = default;
};

struct MethodRef {
  uint32_t class_type = 0;  // type pool index of declaring class
  uint32_t proto = 0;       // proto pool index
  uint32_t name = 0;        // string pool index

  bool operator==(const MethodRef&) const = default;
};

// Exception table entry (catch-all handlers only; enough for the paper's
// force-execution exception-tolerance machinery and try/catch samples).
struct TryItem {
  uint16_t start_pc = 0;   // first covered code unit
  uint16_t end_pc = 0;     // one past last covered code unit
  uint16_t handler_pc = 0; // handler entry
};

// Source-line table entry (JaCoCo-style line coverage needs this).
struct LineEntry {
  uint16_t pc = 0;
  uint32_t line = 0;
};

struct CodeItem {
  uint16_t registers_size = 0;  // total registers in the frame
  uint16_t ins_size = 0;        // trailing registers holding arguments
  std::vector<uint16_t> insns;  // the single instruction array
  std::vector<TryItem> tries;
  std::vector<LineEntry> lines;
};

// Access flags, a subset of real DEX access_flags values.
enum AccessFlags : uint32_t {
  kAccPublic = 0x0001,
  kAccPrivate = 0x0002,
  kAccStatic = 0x0008,
  kAccNative = 0x0100,
  kAccAbstract = 0x0400,
  kAccConstructor = 0x10000,
  kAccSynthetic = 0x1000,
};

// Static field initializer (encoded_value analog).
struct EncodedValue {
  enum class Kind : uint8_t { kInt = 0, kString = 1, kNull = 2 };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  uint32_t string_idx = 0;
};

struct FieldDef {
  uint32_t field_ref = 0;  // field pool index
  uint32_t access_flags = kAccPublic;
  std::optional<EncodedValue> static_init;  // static fields only
};

struct MethodDef {
  uint32_t method_ref = 0;  // method pool index
  uint32_t access_flags = kAccPublic;
  std::optional<CodeItem> code;  // absent for native/abstract methods
};

struct ClassDef {
  uint32_t type_idx = 0;                 // type pool index of this class
  uint32_t super_type_idx = kNoIndex;    // kNoIndex for root classes
  uint32_t access_flags = kAccPublic;
  std::vector<FieldDef> static_fields;
  std::vector<FieldDef> instance_fields;
  std::vector<MethodDef> direct_methods;   // static / private / constructors
  std::vector<MethodDef> virtual_methods;
};

// A complete LDEX file.
struct DexFile {
  std::vector<std::string> strings;
  std::vector<uint32_t> types;  // type descriptor as string pool index
  std::vector<Proto> protos;
  std::vector<FieldRef> fields;
  std::vector<MethodRef> methods;
  std::vector<ClassDef> classes;

  // --- convenience accessors (bounds-checked, throw std::out_of_range) ---
  const std::string& string_at(uint32_t idx) const { return strings.at(idx); }
  const std::string& type_descriptor(uint32_t type_idx) const {
    return strings.at(types.at(type_idx));
  }
  const std::string& field_name(uint32_t field_idx) const {
    return strings.at(fields.at(field_idx).name);
  }
  const std::string& method_name(uint32_t method_idx) const {
    return strings.at(methods.at(method_idx).name);
  }
  // Declaring-class descriptor of a method/field reference.
  const std::string& method_class(uint32_t method_idx) const {
    return type_descriptor(methods.at(method_idx).class_type);
  }
  const std::string& field_class(uint32_t field_idx) const {
    return type_descriptor(fields.at(field_idx).class_type);
  }

  // Human-readable signature "Lcom/Foo;->bar(II)V" for diagnostics.
  std::string pretty_method(uint32_t method_idx) const;
  std::string pretty_field(uint32_t field_idx) const;
  // "(II)V"-style descriptor of a proto.
  std::string proto_shorty(uint32_t proto_idx) const;

  // Find a class definition by descriptor; nullptr if absent.
  const ClassDef* find_class(std::string_view descriptor) const;
  ClassDef* find_class(std::string_view descriptor);

  // Find the method pool index for class+name (first match); kNoIndex if absent.
  uint32_t find_method_ref(std::string_view class_descriptor,
                           std::string_view name) const;

  // Total instruction count (decoded, not code units) across all code items —
  // the "# of Instructions" metric in Tables I and VI. Counted in code units
  // of real instructions (payloads excluded) via the bytecode walker.
  size_t total_code_units() const;
};

}  // namespace dexlego::dex
