#include "src/dex/builder.h"

#include <stdexcept>

namespace dexlego::dex {

DexBuilder::DexBuilder() {
  // Index 0 conventions keep generated files readable in hexdumps: the empty
  // string and the Object descriptor always exist.
  intern_string("");
  intern_type("Ljava/lang/Object;");
}

uint32_t DexBuilder::intern_string(std::string_view s) {
  auto it = string_map_.find(s);
  if (it != string_map_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(file_.strings.size());
  file_.strings.emplace_back(s);
  string_map_.emplace(std::string(s), idx);
  return idx;
}

uint32_t DexBuilder::intern_type(std::string_view descriptor) {
  uint32_t str_idx = intern_string(descriptor);
  auto it = type_map_.find(str_idx);
  if (it != type_map_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(file_.types.size());
  file_.types.push_back(str_idx);
  type_map_.emplace(str_idx, idx);
  return idx;
}

uint32_t DexBuilder::intern_proto(std::string_view return_type,
                                  const std::vector<std::string>& param_types) {
  Proto proto;
  proto.return_type = intern_type(return_type);
  proto.param_types.reserve(param_types.size());
  for (const std::string& p : param_types) proto.param_types.push_back(intern_type(p));
  auto key = std::make_pair(proto.return_type, proto.param_types);
  auto it = proto_map_.find(key);
  if (it != proto_map_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(file_.protos.size());
  file_.protos.push_back(std::move(proto));
  proto_map_.emplace(std::move(key), idx);
  return idx;
}

uint32_t DexBuilder::intern_field(std::string_view class_descriptor,
                                  std::string_view type_descriptor,
                                  std::string_view name) {
  FieldRef ref;
  ref.class_type = intern_type(class_descriptor);
  ref.type = intern_type(type_descriptor);
  ref.name = intern_string(name);
  auto key = std::make_tuple(ref.class_type, ref.type, ref.name);
  auto it = field_map_.find(key);
  if (it != field_map_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(file_.fields.size());
  file_.fields.push_back(ref);
  field_map_.emplace(key, idx);
  return idx;
}

uint32_t DexBuilder::intern_method(std::string_view class_descriptor,
                                   std::string_view name,
                                   std::string_view return_type,
                                   const std::vector<std::string>& param_types) {
  MethodRef ref;
  ref.class_type = intern_type(class_descriptor);
  ref.proto = intern_proto(return_type, param_types);
  ref.name = intern_string(name);
  auto key = std::make_tuple(ref.class_type, ref.proto, ref.name);
  auto it = method_map_.find(key);
  if (it != method_map_.end()) return it->second;
  uint32_t idx = static_cast<uint32_t>(file_.methods.size());
  file_.methods.push_back(ref);
  method_map_.emplace(key, idx);
  return idx;
}

size_t DexBuilder::start_class(std::string_view descriptor,
                               std::string_view super_descriptor,
                               uint32_t access_flags) {
  ClassDef cls;
  cls.type_idx = intern_type(descriptor);
  cls.super_type_idx = super_descriptor.empty() ? kNoIndex : intern_type(super_descriptor);
  cls.access_flags = access_flags;
  file_.classes.push_back(std::move(cls));
  return file_.classes.size() - 1;
}

ClassDef& DexBuilder::current_class() {
  if (file_.classes.empty()) throw std::logic_error("no class started");
  return file_.classes.back();
}

void DexBuilder::add_static_field(std::string_view name, std::string_view type,
                                  std::optional<EncodedValue> init,
                                  uint32_t access_flags) {
  ClassDef& cls = current_class();
  FieldDef def;
  def.field_ref = intern_field(file_.type_descriptor(cls.type_idx), type, name);
  def.access_flags = access_flags | kAccStatic;
  def.static_init = std::move(init);
  cls.static_fields.push_back(std::move(def));
}

void DexBuilder::add_instance_field(std::string_view name, std::string_view type,
                                    uint32_t access_flags) {
  ClassDef& cls = current_class();
  FieldDef def;
  def.field_ref = intern_field(file_.type_descriptor(cls.type_idx), type, name);
  def.access_flags = access_flags;
  cls.instance_fields.push_back(std::move(def));
}

uint32_t DexBuilder::add_direct_method(std::string_view name,
                                       std::string_view return_type,
                                       const std::vector<std::string>& params,
                                       CodeItem code, uint32_t access_flags) {
  ClassDef& cls = current_class();
  MethodDef def;
  def.method_ref =
      intern_method(file_.type_descriptor(cls.type_idx), name, return_type, params);
  def.access_flags = access_flags;
  def.code = std::move(code);
  cls.direct_methods.push_back(std::move(def));
  return cls.direct_methods.back().method_ref;
}

uint32_t DexBuilder::add_virtual_method(std::string_view name,
                                        std::string_view return_type,
                                        const std::vector<std::string>& params,
                                        CodeItem code, uint32_t access_flags) {
  ClassDef& cls = current_class();
  MethodDef def;
  def.method_ref =
      intern_method(file_.type_descriptor(cls.type_idx), name, return_type, params);
  def.access_flags = access_flags;
  def.code = std::move(code);
  cls.virtual_methods.push_back(std::move(def));
  return cls.virtual_methods.back().method_ref;
}

uint32_t DexBuilder::add_native_method(std::string_view name,
                                       std::string_view return_type,
                                       const std::vector<std::string>& params,
                                       uint32_t access_flags) {
  ClassDef& cls = current_class();
  MethodDef def;
  def.method_ref =
      intern_method(file_.type_descriptor(cls.type_idx), name, return_type, params);
  def.access_flags = access_flags | kAccNative;
  cls.virtual_methods.push_back(std::move(def));
  return cls.virtual_methods.back().method_ref;
}

EncodedValue DexBuilder::string_value(std::string_view s) {
  EncodedValue v;
  v.kind = EncodedValue::Kind::kString;
  v.string_idx = intern_string(s);
  return v;
}

EncodedValue DexBuilder::int_value(int64_t i) {
  EncodedValue v;
  v.kind = EncodedValue::Kind::kInt;
  v.i = i;
  return v;
}

EncodedValue DexBuilder::null_value() {
  EncodedValue v;
  v.kind = EncodedValue::Kind::kNull;
  return v;
}

DexFile DexBuilder::build() && { return std::move(file_); }

}  // namespace dexlego::dex
