#include "src/dex/dex.h"

#include <stdexcept>

namespace dexlego::dex {

namespace {
// Compact one-letter form of a type for shorty strings.
char shorty_char(const std::string& descriptor) {
  if (descriptor.empty()) return '?';
  switch (descriptor[0]) {
    case 'V': return 'V';
    case 'I': return 'I';
    case 'Z': return 'Z';
    case 'J': return 'J';
    case 'L': return 'L';
    case '[': return '[';
    default: return '?';
  }
}
}  // namespace

std::string DexFile::pretty_method(uint32_t method_idx) const {
  const MethodRef& ref = methods.at(method_idx);
  return type_descriptor(ref.class_type) + "->" + strings.at(ref.name) +
         proto_shorty(ref.proto);
}

std::string DexFile::pretty_field(uint32_t field_idx) const {
  const FieldRef& ref = fields.at(field_idx);
  return type_descriptor(ref.class_type) + "->" + strings.at(ref.name) + ":" +
         type_descriptor(ref.type);
}

std::string DexFile::proto_shorty(uint32_t proto_idx) const {
  const Proto& proto = protos.at(proto_idx);
  std::string out = "(";
  for (uint32_t p : proto.param_types) out += shorty_char(type_descriptor(p));
  out += ")";
  out += shorty_char(type_descriptor(proto.return_type));
  return out;
}

const ClassDef* DexFile::find_class(std::string_view descriptor) const {
  for (const ClassDef& cls : classes) {
    if (type_descriptor(cls.type_idx) == descriptor) return &cls;
  }
  return nullptr;
}

ClassDef* DexFile::find_class(std::string_view descriptor) {
  return const_cast<ClassDef*>(
      static_cast<const DexFile*>(this)->find_class(descriptor));
}

uint32_t DexFile::find_method_ref(std::string_view class_descriptor,
                                  std::string_view name) const {
  for (uint32_t i = 0; i < methods.size(); ++i) {
    const MethodRef& ref = methods[i];
    if (strings.at(ref.name) == name &&
        type_descriptor(ref.class_type) == class_descriptor) {
      return i;
    }
  }
  return kNoIndex;
}

size_t DexFile::total_code_units() const {
  size_t total = 0;
  for (const ClassDef& cls : classes) {
    for (const auto* methods_vec : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const MethodDef& m : *methods_vec) {
        if (m.code) total += m.code->insns.size();
      }
    }
  }
  return total;
}

}  // namespace dexlego::dex
