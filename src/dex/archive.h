// .lapk — the APK-like container: a manifest, one or more LDEX files and
// opaque asset blobs (where packers hide the encrypted original DEX).
//
// Binary layout: magic "LAPK" + u32 entry count, then per entry
// name (length-prefixed) + blob (length-prefixed), then u32 adler32 of all
// entry payloads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dexlego::dex {

// Parsed manifest (stored as the "manifest" entry in key=value lines).
struct Manifest {
  std::string package;       // e.g. "com.example.app"
  std::string entry_class;   // descriptor of the launcher activity
  std::string version;       // display version
  std::vector<std::string> permissions;

  std::string serialize() const;
  static Manifest parse(std::span<const uint8_t> data);
};

class Apk {
 public:
  static constexpr const char* kClassesEntry = "classes.ldex";
  static constexpr const char* kManifestEntry = "manifest";

  void set_manifest(const Manifest& manifest);
  Manifest manifest() const;

  void set_entry(const std::string& name, std::vector<uint8_t> data);
  bool has_entry(const std::string& name) const;
  const std::vector<uint8_t>& entry(const std::string& name) const;
  void remove_entry(const std::string& name);
  std::vector<std::string> entry_names() const;

  // Convenience: primary DEX payload.
  void set_classes(std::vector<uint8_t> dex_bytes) {
    set_entry(kClassesEntry, std::move(dex_bytes));
  }
  const std::vector<uint8_t>& classes() const { return entry(kClassesEntry); }

  std::vector<uint8_t> write() const;
  static Apk read(std::span<const uint8_t> data);

 private:
  std::map<std::string, std::vector<uint8_t>> entries_;
};

}  // namespace dexlego::dex
