// Structural verifier for LDEX files: every pool index in bounds, descriptors
// well formed, class invariants (no duplicate type defs, supers resolvable or
// framework-external, static-init kinds matching). Instruction-level checks
// (opcode validity, branch targets, frame sizes) live in
// src/bytecode/verify_code.h because they need the opcode table.
#pragma once

#include <string>
#include <vector>

#include "src/dex/dex.h"

namespace dexlego::dex {

struct VerifyResult {
  std::vector<std::string> errors;
  bool ok() const { return errors.empty(); }
  // All errors joined with newlines (for diagnostics).
  std::string message() const;
};

VerifyResult verify_structure(const DexFile& file);

}  // namespace dexlego::dex
