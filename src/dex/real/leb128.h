// LEB128 codecs for the real Android DEX format (dex\n magic): uleb128,
// sleb128 and uleb128p1 exactly as the Dalvik Executable spec defines them.
// Readers are hardened against length bombs — the format caps every value at
// 32 bits, so a fifth continuation byte is hostile input and raises a clean
// support::ParseError instead of silently wrapping (the leb128 analog of the
// LDEX reader's check_count discipline).
#pragma once

#include <cstdint>

#include "src/support/bytes.h"

namespace dexlego::dex::real {

// Reads an unsigned LEB128 (at most 5 bytes / 32 bits of payload).
inline uint32_t read_uleb128(support::ByteReader& r) {
  uint32_t value = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    uint8_t byte = r.u8();
    // The fifth byte may only carry the top 4 bits of a 32-bit value.
    if (shift == 28 && (byte & 0xf0) != 0) {
      throw support::ParseError("uleb128 overflows 32 bits");
    }
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  throw support::ParseError("uleb128 longer than 5 bytes");
}

// Reads a signed LEB128 (at most 5 bytes / 32 bits of payload).
inline int32_t read_sleb128(support::ByteReader& r) {
  uint32_t value = 0;
  int shift = 0;
  for (; shift < 35; shift += 7) {
    uint8_t byte = r.u8();
    if (shift == 28 && (byte & 0xf0) != 0 && (byte & 0xf0) != 0x70) {
      throw support::ParseError("sleb128 overflows 32 bits");
    }
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      shift += 7;
      // Sign-extend from the last payload bit.
      if (shift < 32 && (byte & 0x40) != 0) {
        value |= ~0u << shift;
      }
      return static_cast<int32_t>(value);
    }
  }
  throw support::ParseError("sleb128 longer than 5 bytes");
}

// uleb128p1: value + 1 as uleb128, so -1 (NO_INDEX in debug info) encodes
// as 0.
inline int32_t read_uleb128p1(support::ByteReader& r) {
  return static_cast<int32_t>(read_uleb128(r)) - 1;
}

inline void write_uleb128(support::ByteWriter& w, uint32_t value) {
  while (value >= 0x80) {
    w.u8(static_cast<uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  w.u8(static_cast<uint8_t>(value));
}

inline void write_sleb128(support::ByteWriter& w, int32_t value) {
  bool more = true;
  while (more) {
    uint8_t byte = static_cast<uint8_t>(value & 0x7f);
    value >>= 7;  // arithmetic shift: sign-fills from the top
    more = !((value == 0 && (byte & 0x40) == 0) ||
             (value == -1 && (byte & 0x40) != 0));
    if (more) byte |= 0x80;
    w.u8(byte);
  }
}

inline void write_uleb128p1(support::ByteWriter& w, int32_t value) {
  write_uleb128(w, static_cast<uint32_t>(value + 1));
}

// Encoded size in bytes of a value, for section-size precomputation.
inline size_t uleb128_size(uint32_t value) {
  size_t n = 1;
  while (value >= 0x80) {
    ++n;
    value >>= 7;
  }
  return n;
}

}  // namespace dexlego::dex::real
