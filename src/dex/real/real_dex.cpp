#include "src/dex/real/real_dex.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "src/bytecode/dalvik_map.h"
#include "src/bytecode/insn.h"
#include "src/dex/io.h"
#include "src/dex/real/leb128.h"
#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::dex {

using real::read_sleb128;
using real::read_uleb128;
using real::read_uleb128p1;
using real::uleb128_size;
using real::write_sleb128;
using real::write_uleb128;
using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

namespace {

constexpr uint32_t kHeaderSize = 0x70;
constexpr uint32_t kEndianTag = 0x12345678;

// map_list item type codes (Dalvik Executable spec, map_item.type).
constexpr uint16_t kMapHeader = 0x0000;
constexpr uint16_t kMapStringId = 0x0001;
constexpr uint16_t kMapTypeId = 0x0002;
constexpr uint16_t kMapProtoId = 0x0003;
constexpr uint16_t kMapFieldId = 0x0004;
constexpr uint16_t kMapMethodId = 0x0005;
constexpr uint16_t kMapClassDef = 0x0006;
constexpr uint16_t kMapMapList = 0x1000;
constexpr uint16_t kMapTypeList = 0x1001;
constexpr uint16_t kMapCodeItem = 0x2001;
constexpr uint16_t kMapStringData = 0x2002;
constexpr uint16_t kMapDebugInfo = 0x2003;
constexpr uint16_t kMapClassData = 0x2000;
constexpr uint16_t kMapEncodedArray = 0x2005;

// debug_info_item state-machine opcodes (subset the emitter produces; the
// parser accepts the full AOSP set, skipping local-variable bookkeeping).
constexpr uint8_t kDbgEndSequence = 0x00;
constexpr uint8_t kDbgAdvancePc = 0x01;
constexpr uint8_t kDbgAdvanceLine = 0x02;
constexpr uint8_t kDbgStartLocal = 0x03;
constexpr uint8_t kDbgStartLocalExtended = 0x04;
constexpr uint8_t kDbgEndLocal = 0x05;
constexpr uint8_t kDbgRestartLocal = 0x06;
constexpr uint8_t kDbgSetPrologueEnd = 0x07;
constexpr uint8_t kDbgSetEpilogueBegin = 0x08;
constexpr uint8_t kDbgSetFile = 0x09;
constexpr uint8_t kDbgFirstSpecial = 0x0a;
constexpr int kDbgLineBase = -4;
constexpr int kDbgLineRange = 15;

// encoded_value type codes.
constexpr uint8_t kValueByte = 0x00;
constexpr uint8_t kValueShort = 0x02;
constexpr uint8_t kValueInt = 0x04;
constexpr uint8_t kValueLong = 0x06;
constexpr uint8_t kValueString = 0x17;
constexpr uint8_t kValueNull = 0x1e;
constexpr uint8_t kValueBoolean = 0x1f;

// The check_count discipline from src/dex/io.cpp: a count field may not
// promise more elements than the remaining bytes can possibly encode.
void check_count(const ByteReader& r, uint64_t n, size_t min_elem_bytes,
                 const char* what) {
  if (n > r.remaining() / min_elem_bytes) {
    throw ParseError(std::string("implausible ") + what + " count");
  }
}

uint32_t mapped(const std::vector<uint32_t>& table, uint32_t idx,
                const char* what) {
  if (idx >= table.size()) {
    throw ParseError(std::string(what) + " index out of range");
  }
  return table[idx];
}

// ---------------------------------------------------------------------------
// Index remapping (shared by emit-time canonicalization and multidex merge).
// ---------------------------------------------------------------------------

struct Remap {
  std::vector<uint32_t> strings, types, protos, fields, methods;
};

// Rewrites pool-index operands in an instruction stream through `m`. Only
// instructions that carry a pool reference are re-encoded; everything else
// (including switch payloads, whose targets the Insn struct does not carry)
// is copied verbatim, so the rewrite is byte-stable for unaffected units.
std::vector<uint16_t> remap_code(std::span<const uint16_t> units,
                                 const Remap& m) {
  std::vector<uint16_t> out;
  out.reserve(units.size());
  size_t pc = 0;
  while (pc < units.size()) {
    bc::Insn insn = bc::decode_at(units, pc);
    size_t n = bc::consumed_units(insn);
    bc::RefKind ref = bc::op_info(insn.op).ref;
    if (ref == bc::RefKind::kNone) {
      out.insert(out.end(), units.begin() + static_cast<ptrdiff_t>(pc),
                 units.begin() + static_cast<ptrdiff_t>(pc + n));
    } else {
      const std::vector<uint32_t>* table = nullptr;
      switch (ref) {
        case bc::RefKind::kString: table = &m.strings; break;
        case bc::RefKind::kType: table = &m.types; break;
        case bc::RefKind::kField: table = &m.fields; break;
        case bc::RefKind::kMethod: table = &m.methods; break;
        case bc::RefKind::kNone: break;
      }
      uint32_t idx = mapped(*table, insn.idx, "instruction pool");
      if (idx > 0xffff) {
        throw ParseError("remapped pool index exceeds 16 bits");
      }
      insn.idx = static_cast<uint16_t>(idx);
      bc::encode_to(insn, out);
    }
    pc += n;
  }
  return out;
}

void remap_class(ClassDef& cls, const Remap& m) {
  cls.type_idx = mapped(m.types, cls.type_idx, "class type");
  if (cls.super_type_idx != kNoIndex) {
    cls.super_type_idx = mapped(m.types, cls.super_type_idx, "superclass type");
  }
  auto remap_fields = [&](std::vector<FieldDef>& fields) {
    for (FieldDef& f : fields) {
      f.field_ref = mapped(m.fields, f.field_ref, "field");
      if (f.static_init && f.static_init->kind == EncodedValue::Kind::kString) {
        f.static_init->string_idx =
            mapped(m.strings, f.static_init->string_idx, "static value string");
      }
    }
  };
  remap_fields(cls.static_fields);
  remap_fields(cls.instance_fields);
  auto remap_methods = [&](std::vector<MethodDef>& methods) {
    for (MethodDef& mth : methods) {
      mth.method_ref = mapped(m.methods, mth.method_ref, "method");
      if (mth.code) mth.code->insns = remap_code(mth.code->insns, m);
    }
  };
  remap_methods(cls.direct_methods);
  remap_methods(cls.virtual_methods);
}

// ---------------------------------------------------------------------------
// Shorty computation.
// ---------------------------------------------------------------------------

char shorty_char(const std::string& descriptor) {
  if (descriptor.empty()) throw ParseError("empty type descriptor");
  char c = descriptor[0];
  if (c == 'L' || c == '[') return 'L';
  if (std::string_view("VZBSCIJFD").find(c) != std::string_view::npos) return c;
  throw ParseError("unrecognized type descriptor");
}

std::string shorty_of(const DexFile& f, const Proto& p) {
  auto desc = [&](uint32_t type_idx) -> const std::string& {
    if (type_idx >= f.types.size()) throw ParseError("type index out of range");
    uint32_t s = f.types[type_idx];
    if (s >= f.strings.size()) throw ParseError("type descriptor out of range");
    return f.strings[s];
  };
  std::string shorty(1, shorty_char(desc(p.return_type)));
  for (uint32_t t : p.param_types) shorty.push_back(shorty_char(desc(t)));
  return shorty;
}

// ---------------------------------------------------------------------------
// Canonicalization: the model, rewritten with sorted deduplicated pools and
// shorty strings interned — the form real DEX requires and the form that
// makes emit -> parse -> emit byte-identical (sorting is idempotent).
// ---------------------------------------------------------------------------

bool proto_less(const Proto& a, const Proto& b) {
  if (a.return_type != b.return_type) return a.return_type < b.return_type;
  return a.param_types < b.param_types;
}

DexFile canonicalize(const DexFile& in) {
  DexFile out;

  // Strings: everything the input carries plus the shorty of every proto.
  std::vector<std::string> strings = in.strings;
  for (const Proto& p : in.protos) strings.push_back(shorty_of(in, p));
  std::sort(strings.begin(), strings.end());
  strings.erase(std::unique(strings.begin(), strings.end()), strings.end());
  auto string_idx = [&](const std::string& s) {
    auto it = std::lower_bound(strings.begin(), strings.end(), s);
    return static_cast<uint32_t>(it - strings.begin());
  };

  Remap m;
  m.strings.reserve(in.strings.size());
  for (const std::string& s : in.strings) m.strings.push_back(string_idx(s));

  // Types: sorted by descriptor (string order == string index order now).
  std::vector<uint32_t> type_strings;
  type_strings.reserve(in.types.size());
  for (uint32_t t : in.types) {
    type_strings.push_back(mapped(m.strings, t, "type descriptor"));
  }
  std::vector<uint32_t> types = type_strings;
  std::sort(types.begin(), types.end());
  types.erase(std::unique(types.begin(), types.end()), types.end());
  m.types.reserve(in.types.size());
  for (uint32_t s : type_strings) {
    auto it = std::lower_bound(types.begin(), types.end(), s);
    m.types.push_back(static_cast<uint32_t>(it - types.begin()));
  }

  // Protos: remapped, then sorted by (return type, parameter list).
  std::vector<Proto> remapped_protos;
  remapped_protos.reserve(in.protos.size());
  for (const Proto& p : in.protos) {
    Proto q;
    q.return_type = mapped(m.types, p.return_type, "proto return type");
    q.param_types.reserve(p.param_types.size());
    for (uint32_t t : p.param_types) {
      q.param_types.push_back(mapped(m.types, t, "proto parameter type"));
    }
    remapped_protos.push_back(std::move(q));
  }
  std::vector<Proto> protos = remapped_protos;
  std::sort(protos.begin(), protos.end(), proto_less);
  protos.erase(std::unique(protos.begin(), protos.end()), protos.end());
  m.protos.reserve(in.protos.size());
  for (const Proto& p : remapped_protos) {
    auto it = std::lower_bound(protos.begin(), protos.end(), p, proto_less);
    m.protos.push_back(static_cast<uint32_t>(it - protos.begin()));
  }

  // Fields: sorted by (declaring class, name, type) — the real DEX order.
  using FieldKey = std::tuple<uint32_t, uint32_t, uint32_t>;
  std::vector<FieldKey> remapped_fields;
  remapped_fields.reserve(in.fields.size());
  for (const FieldRef& f : in.fields) {
    remapped_fields.emplace_back(mapped(m.types, f.class_type, "field class"),
                                 mapped(m.strings, f.name, "field name"),
                                 mapped(m.types, f.type, "field type"));
  }
  std::vector<FieldKey> fields = remapped_fields;
  std::sort(fields.begin(), fields.end());
  fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
  m.fields.reserve(in.fields.size());
  for (const FieldKey& k : remapped_fields) {
    auto it = std::lower_bound(fields.begin(), fields.end(), k);
    m.fields.push_back(static_cast<uint32_t>(it - fields.begin()));
  }

  // Methods: sorted by (declaring class, name, proto).
  using MethodKey = std::tuple<uint32_t, uint32_t, uint32_t>;
  std::vector<MethodKey> remapped_methods;
  remapped_methods.reserve(in.methods.size());
  for (const MethodRef& mr : in.methods) {
    remapped_methods.emplace_back(mapped(m.types, mr.class_type, "method class"),
                                  mapped(m.strings, mr.name, "method name"),
                                  mapped(m.protos, mr.proto, "method proto"));
  }
  std::vector<MethodKey> methods = remapped_methods;
  std::sort(methods.begin(), methods.end());
  methods.erase(std::unique(methods.begin(), methods.end()), methods.end());
  m.methods.reserve(in.methods.size());
  for (const MethodKey& k : remapped_methods) {
    auto it = std::lower_bound(methods.begin(), methods.end(), k);
    m.methods.push_back(static_cast<uint32_t>(it - methods.begin()));
  }

  out.strings = std::move(strings);
  out.types = std::move(types);
  out.protos = std::move(protos);
  out.fields.reserve(fields.size());
  for (const auto& [cls, name, type] : fields) {
    out.fields.push_back(FieldRef{cls, type, name});
  }
  out.methods.reserve(methods.size());
  for (const auto& [cls, name, proto] : methods) {
    out.methods.push_back(MethodRef{cls, proto, name});
  }

  out.classes = in.classes;
  for (ClassDef& cls : out.classes) {
    remap_class(cls, m);
    // class_data requires member lists sorted by ascending pool index.
    auto by_field = [](const FieldDef& a, const FieldDef& b) {
      return a.field_ref < b.field_ref;
    };
    auto by_method = [](const MethodDef& a, const MethodDef& b) {
      return a.method_ref < b.method_ref;
    };
    std::stable_sort(cls.static_fields.begin(), cls.static_fields.end(), by_field);
    std::stable_sort(cls.instance_fields.begin(), cls.instance_fields.end(), by_field);
    std::stable_sort(cls.direct_methods.begin(), cls.direct_methods.end(), by_method);
    std::stable_sort(cls.virtual_methods.begin(), cls.virtual_methods.end(), by_method);
    auto sort_lines = [](std::vector<MethodDef>& methods_list) {
      for (MethodDef& mth : methods_list) {
        if (!mth.code) continue;
        std::stable_sort(mth.code->lines.begin(), mth.code->lines.end(),
                         [](const LineEntry& a, const LineEntry& b) {
                           return a.pc < b.pc;
                         });
      }
    };
    sort_lines(cls.direct_methods);
    sort_lines(cls.virtual_methods);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MUTF-8 string data.
// ---------------------------------------------------------------------------

// UTF-16 unit count as real DEX defines it for string_data headers: one unit
// per non-continuation byte of the stored MUTF-8 (NUL stored as 0xC0 0x80
// counts once). Emitter and parser use the same rule, so the header always
// validates on round trip.
uint32_t mutf8_units(std::string_view utf8) {
  uint32_t units = 0;
  for (unsigned char b : utf8) {
    if (b == 0x00 || (b & 0xc0) != 0x80) ++units;
  }
  return units;
}

void write_string_data(ByteWriter& w, const std::string& s) {
  write_uleb128(w, mutf8_units(s));
  for (unsigned char b : s) {
    if (b == 0x00) {
      w.u8(0xc0);
      w.u8(0x80);
    } else {
      w.u8(b);
    }
  }
  w.u8(0x00);
}

std::string read_string_data(ByteReader& r) {
  uint32_t utf16 = read_uleb128(r);
  check_count(r, utf16, 1, "string utf16");
  std::string s;
  uint32_t units = 0;
  for (;;) {
    uint8_t b = r.u8();
    if (b == 0x00) break;
    if ((b & 0xc0) != 0x80) ++units;
    if (b == 0xc0) {
      uint8_t b2 = r.u8();
      if (b2 != 0x80) throw ParseError("bad MUTF-8 escape in string data");
      s.push_back('\0');
    } else {
      s.push_back(static_cast<char>(b));
    }
  }
  if (units != utf16) throw ParseError("string utf16 length mismatch");
  return s;
}

// ---------------------------------------------------------------------------
// Debug info (source line table <-> AOSP debug_info_item state machine).
// ---------------------------------------------------------------------------

void write_debug_info(ByteWriter& w, const std::vector<LineEntry>& lines) {
  write_uleb128(w, lines.front().line);  // line_start
  write_uleb128(w, 0);                   // parameters_size
  uint32_t addr = 0;
  uint32_t line = lines.front().line;
  for (const LineEntry& e : lines) {
    if (e.pc < addr) throw ParseError("line table not sorted by pc");
    uint32_t addr_diff = e.pc - addr;
    int64_t line_diff = static_cast<int64_t>(e.line) - line;
    if (line_diff < kDbgLineBase || line_diff >= kDbgLineBase + kDbgLineRange) {
      if (line_diff < INT32_MIN || line_diff > INT32_MAX) {
        throw ParseError("line delta overflows debug info");
      }
      w.u8(kDbgAdvanceLine);
      write_sleb128(w, static_cast<int32_t>(line_diff));
      line_diff = 0;
    }
    int64_t adjusted =
        (line_diff - kDbgLineBase) + static_cast<int64_t>(addr_diff) * kDbgLineRange;
    if (kDbgFirstSpecial + adjusted > 0xff) {
      w.u8(kDbgAdvancePc);
      write_uleb128(w, addr_diff);
      adjusted = line_diff - kDbgLineBase;
    }
    w.u8(static_cast<uint8_t>(kDbgFirstSpecial + adjusted));
    addr = e.pc;
    line = e.line;
  }
  w.u8(kDbgEndSequence);
}

std::vector<LineEntry> read_debug_info(ByteReader& r, size_t insns_units) {
  int64_t line = read_uleb128(r);
  uint32_t params = read_uleb128(r);
  check_count(r, params, 1, "debug parameter");
  for (uint32_t i = 0; i < params; ++i) read_uleb128p1(r);
  uint64_t addr = 0;
  std::vector<LineEntry> lines;
  for (;;) {
    uint8_t op = r.u8();
    if (op == kDbgEndSequence) break;
    switch (op) {
      case kDbgAdvancePc:
        addr += read_uleb128(r);
        break;
      case kDbgAdvanceLine:
        line += read_sleb128(r);
        break;
      case kDbgStartLocal:
        read_uleb128(r);
        read_uleb128p1(r);
        read_uleb128p1(r);
        break;
      case kDbgStartLocalExtended:
        read_uleb128(r);
        read_uleb128p1(r);
        read_uleb128p1(r);
        read_uleb128p1(r);
        break;
      case kDbgEndLocal:
      case kDbgRestartLocal:
        read_uleb128(r);
        break;
      case kDbgSetPrologueEnd:
      case kDbgSetEpilogueBegin:
        break;
      case kDbgSetFile:
        read_uleb128p1(r);
        break;
      default: {
        int adjusted = op - kDbgFirstSpecial;
        line += kDbgLineBase + (adjusted % kDbgLineRange);
        addr += static_cast<uint64_t>(adjusted) / kDbgLineRange;
        if (addr >= insns_units || addr > 0xffff) {
          throw ParseError("debug position outside the code item");
        }
        if (line < 0 || line > 0xffffffffll) {
          throw ParseError("debug line out of range");
        }
        lines.push_back(LineEntry{static_cast<uint16_t>(addr),
                                  static_cast<uint32_t>(line)});
        break;
      }
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Encoded values.
// ---------------------------------------------------------------------------

size_t signed_value_bytes(int64_t v) {
  size_t n = 1;
  while (n < 8) {
    int64_t trunc = (v << (64 - 8 * n)) >> (64 - 8 * n);  // sign-extend low n bytes
    if (trunc == v) break;
    ++n;
  }
  return n;
}

size_t unsigned_value_bytes(uint32_t v) {
  size_t n = 1;
  while (n < 4 && (v >> (8 * n)) != 0) ++n;
  return n;
}

void write_encoded_value(ByteWriter& w, const EncodedValue& v) {
  switch (v.kind) {
    case EncodedValue::Kind::kNull:
      w.u8(kValueNull);
      return;
    case EncodedValue::Kind::kString: {
      size_t n = unsigned_value_bytes(v.string_idx);
      w.u8(static_cast<uint8_t>(kValueString | ((n - 1) << 5)));
      for (size_t i = 0; i < n; ++i) {
        w.u8(static_cast<uint8_t>(v.string_idx >> (8 * i)));
      }
      return;
    }
    case EncodedValue::Kind::kInt: {
      size_t n = signed_value_bytes(v.i);
      uint8_t type;
      if (n <= 1) {
        type = kValueByte;
        n = 1;
      } else if (n <= 2) {
        type = kValueShort;
      } else if (n <= 4) {
        type = kValueInt;
      } else {
        type = kValueLong;
      }
      w.u8(static_cast<uint8_t>(type | ((n - 1) << 5)));
      for (size_t i = 0; i < n; ++i) {
        w.u8(static_cast<uint8_t>(static_cast<uint64_t>(v.i) >> (8 * i)));
      }
      return;
    }
  }
  throw ParseError("bad encoded value kind");
}

EncodedValue read_encoded_value(ByteReader& r, size_t n_strings) {
  uint8_t head = r.u8();
  uint8_t type = head & 0x1f;
  uint8_t arg = head >> 5;
  auto read_bytes = [&](size_t n) {
    uint64_t raw = 0;
    for (size_t i = 0; i < n; ++i) {
      raw |= static_cast<uint64_t>(r.u8()) << (8 * i);
    }
    return raw;
  };
  auto sign_extend = [](uint64_t raw, size_t n) {
    int64_t v = static_cast<int64_t>(raw << (64 - 8 * n));
    return v >> (64 - 8 * n);
  };
  EncodedValue v;
  switch (type) {
    case kValueByte:
    case kValueShort:
    case kValueInt:
    case kValueLong: {
      size_t max_bytes = type == kValueByte  ? 1
                         : type == kValueShort ? 2
                         : type == kValueInt   ? 4
                                               : 8;
      size_t n = static_cast<size_t>(arg) + 1;
      if (n > max_bytes) throw ParseError("oversized encoded integer value");
      v.kind = EncodedValue::Kind::kInt;
      v.i = sign_extend(read_bytes(n), n);
      return v;
    }
    case kValueString: {
      size_t n = static_cast<size_t>(arg) + 1;
      if (n > 4) throw ParseError("oversized encoded string index");
      uint64_t idx = read_bytes(n);
      if (idx >= n_strings) throw ParseError("encoded string index out of range");
      v.kind = EncodedValue::Kind::kString;
      v.string_idx = static_cast<uint32_t>(idx);
      return v;
    }
    case kValueNull:
      if (arg != 0) throw ParseError("bad encoded null");
      v.kind = EncodedValue::Kind::kNull;
      return v;
    case kValueBoolean:
      if (arg > 1) throw ParseError("bad encoded boolean");
      v.kind = EncodedValue::Kind::kInt;
      v.i = arg;
      return v;
    default:
      throw ParseError("unsupported encoded value type");
  }
}

// ---------------------------------------------------------------------------
// Code items.
// ---------------------------------------------------------------------------

uint16_t compute_outs(std::span<const uint16_t> units) {
  uint16_t outs = 0;
  size_t pc = 0;
  while (pc < units.size()) {
    bc::Insn insn = bc::decode_at(units, pc);
    if (bc::is_invoke(insn.op)) outs = std::max<uint16_t>(outs, insn.a);
    pc += bc::consumed_units(insn);
  }
  return outs;
}

void write_code_item(ByteWriter& w, const CodeItem& code, uint32_t debug_off) {
  if (code.insns.size() > 0xffff) {
    throw ParseError("code item longer than 65535 units");
  }
  if (code.tries.size() > 0xffff) throw ParseError("too many try items");
  w.u16(code.registers_size);
  w.u16(code.ins_size);
  w.u16(compute_outs(code.insns));
  w.u16(static_cast<uint16_t>(code.tries.size()));
  w.u32(debug_off);
  w.u32(static_cast<uint32_t>(code.insns.size()));
  std::vector<uint16_t> dalvik = bc::transcode_to_dalvik(code.insns);
  for (uint16_t unit : dalvik) w.u16(unit);
  if (code.tries.empty()) return;
  if (code.insns.size() % 2 != 0) w.u16(0);  // 4-byte alignment padding
  // encoded_catch_handler_list: one catch-all entry per try, offsets measured
  // from the start of the list (after all try_items).
  std::vector<uint32_t> handler_offs;
  uint32_t off = static_cast<uint32_t>(
      uleb128_size(static_cast<uint32_t>(code.tries.size())));
  for (const TryItem& t : code.tries) {
    handler_offs.push_back(off);
    off += 1 /* sleb128(0) */ +
           static_cast<uint32_t>(uleb128_size(t.handler_pc));
  }
  for (size_t i = 0; i < code.tries.size(); ++i) {
    const TryItem& t = code.tries[i];
    if (t.end_pc < t.start_pc) throw ParseError("inverted try range");
    if (handler_offs[i] > 0xffff) throw ParseError("handler offset overflow");
    w.u32(t.start_pc);
    w.u16(static_cast<uint16_t>(t.end_pc - t.start_pc));
    w.u16(static_cast<uint16_t>(handler_offs[i]));
  }
  write_uleb128(w, static_cast<uint32_t>(code.tries.size()));
  for (const TryItem& t : code.tries) {
    write_sleb128(w, 0);  // catch-all only
    write_uleb128(w, t.handler_pc);
  }
}

CodeItem read_code_item(std::span<const uint8_t> data, uint32_t off) {
  ByteReader r(data);
  r.seek(off);
  CodeItem code;
  code.registers_size = r.u16();
  code.ins_size = r.u16();
  r.u16();  // outs_size: recomputed at emit
  uint16_t tries_size = r.u16();
  uint32_t debug_off = r.u32();
  uint32_t insns_size = r.u32();
  if (code.ins_size > code.registers_size) {
    throw ParseError("ins exceed registers in code item");
  }
  if (insns_size > 0xffff) throw ParseError("code longer than 65535 units");
  check_count(r, insns_size, 2, "insns");
  std::vector<uint16_t> dalvik;
  dalvik.reserve(insns_size);
  for (uint32_t i = 0; i < insns_size; ++i) dalvik.push_back(r.u16());
  code.insns = bc::transcode_from_dalvik(dalvik);
  if (tries_size > 0) {
    if (insns_size % 2 != 0) r.u16();  // alignment padding
    check_count(r, tries_size, 8, "tries");
    struct RawTry {
      uint32_t start;
      uint16_t count;
      uint16_t handler_off;
    };
    std::vector<RawTry> raw;
    raw.reserve(tries_size);
    for (uint16_t i = 0; i < tries_size; ++i) {
      RawTry t{r.u32(), r.u16(), r.u16()};
      if (t.start > 0xffff ||
          t.start + static_cast<uint32_t>(t.count) > insns_size) {
        throw ParseError("try range outside the code item");
      }
      raw.push_back(t);
    }
    size_t handlers_start = r.pos();
    {
      uint32_t list_size = read_uleb128(r);
      check_count(r, list_size, 2, "catch handler");
    }
    for (const RawTry& t : raw) {
      ByteReader hr(data);
      hr.seek(handlers_start + t.handler_off);
      int32_t size = read_sleb128(hr);
      if (size != 0) {
        throw ParseError("typed catch handlers unsupported (catch-all only)");
      }
      uint32_t handler = read_uleb128(hr);
      if (handler >= insns_size) {
        throw ParseError("catch handler outside the code item");
      }
      TryItem item;
      item.start_pc = static_cast<uint16_t>(t.start);
      item.end_pc = static_cast<uint16_t>(t.start + t.count);
      item.handler_pc = static_cast<uint16_t>(handler);
      code.tries.push_back(item);
    }
  }
  if (debug_off != 0) {
    if (debug_off < kHeaderSize || debug_off >= data.size()) {
      throw ParseError("debug info offset outside the file");
    }
    ByteReader dr(data);
    dr.seek(debug_off);
    code.lines = read_debug_info(dr, insns_size);
  }
  return code;
}

// ---------------------------------------------------------------------------
// Interner: content-addressed pool merge (multidex ingestion).
// ---------------------------------------------------------------------------

struct Interner {
  DexFile& out;
  std::map<std::string, uint32_t> strings;
  std::map<uint32_t, uint32_t> types;  // descriptor string idx -> type idx
  std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint32_t> protos;
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint32_t> fields;
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, uint32_t> methods;

  explicit Interner(DexFile& o) : out(o) {}

  uint32_t string(const std::string& s) {
    auto [it, fresh] =
        strings.try_emplace(s, static_cast<uint32_t>(out.strings.size()));
    if (fresh) out.strings.push_back(s);
    return it->second;
  }
  uint32_t type(uint32_t string_idx) {
    auto [it, fresh] =
        types.try_emplace(string_idx, static_cast<uint32_t>(out.types.size()));
    if (fresh) out.types.push_back(string_idx);
    return it->second;
  }
  uint32_t proto(Proto p) {
    auto key = std::make_pair(p.return_type, p.param_types);
    auto [it, fresh] =
        protos.try_emplace(key, static_cast<uint32_t>(out.protos.size()));
    if (fresh) out.protos.push_back(std::move(p));
    return it->second;
  }
  uint32_t field(const FieldRef& f) {
    auto key = std::make_tuple(f.class_type, f.type, f.name);
    auto [it, fresh] =
        fields.try_emplace(key, static_cast<uint32_t>(out.fields.size()));
    if (fresh) out.fields.push_back(f);
    return it->second;
  }
  uint32_t method(const MethodRef& mr) {
    auto key = std::make_tuple(mr.class_type, mr.proto, mr.name);
    auto [it, fresh] =
        methods.try_emplace(key, static_cast<uint32_t>(out.methods.size()));
    if (fresh) out.methods.push_back(mr);
    return it->second;
  }
};

void merge_into(Interner& interner, const DexFile& src) {
  Remap m;
  m.strings.reserve(src.strings.size());
  for (const std::string& s : src.strings) m.strings.push_back(interner.string(s));
  m.types.reserve(src.types.size());
  for (uint32_t t : src.types) {
    m.types.push_back(interner.type(mapped(m.strings, t, "type descriptor")));
  }
  m.protos.reserve(src.protos.size());
  for (const Proto& p : src.protos) {
    Proto q;
    q.return_type = mapped(m.types, p.return_type, "proto return type");
    for (uint32_t t : p.param_types) {
      q.param_types.push_back(mapped(m.types, t, "proto parameter type"));
    }
    m.protos.push_back(interner.proto(std::move(q)));
  }
  m.fields.reserve(src.fields.size());
  for (const FieldRef& f : src.fields) {
    FieldRef g;
    g.class_type = mapped(m.types, f.class_type, "field class");
    g.type = mapped(m.types, f.type, "field type");
    g.name = mapped(m.strings, f.name, "field name");
    m.fields.push_back(interner.field(g));
  }
  m.methods.reserve(src.methods.size());
  for (const MethodRef& mr : src.methods) {
    MethodRef n;
    n.class_type = mapped(m.types, mr.class_type, "method class");
    n.proto = mapped(m.protos, mr.proto, "method proto");
    n.name = mapped(m.strings, mr.name, "method name");
    m.methods.push_back(interner.method(n));
  }
  for (const ClassDef& cls : src.classes) {
    ClassDef copy = cls;
    remap_class(copy, m);
    interner.out.classes.push_back(std::move(copy));
  }
}

bool parse_real_entry_index(std::string_view name, size_t* index) {
  if (name == "classes.dex") {
    *index = 0;
    return true;
  }
  constexpr std::string_view kPrefix = "classes";
  constexpr std::string_view kSuffix = ".dex";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  size_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<size_t>(c - '0');
    if (n > 4096) return false;  // nobody ships four thousand dex parts
  }
  if (n < 2) return false;  // "classes1.dex" / "classes0.dex" are not a thing
  *index = n - 1;
  return true;
}

}  // namespace

bool is_real_dex(std::span<const uint8_t> data) {
  return data.size() >= sizeof(kRealDexMagic) &&
         std::memcmp(data.data(), kRealDexMagic, sizeof(kRealDexMagic)) == 0;
}

bool is_ldex(std::span<const uint8_t> data) {
  return data.size() >= sizeof(kMagic) &&
         std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0;
}

std::vector<uint8_t> emit_real(const DexFile& file) {
  DexFile f = canonicalize(file);
  if (f.types.size() > 0xffff) {
    throw ParseError("type pool exceeds the real DEX 16-bit limit");
  }
  if (f.protos.size() > 0xffff) {
    throw ParseError("proto pool exceeds the real DEX 16-bit limit");
  }

  const size_t S = f.strings.size(), T = f.types.size(), P = f.protos.size();
  const size_t F = f.fields.size(), M = f.methods.size(), C = f.classes.size();
  const uint32_t string_ids_off = kHeaderSize;
  const uint32_t type_ids_off = static_cast<uint32_t>(string_ids_off + 4 * S);
  const uint32_t proto_ids_off = static_cast<uint32_t>(type_ids_off + 4 * T);
  const uint32_t field_ids_off = static_cast<uint32_t>(proto_ids_off + 12 * P);
  const uint32_t method_ids_off = static_cast<uint32_t>(field_ids_off + 8 * F);
  const uint32_t class_defs_off = static_cast<uint32_t>(method_ids_off + 8 * M);
  const uint32_t data_start = static_cast<uint32_t>(class_defs_off + 32 * C);

  ByteWriter data;
  auto off_of = [&] { return data_start + static_cast<uint32_t>(data.size()); };

  struct Section {
    uint32_t count = 0;
    uint32_t first = 0;
    void record(uint32_t off) {
      if (count == 0) first = off;
      ++count;
    }
  };
  Section sec_type_lists, sec_debug, sec_code, sec_class_data, sec_arrays,
      sec_string_data;

  // (a) type_lists for proto parameter lists, deduplicated by content.
  std::map<std::vector<uint32_t>, uint32_t> type_list_off;
  for (const Proto& p : f.protos) {
    if (p.param_types.empty() || type_list_off.count(p.param_types)) continue;
    data.align(4);
    uint32_t off = off_of();
    sec_type_lists.record(off);
    type_list_off[p.param_types] = off;
    data.u32(static_cast<uint32_t>(p.param_types.size()));
    for (uint32_t t : p.param_types) data.u16(static_cast<uint16_t>(t));
  }

  auto each_code = [&](auto&& fn) {
    for (ClassDef& cls : f.classes) {
      for (MethodDef& mth : cls.direct_methods) {
        if (mth.code) fn(*mth.code);
      }
      for (MethodDef& mth : cls.virtual_methods) {
        if (mth.code) fn(*mth.code);
      }
    }
  };

  // (b) debug_info items (only methods with line tables).
  std::map<const CodeItem*, uint32_t> debug_offs;
  each_code([&](const CodeItem& code) {
    if (code.lines.empty()) return;
    uint32_t off = off_of();
    sec_debug.record(off);
    debug_offs[&code] = off;
    write_debug_info(data, code.lines);
  });

  // (c) code items (4-aligned).
  std::map<const CodeItem*, uint32_t> code_offs;
  each_code([&](const CodeItem& code) {
    data.align(4);
    uint32_t off = off_of();
    sec_code.record(off);
    code_offs[&code] = off;
    auto it = debug_offs.find(&code);
    write_code_item(data, code, it == debug_offs.end() ? 0 : it->second);
  });

  // (d) class_data items.
  std::vector<uint32_t> class_data_offs(C, 0);
  for (size_t i = 0; i < C; ++i) {
    ClassDef& cls = f.classes[i];
    if (cls.static_fields.empty() && cls.instance_fields.empty() &&
        cls.direct_methods.empty() && cls.virtual_methods.empty()) {
      continue;
    }
    uint32_t off = off_of();
    sec_class_data.record(off);
    class_data_offs[i] = off;
    write_uleb128(data, static_cast<uint32_t>(cls.static_fields.size()));
    write_uleb128(data, static_cast<uint32_t>(cls.instance_fields.size()));
    write_uleb128(data, static_cast<uint32_t>(cls.direct_methods.size()));
    write_uleb128(data, static_cast<uint32_t>(cls.virtual_methods.size()));
    auto write_fields = [&](const std::vector<FieldDef>& fields) {
      uint32_t prev = 0;
      for (size_t j = 0; j < fields.size(); ++j) {
        uint32_t idx = fields[j].field_ref;
        write_uleb128(data, j == 0 ? idx : idx - prev);
        write_uleb128(data, fields[j].access_flags);
        prev = idx;
      }
    };
    write_fields(cls.static_fields);
    write_fields(cls.instance_fields);
    auto write_methods = [&](const std::vector<MethodDef>& methods) {
      uint32_t prev = 0;
      for (size_t j = 0; j < methods.size(); ++j) {
        uint32_t idx = methods[j].method_ref;
        write_uleb128(data, j == 0 ? idx : idx - prev);
        write_uleb128(data, methods[j].access_flags);
        uint32_t code_off = 0;
        if (methods[j].code) code_off = code_offs.at(&*methods[j].code);
        write_uleb128(data, code_off);
        prev = idx;
      }
    };
    write_methods(cls.direct_methods);
    write_methods(cls.virtual_methods);
  }

  // (e) encoded arrays: static field initializer prefixes.
  std::vector<uint32_t> static_values_offs(C, 0);
  for (size_t i = 0; i < C; ++i) {
    const ClassDef& cls = f.classes[i];
    size_t prefix = 0;
    for (size_t j = 0; j < cls.static_fields.size(); ++j) {
      if (cls.static_fields[j].static_init) prefix = j + 1;
    }
    if (prefix == 0) continue;
    uint32_t off = off_of();
    sec_arrays.record(off);
    static_values_offs[i] = off;
    write_uleb128(data, static_cast<uint32_t>(prefix));
    for (size_t j = 0; j < prefix; ++j) {
      const FieldDef& fd = cls.static_fields[j];
      if (fd.static_init) {
        write_encoded_value(data, *fd.static_init);
      } else {
        // Gap in the prefix: the field's default value, typed so a parse ->
        // emit round trip reproduces these exact bytes.
        const FieldRef& ref = f.fields.at(fd.field_ref);
        char c = shorty_char(f.strings.at(f.types.at(ref.type)));
        EncodedValue dflt;
        dflt.kind = c == 'L' ? EncodedValue::Kind::kNull
                             : EncodedValue::Kind::kInt;
        write_encoded_value(data, dflt);
      }
    }
  }

  // (f) string_data, in string_ids order (offsets strictly increasing).
  std::vector<uint32_t> string_data_offs(S);
  for (size_t i = 0; i < S; ++i) {
    uint32_t off = off_of();
    sec_string_data.record(off);
    string_data_offs[i] = off;
    write_string_data(data, f.strings[i]);
  }

  // (g) map_list.
  data.align(4);
  const uint32_t map_off = off_of();
  struct MapEntry {
    uint16_t type;
    uint32_t count;
    uint32_t off;
  };
  std::vector<MapEntry> map;
  map.push_back({kMapHeader, 1, 0});
  if (S) map.push_back({kMapStringId, static_cast<uint32_t>(S), string_ids_off});
  if (T) map.push_back({kMapTypeId, static_cast<uint32_t>(T), type_ids_off});
  if (P) map.push_back({kMapProtoId, static_cast<uint32_t>(P), proto_ids_off});
  if (F) map.push_back({kMapFieldId, static_cast<uint32_t>(F), field_ids_off});
  if (M) map.push_back({kMapMethodId, static_cast<uint32_t>(M), method_ids_off});
  if (C) map.push_back({kMapClassDef, static_cast<uint32_t>(C), class_defs_off});
  auto add_section = [&](uint16_t type, const Section& s) {
    if (s.count) map.push_back({type, s.count, s.first});
  };
  add_section(kMapTypeList, sec_type_lists);
  add_section(kMapDebugInfo, sec_debug);
  add_section(kMapCodeItem, sec_code);
  add_section(kMapClassData, sec_class_data);
  add_section(kMapEncodedArray, sec_arrays);
  add_section(kMapStringData, sec_string_data);
  map.push_back({kMapMapList, 1, map_off});
  data.u32(static_cast<uint32_t>(map.size()));
  for (const MapEntry& e : map) {
    data.u16(e.type);
    data.u16(0);
    data.u32(e.count);
    data.u32(e.off);
  }

  const uint32_t file_size = data_start + static_cast<uint32_t>(data.size());

  ByteWriter out;
  out.raw(kRealDexMagic, sizeof(kRealDexMagic));
  out.u32(0);                                   // checksum (patched below)
  for (int i = 0; i < 20; ++i) out.u8(0);       // signature (patched below)
  out.u32(file_size);
  out.u32(kHeaderSize);
  out.u32(kEndianTag);
  out.u32(0);  // link_size
  out.u32(0);  // link_off
  out.u32(map_off);
  out.u32(static_cast<uint32_t>(S));
  out.u32(S ? string_ids_off : 0);
  out.u32(static_cast<uint32_t>(T));
  out.u32(T ? type_ids_off : 0);
  out.u32(static_cast<uint32_t>(P));
  out.u32(P ? proto_ids_off : 0);
  out.u32(static_cast<uint32_t>(F));
  out.u32(F ? field_ids_off : 0);
  out.u32(static_cast<uint32_t>(M));
  out.u32(M ? method_ids_off : 0);
  out.u32(static_cast<uint32_t>(C));
  out.u32(C ? class_defs_off : 0);
  out.u32(file_size - data_start);  // data_size
  out.u32(data_start);              // data_off

  for (uint32_t off : string_data_offs) out.u32(off);
  for (uint32_t t : f.types) out.u32(t);
  for (const Proto& p : f.protos) {
    std::string shorty = shorty_of(f, p);
    auto it = std::lower_bound(f.strings.begin(), f.strings.end(), shorty);
    if (it == f.strings.end() || *it != shorty) {
      throw ParseError("shorty string missing from canonical pool");
    }
    out.u32(static_cast<uint32_t>(it - f.strings.begin()));
    out.u32(p.return_type);
    out.u32(p.param_types.empty() ? 0 : type_list_off.at(p.param_types));
  }
  for (const FieldRef& fr : f.fields) {
    out.u16(static_cast<uint16_t>(fr.class_type));
    out.u16(static_cast<uint16_t>(fr.type));
    out.u32(fr.name);
  }
  for (const MethodRef& mr : f.methods) {
    out.u16(static_cast<uint16_t>(mr.class_type));
    out.u16(static_cast<uint16_t>(mr.proto));
    out.u32(mr.name);
  }
  for (size_t i = 0; i < C; ++i) {
    const ClassDef& cls = f.classes[i];
    out.u32(cls.type_idx);
    out.u32(cls.access_flags);
    out.u32(cls.super_type_idx);  // kNoIndex == NO_INDEX == 0xffffffff
    out.u32(0);                   // interfaces_off
    out.u32(kNoIndex);            // source_file_idx
    out.u32(0);                   // annotations_off
    out.u32(class_data_offs[i]);
    out.u32(static_values_offs[i]);
  }
  out.bytes(data.data());

  std::vector<uint8_t> bytes = out.take();
  std::array<uint8_t, 20> sig =
      support::sha1(std::span<const uint8_t>(bytes).subspan(32));
  std::memcpy(bytes.data() + 12, sig.data(), sig.size());
  uint32_t checksum =
      support::adler32(std::span<const uint8_t>(bytes).subspan(12));
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(checksum >> (8 * i));
  }
  return bytes;
}

DexFile parse_real(std::span<const uint8_t> data) {
  if (data.size() < kHeaderSize) {
    throw ParseError("real DEX shorter than its header");
  }
  if (!is_real_dex(data)) throw ParseError("bad real DEX magic");

  ByteReader hr(data);
  hr.skip(sizeof(kRealDexMagic));
  uint32_t checksum = hr.u32();
  std::vector<uint8_t> sig = hr.bytes(20);
  uint32_t file_size = hr.u32();
  uint32_t header_size = hr.u32();
  uint32_t endian_tag = hr.u32();
  uint32_t link_size = hr.u32();
  uint32_t link_off = hr.u32();
  uint32_t map_off = hr.u32();
  uint32_t n_strings = hr.u32(), string_ids_off = hr.u32();
  uint32_t n_types = hr.u32(), type_ids_off = hr.u32();
  uint32_t n_protos = hr.u32(), proto_ids_off = hr.u32();
  uint32_t n_fields = hr.u32(), field_ids_off = hr.u32();
  uint32_t n_methods = hr.u32(), method_ids_off = hr.u32();
  uint32_t n_classes = hr.u32(), class_defs_off = hr.u32();
  hr.u32();  // data_size
  hr.u32();  // data_off

  if (file_size != data.size()) throw ParseError("real DEX size mismatch");
  if (header_size != kHeaderSize) {
    throw ParseError("unsupported real DEX header size");
  }
  if (endian_tag != kEndianTag) throw ParseError("unsupported DEX endianness");
  if (link_size != 0 || link_off != 0) {
    throw ParseError("linked real DEX unsupported");
  }
  if (support::adler32(data.subspan(12)) != checksum) {
    throw ParseError("real DEX checksum mismatch");
  }
  std::array<uint8_t, 20> want = support::sha1(data.subspan(32));
  if (std::memcmp(want.data(), sig.data(), want.size()) != 0) {
    throw ParseError("real DEX signature mismatch");
  }
  if (n_types > 0x10000) throw ParseError("implausible type_ids count");
  if (n_protos > 0x10000) throw ParseError("implausible proto_ids count");

  // Section plausibility: offset inside the file, 4-aligned, and the count
  // must fit in the bytes after it (check_count lifted to absolute offsets).
  auto check_section = [&](uint32_t off, uint64_t n, size_t elem,
                           const char* what) {
    if (n == 0) return;
    if (off < kHeaderSize || off % 4 != 0 || off >= data.size() ||
        n > (data.size() - off) / elem) {
      throw ParseError(std::string("implausible ") + what + " section");
    }
  };
  check_section(string_ids_off, n_strings, 4, "string_ids");
  check_section(type_ids_off, n_types, 4, "type_ids");
  check_section(proto_ids_off, n_protos, 12, "proto_ids");
  check_section(field_ids_off, n_fields, 8, "field_ids");
  check_section(method_ids_off, n_methods, 8, "method_ids");
  check_section(class_defs_off, n_classes, 32, "class_defs");

  DexFile f;

  // Strings. Offsets must be strictly increasing — equal or backward offsets
  // are the pool-aliasing attack (two ids sharing bytes confuse dedup and
  // make emit non-idempotent), so they fail closed here.
  {
    ByteReader ids(data);
    ids.seek(string_ids_off);
    uint32_t prev = 0;
    f.strings.reserve(n_strings);
    for (uint32_t i = 0; i < n_strings; ++i) {
      uint32_t off = ids.u32();
      if (off < kHeaderSize || off >= data.size()) {
        throw ParseError("string data offset outside the file");
      }
      if (i > 0 && off <= prev) {
        throw ParseError("string data offsets alias or go backwards");
      }
      prev = off;
      ByteReader sr(data);
      sr.seek(off);
      f.strings.push_back(read_string_data(sr));
    }
  }

  // Types.
  {
    ByteReader ids(data);
    ids.seek(type_ids_off);
    f.types.reserve(n_types);
    for (uint32_t i = 0; i < n_types; ++i) {
      uint32_t s = ids.u32();
      if (s >= n_strings) throw ParseError("type descriptor index out of range");
      f.types.push_back(s);
    }
  }

  // Protos (with shorty cross-validation — a lying shorty is hostile).
  {
    ByteReader ids(data);
    ids.seek(proto_ids_off);
    f.protos.reserve(n_protos);
    for (uint32_t i = 0; i < n_protos; ++i) {
      uint32_t shorty_idx = ids.u32();
      uint32_t return_type = ids.u32();
      uint32_t params_off = ids.u32();
      if (shorty_idx >= n_strings) throw ParseError("shorty index out of range");
      if (return_type >= n_types) {
        throw ParseError("proto return type out of range");
      }
      Proto p;
      p.return_type = return_type;
      if (params_off != 0) {
        if (params_off < kHeaderSize || params_off % 4 != 0 ||
            params_off >= data.size()) {
          throw ParseError("proto parameter list offset outside the file");
        }
        ByteReader tl(data);
        tl.seek(params_off);
        uint32_t n = tl.u32();
        check_count(tl, n, 2, "type_list");
        p.param_types.reserve(n);
        for (uint32_t j = 0; j < n; ++j) {
          uint16_t t = tl.u16();
          if (t >= n_types) throw ParseError("parameter type out of range");
          p.param_types.push_back(t);
        }
      }
      if (f.strings[shorty_idx] != shorty_of(f, p)) {
        throw ParseError("proto shorty does not match its signature");
      }
      f.protos.push_back(std::move(p));
    }
  }

  // Fields.
  {
    ByteReader ids(data);
    ids.seek(field_ids_off);
    f.fields.reserve(n_fields);
    for (uint32_t i = 0; i < n_fields; ++i) {
      FieldRef fr;
      fr.class_type = ids.u16();
      fr.type = ids.u16();
      fr.name = ids.u32();
      if (fr.class_type >= n_types || fr.type >= n_types) {
        throw ParseError("field type out of range");
      }
      if (fr.name >= n_strings) throw ParseError("field name out of range");
      f.fields.push_back(fr);
    }
  }

  // Methods.
  {
    ByteReader ids(data);
    ids.seek(method_ids_off);
    f.methods.reserve(n_methods);
    for (uint32_t i = 0; i < n_methods; ++i) {
      MethodRef mr;
      mr.class_type = ids.u16();
      mr.proto = ids.u16();
      mr.name = ids.u32();
      if (mr.class_type >= n_types) throw ParseError("method class out of range");
      if (mr.proto >= n_protos) throw ParseError("method proto out of range");
      if (mr.name >= n_strings) throw ParseError("method name out of range");
      f.methods.push_back(mr);
    }
  }

  // Class definitions.
  {
    ByteReader ids(data);
    ids.seek(class_defs_off);
    f.classes.reserve(n_classes);
    for (uint32_t i = 0; i < n_classes; ++i) {
      ClassDef cls;
      cls.type_idx = ids.u32();
      cls.access_flags = ids.u32();
      cls.super_type_idx = ids.u32();
      uint32_t interfaces_off = ids.u32();
      uint32_t source_file_idx = ids.u32();
      uint32_t annotations_off = ids.u32();
      uint32_t class_data_off = ids.u32();
      uint32_t static_values_off = ids.u32();
      if (cls.type_idx >= n_types) throw ParseError("class type out of range");
      if (cls.super_type_idx != kNoIndex && cls.super_type_idx >= n_types) {
        throw ParseError("superclass type out of range");
      }
      if (source_file_idx != kNoIndex && source_file_idx >= n_strings) {
        throw ParseError("source file index out of range");
      }
      if (annotations_off != 0) {
        throw ParseError("annotations unsupported in real DEX reader");
      }
      if (interfaces_off != 0) {
        // Validated as a well-formed type_list, then ignored (the model has
        // no interface table).
        if (interfaces_off < kHeaderSize || interfaces_off % 4 != 0 ||
            interfaces_off >= data.size()) {
          throw ParseError("interface list offset outside the file");
        }
        ByteReader tl(data);
        tl.seek(interfaces_off);
        uint32_t n = tl.u32();
        check_count(tl, n, 2, "interface list");
        for (uint32_t j = 0; j < n; ++j) {
          if (tl.u16() >= n_types) throw ParseError("interface type out of range");
        }
      }
      if (class_data_off != 0) {
        if (class_data_off < kHeaderSize || class_data_off >= data.size()) {
          throw ParseError("class data offset outside the file");
        }
        ByteReader cd(data);
        cd.seek(class_data_off);
        uint32_t n_static = read_uleb128(cd);
        uint32_t n_instance = read_uleb128(cd);
        uint32_t n_direct = read_uleb128(cd);
        uint32_t n_virtual = read_uleb128(cd);
        check_count(cd, n_static, 2, "static field");
        check_count(cd, n_instance, 2, "instance field");
        check_count(cd, n_direct, 3, "direct method");
        check_count(cd, n_virtual, 3, "virtual method");
        auto read_fields = [&](uint32_t n, std::vector<FieldDef>& out_list) {
          uint64_t idx = 0;
          for (uint32_t j = 0; j < n; ++j) {
            uint32_t diff = read_uleb128(cd);
            if (j > 0 && diff == 0) {
              throw ParseError("duplicate field in class data");
            }
            idx = j == 0 ? diff : idx + diff;
            if (idx >= n_fields) throw ParseError("class field out of range");
            FieldDef fd;
            fd.field_ref = static_cast<uint32_t>(idx);
            fd.access_flags = read_uleb128(cd);
            out_list.push_back(fd);
          }
        };
        auto read_methods = [&](uint32_t n, std::vector<MethodDef>& out_list) {
          uint64_t idx = 0;
          for (uint32_t j = 0; j < n; ++j) {
            uint32_t diff = read_uleb128(cd);
            if (j > 0 && diff == 0) {
              throw ParseError("duplicate method in class data");
            }
            idx = j == 0 ? diff : idx + diff;
            if (idx >= n_methods) throw ParseError("class method out of range");
            MethodDef md;
            md.method_ref = static_cast<uint32_t>(idx);
            md.access_flags = read_uleb128(cd);
            uint32_t code_off = read_uleb128(cd);
            if (code_off != 0) {
              if (code_off < kHeaderSize || code_off % 4 != 0 ||
                  code_off >= data.size()) {
                throw ParseError("code item offset outside the file");
              }
              md.code = read_code_item(data, code_off);
            }
            out_list.push_back(std::move(md));
          }
        };
        read_fields(n_static, cls.static_fields);
        read_fields(n_instance, cls.instance_fields);
        read_methods(n_direct, cls.direct_methods);
        read_methods(n_virtual, cls.virtual_methods);
      }
      if (static_values_off != 0) {
        if (static_values_off < kHeaderSize ||
            static_values_off >= data.size()) {
          throw ParseError("static values offset outside the file");
        }
        ByteReader ev(data);
        ev.seek(static_values_off);
        uint32_t n = read_uleb128(ev);
        if (n > cls.static_fields.size()) {
          throw ParseError("static values exceed static fields");
        }
        check_count(ev, n, 1, "static value");
        for (uint32_t j = 0; j < n; ++j) {
          cls.static_fields[j].static_init = read_encoded_value(ev, n_strings);
        }
      }
      f.classes.push_back(std::move(cls));
    }
  }

  // Map list: required, bounded, and its entries must stay inside the file.
  if (map_off == 0 || map_off % 4 != 0 || map_off >= data.size()) {
    throw ParseError("map list offset outside the file");
  }
  {
    ByteReader mr(data);
    mr.seek(map_off);
    uint32_t n = mr.u32();
    check_count(mr, n, 12, "map entry");
    for (uint32_t i = 0; i < n; ++i) {
      mr.u16();  // type
      mr.u16();  // unused
      mr.u32();  // size
      uint32_t off = mr.u32();
      if (off > data.size()) throw ParseError("map entry offset outside the file");
    }
  }

  return f;
}

DexFile load_any(std::span<const uint8_t> data) {
  if (is_ldex(data)) return read_dex(data);
  if (is_real_dex(data)) return parse_real(data);
  throw ParseError("unknown executable container magic");
}

std::string real_classes_entry(size_t index) {
  if (index == 0) return "classes.dex";
  return "classes" + std::to_string(index + 1) + ".dex";
}

bool has_classes(const Apk& apk) {
  return apk.has_entry(Apk::kClassesEntry) ||
         apk.has_entry(real_classes_entry(0));
}

DexFile load_classes(const Apk& apk) {
  if (apk.has_entry(Apk::kClassesEntry)) return read_dex(apk.classes());
  if (!apk.has_entry(real_classes_entry(0))) {
    throw ParseError("APK carries no executable payload");
  }
  size_t parts = 1;
  while (apk.has_entry(real_classes_entry(parts))) ++parts;
  // A classesN.dex beyond the first gap means the sequence is truncated —
  // loading a subset of the app silently would be wrong, so fail closed.
  for (const std::string& name : apk.entry_names()) {
    size_t index = 0;
    if (parse_real_entry_index(name, &index) && index >= parts) {
      throw ParseError("multidex sequence has a gap before " + name);
    }
  }
  DexFile merged;
  Interner interner(merged);
  for (size_t i = 0; i < parts; ++i) {
    merge_into(interner, parse_real(apk.entry(real_classes_entry(i))));
  }
  // Aliased parts (the same class defined by two classesN.dex) would make the
  // winner load-order-dependent; fail closed instead.
  std::set<uint32_t> defined;
  for (const ClassDef& cls : merged.classes) {
    if (!defined.insert(cls.type_idx).second) {
      throw ParseError("duplicate class definition across multidex parts: " +
                       merged.type_descriptor(cls.type_idx));
    }
  }
  return merged;
}

void strip_real_classes(Apk& apk) {
  for (const std::string& name : apk.entry_names()) {
    size_t index = 0;
    if (parse_real_entry_index(name, &index)) apk.remove_entry(name);
  }
}

Apk to_real_container(const Apk& apk, size_t parts) {
  if (parts == 0) parts = 1;
  DexFile model = load_classes(apk);
  Apk out = apk;
  if (out.has_entry(Apk::kClassesEntry)) out.remove_entry(Apk::kClassesEntry);
  strip_real_classes(out);
  const size_t per = (model.classes.size() + parts - 1) / parts;
  for (size_t k = 0; k < parts; ++k) {
    DexFile part = model;
    size_t begin = std::min(k * per, model.classes.size());
    size_t end = std::min(begin + per, model.classes.size());
    part.classes.assign(model.classes.begin() + static_cast<ptrdiff_t>(begin),
                        model.classes.begin() + static_cast<ptrdiff_t>(end));
    out.set_entry(real_classes_entry(k), emit_real(part));
  }
  return out;
}

}  // namespace dexlego::dex
