// Real Android DEX format (`dex\n035` magic) frontend/backend. Parses and
// emits the actual Dalvik Executable container — header with adler32
// checksum and SHA-1 signature, uleb128/sleb128 encodings, sorted
// string/type/proto/field/method pools, class_defs with class_data /
// encoded static values / code items / debug line tables, and multidex
// (`classes.dex`, `classes2.dex`, ...) ingestion — and converts to/from the
// in-memory dex::DexFile model, so the collector, verifier, reassembler,
// ForceEngine and fuzzer all work unchanged on real-format inputs.
//
// Instruction streams are stored with real Dalvik opcode bytes via the
// bijective mapping in src/bytecode/dalvik_map.h; operand layout and the
// handful of other documented deviations from AOSP are listed in
// docs/DEX_FORMAT.md. Parsing is hardened to the same standard as the LDEX
// reader: leb128 length bombs, hostile pool counts, aliased pool offsets
// and truncated items all raise a clean support::ParseError, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dex/archive.h"
#include "src/dex/dex.h"

namespace dexlego::dex {

// "dex\n035\0" — the API-14+ version every real-world tool accepts.
inline constexpr uint8_t kRealDexMagic[8] = {'d', 'e', 'x', '\n',
                                             '0', '3', '5', '\0'};

// Container sniffing (cheap, header-prefix only).
bool is_real_dex(std::span<const uint8_t> data);
bool is_ldex(std::span<const uint8_t> data);

// Serializes the model as a real DEX file: pools canonicalized (sorted,
// deduplicated, shorty strings interned, instruction pool operands
// remapped), adler32 checksum and SHA-1 signature recomputed. Throws
// support::ParseError when the model cannot be expressed (undecodable
// instruction stream, out-of-range pool indices).
std::vector<uint8_t> emit_real(const DexFile& file);

// Parses and validates a real DEX file back into the model. Verifies the
// checksum and signature, bounds-checks every offset and count before
// allocating, and rejects structural hostility (string-offset aliasing,
// oversized leb128s, truncated code items) with a clean ParseError.
DexFile parse_real(std::span<const uint8_t> data);

// Sniffs the magic and dispatches to read_dex (LDEX) or parse_real.
DexFile load_any(std::span<const uint8_t> data);

// Loads an APK's executable payload whichever container it ships:
// classes.ldex, or classes.dex plus any classes2.dex, classes3.dex, ...
// multidex siblings (merged into one model with pools re-interned and
// instruction operands remapped). Throws ParseError when no executable
// entry exists or any part is malformed.
DexFile load_classes(const Apk& apk);
bool has_classes(const Apk& apk);

// Name of the k-th real-DEX entry: "classes.dex", "classes2.dex", ...
std::string real_classes_entry(size_t index);

// Removes every classes.dex / classesN.dex entry (the splice step calls this
// so a revealed APK never carries both containers at once).
void strip_real_classes(Apk& apk);

// Rewrites an LDEX-container APK into a real-DEX container: classes.ldex is
// replaced by `parts` real DEX files (classes split contiguously across
// them when parts > 1 — the multidex shape). Manifest and assets are kept.
Apk to_real_container(const Apk& apk, size_t parts = 1);

}  // namespace dexlego::dex
