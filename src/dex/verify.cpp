#include "src/dex/verify.h"

#include <set>
#include <sstream>

namespace dexlego::dex {

namespace {

bool descriptor_well_formed(const std::string& d) {
  if (d.empty()) return false;
  switch (d[0]) {
    case 'V':
    case 'I':
    case 'Z':
    case 'J':
      return d.size() == 1;
    case '[':
      return d.size() >= 2 && descriptor_well_formed(d.substr(1));
    case 'L':
      return d.size() >= 3 && d.back() == ';';
    default:
      return false;
  }
}

class Verifier {
 public:
  explicit Verifier(const DexFile& file) : file_(file) {}

  VerifyResult run() {
    check_pools();
    // Broken pools make reference chasing inside the class checks
    // (type_descriptor, pretty_field/method) throw out_of_range instead of
    // reporting — found by the structural fuzzer (tests/data/fuzz). Report
    // the pool errors alone; classes are only checked against clean pools.
    if (result_.errors.empty()) check_classes();
    return std::move(result_);
  }

 private:
  void fail(const std::string& msg) { result_.errors.push_back(msg); }

  bool valid_string(uint32_t idx) { return idx < file_.strings.size(); }
  bool valid_type(uint32_t idx) { return idx < file_.types.size(); }

  // Descriptor of a type index, or nullptr when either indirection level is
  // out of bounds — chasing a valid type whose *string* index is broken must
  // report, not throw (found by the structural fuzzer, tests/data/fuzz/).
  const std::string* descriptor_of(uint32_t type_idx) {
    if (!valid_type(type_idx)) return nullptr;
    uint32_t s = file_.types[type_idx];
    return valid_string(s) ? &file_.strings[s] : nullptr;
  }

  void check_pools() {
    for (size_t i = 0; i < file_.types.size(); ++i) {
      uint32_t s = file_.types[i];
      if (!valid_string(s)) {
        fail("type " + std::to_string(i) + ": string index out of bounds");
        continue;
      }
      if (!descriptor_well_formed(file_.strings[s])) {
        fail("type " + std::to_string(i) + ": malformed descriptor '" +
             file_.strings[s] + "'");
      }
    }
    for (size_t i = 0; i < file_.protos.size(); ++i) {
      const Proto& p = file_.protos[i];
      if (!valid_type(p.return_type)) {
        fail("proto " + std::to_string(i) + ": return type out of bounds");
      }
      for (uint32_t t : p.param_types) {
        if (!valid_type(t)) {
          fail("proto " + std::to_string(i) + ": param type out of bounds");
        } else {
          const std::string* desc = descriptor_of(t);
          if (desc != nullptr && *desc == "V") {
            fail("proto " + std::to_string(i) + ": void parameter");
          }
        }
      }
    }
    for (size_t i = 0; i < file_.fields.size(); ++i) {
      const FieldRef& f = file_.fields[i];
      if (!valid_type(f.class_type) || !valid_type(f.type) || !valid_string(f.name)) {
        fail("field ref " + std::to_string(i) + ": index out of bounds");
      }
    }
    for (size_t i = 0; i < file_.methods.size(); ++i) {
      const MethodRef& m = file_.methods[i];
      if (!valid_type(m.class_type) || m.proto >= file_.protos.size() ||
          !valid_string(m.name)) {
        fail("method ref " + std::to_string(i) + ": index out of bounds");
      }
    }
  }

  void check_field_def(const FieldDef& def, bool is_static, const std::string& where) {
    if (def.field_ref >= file_.fields.size()) {
      fail(where + ": field ref out of bounds");
      return;
    }
    if (is_static != ((def.access_flags & kAccStatic) != 0)) {
      fail(where + ": static flag mismatch for " + file_.pretty_field(def.field_ref));
    }
    if (def.static_init) {
      if (!is_static) {
        fail(where + ": instance field with static initializer");
      }
      if (def.static_init->kind == EncodedValue::Kind::kString &&
          !valid_string(def.static_init->string_idx)) {
        fail(where + ": static init string out of bounds");
      }
    }
  }

  void check_method_def(const MethodDef& def, const std::string& where) {
    if (def.method_ref >= file_.methods.size()) {
      fail(where + ": method ref out of bounds");
      return;
    }
    bool is_native = (def.access_flags & kAccNative) != 0;
    bool is_abstract = (def.access_flags & kAccAbstract) != 0;
    if (def.code && (is_native || is_abstract)) {
      fail(where + ": native/abstract method has code: " +
           file_.pretty_method(def.method_ref));
    }
    if (!def.code && !is_native && !is_abstract) {
      fail(where + ": concrete method missing code: " +
           file_.pretty_method(def.method_ref));
    }
    if (def.code) {
      const CodeItem& code = *def.code;
      if (code.ins_size > code.registers_size) {
        fail(where + ": ins_size exceeds registers_size in " +
             file_.pretty_method(def.method_ref));
      }
      for (const TryItem& t : code.tries) {
        if (t.start_pc >= t.end_pc || t.end_pc > code.insns.size() ||
            t.handler_pc >= code.insns.size()) {
          fail(where + ": malformed try item in " +
               file_.pretty_method(def.method_ref));
        }
      }
      for (const LineEntry& e : code.lines) {
        if (e.pc >= code.insns.size() && !code.insns.empty()) {
          fail(where + ": line entry pc out of bounds in " +
               file_.pretty_method(def.method_ref));
        }
      }
    }
  }

  void check_classes() {
    std::set<uint32_t> seen_types;
    for (size_t i = 0; i < file_.classes.size(); ++i) {
      const ClassDef& cls = file_.classes[i];
      std::string where = "class " + std::to_string(i);
      if (!valid_type(cls.type_idx)) {
        fail(where + ": type index out of bounds");
        continue;
      }
      where = "class " + file_.type_descriptor(cls.type_idx);
      if (!seen_types.insert(cls.type_idx).second) {
        fail(where + ": duplicate class definition");
      }
      if (cls.super_type_idx != kNoIndex && !valid_type(cls.super_type_idx)) {
        fail(where + ": super type out of bounds");
      }
      for (const FieldDef& f : cls.static_fields) check_field_def(f, true, where);
      for (const FieldDef& f : cls.instance_fields) check_field_def(f, false, where);
      // Two definitions of the same method ref make invoke resolution
      // ambiguous — the fuzzer's idempotence oracle hit this as a variant
      // name collision on re-reveal (infinite self-recursion at runtime).
      std::set<uint32_t> seen_methods;
      for (const MethodDef& m : cls.direct_methods) {
        check_method_def(m, where);
        if (m.method_ref < file_.methods.size() &&
            !seen_methods.insert(m.method_ref).second) {
          fail(where + ": duplicate method definition " +
               file_.pretty_method(m.method_ref));
        }
      }
      for (const MethodDef& m : cls.virtual_methods) {
        check_method_def(m, where);
        if (m.method_ref < file_.methods.size() &&
            !seen_methods.insert(m.method_ref).second) {
          fail(where + ": duplicate method definition " +
               file_.pretty_method(m.method_ref));
        }
      }
    }
  }

  const DexFile& file_;
  VerifyResult result_;
};

}  // namespace

std::string VerifyResult::message() const {
  std::ostringstream os;
  for (const std::string& e : errors) os << e << "\n";
  return os.str();
}

VerifyResult verify_structure(const DexFile& file) { return Verifier(file).run(); }

}  // namespace dexlego::dex
