// Binary serialization of LDEX files. Layout (all little-endian):
//
//   header:  magic "LDEX0001" (8 bytes)
//            u32 adler32 checksum of everything after this field
//            u32 file size
//            u32 counts: strings, types, protos, fields, methods, classes
//   sections in pool order, then class definitions.
//
// The reader re-verifies the checksum and delegates structural validation to
// verify.h; a corrupted or truncated file raises ParseError, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dex/dex.h"

namespace dexlego::dex {

inline constexpr char kMagic[8] = {'L', 'D', 'E', 'X', '0', '0', '0', '1'};

std::vector<uint8_t> write_dex(const DexFile& file);

// Parses and checksum-verifies. Throws support::ParseError on malformed input.
DexFile read_dex(std::span<const uint8_t> data);

}  // namespace dexlego::dex
