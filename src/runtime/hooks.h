// Instrumentation surface of the runtime — the exact set of observation and
// interposition points DexLego's JIT collection needs (paper Fig. 2): class
// load/initialize in the class linker, method entry, per-instruction fetch in
// the interpreter, plus the force-execution controls (branch override and
// exception tolerance, Section IV-E) and reflection resolution (IV-D).
//
// Coverage tracking, DexLego collection, force execution and the
// DexHunter/AppSpear baselines are all RuntimeHooks implementations; the
// runtime itself knows nothing about any of them.
#pragma once

#include <cstdint>
#include <span>

#include "src/runtime/rt_types.h"

namespace dexlego::rt {

class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;

  // --- class linker events ---
  virtual void on_dex_loaded(const DexImage& image) { (void)image; }
  virtual void on_class_loaded(RtClass& cls) { (void)cls; }
  virtual void on_class_initialized(RtClass& cls) { (void)cls; }

  // --- interpreter events ---
  virtual void on_method_entry(RtMethod& method) { (void)method; }
  virtual void on_method_exit(RtMethod& method) { (void)method; }
  // Fired before executing the instruction at dex_pc. `code` is the method's
  // *current* instruction array — self-modifying code may have changed it
  // since the last fetch, which is what the collection tree detects.
  virtual void on_instruction(RtMethod& method, uint32_t dex_pc,
                              std::span<const uint16_t> code) {
    (void)method, (void)dex_pc, (void)code;
  }
  // Fired after a conditional branch evaluates. `taken` is the actual
  // outcome (post-forcing).
  virtual void on_branch(RtMethod& method, uint32_t dex_pc, bool taken) {
    (void)method, (void)dex_pc, (void)taken;
  }

  // --- force execution controls ---
  // Return true to override the branch outcome with *outcome.
  virtual bool force_branch(RtMethod& method, uint32_t dex_pc, bool* outcome) {
    (void)method, (void)dex_pc, (void)outcome;
    return false;
  }
  // Return true to swallow the pending exception and continue at the next
  // instruction ("we monitor the unhandled exception in the interpreter and
  // tolerate it by directly clearing the exception").
  virtual bool tolerate_exception(RtMethod& method, uint32_t dex_pc) {
    (void)method, (void)dex_pc;
    return false;
  }

  // --- reflection (ART resolves the target at runtime; DexLego records it) ---
  // Fired when Method.invoke dispatches: `caller` executes the reflective
  // call at `dex_pc` and ART resolved it to `target`.
  virtual void on_reflective_invoke(RtMethod& caller, uint32_t dex_pc,
                                    RtMethod& target) {
    (void)caller, (void)dex_pc, (void)target;
  }
};

}  // namespace dexlego::rt
