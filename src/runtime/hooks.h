// Instrumentation surface of the runtime — the exact set of observation and
// interposition points DexLego's JIT collection needs (paper Fig. 2): class
// load/initialize in the class linker, method entry, per-instruction fetch in
// the interpreter, plus the force-execution controls (branch override and
// exception tolerance, Section IV-E) and reflection resolution (IV-D).
//
// Coverage tracking, DexLego collection, force execution and the
// DexHunter/AppSpear baselines are all RuntimeHooks implementations; the
// runtime itself knows nothing about any of them.
#pragma once

#include <cstdint>
#include <span>

#include "src/runtime/rt_types.h"

namespace dexlego::rt {

// One bit per observation/interposition point. A hook declares the events it
// subscribes to via RuntimeHooks::subscribed_events(); the HookChain
// (src/runtime/hook_chain.h) keeps one flat callback list per event so the
// interpreter never fans out to hooks that don't care about an event.
enum class HookEvent : uint32_t {
  kDexLoaded = 1u << 0,
  kClassLoaded = 1u << 1,
  kClassInitialized = 1u << 2,
  kMethodEntry = 1u << 3,
  kMethodExit = 1u << 4,
  kInstruction = 1u << 5,
  kBranch = 1u << 6,
  kForceBranch = 1u << 7,
  kTolerateException = 1u << 8,
  kReflectiveInvoke = 1u << 9,
};

inline constexpr uint32_t kHookEventCount = 10;
inline constexpr uint32_t kAllHookEvents = (1u << kHookEventCount) - 1;

inline constexpr uint32_t hook_mask(HookEvent e) {
  return static_cast<uint32_t>(e);
}

// Index of an event's callback list inside the HookChain.
constexpr size_t hook_event_index(HookEvent e) {
  uint32_t bit = static_cast<uint32_t>(e);
  size_t index = 0;
  while ((bit >>= 1) != 0) ++index;
  return index;
}

class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;

  // Capability mask: which events this hook wants, OR of hook_mask(...)
  // values. The default subscribes to everything so ad-hoc hooks keep
  // working; the built-in chain members (collector, coverage tracker, force
  // hooks, taint presets) override this to the exact set they implement.
  virtual uint32_t subscribed_events() const { return kAllHookEvents; }

  // --- class linker events ---
  virtual void on_dex_loaded(const DexImage& image) { (void)image; }
  virtual void on_class_loaded(RtClass& cls) { (void)cls; }
  virtual void on_class_initialized(RtClass& cls) { (void)cls; }

  // --- interpreter events ---
  virtual void on_method_entry(RtMethod& method) { (void)method; }
  virtual void on_method_exit(RtMethod& method) { (void)method; }
  // Fired before executing the instruction at dex_pc. `code` is the method's
  // *current* instruction array — self-modifying code may have changed it
  // since the last fetch, which is what the collection tree detects.
  virtual void on_instruction(RtMethod& method, uint32_t dex_pc,
                              std::span<const uint16_t> code) {
    (void)method, (void)dex_pc, (void)code;
  }
  // Fired after a conditional branch evaluates. `taken` is the actual
  // outcome (post-forcing).
  virtual void on_branch(RtMethod& method, uint32_t dex_pc, bool taken) {
    (void)method, (void)dex_pc, (void)taken;
  }

  // --- force execution controls ---
  // Return true to override the branch outcome with *outcome.
  virtual bool force_branch(RtMethod& method, uint32_t dex_pc, bool* outcome) {
    (void)method, (void)dex_pc, (void)outcome;
    return false;
  }
  // Return true to swallow the pending exception and continue at the next
  // instruction ("we monitor the unhandled exception in the interpreter and
  // tolerate it by directly clearing the exception").
  virtual bool tolerate_exception(RtMethod& method, uint32_t dex_pc) {
    (void)method, (void)dex_pc;
    return false;
  }

  // --- reflection (ART resolves the target at runtime; DexLego records it) ---
  // Fired when Method.invoke dispatches: `caller` executes the reflective
  // call at `dex_pc` and ART resolved it to `target`.
  virtual void on_reflective_invoke(RtMethod& caller, uint32_t dex_pc,
                                    RtMethod& target) {
    (void)caller, (void)dex_pc, (void)target;
  }
};

}  // namespace dexlego::rt
