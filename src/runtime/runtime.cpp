#include "src/runtime/runtime.h"

#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/support/log.h"

namespace dexlego::rt {

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(cfg), linker_(*this), interp_(*this) {
  install_framework_builtins(*this);
}

void Runtime::register_native(std::string full_name, NativeFn fn) {
  natives_[std::move(full_name)] = std::move(fn);
}

const NativeFn* Runtime::find_native(const std::string& full_name) const {
  auto it = natives_.find(full_name);
  return it == natives_.end() ? nullptr : &it->second;
}

void Runtime::register_builtin(std::string key, NativeFn fn) {
  builtins_[std::move(key)] = std::move(fn);
}

const NativeFn* Runtime::find_builtin(const std::string& class_descriptor,
                                      const std::string& name) const {
  auto it = builtins_.find(class_descriptor + "->" + name);
  if (it != builtins_.end()) return &it->second;
  it = builtins_.find("*->" + name);
  return it == builtins_.end() ? nullptr : &it->second;
}

void Runtime::install(dex::Apk apk) {
  apk_ = std::move(apk);
  // Whichever container the app ships — classes.ldex or real classes.dex
  // (multidex parts merged) — the linker sees one in-memory model.
  dex::DexFile file = dex::load_classes(*apk_);
  const char* entry = apk_->has_entry(dex::Apk::kClassesEntry)
                          ? dex::Apk::kClassesEntry
                          : "classes.dex";
  linker_.register_dex(std::move(file), entry);
}

ExecOutcome Runtime::launch() {
  ExecOutcome outcome;
  if (!apk_) {
    outcome.aborted = true;
    outcome.abort_reason = "no app installed";
    return outcome;
  }
  dex::Manifest manifest = apk_->manifest();
  RtClass* cls = linker_.ensure_initialized(manifest.entry_class);
  if (cls == nullptr) {
    outcome.aborted = true;
    outcome.abort_reason = "entry class not found: " + manifest.entry_class;
    return outcome;
  }
  activity_ = heap_.new_instance(cls, cls->descriptor, cls->instance_slot_count);
  if (RtMethod* ctor = cls->find_declared("<init>", "()V")) {
    outcome = interp_.invoke(*ctor, {Value::Ref(activity_)});
    if (!outcome.completed) return outcome;
  }
  for (const char* stage : {"onCreate", "onStart", "onResume"}) {
    if (RtMethod* m = cls->find_dispatch(stage, "()V")) {
      outcome = interp_.invoke(*m, {Value::Ref(activity_)});
      if (!outcome.completed) return outcome;
    }
  }
  outcome.completed = true;
  return outcome;
}

ExecOutcome Runtime::call_activity_method(const std::string& name) {
  ExecOutcome outcome;
  if (activity_ == nullptr || activity_->klass == nullptr) {
    outcome.aborted = true;
    outcome.abort_reason = "no activity";
    return outcome;
  }
  RtMethod* m = activity_->klass->find_dispatch(name, "()V");
  if (m == nullptr) {
    outcome.aborted = true;
    outcome.abort_reason = "no such activity method: " + name;
    return outcome;
  }
  return interp_.invoke(*m, {Value::Ref(activity_)});
}

Object* Runtime::ui_view(int id) {
  auto it = ui_views_.find(id);
  if (it != ui_views_.end()) return it->second;
  Object* view = heap_.new_framework("Landroid/view/View;");
  view->bag["id"] = Value::Int(id);
  ui_views_[id] = view;
  return view;
}

void Runtime::ui_set_click_listener(int id, Value listener) {
  click_listeners_[id] = listener;
}

std::vector<int> Runtime::ui_clickable_ids() const {
  std::vector<int> ids;
  ids.reserve(click_listeners_.size());
  for (const auto& [id, _] : click_listeners_) ids.push_back(id);
  return ids;
}

ExecOutcome Runtime::fire_click(int id) {
  ExecOutcome outcome;
  auto it = click_listeners_.find(id);
  if (it == click_listeners_.end() || it->second.is_null_ref()) {
    outcome.aborted = true;
    outcome.abort_reason = "no click listener for id " + std::to_string(id);
    return outcome;
  }
  Object* listener = it->second.ref;
  if (listener == nullptr || listener->klass == nullptr) {
    outcome.aborted = true;
    outcome.abort_reason = "framework-only listener";
    return outcome;
  }
  // onClick(View) preferred, onClick() accepted.
  if (RtMethod* m = listener->klass->find_dispatch("onClick", "(L)V")) {
    return interp_.invoke(*m, {Value::Ref(listener), Value::Ref(ui_view(id))});
  }
  if (RtMethod* m = listener->klass->find_dispatch("onClick", "()V")) {
    return interp_.invoke(*m, {Value::Ref(listener)});
  }
  outcome.aborted = true;
  outcome.abort_reason = "listener has no onClick";
  return outcome;
}

void Runtime::set_text_input(int id, std::string text) {
  text_inputs_[id] = std::move(text);
}

std::string Runtime::text_input(int id) const {
  auto it = text_inputs_.find(id);
  return it == text_inputs_.end() ? std::string() : it->second;
}

ExecOutcome Runtime::start_activity_obj(Object* intent) {
  ExecOutcome outcome;
  auto it = intent->bag.find("target");
  if (it == intent->bag.end() || it->second.is_null_ref()) {
    outcome.aborted = true;
    outcome.abort_reason = "intent without target";
    return outcome;
  }
  std::string target = it->second.ref->str;
  RtClass* cls = linker_.ensure_initialized(target);
  if (cls == nullptr) {
    outcome.aborted = true;
    outcome.abort_reason = "intent target not found: " + target;
    return outcome;
  }
  Object* prev_intent = current_intent_;
  Object* prev_activity = activity_;
  current_intent_ = intent;
  activity_ = heap_.new_instance(cls, cls->descriptor, cls->instance_slot_count);
  if (RtMethod* ctor = cls->find_declared("<init>", "()V")) {
    interp_.call(*ctor, {Value::Ref(activity_)});
  }
  if (RtMethod* m = cls->find_dispatch("onCreate", "()V")) {
    Interpreter::CallResult r = interp_.call(*m, {Value::Ref(activity_)});
    if (r.exception != nullptr) {
      outcome.uncaught = true;
      outcome.exception_type = r.exception->class_descriptor;
      current_intent_ = prev_intent;
      activity_ = prev_activity;
      return outcome;
    }
  }
  current_intent_ = prev_intent;
  activity_ = prev_activity;
  outcome.completed = true;
  return outcome;
}

std::string render_value(const Value& v) {
  if (!v.is_ref()) return std::to_string(v.i);
  if (v.ref == nullptr) return "null";
  if (v.ref->kind == Object::Kind::kString) return v.ref->str;
  return v.ref->class_descriptor;
}

void Runtime::record_sink(const std::string& sink, std::span<const Value> args) {
  SinkEvent ev;
  ev.sink = sink;
  for (const Value& v : args) {
    ev.taint |= v.taint | (v.ref != nullptr ? v.ref->taint : 0u);
    if (!ev.detail.empty()) ev.detail += ",";
    ev.detail += render_value(v);
  }
  sink_events_.push_back(std::move(ev));
}

std::vector<Runtime::SinkEvent> Runtime::leaks() const {
  std::vector<SinkEvent> out;
  for (const SinkEvent& ev : sink_events_) {
    if (ev.taint != 0) out.push_back(ev);
  }
  return out;
}

void Runtime::fs_write(const std::string& path, std::string data) {
  files_[path] = std::move(data);
}

std::optional<std::string> Runtime::fs_read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

const DexImage& Runtime::load_dex_buffer(std::span<const uint8_t> bytes,
                                         std::string source) {
  // Unpackers hand over whatever they decrypted — LDEX or real DEX.
  dex::DexFile file = dex::load_any(bytes);
  return linker_.register_dex(std::move(file), std::move(source));
}

void Runtime::run_clinit(RtMethod& clinit) {
  Interpreter::CallResult r = interp_.call(clinit, {});
  if (r.exception != nullptr) {
    DL_WARN << "exception in <clinit> of "
            << (clinit.declaring ? clinit.declaring->descriptor : "?") << ": "
            << r.exception->class_descriptor;
  }
}

Value Runtime::framework_marshal(const Value& v) {
  if (cfg_.taint_through_framework) return v;
  Value stripped = v;
  stripped.taint = 0;
  if (stripped.ref != nullptr && stripped.ref->kind == Object::Kind::kString &&
      stripped.ref->taint != 0) {
    stripped.ref = heap_.new_string(stripped.ref->str, 0);
  }
  return stripped;
}

}  // namespace dexlego::rt
