// Per-instruction evaluation helpers shared by the interpreter's dispatch
// tiers (src/runtime/interp.cpp's switch loop and the direct-threaded core
// in src/runtime/interp_threaded.cpp). Keeping exactly one definition of
// the comparison/taint semantics is part of what makes the tiers
// observationally equivalent (docs/ARCHITECTURE.md invariant 13).
#pragma once

#include "src/bytecode/opcodes.h"
#include "src/runtime/object.h"
#include "src/runtime/value.h"

namespace dexlego::rt::iops {

inline uint32_t effective_taint(const Value& v) {
  return v.taint | (v.ref != nullptr ? v.ref->taint : 0u);
}

inline bool eval_if(bc::Op op, const Value& a, const Value& b) {
  using bc::Op;
  // eq/ne compare references when both operands are refs; all other
  // comparisons use the integer test view.
  if ((op == Op::kIfEq || op == Op::kIfNe) && a.is_ref() && b.is_ref()) {
    // String comparisons in samples use equals(); == on refs is identity.
    bool eq = a.ref == b.ref;
    return op == Op::kIfEq ? eq : !eq;
  }
  int64_t x = a.test_value(), y = b.test_value();
  switch (op) {
    case Op::kIfEq: return x == y;
    case Op::kIfNe: return x != y;
    case Op::kIfLt: return x < y;
    case Op::kIfGe: return x >= y;
    case Op::kIfGt: return x > y;
    case Op::kIfLe: return x <= y;
    default: return false;
  }
}

inline bool eval_ifz(bc::Op op, const Value& a) {
  using bc::Op;
  int64_t x = a.test_value();
  switch (op) {
    case Op::kIfEqz: return x == 0;
    case Op::kIfNez: return x != 0;
    case Op::kIfLtz: return x < 0;
    case Op::kIfGez: return x >= 0;
    case Op::kIfGtz: return x > 0;
    case Op::kIfLez: return x <= 0;
    default: return false;
  }
}

}  // namespace dexlego::rt::iops
