#include "src/runtime/object.h"

namespace dexlego::rt {

Object* Heap::new_instance(RtClass* klass, std::string descriptor,
                           size_t field_slots) {
  auto obj = std::make_unique<Object>();
  obj->kind = Object::Kind::kInstance;
  obj->klass = klass;
  obj->class_descriptor = std::move(descriptor);
  obj->fields.assign(field_slots, Value::Null());
  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

Object* Heap::new_string(std::string s, uint32_t taint) {
  auto obj = std::make_unique<Object>();
  obj->kind = Object::Kind::kString;
  obj->class_descriptor = "Ljava/lang/String;";
  obj->str = std::move(s);
  obj->taint = taint;
  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

Object* Heap::intern_string(const std::string& s) {
  auto it = interned_.find(s);
  if (it != interned_.end()) return it->second;
  Object* obj = new_string(s);
  interned_.emplace(s, obj);
  return obj;
}

Object* Heap::new_array(std::string descriptor, size_t length) {
  auto obj = std::make_unique<Object>();
  obj->kind = Object::Kind::kArray;
  obj->class_descriptor = std::move(descriptor);
  obj->elems.assign(length, Value::Null());
  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

Object* Heap::new_framework(std::string descriptor) {
  auto obj = std::make_unique<Object>();
  obj->kind = Object::Kind::kInstance;
  obj->class_descriptor = std::move(descriptor);
  objects_.push_back(std::move(obj));
  return objects_.back().get();
}

}  // namespace dexlego::rt
