// Runtime value model. Every register slot, field slot and array element is
// a Value: a 64-bit integer or an object reference, carrying a taint bitmask
// so the interpreter doubles as the TaintDroid/TaintART-analog dynamic taint
// substrate (Table IV).
#pragma once

#include <cstdint>

namespace dexlego::rt {

struct Object;

// Taint source bits (shared with the static analyzers' source registry).
enum TaintBit : uint32_t {
  kTaintDeviceId = 1u << 0,   // TelephonyManager.getDeviceId (IMEI)
  kTaintLocation = 1u << 1,   // LocationManager.getLastKnownLocation
  kTaintSsid = 1u << 2,       // WifiInfo.getSSID
  kTaintSensitive = 1u << 3,  // generic getSensitiveData (Code 1)
  kTaintContacts = 1u << 4,
  kTaintSms = 1u << 5,
};

struct Value {
  enum class Kind : uint8_t { kInt = 0, kRef = 1 };

  Kind kind = Kind::kInt;
  int64_t i = 0;
  Object* ref = nullptr;
  uint32_t taint = 0;

  static Value Int(int64_t v, uint32_t taint = 0) {
    Value val;
    val.kind = Kind::kInt;
    val.i = v;
    val.taint = taint;
    return val;
  }
  static Value Ref(Object* obj, uint32_t taint = 0) {
    Value val;
    val.kind = Kind::kRef;
    val.ref = obj;
    val.taint = taint;
    return val;
  }
  static Value Null() { return Ref(nullptr); }

  bool is_ref() const { return kind == Kind::kRef; }
  bool is_null_ref() const { return kind == Kind::kRef && ref == nullptr; }

  // Branch-test view: ints test their value, refs test non-nullness.
  int64_t test_value() const { return kind == Kind::kInt ? i : (ref ? 1 : 0); }
};

}  // namespace dexlego::rt
