// Per-method predecoded execution cache — the fast half of the
// interpreter's cached dispatch mode (docs/INTERPRETER.md). An RtMethod's
// cache holds one bc::PredecodedUnit per code unit (decode-once via
// bc::predecode_linear, lazily filled for hostile jump targets) plus one
// monomorphic inline-cache site per pc for invoke-virtual dispatch.
//
// DexLego must execute self-modifying code faithfully, so the cache is
// invalidation-correct by three layers:
//   1. wholesale — the cache is stamped with the backing array's identity
//      (data pointer + size) and the method's code generation; replacing or
//      resizing the array, or RtMethod::invalidate_code_cache(), orphans it
//      and the next step rebuilds;
//   2. targeted — RtMethod::patch_code_unit() bumps the generation, clears
//      exactly the slots whose decode can span the written unit, and
//      re-stamps the cache, so announced per-unit patches never force a
//      full rebuild;
//   3. guarded — every slot re-checks the source units its decode consumed
//      (PredecodedUnit::src_matches) before being served, so even a direct
//      un-announced write to code->insns (hostile natives do not announce)
//      is observed on the very next execution of the patched pc.
// Layers 1+2 keep the fast path fast; layer 3 makes correctness independent
// of patch discipline. tests/interp_cache_test.cpp pins all three against
// the decode-every-step baseline.
//
// For the direct-threaded tier (DispatchMode::kThreaded) the cache also
// keeps one ThreadedSlot per code unit: the dispatch handler address
// resolved at predecode time plus superinstruction fusion state. All three
// invalidation layers extend to fusion spans — a fused head is split back
// to a plain slot whenever any unit its pair covers is patched or
// redecoded, and the fused fast path additionally re-checks the tail
// slot's own source-unit guard before every fused execution.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/bytecode/disasm.h"

namespace dexlego::rt {

struct RtClass;
struct RtMethod;

// Monomorphic inline-cache site for an invoke-virtual pc: the receiver
// class seen last time and the method it dispatched to. Valid because an
// RtClass's method table and super chain are immutable after linking; the
// site is cleared whenever its slot redecodes (a self-mod write may have
// changed the method index under the same pc).
struct InlineSite {
  RtClass* klass = nullptr;
  RtMethod* target = nullptr;
};

// Extended opcode space for the threaded tier's handler table: one entry
// per plain opcode, then one per superinstruction family. Slots store the
// extended opcode so the portable (non-computed-goto) build can dispatch
// through a dense switch over the same numbering.
inline constexpr size_t kPlainXopCount = static_cast<size_t>(bc::Op::kMaxOp) + 1;
inline constexpr size_t kXopCount = kPlainXopCount + (bc::kFuseKindCount - 1);
inline constexpr uint8_t fused_xop(bc::FuseKind kind) {
  return static_cast<uint8_t>(kPlainXopCount + static_cast<size_t>(kind) - 1);
}

// Direct-threaded dispatch state for one code unit, parallel to the
// PredecodedUnit array. `handler` is the computed-goto label address for
// `xop` (null in builds without computed goto — dispatch falls back to a
// switch over `xop`). A fused slot additionally names the tail instruction
// it absorbed; the tail's decoded form is NOT duplicated here — fused
// execution reads it from the tail's own PredecodedUnit, so the tail's
// source-unit guard keeps protecting it.
struct ThreadedSlot {
  const void* handler = nullptr;
  uint32_t tail_pc = 0;       // meaningful only when fused
  uint16_t span = 0;          // code units head+tail cover when fused
  uint8_t xop = 0;            // plain op, or fused_xop(kind) when fused
  bool fused = false;
  bool head_regs_ok = false;  // every head register operand is in-bounds
  bool tail_regs_ok = false;  // same for the fused tail
};

class PredecodedCode {
 public:
  // Churn cap: a hostile native that replaces or resizes the instruction
  // array on every step would otherwise force an O(method) rebuild per
  // instruction — quadratic, adversary-controlled work. After this many
  // rebuilds of one cache the interpreter degrades the method to
  // decode-every-step (semantically identical; it IS the baseline).
  // Announced structural edits reset the cache wholesale
  // (RtMethod::invalidate_code_cache) and start a fresh count.
  static constexpr uint64_t kMaxRebuilds = 64;

  // Fusion coverage cap: superinstructions are selected hottest-family-
  // first from the predecoder's static profile (bc::fusion_profile); the
  // cap bounds per-method fusion state on pathological inputs.
  static constexpr size_t kMaxFusedPerMethod = 256;
  // No fused pair spans more code units than the widest head + widest tail
  // (const-wide + invoke); split scans are bounded by this.
  static constexpr size_t kMaxFuseSpan = 10;

  struct Stats {
    uint64_t rebuilds = 0;        // full linear-sweep predecodes
    uint64_t lazy_decodes = 0;    // unmapped pcs decoded on demand
    uint64_t guard_redecodes = 0; // slots invalidated by the unit guard
    uint64_t fusions = 0;         // fused pairs formed (across rebuilds)
    uint64_t fusion_splits = 0;   // fused heads split by patch/redecode
  };

  // True when the cache still describes `code` at `generation`: same
  // backing array identity, no wholesale invalidation since the build.
  bool valid_for(std::span<const uint16_t> code, uint64_t generation) const {
    return data_ == code.data() && size_ == code.size() &&
           generation_ == generation;
  }

  // Full batch predecode of `code` (bc::predecode_linear) and re-stamp.
  void rebuild(std::span<const uint16_t> code, uint64_t generation);

  // The decoded instruction at pc (pc < code.size() is the caller's bounds
  // check). Serves the memoized slot when its source units still match,
  // otherwise decodes and re-memoizes; throws support::ParseError exactly
  // like bc::decode_at on garbage. The returned reference is stable until
  // the next rebuild() or destruction — slot invalidation and re-memoizing
  // never move the slot array.
  const bc::Insn& fetch(std::span<const uint16_t> code, size_t pc) {
    bc::PredecodedUnit& unit = units_[pc];
    if (unit.mapped && unit.src_matches(code, pc)) return unit.insn;
    return decode_slow(code, pc);
  }

  InlineSite& inline_site(size_t pc) { return sites_[pc]; }

  // Targeted invalidation: clears every slot whose decode can span the
  // written unit (instructions start at most kMaxGuardUnits-1 units before
  // it) and its inline-cache site, splits every fused superinstruction
  // whose span covers the unit, then re-stamps the generation.
  void patch_unit(size_t index, uint64_t new_generation);

  const Stats& stats() const { return stats_; }

  // --- threaded tier -------------------------------------------------------
  // Arms the threaded slot array: `handlers` is the interpreter's extended
  // handler-address table indexed by xop (null in builds without computed
  // goto), `registers` the frame's register count (precomputes the per-slot
  // register-bounds flags), `fuse` whether to form superinstructions.
  // Prepares slots for already-decoded units immediately; rebuild() and
  // lazy decodes keep them in sync afterwards.
  void set_threaded(const void* const* handlers, uint16_t registers, bool fuse);
  bool threaded() const { return threaded_; }

  const ThreadedSlot& threaded_slot(size_t pc) const { return tslots_[pc]; }
  const bc::PredecodedUnit& unit(size_t pc) const { return units_[pc]; }
  // Raw slot arrays for the threaded dispatch loop's hot path. Valid until
  // the next rebuild(); in-place mutation (lazy decodes, patch_unit,
  // split_spanning) never reallocates, so pointers taken after rebuild()
  // stay good for the whole execution.
  const bc::PredecodedUnit* units_data() const { return units_.data(); }
  const ThreadedSlot* threaded_data() const { return tslots_.data(); }

  // --- fusion introspection (tests, bench) ---------------------------------
  bool is_fused(size_t pc) const {
    return pc < tslots_.size() && tslots_[pc].fused && units_[pc].mapped;
  }
  struct FusedSpan {
    size_t pc = 0;       // head
    size_t tail_pc = 0;
    size_t end_pc = 0;   // one past the pair's last code unit
  };
  std::vector<FusedSpan> fused_spans() const;

 private:
  // Cold half of fetch(): lazy decode of unmapped slots and redecode of
  // guard-invalidated ones.
  const bc::Insn& decode_slow(std::span<const uint16_t> code, size_t pc);

  // Threaded-slot maintenance (no-ops until set_threaded()).
  void prepare_slots();
  void fill_plain_slot(size_t pc);
  void split_spanning(size_t index);

  std::vector<bc::PredecodedUnit> units_;
  std::vector<InlineSite> sites_;
  std::vector<ThreadedSlot> tslots_;
  const uint16_t* data_ = nullptr;
  size_t size_ = 0;
  uint64_t generation_ = 0;
  Stats stats_;
  const void* const* handlers_ = nullptr;
  uint16_t registers_ = 0;
  bool fuse_ = false;
  bool threaded_ = false;
};

}  // namespace dexlego::rt
