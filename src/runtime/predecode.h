// Per-method predecoded execution cache — the fast half of the
// interpreter's cached dispatch mode (docs/INTERPRETER.md). An RtMethod's
// cache holds one bc::PredecodedUnit per code unit (decode-once via
// bc::predecode_linear, lazily filled for hostile jump targets) plus one
// monomorphic inline-cache site per pc for invoke-virtual dispatch.
//
// DexLego must execute self-modifying code faithfully, so the cache is
// invalidation-correct by three layers:
//   1. wholesale — the cache is stamped with the backing array's identity
//      (data pointer + size) and the method's code generation; replacing or
//      resizing the array, or RtMethod::invalidate_code_cache(), orphans it
//      and the next step rebuilds;
//   2. targeted — RtMethod::patch_code_unit() bumps the generation, clears
//      exactly the slots whose decode can span the written unit, and
//      re-stamps the cache, so announced per-unit patches never force a
//      full rebuild;
//   3. guarded — every slot re-checks the source units its decode consumed
//      (PredecodedUnit::src_matches) before being served, so even a direct
//      un-announced write to code->insns (hostile natives do not announce)
//      is observed on the very next execution of the patched pc.
// Layers 1+2 keep the fast path fast; layer 3 makes correctness independent
// of patch discipline. tests/interp_cache_test.cpp pins all three against
// the decode-every-step baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/bytecode/disasm.h"

namespace dexlego::rt {

struct RtClass;
struct RtMethod;

// Monomorphic inline-cache site for an invoke-virtual pc: the receiver
// class seen last time and the method it dispatched to. Valid because an
// RtClass's method table and super chain are immutable after linking; the
// site is cleared whenever its slot redecodes (a self-mod write may have
// changed the method index under the same pc).
struct InlineSite {
  RtClass* klass = nullptr;
  RtMethod* target = nullptr;
};

class PredecodedCode {
 public:
  // Churn cap: a hostile native that replaces or resizes the instruction
  // array on every step would otherwise force an O(method) rebuild per
  // instruction — quadratic, adversary-controlled work. After this many
  // rebuilds of one cache the interpreter degrades the method to
  // decode-every-step (semantically identical; it IS the baseline).
  // Announced structural edits reset the cache wholesale
  // (RtMethod::invalidate_code_cache) and start a fresh count.
  static constexpr uint64_t kMaxRebuilds = 64;

  struct Stats {
    uint64_t rebuilds = 0;        // full linear-sweep predecodes
    uint64_t lazy_decodes = 0;    // unmapped pcs decoded on demand
    uint64_t guard_redecodes = 0; // slots invalidated by the unit guard
  };

  // True when the cache still describes `code` at `generation`: same
  // backing array identity, no wholesale invalidation since the build.
  bool valid_for(std::span<const uint16_t> code, uint64_t generation) const {
    return data_ == code.data() && size_ == code.size() &&
           generation_ == generation;
  }

  // Full batch predecode of `code` (bc::predecode_linear) and re-stamp.
  void rebuild(std::span<const uint16_t> code, uint64_t generation);

  // The decoded instruction at pc (pc < code.size() is the caller's bounds
  // check). Serves the memoized slot when its source units still match,
  // otherwise decodes and re-memoizes; throws support::ParseError exactly
  // like bc::decode_at on garbage. The returned reference is stable until
  // the next rebuild() or destruction — slot invalidation and re-memoizing
  // never move the slot array.
  const bc::Insn& fetch(std::span<const uint16_t> code, size_t pc) {
    bc::PredecodedUnit& unit = units_[pc];
    if (unit.mapped && unit.src_matches(code, pc)) return unit.insn;
    return decode_slow(code, pc);
  }

  InlineSite& inline_site(size_t pc) { return sites_[pc]; }

  // Targeted invalidation: clears every slot whose decode can span the
  // written unit (instructions start at most kMaxGuardUnits-1 units before
  // it) and its inline-cache site, then re-stamps the generation.
  void patch_unit(size_t index, uint64_t new_generation);

  const Stats& stats() const { return stats_; }

 private:
  // Cold half of fetch(): lazy decode of unmapped slots and redecode of
  // guard-invalidated ones.
  const bc::Insn& decode_slow(std::span<const uint16_t> code, size_t pc);

  std::vector<bc::PredecodedUnit> units_;
  std::vector<InlineSite> sites_;
  const uint16_t* data_ = nullptr;
  size_t size_ = 0;
  uint64_t generation_ = 0;
  Stats stats_;
};

}  // namespace dexlego::rt
