#include "src/runtime/source_sink.h"

#include <array>
#include <string_view>

namespace dexlego::rt {

namespace {
constexpr std::array<SourceSpec, 6> kSources = {{
    {"Landroid/telephony/TelephonyManager;", "getDeviceId", kTaintDeviceId,
     "356938035643809"},
    {"Landroid/location/LocationManager;", "getLastKnownLocation", kTaintLocation,
     "40.7128,-74.0060"},
    {"Landroid/net/wifi/WifiInfo;", "getSSID", kTaintSsid, "CorpWiFi-5G"},
    {"Ldexlego/api/Source;", "secret", kTaintSensitive, "top-secret-data"},
    {"Landroid/provider/ContactsContract;", "query", kTaintContacts,
     "alice:555-0100"},
    {"Landroid/telephony/SmsManager;", "getAllMessages", kTaintSms,
     "msg:hello-world"},
}};

constexpr std::array<SinkSpec, 6> kSinks = {{
    {"Landroid/telephony/SmsManager;", "sendTextMessage", "sms"},
    {"Landroid/util/Log;", "i", "log"},
    {"Landroid/util/Log;", "d", "log"},
    {"Landroid/util/Log;", "e", "log"},
    {"Ldexlego/api/Network;", "send", "net"},
    {"Ljava/net/HttpURLConnection;", "post", "net"},
}};
}  // namespace

std::span<const SourceSpec> taint_sources() { return kSources; }
std::span<const SinkSpec> taint_sinks() { return kSinks; }

const SourceSpec* find_source(std::string_view class_descriptor,
                              std::string_view method) {
  for (const SourceSpec& s : kSources) {
    if (class_descriptor == s.class_descriptor && method == s.method) return &s;
  }
  return nullptr;
}

const SinkSpec* find_sink(std::string_view class_descriptor,
                          std::string_view method) {
  for (const SinkSpec& s : kSinks) {
    if (class_descriptor == s.class_descriptor && method == s.method) return &s;
  }
  return nullptr;
}

}  // namespace dexlego::rt
