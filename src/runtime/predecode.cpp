#include "src/runtime/predecode.h"

#include "src/bytecode/insn.h"

namespace dexlego::rt {

void PredecodedCode::rebuild(std::span<const uint16_t> code,
                             uint64_t generation) {
  units_ = bc::predecode_linear(code);
  sites_.assign(code.size(), InlineSite{});
  data_ = code.data();
  size_ = code.size();
  generation_ = generation;
  ++stats_.rebuilds;
}

const bc::Insn& PredecodedCode::decode_slow(std::span<const uint16_t> code,
                                            size_t pc) {
  bc::PredecodedUnit& unit = units_[pc];
  if (unit.mapped) {
    ++stats_.guard_redecodes;  // un-announced in-place write caught
  } else {
    ++stats_.lazy_decodes;  // jump target the linear sweep did not map
  }
  bc::Insn decoded = bc::decode_at(code, pc);  // may throw; slot unchanged
  unit.memoize(code, pc, decoded, bc::consumed_units(decoded));
  sites_[pc] = InlineSite{};  // the decode changed; drop the dispatch cache
  return unit.insn;
}

void PredecodedCode::patch_unit(size_t index, uint64_t new_generation) {
  size_t first =
      index >= bc::PredecodedUnit::kMaxGuardUnits - 1
          ? index - (bc::PredecodedUnit::kMaxGuardUnits - 1)
          : 0;
  for (size_t pc = first; pc <= index && pc < units_.size(); ++pc) {
    units_[pc].mapped = false;
    sites_[pc] = InlineSite{};
  }
  generation_ = new_generation;
}

}  // namespace dexlego::rt
