#include "src/runtime/predecode.h"

#include <algorithm>
#include <array>

#include "src/bytecode/insn.h"

namespace dexlego::rt {

namespace {

// Whether every register operand of `insn` is in-bounds for a frame of
// `registers` registers. Slots that pass skip the checked regs.at() path in
// the threaded tier; slots that fail keep the checked path so hostile
// operands raise byte-identical VerifyErrors to the baseline tier.
bool regs_in_bounds(const bc::Insn& insn, uint16_t registers) {
  using bc::Op;
  auto ok = [registers](uint8_t r) { return r < registers; };
  switch (insn.op) {
    case Op::kNop:
    case Op::kReturnVoid:
    case Op::kGoto:
    case Op::kPayload:
      return true;  // no register operands
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic: {
      // `a` is the argument count, not a register.
      for (uint8_t i = 0; i < insn.a && i < insn.args.size(); ++i) {
        if (!ok(insn.args[i])) return false;
      }
      return true;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp:
    case Op::kAget:
    case Op::kAput:
      return ok(insn.a) && ok(insn.b) && ok(insn.c);
    case Op::kMove:
    case Op::kIfEq:
    case Op::kIfNe:
    case Op::kIfLt:
    case Op::kIfGe:
    case Op::kIfGt:
    case Op::kIfLe:
    case Op::kAddLit8:
    case Op::kMulLit8:
    case Op::kNeg:
    case Op::kNot:
    case Op::kNewArray:
    case Op::kArrayLength:
    case Op::kIget:
    case Op::kIput:
    case Op::kInstanceOf:
      return ok(insn.a) && ok(insn.b);
    default:
      return ok(insn.a);  // single-register formats
  }
}

}  // namespace

void PredecodedCode::rebuild(std::span<const uint16_t> code,
                             uint64_t generation) {
  units_ = bc::predecode_linear(code);
  sites_.assign(code.size(), InlineSite{});
  data_ = code.data();
  size_ = code.size();
  generation_ = generation;
  ++stats_.rebuilds;
  if (threaded_) prepare_slots();
}

const bc::Insn& PredecodedCode::decode_slow(std::span<const uint16_t> code,
                                            size_t pc) {
  bc::PredecodedUnit& unit = units_[pc];
  if (unit.mapped) {
    ++stats_.guard_redecodes;  // un-announced in-place write caught
  } else {
    ++stats_.lazy_decodes;  // jump target the linear sweep did not map
  }
  bc::Insn decoded = bc::decode_at(code, pc);  // may throw; slot unchanged
  unit.memoize(code, pc, decoded, bc::consumed_units(decoded));
  sites_[pc] = InlineSite{};  // the decode changed; drop the dispatch cache
  if (threaded_) {
    // The units under this pc may have changed meaning: any fused pair that
    // spans it can no longer trust its recorded family, and this slot
    // itself re-enters as a plain (unfused) one. Re-fusion waits for the
    // next full rebuild — lazy decodes are cold by definition.
    split_spanning(pc);
    fill_plain_slot(pc);
  }
  return unit.insn;
}

void PredecodedCode::patch_unit(size_t index, uint64_t new_generation) {
  if (threaded_) split_spanning(index);
  size_t first =
      index >= bc::PredecodedUnit::kMaxGuardUnits - 1
          ? index - (bc::PredecodedUnit::kMaxGuardUnits - 1)
          : 0;
  for (size_t pc = first; pc <= index && pc < units_.size(); ++pc) {
    units_[pc].mapped = false;
    sites_[pc] = InlineSite{};
  }
  generation_ = new_generation;
}

void PredecodedCode::set_threaded(const void* const* handlers,
                                  uint16_t registers, bool fuse) {
  handlers_ = handlers;
  registers_ = registers;
  fuse_ = fuse;
  threaded_ = true;
  prepare_slots();
}

void PredecodedCode::fill_plain_slot(size_t pc) {
  ThreadedSlot& slot = tslots_[pc];
  slot = ThreadedSlot{};
  slot.xop = static_cast<uint8_t>(units_[pc].insn.op);
  slot.handler = handlers_ != nullptr ? handlers_[slot.xop] : nullptr;
  slot.head_regs_ok = regs_in_bounds(units_[pc].insn, registers_);
}

void PredecodedCode::prepare_slots() {
  tslots_.assign(units_.size(), ThreadedSlot{});
  for (size_t pc = 0; pc < units_.size(); ++pc) {
    if (units_[pc].mapped) fill_plain_slot(pc);
  }
  if (!fuse_) return;

  // Superinstruction selection: families hottest-first from the static
  // profile, all legal pairs within a family, bounded by the per-method cap.
  bc::FusionProfile profile = bc::fusion_profile(units_);
  std::array<bc::FuseKind, 3> order = {bc::FuseKind::kCmpBranch,
                                       bc::FuseKind::kConstMove,
                                       bc::FuseKind::kIgetInvoke};
  std::stable_sort(order.begin(), order.end(),
                   [&profile](bc::FuseKind a, bc::FuseKind b) {
                     return profile.pairs[static_cast<size_t>(a)] >
                            profile.pairs[static_cast<size_t>(b)];
                   });
  size_t budget = kMaxFusedPerMethod;
  for (bc::FuseKind kind : order) {
    if (profile.pairs[static_cast<size_t>(kind)] == 0) continue;
    for (size_t pc = 0; pc < units_.size() && budget > 0; ++pc) {
      if (!units_[pc].mapped || tslots_[pc].fused) continue;
      size_t head_len = bc::consumed_units(units_[pc].insn);
      size_t tail = pc + head_len;
      if (tail >= units_.size() || !units_[tail].mapped) continue;
      if (bc::fuse_kind(units_[pc].insn.op, units_[tail].insn.op) != kind) {
        continue;
      }
      ThreadedSlot& slot = tslots_[pc];
      slot.fused = true;
      slot.tail_pc = static_cast<uint32_t>(tail);
      slot.span = static_cast<uint16_t>(
          head_len + bc::consumed_units(units_[tail].insn));
      slot.xop = fused_xop(kind);
      slot.handler = handlers_ != nullptr ? handlers_[slot.xop] : nullptr;
      slot.tail_regs_ok = regs_in_bounds(units_[tail].insn, registers_);
      --budget;
      ++stats_.fusions;
    }
  }
}

void PredecodedCode::split_spanning(size_t index) {
  size_t first = index >= kMaxFuseSpan - 1 ? index - (kMaxFuseSpan - 1) : 0;
  for (size_t head = first; head <= index && head < tslots_.size(); ++head) {
    ThreadedSlot& slot = tslots_[head];
    if (!slot.fused || head + slot.span <= index) continue;
    // Split back to a plain slot for the head instruction. The memoized
    // head decode (if still mapped) stays valid — only the pairing dies.
    slot.fused = false;
    slot.tail_pc = 0;
    slot.span = 0;
    slot.xop = static_cast<uint8_t>(units_[head].insn.op);
    slot.handler = handlers_ != nullptr ? handlers_[slot.xop] : nullptr;
    ++stats_.fusion_splits;
  }
}

std::vector<PredecodedCode::FusedSpan> PredecodedCode::fused_spans() const {
  std::vector<FusedSpan> spans;
  for (size_t pc = 0; pc < tslots_.size(); ++pc) {
    if (!is_fused(pc)) continue;
    spans.push_back({pc, tslots_[pc].tail_pc, pc + tslots_[pc].span});
  }
  return spans;
}

}  // namespace dexlego::rt
