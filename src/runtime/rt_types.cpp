#include "src/runtime/rt_types.h"

namespace dexlego::rt {

std::string RtMethod::full_name() const {
  return (declaring ? declaring->descriptor : std::string("?")) + "->" + name;
}

RtMethod* RtClass::find_declared(std::string_view name, std::string_view shorty) {
  for (auto& m : methods) {
    if (m->name == name && m->shorty == shorty) return m.get();
  }
  return nullptr;
}

RtMethod* RtClass::find_declared(std::string_view name) {
  for (auto& m : methods) {
    if (m->name == name) return m.get();
  }
  return nullptr;
}

RtMethod* RtClass::find_dispatch(std::string_view name, std::string_view shorty) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (RtMethod* m = cls->find_declared(name, shorty)) return m;
  }
  // Retry by name only: samples sometimes call with a compatible shorty
  // (e.g. Object vs String parameters), mirroring erased generics.
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (RtMethod* m = cls->find_declared(name)) return m;
  }
  return nullptr;
}

RtField* RtClass::find_instance_field(std::string_view name) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    for (RtField& f : cls->instance_fields) {
      if (f.name == name) return &f;
    }
  }
  return nullptr;
}

RtField* RtClass::find_static_field(std::string_view name) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    for (RtField& f : cls->static_fields) {
      if (f.name == name) return &f;
    }
  }
  return nullptr;
}

bool RtClass::is_subclass_of(const RtClass* ancestor) const {
  for (const RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (cls == ancestor) return true;
  }
  return false;
}

bool RtClass::has_framework_ancestor(std::string_view ancestor_desc) const {
  for (const RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (cls->super == nullptr && cls->super_descriptor == ancestor_desc) return true;
    if (cls->descriptor == ancestor_desc) return true;
  }
  return false;
}

}  // namespace dexlego::rt
