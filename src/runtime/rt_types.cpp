#include "src/runtime/rt_types.h"

namespace dexlego::rt {

std::string RtMethod::full_name() const {
  return (declaring ? declaring->descriptor : std::string("?")) + "->" + name;
}

void RtMethod::patch_code_unit(size_t index, uint16_t value) {
  if (!code || index >= code->insns.size()) return;
  code->insns[index] = value;
  ++code_generation;
  if (predecoded) predecoded->patch_unit(index, code_generation);
}

void RtMethod::invalidate_code_cache() {
  ++code_generation;
  predecoded.reset();
}

RtMethod* RtClass::find_declared(std::string_view name, std::string_view shorty) {
  for (auto& m : methods) {
    if (m->name == name && m->shorty == shorty) return m.get();
  }
  return nullptr;
}

RtMethod* RtClass::find_declared(std::string_view name) {
  for (auto& m : methods) {
    if (m->name == name) return m.get();
  }
  return nullptr;
}

RtMethod* RtClass::find_dispatch(std::string_view name, std::string_view shorty) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (RtMethod* m = cls->find_declared(name, shorty)) return m;
  }
  // Retry by name only: samples sometimes call with a compatible shorty
  // (e.g. Object vs String parameters), mirroring erased generics. An empty
  // shorty is the reflection model's explicit "any overload" query and keeps
  // first-declared semantics; a concrete shorty that matched nothing only
  // falls back when the name picks a unique overload — several same-name
  // declarations with distinct shorties would dispatch arbitrarily (the
  // same rule as ClassLinker::resolve_method), so that stays unresolved.
  RtMethod* unique = nullptr;
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    for (auto& m : cls->methods) {
      if (m->name != name) continue;
      if (shorty.empty()) return m.get();
      if (unique == nullptr) {
        unique = m.get();
      } else if (m->shorty != unique->shorty) {
        return nullptr;  // ambiguous overload set
      }
    }
  }
  return unique;
}

RtField* RtClass::find_instance_field(std::string_view name) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    for (RtField& f : cls->instance_fields) {
      if (f.name == name) return &f;
    }
  }
  return nullptr;
}

RtField* RtClass::find_static_field(std::string_view name) {
  for (RtClass* cls = this; cls != nullptr; cls = cls->super) {
    for (RtField& f : cls->static_fields) {
      if (f.name == name) return &f;
    }
  }
  return nullptr;
}

bool RtClass::is_subclass_of(const RtClass* ancestor) const {
  for (const RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (cls == ancestor) return true;
  }
  return false;
}

bool RtClass::has_framework_ancestor(std::string_view ancestor_desc) const {
  for (const RtClass* cls = this; cls != nullptr; cls = cls->super) {
    if (cls->super == nullptr && cls->super_descriptor == ancestor_desc) return true;
    if (cls->descriptor == ancestor_desc) return true;
  }
  return false;
}

}  // namespace dexlego::rt
