// Heap objects. The heap is an arena owned by the Runtime — analysis runs
// are short-lived, so objects are reclaimed wholesale when the runtime is
// destroyed (no GC), per DESIGN.md scoping notes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/value.h"

namespace dexlego::rt {

struct RtClass;
struct RtMethod;

struct Object {
  enum class Kind : uint8_t { kInstance, kString, kArray };

  Kind kind = Kind::kInstance;
  RtClass* klass = nullptr;        // null for framework-internal objects
  std::string class_descriptor;    // always set (framework classes have no RtClass)

  std::vector<Value> fields;       // instance slots (kInstance)
  std::string str;                 // payload (kString, StringBuilder buffers)
  std::vector<Value> elems;        // elements (kArray)

  // Generic property bag for framework-backed objects (Intent extras,
  // Bundle contents, View tags, ...). Keyed by property name.
  std::map<std::string, Value> bag;

  // Reflection carriers: Class / java.lang.reflect.Method objects.
  RtClass* class_ref = nullptr;
  RtMethod* method_ref = nullptr;

  // Object-level taint (strings and arrays; merged with Value taint).
  uint32_t taint = 0;
};

class Heap {
 public:
  Object* new_instance(RtClass* klass, std::string descriptor, size_t field_slots);
  Object* new_string(std::string s, uint32_t taint = 0);
  Object* new_array(std::string descriptor, size_t length);
  // Framework-internal object with a property bag (Intent, Class, ...).
  Object* new_framework(std::string descriptor);

  // Literal pool: one shared string object per distinct content, mirroring
  // Dalvik's interned-string identity semantics — two const-string of the
  // same literal (and string-valued static initializers) are reference-
  // equal, so if-eq identity checks on literals behave like on-device.
  // Interned strings carry no taint and are never mutated: StringBuilder
  // buffers are separate instance objects, and the StringBuilder builtins
  // refuse string receivers (a hostile app invoking append on a literal
  // must not rewrite every use site's copy).
  Object* intern_string(const std::string& s);

  size_t object_count() const { return objects_.size(); }

 private:
  std::vector<std::unique_ptr<Object>> objects_;
  std::map<std::string, Object*, std::less<>> interned_;
};

}  // namespace dexlego::rt
