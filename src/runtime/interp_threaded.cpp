// Direct-threaded dispatch tier (DispatchMode::kThreaded) — the mterp
// analog of run_bytecode's switch loop (docs/INTERPRETER.md). Each
// predecoded slot carries the address of its opcode handler, resolved at
// predecode time (PredecodedCode::set_threaded), so steady-state dispatch
// is one indirect goto off the slot instead of a decode + switch. Where
// computed goto is unavailable the same slots carry a dense extended
// opcode and dispatch degrades to a switch over it — a function-pointer
// table in spirit, with identical semantics.
//
// On top of plain threading, hot adjacent pairs execute as fused
// superinstructions (bc::FuseKind): the pair's two handlers run as one
// dispatch with only step accounting in between. Fusion is taken only when
// the run is "quiet" (no instruction/branch hooks subscribed) and both the
// head's and the tail's source-unit guards still hold, so instrumented
// runs and self-modified code fall back to the same per-instruction path
// the kCached tier takes. Every observable — trace order, hook order,
// exception identity and messages, interning, step counting, abort points
// — must match run_bytecode exactly; tests/dispatch_tier_test.cpp and the
// fusion property tests in tests/support_property_test.cpp enforce it
// against kBaseline.
#include <stdexcept>

#include "src/bytecode/insn.h"
#include "src/runtime/interp.h"
#include "src/runtime/interp_ops.h"
#include "src/runtime/runtime.h"
#include "src/support/bytes.h"

// Computed goto is a GNU extension (GCC/Clang). The portable fallback
// dispatches through a switch over ThreadedSlot::xop instead of the stored
// label address; define DEXLEGO_FORCE_SWITCH_DISPATCH to exercise it on a
// GNU toolchain.
#if defined(__GNUC__) && !defined(DEXLEGO_FORCE_SWITCH_DISPATCH)
#define DEXLEGO_COMPUTED_GOTO 1
#else
#define DEXLEGO_COMPUTED_GOTO 0
#endif

#if DEXLEGO_COMPUTED_GOTO
// Handler entry: a label whose address lives in the slot. XCASE expands to
// nothing — the label covers every opcode the table maps to it.
#define OPH(name) H_##name:
#define XCASE(x)
#define GOTO_HANDLER(h, x) goto* (h)
// &&label values can differ between clones of the containing function;
// slots must dispatch into the one body whose labels seeded the table.
#if defined(__clang__)
#define DEXLEGO_INTERP_ATTR __attribute__((noinline))
#else
#define DEXLEGO_INTERP_ATTR __attribute__((noinline, noclone))
#endif
#else
#define OPH(name)
#define XCASE(x) case static_cast<unsigned>(x):
#define GOTO_HANDLER(h, x)     \
  do {                         \
    xop_to_run = (x);          \
    goto run_switch;           \
  } while (0)
#define DEXLEGO_INTERP_ATTR
#endif

// Register access: slots whose operands were bounds-checked at predecode
// time read the frame array raw; everything else goes through the checked
// path so hostile operands throw the same out_of_range the baseline sees.
#define REG(i) (fast_regs ? R[(i)] : regs.at((i)))

// Handler-body guard mirroring the try/catch around run_bytecode's switch:
// garbage indices written by self-modifying code surface as VerifyError.
#define TRY_OOR try
#define CATCH_OOR                                                       \
  catch (const std::out_of_range& e) {                                  \
    pending = make_exception("Ljava/lang/VerifyError;", e.what());      \
    goto check_pending;                                                 \
  }

// Handler epilogues. Pure ops (no nested code possible: no invokes, no
// clinit, no hooks ran) may skip re-validating the world; everything else
// re-enters the full dispatch sequence.
#define NEXT_PURE()                                    \
  do {                                                 \
    pc = next;                                         \
    if (quiet && cache != nullptr) goto dispatch_pure; \
    goto dispatch_full;                                \
  } while (0)
#define NEXT_FULL() \
  do {              \
    pc = next;      \
    goto dispatch_full; \
  } while (0)

#define BINOP_HANDLER(NAME, OPENUM, EXPR)                               \
  OPH(NAME)                                                             \
  XCASE(Op::OPENUM)                                                     \
  {                                                                     \
    TRY_OOR {                                                           \
      const Value& vb = REG(ip->b);                                     \
      const Value& vc = REG(ip->c);                                     \
      const int64_t b = vb.test_value();                                \
      const int64_t c = vc.test_value();                                \
      const uint32_t taint =                                            \
          effective_taint(vb) | effective_taint(vc);                    \
      REG(ip->a) = Value::Int((EXPR), taint);                           \
    }                                                                   \
    CATCH_OOR                                                           \
    NEXT_PURE();                                                        \
  }

namespace dexlego::rt {

using bc::Insn;
using bc::Op;
using iops::effective_taint;
using iops::eval_if;
using iops::eval_ifz;

DEXLEGO_INTERP_ATTR
Interpreter::CallResult Interpreter::run_threaded(RtMethod& method,
                                                  std::vector<Value>& args) {
  CallResult out;
  const uint16_t registers = method.code->registers_size;
  const uint16_t ins = method.code->ins_size;
  std::vector<Value> regs(registers, Value::Null());
  {
    size_t base = registers - ins;
    for (size_t i = 0; i < args.size() && i < ins; ++i) regs[base + i] = args[i];
  }

  ClassLinker& linker = rt_.linker();
  const HookChain& chain = rt_.hook_chain();
  const bool fuse_enabled = rt_.config().fuse_superinstructions;
  Value* const R = regs.data();

  Value result_reg = Value::Null();  // move-result source
  Object* caught = nullptr;          // move-exception source
  Object* pending = nullptr;         // in-flight exception
  size_t pc = 0;
  size_t next = 0;
  uint8_t cur_width = 1;  // width of the instruction being executed
  std::span<const uint16_t> insns;
  PredecodedCode* cache = nullptr;
  // Raw slot arrays + step budget, refreshed at every full dispatch (the
  // only point foreign code could have rebuilt the cache or, in principle,
  // retuned the budget). Pure steps read the hoisted copies.
  const bc::PredecodedUnit* units = nullptr;
  const ThreadedSlot* tslots = nullptr;
  uint64_t step_limit = rt_.config().step_limit;
  const Insn* ip = nullptr;
  Insn scratch;  // degraded-mode decode / fused-tail copy
  const ThreadedSlot* ts = nullptr;
  bool quiet = false;
  bool fast_regs = false;
#if !DEXLEGO_COMPUTED_GOTO
  unsigned xop_to_run = 0;
#endif

#if DEXLEGO_COMPUTED_GOTO
  // Extended handler-address table, indexed by ThreadedSlot::xop: one entry
  // per Op value (0x00..kMaxOp), then one per superinstruction family.
  static const void* const kHandlers[kXopCount] = {
      &&H_Nop,            // 0x00 nop
      &&H_Move,           // 0x01 move
      &&H_Const,          // 0x02 const/16
      &&H_Const,          // 0x03 const/32
      &&H_Const,          // 0x04 const-wide
      &&H_ConstString,    // 0x05 const-string
      &&H_ConstNull,      // 0x06 const-null
      &&H_MoveResult,     // 0x07 move-result
      &&H_MoveException,  // 0x08 move-exception
      &&H_ReturnVoid,     // 0x09 return-void
      &&H_Return,         // 0x0a return
      &&H_Throw,          // 0x0b throw
      &&H_Goto,           // 0x0c goto
      &&H_If,             // 0x0d if-eq
      &&H_If,             // 0x0e if-ne
      &&H_If,             // 0x0f if-lt
      &&H_If,             // 0x10 if-ge
      &&H_If,             // 0x11 if-gt
      &&H_If,             // 0x12 if-le
      &&H_If,             // 0x13 if-eqz
      &&H_If,             // 0x14 if-nez
      &&H_If,             // 0x15 if-ltz
      &&H_If,             // 0x16 if-gez
      &&H_If,             // 0x17 if-gtz
      &&H_If,             // 0x18 if-lez
      &&H_Add,            // 0x19 add
      &&H_Sub,            // 0x1a sub
      &&H_Mul,            // 0x1b mul
      &&H_DivRem,         // 0x1c div
      &&H_DivRem,         // 0x1d rem
      &&H_And,            // 0x1e and
      &&H_Or,             // 0x1f or
      &&H_Xor,            // 0x20 xor
      &&H_Shl,            // 0x21 shl
      &&H_Shr,            // 0x22 shr
      &&H_Cmp,            // 0x23 cmp
      &&H_Lit8,           // 0x24 add-lit8
      &&H_Lit8,           // 0x25 mul-lit8
      &&H_NegNot,         // 0x26 neg
      &&H_NegNot,         // 0x27 not
      &&H_NewInstance,    // 0x28 new-instance
      &&H_NewArray,       // 0x29 new-array
      &&H_ArrayLength,    // 0x2a array-length
      &&H_AgetAput,       // 0x2b aget
      &&H_AgetAput,       // 0x2c aput
      &&H_IgetIput,       // 0x2d iget
      &&H_IgetIput,       // 0x2e iput
      &&H_SgetSput,       // 0x2f sget
      &&H_SgetSput,       // 0x30 sput
      &&H_Invoke,         // 0x31 invoke-virtual
      &&H_Invoke,         // 0x32 invoke-direct
      &&H_Invoke,         // 0x33 invoke-static
      &&H_PackedSwitch,   // 0x34 packed-switch
      &&H_InstanceOf,     // 0x35 instance-of
      &&H_Payload,        // 0x36 payload
      &&H_FCmpBranch,     // 0x37 fused cmp+branch
      &&H_FConstMove,     // 0x38 fused const+move
      &&H_FIgetInvoke,    // 0x39 fused iget+invoke
  };
  const void* const* const table = kHandlers;
#else
  const void* const* const table = nullptr;
#endif

dispatch_full:
  // Full inter-instruction bookkeeping — byte-for-byte the order of
  // run_bytecode's loop head: abort, step budget, live instruction array,
  // bounds, instruction hooks, then (re)validate the cache.
  if (aborted_) return {};
  step_limit = rt_.config().step_limit;
  if (++steps_ > step_limit) {
    request_abort("step limit exceeded");
    return {};
  }
  insns = std::span<const uint16_t>(method.code->insns);
  if (pc >= insns.size()) {
    out.exception = make_exception("Ljava/lang/VerifyError;",
                                   "pc out of bounds in " + method.full_name());
    return out;
  }
  if (!chain.empty(HookEvent::kInstruction)) {
    chain.dispatch_instruction(method, static_cast<uint32_t>(pc), insns);
  }
  quiet = chain.empty(HookEvent::kInstruction) &&
          chain.empty(HookEvent::kBranch) && chain.empty(HookEvent::kForceBranch);

  // Cache (re)validation — identical policy to the kCached tier, including
  // the rebuild cap that degrades hostile array churn to decode-every-step.
  cache = method.predecoded.get();
  if (cache == nullptr) {
    method.predecoded = std::make_unique<PredecodedCode>();
    cache = method.predecoded.get();
    cache->set_threaded(table, registers, fuse_enabled);
    cache->rebuild(insns, method.code_generation);
  } else {
    if (!cache->threaded()) cache->set_threaded(table, registers, fuse_enabled);
    if (!cache->valid_for(insns, method.code_generation)) {
      if (cache->stats().rebuilds < PredecodedCode::kMaxRebuilds) {
        cache->rebuild(insns, method.code_generation);
      } else {
        cache = nullptr;  // hostile churn: degrade to decode-every-step
      }
    }
  }
  if (cache == nullptr) {
    try {
      scratch = bc::decode_at(insns, pc);
    } catch (const support::ParseError& e) {
      out.exception = make_exception("Ljava/lang/VerifyError;", e.what());
      return out;
    }
    ip = &scratch;
    fast_regs = false;
    cur_width = ip->width;
    next = pc + cur_width;
    GOTO_HANDLER(table[static_cast<uint8_t>(ip->op)],
                 static_cast<unsigned>(ip->op));
  }
  units = cache->units_data();
  tslots = cache->threaded_data();
  goto serve;

dispatch_pure:
  // Lean re-entry after a pure op in a quiet run: nothing outside this
  // frame executed, so the abort flag, hook lists, instruction array and
  // cache stamp are all provably unchanged — only the step budget, the
  // bounds check and the slot's own guard still apply.
  if (++steps_ > step_limit) {
    request_abort("step limit exceeded");
    return {};
  }
  if (pc >= insns.size()) {
    out.exception = make_exception("Ljava/lang/VerifyError;",
                                   "pc out of bounds in " + method.full_name());
    return out;
  }

serve:
  // Serve the slot at pc: guard-checked memoized decode (lazy decode on
  // first visit of a hostile jump target), then one indirect dispatch —
  // fused when the pair's guards hold and the run is quiet.
  {
    const bc::PredecodedUnit* u = units + pc;
    if (!u->mapped || !u->src_matches(insns, pc)) {
      try {
        (void)cache->fetch(insns, pc);
      } catch (const support::ParseError& e) {
        out.exception = make_exception("Ljava/lang/VerifyError;", e.what());
        return out;
      }
    }
    ts = tslots + pc;
    ip = &u->insn;
    fast_regs = ts->head_regs_ok;
    cur_width = ip->width;
    next = pc + cur_width;
    if (ts->fused && quiet) {
      const bc::PredecodedUnit& tail_unit = units[ts->tail_pc];
      if (tail_unit.mapped && tail_unit.src_matches(insns, ts->tail_pc)) {
        GOTO_HANDLER(ts->handler, ts->xop);
      }
    }
    GOTO_HANDLER(table[static_cast<uint8_t>(ip->op)],
                 static_cast<unsigned>(ip->op));
  }

#if !DEXLEGO_COMPUTED_GOTO
run_switch:
  switch (xop_to_run) {
    default: {
      pending = make_exception("Ljava/lang/VerifyError;", "invalid opcode");
      goto check_pending;
    }
#endif

  OPH(Nop)
  XCASE(Op::kNop)
  { NEXT_PURE(); }

  OPH(Move)
  XCASE(Op::kMove)
  {
    TRY_OOR { REG(ip->a) = REG(ip->b); }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(Const)
  XCASE(Op::kConst16) XCASE(Op::kConst32) XCASE(Op::kConstWide)
  {
    TRY_OOR { REG(ip->a) = Value::Int(ip->lit); }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(ConstString)
  XCASE(Op::kConstString)
  {
    // Interned in all tiers (Dalvik literal identity); the degraded path
    // interns by content exactly like the baseline tier.
    TRY_OOR {
      Object* s = cache != nullptr
                      ? linker.interned_string(*method.image, ip->idx)
                      : rt_.heap().intern_string(
                            method.image->file.string_at(ip->idx));
      REG(ip->a) = Value::Ref(s);
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(ConstNull)
  XCASE(Op::kConstNull)
  {
    TRY_OOR { REG(ip->a) = Value::Null(); }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(MoveResult)
  XCASE(Op::kMoveResult)
  {
    TRY_OOR { REG(ip->a) = result_reg; }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(MoveException)
  XCASE(Op::kMoveException)
  {
    TRY_OOR {
      REG(ip->a) = caught != nullptr ? Value::Ref(caught) : Value::Null();
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(ReturnVoid)
  XCASE(Op::kReturnVoid)
  { return out; }

  OPH(Return)
  XCASE(Op::kReturn)
  {
    TRY_OOR { out.ret = REG(ip->a); }
    CATCH_OOR
    return out;
  }

  OPH(Throw)
  XCASE(Op::kThrow)
  {
    TRY_OOR {
      const Value& v = REG(ip->a);
      pending = v.is_null_ref()
                    ? make_exception("Ljava/lang/NullPointerException;",
                                     "throw on null")
                    : v.ref;
    }
    CATCH_OOR
    // A non-reference operand leaves nothing to throw (baseline falls
    // through to the next instruction the same way).
    if (pending == nullptr) NEXT_PURE();
    goto check_pending;
  }

  OPH(Goto)
  XCASE(Op::kGoto)
  {
    next = pc + static_cast<size_t>(ip->off);
    NEXT_PURE();
  }

  OPH(If)
  XCASE(Op::kIfEq) XCASE(Op::kIfNe) XCASE(Op::kIfLt) XCASE(Op::kIfGe)
  XCASE(Op::kIfGt) XCASE(Op::kIfLe) XCASE(Op::kIfEqz) XCASE(Op::kIfNez)
  XCASE(Op::kIfLtz) XCASE(Op::kIfGez) XCASE(Op::kIfGtz) XCASE(Op::kIfLez)
  {
    const Op iop = ip->op;
    const uint8_t ra = ip->a, rb = ip->b;
    const int32_t off = ip->off;
    TRY_OOR {
      bool taken = bc::is_two_reg_if(iop) ? eval_if(iop, REG(ra), REG(rb))
                                          : eval_ifz(iop, REG(ra));
      // Empty hook lists make both dispatch helpers no-ops in the baseline;
      // guarding them here is observationally identical and keeps the hot
      // path call-free.
      if (!chain.empty(HookEvent::kForceBranch)) {
        bool forced = taken;
        if (chain.dispatch_force_branch(method, static_cast<uint32_t>(pc),
                                        &forced)) {
          taken = forced;
        }
      }
      if (!chain.empty(HookEvent::kBranch)) {
        chain.dispatch_branch(method, static_cast<uint32_t>(pc), taken);
      }
      if (taken) next = pc + static_cast<size_t>(off);
    }
    CATCH_OOR
    NEXT_PURE();
  }

  BINOP_HANDLER(Add, kAdd, b + c)
  BINOP_HANDLER(Sub, kSub, b - c)
  BINOP_HANDLER(Mul, kMul, b * c)
  BINOP_HANDLER(And, kAnd, b & c)
  BINOP_HANDLER(Or, kOr, b | c)
  BINOP_HANDLER(Xor, kXor, b ^ c)
  BINOP_HANDLER(Shl, kShl, b << (c & 63))
  BINOP_HANDLER(Shr, kShr, b >> (c & 63))
  BINOP_HANDLER(Cmp, kCmp, (b < c) ? -1 : (b > c ? 1 : 0))

  OPH(DivRem)
  XCASE(Op::kDiv) XCASE(Op::kRem)
  {
    TRY_OOR {
      const Value& vb = REG(ip->b);
      const Value& vc = REG(ip->c);
      const int64_t b = vb.test_value();
      const int64_t c = vc.test_value();
      const uint32_t taint = effective_taint(vb) | effective_taint(vc);
      if (c == 0) {
        pending = make_exception("Ljava/lang/ArithmeticException;",
                                 "divide by zero");
        goto check_pending;
      }
      REG(ip->a) = Value::Int(ip->op == Op::kDiv ? b / c : b % c, taint);
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(Lit8)
  XCASE(Op::kAddLit8) XCASE(Op::kMulLit8)
  {
    TRY_OOR {
      const Value& vb = REG(ip->b);
      const int64_t r = ip->op == Op::kAddLit8 ? vb.test_value() + ip->lit
                                               : vb.test_value() * ip->lit;
      REG(ip->a) = Value::Int(r, effective_taint(vb));
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(NegNot)
  XCASE(Op::kNeg) XCASE(Op::kNot)
  {
    TRY_OOR {
      const Value& vb = REG(ip->b);
      const int64_t r =
          ip->op == Op::kNeg ? -vb.test_value() : ~vb.test_value();
      REG(ip->a) = Value::Int(r, effective_taint(vb));
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(NewInstance)
  XCASE(Op::kNewInstance)
  {
    // <clinit> can run (and patch this very method): copy operands first,
    // re-validate everything after.
    const uint8_t ra = ip->a;
    const uint16_t idx = ip->idx;
    TRY_OOR {
      const std::string& desc = method.image->file.type_descriptor(idx);
      if (linker.is_framework_descriptor(desc)) {
        REG(ra) = Value::Ref(rt_.heap().new_framework(desc));
      } else {
        RtClass* cls = linker.ensure_initialized(desc);
        if (cls == nullptr) {
          pending = make_exception("Ljava/lang/NoClassDefFoundError;", desc);
          goto check_pending;
        }
        REG(ra) = Value::Ref(
            rt_.heap().new_instance(cls, desc, cls->instance_slot_count));
      }
    }
    CATCH_OOR
    NEXT_FULL();
  }

  OPH(NewArray)
  XCASE(Op::kNewArray)
  {
    TRY_OOR {
      int64_t len = REG(ip->b).test_value();
      if (len < 0) {
        pending = make_exception("Ljava/lang/NegativeArraySizeException;",
                                 std::to_string(len));
        goto check_pending;
      }
      const std::string& desc = method.image->file.type_descriptor(ip->idx);
      REG(ip->a) =
          Value::Ref(rt_.heap().new_array(desc, static_cast<size_t>(len)));
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(ArrayLength)
  XCASE(Op::kArrayLength)
  {
    TRY_OOR {
      const Value& arr = REG(ip->b);
      if (arr.is_null_ref()) {
        pending = make_exception("Ljava/lang/NullPointerException;",
                                 "array-length on null");
        goto check_pending;
      }
      REG(ip->a) = Value::Int(static_cast<int64_t>(arr.ref->elems.size()),
                              effective_taint(arr));
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(AgetAput)
  XCASE(Op::kAget) XCASE(Op::kAput)
  {
    TRY_OOR {
      const Value& arr = REG(ip->b);
      if (arr.is_null_ref()) {
        pending = make_exception("Ljava/lang/NullPointerException;",
                                 "array access on null");
        goto check_pending;
      }
      int64_t idx = REG(ip->c).test_value();
      if (idx < 0 || static_cast<size_t>(idx) >= arr.ref->elems.size()) {
        pending = make_exception("Ljava/lang/ArrayIndexOutOfBoundsException;",
                                 std::to_string(idx));
        goto check_pending;
      }
      if (ip->op == Op::kAget) {
        Value v = arr.ref->elems[static_cast<size_t>(idx)];
        v.taint |= arr.ref->taint;
        REG(ip->a) = v;
      } else {
        arr.ref->elems[static_cast<size_t>(idx)] = REG(ip->a);
      }
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(IgetIput)
  XCASE(Op::kIget) XCASE(Op::kIput)
  {
    // Instance-field resolution can lazily load a class (hooks can run):
    // copy operands first, full re-validation after.
    const bool is_get = ip->op == Op::kIget;
    const uint8_t ra = ip->a, rb = ip->b;
    const uint16_t idx = ip->idx;
    TRY_OOR {
      const Value& obj = REG(rb);
      if (obj.is_null_ref()) {
        pending = make_exception("Ljava/lang/NullPointerException;",
                                 "field access on null");
        goto check_pending;
      }
      auto resolved = cache != nullptr
                          ? linker.resolve_field_cached(*method.image, idx, false)
                          : linker.resolve_field(*method.image, idx, false);
      if (resolved.field == nullptr ||
          resolved.field->slot >= obj.ref->fields.size()) {
        pending = make_exception("Ljava/lang/NoSuchFieldError;",
                                 method.image->file.pretty_field(idx));
        goto check_pending;
      }
      if (is_get) {
        REG(ra) = obj.ref->fields[resolved.field->slot];
      } else {
        obj.ref->fields[resolved.field->slot] = REG(ra);
      }
    }
    CATCH_OOR
    NEXT_FULL();
  }

  OPH(SgetSput)
  XCASE(Op::kSget) XCASE(Op::kSput)
  {
    // Static-field resolution runs <clinit>: copy operands first.
    const bool is_get = ip->op == Op::kSget;
    const uint8_t ra = ip->a;
    const uint16_t idx = ip->idx;
    TRY_OOR {
      auto resolved = cache != nullptr
                          ? linker.resolve_field_cached(*method.image, idx, true)
                          : linker.resolve_field(*method.image, idx, true);
      if (resolved.field == nullptr) {
        pending = make_exception("Ljava/lang/NoSuchFieldError;",
                                 method.image->file.pretty_field(idx));
        goto check_pending;
      }
      if (is_get) {
        REG(ra) = resolved.cls->static_values.at(resolved.field->slot);
      } else {
        resolved.cls->static_values.at(resolved.field->slot) = REG(ra);
      }
    }
    CATCH_OOR
    NEXT_FULL();
  }

  OPH(Invoke)
  XCASE(Op::kInvokeVirtual) XCASE(Op::kInvokeDirect) XCASE(Op::kInvokeStatic)
  {
    const uint8_t op_raw = static_cast<uint8_t>(ip->op);
    const uint8_t argc = ip->a;
    const uint16_t midx = ip->idx;
    const std::array<uint8_t, 4> argregs = ip->args;
    TRY_OOR {
      std::vector<Value> call_args;
      call_args.reserve(argc);
      for (uint8_t i = 0; i < argc; ++i) call_args.push_back(REG(argregs[i]));
      InlineSite* icp = cache != nullptr ? &cache->inline_site(pc) : nullptr;
      CallResult r = dispatch_invoke(op_raw, method, static_cast<uint32_t>(pc),
                                     midx, std::move(call_args), icp);
      if (aborted_) return {};
      if (r.exception != nullptr) {
        pending = r.exception;
        goto check_pending;
      }
      result_reg = r.ret;
    }
    CATCH_OOR
    NEXT_FULL();
  }

  OPH(PackedSwitch)
  XCASE(Op::kPackedSwitch)
  {
    TRY_OOR {
      bc::SwitchPayload payload;
      try {
        payload = bc::read_switch_payload(insns, pc, *ip);
      } catch (const support::ParseError& pe) {
        pending = make_exception("Ljava/lang/VerifyError;", pe.what());
        goto check_pending;
      }
      int64_t v = REG(ip->a).test_value();
      int64_t rel = v - payload.first_key;
      if (rel >= 0 && rel < static_cast<int64_t>(payload.rel_targets.size())) {
        next =
            pc + static_cast<size_t>(payload.rel_targets[static_cast<size_t>(rel)]);
      }
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(InstanceOf)
  XCASE(Op::kInstanceOf)
  {
    TRY_OOR {
      const Value& obj = REG(ip->b);
      const std::string& desc = method.image->file.type_descriptor(ip->idx);
      bool match = false;
      if (!obj.is_null_ref()) {
        if (obj.ref->klass != nullptr) {
          for (RtClass* c = obj.ref->klass; c != nullptr; c = c->super) {
            if (c->descriptor == desc) match = true;
          }
        }
        if (obj.ref->class_descriptor == desc) match = true;
      }
      REG(ip->a) = Value::Int(match ? 1 : 0);
    }
    CATCH_OOR
    NEXT_PURE();
  }

  OPH(Payload)
  XCASE(Op::kPayload)
  {
    pending =
        make_exception("Ljava/lang/VerifyError;", "executed switch payload");
    goto check_pending;
  }

  // --- fused superinstructions --------------------------------------------
  // Entered only when quiet and both pair guards held at dispatch. Between
  // the head and the tail only the step budget applies: pure heads run no
  // nested code, so the world is provably unchanged mid-pair.

  OPH(FCmpBranch)
  XCASE(fused_xop(bc::FuseKind::kCmpBranch))
  {
    TRY_OOR {
      const Value& vb = REG(ip->b);
      const Value& vc = REG(ip->c);
      const int64_t b = vb.test_value();
      const int64_t c = vc.test_value();
      const uint32_t taint = effective_taint(vb) | effective_taint(vc);
      REG(ip->a) = Value::Int((b < c) ? -1 : (b > c ? 1 : 0), taint);
    }
    CATCH_OOR
    if (++steps_ > step_limit) {
      request_abort("step limit exceeded");
      return {};
    }
    pc = ts->tail_pc;
    {
      const Insn& tl = units[pc].insn;
      cur_width = tl.width;
      next = pc + cur_width;
      fast_regs = ts->tail_regs_ok;
      TRY_OOR {
        bool taken = bc::is_two_reg_if(tl.op)
                         ? eval_if(tl.op, REG(tl.a), REG(tl.b))
                         : eval_ifz(tl.op, REG(tl.a));
        // quiet: branch/force-branch hook dispatch is a no-op by definition.
        if (taken) next = pc + static_cast<size_t>(tl.off);
      }
      CATCH_OOR
    }
    pc = next;
    goto dispatch_pure;
  }

  OPH(FConstMove)
  XCASE(fused_xop(bc::FuseKind::kConstMove))
  {
    TRY_OOR { REG(ip->a) = Value::Int(ip->lit); }
    CATCH_OOR
    if (++steps_ > step_limit) {
      request_abort("step limit exceeded");
      return {};
    }
    pc = ts->tail_pc;
    {
      const Insn& tl = units[pc].insn;
      cur_width = tl.width;
      next = pc + cur_width;
      fast_regs = ts->tail_regs_ok;
      TRY_OOR { REG(tl.a) = REG(tl.b); }
      CATCH_OOR
    }
    pc = next;
    goto dispatch_pure;
  }

  OPH(FIgetInvoke)
  XCASE(fused_xop(bc::FuseKind::kIgetInvoke))
  {
    // The fused fast path is legal only across a memoized field resolution
    // (pure lookup, no class loading, no hooks). The first execution — and
    // any execution after register_dex flushed the entry — runs the pair
    // unfused through the plain handlers instead.
    if (!linker.instance_field_memoized(*method.image, ip->idx)) {
      GOTO_HANDLER(table[static_cast<uint8_t>(Op::kIget)],
                   static_cast<unsigned>(Op::kIget));
    }
    {
      const size_t tail_pc = ts->tail_pc;
      const bool tail_fast = ts->tail_regs_ok;
      const bool is_get_head = ip->op == Op::kIget;  // always true (legality)
      TRY_OOR {
        const Value& obj = REG(ip->b);
        if (obj.is_null_ref()) {
          pending = make_exception("Ljava/lang/NullPointerException;",
                                   "field access on null");
          goto check_pending;
        }
        auto resolved = linker.resolve_field_cached(*method.image, ip->idx, false);
        if (resolved.field == nullptr ||
            resolved.field->slot >= obj.ref->fields.size()) {
          pending = make_exception("Ljava/lang/NoSuchFieldError;",
                                   method.image->file.pretty_field(ip->idx));
          goto check_pending;
        }
        if (is_get_head) REG(ip->a) = obj.ref->fields[resolved.field->slot];
      }
      CATCH_OOR
      if (++steps_ > step_limit) {
        request_abort("step limit exceeded");
        return {};
      }
      // Tail invoke: copy the decoded form out of the slot — the call can
      // rebuild or drop this cache while the frame is mid-pair.
      scratch = units[tail_pc].insn;
      pc = tail_pc;
      cur_width = scratch.width;
      next = pc + cur_width;
      fast_regs = tail_fast;
      TRY_OOR {
        std::vector<Value> call_args;
        call_args.reserve(scratch.a);
        for (uint8_t i = 0; i < scratch.a; ++i) {
          call_args.push_back(REG(scratch.args[i]));
        }
        InlineSite* icp = &cache->inline_site(pc);
        CallResult r =
            dispatch_invoke(static_cast<uint8_t>(scratch.op), method,
                            static_cast<uint32_t>(pc), scratch.idx,
                            std::move(call_args), icp);
        if (aborted_) return {};
        if (r.exception != nullptr) {
          pending = r.exception;
          goto check_pending;
        }
        result_reg = r.ret;
      }
      CATCH_OOR
    }
    NEXT_FULL();
  }

#if !DEXLEGO_COMPUTED_GOTO
  }  // switch (xop_to_run)
#endif

check_pending:
  // In-flight exception — same tolerate / try-range / unwind sequence as
  // run_bytecode, keyed to the pc and width of the faulting instruction
  // (for fused pairs: whichever half faulted).
  {
    bool tolerated =
        chain.dispatch_tolerate_exception(method, static_cast<uint32_t>(pc));
    if (tolerated) {
      pending = nullptr;
      pc += cur_width;  // skip the faulting instruction
      goto dispatch_full;
    }
    const dex::TryItem* handler = nullptr;
    for (const dex::TryItem& t : method.code->tries) {
      if (pc >= t.start_pc && pc < t.end_pc) {
        handler = &t;
        break;
      }
    }
    if (handler != nullptr) {
      caught = pending;
      pending = nullptr;
      pc = handler->handler_pc;
      goto dispatch_full;
    }
    out.exception = pending;
    return out;
  }
}

}  // namespace dexlego::rt
