#include "src/runtime/hook_chain.h"

#include <algorithm>

namespace dexlego::rt {

void HookChain::add(RuntimeHooks* hooks, uint32_t event_mask) {
  if (hooks == nullptr) return;
  remove(hooks);
  members_.push_back(hooks);
  for (size_t i = 0; i < kHookEventCount; ++i) {
    if ((event_mask & (1u << i)) != 0) lists_[i].push_back(hooks);
  }
}

void HookChain::remove(RuntimeHooks* hooks) {
  members_.erase(std::remove(members_.begin(), members_.end(), hooks),
                 members_.end());
  for (auto& list : lists_) {
    list.erase(std::remove(list.begin(), list.end(), hooks), list.end());
  }
}

}  // namespace dexlego::rt
