// Composable hook chain — the runtime's observation bus. Members register
// with a capability mask (RuntimeHooks::subscribed_events, overridable at
// add() time) and the chain maintains one flat, pre-filtered callback list
// per HookEvent. Dispatch sites (interpreter, class linker, reflection
// builtin) iterate exactly the hooks subscribed to that event, so a
// collector that never looks at branches costs the branch path nothing and
// an empty list is a two-word load + compare. Within one event list,
// registration order is dispatch order.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/runtime/hooks.h"

namespace dexlego::rt {

class HookChain {
 public:
  // Registers `hooks` on every event list selected by its
  // subscribed_events() mask. Re-adding a member re-registers it at the end
  // of the order (remove + add).
  void add(RuntimeHooks* hooks) { add(hooks, hooks->subscribed_events()); }
  // Same, with an explicit mask overriding the hook's own declaration
  // (narrowing a general-purpose hook to the events a caller cares about).
  void add(RuntimeHooks* hooks, uint32_t event_mask);
  void remove(RuntimeHooks* hooks);

  // All members in registration order (the legacy Runtime::hooks() view).
  std::span<RuntimeHooks* const> members() const { return members_; }
  size_t size() const { return members_.size(); }

  // The pre-filtered callback list for one event, registration-ordered.
  std::span<RuntimeHooks* const> list(HookEvent e) const {
    return lists_[hook_event_index(e)];
  }
  bool empty(HookEvent e) const { return lists_[hook_event_index(e)].empty(); }

  // --- flat dispatch helpers (notification events) ---
  void dispatch_dex_loaded(const DexImage& image) const {
    for (RuntimeHooks* h : list(HookEvent::kDexLoaded)) h->on_dex_loaded(image);
  }
  void dispatch_class_loaded(RtClass& cls) const {
    for (RuntimeHooks* h : list(HookEvent::kClassLoaded)) h->on_class_loaded(cls);
  }
  void dispatch_class_initialized(RtClass& cls) const {
    for (RuntimeHooks* h : list(HookEvent::kClassInitialized)) {
      h->on_class_initialized(cls);
    }
  }
  void dispatch_method_entry(RtMethod& method) const {
    for (RuntimeHooks* h : list(HookEvent::kMethodEntry)) h->on_method_entry(method);
  }
  void dispatch_method_exit(RtMethod& method) const {
    for (RuntimeHooks* h : list(HookEvent::kMethodExit)) h->on_method_exit(method);
  }
  void dispatch_instruction(RtMethod& method, uint32_t dex_pc,
                            std::span<const uint16_t> code) const {
    for (RuntimeHooks* h : list(HookEvent::kInstruction)) {
      h->on_instruction(method, dex_pc, code);
    }
  }
  void dispatch_branch(RtMethod& method, uint32_t dex_pc, bool taken) const {
    for (RuntimeHooks* h : list(HookEvent::kBranch)) {
      h->on_branch(method, dex_pc, taken);
    }
  }
  void dispatch_reflective_invoke(RtMethod& caller, uint32_t dex_pc,
                                  RtMethod& target) const {
    for (RuntimeHooks* h : list(HookEvent::kReflectiveInvoke)) {
      h->on_reflective_invoke(caller, dex_pc, target);
    }
  }

  // --- interposition events. force_branch asks every subscriber and the
  // last one that answers owns the outcome; tolerate_exception stops at the
  // first subscriber that answers (the exception is already cleared) ---
  bool dispatch_force_branch(RtMethod& method, uint32_t dex_pc,
                             bool* outcome) const {
    bool forced = false;
    for (RuntimeHooks* h : list(HookEvent::kForceBranch)) {
      forced |= h->force_branch(method, dex_pc, outcome);
    }
    return forced;
  }
  bool dispatch_tolerate_exception(RtMethod& method, uint32_t dex_pc) const {
    for (RuntimeHooks* h : list(HookEvent::kTolerateException)) {
      if (h->tolerate_exception(method, dex_pc)) return true;
    }
    return false;
  }

 private:
  std::array<std::vector<RuntimeHooks*>, kHookEventCount> lists_;
  std::vector<RuntimeHooks*> members_;
};

}  // namespace dexlego::rt
