// Class linker: lazy loading, linking and initialization of classes from
// registered DEX images — the component DexLego hooks for class/field/static
// value collection (paper Fig. 2 "Initialization in class linker").
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/dex/dex.h"
#include "src/runtime/rt_types.h"

namespace dexlego::rt {

class Runtime;

class ClassLinker {
 public:
  explicit ClassLinker(Runtime& runtime) : runtime_(runtime) {}

  // Registers a DEX file. Classes load lazily on first resolution. The image
  // id reflects load order (dynamic loading appends).
  const DexImage& register_dex(dex::DexFile file, std::string source);

  const std::vector<std::unique_ptr<DexImage>>& images() const { return images_; }

  // Loads + links the class (and its app superclasses). Returns nullptr when
  // no registered image defines it and it is not a framework descriptor.
  RtClass* resolve(std::string_view descriptor);

  // Resolve + run static initialization (<clinit>) if not done yet.
  // Initialization uses the runtime's interpreter so hooks observe it.
  RtClass* ensure_initialized(std::string_view descriptor);
  void ensure_initialized(RtClass& cls);

  RtClass* find_loaded(std::string_view descriptor);

  // Framework classes are synthesized on demand (no backing image).
  RtClass* framework_class(std::string_view descriptor);
  bool is_framework_descriptor(std::string_view descriptor) const;

  // --- pool resolution for the interpreter (cached per image) ---
  const std::string& type_descriptor(const DexImage& image, uint16_t type_idx) const;
  struct ResolvedField {
    RtClass* cls = nullptr;
    RtField* field = nullptr;
    bool is_static = false;
  };
  // Returns field==nullptr when unresolvable (triggers NoSuchFieldError).
  ResolvedField resolve_field(const DexImage& image, uint16_t field_idx,
                              bool want_static);
  // Resolves a method reference for static/direct dispatch. For framework
  // targets, returns nullptr with *framework set. The name-only fallback
  // (shorty mismatch) applies only when the name resolves to a unique
  // method in the hierarchy; ambiguous overloads yield NoSuchMethodError.
  RtMethod* resolve_method(const DexImage& image, uint16_t method_idx,
                           bool* framework);
  // Name/shorty of a method reference (for virtual dispatch & builtins).
  struct MethodRefInfo {
    std::string class_descriptor;
    std::string name;
    std::string shorty;
  };
  MethodRefInfo method_ref_info(const DexImage& image, uint16_t method_idx) const;

  // --- index-keyed resolution caches (cached dispatch mode) ---
  // Memoized twins of the resolvers above, keyed (image id, pool index).
  // Pool-only data (ref info, interned literals) is immutable per image and
  // cached forever; class-dependent results (methods, fields) are flushed
  // whenever a new image registers, because dynamic loading can turn a
  // framework descriptor into an app class. Returned references stay valid
  // across further cache fills and image registrations.
  const MethodRefInfo& method_ref_info_cached(const DexImage& image,
                                              uint16_t method_idx);
  struct ResolvedMethod {
    RtMethod* method = nullptr;
    bool framework = false;
  };
  ResolvedMethod resolve_method_cached(const DexImage& image,
                                       uint16_t method_idx);
  ResolvedField resolve_field_cached(const DexImage& image, uint16_t field_idx,
                                     bool want_static);
  // True when resolve_field_cached(image, idx, false) would be a pure memo
  // hit — no class loading, no hooks, no code. The threaded tier's
  // iget+invoke superinstruction only takes its fused fast path across
  // resolutions that cannot run code; register_dex flushes these entries,
  // so a dynamic load de-memoizes and the next execution re-resolves.
  bool instance_field_memoized(const DexImage& image, uint16_t field_idx) const;
  // The interned literal for a const-string operand (Heap::intern_string
  // keyed by string index so repeat executions skip the content lookup).
  Object* interned_string(const DexImage& image, uint16_t string_idx);

  // All loaded (app) classes, in load order — DexHunter/AppSpear dump these.
  std::vector<RtClass*> loaded_classes() const;

 private:
  RtClass* load_class(std::string_view descriptor);
  void link_class(RtClass& cls, const dex::ClassDef& def, const DexImage& image);

  // Per-image memo for the cached resolvers. Entry vectors are sized to the
  // image's pool once and never reallocate, so pointers into them are
  // stable while the linker lives.
  struct ImageCache {
    std::vector<std::optional<MethodRefInfo>> ref_info;
    std::vector<std::optional<ResolvedMethod>> methods;
    std::vector<std::optional<ResolvedField>> static_fields;
    std::vector<std::optional<ResolvedField>> instance_fields;
    std::vector<Object*> strings;
  };
  ImageCache& image_cache(const DexImage& image);

  Runtime& runtime_;
  std::vector<std::unique_ptr<DexImage>> images_;
  std::vector<std::unique_ptr<ImageCache>> image_caches_;  // by image id
  std::map<std::string, std::unique_ptr<RtClass>, std::less<>> classes_;
  std::vector<RtClass*> load_order_;
  std::map<std::string, std::unique_ptr<RtClass>, std::less<>> framework_classes_;
};

}  // namespace dexlego::rt
