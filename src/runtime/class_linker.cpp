#include "src/runtime/class_linker.h"

#include <stdexcept>

#include "src/runtime/runtime.h"
#include "src/support/log.h"

namespace dexlego::rt {

const DexImage& ClassLinker::register_dex(dex::DexFile file, std::string source) {
  auto image = std::make_unique<DexImage>();
  image->id = static_cast<int>(images_.size());
  image->source = std::move(source);
  image->file = std::move(file);
  images_.push_back(std::move(image));
  // A new image can turn a framework descriptor into an app class, so every
  // class-dependent memo (including negative entries) is stale. Pool-only
  // data (ref_info, interned strings) survives: images are immutable.
  for (const auto& cache : image_caches_) {
    if (!cache) continue;
    for (auto& entry : cache->methods) entry.reset();
    for (auto& entry : cache->static_fields) entry.reset();
    for (auto& entry : cache->instance_fields) entry.reset();
  }
  const DexImage& ref = *images_.back();
  runtime_.hook_chain().dispatch_dex_loaded(ref);
  return ref;
}

ClassLinker::ImageCache& ClassLinker::image_cache(const DexImage& image) {
  size_t id = static_cast<size_t>(image.id);
  if (image_caches_.size() <= id) image_caches_.resize(id + 1);
  if (!image_caches_[id]) {
    auto cache = std::make_unique<ImageCache>();
    cache->ref_info.resize(image.file.methods.size());
    cache->methods.resize(image.file.methods.size());
    cache->static_fields.resize(image.file.fields.size());
    cache->instance_fields.resize(image.file.fields.size());
    cache->strings.assign(image.file.strings.size(), nullptr);
    image_caches_[id] = std::move(cache);
  }
  return *image_caches_[id];
}

bool ClassLinker::is_framework_descriptor(std::string_view descriptor) const {
  // Anything not defined by a registered image is treated as framework,
  // mirroring how ART delegates unknown classes to the boot class path.
  for (const auto& image : images_) {
    if (image->file.find_class(descriptor) != nullptr) return false;
  }
  return true;
}

RtClass* ClassLinker::find_loaded(std::string_view descriptor) {
  auto it = classes_.find(descriptor);
  return it == classes_.end() ? nullptr : it->second.get();
}

RtClass* ClassLinker::framework_class(std::string_view descriptor) {
  auto it = framework_classes_.find(descriptor);
  if (it != framework_classes_.end()) return it->second.get();
  auto cls = std::make_unique<RtClass>();
  cls->descriptor = std::string(descriptor);
  cls->is_framework = true;
  cls->state = RtClass::State::kInitialized;
  RtClass* ptr = cls.get();
  framework_classes_.emplace(std::string(descriptor), std::move(cls));
  return ptr;
}

RtClass* ClassLinker::resolve(std::string_view descriptor) {
  if (RtClass* found = find_loaded(descriptor)) return found;
  return load_class(descriptor);
}

RtClass* ClassLinker::load_class(std::string_view descriptor) {
  // Find the defining image (first registered wins, like a class loader
  // chain; dynamically loaded DEX files extend the chain).
  const dex::ClassDef* def = nullptr;
  const DexImage* image = nullptr;
  for (const auto& img : images_) {
    def = img->file.find_class(descriptor);
    if (def != nullptr) {
      image = img.get();
      break;
    }
  }
  if (def == nullptr) return nullptr;

  auto cls = std::make_unique<RtClass>();
  RtClass* ptr = cls.get();
  cls->descriptor = std::string(descriptor);
  cls->image = image;
  cls->access_flags = def->access_flags;
  classes_.emplace(std::string(descriptor), std::move(cls));

  // Resolve the superclass first (app supers load recursively; framework
  // supers become synthetic classes).
  if (def->super_type_idx != dex::kNoIndex) {
    const std::string& super_desc = image->file.type_descriptor(def->super_type_idx);
    ptr->super_descriptor = super_desc;
    if (super_desc != ptr->descriptor) {
      if (is_framework_descriptor(super_desc)) {
        ptr->super = nullptr;  // framework boundary; kept as descriptor only
      } else {
        ptr->super = resolve(super_desc);
      }
    }
  }

  link_class(*ptr, *def, *image);
  load_order_.push_back(ptr);
  runtime_.hook_chain().dispatch_class_loaded(*ptr);
  return ptr;
}

void ClassLinker::link_class(RtClass& cls, const dex::ClassDef& def,
                             const DexImage& image) {
  const dex::DexFile& file = image.file;

  size_t base_slots = cls.super ? cls.super->instance_slot_count : 0;
  for (size_t i = 0; i < def.instance_fields.size(); ++i) {
    const dex::FieldDef& fd = def.instance_fields[i];
    const dex::FieldRef& ref = file.fields.at(fd.field_ref);
    RtField field;
    field.name = file.string_at(ref.name);
    field.type_descriptor = file.type_descriptor(ref.type);
    field.access_flags = fd.access_flags;
    field.slot = base_slots + i;
    field.image = &image;
    cls.instance_fields.push_back(std::move(field));
  }
  cls.instance_slot_count = base_slots + def.instance_fields.size();

  for (size_t i = 0; i < def.static_fields.size(); ++i) {
    const dex::FieldDef& fd = def.static_fields[i];
    const dex::FieldRef& ref = file.fields.at(fd.field_ref);
    RtField field;
    field.name = file.string_at(ref.name);
    field.type_descriptor = file.type_descriptor(ref.type);
    field.access_flags = fd.access_flags;
    field.slot = i;
    field.init = fd.static_init;
    field.image = &image;
    cls.static_fields.push_back(std::move(field));
  }
  cls.static_values.assign(def.static_fields.size(), Value::Null());

  auto link_method = [&](const dex::MethodDef& md) {
    const dex::MethodRef& ref = file.methods.at(md.method_ref);
    auto method = std::make_unique<RtMethod>();
    method->declaring = &cls;
    method->image = &image;
    method->dex_method_idx = md.method_ref;
    method->name = file.string_at(ref.name);
    method->shorty = file.proto_shorty(ref.proto);
    method->access_flags = md.access_flags;
    method->num_params = file.protos.at(ref.proto).param_types.size();
    if (md.code) {
      // The runtime works on a mutable copy; self-modifying natives patch it.
      method->code = std::make_unique<dex::CodeItem>(*md.code);
    }
    cls.methods.push_back(std::move(method));
  };
  for (const dex::MethodDef& md : def.direct_methods) link_method(md);
  for (const dex::MethodDef& md : def.virtual_methods) link_method(md);

  cls.state = RtClass::State::kLinked;
}

RtClass* ClassLinker::ensure_initialized(std::string_view descriptor) {
  RtClass* cls = resolve(descriptor);
  if (cls != nullptr) ensure_initialized(*cls);
  return cls;
}

void ClassLinker::ensure_initialized(RtClass& cls) {
  if (cls.state == RtClass::State::kInitialized ||
      cls.state == RtClass::State::kInitializing) {
    return;
  }
  if (cls.super != nullptr) ensure_initialized(*cls.super);
  cls.state = RtClass::State::kInitializing;

  // Apply encoded static initializers, then run <clinit> via the interpreter
  // (so instrumentation observes both, per Fig. 2).
  for (const RtField& f : cls.static_fields) {
    if (!f.init) {
      // Default: integral types zero, references null.
      cls.static_values[f.slot] =
          (f.type_descriptor == "I" || f.type_descriptor == "J" ||
           f.type_descriptor == "Z")
              ? Value::Int(0)
              : Value::Null();
      continue;
    }
    switch (f.init->kind) {
      case dex::EncodedValue::Kind::kInt:
        cls.static_values[f.slot] = Value::Int(f.init->i);
        break;
      case dex::EncodedValue::Kind::kString:
        // Interned like const-string: a literal-initialized static field is
        // reference-equal to the same literal appearing in code.
        cls.static_values[f.slot] = Value::Ref(runtime_.heap().intern_string(
            f.image->file.string_at(f.init->string_idx)));
        break;
      case dex::EncodedValue::Kind::kNull:
        cls.static_values[f.slot] = Value::Null();
        break;
    }
  }

  if (RtMethod* clinit = cls.find_declared("<clinit>", "()V")) {
    runtime_.run_clinit(*clinit);
  }
  cls.state = RtClass::State::kInitialized;
  runtime_.hook_chain().dispatch_class_initialized(cls);
}

const std::string& ClassLinker::type_descriptor(const DexImage& image,
                                                uint16_t type_idx) const {
  return image.file.type_descriptor(type_idx);
}

ClassLinker::ResolvedField ClassLinker::resolve_field(const DexImage& image,
                                                      uint16_t field_idx,
                                                      bool want_static) {
  ResolvedField out;
  const dex::FieldRef& ref = image.file.fields.at(field_idx);
  const std::string& cls_desc = image.file.type_descriptor(ref.class_type);
  const std::string& name = image.file.string_at(ref.name);
  RtClass* cls = resolve(cls_desc);
  if (cls == nullptr) return out;  // framework field: unresolvable
  if (want_static) ensure_initialized(*cls);
  RtField* field =
      want_static ? cls->find_static_field(name) : cls->find_instance_field(name);
  if (field == nullptr) return out;
  // Static field slots belong to the class that declares them.
  RtClass* owner = cls;
  if (want_static) {
    while (owner != nullptr) {
      bool declared_here = false;
      for (RtField& f : owner->static_fields) {
        if (&f == field) declared_here = true;
      }
      if (declared_here) break;
      owner = owner->super;
    }
    if (owner == nullptr) owner = cls;
  }
  out.cls = owner;
  out.field = field;
  out.is_static = want_static;
  return out;
}

RtMethod* ClassLinker::resolve_method(const DexImage& image, uint16_t method_idx,
                                      bool* framework) {
  *framework = false;
  const dex::MethodRef& ref = image.file.methods.at(method_idx);
  const std::string& cls_desc = image.file.type_descriptor(ref.class_type);
  if (is_framework_descriptor(cls_desc)) {
    *framework = true;
    return nullptr;
  }
  RtClass* cls = resolve(cls_desc);
  if (cls == nullptr) {
    *framework = true;
    return nullptr;
  }
  const std::string& name = image.file.string_at(ref.name);
  std::string shorty = image.file.proto_shorty(ref.proto);
  for (RtClass* c = cls; c != nullptr; c = c->super) {
    if (RtMethod* m = c->find_declared(name, shorty)) return m;
  }
  // Name-only fallback (mirrors find_dispatch leniency) — but only when the
  // name picks a unique overload. Several same-name declarations with
  // distinct shorties would dispatch whichever happened to link first, so
  // that case stays unresolved and surfaces as NoSuchMethodError. Same-name
  // same-shorty matches up the super chain are overrides, not ambiguity:
  // the most-derived one wins.
  RtMethod* unique = nullptr;
  for (RtClass* c = cls; c != nullptr; c = c->super) {
    for (const auto& m : c->methods) {
      if (m->name != name) continue;
      if (unique == nullptr) {
        unique = m.get();
      } else if (m->shorty != unique->shorty) {
        return nullptr;  // ambiguous overload set
      }
    }
  }
  return unique;
}

ClassLinker::MethodRefInfo ClassLinker::method_ref_info(const DexImage& image,
                                                        uint16_t method_idx) const {
  const dex::MethodRef& ref = image.file.methods.at(method_idx);
  MethodRefInfo info;
  info.class_descriptor = image.file.type_descriptor(ref.class_type);
  info.name = image.file.string_at(ref.name);
  info.shorty = image.file.proto_shorty(ref.proto);
  return info;
}

const ClassLinker::MethodRefInfo& ClassLinker::method_ref_info_cached(
    const DexImage& image, uint16_t method_idx) {
  ImageCache& cache = image_cache(image);
  if (method_idx >= cache.ref_info.size()) {
    image.file.methods.at(method_idx);  // throws, like the uncached path
  }
  std::optional<MethodRefInfo>& slot = cache.ref_info[method_idx];
  if (!slot) slot = method_ref_info(image, method_idx);
  return *slot;
}

ClassLinker::ResolvedMethod ClassLinker::resolve_method_cached(
    const DexImage& image, uint16_t method_idx) {
  ImageCache& cache = image_cache(image);
  if (method_idx < cache.methods.size() && cache.methods[method_idx]) {
    return *cache.methods[method_idx];
  }
  ResolvedMethod resolved;
  resolved.method = resolve_method(image, method_idx, &resolved.framework);
  if (method_idx < cache.methods.size()) cache.methods[method_idx] = resolved;
  return resolved;
}

ClassLinker::ResolvedField ClassLinker::resolve_field_cached(
    const DexImage& image, uint16_t field_idx, bool want_static) {
  ImageCache& cache = image_cache(image);
  auto& entries = want_static ? cache.static_fields : cache.instance_fields;
  if (field_idx < entries.size() && entries[field_idx]) {
    return *entries[field_idx];
  }
  // The first resolution runs ensure_initialized (static refs) and lazy
  // class loading — both idempotent, so memoizing the result afterwards
  // changes nothing observable.
  ResolvedField resolved = resolve_field(image, field_idx, want_static);
  if (field_idx < entries.size()) entries[field_idx] = resolved;
  return resolved;
}

bool ClassLinker::instance_field_memoized(const DexImage& image,
                                          uint16_t field_idx) const {
  size_t id = static_cast<size_t>(image.id);
  if (id >= image_caches_.size() || !image_caches_[id]) return false;
  const auto& entries = image_caches_[id]->instance_fields;
  return field_idx < entries.size() && entries[field_idx].has_value();
}

Object* ClassLinker::interned_string(const DexImage& image,
                                     uint16_t string_idx) {
  ImageCache& cache = image_cache(image);
  if (string_idx >= cache.strings.size()) {
    image.file.string_at(string_idx);  // throws, like the uncached path
  }
  Object*& slot = cache.strings[string_idx];
  if (slot == nullptr) {
    slot = runtime_.heap().intern_string(image.file.string_at(string_idx));
  }
  return slot;
}

std::vector<RtClass*> ClassLinker::loaded_classes() const { return load_order_; }

}  // namespace dexlego::rt
