// Linked runtime representations of classes and methods (the ART-side
// mirror of DEX structures). RtMethod owns a *mutable* copy of its code
// item: self-modifying native code patches these arrays at runtime, which is
// precisely the behaviour DexLego's instruction-level collection defends
// against (paper Section IV-A, Code 1-3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/dex/dex.h"
#include "src/runtime/predecode.h"
#include "src/runtime/value.h"

namespace dexlego::rt {

struct RtClass;
class Runtime;
class Interpreter;
struct Frame;

// A DEX file registered with the class linker. `id` orders images by load
// time (0 = the APK's classes.ldex; dynamically loaded files follow).
struct DexImage {
  int id = 0;
  std::string source;  // "classes.ldex", "dynamic:<name>", ...
  dex::DexFile file;
};

struct RtMethod;

// Native method context. Natives receive the runtime (for heap / leak-log /
// app services) and the caller frame, and may look up and patch other
// methods' instruction arrays (the bytecodeTamper pattern).
struct NativeContext {
  Runtime& runtime;
  Interpreter& interp;
  RtMethod* caller = nullptr;   // bytecode method executing the invoke (may be null)
  uint32_t caller_pc = 0;       // dex_pc of the invoke instruction in `caller`
  Object* pending_exception = nullptr;  // set by the native to throw
};

using NativeFn =
    std::function<Value(NativeContext&, std::span<Value> args)>;

struct RtMethod {
  RtClass* declaring = nullptr;
  const DexImage* image = nullptr;
  uint32_t dex_method_idx = 0;  // into image->file.methods
  std::string name;
  std::string shorty;  // e.g. "(II)V" — dispatch key alongside the name
  uint32_t access_flags = 0;
  size_t num_params = 0;  // declared parameters (excluding `this`)

  // Mutable runtime copy of the code (bytecode methods only).
  std::unique_ptr<dex::CodeItem> code;
  // Bound implementation (native methods only).
  NativeFn native;

  // Self-modification epoch: every announced patch bumps it, and the
  // predecoded cache is only served while stamped with the current value.
  uint64_t code_generation = 0;
  // Predecoded fast path (src/runtime/predecode.h). Built lazily by the
  // interpreter's cached dispatch mode; null until first bytecode run.
  std::unique_ptr<PredecodedCode> predecoded;

  // Announced code patch: writes one unit of code->insns, bumps the
  // generation and surgically invalidates the cache slots whose decode can
  // span the unit. Direct writes to code->insns remain legal — hostile
  // natives do not announce, and the per-slot source-unit guard catches
  // them — but announced patches keep the cached path rebuild-free.
  void patch_code_unit(size_t index, uint16_t value);
  // Wholesale invalidation for structural edits (resize, array swap).
  void invalidate_code_cache();

  bool is_native() const { return (access_flags & dex::kAccNative) != 0; }
  bool is_static() const { return (access_flags & dex::kAccStatic) != 0; }
  bool is_constructor() const {
    return (access_flags & dex::kAccConstructor) != 0 || name == "<init>" ||
           name == "<clinit>";
  }
  // Total argument count including `this` for instance methods.
  size_t num_args() const { return num_params + (is_static() ? 0 : 1); }
  std::string full_name() const;
};

struct RtField {
  std::string name;
  std::string type_descriptor;
  uint32_t access_flags = 0;
  size_t slot = 0;  // static: index into RtClass::static_values;
                    // instance: absolute slot in Object::fields
  std::optional<dex::EncodedValue> init;
  const DexImage* image = nullptr;  // for decoding string initializers
};

struct RtClass {
  enum class State : uint8_t { kLoaded, kLinked, kInitializing, kInitialized };

  std::string descriptor;
  RtClass* super = nullptr;           // null for roots / framework supers
  std::string super_descriptor;       // kept even when super is framework
  const DexImage* image = nullptr;    // null for synthetic framework classes
  uint32_t access_flags = 0;
  State state = State::kLoaded;
  bool is_framework = false;

  std::vector<RtField> static_fields;
  std::vector<Value> static_values;
  std::vector<RtField> instance_fields;  // own fields; slots are absolute
  size_t instance_slot_count = 0;        // including inherited slots

  std::vector<std::unique_ptr<RtMethod>> methods;

  // Finds a method declared on this class (not supers).
  RtMethod* find_declared(std::string_view name, std::string_view shorty);
  RtMethod* find_declared(std::string_view name);  // first match by name
  // Virtual-dispatch lookup walking the superclass chain.
  RtMethod* find_dispatch(std::string_view name, std::string_view shorty);
  // Field lookup walking the superclass chain.
  RtField* find_instance_field(std::string_view name);
  RtField* find_static_field(std::string_view name);
  // Whether `ancestor` is this class or a superclass of it.
  bool is_subclass_of(const RtClass* ancestor) const;
  bool has_framework_ancestor(std::string_view ancestor_desc) const;
};

}  // namespace dexlego::rt
