// The framework builtin library — the Android-API surface our samples and
// generated apps program against. Every entry mirrors a framework behaviour
// relevant to the paper's evaluation: taint sources/sinks, string plumbing,
// reflection (Class.forName / getMethod / Method.invoke — the hook point for
// DexLego's reflection-to-direct-call replacement), dynamic DEX loading
// (the packers' release step), UI wiring for the fuzzer, intents for ICC
// samples, and the View-tag marshalling where the TaintDroid/TaintART
// analogs lose taint.
#include <string>

#include "src/dex/io.h"
#include "src/runtime/runtime.h"
#include "src/runtime/source_sink.h"
#include "src/support/bytes.h"

namespace dexlego::rt {

namespace {

std::string value_as_string(const Value& v) { return render_value(v); }

uint32_t value_taint(const Value& v) {
  return v.taint | (v.ref != nullptr ? v.ref->taint : 0u);
}

Value make_string(NativeContext& ctx, std::string s, uint32_t taint = 0) {
  return Value::Ref(ctx.runtime.heap().new_string(std::move(s), taint));
}

void throw_ex(NativeContext& ctx, const char* descriptor, std::string msg) {
  ctx.pending_exception = ctx.interp.make_exception(descriptor, std::move(msg));
}

// Converts "com.pkg.Cls" to "Lcom/pkg/Cls;" (accepts descriptors verbatim).
std::string to_descriptor(const std::string& name) {
  if (!name.empty() && name.front() == 'L' && name.back() == ';') return name;
  std::string out = "L";
  for (char c : name) out += (c == '.') ? '/' : c;
  out += ";";
  return out;
}

void install_object_and_strings(Runtime& rt) {
  // Constructor chains that bottom out in framework classes are no-ops.
  rt.register_builtin("*-><init>", [](NativeContext&, std::span<Value>) {
    return Value::Null();
  });

  rt.register_builtin("Ljava/lang/String;->concat",
                      [](NativeContext& ctx, std::span<Value> args) {
                        std::string s = value_as_string(args[0]) +
                                        (args.size() > 1 ? value_as_string(args[1]) : "");
                        uint32_t taint = value_taint(args[0]) |
                                         (args.size() > 1 ? value_taint(args[1]) : 0);
                        return make_string(ctx, std::move(s), taint);
                      });
  rt.register_builtin("Ljava/lang/String;->equals",
                      [](NativeContext&, std::span<Value> args) {
                        bool eq = args.size() > 1 &&
                                  value_as_string(args[0]) == value_as_string(args[1]);
                        uint32_t taint = value_taint(args[0]) |
                                         (args.size() > 1 ? value_taint(args[1]) : 0);
                        return Value::Int(eq ? 1 : 0, taint);
                      });
  rt.register_builtin("Ljava/lang/String;->length",
                      [](NativeContext&, std::span<Value> args) {
                        return Value::Int(
                            static_cast<int64_t>(value_as_string(args[0]).size()),
                            value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->isEmpty",
                      [](NativeContext&, std::span<Value> args) {
                        return Value::Int(value_as_string(args[0]).empty() ? 1 : 0,
                                          value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->charAt",
                      [](NativeContext& ctx, std::span<Value> args) {
                        std::string s = value_as_string(args[0]);
                        int64_t i = args.size() > 1 ? args[1].test_value() : 0;
                        if (i < 0 || static_cast<size_t>(i) >= s.size()) {
                          throw_ex(ctx, "Ljava/lang/StringIndexOutOfBoundsException;",
                                   std::to_string(i));
                          return Value::Null();
                        }
                        return Value::Int(s[static_cast<size_t>(i)],
                                          value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->substring",
                      [](NativeContext& ctx, std::span<Value> args) {
                        std::string s = value_as_string(args[0]);
                        size_t from = args.size() > 1
                                          ? static_cast<size_t>(
                                                std::max<int64_t>(0, args[1].test_value()))
                                          : 0;
                        if (from > s.size()) from = s.size();
                        return make_string(ctx, s.substr(from), value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->contains",
                      [](NativeContext&, std::span<Value> args) {
                        bool found =
                            args.size() > 1 &&
                            value_as_string(args[0]).find(value_as_string(args[1])) !=
                                std::string::npos;
                        return Value::Int(found ? 1 : 0, value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->toUpperCase",
                      [](NativeContext& ctx, std::span<Value> args) {
                        std::string s = value_as_string(args[0]);
                        for (char& c : s) c = static_cast<char>(std::toupper(c));
                        return make_string(ctx, std::move(s), value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->hashCode",
                      [](NativeContext&, std::span<Value> args) {
                        int32_t h = 0;
                        for (char c : value_as_string(args[0])) h = 31 * h + c;
                        return Value::Int(h, value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/String;->valueOf",
                      [](NativeContext& ctx, std::span<Value> args) {
                        return make_string(ctx, value_as_string(args[0]),
                                           value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/Integer;->parseInt",
                      [](NativeContext& ctx, std::span<Value> args) {
                        try {
                          return Value::Int(std::stoll(value_as_string(args[0])),
                                            value_taint(args[0]));
                        } catch (const std::exception&) {
                          throw_ex(ctx, "Ljava/lang/NumberFormatException;",
                                   value_as_string(args[0]));
                          return Value::Null();
                        }
                      });
  rt.register_builtin("Ljava/lang/Integer;->toString",
                      [](NativeContext& ctx, std::span<Value> args) {
                        return make_string(ctx, std::to_string(args[0].test_value()),
                                           value_taint(args[0]));
                      });
  rt.register_builtin("*->toString", [](NativeContext& ctx, std::span<Value> args) {
    return make_string(ctx, value_as_string(args[0]), value_taint(args[0]));
  });

  // StringBuilder over the receiver's str payload. The receiver must not be
  // a String object: on-device the verifier makes that unrepresentable, and
  // here strings can be shared interned literals (Heap::intern_string) — a
  // hostile invoke-virtual of append on a const-string receiver must not
  // mutate the literal every other use site sees.
  rt.register_builtin("Ljava/lang/StringBuilder;-><init>",
                      [](NativeContext&, std::span<Value> args) {
                        if (!args.empty() && args[0].ref != nullptr &&
                            args[0].ref->kind != Object::Kind::kString) {
                          args[0].ref->str =
                              args.size() > 1 ? value_as_string(args[1]) : "";
                          args[0].ref->taint |=
                              args.size() > 1 ? value_taint(args[1]) : 0;
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Ljava/lang/StringBuilder;->append",
                      [](NativeContext&, std::span<Value> args) {
                        if (!args.empty() && args[0].ref != nullptr) {
                          if (args.size() > 1 &&
                              args[0].ref->kind != Object::Kind::kString) {
                            args[0].ref->str += value_as_string(args[1]);
                            args[0].ref->taint |= value_taint(args[1]);
                          }
                          return Value::Ref(args[0].ref);
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Ljava/lang/StringBuilder;->toString",
                      [](NativeContext& ctx, std::span<Value> args) {
                        if (!args.empty() && args[0].ref != nullptr) {
                          return make_string(ctx, args[0].ref->str,
                                             args[0].ref->taint);
                        }
                        return Value::Null();
                      });

  rt.register_builtin("Ljava/lang/Math;->abs",
                      [](NativeContext&, std::span<Value> args) {
                        int64_t v = args[0].test_value();
                        return Value::Int(v < 0 ? -v : v, value_taint(args[0]));
                      });
  rt.register_builtin("Ljava/lang/Math;->max",
                      [](NativeContext&, std::span<Value> args) {
                        return Value::Int(
                            std::max(args[0].test_value(), args[1].test_value()),
                            value_taint(args[0]) | value_taint(args[1]));
                      });
  rt.register_builtin("Ljava/lang/Math;->min",
                      [](NativeContext&, std::span<Value> args) {
                        return Value::Int(
                            std::min(args[0].test_value(), args[1].test_value()),
                            value_taint(args[0]) | value_taint(args[1]));
                      });
  rt.register_builtin("Ljava/lang/System;->exit",
                      [](NativeContext& ctx, std::span<Value>) {
                        ctx.interp.request_abort("System.exit");
                        return Value::Null();
                      });
  rt.register_builtin("Ljava/lang/System;->currentTimeMillis",
                      [](NativeContext& ctx, std::span<Value>) {
                        // Deterministic stand-in: the executed-step counter.
                        return Value::Int(static_cast<int64_t>(ctx.interp.steps()));
                      });
}

void install_sources_and_sinks(Runtime& rt) {
  for (const SourceSpec& spec : taint_sources()) {
    std::string key = std::string(spec.class_descriptor) + "->" + spec.method;
    uint32_t taint = spec.taint;
    std::string value = spec.sample_value;
    rt.register_builtin(key, [taint, value](NativeContext& ctx, std::span<Value>) {
      return make_string(ctx, value, taint);
    });
  }
  for (const SinkSpec& spec : taint_sinks()) {
    std::string key = std::string(spec.class_descriptor) + "->" + spec.method;
    std::string sink_name = spec.sink_name;
    rt.register_builtin(key, [sink_name](NativeContext& ctx, std::span<Value> args) {
      // Skip the receiver for instance sinks (SmsManager objects carry no
      // data); keep it simple and record all arguments.
      ctx.runtime.record_sink(sink_name, args);
      return Value::Null();
    });
  }
  rt.register_builtin("Landroid/telephony/SmsManager;->getDefault",
                      [](NativeContext& ctx, std::span<Value>) {
                        return Value::Ref(ctx.runtime.heap().new_framework(
                            "Landroid/telephony/SmsManager;"));
                      });
}

void install_reflection(Runtime& rt) {
  rt.register_builtin(
      "Ljava/lang/Class;->forName", [](NativeContext& ctx, std::span<Value> args) {
        std::string name = value_as_string(args[0]);
        RtClass* cls = ctx.runtime.linker().resolve(to_descriptor(name));
        if (cls == nullptr) {
          throw_ex(ctx, "Ljava/lang/ClassNotFoundException;", name);
          return Value::Null();
        }
        Object* obj = ctx.runtime.heap().new_framework("Ljava/lang/Class;");
        obj->class_ref = cls;
        return Value::Ref(obj);
      });
  rt.register_builtin(
      "Ljava/lang/Class;->getMethod", [](NativeContext& ctx, std::span<Value> args) {
        if (args[0].is_null_ref() || args[0].ref->class_ref == nullptr) {
          throw_ex(ctx, "Ljava/lang/NullPointerException;", "getMethod on null");
          return Value::Null();
        }
        std::string name = value_as_string(args[1]);
        RtMethod* m = args[0].ref->class_ref->find_dispatch(name, "");
        if (m == nullptr) {
          throw_ex(ctx, "Ljava/lang/NoSuchMethodException;", name);
          return Value::Null();
        }
        Object* obj =
            ctx.runtime.heap().new_framework("Ljava/lang/reflect/Method;");
        obj->method_ref = m;
        return Value::Ref(obj);
      });
  rt.register_builtin(
      "Ljava/lang/Class;->newInstance",
      [](NativeContext& ctx, std::span<Value> args) {
        if (args[0].is_null_ref() || args[0].ref->class_ref == nullptr) {
          throw_ex(ctx, "Ljava/lang/NullPointerException;", "newInstance on null");
          return Value::Null();
        }
        RtClass* cls = args[0].ref->class_ref;
        ctx.runtime.linker().ensure_initialized(*cls);
        Object* obj = ctx.runtime.heap().new_instance(cls, cls->descriptor,
                                                      cls->instance_slot_count);
        if (RtMethod* ctor = cls->find_declared("<init>", "()V")) {
          auto r = ctx.interp.call(*ctor, {Value::Ref(obj)}, ctx.caller,
                                   ctx.caller_pc);
          if (r.exception != nullptr) {
            ctx.pending_exception = r.exception;
            return Value::Null();
          }
        }
        return Value::Ref(obj);
      });
  rt.register_builtin(
      "Ljava/lang/reflect/Method;->invoke",
      [](NativeContext& ctx, std::span<Value> args) {
        if (args[0].is_null_ref() || args[0].ref->method_ref == nullptr) {
          throw_ex(ctx, "Ljava/lang/NullPointerException;", "invoke on null Method");
          return Value::Null();
        }
        RtMethod* target = args[0].ref->method_ref;
        // ART resolves the reflective target here — exactly the point where
        // DexLego records it for direct-call replacement (paper IV-D).
        if (ctx.caller != nullptr) {
          ctx.runtime.hook_chain().dispatch_reflective_invoke(
              *ctx.caller, ctx.caller_pc, *target);
        }
        std::vector<Value> call_args;
        if (!target->is_static()) {
          if (args.size() < 2) {
            throw_ex(ctx, "Ljava/lang/IllegalArgumentException;",
                     "missing receiver");
            return Value::Null();
          }
          call_args.push_back(args[1]);
        }
        for (size_t i = 2; i < args.size(); ++i) call_args.push_back(args[i]);
        auto r = ctx.interp.call(*target, std::move(call_args), ctx.caller,
                                 ctx.caller_pc);
        if (r.exception != nullptr) {
          ctx.pending_exception = r.exception;
          return Value::Null();
        }
        return r.ret;
      });
}

void install_platform(Runtime& rt) {
  rt.register_builtin("Landroid/os/Build;->isEmulator",
                      [](NativeContext& ctx, std::span<Value>) {
                        return Value::Int(ctx.runtime.config().device ==
                                                  DeviceProfile::kEmulator
                                              ? 1
                                              : 0);
                      });
  rt.register_builtin("Landroid/os/Build;->isTablet",
                      [](NativeContext& ctx, std::span<Value>) {
                        return Value::Int(
                            ctx.runtime.config().device == DeviceProfile::kTablet
                                ? 1
                                : 0);
                      });
  rt.register_builtin(
      "Ldexlego/api/Crypto;->xorDecode",
      [](NativeContext& ctx, std::span<Value> args) {
        std::string s = value_as_string(args[0]);
        auto key = static_cast<char>(args.size() > 1 ? args[1].test_value() : 0);
        for (char& c : s) c = static_cast<char>(c ^ key);
        return make_string(ctx, std::move(s),
                           value_taint(args[0]) |
                               (args.size() > 1 ? value_taint(args[1]) : 0));
      });
  rt.register_builtin("Ldexlego/api/Io;->writeFile",
                      [](NativeContext& ctx, std::span<Value> args) {
                        // Taint intentionally dropped: no evaluated tool models
                        // external-file flows (paper, PrivateDataLeak3).
                        ctx.runtime.fs_write(value_as_string(args[0]),
                                             value_as_string(args[1]));
                        return Value::Null();
                      });
  rt.register_builtin(
      "Landroid/view/Choreographer;->renderFrames",
      [](NativeContext&, std::span<Value> args) {
        // Framework init/display stand-in: native-side busy work that
        // instrumentation does not slow down (launch-time model, Table VIII).
        int64_t k = args.empty() ? 1 : args[0].test_value();
        uint64_t x = 88172645463325252ull;
        for (int64_t i = 0; i < k * 1000; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
        }
        return Value::Int(static_cast<int64_t>(x & 0x7fffffff));
      });
  rt.register_builtin(
      "Ldexlego/api/Sanitizer;->scrub",
      [](NativeContext& ctx, std::span<Value> args) {
        // Declassification: returns the content with taint cleared.
        return make_string(ctx, args.empty() ? "" : value_as_string(args[0]), 0);
      });
  rt.register_builtin("Ldexlego/api/Io;->readFile",
                      [](NativeContext& ctx, std::span<Value> args) {
                        auto data = ctx.runtime.fs_read(value_as_string(args[0]));
                        return make_string(ctx, data.value_or(""), 0);
                      });
}

void install_ui_and_intents(Runtime& rt) {
  rt.register_builtin("Landroid/app/Activity;->setContentView",
                      [](NativeContext&, std::span<Value>) { return Value::Null(); });
  rt.register_builtin("Landroid/app/Activity;->findViewById",
                      [](NativeContext& ctx, std::span<Value> args) {
                        int id = static_cast<int>(
                            args.size() > 1 ? args[1].test_value() : 0);
                        return Value::Ref(ctx.runtime.ui_view(id));
                      });
  rt.register_builtin(
      "Landroid/view/View;->setOnClickListener",
      [](NativeContext& ctx, std::span<Value> args) {
        if (!args[0].is_null_ref()) {
          auto it = args[0].ref->bag.find("id");
          int id = it != args[0].ref->bag.end()
                       ? static_cast<int>(it->second.test_value())
                       : 0;
          ctx.runtime.ui_set_click_listener(id,
                                            args.size() > 1 ? args[1] : Value::Null());
        }
        return Value::Null();
      });
  // View tags marshal through the framework: the dynamic-taint presets lose
  // taint here (taint_through_framework=false), static summaries keep it.
  rt.register_builtin("Landroid/view/View;->setTag",
                      [](NativeContext& ctx, std::span<Value> args) {
                        if (!args[0].is_null_ref() && args.size() > 1) {
                          args[0].ref->bag["tag"] =
                              ctx.runtime.framework_marshal(args[1]);
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Landroid/view/View;->getTag",
                      [](NativeContext&, std::span<Value> args) {
                        if (!args[0].is_null_ref()) {
                          auto it = args[0].ref->bag.find("tag");
                          if (it != args[0].ref->bag.end()) return it->second;
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Landroid/widget/EditText;->getText",
                      [](NativeContext& ctx, std::span<Value> args) {
                        int id = 0;
                        if (!args[0].is_null_ref()) {
                          auto it = args[0].ref->bag.find("id");
                          if (it != args[0].ref->bag.end()) {
                            id = static_cast<int>(it->second.test_value());
                          }
                        }
                        return make_string(ctx, ctx.runtime.text_input(id));
                      });

  rt.register_builtin("Landroid/content/Intent;-><init>",
                      [](NativeContext& ctx, std::span<Value> args) {
                        if (!args[0].is_null_ref() && args.size() > 1) {
                          args[0].ref->bag["target"] = Value::Ref(
                              ctx.runtime.heap().new_string(
                                  to_descriptor(value_as_string(args[1]))));
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Landroid/content/Intent;->putExtra",
                      [](NativeContext&, std::span<Value> args) {
                        if (!args[0].is_null_ref() && args.size() > 2) {
                          args[0].ref->bag["extra:" + value_as_string(args[1])] =
                              args[2];
                        }
                        return args.empty() ? Value::Null() : args[0];
                      });
  rt.register_builtin("Landroid/content/Intent;->getStringExtra",
                      [](NativeContext&, std::span<Value> args) {
                        if (!args[0].is_null_ref() && args.size() > 1) {
                          auto it = args[0].ref->bag.find(
                              "extra:" + value_as_string(args[1]));
                          if (it != args[0].ref->bag.end()) return it->second;
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Landroid/app/Activity;->startActivity",
                      [](NativeContext& ctx, std::span<Value> args) {
                        if (args.size() > 1 && !args[1].is_null_ref()) {
                          ctx.runtime.start_activity_obj(args[1].ref);
                        }
                        return Value::Null();
                      });
  rt.register_builtin("Landroid/app/Activity;->getIntent",
                      [](NativeContext& ctx, std::span<Value>) {
                        Object* intent = ctx.runtime.current_intent();
                        return intent != nullptr ? Value::Ref(intent) : Value::Null();
                      });
  rt.register_builtin(
      "Landroid/os/Handler;->post", [](NativeContext& ctx, std::span<Value> args) {
        // Synchronous dispatch of Runnable.run() — enough for callback samples.
        if (args.size() > 1 && !args[1].is_null_ref() &&
            args[1].ref->klass != nullptr) {
          if (RtMethod* run = args[1].ref->klass->find_dispatch("run", "()V")) {
            auto r = ctx.interp.call(*run, {args[1]}, ctx.caller, ctx.caller_pc);
            if (r.exception != nullptr) ctx.pending_exception = r.exception;
          }
        }
        return Value::Null();
      });
}

void install_dynamic_loading(Runtime& rt) {
  rt.register_builtin(
      "Ldalvik/system/DexClassLoader;->loadFromAsset",
      [](NativeContext& ctx, std::span<Value> args) {
        const dex::Apk* apk = ctx.runtime.apk();
        if (apk == nullptr) {
          throw_ex(ctx, "Ljava/io/IOException;", "no apk");
          return Value::Null();
        }
        std::string asset = value_as_string(args[0]);
        if (!apk->has_entry(asset)) {
          throw_ex(ctx, "Ljava/io/FileNotFoundException;", asset);
          return Value::Null();
        }
        std::vector<uint8_t> bytes = apk->entry(asset);
        auto key = static_cast<uint8_t>(args.size() > 1 ? args[1].test_value() : 0);
        if (key != 0) {
          uint8_t rolling = key;
          for (uint8_t& b : bytes) {
            b ^= rolling;
            rolling = static_cast<uint8_t>(rolling * 31 + 7);
          }
        }
        try {
          ctx.runtime.load_dex_buffer(bytes, "dynamic:" + asset);
        } catch (const support::ParseError& e) {
          throw_ex(ctx, "Ljava/lang/ClassNotFoundException;", e.what());
        }
        return Value::Null();
      });
  rt.register_builtin("Ldalvik/system/DexClassLoader;->loadClass",
                      [](NativeContext& ctx, std::span<Value> args) {
                        // Same resolution path as Class.forName.
                        std::string name =
                            value_as_string(args[args.size() > 1 ? 1 : 0]);
                        RtClass* cls =
                            ctx.runtime.linker().resolve(to_descriptor(name));
                        if (cls == nullptr) {
                          throw_ex(ctx, "Ljava/lang/ClassNotFoundException;", name);
                          return Value::Null();
                        }
                        Object* obj = ctx.runtime.heap().new_framework(
                            "Ljava/lang/Class;");
                        obj->class_ref = cls;
                        return Value::Ref(obj);
                      });
}

}  // namespace

void install_framework_builtins(Runtime& rt) {
  install_object_and_strings(rt);
  install_sources_and_sinks(rt);
  install_reflection(rt);
  install_platform(rt);
  install_ui_and_intents(rt);
  install_dynamic_loading(rt);
}

}  // namespace dexlego::rt
