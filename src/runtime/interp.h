// The bytecode interpreter — the ExecuteSwitchImpl analog. A switch-based
// dispatch loop over 16-bit code units driven by a dex_pc variable, exactly
// the structure DexLego instruments (paper Section IV-A). The instruction
// array is re-fetched from the method on every step so native code patching
// it mid-execution (self-modifying apps) is observed faithfully.
//
// Three dispatch tiers (RuntimeConfig::dispatch, docs/INTERPRETER.md):
// kCached serves each step from the method's predecoded cache
// (src/runtime/predecode.h — decode-once, source-unit-guarded against
// self-modification, with inline caches for method/field/string pool refs);
// kThreaded adds direct-threaded dispatch through handler addresses
// resolved into the predecoded slots plus fused superinstructions
// (src/runtime/interp_threaded.cpp); kBaseline decodes and resolves
// everything every step and is kept as the differential oracle. All tiers
// must produce byte-identical traces (tests/interp_cache_test.cpp,
// tests/dispatch_tier_test.cpp).
//
// The interpreter also implements the dynamic-taint substrate (value taint
// masks propagate through moves/arithmetic/fields) and the two
// force-execution interposition points: branch-outcome override and
// unhandled-exception tolerance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/rt_types.h"

namespace dexlego::rt {

class Runtime;

// Top-level execution outcome.
struct ExecOutcome {
  Value ret = Value::Null();
  bool completed = false;          // returned normally
  bool uncaught = false;           // an exception escaped the entry frame
  std::string exception_type;      // descriptor of the escaped exception
  std::string exception_message;
  bool aborted = false;            // step limit / System.exit / internal stop
  std::string abort_reason;
};

class Interpreter {
 public:
  explicit Interpreter(Runtime& runtime) : rt_(runtime) {}

  // Invokes a method as a fresh top-level activation (lifecycle callback,
  // <clinit>, fuzzer event...). Clears any previous abort state.
  ExecOutcome invoke(RtMethod& method, std::vector<Value> args);

  // Nested call used by invoke instructions and reflection builtins.
  struct CallResult {
    Value ret = Value::Null();
    Object* exception = nullptr;  // non-null: the call threw
  };
  CallResult call(RtMethod& method, std::vector<Value> args,
                  RtMethod* caller = nullptr, uint32_t caller_pc = 0);

  // Cumulative executed-instruction counter (performance metric for Fig. 6;
  // budget for fuzzing runs).
  uint64_t steps() const { return steps_; }
  void reset_steps() { steps_ = 0; }

  // Stops execution as soon as possible (System.exit, harness timeouts).
  void request_abort(std::string reason);
  bool aborted() const { return aborted_; }

  Object* make_exception(const char* descriptor, std::string message);

 private:
  CallResult run_bytecode(RtMethod& method, std::vector<Value>& args);
  // The direct-threaded tier's core loop (src/runtime/interp_threaded.cpp):
  // computed-goto dispatch through per-slot handler addresses where the
  // compiler supports it, a dense switch over the same extended opcodes
  // elsewhere, plus superinstruction execution. Observationally equivalent
  // to run_bytecode in both of its modes.
  CallResult run_threaded(RtMethod& method, std::vector<Value>& args);
  // `ic` is the call site's inline-cache slot in cached dispatch mode,
  // nullptr in baseline mode.
  CallResult dispatch_invoke(uint8_t op_raw, RtMethod& caller, uint32_t pc,
                             uint16_t method_idx, std::vector<Value> args,
                             InlineSite* ic);
  CallResult call_builtin(const std::string& class_descriptor,
                          const std::string& name, RtMethod* caller,
                          uint32_t caller_pc, std::vector<Value>& args);

  Runtime& rt_;
  uint64_t steps_ = 0;
  int depth_ = 0;
  bool aborted_ = false;
  std::string abort_reason_;
};

}  // namespace dexlego::rt
