#include "src/runtime/interp.h"

#include <span>

#include "src/bytecode/insn.h"
#include "src/runtime/interp_ops.h"
#include "src/runtime/runtime.h"
#include "src/support/bytes.h"
#include "src/support/log.h"

namespace dexlego::rt {

using bc::Insn;
using bc::Op;
using iops::effective_taint;
using iops::eval_if;
using iops::eval_ifz;

namespace {

constexpr int kMaxCallDepth = 200;

}  // namespace

Object* Interpreter::make_exception(const char* descriptor, std::string message) {
  Object* ex = rt_.heap().new_framework(descriptor);
  ex->str = std::move(message);
  return ex;
}

void Interpreter::request_abort(std::string reason) {
  aborted_ = true;
  abort_reason_ = std::move(reason);
}

ExecOutcome Interpreter::invoke(RtMethod& method, std::vector<Value> args) {
  aborted_ = false;
  abort_reason_.clear();
  ExecOutcome outcome;
  CallResult r = call(method, std::move(args));
  if (aborted_) {
    outcome.aborted = true;
    outcome.abort_reason = abort_reason_;
    return outcome;
  }
  if (r.exception != nullptr) {
    outcome.uncaught = true;
    outcome.exception_type = r.exception->class_descriptor;
    outcome.exception_message = r.exception->str;
    return outcome;
  }
  outcome.completed = true;
  outcome.ret = r.ret;
  return outcome;
}

Interpreter::CallResult Interpreter::call(RtMethod& method, std::vector<Value> args,
                                          RtMethod* caller, uint32_t caller_pc) {
  CallResult result;
  if (aborted_) return result;
  if (depth_ >= kMaxCallDepth) {
    result.exception =
        make_exception("Ljava/lang/StackOverflowError;", method.full_name());
    return result;
  }
  ++depth_;
  rt_.hook_chain().dispatch_method_entry(method);

  if (method.is_native()) {
    if (!method.native) {
      if (const NativeFn* fn = rt_.find_native(method.full_name())) {
        method.native = *fn;  // bind once, like JNI registration
      }
    }
    if (!method.native) {
      result.exception =
          make_exception("Ljava/lang/UnsatisfiedLinkError;", method.full_name());
    } else {
      NativeContext ctx{rt_, *this, caller, caller_pc, nullptr};
      Value ret = method.native(ctx, std::span<Value>(args));
      if (ctx.pending_exception != nullptr) {
        result.exception = ctx.pending_exception;
      } else {
        result.ret = ret;
      }
    }
  } else if (!method.code) {
    result.exception =
        make_exception("Ljava/lang/AbstractMethodError;", method.full_name());
  } else {
    result = run_bytecode(method, args);
  }

  rt_.hook_chain().dispatch_method_exit(method);
  --depth_;
  return result;
}

Interpreter::CallResult Interpreter::run_bytecode(RtMethod& method,
                                                  std::vector<Value>& args) {
  // The direct-threaded tier lives in its own translation unit
  // (src/runtime/interp_threaded.cpp); this loop stays the kCached/kBaseline
  // reference the faster tier is differentially tested against.
  if (rt_.config().dispatch == DispatchMode::kThreaded) {
    return run_threaded(method, args);
  }
  CallResult out;
  const uint16_t registers = method.code->registers_size;
  const uint16_t ins = method.code->ins_size;
  std::vector<Value> regs(registers, Value::Null());
  size_t base = registers - ins;
  for (size_t i = 0; i < args.size() && i < ins; ++i) regs[base + i] = args[i];

  const bool cached = rt_.config().dispatch == DispatchMode::kCached;
  ClassLinker& linker = rt_.linker();

  Value result_reg = Value::Null();   // move-result source
  Object* caught = nullptr;           // move-exception source
  Object* pending = nullptr;          // in-flight exception
  size_t pc = 0;

  for (;;) {
    if (aborted_) return {};
    if (++steps_ > rt_.config().step_limit) {
      request_abort("step limit exceeded");
      return {};
    }

    // Re-fetch every iteration: native code may have patched (even resized)
    // the array since the previous instruction.
    std::span<const uint16_t> insns(method.code->insns);
    if (pc >= insns.size()) {
      out.exception = make_exception("Ljava/lang/VerifyError;",
                                     "pc out of bounds in " + method.full_name());
      return out;
    }

    rt_.hook_chain().dispatch_instruction(method, static_cast<uint32_t>(pc),
                                          insns);

    // `cache` is re-looked-up every step and the decoded insn is copied
    // out of the slot: nested execution (invokes, clinit inside field
    // resolution, recursion into this very method, hooks) can patch,
    // rebuild or wholesale-invalidate this method's cache while this frame
    // is mid-instruction, so a reference into the slot array must not
    // outlive the fetch.
    PredecodedCode* cache = nullptr;
    Insn insn;
    try {
      if (cached) {
        cache = method.predecoded.get();
        if (cache == nullptr) {
          method.predecoded = std::make_unique<PredecodedCode>();
          cache = method.predecoded.get();
          cache->rebuild(insns, method.code_generation);
        } else if (!cache->valid_for(insns, method.code_generation)) {
          if (cache->stats().rebuilds < PredecodedCode::kMaxRebuilds) {
            cache->rebuild(insns, method.code_generation);
          } else {
            cache = nullptr;  // hostile churn: degrade to decode-every-step
          }
        }
        if (cache != nullptr) {
          insn = cache->fetch(insns, pc);
        } else {
          insn = bc::decode_at(insns, pc);
        }
      } else {
        insn = bc::decode_at(insns, pc);
      }
    } catch (const support::ParseError& e) {
      out.exception = make_exception("Ljava/lang/VerifyError;", e.what());
      return out;
    }

    size_t next = pc + insn.width;

    try {
      switch (insn.op) {
        case Op::kNop:
          break;
        case Op::kMove:
          regs.at(insn.a) = regs.at(insn.b);
          break;
        case Op::kConst16:
        case Op::kConst32:
        case Op::kConstWide:
          regs.at(insn.a) = Value::Int(insn.lit);
          break;
        case Op::kConstString: {
          // Interned in both modes (Dalvik semantics): repeat executions of
          // one literal — and the same literal elsewhere — share an object,
          // so if-eq identity checks on literals hold.
          Object* s = cache != nullptr
                          ? linker.interned_string(*method.image, insn.idx)
                          : rt_.heap().intern_string(
                                method.image->file.string_at(insn.idx));
          regs.at(insn.a) = Value::Ref(s);
          break;
        }
        case Op::kConstNull:
          regs.at(insn.a) = Value::Null();
          break;
        case Op::kMoveResult:
          regs.at(insn.a) = result_reg;
          break;
        case Op::kMoveException:
          regs.at(insn.a) =
              caught != nullptr ? Value::Ref(caught) : Value::Null();
          break;
        case Op::kReturnVoid:
          return out;
        case Op::kReturn:
          out.ret = regs.at(insn.a);
          return out;
        case Op::kThrow: {
          const Value& v = regs.at(insn.a);
          pending = v.is_null_ref()
                        ? make_exception("Ljava/lang/NullPointerException;",
                                         "throw on null")
                        : v.ref;
          break;
        }
        case Op::kGoto:
          next = pc + static_cast<size_t>(insn.off);
          break;
        case Op::kIfEq:
        case Op::kIfNe:
        case Op::kIfLt:
        case Op::kIfGe:
        case Op::kIfGt:
        case Op::kIfLe:
        case Op::kIfEqz:
        case Op::kIfNez:
        case Op::kIfLtz:
        case Op::kIfGez:
        case Op::kIfGtz:
        case Op::kIfLez: {
          bool taken = bc::is_two_reg_if(insn.op)
                           ? eval_if(insn.op, regs.at(insn.a), regs.at(insn.b))
                           : eval_ifz(insn.op, regs.at(insn.a));
          bool forced = taken;
          const HookChain& chain = rt_.hook_chain();
          if (chain.dispatch_force_branch(method, static_cast<uint32_t>(pc),
                                          &forced)) {
            taken = forced;
          }
          chain.dispatch_branch(method, static_cast<uint32_t>(pc), taken);
          if (taken) next = pc + static_cast<size_t>(insn.off);
          break;
        }
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kRem:
        case Op::kAnd:
        case Op::kOr:
        case Op::kXor:
        case Op::kShl:
        case Op::kShr:
        case Op::kCmp: {
          int64_t b = regs.at(insn.b).test_value();
          int64_t c = regs.at(insn.c).test_value();
          uint32_t taint =
              effective_taint(regs.at(insn.b)) | effective_taint(regs.at(insn.c));
          int64_t r = 0;
          switch (insn.op) {
            case Op::kAdd: r = b + c; break;
            case Op::kSub: r = b - c; break;
            case Op::kMul: r = b * c; break;
            case Op::kDiv:
            case Op::kRem:
              if (c == 0) {
                pending = make_exception("Ljava/lang/ArithmeticException;",
                                         "divide by zero");
              } else {
                r = insn.op == Op::kDiv ? b / c : b % c;
              }
              break;
            case Op::kAnd: r = b & c; break;
            case Op::kOr: r = b | c; break;
            case Op::kXor: r = b ^ c; break;
            case Op::kShl: r = b << (c & 63); break;
            case Op::kShr: r = b >> (c & 63); break;
            case Op::kCmp: r = (b < c) ? -1 : (b > c ? 1 : 0); break;
            default: break;
          }
          if (pending == nullptr) regs.at(insn.a) = Value::Int(r, taint);
          break;
        }
        case Op::kAddLit8:
        case Op::kMulLit8: {
          const Value& b = regs.at(insn.b);
          int64_t r = insn.op == Op::kAddLit8 ? b.test_value() + insn.lit
                                              : b.test_value() * insn.lit;
          regs.at(insn.a) = Value::Int(r, effective_taint(b));
          break;
        }
        case Op::kNeg:
        case Op::kNot: {
          const Value& b = regs.at(insn.b);
          int64_t r = insn.op == Op::kNeg ? -b.test_value() : ~b.test_value();
          regs.at(insn.a) = Value::Int(r, effective_taint(b));
          break;
        }
        case Op::kNewInstance: {
          const std::string& desc = method.image->file.type_descriptor(insn.idx);
          if (rt_.linker().is_framework_descriptor(desc)) {
            regs.at(insn.a) = Value::Ref(rt_.heap().new_framework(desc));
          } else {
            RtClass* cls = rt_.linker().ensure_initialized(desc);
            if (cls == nullptr) {
              pending = make_exception("Ljava/lang/NoClassDefFoundError;", desc);
            } else {
              regs.at(insn.a) = Value::Ref(
                  rt_.heap().new_instance(cls, desc, cls->instance_slot_count));
            }
          }
          break;
        }
        case Op::kNewArray: {
          int64_t len = regs.at(insn.b).test_value();
          if (len < 0) {
            pending = make_exception("Ljava/lang/NegativeArraySizeException;",
                                     std::to_string(len));
          } else {
            const std::string& desc = method.image->file.type_descriptor(insn.idx);
            regs.at(insn.a) =
                Value::Ref(rt_.heap().new_array(desc, static_cast<size_t>(len)));
          }
          break;
        }
        case Op::kArrayLength: {
          const Value& arr = regs.at(insn.b);
          if (arr.is_null_ref()) {
            pending = make_exception("Ljava/lang/NullPointerException;",
                                     "array-length on null");
          } else {
            regs.at(insn.a) = Value::Int(
                static_cast<int64_t>(arr.ref->elems.size()), effective_taint(arr));
          }
          break;
        }
        case Op::kAget:
        case Op::kAput: {
          const Value& arr = regs.at(insn.b);
          if (arr.is_null_ref()) {
            pending = make_exception("Ljava/lang/NullPointerException;",
                                     "array access on null");
            break;
          }
          int64_t idx = regs.at(insn.c).test_value();
          if (idx < 0 || static_cast<size_t>(idx) >= arr.ref->elems.size()) {
            pending = make_exception("Ljava/lang/ArrayIndexOutOfBoundsException;",
                                     std::to_string(idx));
            break;
          }
          if (insn.op == Op::kAget) {
            Value v = arr.ref->elems[static_cast<size_t>(idx)];
            v.taint |= arr.ref->taint;
            regs.at(insn.a) = v;
          } else {
            arr.ref->elems[static_cast<size_t>(idx)] = regs.at(insn.a);
          }
          break;
        }
        case Op::kIget:
        case Op::kIput: {
          const Value& obj = regs.at(insn.b);
          if (obj.is_null_ref()) {
            pending = make_exception("Ljava/lang/NullPointerException;",
                                     "field access on null");
            break;
          }
          auto resolved =
              cache != nullptr
                  ? linker.resolve_field_cached(*method.image, insn.idx, false)
                  : linker.resolve_field(*method.image, insn.idx, false);
          if (resolved.field == nullptr ||
              resolved.field->slot >= obj.ref->fields.size()) {
            pending = make_exception("Ljava/lang/NoSuchFieldError;",
                                     method.image->file.pretty_field(insn.idx));
            break;
          }
          if (insn.op == Op::kIget) {
            regs.at(insn.a) = obj.ref->fields[resolved.field->slot];
          } else {
            obj.ref->fields[resolved.field->slot] = regs.at(insn.a);
          }
          break;
        }
        case Op::kSget:
        case Op::kSput: {
          auto resolved =
              cache != nullptr
                  ? linker.resolve_field_cached(*method.image, insn.idx, true)
                  : linker.resolve_field(*method.image, insn.idx, true);
          if (resolved.field == nullptr) {
            pending = make_exception("Ljava/lang/NoSuchFieldError;",
                                     method.image->file.pretty_field(insn.idx));
            break;
          }
          if (insn.op == Op::kSget) {
            regs.at(insn.a) = resolved.cls->static_values.at(resolved.field->slot);
          } else {
            resolved.cls->static_values.at(resolved.field->slot) = regs.at(insn.a);
          }
          break;
        }
        case Op::kInvokeVirtual:
        case Op::kInvokeDirect:
        case Op::kInvokeStatic: {
          std::vector<Value> call_args;
          call_args.reserve(insn.a);
          for (uint8_t i = 0; i < insn.a; ++i) call_args.push_back(regs.at(insn.args[i]));
          InlineSite* ic = cache != nullptr ? &cache->inline_site(pc) : nullptr;
          CallResult r =
              dispatch_invoke(static_cast<uint8_t>(insn.op), method,
                              static_cast<uint32_t>(pc), insn.idx,
                              std::move(call_args), ic);
          if (aborted_) return {};
          if (r.exception != nullptr) {
            pending = r.exception;
          } else {
            result_reg = r.ret;
          }
          break;
        }
        case Op::kPackedSwitch: {
          bc::SwitchPayload payload;
          try {
            payload = bc::read_switch_payload(insns, pc, insn);
          } catch (const support::ParseError& e) {
            pending = make_exception("Ljava/lang/VerifyError;", e.what());
            break;
          }
          int64_t v = regs.at(insn.a).test_value();
          int64_t rel = v - payload.first_key;
          if (rel >= 0 && rel < static_cast<int64_t>(payload.rel_targets.size())) {
            next = pc + static_cast<size_t>(
                            payload.rel_targets[static_cast<size_t>(rel)]);
          }
          break;
        }
        case Op::kInstanceOf: {
          const Value& obj = regs.at(insn.b);
          const std::string& desc = method.image->file.type_descriptor(insn.idx);
          bool match = false;
          if (!obj.is_null_ref()) {
            if (obj.ref->klass != nullptr) {
              for (RtClass* c = obj.ref->klass; c != nullptr; c = c->super) {
                if (c->descriptor == desc) match = true;
              }
            }
            if (obj.ref->class_descriptor == desc) match = true;
          }
          regs.at(insn.a) = Value::Int(match ? 1 : 0);
          break;
        }
        case Op::kPayload:
          pending = make_exception("Ljava/lang/VerifyError;",
                                   "executed switch payload");
          break;
      }
    } catch (const std::out_of_range& e) {
      // Self-modifying code can write garbage indices; surface as VerifyError.
      pending = make_exception("Ljava/lang/VerifyError;", e.what());
    }

    if (pending != nullptr) {
      bool tolerated = rt_.hook_chain().dispatch_tolerate_exception(
          method, static_cast<uint32_t>(pc));
      if (tolerated) {
        pending = nullptr;
        pc += insn.width;  // skip the faulting instruction
        continue;
      }
      const dex::TryItem* handler = nullptr;
      for (const dex::TryItem& t : method.code->tries) {
        if (pc >= t.start_pc && pc < t.end_pc) {
          handler = &t;
          break;
        }
      }
      if (handler != nullptr) {
        caught = pending;
        pending = nullptr;
        pc = handler->handler_pc;
        continue;
      }
      out.exception = pending;
      return out;
    }

    pc = next;
  }
}

Interpreter::CallResult Interpreter::dispatch_invoke(uint8_t op_raw,
                                                     RtMethod& caller, uint32_t pc,
                                                     uint16_t method_idx,
                                                     std::vector<Value> args,
                                                     InlineSite* ic) {
  CallResult out;
  Op op = static_cast<Op>(op_raw);
  ClassLinker& linker = rt_.linker();

  // Monomorphic fast path: the receiver class matches the one this call
  // site dispatched to last time — skip ref-info construction and the
  // find_dispatch walk entirely. The site is cleared whenever its slot
  // redecodes, so a self-mod write of the method index cannot serve a
  // stale target.
  if (ic != nullptr && ic->klass != nullptr && op == Op::kInvokeVirtual &&
      !args.empty() && args[0].is_ref() && args[0].ref != nullptr &&
      args[0].ref->klass == ic->klass) {
    return call(*ic->target, std::move(args), &caller, pc);
  }

  const bool use_cache = ic != nullptr;  // cached dispatch mode
  const ClassLinker::MethodRefInfo* info;
  ClassLinker::MethodRefInfo local_info;
  try {
    if (use_cache) {
      info = &linker.method_ref_info_cached(*caller.image, method_idx);
    } else {
      local_info = linker.method_ref_info(*caller.image, method_idx);
      info = &local_info;
    }
  } catch (const std::out_of_range&) {
    out.exception = make_exception("Ljava/lang/VerifyError;", "bad method index");
    return out;
  }

  if (op == Op::kInvokeVirtual || op == Op::kInvokeDirect) {
    // Non-reference receivers can appear in self-modified code; treat them
    // like null dispatch rather than crashing the host.
    if (args.empty() || !args[0].is_ref() || args[0].ref == nullptr) {
      out.exception = make_exception("Ljava/lang/NullPointerException;",
                                     "invoke on null: " + info->name);
      return out;
    }
  }

  if (op == Op::kInvokeVirtual) {
    Object* receiver = args[0].ref;
    if (receiver->klass != nullptr) {
      if (RtMethod* target = receiver->klass->find_dispatch(info->name, info->shorty)) {
        if (ic != nullptr) {
          ic->klass = receiver->klass;
          ic->target = target;
        }
        return call(*target, std::move(args), &caller, pc);
      }
    }
    // Framework receiver or inherited framework method: resolve against the
    // static reference type first, then the receiver's runtime type (models
    // framework subclassing, e.g. EditText methods on a View handle).
    if (rt_.find_builtin(info->class_descriptor, info->name) == nullptr &&
        rt_.find_builtin(receiver->class_descriptor, info->name) != nullptr) {
      return call_builtin(receiver->class_descriptor, info->name, &caller, pc, args);
    }
    return call_builtin(info->class_descriptor, info->name, &caller, pc, args);
  }

  // Static / direct.
  ClassLinker::ResolvedMethod resolved;
  if (use_cache) {
    resolved = linker.resolve_method_cached(*caller.image, method_idx);
  } else {
    resolved.method =
        linker.resolve_method(*caller.image, method_idx, &resolved.framework);
  }
  if (resolved.framework) {
    return call_builtin(info->class_descriptor, info->name, &caller, pc, args);
  }
  if (resolved.method == nullptr) {
    out.exception = make_exception(
        "Ljava/lang/NoSuchMethodError;",
        info->class_descriptor + "->" + info->name + info->shorty);
    return out;
  }
  if (op == Op::kInvokeStatic) {
    linker.ensure_initialized(*resolved.method->declaring);
  }
  return call(*resolved.method, std::move(args), &caller, pc);
}

Interpreter::CallResult Interpreter::call_builtin(const std::string& class_descriptor,
                                                  const std::string& name,
                                                  RtMethod* caller,
                                                  uint32_t caller_pc,
                                                  std::vector<Value>& args) {
  CallResult out;
  const NativeFn* fn = rt_.find_builtin(class_descriptor, name);
  if (fn == nullptr) {
    if (rt_.config().lenient_framework) {
      return out;  // unknown framework call is a no-op returning null
    }
    out.exception = make_exception("Ljava/lang/NoSuchMethodError;",
                                   class_descriptor + "->" + name + " (framework)");
    return out;
  }
  NativeContext ctx{rt_, *this, caller, caller_pc, nullptr};
  Value ret = (*fn)(ctx, std::span<Value>(args));
  if (ctx.pending_exception != nullptr) {
    out.exception = ctx.pending_exception;
  } else {
    out.ret = ret;
  }
  return out;
}

}  // namespace dexlego::rt
