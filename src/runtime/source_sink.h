// Shared registry of taint sources and sinks — the single source of truth
// used by (a) the runtime builtins that implement them, (b) the dynamic
// taint presets (TaintDroid/TaintART analogs) and (c) the static analyzers'
// framework model. Keeping one table means the tools agree on what counts
// as a leak, exactly like DroidBench's SourcesAndSinks.txt convention.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "src/runtime/value.h"

namespace dexlego::rt {

struct SourceSpec {
  const char* class_descriptor;
  const char* method;
  uint32_t taint;
  const char* sample_value;  // the concrete value the builtin returns
};

struct SinkSpec {
  const char* class_descriptor;
  const char* method;
  const char* sink_name;  // "sms", "log", "net"
};

std::span<const SourceSpec> taint_sources();
std::span<const SinkSpec> taint_sinks();

// Null when the pair is not a source/sink.
const SourceSpec* find_source(std::string_view class_descriptor,
                              std::string_view method);
const SinkSpec* find_sink(std::string_view class_descriptor,
                          std::string_view method);

}  // namespace dexlego::rt
