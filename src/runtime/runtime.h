// Runtime — the modified-Android-Runtime facade. Owns the heap, class
// linker and interpreter; hosts the native-method and framework-builtin
// registries, the app services (activity lifecycle, UI event routing,
// intents, virtual files) and the sink/leak log consumed by the dynamic
// taint presets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/dex/archive.h"
#include "src/runtime/class_linker.h"
#include "src/runtime/hook_chain.h"
#include "src/runtime/hooks.h"
#include "src/runtime/interp.h"
#include "src/runtime/object.h"
#include "src/runtime/rt_types.h"

namespace dexlego::rt {

enum class DeviceProfile { kPhone, kTablet, kEmulator };

// Interpreter dispatch strategy — a three-rung tier ladder, every rung
// observationally equivalent (docs/ARCHITECTURE.md invariant 13). kCached
// predecodes instruction streams and inline-caches pool resolution
// (src/runtime/predecode.h); kThreaded additionally resolves a direct-
// threaded handler address into every predecoded slot and fuses hot
// adjacent pairs into superinstructions (src/runtime/interp_threaded.cpp);
// kBaseline re-decodes every step and re-resolves every pool ref —
// deliberately kept alive as the differential oracle the faster tiers are
// tested against (tests/interp_cache_test.cpp, tests/dispatch_tier_test.cpp,
// bench/interp_dispatch.cpp).
enum class DispatchMode : uint8_t { kCached, kBaseline, kThreaded };

struct RuntimeConfig {
  DeviceProfile device = DeviceProfile::kPhone;
  // false models the TaintDroid/TaintART taint loss through framework/native
  // marshalling (View tags, framework containers) — Table IV's Button1/3.
  bool taint_through_framework = true;
  // Unknown framework calls: no-op (true) or NoSuchMethodError (false).
  bool lenient_framework = false;
  uint64_t step_limit = 200'000'000;
  DispatchMode dispatch = DispatchMode::kCached;
  // kThreaded only: fuse hot adjacent pairs into superinstructions. Off is
  // the unfused threaded tier — the fusion property tests diff the two.
  bool fuse_superinstructions = true;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const RuntimeConfig& config() const { return cfg_; }
  RuntimeConfig& config() { return cfg_; }

  ClassLinker& linker() { return linker_; }
  Interpreter& interp() { return interp_; }
  Heap& heap() { return heap_; }

  // --- instrumentation ---
  // Members join the hook chain with their declared capability mask; the
  // two-arg overload narrows a hook to an explicit event set.
  void add_hooks(RuntimeHooks* hooks) { chain_.add(hooks); }
  void add_hooks(RuntimeHooks* hooks, uint32_t event_mask) {
    chain_.add(hooks, event_mask);
  }
  void remove_hooks(RuntimeHooks* hooks) { chain_.remove(hooks); }
  const HookChain& hook_chain() const { return chain_; }
  // Registration-ordered member view (diagnostics; dispatch goes through
  // hook_chain()'s per-event lists).
  std::span<RuntimeHooks* const> hooks() const { return chain_.members(); }

  // --- native methods (JNI analog) & framework builtins ---
  void register_native(std::string full_name, NativeFn fn);
  const NativeFn* find_native(const std::string& full_name) const;
  // Builtin keys: "Lclass;-><method>" exact or "*-><method>" fallback.
  void register_builtin(std::string key, NativeFn fn);
  const NativeFn* find_builtin(const std::string& class_descriptor,
                               const std::string& name) const;

  // --- app installation & lifecycle ---
  void install(dex::Apk apk);
  const dex::Apk* apk() const { return apk_ ? &*apk_ : nullptr; }
  // Launches the manifest entry activity: <init>, onCreate, onStart, onResume.
  ExecOutcome launch();
  Object* activity() const { return activity_; }
  // Invokes a no-arg lifecycle/callback method on the current activity.
  ExecOutcome call_activity_method(const std::string& name);

  // --- UI registry (fuzzer surface) ---
  Object* ui_view(int id);  // created on first findViewById
  void ui_set_click_listener(int id, Value listener);
  std::vector<int> ui_clickable_ids() const;
  ExecOutcome fire_click(int id);
  void set_text_input(int id, std::string text);
  std::string text_input(int id) const;

  // --- intents / inter-component communication ---
  ExecOutcome start_activity_obj(Object* intent);
  Object* current_intent() const { return current_intent_; }

  // --- sink log (dynamic taint results) ---
  struct SinkEvent {
    std::string sink;     // "sms", "log", "net"
    uint32_t taint = 0;   // combined taint of arguments; != 0 means leak
    std::string detail;   // rendered argument values
  };
  void record_sink(const std::string& sink, std::span<const Value> args);
  const std::vector<SinkEvent>& sink_events() const { return sink_events_; }
  std::vector<SinkEvent> leaks() const;
  void clear_sink_events() { sink_events_.clear(); }

  // --- virtual filesystem (external-storage flows, PrivateDataLeak3) ---
  void fs_write(const std::string& path, std::string data);
  std::optional<std::string> fs_read(const std::string& path) const;

  // --- dynamic DEX loading (packers' unpack step) ---
  const DexImage& load_dex_buffer(std::span<const uint8_t> bytes,
                                  std::string source);

  // Bridge for the class linker to run <clinit> through the interpreter.
  void run_clinit(RtMethod& clinit);

  // Helper honoring taint_through_framework for framework-marshalled values.
  Value framework_marshal(const Value& v);

 private:
  RuntimeConfig cfg_;
  Heap heap_;
  ClassLinker linker_;
  Interpreter interp_;
  HookChain chain_;
  std::map<std::string, NativeFn> natives_;
  std::map<std::string, NativeFn> builtins_;
  std::optional<dex::Apk> apk_;
  Object* activity_ = nullptr;
  Object* current_intent_ = nullptr;
  std::map<int, Object*> ui_views_;
  std::map<int, Value> click_listeners_;
  std::map<int, std::string> text_inputs_;
  std::map<std::string, std::string> files_;
  std::vector<SinkEvent> sink_events_;
};

// Registers the framework builtin library (strings, reflection, UI,
// intents, sources/sinks, crypto, dynamic loading). Called by the Runtime
// constructor; exposed for tests that build bare runtimes.
void install_framework_builtins(Runtime& rt);

// Renders a value for sink logs and diagnostics.
std::string render_value(const Value& v);

}  // namespace dexlego::rt
