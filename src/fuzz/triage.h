// Differential oracle, corpus triage and campaign driver for the fuzzer
// (docs/FUZZING.md). The oracle is the in-library twin of the test harness's
// diff_fixture round trip (tests/harness/diff_fixture.h): trace the mutant,
// reveal it through the full collect→reassemble pipeline, trace the revealed
// APK and demand identical observable behaviour plus verifier cleanliness
// and reveal idempotence. Every candidate lands in exactly one bucket:
//
//   kEquivalent — the round trip held (the expected verdict for valid apps)
//   kRejected   — the mutant was refused up front with a *clean* error
//                 (ParseError / verifier failure); a pass for structural
//                 mutants, a divergence for the pre-filtered families
//   kDivergent  — valid input, but behaviour/verification/idempotence broke
//   kCrash      — any layer failed with something other than a clean
//                 rejection (bad_alloc, out_of_range, logic_error...): the
//                 hardening bugs the structural family exists to find
//
// Divergences and crashes are deduplicated by a fingerprint of their
// normalized failure detail, auto-minimized by a delta-debugging loop that
// re-runs the oracle per reduction step, and packaged for replay
// (src/fuzz/replay.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fuzz/mutator.h"
#include "src/runtime/runtime.h"

namespace dexlego::fuzz {

enum class Outcome : uint8_t {
  kEquivalent = 0,
  kRejected = 1,
  kDivergent = 2,
  kCrash = 3,
};

std::string_view outcome_name(Outcome outcome);

struct OracleOptions {
  // Interpreter step budget per driver phase — keeps goto-loop mutants
  // bounded (both sides of the diff abort identically at the limit).
  uint64_t step_limit = 400'000;
  // Also reveal the revealed APK and demand the same behaviour again.
  bool check_idempotence = true;
  // IR differential stage: the revealed image must lift to SSA and lower
  // back byte-identically (ARCHITECTURE invariant 15), and — for
  // replay-safe mutants — the DCE-optimized lowering must trace identically
  // to the direct revealed trace (lift→lower→trace == trace).
  bool check_ir_roundtrip = true;
  // Dispatch mode for every runtime the oracle builds (traces and reveals).
  // tests/interp_cache_test.cpp runs whole campaigns in both modes and
  // demands identical reports.
  rt::DispatchMode dispatch = rt::DispatchMode::kCached;
};

struct OracleReport {
  Outcome outcome = Outcome::kEquivalent;
  // First failure, normalized (no pointers, no timings) so identical root
  // causes fingerprint identically across runs and thread counts.
  std::string detail;
  uint64_t fingerprint = 0;  // nonzero for kDivergent / kCrash
};

OracleReport run_oracle(const Mutant& mutant, const OracleOptions& options = {});

// Shrinks `ops` while the oracle keeps reproducing `fingerprint` against
// `seed`. Deterministic; at most O(|ops|^2) oracle runs. `oracle_runs`
// (optional) reports how many re-executions the loop spent.
std::vector<MutationOp> minimize_ops(Family family, const SeedInput& seed,
                                     std::vector<MutationOp> ops,
                                     uint64_t fingerprint,
                                     const OracleOptions& options,
                                     size_t* oracle_runs = nullptr);

// The delta-debugging core behind minimize_ops: drops one op at a time (back
// to front, repeated until a fixpoint) while `reproduces` holds on the
// remaining subsequence. Relative op order is preserved. Exposed so the
// convergence contract is testable without a live divergence.
std::vector<MutationOp> minimize_ops_with(
    std::vector<MutationOp> ops,
    const std::function<bool(std::span<const MutationOp>)>& reproduces,
    size_t* runs = nullptr);

// --- campaign --------------------------------------------------------------

struct CampaignOptions {
  uint64_t seed = 1;
  size_t iters = 100;
  // 0 = one worker per hardware thread. Results are byte-identical across
  // thread counts: candidate i depends only on (seed, i) and reports fold in
  // iteration order.
  size_t threads = 1;
  std::vector<Family> families = {Family::kStructural, Family::kBytecode,
                                  Family::kBehavioral, Family::kRealDex};
  int max_ops = 5;
  OracleOptions oracle;
  bool minimize = true;
};

// One deduplicated divergence/crash.
struct Finding {
  uint64_t fingerprint = 0;
  Outcome outcome = Outcome::kEquivalent;
  Family family = Family::kStructural;
  std::string seed_key;
  uint64_t iter = 0;  // first iteration that hit it
  std::string detail;
  std::vector<MutationOp> ops;  // minimized when CampaignOptions::minimize
  size_t ops_before_minimize = 0;
  size_t hits = 0;  // candidates that landed on this fingerprint
};

struct CampaignReport {
  size_t executed = 0;
  size_t equivalent = 0;
  size_t rejected = 0;
  size_t divergent = 0;
  size_t crashed = 0;
  size_t skipped = 0;  // plans that came up empty for the drawn seed
  std::map<uint64_t, Finding> findings;  // fingerprint -> finding

  double wall_ms = 0.0;        // not part of the deterministic report
  double execs_per_sec = 0.0;  // ditto

  bool clean() const { return divergent == 0 && crashed == 0; }
  // Deterministic rendering (counts + findings, no timings).
  std::string summary() const;
  // Hash of the deterministic parts; identical across runs and thread counts
  // for the same (seed, iters, families) — pinned by tests/fuzz_test.cpp.
  uint64_t report_fingerprint() const;
};

CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace dexlego::fuzz
