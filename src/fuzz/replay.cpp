#include "src/fuzz/replay.h"

#include <cstring>

#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::fuzz {

using support::ByteReader;
using support::ByteWriter;
using support::ParseError;

std::vector<uint8_t> serialize(const ReplayFile& file) {
  ByteWriter w;
  w.raw(kReplayMagic, sizeof(kReplayMagic));
  w.u32(kReplayVersion);
  w.u8(static_cast<uint8_t>(file.family));
  w.str(file.seed_key);
  w.u64(file.iter);
  w.u64(file.campaign_seed);
  w.u64(file.expected_fingerprint);
  w.u8(static_cast<uint8_t>(file.expected_outcome));
  w.str(file.note);
  w.u32(static_cast<uint32_t>(file.ops.size()));
  for (const MutationOp& op : file.ops) {
    w.u16(op.kind);
    w.u64(op.a);
    w.u64(op.b);
    w.u64(op.c);
  }
  w.u32(support::adler32(w.data()));
  return w.take();
}

ReplayFile deserialize(std::span<const uint8_t> data) {
  if (data.size() < sizeof(kReplayMagic) + 4) {
    throw ParseError("replay file too short");
  }
  // Trailing checksum covers everything before it.
  ByteReader tail(data);
  tail.seek(data.size() - 4);
  if (tail.u32() != support::adler32(data.subspan(0, data.size() - 4))) {
    throw ParseError("replay checksum mismatch");
  }

  ByteReader r(data.subspan(0, data.size() - 4));
  auto magic = r.bytes(sizeof(kReplayMagic));
  if (std::memcmp(magic.data(), kReplayMagic, sizeof(kReplayMagic)) != 0) {
    throw ParseError("bad replay magic");
  }
  if (r.u32() != kReplayVersion) throw ParseError("unknown replay version");

  ReplayFile file;
  uint8_t family = r.u8();
  if (family > static_cast<uint8_t>(Family::kRealDex)) {
    throw ParseError("bad replay family");
  }
  file.family = static_cast<Family>(family);
  file.seed_key = r.str();
  file.iter = r.u64();
  file.campaign_seed = r.u64();
  file.expected_fingerprint = r.u64();
  uint8_t outcome = r.u8();
  if (outcome > static_cast<uint8_t>(Outcome::kCrash)) {
    throw ParseError("bad replay outcome");
  }
  file.expected_outcome = static_cast<Outcome>(outcome);
  file.note = r.str();
  uint32_t count = r.u32();
  // 26 bytes per op: a hostile count cannot force a huge reserve.
  if (count > r.remaining() / 26) throw ParseError("replay op count too large");
  file.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MutationOp op;
    op.kind = r.u16();
    op.a = r.u64();
    op.b = r.u64();
    op.c = r.u64();
    file.ops.push_back(op);
  }
  if (!r.at_end()) throw ParseError("trailing bytes in replay file");
  return file;
}

std::optional<ReplayFile> try_deserialize(std::span<const uint8_t> data) {
  try {
    return deserialize(data);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

ReplayResult replay(const ReplayFile& file, const OracleOptions& options) {
  SeedInput seed = resolve_seed(file.seed_key);
  ReplayResult result;
  result.report = run_oracle(apply_ops(file.family, seed, file.ops), options);
  if (file.expected_fingerprint != 0) {
    result.matches_expectation =
        result.report.fingerprint == file.expected_fingerprint;
  } else {
    result.matches_expectation =
        result.report.outcome == Outcome::kEquivalent ||
        result.report.outcome == Outcome::kRejected;
  }
  return result;
}

ReplayFile from_finding(const Finding& finding, uint64_t campaign_seed) {
  ReplayFile file;
  file.family = finding.family;
  file.seed_key = finding.seed_key;
  file.iter = finding.iter;
  file.campaign_seed = campaign_seed;
  file.expected_fingerprint = finding.fingerprint;
  file.expected_outcome = finding.outcome;
  file.note = finding.detail;
  file.ops = finding.ops;
  return file;
}

}  // namespace dexlego::fuzz
