#include "src/fuzz/corpus.h"

#include <algorithm>
#include <stdexcept>

#include "src/benchsuite/droidbench.h"
#include "src/packer/packer.h"

namespace dexlego::fuzz {

namespace {

// Building the 134-sample suite is expensive; share one instance across every
// resolve (const after construction, safe for concurrent readers).
const suite::DroidBench& droidbench() {
  static const suite::DroidBench bench = suite::build_droidbench();
  return bench;
}

SeedInput from_sample(const std::string& key, const suite::Sample& sample) {
  SeedInput seed;
  seed.key = key;
  seed.apk = sample.apk;
  seed.configure_runtime = sample.configure_runtime;
  seed.expect_leak = sample.leaky;
  return seed;
}

SeedInput resolve_generated(const std::string& key, const std::string& args) {
  size_t colon = args.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("bad generated seed key: " + key);
  }
  suite::AppSpec spec;
  spec.seed = std::stoull(args.substr(0, colon));
  spec.target_units = std::stoull(args.substr(colon + 1));
  spec.name = "fuzz-" + args;
  spec.package = "fuzz.g" + args.substr(0, colon);
  spec.full_coverage_style = true;

  SeedInput seed;
  seed.key = key;
  seed.has_spec = true;
  seed.spec = spec;
  suite::GeneratedApp app = suite::generate_app(spec);
  seed.apk = std::move(app.apk);
  seed.configure_runtime = std::move(app.configure_runtime);
  return seed;
}

SeedInput resolve_packed(const std::string& key, const std::string& args) {
  size_t slash = args.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("bad packed seed key: " + key);
  }
  std::string vendor = args.substr(0, slash);
  std::string sample_name = args.substr(slash + 1);
  const suite::Sample* sample = droidbench().find(sample_name);
  if (sample == nullptr) {
    throw std::invalid_argument("unknown droidbench sample in key: " + key);
  }
  const packer::PackerSpec* spec = nullptr;
  static const std::vector<packer::PackerSpec> packers = packer::table1_packers();
  for (const packer::PackerSpec& p : packers) {
    if (p.vendor == vendor && p.available()) spec = &p;
  }
  if (spec == nullptr) {
    throw std::invalid_argument("unknown or unavailable packer in key: " + key);
  }
  auto packed = packer::pack(sample->apk, *spec);
  if (!packed.has_value()) {
    throw std::invalid_argument("packer refused sample in key: " + key);
  }
  SeedInput seed;
  seed.key = key;
  seed.apk = std::move(*packed);
  seed.expect_leak = sample->leaky;
  auto sample_configure = sample->configure_runtime;
  seed.configure_runtime = [sample_configure](rt::Runtime& rt) {
    packer::register_packer_natives(rt);
    if (sample_configure) sample_configure(rt);
  };
  return seed;
}

// "realdex:<seed>:<units>:<parts>" — a generated full-coverage app shipped
// as a real Android DEX container (split multidex when parts > 1).
SeedInput resolve_realdex(const std::string& key, const std::string& args) {
  size_t first = args.find(':');
  size_t second = first == std::string::npos ? std::string::npos
                                             : args.find(':', first + 1);
  if (second == std::string::npos) {
    throw std::invalid_argument("bad realdex seed key: " + key);
  }
  suite::AppSpec spec;
  spec.seed = std::stoull(args.substr(0, first));
  spec.target_units = std::stoull(args.substr(first + 1, second - first - 1));
  spec.real_dex_parts = std::max<size_t>(1, std::stoull(args.substr(second + 1)));
  spec.name = "fuzz-realdex-" + args;
  spec.package = "fuzz.r" + args.substr(0, first);
  spec.full_coverage_style = true;

  SeedInput seed;
  seed.key = key;
  seed.has_spec = true;
  seed.spec = spec;
  suite::GeneratedApp app = suite::generate_app(spec);
  seed.apk = std::move(app.apk);
  seed.configure_runtime = std::move(app.configure_runtime);
  return seed;
}

}  // namespace

SeedInput resolve_seed(const std::string& key) {
  size_t colon = key.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("bad seed key (no scheme): " + key);
  }
  std::string scheme = key.substr(0, colon);
  std::string args = key.substr(colon + 1);
  if (scheme == "droidbench") {
    const suite::Sample* sample = droidbench().find(args);
    if (sample == nullptr) {
      throw std::invalid_argument("unknown droidbench sample: " + key);
    }
    return from_sample(key, *sample);
  }
  if (scheme == "generated") return resolve_generated(key, args);
  if (scheme == "packed") return resolve_packed(key, args);
  if (scheme == "realdex") return resolve_realdex(key, args);
  throw std::invalid_argument("unknown seed scheme: " + key);
}

std::vector<std::string> structural_seed_keys() {
  // Byte diversity: a plain leaky sample, a benign one, a reflective one, a
  // generated app and a packed shell (mutating the container around an
  // encrypted payload).
  return {
      "droidbench:Straight1",  "droidbench:Clean1",
      "droidbench:ObfReflect1", "generated:701:600",
      "packed:360/Button1",
  };
}

std::vector<std::string> bytecode_seed_keys() {
  // Bytecode mutation needs a parseable primary image with real control flow.
  return {
      "droidbench:Straight1", "droidbench:Button1", "droidbench:Clean1",
      "generated:701:600",    "generated:702:1400",
  };
}

std::vector<std::string> behavioral_seed_keys() {
  // Behavioral mutation perturbs the AppSpec, so every seed is generated.
  return {
      "generated:711:600", "generated:712:1000", "generated:713:1800",
  };
}

std::vector<std::string> realdex_seed_keys() {
  // Real containers at several sizes; the multidex seeds give kRealPartShuffle
  // genuine classesN.dex sequences to gap and alias.
  return {
      "realdex:721:600:1", "realdex:722:1200:2", "realdex:723:1800:3",
  };
}

}  // namespace dexlego::fuzz
