// Seed-input registry for the structure-aware differential fuzzer
// (docs/FUZZING.md). A *seed input* is a deterministic base app the mutators
// perturb: every seed is addressed by a string key and rebuilt on demand from
// the repo's own deterministic builders (DroidBench-analog samples, generated
// apps, packed samples), so replay files can name their base input with a few
// bytes instead of shipping an APK. Key grammar:
//
//   "droidbench:<SampleName>"          one suite::build_droidbench sample
//   "generated:<seed>:<units>"         suite::generate_app full-coverage app
//   "packed:<vendor>/<SampleName>"     a Table I packer preset applied to a
//                                      DroidBench sample
//   "realdex:<seed>:<units>:<parts>"   a generated app shipped as a real
//                                      Android DEX container (classes.dex,
//                                      multidex when parts > 1)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/benchsuite/appgen.h"
#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::fuzz {

// A resolved base input. `apk` and `configure_runtime` are exactly what a
// pipeline::BatchJob would carry; `spec` is the generation recipe when the
// seed came from the synthetic generator (the behavioral mutator family
// needs it — it mutates the recipe, not the bytes).
struct SeedInput {
  std::string key;
  dex::Apk apk;
  std::function<void(rt::Runtime&)> configure_runtime;
  bool expect_leak = false;
  bool has_spec = false;  // true: `spec` regenerates this app
  suite::AppSpec spec;
};

// Rebuilds the seed named by `key`. Deterministic: the same key always yields
// a byte-identical APK. Throws std::invalid_argument on an unknown key.
SeedInput resolve_seed(const std::string& key);

// The canned seed pools the campaign draws from. Structural mutation wants
// byte diversity (plain, packed, reflective inputs); bytecode mutation wants
// parseable single-image apps; behavioral mutation wants generated apps
// (it perturbs their AppSpec).
std::vector<std::string> structural_seed_keys();
std::vector<std::string> bytecode_seed_keys();
std::vector<std::string> behavioral_seed_keys();
// Real-DEX mutation wants real containers, single-dex and multidex.
std::vector<std::string> realdex_seed_keys();

}  // namespace dexlego::fuzz
