// Structure-aware mutators for the differential fuzzer (docs/FUZZING.md).
// Four families, each evolving *apps* (unlike src/coverage/fuzzer.h, the
// Sapienz analog, which evolves UI event sequences against one fixed app):
//
//   kStructural — byte-level mutations of the LDEX container (truncation,
//     hostile counts/length prefixes, duplicated ranges, header refix so
//     mutants penetrate past the checksum) exercising dex::io / dex::archive
//     / verifier hardening. Mutants are usually invalid; the oracle accepts
//     clean rejection (ParseError / verify failure) and flags anything else.
//
//   kBytecode — instruction-level mutations of a parsed DexFile (opcode swaps
//     within a format group, register renames, branch retargeting, goto-loop
//     insertion), pre-filtered through bc::verify_code so every shipped
//     mutant is verifier-clean and must round-trip the collect→reassemble
//     oracle behaviourally.
//
//   kBehavioral — recipe-level mutations over suite::AppSpec (guard stacking,
//     reflection mazes, self-modifying writes, leak flows, nested packing)
//     producing hostile-but-valid apps.
//
//   kRealDex — byte-level mutations of real Android DEX containers
//     (src/dex/real): leb128 bombs, header/offset corruption, hostile
//     multidex layouts, with an adler32+SHA-1 refix so mutants reach the
//     deep parser. The real-DEX counterpart of kStructural.
//
// A mutation plan is a sequence of *parameter-baked* MutationOps: applying
// any subsequence is deterministic and well-defined, which is what the
// delta-debugging minimizer (src/fuzz/triage.h) and the replay format
// (src/fuzz/replay.h) rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/fuzz/corpus.h"
#include "src/support/rng.h"

namespace dexlego::fuzz {

enum class Family : uint8_t {
  kStructural = 0,
  kBytecode = 1,
  kBehavioral = 2,
  // Byte-level mutations of a *real* Android DEX container (src/dex/real):
  // leb128 bombs, header/section-offset corruption, truncation, hostile
  // multidex part layouts, plus a header refix that recomputes adler32 AND
  // the SHA-1 signature so mutants reach the deep parser. Rejection-ok, like
  // kStructural.
  kRealDex = 3,
};

std::string_view family_name(Family family);
std::optional<Family> family_from_name(std::string_view name);

// Per-family op kinds. Values are serialized in replay files — append only.
enum StructuralKind : uint16_t {
  kTruncate = 0,       // a = new length (clamped)
  kByteFlip = 1,       // a = position, b = xor mask
  kCorruptU32 = 2,     // a = offset, b = little-endian value to write
  kDuplicateRange = 3, // a = position, b = length to duplicate in place
  kHeaderRefix = 4,    // recompute LDEX size + adler32 so parsing goes deep
};

enum BytecodeKind : uint16_t {
  kOpcodeSwap = 0,     // a = method ordinal, b = pc, c = replacement raw op
  kRegisterRename = 1, // a = method ordinal, b = pc, c = slot<<8 | new reg
  kBranchRetarget = 2, // a = method ordinal, b = pc, c = new target pc
  kGotoLoop = 3,       // a = method ordinal, b = pc, c = backward target pc
};

enum RealDexKind : uint16_t {
  kRealTruncate = 0,     // a = new length of classes.dex (clamped)
  kRealByteFlip = 1,     // a = position, b = xor mask
  kRealCorruptU32 = 2,   // a = offset, b = little-endian value (header
                         //   fields, section counts/offsets, id items)
  kRealLebBomb = 3,      // a = position, b = run length: 0x80 continuation
                         //   bytes (an unterminated uleb128/sleb128)
  kRealPartShuffle = 4,  // a = part index, b = 0 drop / 1 duplicate-into —
                         //   builds gapped or aliased multidex sequences
  kRealHeaderRefix = 5,  // recompute file_size + SHA-1 + adler32 so the
                         //   mutation penetrates past the integrity gates
};

enum BehavioralKind : uint16_t {
  kGuardStack = 0,     // a = opaque guard depth stacked in front of entries
  kReflectionMaze = 1, // a = dispatch chain depth, b = xor key
  kSelfModWrite = 2,   // tamper native swaps a benign call to a covert one
  kLeakFlows = 3,      // a = number of taint flows to hide
  kGrowApp = 4,        // a = extra code units on the generation budget
  kNestedPack = 5,     // a = index into the available Table I packer presets
};

// One atomic mutation with all parameters baked in.
struct MutationOp {
  uint16_t kind = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  bool operator==(const MutationOp&) const = default;
  std::string describe(Family family) const;
};

// A candidate app produced by applying a plan to a seed.
struct Mutant {
  dex::Apk apk;
  std::function<void(rt::Runtime&)> configure_runtime;
  bool expect_leak = false;
  // Structural mutants may legitimately fail to parse; the oracle treats
  // rejection as a pass for them and as a divergence for the other families.
  bool rejection_ok = false;
  // Self-modifying behavioral mutants cannot replay the revealed APK under
  // layout-dependent tampering (same exclusion as the DroidBench self-mod
  // samples); the oracle downgrades to reveal/verify checks for them.
  bool replay_safe = true;
};

// Plans up to `max_ops` mutations of `family` against `seed`, deterministic
// in (seed.key, rng_seed). Bytecode plans verify every op against
// bc::verify_code on a scratch copy and only emit passing ops; an empty plan
// means the family cannot mutate this seed (e.g. unparseable classes entry).
std::vector<MutationOp> plan_ops(Family family, const SeedInput& seed,
                                 uint64_t rng_seed, int max_ops);

// Applies a plan (or any subsequence of one) to a seed. Never throws for
// in-domain ops: parameters that no longer fit the current intermediate
// state are clamped or skipped, so minimization subsets stay applicable.
Mutant apply_ops(Family family, const SeedInput& seed,
                 std::span<const MutationOp> ops);

}  // namespace dexlego::fuzz
