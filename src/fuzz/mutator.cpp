#include "src/fuzz/mutator.h"

#include <algorithm>
#include <sstream>

#include "src/bytecode/insn.h"
#include "src/bytecode/verify_code.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/packer/packer.h"
#include "src/support/bytes.h"
#include "src/support/hash.h"

namespace dexlego::fuzz {

namespace {

using bc::Op;

// --- LDEX header geometry (src/dex/io.h layout) ----------------------------
constexpr size_t kChecksumOffset = 8;   // u32 adler32 after the magic
constexpr size_t kSizeOffset = 12;      // u32 file size
constexpr size_t kCountsOffset = 16;    // six u32 pool counts
constexpr size_t kCountFields = 6;

void write_u32_le(std::vector<uint8_t>& bytes, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[offset + static_cast<size_t>(i)] =
        static_cast<uint8_t>(value >> (8 * i));
  }
}

// Recomputes the size field and adler32 so a mutated body reaches the deep
// parser instead of dying at the checksum gate.
void refix_header(std::vector<uint8_t>& bytes) {
  if (bytes.size() < kCountsOffset) return;
  write_u32_le(bytes, kSizeOffset, static_cast<uint32_t>(bytes.size()));
  std::span<const uint8_t> body(bytes.data() + kCountsOffset,
                                bytes.size() - kCountsOffset);
  write_u32_le(bytes, kChecksumOffset, support::adler32(body));
}

// --- structural family -----------------------------------------------------

uint32_t hostile_u32(support::Rng& rng, size_t file_size) {
  switch (rng.below(7)) {
    case 0: return 0xffffffffu;
    case 1: return 0xfffffff0u;
    case 2: return 0x7fffffffu;
    case 3: return 0x00ffffffu;
    case 4: return static_cast<uint32_t>(file_size);
    case 5: return static_cast<uint32_t>(file_size) * 2 + 1;
    default: return static_cast<uint32_t>(rng.below(65536));
  }
}

std::vector<MutationOp> plan_structural(const SeedInput& seed, support::Rng& rng,
                                        int max_ops) {
  const std::vector<uint8_t>& bytes = seed.apk.classes();
  size_t size = bytes.size();
  if (size == 0) return {};
  std::vector<MutationOp> ops;
  uint64_t count = 1 + rng.below(static_cast<uint64_t>(std::max(1, max_ops)));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t roll = rng.below(100);
    MutationOp op;
    if (roll < 30 && size >= kCountsOffset + kCountFields * 4) {
      // Count bomb: a hostile pool/section count (the uleb128-oversize analog
      // for this fixed-width format).
      op.kind = kCorruptU32;
      op.a = kCountsOffset + 4 * rng.below(kCountFields);
      op.b = hostile_u32(rng, size);
    } else if (roll < 50 && size >= 4) {
      // Hostile value at an arbitrary offset: length prefixes, counts inside
      // code items, pool indices.
      op.kind = kCorruptU32;
      op.a = rng.below(size - 3);
      op.b = hostile_u32(rng, size);
    } else if (roll < 70) {
      op.kind = kByteFlip;
      op.a = rng.below(size);
      op.b = 1 + rng.below(255);
    } else if (roll < 85) {
      op.kind = kTruncate;
      // Biased toward near-end cuts: deep sections get parsed first.
      op.a = rng.chance(0.5) && size > 2
                 ? size - 1 - rng.below(std::min<uint64_t>(size - 1, 64))
                 : rng.below(size);
    } else {
      op.kind = kDuplicateRange;
      op.a = rng.below(size);
      op.b = 1 + rng.below(64);
    }
    ops.push_back(op);
  }
  if (rng.chance(0.7)) ops.push_back(MutationOp{kHeaderRefix, 0, 0, 0});
  return ops;
}

Mutant apply_structural(const SeedInput& seed, std::span<const MutationOp> ops) {
  std::vector<uint8_t> bytes = seed.apk.classes();
  for (const MutationOp& op : ops) {
    size_t size = bytes.size();
    switch (op.kind) {
      case kTruncate:
        bytes.resize(std::min<size_t>(static_cast<size_t>(op.a), size));
        break;
      case kByteFlip:
        if (size > 0) {
          bytes[static_cast<size_t>(op.a) % size] ^=
              static_cast<uint8_t>(op.b != 0 ? op.b : 1);
        }
        break;
      case kCorruptU32:
        if (size >= 4) {
          write_u32_le(bytes, static_cast<size_t>(op.a) % (size - 3),
                       static_cast<uint32_t>(op.b));
        }
        break;
      case kDuplicateRange:
        if (size > 0) {
          size_t pos = static_cast<size_t>(op.a) % size;
          size_t len = std::min<size_t>(static_cast<size_t>(op.b), size - pos);
          std::vector<uint8_t> dup(bytes.begin() + static_cast<ptrdiff_t>(pos),
                                   bytes.begin() +
                                       static_cast<ptrdiff_t>(pos + len));
          bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(pos), dup.begin(),
                       dup.end());
        }
        break;
      case kHeaderRefix:
        refix_header(bytes);
        break;
      default:
        break;
    }
  }
  Mutant mutant;
  mutant.apk = seed.apk;
  mutant.apk.set_classes(std::move(bytes));
  mutant.configure_runtime = seed.configure_runtime;
  mutant.expect_leak = seed.expect_leak;
  mutant.rejection_ok = true;
  return mutant;
}

// --- real-DEX family -------------------------------------------------------

// Real DEX header geometry (docs/DEX_FORMAT.md): the signature starts at 12,
// the adler32 covers everything from the signature on, and the SHA-1 covers
// everything after the signature (i.e. from file_size at offset 32).
constexpr size_t kRealSigOffset = 12;
constexpr size_t kRealFileSizeOffset = 32;
constexpr size_t kRealHeaderBytes = 0x70;

// Recomputes file_size, the SHA-1 signature and the adler32 checksum so a
// mutated body penetrates past both integrity gates into the deep parser —
// the real-DEX analog of refix_header above.
void refix_real_header(std::vector<uint8_t>& bytes) {
  if (bytes.size() < kRealHeaderBytes) return;
  write_u32_le(bytes, kRealFileSizeOffset, static_cast<uint32_t>(bytes.size()));
  std::span<const uint8_t> all(bytes);
  std::array<uint8_t, 20> sig =
      support::sha1(all.subspan(kRealFileSizeOffset));
  std::copy(sig.begin(), sig.end(),
            bytes.begin() + static_cast<ptrdiff_t>(kRealSigOffset));
  write_u32_le(bytes, kChecksumOffset,
               support::adler32(all.subspan(kRealSigOffset)));
}

std::vector<MutationOp> plan_realdex(const SeedInput& seed, support::Rng& rng,
                                     int max_ops) {
  const std::string primary = dex::real_classes_entry(0);
  if (!seed.apk.has_entry(primary)) return {};  // not a real-DEX container
  size_t size = seed.apk.entry(primary).size();
  if (size == 0) return {};
  std::vector<MutationOp> ops;
  uint64_t count = 1 + rng.below(static_cast<uint64_t>(std::max(1, max_ops)));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t roll = rng.below(100);
    MutationOp op;
    if (roll < 20 && size >= kRealHeaderBytes) {
      // Header bomb: a hostile section count / offset / map_off (the fields
      // from file_size through data_off).
      op.kind = kRealCorruptU32;
      op.a = kRealFileSizeOffset +
             4 * rng.below((kRealHeaderBytes - kRealFileSizeOffset) / 4);
      op.b = hostile_u32(rng, size);
    } else if (roll < 35 && size >= 4) {
      // Hostile u32 anywhere: id items, code-item counts, type-list sizes.
      op.kind = kRealCorruptU32;
      op.a = rng.below(size - 3);
      op.b = hostile_u32(rng, size);
    } else if (roll < 50) {
      op.kind = kRealByteFlip;
      op.a = rng.below(size);
      op.b = 1 + rng.below(255);
    } else if (roll < 65) {
      // leb128 bomb: a run of 0x80 continuation bytes, biased into the data
      // section where the uleb128/sleb128 streams live (class_data, debug
      // info, string data).
      op.kind = kRealLebBomb;
      op.a = size / 2 + rng.below(std::max<uint64_t>(size - size / 2, 1));
      op.b = 5 + rng.below(12);
    } else if (roll < 80) {
      op.kind = kRealTruncate;
      // Biased toward near-end cuts: deep sections get parsed last.
      op.a = rng.chance(0.5) && size > 2
                 ? size - 1 - rng.below(std::min<uint64_t>(size - 1, 64))
                 : rng.below(size);
    } else {
      // Hostile multidex: drop a classesN.dex (gapped sequence) or alias the
      // primary image into one (duplicate class definitions).
      op.kind = kRealPartShuffle;
      op.a = rng.below(3);  // part slot: 0 -> classes2.dex, 1 -> classes3...
      op.b = rng.below(2);  // 0 drop, 1 duplicate-into
    }
    ops.push_back(op);
  }
  if (rng.chance(0.7)) ops.push_back(MutationOp{kRealHeaderRefix, 0, 0, 0});
  return ops;
}

Mutant apply_realdex(const SeedInput& seed, std::span<const MutationOp> ops) {
  Mutant mutant;
  mutant.apk = seed.apk;
  mutant.configure_runtime = seed.configure_runtime;
  mutant.expect_leak = seed.expect_leak;
  mutant.rejection_ok = true;
  const std::string primary = dex::real_classes_entry(0);
  if (!mutant.apk.has_entry(primary)) return mutant;
  std::vector<uint8_t> bytes = mutant.apk.entry(primary);
  for (const MutationOp& op : ops) {
    size_t size = bytes.size();
    switch (op.kind) {
      case kRealTruncate:
        bytes.resize(std::min<size_t>(static_cast<size_t>(op.a), size));
        break;
      case kRealByteFlip:
        if (size > 0) {
          bytes[static_cast<size_t>(op.a) % size] ^=
              static_cast<uint8_t>(op.b != 0 ? op.b : 1);
        }
        break;
      case kRealCorruptU32:
        if (size >= 4) {
          write_u32_le(bytes, static_cast<size_t>(op.a) % (size - 3),
                       static_cast<uint32_t>(op.b));
        }
        break;
      case kRealLebBomb:
        if (size > 0) {
          size_t pos = static_cast<size_t>(op.a) % size;
          size_t len = std::min<size_t>(
              std::max<size_t>(static_cast<size_t>(op.b), 1), size - pos);
          std::fill(bytes.begin() + static_cast<ptrdiff_t>(pos),
                    bytes.begin() + static_cast<ptrdiff_t>(pos + len), 0x80);
        }
        break;
      case kRealPartShuffle: {
        std::string name =
            dex::real_classes_entry(1 + static_cast<size_t>(op.a) % 8);
        if (op.b == 0) {
          if (mutant.apk.has_entry(name)) mutant.apk.remove_entry(name);
        } else {
          mutant.apk.set_entry(name, bytes);
        }
        break;
      }
      case kRealHeaderRefix:
        refix_real_header(bytes);
        break;
      default:
        break;
    }
  }
  mutant.apk.set_entry(primary, std::move(bytes));
  return mutant;
}

// --- bytecode family -------------------------------------------------------

// Format groups: members share width, operand shape and verifier contract,
// so swapping inside a group is format-preserving by construction.
std::span<const Op> swap_group(Op op) {
  static constexpr Op kBinops[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv,
                                   Op::kRem, Op::kAnd, Op::kOr,  Op::kXor,
                                   Op::kShl, Op::kShr, Op::kCmp};
  static constexpr Op kIf2[] = {Op::kIfEq, Op::kIfNe, Op::kIfLt,
                                Op::kIfGe, Op::kIfGt, Op::kIfLe};
  static constexpr Op kIfz[] = {Op::kIfEqz, Op::kIfNez, Op::kIfLtz,
                                Op::kIfGez, Op::kIfGtz, Op::kIfLez};
  static constexpr Op kLit8[] = {Op::kAddLit8, Op::kMulLit8};
  static constexpr Op kUnops[] = {Op::kNeg, Op::kNot};
  for (std::span<const Op> group :
       {std::span<const Op>(kBinops), std::span<const Op>(kIf2),
        std::span<const Op>(kIfz), std::span<const Op>(kLit8),
        std::span<const Op>(kUnops)}) {
    if (std::find(group.begin(), group.end(), op) != group.end()) return group;
  }
  return {};
}

// Register slots the rename op may touch, matching the operand shapes the
// verifier checks (invokes and payloads are skipped).
int rename_slots(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
    case Op::kRem: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kShl: case Op::kShr: case Op::kCmp:
    case Op::kAget: case Op::kAput:
      return 3;
    case Op::kMove: case Op::kNeg: case Op::kNot: case Op::kArrayLength:
    case Op::kNewArray: case Op::kInstanceOf: case Op::kIget: case Op::kIput:
    case Op::kIfEq: case Op::kIfNe: case Op::kIfLt:
    case Op::kIfGe: case Op::kIfGt: case Op::kIfLe:
    case Op::kAddLit8: case Op::kMulLit8:
      return 2;
    case Op::kConst16: case Op::kConst32: case Op::kConstWide:
    case Op::kConstString: case Op::kConstNull: case Op::kMoveResult:
    case Op::kMoveException: case Op::kReturn: case Op::kThrow:
    case Op::kIfEqz: case Op::kIfNez: case Op::kIfLtz:
    case Op::kIfGez: case Op::kIfGtz: case Op::kIfLez:
    case Op::kSget: case Op::kSput: case Op::kNewInstance:
      return 1;
    default:
      return 0;
  }
}

// Code-bearing methods of a file in definition order; the mutation ops
// address them by this ordinal.
std::vector<dex::CodeItem*> code_methods(dex::DexFile& file) {
  std::vector<dex::CodeItem*> methods;
  for (dex::ClassDef& cls : file.classes) {
    for (auto* list : {&cls.direct_methods, &cls.virtual_methods}) {
      for (dex::MethodDef& method : *list) {
        if (method.code.has_value()) methods.push_back(&*method.code);
      }
    }
  }
  return methods;
}

// Instruction starts (payload starts split out). false on undecodable code.
bool collect_starts(const dex::CodeItem& code, std::vector<size_t>& starts,
                    std::vector<size_t>& payloads) {
  std::span<const uint16_t> insns(code.insns);
  size_t pc = 0;
  while (pc < insns.size()) {
    size_t width;
    try {
      width = bc::width_at(insns, pc);
    } catch (const support::ParseError&) {
      return false;
    }
    if (width == 0 || pc + width > insns.size()) return false;
    if (static_cast<Op>(insns[pc] & 0xff) == Op::kPayload) {
      payloads.push_back(pc);
    } else {
      starts.push_back(pc);
    }
    pc += width;
  }
  return !starts.empty();
}

bool is_start(const std::vector<size_t>& starts, size_t pc) {
  return std::binary_search(starts.begin(), starts.end(), pc);
}

// Applies one bytecode op in place. Returns false when the op no longer fits
// the current state (minimization subsets must stay applicable).
bool apply_bytecode_op(dex::DexFile& file, const MutationOp& op) {
  std::vector<dex::CodeItem*> methods = code_methods(file);
  if (op.a >= methods.size()) return false;
  dex::CodeItem& code = *methods[static_cast<size_t>(op.a)];
  std::vector<size_t> starts, payloads;
  if (!collect_starts(code, starts, payloads)) return false;
  size_t pc = static_cast<size_t>(op.b);
  if (!is_start(starts, pc)) return false;
  std::span<const uint16_t> insns(code.insns);

  bc::Insn insn;
  try {
    insn = bc::decode_at(insns, pc);
  } catch (const support::ParseError&) {
    return false;
  }

  switch (op.kind) {
    case kOpcodeSwap: {
      std::span<const Op> group = swap_group(insn.op);
      Op replacement = static_cast<Op>(op.c & 0xff);
      if (group.empty() || replacement == insn.op ||
          std::find(group.begin(), group.end(), replacement) == group.end()) {
        return false;
      }
      code.insns[pc] = static_cast<uint16_t>(
          (code.insns[pc] & 0xff00) | static_cast<uint16_t>(replacement));
      return true;
    }
    case kRegisterRename: {
      int slots = rename_slots(insn.op);
      int slot = static_cast<int>((op.c >> 8) & 0xff);
      if (slots == 0 || slot >= slots || code.registers_size == 0) return false;
      uint8_t reg = static_cast<uint8_t>((op.c & 0xff) % code.registers_size);
      if (slot == 0) insn.a = reg;
      if (slot == 1) insn.b = reg;
      if (slot == 2) insn.c = reg;
      std::vector<uint16_t> encoded = bc::encode(insn);
      if (encoded.size() != insn.width) return false;
      std::copy(encoded.begin(), encoded.end(),
                code.insns.begin() + static_cast<ptrdiff_t>(pc));
      return true;
    }
    case kBranchRetarget: {
      if (insn.op != Op::kGoto && !bc::is_conditional_branch(insn.op)) {
        return false;
      }
      size_t target = static_cast<size_t>(op.c);
      if (!is_start(starts, target) || target == pc) return false;
      ptrdiff_t off = static_cast<ptrdiff_t>(target) -
                      static_cast<ptrdiff_t>(pc);
      if (off < -32768 || off > 32767) return false;
      insn.off = static_cast<int32_t>(off);
      std::vector<uint16_t> encoded = bc::encode(insn);
      if (encoded.size() != insn.width) return false;
      std::copy(encoded.begin(), encoded.end(),
                code.insns.begin() + static_cast<ptrdiff_t>(pc));
      return true;
    }
    case kGotoLoop: {
      if (insn.width < 2) return false;
      size_t target = static_cast<size_t>(op.c);
      if (!is_start(starts, target) || target > pc) return false;
      ptrdiff_t off = static_cast<ptrdiff_t>(target) -
                      static_cast<ptrdiff_t>(pc);
      if (off < -32768) return false;
      code.insns[pc] = static_cast<uint16_t>(Op::kGoto);
      code.insns[pc + 1] =
          static_cast<uint16_t>(static_cast<int16_t>(off));
      for (size_t k = 2; k < insn.width; ++k) {
        code.insns[pc + k] = static_cast<uint16_t>(Op::kNop);
      }
      return true;
    }
    default:
      return false;
  }
}

std::vector<MutationOp> plan_bytecode(const SeedInput& seed, support::Rng& rng,
                                      int max_ops) {
  dex::DexFile scratch;
  try {
    scratch = dex::read_dex(seed.apk.classes());
  } catch (const support::ParseError&) {
    return {};  // packed shells etc. — nothing to mutate at this level
  }
  std::vector<dex::CodeItem*> methods = code_methods(scratch);
  if (methods.empty()) return {};

  std::vector<MutationOp> ops;
  uint64_t want = 1 + rng.below(static_cast<uint64_t>(std::max(1, max_ops)));
  int attempts = max_ops * 12;
  while (attempts-- > 0 && ops.size() < want) {
    size_t ordinal = rng.below(methods.size());
    dex::CodeItem& code = *methods[ordinal];
    std::vector<size_t> starts, payloads;
    if (!collect_starts(code, starts, payloads)) continue;
    size_t pc = starts[rng.below(starts.size())];
    bc::Insn insn;
    try {
      insn = bc::decode_at(std::span<const uint16_t>(code.insns), pc);
    } catch (const support::ParseError&) {
      continue;
    }

    MutationOp op;
    op.a = ordinal;
    op.b = pc;
    switch (rng.below(4)) {
      case 0: {
        std::span<const Op> group = swap_group(insn.op);
        if (group.size() < 2) continue;
        Op replacement = group[rng.below(group.size())];
        if (replacement == insn.op) continue;
        op.kind = kOpcodeSwap;
        op.c = static_cast<uint64_t>(replacement);
        break;
      }
      case 1: {
        int slots = rename_slots(insn.op);
        if (slots == 0 || code.registers_size == 0) continue;
        op.kind = kRegisterRename;
        // Two sequenced draws: | has unsequenced operands, and both calls
        // advance the shared RNG — one expression would make the plan
        // depend on compiler evaluation order.
        uint64_t slot = rng.below(static_cast<uint64_t>(slots));
        uint64_t reg = rng.below(code.registers_size);
        op.c = (slot << 8) | reg;
        break;
      }
      case 2: {
        if (insn.op != Op::kGoto && !bc::is_conditional_branch(insn.op)) {
          continue;
        }
        op.kind = kBranchRetarget;
        op.c = starts[rng.below(starts.size())];
        break;
      }
      default: {
        if (insn.width < 2) continue;
        // Backward target (possibly pc itself): a real loop.
        std::vector<size_t> backward;
        for (size_t s : starts) {
          if (s <= pc) backward.push_back(s);
        }
        if (backward.empty()) continue;
        op.kind = kGotoLoop;
        op.c = backward[rng.below(backward.size())];
        break;
      }
    }

    // Pre-filter: the op must keep the method verifier-clean, or it never
    // enters the plan (the paper-facing contract of this family).
    dex::CodeItem backup = code;
    if (!apply_bytecode_op(scratch, op)) continue;
    if (bc::verify_code(scratch, code, "fuzz-plan").ok()) {
      ops.push_back(op);
    } else {
      code = std::move(backup);
    }
  }
  return ops;
}

Mutant apply_bytecode(const SeedInput& seed, std::span<const MutationOp> ops) {
  Mutant mutant;
  mutant.apk = seed.apk;
  mutant.configure_runtime = seed.configure_runtime;
  mutant.expect_leak = seed.expect_leak;
  try {
    dex::DexFile file = dex::read_dex(seed.apk.classes());
    for (const MutationOp& op : ops) apply_bytecode_op(file, op);
    mutant.apk.set_classes(dex::write_dex(file));
  } catch (const support::ParseError&) {
    // Unmutatable seed: hand back the unmodified app.
  }
  return mutant;
}

// --- behavioral family -----------------------------------------------------

std::vector<packer::PackerSpec> available_packers() {
  std::vector<packer::PackerSpec> specs;
  for (const packer::PackerSpec& spec : packer::table1_packers()) {
    if (spec.available()) specs.push_back(spec);
  }
  return specs;
}

std::vector<MutationOp> plan_behavioral(const SeedInput& seed,
                                        support::Rng& rng, int max_ops) {
  if (!seed.has_spec) return {};
  std::vector<MutationOp> spec_ops;
  std::vector<MutationOp> pack_ops;
  size_t packers = available_packers().size();
  bool used[6] = {false, false, false, false, false, false};
  uint64_t want = 1 + rng.below(static_cast<uint64_t>(std::max(1, max_ops)));
  int attempts = max_ops * 8;
  while (attempts-- > 0 && spec_ops.size() + pack_ops.size() < want) {
    uint16_t kind = static_cast<uint16_t>(rng.below(6));
    if (kind != kNestedPack && used[kind]) continue;
    MutationOp op;
    op.kind = kind;
    switch (kind) {
      case kGuardStack: op.a = 1 + rng.below(4); break;
      case kReflectionMaze:
        op.a = 1 + rng.below(5);
        op.b = 1 + rng.below(126);
        break;
      case kSelfModWrite: break;
      case kLeakFlows: op.a = 1 + rng.below(3); break;
      case kGrowApp: op.a = 200 + rng.below(1800); break;
      case kNestedPack: {
        if (packers == 0 || pack_ops.size() >= 2) continue;
        op.a = rng.below(packers);
        // Distinct vendors per nesting level: same-vendor shells collide on
        // their encrypted-asset entry names.
        bool dup = false;
        for (const MutationOp& prev : pack_ops) dup |= prev.a == op.a;
        if (dup) continue;
        break;
      }
      default: continue;
    }
    used[kind] = true;
    if (kind == kNestedPack) {
      pack_ops.push_back(op);
    } else {
      spec_ops.push_back(op);
    }
  }
  // Recipe knobs first, packing last — subsets preserve relative order, so
  // minimized plans still pack a fully built app.
  spec_ops.insert(spec_ops.end(), pack_ops.begin(), pack_ops.end());
  return spec_ops;
}

Mutant apply_behavioral(const SeedInput& seed, std::span<const MutationOp> ops) {
  suite::AppSpec spec = seed.spec;
  std::vector<size_t> pack_choices;
  for (const MutationOp& op : ops) {
    switch (op.kind) {
      case kGuardStack:
        spec.guard_stack = static_cast<int>(op.a);
        break;
      case kReflectionMaze:
        spec.reflection_maze = static_cast<int>(op.a);
        spec.reflection_key = static_cast<int>(op.b);
        break;
      case kSelfModWrite:
        spec.self_modifying = true;
        break;
      case kLeakFlows:
        spec.leak_flows = static_cast<int>(op.a);
        break;
      case kGrowApp:
        spec.target_units += static_cast<size_t>(op.a);
        break;
      case kNestedPack:
        pack_choices.push_back(static_cast<size_t>(op.a));
        break;
      default:
        break;
    }
  }

  suite::GeneratedApp app = suite::generate_app(spec);
  Mutant mutant;
  mutant.apk = std::move(app.apk);
  mutant.configure_runtime = app.configure_runtime;
  mutant.expect_leak = spec.leak_flows > 0;
  mutant.replay_safe = !spec.self_modifying;

  std::vector<packer::PackerSpec> packers = available_packers();
  bool packed_any = false;
  for (size_t choice : pack_choices) {
    if (packers.empty()) break;
    const packer::PackerSpec& vendor = packers[choice % packers.size()];
    std::optional<dex::Apk> packed = packer::pack(mutant.apk, vendor);
    if (!packed.has_value()) continue;
    mutant.apk = std::move(*packed);
    packed_any = true;
    // A self-modifying stub (Bangcle) tampers with its own bytecode at
    // layout-dependent pcs, so the revealed APK cannot replay — the same
    // exclusion the differential suite applies to the DroidBench self-mod
    // samples. Found by this fuzzer: tests/data/fuzz/ pins the case.
    if (vendor.self_modifying_stub) mutant.replay_safe = false;
  }
  if (packed_any) {
    auto inner = mutant.configure_runtime;
    mutant.configure_runtime = [inner](rt::Runtime& rt) {
      packer::register_packer_natives(rt);
      if (inner) inner(rt);
    };
  }
  return mutant;
}

}  // namespace

std::string_view family_name(Family family) {
  switch (family) {
    case Family::kStructural: return "structural";
    case Family::kBytecode: return "bytecode";
    case Family::kBehavioral: return "behavioral";
    case Family::kRealDex: return "realdex";
  }
  return "unknown";
}

std::optional<Family> family_from_name(std::string_view name) {
  if (name == "structural") return Family::kStructural;
  if (name == "bytecode") return Family::kBytecode;
  if (name == "behavioral") return Family::kBehavioral;
  if (name == "realdex") return Family::kRealDex;
  return std::nullopt;
}

std::string MutationOp::describe(Family family) const {
  std::ostringstream os;
  switch (family) {
    case Family::kStructural:
      switch (kind) {
        case kTruncate: os << "truncate to " << a; break;
        case kByteFlip: os << "flip byte @" << a << " ^ " << b; break;
        case kCorruptU32: os << "u32 @" << a << " := " << b; break;
        case kDuplicateRange: os << "dup [" << a << ", +" << b << ")"; break;
        case kHeaderRefix: os << "refix header"; break;
        default: os << "structural#" << kind; break;
      }
      break;
    case Family::kBytecode:
      switch (kind) {
        case kOpcodeSwap:
          os << "m" << a << "@" << b << " op := "
             << bc::op_info(static_cast<Op>(c & 0xff)).name;
          break;
        case kRegisterRename:
          os << "m" << a << "@" << b << " reg slot " << ((c >> 8) & 0xff)
             << " := v" << (c & 0xff);
          break;
        case kBranchRetarget: os << "m" << a << "@" << b << " -> " << c; break;
        case kGotoLoop: os << "m" << a << "@" << b << " goto-loop " << c; break;
        default: os << "bytecode#" << kind; break;
      }
      break;
    case Family::kBehavioral:
      switch (kind) {
        case kGuardStack: os << "guard-stack x" << a; break;
        case kReflectionMaze: os << "reflection-maze depth " << a; break;
        case kSelfModWrite: os << "self-modifying write"; break;
        case kLeakFlows: os << "leak flows x" << a; break;
        case kGrowApp: os << "grow +" << a << " units"; break;
        case kNestedPack: os << "pack vendor#" << a; break;
        default: os << "behavioral#" << kind; break;
      }
      break;
    case Family::kRealDex:
      switch (kind) {
        case kRealTruncate: os << "truncate dex to " << a; break;
        case kRealByteFlip: os << "flip dex byte @" << a << " ^ " << b; break;
        case kRealCorruptU32: os << "dex u32 @" << a << " := " << b; break;
        case kRealLebBomb: os << "leb bomb @" << a << " x" << b; break;
        case kRealPartShuffle:
          os << (b == 0 ? "drop" : "alias") << " multidex part " << a;
          break;
        case kRealHeaderRefix: os << "refix dex header"; break;
        default: os << "realdex#" << kind; break;
      }
      break;
  }
  return os.str();
}

std::vector<MutationOp> plan_ops(Family family, const SeedInput& seed,
                                 uint64_t rng_seed, int max_ops) {
  // Family tag folded in so the same numeric seed yields independent streams
  // per family.
  support::Rng rng(rng_seed ^ (0x9e3779b97f4a7c15ull *
                               (static_cast<uint64_t>(family) + 1)));
  switch (family) {
    case Family::kStructural: return plan_structural(seed, rng, max_ops);
    case Family::kBytecode: return plan_bytecode(seed, rng, max_ops);
    case Family::kBehavioral: return plan_behavioral(seed, rng, max_ops);
    case Family::kRealDex: return plan_realdex(seed, rng, max_ops);
  }
  return {};
}

Mutant apply_ops(Family family, const SeedInput& seed,
                 std::span<const MutationOp> ops) {
  switch (family) {
    case Family::kStructural: return apply_structural(seed, ops);
    case Family::kBytecode: return apply_bytecode(seed, ops);
    case Family::kBehavioral: return apply_behavioral(seed, ops);
    case Family::kRealDex: return apply_realdex(seed, ops);
  }
  return {};
}

}  // namespace dexlego::fuzz
