// Deterministic replay files for fuzz findings (docs/FUZZING.md). A replay
// file names a seed input (corpus key), carries the minimized mutation trace
// and the divergence fingerprint observed at capture time — a few hundred
// bytes that rebuild the exact mutant from the repo's deterministic builders
// and re-run the differential oracle. Checked-in findings live under
// tests/data/fuzz/ and are replayed by the FuzzRegressions suite
// (tests/harness/differential_test.cpp): a file either still reproduces its
// divergence or records (in `note`) the fix that closed it, in which case
// replay must come back clean.
//
// Binary layout (support::bytes, little-endian): magic "LFUZ0001", u32
// version, u8 family, seed key, u64 iter, u64 campaign seed, u64 expected
// fingerprint (0 = closed by a fix), u8 expected outcome, note, u32 op
// count, ops (u16 kind + 3x u64 params), u32 adler32 of everything before.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/fuzz/triage.h"

namespace dexlego::fuzz {

inline constexpr char kReplayMagic[8] = {'L', 'F', 'U', 'Z', '0', '0', '0', '1'};
inline constexpr uint32_t kReplayVersion = 1;

struct ReplayFile {
  Family family = Family::kStructural;
  std::string seed_key;
  uint64_t iter = 0;           // provenance: campaign iteration that hit it
  uint64_t campaign_seed = 0;  // provenance: campaign --seed
  // Fingerprint the oracle reported at capture. 0 means the finding was
  // fixed: replay must now come back equivalent/rejected.
  uint64_t expected_fingerprint = 0;
  Outcome expected_outcome = Outcome::kEquivalent;
  std::string note;  // divergence summary, or the fix that closed it
  std::vector<MutationOp> ops;
};

std::vector<uint8_t> serialize(const ReplayFile& file);
// Throws support::ParseError on malformed bytes.
ReplayFile deserialize(std::span<const uint8_t> data);
std::optional<ReplayFile> try_deserialize(std::span<const uint8_t> data);

struct ReplayResult {
  OracleReport report;
  // expected_fingerprint != 0: the oracle reproduced exactly that failure.
  // expected_fingerprint == 0: the oracle came back clean (fix holds).
  bool matches_expectation = false;
};

// Rebuilds the seed, applies the recorded ops and re-runs the oracle.
ReplayResult replay(const ReplayFile& file, const OracleOptions& options = {});

// Packages a campaign finding for persistence.
ReplayFile from_finding(const Finding& finding, uint64_t campaign_seed);

}  // namespace dexlego::fuzz
