#include "src/fuzz/triage.h"

#include <atomic>
#include <new>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/bytecode/verify_code.h"
#include "src/core/dexlego.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/ir/roundtrip.h"
#include "src/support/bytes.h"
#include "src/support/hash.h"
#include "src/support/timer.h"

namespace dexlego::fuzz {

namespace {

// Exception rendered with its dynamic type so a bad_alloc and an
// out_of_range with the same message fingerprint differently. The type is
// mapped to a fixed label — typeid names are implementation-defined mangled
// strings, which would make crash fingerprints toolchain-locked.
std::string render_exception(const std::exception& e) {
  const char* kind = "std::exception";
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    kind = "std::bad_alloc";
  } else if (dynamic_cast<const std::out_of_range*>(&e) != nullptr) {
    kind = "std::out_of_range";
  } else if (dynamic_cast<const std::length_error*>(&e) != nullptr) {
    kind = "std::length_error";
  } else if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    kind = "std::invalid_argument";
  } else if (dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    kind = "std::logic_error";
  } else if (dynamic_cast<const std::runtime_error*>(&e) != nullptr) {
    kind = "std::runtime_error";
  }
  return std::string(kind) + ": " + e.what();
}

std::string first_line(const std::string& text) {
  size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

// --- tracing (the diff_fixture script, minus gtest) ------------------------

struct Trace {
  std::vector<std::string> phases;  // "name: exit state"
  std::vector<std::string> sinks;   // "sink|taint|detail"
  size_t leaks = 0;
};

std::string render_outcome(const rt::ExecOutcome& out) {
  if (out.completed) return "completed";
  if (out.uncaught) return "uncaught " + out.exception_type;
  if (out.aborted) return "aborted (" + out.abort_reason + ")";
  return "no outcome";
}

Trace trace_app(const dex::Apk& apk,
                const std::function<void(rt::Runtime&)>& configure,
                const OracleOptions& options) {
  rt::RuntimeConfig cfg;
  cfg.step_limit = options.step_limit;
  cfg.dispatch = options.dispatch;
  rt::Runtime runtime(cfg);
  if (configure) configure(runtime);
  runtime.install(apk);

  Trace trace;
  trace.phases.push_back("launch: " + render_outcome(runtime.launch()));
  for (int id : runtime.ui_clickable_ids()) {
    trace.phases.push_back("click:" + std::to_string(id) + ": " +
                           render_outcome(runtime.fire_click(id)));
  }
  trace.phases.push_back(
      "onPause: " + render_outcome(runtime.call_activity_method("onPause")));
  trace.phases.push_back(
      "onDestroy: " +
      render_outcome(runtime.call_activity_method("onDestroy")));

  for (const rt::Runtime::SinkEvent& ev : runtime.sink_events()) {
    trace.sinks.push_back(ev.sink + "|" + std::to_string(ev.taint) + "|" +
                          ev.detail);
  }
  trace.leaks = runtime.leaks().size();
  return trace;
}

// First difference between two traces; empty string when equivalent.
std::string compare_traces(const Trace& a, const Trace& b) {
  if (a.phases.size() != b.phases.size()) {
    return "phase count " + std::to_string(a.phases.size()) + " vs " +
           std::to_string(b.phases.size());
  }
  for (size_t i = 0; i < a.phases.size(); ++i) {
    if (a.phases[i] != b.phases[i]) {
      return "phase[" + std::to_string(i) + "] '" + a.phases[i] + "' vs '" +
             b.phases[i] + "'";
    }
  }
  if (a.sinks.size() != b.sinks.size()) {
    return "sink count " + std::to_string(a.sinks.size()) + " vs " +
           std::to_string(b.sinks.size());
  }
  for (size_t i = 0; i < a.sinks.size(); ++i) {
    if (a.sinks[i] != b.sinks[i]) {
      return "sink[" + std::to_string(i) + "] '" + a.sinks[i] + "' vs '" +
             b.sinks[i] + "'";
    }
  }
  if (a.leaks != b.leaks) {
    return "leaks " + std::to_string(a.leaks) + " vs " +
           std::to_string(b.leaks);
  }
  return {};
}

uint64_t detail_fingerprint(Outcome outcome, const std::string& detail) {
  support::Fnv1a h;
  h.add(static_cast<uint64_t>(outcome));
  h.add_bytes(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(detail.data()), detail.size()));
  uint64_t digest = h.digest();
  return digest == 0 ? 1 : digest;  // 0 is reserved for "no finding"
}

}  // namespace

std::string_view outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kEquivalent: return "equivalent";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDivergent: return "divergent";
    case Outcome::kCrash: return "crash";
  }
  return "unknown";
}

OracleReport run_oracle(const Mutant& mutant, const OracleOptions& options) {
  auto finish = [](Outcome outcome, std::string detail) {
    OracleReport report;
    report.outcome = outcome;
    report.detail = std::move(detail);
    if (outcome == Outcome::kDivergent || outcome == Outcome::kCrash) {
      report.fingerprint = detail_fingerprint(outcome, report.detail);
    }
    return report;
  };
  auto reject = [&](std::string detail) {
    // A clean rejection only passes for mutants allowed to be invalid; the
    // verifier-prefiltered families must never produce one.
    return mutant.rejection_ok
               ? finish(Outcome::kRejected, std::move(detail))
               : finish(Outcome::kDivergent,
                        "unexpected rejection: " + std::move(detail));
  };

  // Stage 1 — parse + verify, the loader hardening gate. Anything but a
  // ParseError / verifier failure here is a crash finding.
  try {
    if (!dex::has_classes(mutant.apk)) {
      return reject("no classes entry");
    }
    dex::DexFile file = dex::load_classes(mutant.apk);
    dex::VerifyResult vr = bc::verify_dex(file);
    if (!vr.ok()) return reject("verify: " + first_line(vr.message()));
  } catch (const support::ParseError& e) {
    return reject(std::string("parse: ") + e.what());
  } catch (const std::exception& e) {
    return finish(Outcome::kCrash, "parse crash: " + render_exception(e));
  }

  // Stage 2 — trace the mutant itself.
  Trace original;
  try {
    original = trace_app(mutant.apk, mutant.configure_runtime, options);
  } catch (const std::exception& e) {
    return finish(Outcome::kCrash, "trace(mutant): " + render_exception(e));
  }

  // Stage 3 — the collect→reassemble round trip.
  core::RevealResult reveal;
  try {
    core::DexLegoOptions reveal_options;
    reveal_options.configure_runtime = mutant.configure_runtime;
    reveal_options.runtime.step_limit = options.step_limit;
    reveal_options.runtime.dispatch = options.dispatch;
    core::DexLego dexlego(reveal_options);
    reveal = dexlego.reveal(mutant.apk);
  } catch (const std::exception& e) {
    return finish(Outcome::kCrash, "reveal: " + render_exception(e));
  }
  if (!reveal.verified) {
    return finish(Outcome::kDivergent, "reveal not verifier-clean: " +
                                           first_line(reveal.verify_errors));
  }

  // Stage 3b — IR byte identity: every method of the revealed image must
  // lift to SSA and lower back to the exact same bytes (ARCHITECTURE
  // invariant 15). Applies to self-modifying mutants too — the check reads
  // the reassembled output, it never replays it.
  if (options.check_ir_roundtrip) {
    try {
      dex::DexFile revealed_file = dex::load_classes(reveal.revealed_apk);
      std::vector<std::string> errors;
      ir::RoundtripStats rt = ir::roundtrip_file(
          revealed_file,
          ir::RoundtripOptions{.apply_dce = false, .check_ssa = true}, &errors);
      if (!rt.clean()) {
        return finish(Outcome::kDivergent,
                      "ir roundtrip: " +
                          first_line(errors.empty() ? std::string("byte mismatch")
                                                    : errors.front()));
      }
    } catch (const std::exception& e) {
      return finish(Outcome::kCrash, "ir roundtrip: " + render_exception(e));
    }
  }

  if (!mutant.replay_safe) {
    // Self-modifying mutants cannot replay the revealed APK (the same
    // exclusion the differential suite applies); instead demand that the
    // collection actually captured covert state.
    if (reveal.stats.guards + reveal.stats.variants == 0) {
      return finish(Outcome::kDivergent,
                    "self-modifying collection recorded no variants");
    }
    return finish(Outcome::kEquivalent, {});
  }

  // Stage 4 — behavioural equivalence of mutant vs revealed.
  Trace revealed;
  try {
    revealed = trace_app(reveal.revealed_apk, mutant.configure_runtime, options);
  } catch (const std::exception& e) {
    return finish(Outcome::kCrash, "trace(revealed): " + render_exception(e));
  }
  std::string diff = compare_traces(original, revealed);
  if (!diff.empty()) return finish(Outcome::kDivergent, "trace: " + diff);

  // Stage 4b — lift→lower→trace: apply the DCE pass through the IR and
  // demand the optimized image still traces identically to the direct
  // revealed trace. This is the differential oracle that keeps the IR's
  // optimization passes honest — removing an instruction the runtime could
  // observe shows up as a phase/sink/leak diff here.
  if (options.check_ir_roundtrip) {
    try {
      dex::DexFile revealed_file = dex::load_classes(reveal.revealed_apk);
      ir::roundtrip_file(revealed_file,
                         ir::RoundtripOptions{.apply_dce = true, .check_ssa = true});
      dex::Apk optimized = reveal.revealed_apk;
      optimized.set_classes(dex::write_dex(revealed_file));
      Trace dce_trace =
          trace_app(optimized, mutant.configure_runtime, options);
      diff = compare_traces(revealed, dce_trace);
      if (!diff.empty()) {
        return finish(Outcome::kDivergent, "ir dce trace: " + diff);
      }
    } catch (const std::exception& e) {
      return finish(Outcome::kCrash, "ir dce trace: " + render_exception(e));
    }
  }

  // Stage 5 — reveal idempotence (decompile/recompile fixed point).
  if (options.check_idempotence) {
    core::RevealResult again;
    try {
      core::DexLegoOptions reveal_options;
      reveal_options.configure_runtime = mutant.configure_runtime;
      reveal_options.runtime.step_limit = options.step_limit;
      reveal_options.runtime.dispatch = options.dispatch;
      core::DexLego dexlego(reveal_options);
      again = dexlego.reveal(reveal.revealed_apk);
    } catch (const std::exception& e) {
      return finish(Outcome::kCrash, "re-reveal: " + render_exception(e));
    }
    if (!again.verified) {
      return finish(Outcome::kDivergent,
                    "idempotence: re-reveal not verifier-clean: " +
                        first_line(again.verify_errors));
    }
    Trace twice;
    try {
      twice = trace_app(again.revealed_apk, mutant.configure_runtime, options);
    } catch (const std::exception& e) {
      return finish(Outcome::kCrash,
                    "trace(re-revealed): " + render_exception(e));
    }
    diff = compare_traces(revealed, twice);
    if (!diff.empty()) {
      return finish(Outcome::kDivergent, "idempotence: " + diff);
    }
  }
  return finish(Outcome::kEquivalent, {});
}

std::vector<MutationOp> minimize_ops_with(
    std::vector<MutationOp> ops,
    const std::function<bool(std::span<const MutationOp>)>& reproduces,
    size_t* runs) {
  size_t spent = 0;
  bool changed = true;
  while (changed && ops.size() > 1) {
    changed = false;
    // Back to front: later ops most often ride on earlier ones.
    for (size_t i = ops.size(); i-- > 0;) {
      std::vector<MutationOp> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      ++spent;
      if (reproduces(candidate)) {
        ops = std::move(candidate);
        changed = true;
      }
    }
  }
  if (runs != nullptr) *runs = spent;
  return ops;
}

std::vector<MutationOp> minimize_ops(Family family, const SeedInput& seed,
                                     std::vector<MutationOp> ops,
                                     uint64_t fingerprint,
                                     const OracleOptions& options,
                                     size_t* oracle_runs) {
  return minimize_ops_with(
      std::move(ops),
      [&](std::span<const MutationOp> candidate) {
        return run_oracle(apply_ops(family, seed, candidate), options)
                   .fingerprint == fingerprint;
      },
      oracle_runs);
}

// --- campaign --------------------------------------------------------------

namespace {

std::vector<std::string> seed_keys_for(Family family) {
  switch (family) {
    case Family::kStructural: return structural_seed_keys();
    case Family::kBytecode: return bytecode_seed_keys();
    case Family::kBehavioral: return behavioral_seed_keys();
    case Family::kRealDex: return realdex_seed_keys();
  }
  return {};
}

struct CandidateResult {
  bool skipped = false;
  Family family = Family::kStructural;
  std::string seed_key;
  std::vector<MutationOp> ops;
  OracleReport report;
};

}  // namespace

std::string CampaignReport::summary() const {
  std::ostringstream os;
  os << "fuzz campaign: " << executed << " executed | " << equivalent
     << " equivalent | " << rejected << " rejected | " << divergent
     << " divergent | " << crashed << " crashed | " << skipped << " skipped\n";
  for (const auto& [fp, finding] : findings) {
    char fp_hex[24];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    os << "finding " << fp_hex << " [" << family_name(finding.family) << "/"
       << outcome_name(finding.outcome) << "] seed=" << finding.seed_key
       << " iter=" << finding.iter << " hits=" << finding.hits << " ops="
       << finding.ops.size() << "(of " << finding.ops_before_minimize
       << "): " << finding.detail << "\n";
    for (const MutationOp& op : finding.ops) {
      os << "  - " << op.describe(finding.family) << "\n";
    }
  }
  return os.str();
}

uint64_t CampaignReport::report_fingerprint() const {
  support::Fnv1a h;
  for (size_t v : {executed, equivalent, rejected, divergent, crashed, skipped}) {
    h.add(v);
  }
  for (const auto& [fp, finding] : findings) {
    h.add(fp);
    h.add(static_cast<uint64_t>(finding.outcome));
    h.add(static_cast<uint64_t>(finding.family));
    h.add(support::fnv1a(finding.seed_key));
    h.add(finding.iter);
    h.add(finding.hits);
    h.add(finding.ops_before_minimize);
    for (const MutationOp& op : finding.ops) {
      h.add(op.kind);
      h.add(op.a);
      h.add(op.b);
      h.add(op.c);
    }
    h.add(support::fnv1a(finding.detail));
  }
  return h.digest();
}

CampaignReport run_campaign(const CampaignOptions& options) {
  CampaignReport report;
  if (options.iters == 0 || options.families.empty()) return report;
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, options.iters);

  // Resolve every seed pool once, up front; workers share const inputs.
  std::map<std::string, SeedInput> seeds;
  std::map<Family, std::vector<std::string>> pools;
  for (Family family : options.families) {
    if (pools.count(family) > 0) continue;
    std::vector<std::string> keys = seed_keys_for(family);
    for (const std::string& key : keys) {
      if (seeds.count(key) == 0) seeds.emplace(key, resolve_seed(key));
    }
    pools.emplace(family, std::move(keys));
  }

  support::Stopwatch wall;
  std::vector<CandidateResult> results(options.iters);
  std::atomic<size_t> next{0};

  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= options.iters) return;
      // Candidate i depends only on (campaign seed, i): the splitmix stream
      // is re-derived per iteration, never shared across workers.
      support::Rng rng(options.seed ^
                       (0x2545f4914f6cdd1dull * (static_cast<uint64_t>(i) + 1)));
      CandidateResult& r = results[i];
      r.family = options.families[rng.below(options.families.size())];
      const std::vector<std::string>& pool = pools.at(r.family);
      if (pool.empty()) {
        r.skipped = true;
        continue;
      }
      r.seed_key = pool[rng.below(pool.size())];
      const SeedInput& seed = seeds.at(r.seed_key);
      r.ops = plan_ops(r.family, seed, rng.next(), options.max_ops);
      if (r.ops.empty()) {
        r.skipped = true;
        continue;
      }
      r.report = run_oracle(apply_ops(r.family, seed, r.ops), options.oracle);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  // Fold in iteration order so first-hit attribution (and therefore the
  // whole report) is thread-count-invariant.
  for (size_t i = 0; i < results.size(); ++i) {
    CandidateResult& r = results[i];
    if (r.skipped) {
      ++report.skipped;
      continue;
    }
    ++report.executed;
    switch (r.report.outcome) {
      case Outcome::kEquivalent: ++report.equivalent; break;
      case Outcome::kRejected: ++report.rejected; break;
      case Outcome::kDivergent: ++report.divergent; break;
      case Outcome::kCrash: ++report.crashed; break;
    }
    if (r.report.fingerprint == 0) continue;
    auto [it, inserted] = report.findings.try_emplace(r.report.fingerprint);
    Finding& finding = it->second;
    ++finding.hits;
    if (!inserted) continue;
    finding.fingerprint = r.report.fingerprint;
    finding.outcome = r.report.outcome;
    finding.family = r.family;
    finding.seed_key = r.seed_key;
    finding.iter = i;
    finding.detail = r.report.detail;
    finding.ops = std::move(r.ops);
    finding.ops_before_minimize = finding.ops.size();
  }

  // Stop the clock before minimization: execs/sec measures the campaign's
  // oracle loop, and the minimizer's extra oracle runs are not counted in
  // `executed` (keeps the figure comparable with bench/fuzz_throughput).
  report.wall_ms = wall.elapsed_ms();
  if (report.wall_ms > 0.0) {
    report.execs_per_sec =
        static_cast<double>(report.executed) / (report.wall_ms / 1000.0);
  }

  if (options.minimize) {
    for (auto& [fp, finding] : report.findings) {
      finding.ops = minimize_ops(finding.family, seeds.at(finding.seed_key),
                                 std::move(finding.ops), fp, options.oracle);
    }
  }
  return report;
}

}  // namespace dexlego::fuzz
