// Dynamic taint analysis presets — the TaintDroid / TaintART analogs of
// Table IV. Both run the app in the instrumented runtime with value-level
// taint tracking; both lose taint through framework/native marshalling
// (taint_through_framework=false); TaintDroid additionally runs on the
// emulator profile, so emulator-detecting samples behave benignly under it.
#pragma once

#include <functional>
#include <string>

#include "src/analysis/report.h"
#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::analysis {

struct DynamicToolConfig {
  std::string name;
  rt::RuntimeConfig runtime;
};

inline DynamicToolConfig taintdroid_config() {
  DynamicToolConfig cfg;
  cfg.name = "TaintDroid";
  cfg.runtime.device = rt::DeviceProfile::kEmulator;  // emulator-based
  cfg.runtime.taint_through_framework = false;
  return cfg;
}

inline DynamicToolConfig taintart_config() {
  DynamicToolConfig cfg;
  cfg.name = "TaintART";
  cfg.runtime.device = rt::DeviceProfile::kPhone;  // runs on a real device
  cfg.runtime.taint_through_framework = false;
  return cfg;
}

struct DynamicRunOptions {
  std::function<void(rt::Runtime&)> configure_runtime;  // natives etc.
  std::function<void(rt::Runtime&)> driver;             // default: launch+clicks
};

// Executes the app under the tool's runtime profile and reports the taint
// flows observed at sinks.
AnalysisResult run_dynamic_analysis(const DynamicToolConfig& tool,
                                    const dex::Apk& apk,
                                    const DynamicRunOptions& options = {});

}  // namespace dexlego::analysis
