#include "src/analysis/ssa_taint.h"

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/analysis/taint_core.h"
#include "src/ir/ir.h"
#include "src/ir/lift.h"
#include "src/support/bytes.h"
#include "src/support/log.h"

namespace dexlego::analysis {

using bc::Op;

namespace {

// SSA-based intra-method engine. Facts live on SSA values instead of per-pc
// register frames: each value's fact is recomputed from its defining
// instruction (or phi join over executable incoming edges), so the dataflow
// is sparse and merges happen exactly at phi nodes. Value mutations that the
// bytecode engine models by overwriting a register in place — aput tainting
// the whole array, the value-sensitive StringBuilder <init> rebind — become
// sticky side tables (`extra_taint`, `rebound`) folded back in whenever the
// defining instruction is re-evaluated, which keeps every pass monotone.
class SsaEngine final : public TaintCore {
 public:
  SsaEngine(const ToolConfig& cfg, const dex::DexFile& file)
      : TaintCore(cfg, file) {}

 private:
  void analyze_method(AMethod& method) override;
  const ir::Function* lifted(const AMethod& method);

  // Lifted bodies are cached across global fixpoint rounds: lifting is the
  // expensive part and the IR is immutable here.
  std::map<const dex::MethodDef*, ir::Function> cache_;
  std::set<const dex::MethodDef*> lift_failed_;
};

const ir::Function* SsaEngine::lifted(const AMethod& method) {
  auto it = cache_.find(method.def);
  if (it != cache_.end()) return &it->second;
  if (lift_failed_.contains(method.def)) return nullptr;
  try {
    auto [ins, ok] = cache_.emplace(method.def, ir::lift_method(file_, *method.def));
    (void)ok;
    return &ins->second;
  } catch (const std::exception& e) {
    lift_failed_.insert(method.def);
    DL_LOG(support::LogLevel::kWarn)
        << "ssa-taint: cannot lift " << method.class_descriptor << "->"
        << method.name << ": " << e.what();
    return nullptr;
  }
}

void SsaEngine::analyze_method(AMethod& method) {
  const ir::Function* fnp = lifted(method);
  if (fnp == nullptr) return;  // undecodable body: nothing to analyze
  const ir::Function& fn = *fnp;

  const size_t nvals = fn.values.size();
  std::vector<AbsValue> facts(nvals);
  std::vector<AbsValue> prev_facts;
  std::vector<Taint> extra_taint(nvals, 0);
  std::map<ir::ValueId, AbsValue> rebound;  // StringBuilder <init> receivers

  // Per-block field-override state at entry, plus executability for
  // constant-branch pruning (always on: facts are sparse, so a provably
  // dead edge simply never joins).
  std::vector<FieldOverrides> fields_in(fn.blocks.size());
  std::vector<uint8_t> executable(fn.blocks.size(), 0);
  std::set<std::pair<uint32_t, uint32_t>> exec_edges;
  executable[0] = 1;

  const size_t base = fn.registers_size - fn.ins_size;
  auto seed_entry_defs = [&] {
    for (ir::ValueId v = 0; v < nvals; ++v) {
      const ir::Value& val = fn.values[v];
      if (val.def_inst != ir::kEntryDef) continue;
      AbsValue fact;
      if (val.origin_reg >= static_cast<int32_t>(base) &&
          val.origin_reg < static_cast<int32_t>(fn.registers_size)) {
        size_t arg = static_cast<size_t>(val.origin_reg) - base;
        if (arg < method.num_args && arg < static_cast<size_t>(kMaxArgs)) {
          fact.taint = arg_token(arg);
        }
      }
      fact.taint |= extra_taint[v];
      facts[v] = fact;
    }
  };

  auto fact_of = [&](ir::ValueId v) -> const AbsValue& { return facts[v]; };

  bool local_changed = true;
  const int kMaxPasses = 100;
  for (int pass = 0; pass < kMaxPasses && local_changed; ++pass) {
    local_changed = false;
    seed_entry_defs();

    for (const ir::Block& b : fn.blocks) {
      if (!b.reachable || !executable[b.id]) continue;
      FieldOverrides fields = fields_in[b.id];

      // Phi joins over executable incoming edges only.
      for (const ir::Phi& phi : b.phis) {
        AbsValue merged;
        bool first = true;
        for (size_t j = 0; j < b.preds.size(); ++j) {
          if (!exec_edges.contains({b.preds[j], b.id})) continue;
          if (j >= phi.args.size() || phi.args[j] == ir::kNoValue) continue;
          if (first) {
            merged = fact_of(phi.args[j]);
            first = false;
          } else {
            merged.merge(fact_of(phi.args[j]));
          }
        }
        merged.taint |= extra_taint[phi.dest];
        facts[phi.dest] = merged;
      }

      // Straight-line transfer. Instruction facts overwrite (recompute) and
      // then fold in the sticky side tables.
      std::optional<bool> branch_known;
      for (const ir::Inst& inst : b.insts) {
        Taint implicit = implicit_context(method, inst.orig_pc);
        auto in = [&](size_t i) -> const AbsValue& {
          return fact_of(inst.uses.at(i));
        };
        AbsValue out;
        bool has_out = inst.def != ir::kNoValue;
        switch (inst.src.op) {
          case Op::kReturnVoid:
          case Op::kThrow:
            publish_overrides(fields);
            break;
          case Op::kReturn:
            changed_ |= method.summary.merge_ret(in(0).taint);
            publish_overrides(fields);
            break;
          case Op::kMove:
          case Op::kMoveResult:
            out = in(0);
            break;
          case Op::kConst16:
          case Op::kConst32:
          case Op::kConstWide:
            out.int_const = inst.src.lit;
            break;
          case Op::kConstString:
            out.str_const = file_.string_at(inst.src.idx);
            break;
          case Op::kConstNull:
          case Op::kMoveException:
          case Op::kNewArray:
            break;  // fresh untainted value
          case Op::kAdd:
          case Op::kSub:
          case Op::kMul:
          case Op::kDiv:
          case Op::kRem:
          case Op::kAnd:
          case Op::kOr:
          case Op::kXor:
          case Op::kShl:
          case Op::kShr:
          case Op::kCmp: {
            out.taint = in(0).taint | in(1).taint;
            if (in(0).int_const && in(1).int_const) {
              int64_t x = *in(0).int_const, y = *in(1).int_const;
              switch (inst.src.op) {
                case Op::kAdd: out.int_const = x + y; break;
                case Op::kSub: out.int_const = x - y; break;
                case Op::kMul: out.int_const = x * y; break;
                case Op::kXor: out.int_const = x ^ y; break;
                default: break;  // leave unknown (div by zero etc.)
              }
            }
            break;
          }
          case Op::kAddLit8:
          case Op::kMulLit8:
            out.taint = in(0).taint;
            if (in(0).int_const) {
              out.int_const = inst.src.op == Op::kAddLit8
                                  ? *in(0).int_const + inst.src.lit
                                  : *in(0).int_const * inst.src.lit;
            }
            break;
          case Op::kNeg:
          case Op::kNot:
          case Op::kArrayLength:
          case Op::kInstanceOf:
            out.taint = in(0).taint;
            break;
          case Op::kNewInstance:
            out.known_class = file_.type_descriptor(inst.src.idx);
            break;
          case Op::kAget:
            out.taint = in(0).taint | in(1).taint;
            break;
          case Op::kAput: {
            // Stores taint the whole array value, everywhere it flows.
            Taint& slot = extra_taint[inst.uses.at(1)];
            Taint merged = slot | in(0).taint;
            if (merged != slot) {
              slot = merged;
              local_changed = true;
            }
            break;
          }
          case Op::kIget: {
            const dex::FieldRef& f = file_.fields.at(inst.src.idx);
            out.taint = in(0).taint |
                        read_cell(fields,
                                  field_key(file_.type_descriptor(f.class_type),
                                            file_.string_at(f.name)));
            break;
          }
          case Op::kIput: {
            const dex::FieldRef& f = file_.fields.at(inst.src.idx);
            write_cell(method, fields,
                       field_key(file_.type_descriptor(f.class_type),
                                 file_.string_at(f.name)),
                       in(0).taint | implicit);
            break;
          }
          case Op::kSget: {
            const dex::FieldRef& f = file_.fields.at(inst.src.idx);
            out.taint = read_cell(
                fields, field_key(file_.type_descriptor(f.class_type),
                                  file_.string_at(f.name)));
            break;
          }
          case Op::kSput: {
            const dex::FieldRef& f = file_.fields.at(inst.src.idx);
            write_cell(method, fields,
                       field_key(file_.type_descriptor(f.class_type),
                                 file_.string_at(f.name)),
                       in(0).taint | implicit);
            break;
          }
          case Op::kInvokeVirtual:
          case Op::kInvokeDirect:
          case Op::kInvokeStatic: {
            std::vector<AbsValue> args;
            args.reserve(inst.uses.size());
            for (ir::ValueId u : inst.uses) args.push_back(fact_of(u));
            InvokeResult r = invoke_transfer(method, inst.src.op, inst.src.idx,
                                             args);
            out = r.result;
            if (r.update_receiver && !inst.uses.empty()) {
              auto [it, inserted] = rebound.emplace(inst.uses[0], r.receiver);
              if (!inserted && !(it->second == r.receiver)) {
                it->second = r.receiver;
                local_changed = true;
              } else if (inserted) {
                local_changed = true;
              }
            }
            break;
          }
          case Op::kIfEq:
          case Op::kIfNe:
          case Op::kIfLt:
          case Op::kIfGe:
          case Op::kIfGt:
          case Op::kIfLe:
          case Op::kIfEqz:
          case Op::kIfNez:
          case Op::kIfLtz:
          case Op::kIfGez:
          case Op::kIfGtz:
          case Op::kIfLez: {
            Taint cond = in(0).taint;
            if (bc::is_two_reg_if(inst.src.op)) cond |= in(1).taint;
            record_branch_taint(method, inst.orig_pc, cond);
            // Constant-branch pruning, unconditionally: a branch whose
            // condition folds to a constant has exactly one live edge.
            const AbsValue& a = in(0);
            if (!bc::is_two_reg_if(inst.src.op) && a.int_const) {
              int64_t x = *a.int_const;
              switch (inst.src.op) {
                case Op::kIfEqz: branch_known = (x == 0); break;
                case Op::kIfNez: branch_known = (x != 0); break;
                case Op::kIfLtz: branch_known = (x < 0); break;
                case Op::kIfGez: branch_known = (x >= 0); break;
                case Op::kIfGtz: branch_known = (x > 0); break;
                case Op::kIfLez: branch_known = (x <= 0); break;
                default: break;
              }
            } else if (bc::is_two_reg_if(inst.src.op) && a.int_const &&
                       in(1).int_const) {
              int64_t x = *a.int_const, y = *in(1).int_const;
              switch (inst.src.op) {
                case Op::kIfEq: branch_known = (x == y); break;
                case Op::kIfNe: branch_known = (x != y); break;
                case Op::kIfLt: branch_known = (x < y); break;
                case Op::kIfGe: branch_known = (x >= y); break;
                case Op::kIfGt: branch_known = (x > y); break;
                case Op::kIfLe: branch_known = (x <= y); break;
                default: break;
              }
            }
            break;
          }
          default:
            break;
        }
        if (has_out) {
          out.taint |= implicit;
          if (auto it = rebound.find(inst.def); it != rebound.end()) {
            out = it->second;
          }
          out.taint |= extra_taint[inst.def];
          facts[inst.def] = out;
        }
      }

      // Successor edges. succs order for a conditional-branch block is
      // [fallthrough, branch target, handler...]; a decided branch keeps
      // only its taken edge live (handler edges stay live: the per-
      // instruction try split may attach one to any covered block).
      auto mark_edge = [&](uint32_t succ) {
        if (exec_edges.insert({b.id, succ}).second) local_changed = true;
        if (!executable[succ]) {
          executable[succ] = 1;
          local_changed = true;
        }
        FieldOverrides& dst = fields_in[succ];
        for (const auto& [key, word] : fields) {
          auto it = dst.find(key);
          if (it == dst.end()) {
            dst[key] = word;
            local_changed = true;
          } else if ((it->second | word) != it->second) {
            it->second |= word;
            local_changed = true;
          }
        }
      };
      if (branch_known.has_value() && b.succs.size() >= 2) {
        mark_edge(b.succs[*branch_known ? 1 : 0]);
        for (size_t s = 2; s < b.succs.size(); ++s) mark_edge(b.succs[s]);
      } else {
        for (uint32_t s : b.succs) mark_edge(s);
      }
    }

    if (!local_changed && facts == prev_facts) break;
    if (facts != prev_facts) local_changed = true;
    prev_facts = facts;
  }
}

}  // namespace

AnalysisResult analyze_ssa(const ToolConfig& cfg, const dex::DexFile& file) {
  SsaEngine engine(cfg, file);
  return engine.run();
}

}  // namespace dexlego::analysis
