// Whole-app static taint analysis over LDEX bytecode — the engine behind the
// FlowDroid / DroidSafe / HornDroid presets. Interprocedural,
// context-insensitive with method summaries iterated to a global fixpoint;
// flow-sensitive over registers; heap abstracted as a global field store
// (precision knobs in ToolConfig); callbacks and lifecycle methods are
// analysis roots; reflection is resolved when the name strings are statically
// known (constant propagation — only the value-sensitive preset can see
// through concat/xor string building).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/report.h"
#include "src/analysis/tool_config.h"
#include "src/dex/archive.h"
#include "src/dex/dex.h"

namespace dexlego::analysis {

class StaticAnalyzer {
 public:
  explicit StaticAnalyzer(ToolConfig config) : cfg_(std::move(config)) {}

  AnalysisResult analyze(const dex::DexFile& file);
  // Convenience: analyze the classes.ldex inside an APK.
  AnalysisResult analyze_apk(const dex::Apk& apk);

  const ToolConfig& config() const { return cfg_; }

 private:
  ToolConfig cfg_;
};

}  // namespace dexlego::analysis
