#include "src/analysis/dynamic.h"

#include "src/runtime/source_sink.h"

namespace dexlego::analysis {

AnalysisResult run_dynamic_analysis(const DynamicToolConfig& tool,
                                    const dex::Apk& apk,
                                    const DynamicRunOptions& options) {
  rt::Runtime runtime(tool.runtime);
  if (options.configure_runtime) options.configure_runtime(runtime);
  runtime.install(apk);
  if (options.driver) {
    options.driver(runtime);
  } else {
    runtime.launch();
    for (int id : runtime.ui_clickable_ids()) runtime.fire_click(id);
    runtime.call_activity_method("onPause");
    runtime.call_activity_method("onDestroy");
  }

  AnalysisResult result;
  for (const rt::Runtime::SinkEvent& ev : runtime.leaks()) {
    for (const rt::SourceSpec& src : rt::taint_sources()) {
      if (ev.taint & src.taint) {
        Flow flow;
        flow.source = std::string(src.class_descriptor) + "->" + src.method;
        flow.sink = ev.sink;
        flow.where = "<runtime>";
        result.flows.insert(flow);
      }
    }
  }
  return result;
}

}  // namespace dexlego::analysis
