#include "src/analysis/taint_core.h"

#include <algorithm>
#include <span>

#include "src/runtime/source_sink.h"
#include "src/support/bytes.h"

namespace dexlego::analysis {

using bc::Insn;
using bc::Op;

std::string source_name_for_bit(uint32_t bit) {
  for (const rt::SourceSpec& s : rt::taint_sources()) {
    if (s.taint == bit) {
      return std::string(s.class_descriptor) + "->" + s.method;
    }
  }
  return "source#" + std::to_string(bit);
}

void TaintCore::build_method_table() {
  for (const dex::ClassDef& cls : file_.classes) {
    const std::string& desc = file_.type_descriptor(cls.type_idx);
    if (cls.super_type_idx != dex::kNoIndex) {
      super_of_[desc] = file_.type_descriptor(cls.super_type_idx);
    }
    auto add = [&](const dex::MethodDef& def) {
      AMethod m;
      m.def = &def;
      m.class_descriptor = desc;
      m.name = file_.method_name(def.method_ref);
      m.shorty = file_.proto_shorty(file_.methods[def.method_ref].proto);
      m.is_static = (def.access_flags & dex::kAccStatic) != 0;
      size_t params =
          file_.protos[file_.methods[def.method_ref].proto].param_types.size();
      m.num_args = params + (m.is_static ? 0 : 1);
      methods_.push_back(std::move(m));
      by_class_[desc].push_back(&methods_.back());
    };
    for (const dex::MethodDef& def : cls.direct_methods) add(def);
    for (const dex::MethodDef& def : cls.virtual_methods) add(def);
  }
}

bool TaintCore::is_subclass(const std::string& sub,
                            const std::string& super) const {
  std::string cur = sub;
  for (int i = 0; i < 64; ++i) {
    if (cur == super) return true;
    auto it = super_of_.find(cur);
    if (it == super_of_.end()) return false;
    cur = it->second;
  }
  return false;
}

void TaintCore::compute_liveness() {
  // Live: activity components, instantiated classes, forName-able strings.
  std::set<std::string> instantiated;
  std::set<std::string> named;
  for (const dex::ClassDef& cls : file_.classes) {
    for (const auto* mv : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& def : *mv) {
        if (!def.code) continue;
        std::span<const uint16_t> insns(def.code->insns);
        size_t pc = 0;
        while (pc < insns.size()) {
          Insn insn = bc::decode_at(insns, pc);
          if (insn.op == Op::kNewInstance) {
            instantiated.insert(file_.type_descriptor(insn.idx));
          } else if (insn.op == Op::kConstString) {
            const std::string& s = file_.string_at(insn.idx);
            if (!s.empty() && s.front() == 'L' && s.back() == ';') named.insert(s);
          }
          pc += insn.width;
        }
      }
    }
  }
  for (const dex::ClassDef& cls : file_.classes) {
    const std::string& desc = file_.type_descriptor(cls.type_idx);
    bool activity = false;
    std::string cur = desc;
    for (int i = 0; i < 64; ++i) {
      auto it = super_of_.find(cur);
      std::string super = it != super_of_.end() ? it->second : "";
      if (super.empty()) break;
      if (super == "Landroid/app/Activity;") activity = true;
      cur = super;
    }
    if (activity || instantiated.contains(desc) || named.contains(desc) ||
        desc == "Ldexlego/Modification;") {
      live_classes_.insert(desc);
    }
  }
  for (AMethod& m : methods_) {
    if (live_classes_.contains(m.class_descriptor)) {
      m.analyzed = m.def->code.has_value();
    } else if (cfg_.orphan_callbacks && m.name.rfind("on", 0) == 0) {
      // FlowDroid-style lifecycle over-approximation: callbacks of classes
      // never instantiated are still treated as potentially invocable.
      m.analyzed = m.def->code.has_value();
    }
  }
}

AMethod* TaintCore::find_method(const std::string& cls, const std::string& name,
                                const std::string& shorty) {
  std::string cur = cls;
  for (int i = 0; i < 64; ++i) {
    auto it = by_class_.find(cur);
    if (it != by_class_.end()) {
      for (AMethod* m : it->second) {
        if (m->name == name && (shorty.empty() || m->shorty == shorty)) return m;
      }
      // Name-only fallback mirrors the runtime's lenient dispatch.
      for (AMethod* m : it->second) {
        if (m->name == name) return m;
      }
    }
    auto sit = super_of_.find(cur);
    if (sit == super_of_.end()) return nullptr;
    cur = sit->second;
  }
  return nullptr;
}

std::vector<AMethod*> TaintCore::resolve_targets(const std::string& cls,
                                                 const std::string& name,
                                                 const std::string& shorty) {
  std::vector<AMethod*> targets;
  if (AMethod* m = find_method(cls, name, shorty)) targets.push_back(m);
  // CHA: overriding definitions in subclasses.
  for (auto& [desc, methods] : by_class_) {
    if (desc == cls || !is_subclass(desc, cls)) continue;
    for (AMethod* m : methods) {
      if (m->name == name && m->shorty == shorty &&
          std::find(targets.begin(), targets.end(), m) == targets.end()) {
        targets.push_back(m);
      }
    }
  }
  return targets;
}

void TaintCore::record_sink(AMethod& method, const std::string& sink,
                            Taint word) {
  Taint src = source_bits(word);
  for (uint32_t bit = 0; bit < 32; ++bit) {
    if (src & (1u << bit)) {
      Flow flow{source_name_for_bit(1u << bit), sink,
                method.class_descriptor + "->" + method.name};
      if (result_.flows.insert(flow).second) changed_ = true;
    }
  }
  if (token_bits(word) != 0) {
    changed_ |= method.summary.merge_sink(sink, token_bits(word));
  }
}

void TaintCore::write_cell(AMethod& method, FieldOverrides& overrides,
                           const std::string& key, Taint word) {
  if (cfg_.flow_sensitive_fields) {
    overrides[key] = word;  // strong update
  }
  Taint src = source_bits(word);
  if (src != 0 && !cfg_.flow_sensitive_fields) {
    Taint& cell = global_cells_[key];
    if ((cell | src) != cell) {
      cell |= src;
      changed_ = true;
    }
  }
  if (token_bits(word) != 0) {
    changed_ |= method.summary.merge_field(key, token_bits(word));
  }
}

Taint TaintCore::read_cell(const FieldOverrides& overrides,
                           const std::string& key) const {
  auto it = overrides.find(key);
  Taint local = it != overrides.end() ? it->second : 0;
  auto git = global_cells_.find(key);
  Taint global = (it != overrides.end() && cfg_.flow_sensitive_fields)
                     ? 0  // strong update shadows the global cell on this path
                     : (git != global_cells_.end() ? git->second : 0);
  return local | global;
}

void TaintCore::publish_overrides(const FieldOverrides& overrides) {
  if (!cfg_.flow_sensitive_fields) return;
  for (const auto& [key, word] : overrides) {
    Taint src = source_bits(word);
    if (src != 0) {
      Taint& cell = global_cells_[key];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
  }
}

Taint TaintCore::implicit_context(const AMethod& method, size_t pc) const {
  if (!cfg_.implicit_flows) return 0;
  Taint implicit = 0;
  for (const auto& [key, taint] : branch_taint_) {
    if (key.first != &method) continue;
    // Region of a forward branch at b with target t: (b, t).
    size_t b = key.second;
    std::span<const uint16_t> insns(method.def->code->insns);
    Insn branch = bc::decode_at(insns, b);
    size_t t = b + static_cast<size_t>(branch.off);
    if (t > b && pc > b && pc < t) implicit |= taint;
  }
  return implicit;
}

void TaintCore::record_branch_taint(const AMethod& method, size_t pc,
                                    Taint cond) {
  if (!cfg_.implicit_flows || cond == 0) return;
  Taint& slot = branch_taint_[{&method, pc}];
  if ((slot | cond) != slot) {
    slot |= cond;
    changed_ = true;
  }
}

AbsValue TaintCore::apply_summary(AMethod& caller, AMethod& callee,
                                  const std::vector<AbsValue>& args) {
  AbsValue out;
  // Reachability: a callee of an analyzed method joins the analyzed set
  // (covers classes only reachable through resolved reflection or code
  // revealed by DexLego — the initial set is just components + callbacks).
  if (!callee.analyzed && callee.def->code.has_value()) {
    callee.analyzed = true;
    changed_ = true;
  }
  if (callee.summary.depth >= cfg_.max_summary_depth) {
    return out;  // DroidSafe-style call-chain cut: no propagation
  }
  auto resolve = [&](Taint word) {
    Taint resolved = source_bits(word);
    for (size_t i = 0; i < args.size() && i < kMaxArgs; ++i) {
      if (word & arg_token(i)) resolved |= args[i].taint;
    }
    return resolved;
  };
  out.taint = resolve(callee.summary.ret);
  for (const auto& [sink, word] : callee.summary.sinks) {
    record_sink(caller, sink, resolve(word));
  }
  for (const auto& [key, word] : callee.summary.field_writes) {
    Taint resolved = resolve(word);
    Taint src = source_bits(resolved);
    if (src != 0) {
      Taint& cell = global_cells_[key];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(resolved) != 0) {
      changed_ |= caller.summary.merge_field(key, token_bits(resolved));
    }
  }
  int depth = callee.summary.depth + 1;
  if (depth > caller.summary.depth) {
    caller.summary.depth = depth;
    changed_ = true;
  }
  return out;
}

AbsValue TaintCore::framework_call(AMethod& caller, const std::string& cls,
                                   const std::string& name,
                                   const std::vector<AbsValue>& args) {
  AbsValue out;
  // Sources and sinks from the shared registry.
  if (const rt::SourceSpec* src = rt::find_source(cls, name)) {
    out.taint = src->taint;
    return out;
  }
  if (const rt::SinkSpec* sink = rt::find_sink(cls, name)) {
    Taint word = 0;
    for (const AbsValue& a : args) word |= a.taint;
    record_sink(caller, sink->sink_name, word);
    return out;
  }

  // Reflection.
  if (cls == "Ljava/lang/Class;" && name == "forName") {
    if (!args.empty() && args[0].str_const) out.reflect_class = *args[0].str_const;
    return out;
  }
  if (cls == "Ljava/lang/Class;" && name == "getMethod") {
    if (args.size() > 1 && !args[0].reflect_class.empty() && args[1].str_const) {
      out.reflect_method = args[0].reflect_class + "|" + *args[1].str_const;
    }
    return out;
  }
  if (cls == "Ljava/lang/reflect/Method;" && name == "invoke") {
    if (!args.empty() && !args[0].reflect_method.empty()) {
      auto bar = args[0].reflect_method.find('|');
      std::string tcls = args[0].reflect_method.substr(0, bar);
      std::string tname = args[0].reflect_method.substr(bar + 1);
      if (AMethod* target = find_method(tcls, tname, "")) {
        std::vector<AbsValue> call_args;
        size_t skip = target->is_static ? 2 : 1;
        for (size_t i = skip; i < args.size(); ++i) call_args.push_back(args[i]);
        if (!target->is_static && args.size() > 1) {
          call_args.insert(call_args.begin(), args[1]);
        }
        return apply_summary(caller, *target, call_args);
      }
    }
    // Unresolved reflection: conservative no-flow (this is precisely the gap
    // DexLego's direct-call replacement closes).
    return out;
  }
  if (cls == "Ljava/lang/Class;" && name == "newInstance") {
    if (!args.empty() && !args[0].reflect_class.empty()) {
      out.known_class = args[0].reflect_class;
      if (AMethod* ctor = find_method(args[0].reflect_class, "<init>", "()V")) {
        apply_summary(caller, *ctor, {out});
      }
    }
    return out;
  }

  // Intent / ICC cells.
  if (cls == "Landroid/content/Intent;" && name == "putExtra") {
    std::string key = (args.size() > 1 && args[1].str_const)
                          ? "intent:" + *args[1].str_const
                          : "intent:*";
    Taint word = args.size() > 2 ? args[2].taint : 0;
    // Writes happen regardless of the tool's ICC support; only reads differ.
    Taint src = source_bits(word);
    if (src != 0) {
      Taint& cell = global_cells_[key];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(word) != 0) {
      changed_ |= caller.summary.merge_field(key, token_bits(word));
    }
    if (!args.empty()) out = args[0];  // returns the intent
    return out;
  }
  if (cls == "Landroid/content/Intent;" && name == "getStringExtra") {
    if (cfg_.icc) {
      std::string key = (args.size() > 1 && args[1].str_const)
                            ? "intent:" + *args[1].str_const
                            : "intent:*";
      auto it = global_cells_.find(key);
      if (it != global_cells_.end()) out.taint |= it->second;
      auto wild = global_cells_.find("intent:*");
      if (wild != global_cells_.end()) out.taint |= wild->second;
    }
    return out;
  }

  // View tags: a single coarse cell — the framework summary every tool uses
  // (keeps Button1/3-style flows detectable; causes coarse-tag FPs).
  if (cls == "Landroid/view/View;" && name == "setTag") {
    Taint word = args.size() > 1 ? args[1].taint : 0;
    Taint src = source_bits(word);
    if (src != 0) {
      Taint& cell = global_cells_["viewtag"];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(word) != 0) {
      changed_ |= caller.summary.merge_field("viewtag", token_bits(word));
    }
    return out;
  }
  if (cls == "Landroid/view/View;" && name == "getTag") {
    auto it = global_cells_.find("viewtag");
    if (it != global_cells_.end()) out.taint = it->second;
    return out;
  }

  // External files: no tool models this channel (paper, PrivateDataLeak3).
  if (cls == "Ldexlego/api/Io;") return out;
  // Sanitizer clears taint.
  if (cls == "Ldexlego/api/Sanitizer;") return out;

  // Handler.post: edge into the runnable's run() when its class is known.
  if (cls == "Landroid/os/Handler;" && name == "post") {
    if (cfg_.handler_edges && args.size() > 1 && !args[1].known_class.empty()) {
      if (AMethod* run = find_method(args[1].known_class, "run", "()V")) {
        apply_summary(caller, *run, {args[1]});
      }
    }
    return out;
  }

  // Value-sensitive string building (HornDroid): evaluate xor decoding and
  // concatenation over known constants so runtime-built reflection strings
  // resolve statically.
  if (cfg_.value_sensitive) {
    if (cls == "Ldexlego/api/Crypto;" && name == "xorDecode" && args.size() > 1 &&
        args[0].str_const && args[1].int_const) {
      std::string s = *args[0].str_const;
      for (char& c : s) c = static_cast<char>(c ^ static_cast<char>(*args[1].int_const));
      out.str_const = s;
    } else if (cls == "Ljava/lang/String;" && name == "concat" &&
               args.size() > 1 && args[0].str_const && args[1].str_const) {
      out.str_const = *args[0].str_const + *args[1].str_const;
    } else if (cls == "Ljava/lang/StringBuilder;" && name == "append" &&
               args.size() > 1 && args[0].str_const && args[1].str_const) {
      out.str_const = *args[0].str_const + *args[1].str_const;
      out.is_builder = true;
    } else if (cls == "Ljava/lang/StringBuilder;" && name == "toString" &&
               !args.empty() && args[0].str_const) {
      out.str_const = args[0].str_const;
    }
  }

  // Default framework summary: taint-preserving (result = union of args).
  for (const AbsValue& a : args) out.taint |= a.taint;
  return out;
}

TaintCore::InvokeResult TaintCore::invoke_transfer(
    AMethod& caller, Op op, uint32_t method_idx,
    const std::vector<AbsValue>& args) {
  InvokeResult r;
  const dex::MethodRef& ref = file_.methods.at(method_idx);
  std::string cls = file_.type_descriptor(ref.class_type);
  std::string name = file_.string_at(ref.name);
  std::string shorty = file_.proto_shorty(ref.proto);

  // Prefer the receiver's known dynamic class for virtual dispatch.
  std::string dispatch_cls = cls;
  if (op == Op::kInvokeVirtual && !args.empty() &&
      !args[0].known_class.empty()) {
    dispatch_cls = args[0].known_class;
  }

  std::vector<AMethod*> targets =
      op == Op::kInvokeVirtual ? resolve_targets(dispatch_cls, name, shorty)
                               : resolve_targets(cls, name, shorty);
  if (targets.empty()) {
    r.result = framework_call(caller, cls, name, args);
    // new StringBuilder() constructor: start constant tracking.
    if (cfg_.value_sensitive && name == "<init>" &&
        cls == "Ljava/lang/StringBuilder;" && !args.empty()) {
      r.receiver = args[0];
      r.receiver.str_const = args.size() > 1 && args[1].str_const
                                 ? *args[1].str_const
                                 : std::string();
      r.receiver.is_builder = true;
      r.update_receiver = true;
    }
    return r;
  }
  AbsValue merged;
  for (AMethod* target : targets) {
    AbsValue sub = apply_summary(caller, *target, args);
    merged.taint |= sub.taint;
  }
  r.result = merged;
  return r;
}

AnalysisResult TaintCore::run() {
  build_method_table();
  compute_liveness();

  for (int round = 0; round < cfg_.max_rounds; ++round) {
    changed_ = false;
    for (AMethod& method : methods_) {
      if (method.analyzed) analyze_method(method);
    }
    if (!changed_) break;
  }
  return std::move(result_);
}

}  // namespace dexlego::analysis
