// Analysis results and the classification metrics of the paper's
// formula (1): Sensitivity, Specificity and F-Measure.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace dexlego::analysis {

// One detected taint flow: source API, sink channel, containing method.
struct Flow {
  std::string source;  // e.g. "Landroid/telephony/TelephonyManager;->getDeviceId"
  std::string sink;    // "sms" / "log" / "net"
  std::string where;   // method containing the sink call

  auto operator<=>(const Flow&) const = default;
};

struct AnalysisResult {
  std::set<Flow> flows;

  bool leak_detected() const { return !flows.empty(); }
  size_t flow_count() const { return flows.size(); }
  // Distinct (source, sink) pairs — the unit Table IV counts.
  size_t distinct_leaks() const {
    std::set<std::pair<std::string, std::string>> pairs;
    for (const Flow& f : flows) pairs.emplace(f.source, f.sink);
    return pairs.size();
  }
};

// Sample-level classification counts over a benchmark run.
struct Classification {
  int tp = 0;  // leaky sample flagged
  int fn = 0;  // leaky sample missed
  int fp = 0;  // benign sample flagged
  int tn = 0;  // benign sample clean

  double sensitivity() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double specificity() const {
    return tn + fp == 0 ? 0.0 : static_cast<double>(tn) / (tn + fp);
  }
  // Paper formula (1).
  double f_measure() const {
    double sens = sensitivity(), spec = specificity();
    return sens + spec == 0.0 ? 0.0 : 2.0 * sens * spec / (sens + spec);
  }
  void add(bool ground_truth_leaky, bool detected) {
    if (ground_truth_leaky) {
      detected ? ++tp : ++fn;
    } else {
      detected ? ++fp : ++tn;
    }
  }
};

}  // namespace dexlego::analysis
