#include "src/analysis/static_taint.h"

#include <deque>
#include <optional>

#include "src/analysis/ssa_taint.h"
#include "src/analysis/taint_core.h"
#include "src/bytecode/insn.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/support/bytes.h"

namespace dexlego::analysis {

using bc::Insn;
using bc::Op;

namespace {

// Per-pc abstract state of the original engine: one AbsValue per frame
// register plus the pending invoke result and the field-override map.
struct State {
  std::vector<AbsValue> regs;
  AbsValue result;                  // move-result source
  FieldOverrides field_override;    // strong updates (flow-sens.)

  bool merge(const State& other) {
    bool changed = false;
    for (size_t i = 0; i < regs.size(); ++i) {
      AbsValue before = regs[i];
      regs[i].merge(other.regs[i]);
      changed |= !(before == regs[i]);
    }
    AbsValue before_res = result;
    result.merge(other.result);
    changed |= !(before_res == result);
    for (const auto& [key, word] : other.field_override) {
      auto it = field_override.find(key);
      if (it == field_override.end()) {
        field_override[key] = word;
        changed = true;
      } else if ((it->second | word) != it->second) {
        it->second |= word;
        changed = true;
      }
    }
    return changed;
  }
};

// The original per-pc worklist engine over raw LDEX bytecode.
class BytecodeEngine final : public TaintCore {
 public:
  BytecodeEngine(const ToolConfig& cfg, const dex::DexFile& file)
      : TaintCore(cfg, file) {}

 private:
  void analyze_method(AMethod& method) override;
  void transfer(AMethod& method, size_t pc, const Insn& insn, State& state);
  void handle_invoke(AMethod& method, const Insn& insn, State& state);
};

void BytecodeEngine::handle_invoke(AMethod& method, const Insn& insn,
                                   State& state) {
  std::vector<AbsValue> args;
  for (uint8_t i = 0; i < insn.a; ++i) args.push_back(state.regs.at(insn.args[i]));
  InvokeResult r = invoke_transfer(method, insn.op, insn.idx, args);
  state.result = r.result;
  if (r.update_receiver) state.regs.at(insn.args[0]) = r.receiver;
}

void BytecodeEngine::transfer(AMethod& method, size_t pc, const Insn& insn,
                              State& state) {
  // Implicit-flow context for this pc (HornDroid preset only).
  Taint implicit = implicit_context(method, pc);
  auto write_reg = [&](uint8_t r, AbsValue v) {
    v.taint |= implicit;
    state.regs.at(r) = std::move(v);
  };
  // Flow-sensitive field handling defers global-store publication to method
  // exits so intra-method strong updates can kill overwritten taint first.
  auto fold_exit = [&] { publish_overrides(state.field_override); };

  switch (insn.op) {
    case Op::kReturnVoid:
    case Op::kThrow:
      fold_exit();
      break;
    case Op::kMove:
      write_reg(insn.a, state.regs.at(insn.b));
      break;
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide: {
      AbsValue v;
      v.int_const = insn.lit;
      write_reg(insn.a, v);
      break;
    }
    case Op::kConstString: {
      AbsValue v;
      v.str_const = file_.string_at(insn.idx);
      write_reg(insn.a, v);
      break;
    }
    case Op::kConstNull:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kMoveResult:
      write_reg(insn.a, state.result);
      break;
    case Op::kMoveException:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kReturn:
      changed_ |= method.summary.merge_ret(state.regs.at(insn.a).taint);
      fold_exit();
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint | state.regs.at(insn.c).taint;
      if (cfg_.value_sensitive && state.regs.at(insn.b).int_const &&
          state.regs.at(insn.c).int_const) {
        int64_t b = *state.regs.at(insn.b).int_const;
        int64_t c = *state.regs.at(insn.c).int_const;
        switch (insn.op) {
          case Op::kAdd: v.int_const = b + c; break;
          case Op::kSub: v.int_const = b - c; break;
          case Op::kMul: v.int_const = b * c; break;
          case Op::kXor: v.int_const = b ^ c; break;
          default: break;  // leave unknown (div by zero etc.)
        }
      }
      write_reg(insn.a, v);
      break;
    }
    case Op::kAddLit8:
    case Op::kMulLit8: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      if (cfg_.value_sensitive && state.regs.at(insn.b).int_const) {
        v.int_const = insn.op == Op::kAddLit8
                          ? *state.regs.at(insn.b).int_const + insn.lit
                          : *state.regs.at(insn.b).int_const * insn.lit;
      }
      write_reg(insn.a, v);
      break;
    }
    case Op::kNeg:
    case Op::kNot:
    case Op::kArrayLength: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      write_reg(insn.a, v);
      break;
    }
    case Op::kNewInstance: {
      AbsValue v;
      v.known_class = file_.type_descriptor(insn.idx);
      write_reg(insn.a, v);
      break;
    }
    case Op::kNewArray:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kAget: {
      // Coarse array abstraction: element reads carry the array's taint.
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint | state.regs.at(insn.c).taint;
      write_reg(insn.a, v);
      break;
    }
    case Op::kAput: {
      // Stores taint the whole array (register-level).
      AbsValue arr = state.regs.at(insn.b);
      arr.taint |= state.regs.at(insn.a).taint;
      state.regs.at(insn.b) = arr;
      break;
    }
    case Op::kIget: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint |
                read_cell(state.field_override,
                          field_key(file_.type_descriptor(f.class_type),
                                    file_.string_at(f.name)));
      write_reg(insn.a, v);
      break;
    }
    case Op::kIput: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      write_cell(method, state.field_override,
                 field_key(file_.type_descriptor(f.class_type),
                           file_.string_at(f.name)),
                 state.regs.at(insn.a).taint | implicit);
      break;
    }
    case Op::kSget: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      AbsValue v;
      v.taint = read_cell(state.field_override,
                          field_key(file_.type_descriptor(f.class_type),
                                    file_.string_at(f.name)));
      write_reg(insn.a, v);
      break;
    }
    case Op::kSput: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      write_cell(method, state.field_override,
                 field_key(file_.type_descriptor(f.class_type),
                           file_.string_at(f.name)),
                 state.regs.at(insn.a).taint | implicit);
      break;
    }
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      handle_invoke(method, insn, state);
      if (implicit != 0) state.result.taint |= implicit;
      break;
    case Op::kInstanceOf: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      write_reg(insn.a, v);
      break;
    }
    default:
      break;
  }
}

void BytecodeEngine::analyze_method(AMethod& method) {
  const dex::CodeItem& code = *method.def->code;
  std::span<const uint16_t> insns(code.insns);

  State entry;
  entry.regs.assign(code.registers_size, AbsValue{});
  size_t base = code.registers_size - code.ins_size;
  for (size_t i = 0; i < method.num_args && i < code.ins_size && i < kMaxArgs; ++i) {
    entry.regs[base + i].taint = arg_token(i);
  }

  std::map<size_t, State> states;
  states.emplace(0, entry);
  std::deque<size_t> worklist{0};
  std::set<size_t> seen;
  size_t iterations = 0;
  const size_t kMaxIterations = 20000;

  while (!worklist.empty() && ++iterations < kMaxIterations) {
    size_t pc = worklist.front();
    worklist.pop_front();
    State state = states.at(pc);
    Insn insn;
    try {
      insn = bc::decode_at(insns, pc);
    } catch (const support::ParseError&) {
      continue;
    }
    if (insn.op == Op::kPayload) continue;

    // Record conditional-branch condition taints for implicit flows, and
    // determine successors (value-sensitive pruning of constant branches).
    std::vector<size_t> succ;
    if (bc::is_conditional_branch(insn.op)) {
      Taint cond = state.regs.at(insn.a).taint;
      if (bc::is_two_reg_if(insn.op)) cond |= state.regs.at(insn.b).taint;
      record_branch_taint(method, pc, cond);
      std::optional<bool> known;
      if (cfg_.value_sensitive) {
        const AbsValue& a = state.regs.at(insn.a);
        if (!bc::is_two_reg_if(insn.op) && a.int_const) {
          int64_t x = *a.int_const;
          switch (insn.op) {
            case Op::kIfEqz: known = (x == 0); break;
            case Op::kIfNez: known = (x != 0); break;
            case Op::kIfLtz: known = (x < 0); break;
            case Op::kIfGez: known = (x >= 0); break;
            case Op::kIfGtz: known = (x > 0); break;
            case Op::kIfLez: known = (x <= 0); break;
            default: break;
          }
        } else if (bc::is_two_reg_if(insn.op) && a.int_const &&
                   state.regs.at(insn.b).int_const) {
          int64_t x = *a.int_const, y = *state.regs.at(insn.b).int_const;
          switch (insn.op) {
            case Op::kIfEq: known = (x == y); break;
            case Op::kIfNe: known = (x != y); break;
            case Op::kIfLt: known = (x < y); break;
            case Op::kIfGe: known = (x >= y); break;
            case Op::kIfGt: known = (x > y); break;
            case Op::kIfLe: known = (x <= y); break;
            default: break;
          }
        }
      }
      if (known.has_value()) {
        succ.push_back(*known ? pc + static_cast<size_t>(insn.off)
                              : pc + insn.width);
      } else {
        succ.push_back(pc + insn.width);
        succ.push_back(pc + static_cast<size_t>(insn.off));
      }
      transfer(method, pc, insn, state);
    } else {
      transfer(method, pc, insn, state);
      try {
        succ = bc::successors_at(insns, pc);
      } catch (const support::ParseError&) {
        succ.clear();
      }
    }

    // Exception edges: any instruction inside a try range may reach the
    // handler (registers merged conservatively).
    for (const dex::TryItem& t : code.tries) {
      if (pc >= t.start_pc && pc < t.end_pc) succ.push_back(t.handler_pc);
    }

    for (size_t next : succ) {
      if (next >= insns.size()) continue;
      auto [it, inserted] = states.emplace(next, state);
      bool changed = inserted || it->second.merge(state);
      if (changed || !seen.contains(next)) {
        seen.insert(next);
        worklist.push_back(next);
      }
    }
  }
}

}  // namespace

AnalysisResult StaticAnalyzer::analyze(const dex::DexFile& file) {
  if (cfg_.engine == TaintEngine::kSsa) return analyze_ssa(cfg_, file);
  BytecodeEngine engine(cfg_, file);
  return engine.run();
}

AnalysisResult StaticAnalyzer::analyze_apk(const dex::Apk& apk) {
  dex::DexFile file = dex::load_classes(apk);
  return analyze(file);
}

}  // namespace dexlego::analysis
