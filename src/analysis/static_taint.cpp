#include "src/analysis/static_taint.h"

#include <algorithm>
#include <deque>
#include <optional>

#include "src/bytecode/insn.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/runtime/source_sink.h"
#include "src/support/bytes.h"
#include "src/support/log.h"

namespace dexlego::analysis {

using bc::Insn;
using bc::Op;

namespace {

// Taint words: low 32 bits = source bits, bits 32+ = argument tokens.
using Taint = uint64_t;
constexpr Taint kSourceMask = 0xffffffffull;
constexpr int kMaxArgs = 8;
Taint arg_token(size_t i) { return 1ull << (32 + i); }
Taint source_bits(Taint t) { return t & kSourceMask; }
Taint token_bits(Taint t) { return t & ~kSourceMask; }

std::string source_name_for_bit(uint32_t bit) {
  for (const rt::SourceSpec& s : rt::taint_sources()) {
    if (s.taint == bit) {
      return std::string(s.class_descriptor) + "->" + s.method;
    }
  }
  return "source#" + std::to_string(bit);
}

// Per-method summary accumulated across fixpoint rounds.
struct Summary {
  Taint ret = 0;
  std::vector<std::pair<std::string, Taint>> sinks;        // sink name, taint word
  std::map<std::string, Taint> field_writes;               // cell key -> word
  int depth = 1;

  bool merge_ret(Taint t) {
    Taint merged = ret | t;
    bool changed = merged != ret;
    ret = merged;
    return changed;
  }
  bool merge_sink(const std::string& sink, Taint t) {
    for (auto& [name, word] : sinks) {
      if (name == sink) {
        Taint merged = word | t;
        bool changed = merged != word;
        word = merged;
        return changed;
      }
    }
    sinks.emplace_back(sink, t);
    return true;
  }
  bool merge_field(const std::string& key, Taint t) {
    Taint& slot = field_writes[key];
    Taint merged = slot | t;
    bool changed = merged != slot;
    slot = merged;
    return changed;
  }
};

struct AMethod {
  const dex::MethodDef* def = nullptr;
  std::string class_descriptor;
  std::string name;
  std::string shorty;
  size_t num_args = 0;  // including `this` for instance methods
  bool is_static = false;
  bool analyzed = false;
  Summary summary;
};

// Abstract register value: taint word plus optional constant views used by
// reflection resolution and (value-sensitive preset) branch pruning.
struct AbsValue {
  Taint taint = 0;
  std::optional<int64_t> int_const;
  std::optional<std::string> str_const;
  std::string reflect_class;            // set on Class.forName results
  std::string reflect_method;           // "class|name" on getMethod results
  std::string known_class;              // from new-instance (CHA aid)
  bool is_builder = false;              // StringBuilder tracking (value-sens.)

  bool operator==(const AbsValue&) const = default;

  void merge(const AbsValue& other) {
    taint |= other.taint;
    if (int_const != other.int_const) int_const.reset();
    if (str_const != other.str_const) str_const.reset();
    if (reflect_class != other.reflect_class) reflect_class.clear();
    if (reflect_method != other.reflect_method) reflect_method.clear();
    if (known_class != other.known_class) known_class.clear();
    is_builder = is_builder && other.is_builder;
  }
};

struct State {
  std::vector<AbsValue> regs;
  AbsValue result;                       // move-result source
  std::map<std::string, Taint> field_override;  // strong updates (flow-sens.)

  bool merge(const State& other) {
    bool changed = false;
    for (size_t i = 0; i < regs.size(); ++i) {
      AbsValue before = regs[i];
      regs[i].merge(other.regs[i]);
      changed |= !(before == regs[i]);
    }
    AbsValue before_res = result;
    result.merge(other.result);
    changed |= !(before_res == result);
    for (const auto& [key, word] : other.field_override) {
      auto it = field_override.find(key);
      if (it == field_override.end()) {
        field_override[key] = word;
        changed = true;
      } else if ((it->second | word) != it->second) {
        it->second |= word;
        changed = true;
      }
    }
    return changed;
  }
};

class Engine {
 public:
  Engine(const ToolConfig& cfg, const dex::DexFile& file) : cfg_(cfg), file_(file) {}

  AnalysisResult run();

 private:
  void build_method_table();
  void compute_liveness();
  void analyze_method(AMethod& method);
  void transfer(AMethod& method, const dex::CodeItem& code, size_t pc,
                const Insn& insn, State& state);
  void handle_invoke(AMethod& method, const Insn& insn, State& state);
  // Applies a callee summary at a call site; returns the abstract result.
  AbsValue apply_summary(AMethod& caller, AMethod& callee,
                         const std::vector<AbsValue>& args);
  AbsValue framework_call(AMethod& caller, const std::string& cls,
                          const std::string& name,
                          const std::vector<AbsValue>& args);
  void record_sink(AMethod& method, const std::string& sink, Taint word);
  void write_cell(AMethod& method, State& state, const std::string& key,
                  Taint word);
  Taint read_cell(const State& state, const std::string& key) const;
  std::string field_key(const std::string& cls, const std::string& name) const {
    return cfg_.field_collision_heap ? name : cls + "." + name;
  }
  std::vector<AMethod*> resolve_targets(const std::string& cls,
                                        const std::string& name,
                                        const std::string& shorty);
  AMethod* find_method(const std::string& cls, const std::string& name,
                       const std::string& shorty);
  bool is_subclass(const std::string& sub, const std::string& super) const;

  const ToolConfig& cfg_;
  const dex::DexFile& file_;
  std::deque<AMethod> methods_;
  std::map<std::string, std::vector<AMethod*>> by_class_;
  std::map<std::string, std::string> super_of_;
  std::set<std::string> live_classes_;
  std::map<std::string, Taint> global_cells_;  // fields + intent extras + tags
  // Implicit-flow support: conditional branch pc (per method) -> cond taint.
  std::map<std::pair<const AMethod*, size_t>, Taint> branch_taint_;
  AnalysisResult result_;
  bool changed_ = false;
  AMethod* current_ = nullptr;  // method being analyzed (for depth tracking)
};

void Engine::build_method_table() {
  for (const dex::ClassDef& cls : file_.classes) {
    const std::string& desc = file_.type_descriptor(cls.type_idx);
    if (cls.super_type_idx != dex::kNoIndex) {
      super_of_[desc] = file_.type_descriptor(cls.super_type_idx);
    }
    auto add = [&](const dex::MethodDef& def) {
      AMethod m;
      m.def = &def;
      m.class_descriptor = desc;
      m.name = file_.method_name(def.method_ref);
      m.shorty = file_.proto_shorty(file_.methods[def.method_ref].proto);
      m.is_static = (def.access_flags & dex::kAccStatic) != 0;
      size_t params =
          file_.protos[file_.methods[def.method_ref].proto].param_types.size();
      m.num_args = params + (m.is_static ? 0 : 1);
      methods_.push_back(std::move(m));
      by_class_[desc].push_back(&methods_.back());
    };
    for (const dex::MethodDef& def : cls.direct_methods) add(def);
    for (const dex::MethodDef& def : cls.virtual_methods) add(def);
  }
}

bool Engine::is_subclass(const std::string& sub, const std::string& super) const {
  std::string cur = sub;
  for (int i = 0; i < 64; ++i) {
    if (cur == super) return true;
    auto it = super_of_.find(cur);
    if (it == super_of_.end()) return false;
    cur = it->second;
  }
  return false;
}

void Engine::compute_liveness() {
  // Live: activity components, instantiated classes, forName-able strings.
  std::set<std::string> instantiated;
  std::set<std::string> named;
  for (const dex::ClassDef& cls : file_.classes) {
    for (const auto* mv : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& def : *mv) {
        if (!def.code) continue;
        std::span<const uint16_t> insns(def.code->insns);
        size_t pc = 0;
        while (pc < insns.size()) {
          Insn insn = bc::decode_at(insns, pc);
          if (insn.op == Op::kNewInstance) {
            instantiated.insert(file_.type_descriptor(insn.idx));
          } else if (insn.op == Op::kConstString) {
            const std::string& s = file_.string_at(insn.idx);
            if (!s.empty() && s.front() == 'L' && s.back() == ';') named.insert(s);
          }
          pc += insn.width;
        }
      }
    }
  }
  for (const dex::ClassDef& cls : file_.classes) {
    const std::string& desc = file_.type_descriptor(cls.type_idx);
    bool activity = false;
    std::string cur = desc;
    for (int i = 0; i < 64; ++i) {
      auto it = super_of_.find(cur);
      std::string super = it != super_of_.end() ? it->second : "";
      if (super.empty()) break;
      if (super == "Landroid/app/Activity;") activity = true;
      cur = super;
    }
    if (activity || instantiated.contains(desc) || named.contains(desc) ||
        desc == "Ldexlego/Modification;") {
      live_classes_.insert(desc);
    }
  }
  for (AMethod& m : methods_) {
    if (live_classes_.contains(m.class_descriptor)) {
      m.analyzed = m.def->code.has_value();
    } else if (cfg_.orphan_callbacks && m.name.rfind("on", 0) == 0) {
      // FlowDroid-style lifecycle over-approximation: callbacks of classes
      // never instantiated are still treated as potentially invocable.
      m.analyzed = m.def->code.has_value();
    }
  }
}

AMethod* Engine::find_method(const std::string& cls, const std::string& name,
                             const std::string& shorty) {
  std::string cur = cls;
  for (int i = 0; i < 64; ++i) {
    auto it = by_class_.find(cur);
    if (it != by_class_.end()) {
      for (AMethod* m : it->second) {
        if (m->name == name && (shorty.empty() || m->shorty == shorty)) return m;
      }
      // Name-only fallback mirrors the runtime's lenient dispatch.
      for (AMethod* m : it->second) {
        if (m->name == name) return m;
      }
    }
    auto sit = super_of_.find(cur);
    if (sit == super_of_.end()) return nullptr;
    cur = sit->second;
  }
  return nullptr;
}

std::vector<AMethod*> Engine::resolve_targets(const std::string& cls,
                                              const std::string& name,
                                              const std::string& shorty) {
  std::vector<AMethod*> targets;
  if (AMethod* m = find_method(cls, name, shorty)) targets.push_back(m);
  // CHA: overriding definitions in subclasses.
  for (auto& [desc, methods] : by_class_) {
    if (desc == cls || !is_subclass(desc, cls)) continue;
    for (AMethod* m : methods) {
      if (m->name == name && m->shorty == shorty &&
          std::find(targets.begin(), targets.end(), m) == targets.end()) {
        targets.push_back(m);
      }
    }
  }
  return targets;
}

void Engine::record_sink(AMethod& method, const std::string& sink, Taint word) {
  Taint src = source_bits(word);
  for (uint32_t bit = 0; bit < 32; ++bit) {
    if (src & (1u << bit)) {
      Flow flow{source_name_for_bit(1u << bit), sink,
                method.class_descriptor + "->" + method.name};
      if (result_.flows.insert(flow).second) changed_ = true;
    }
  }
  if (token_bits(word) != 0) {
    changed_ |= method.summary.merge_sink(sink, token_bits(word));
  }
}

void Engine::write_cell(AMethod& method, State& state, const std::string& key,
                        Taint word) {
  if (cfg_.flow_sensitive_fields) {
    state.field_override[key] = word;  // strong update
  }
  Taint src = source_bits(word);
  if (src != 0 && !cfg_.flow_sensitive_fields) {
    Taint& cell = global_cells_[key];
    if ((cell | src) != cell) {
      cell |= src;
      changed_ = true;
    }
  }
  if (token_bits(word) != 0) {
    changed_ |= method.summary.merge_field(key, token_bits(word));
  }
}

Taint Engine::read_cell(const State& state, const std::string& key) const {
  auto it = state.field_override.find(key);
  Taint local = it != state.field_override.end() ? it->second : 0;
  auto git = global_cells_.find(key);
  Taint global =
      (it != state.field_override.end() && cfg_.flow_sensitive_fields)
          ? 0  // strong update shadows the global cell on this path
          : (git != global_cells_.end() ? git->second : 0);
  return local | global;
}

AbsValue Engine::apply_summary(AMethod& caller, AMethod& callee,
                               const std::vector<AbsValue>& args) {
  AbsValue out;
  // Reachability: a callee of an analyzed method joins the analyzed set
  // (covers classes only reachable through resolved reflection or code
  // revealed by DexLego — the initial set is just components + callbacks).
  if (!callee.analyzed && callee.def->code.has_value()) {
    callee.analyzed = true;
    changed_ = true;
  }
  if (callee.summary.depth >= cfg_.max_summary_depth) {
    return out;  // DroidSafe-style call-chain cut: no propagation
  }
  auto resolve = [&](Taint word) {
    Taint resolved = source_bits(word);
    for (size_t i = 0; i < args.size() && i < kMaxArgs; ++i) {
      if (word & arg_token(i)) resolved |= args[i].taint;
    }
    return resolved;
  };
  out.taint = resolve(callee.summary.ret);
  for (const auto& [sink, word] : callee.summary.sinks) {
    record_sink(caller, sink, resolve(word));
  }
  for (const auto& [key, word] : callee.summary.field_writes) {
    Taint resolved = resolve(word);
    Taint src = source_bits(resolved);
    if (src != 0) {
      Taint& cell = global_cells_[key];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(resolved) != 0) {
      changed_ |= caller.summary.merge_field(key, token_bits(resolved));
    }
  }
  int depth = callee.summary.depth + 1;
  if (depth > caller.summary.depth) {
    caller.summary.depth = depth;
    changed_ = true;
  }
  return out;
}

AbsValue Engine::framework_call(AMethod& caller, const std::string& cls,
                                const std::string& name,
                                const std::vector<AbsValue>& args) {
  AbsValue out;
  // Sources and sinks from the shared registry.
  if (const rt::SourceSpec* src = rt::find_source(cls, name)) {
    out.taint = src->taint;
    return out;
  }
  if (const rt::SinkSpec* sink = rt::find_sink(cls, name)) {
    Taint word = 0;
    for (const AbsValue& a : args) word |= a.taint;
    record_sink(caller, sink->sink_name, word);
    return out;
  }

  // Reflection.
  if (cls == "Ljava/lang/Class;" && name == "forName") {
    if (!args.empty() && args[0].str_const) out.reflect_class = *args[0].str_const;
    return out;
  }
  if (cls == "Ljava/lang/Class;" && name == "getMethod") {
    if (args.size() > 1 && !args[0].reflect_class.empty() && args[1].str_const) {
      out.reflect_method = args[0].reflect_class + "|" + *args[1].str_const;
    }
    return out;
  }
  if (cls == "Ljava/lang/reflect/Method;" && name == "invoke") {
    if (!args.empty() && !args[0].reflect_method.empty()) {
      auto bar = args[0].reflect_method.find('|');
      std::string tcls = args[0].reflect_method.substr(0, bar);
      std::string tname = args[0].reflect_method.substr(bar + 1);
      if (AMethod* target = find_method(tcls, tname, "")) {
        std::vector<AbsValue> call_args;
        size_t skip = target->is_static ? 2 : 1;
        for (size_t i = skip; i < args.size(); ++i) call_args.push_back(args[i]);
        if (!target->is_static && args.size() > 1) {
          call_args.insert(call_args.begin(), args[1]);
        }
        return apply_summary(caller, *target, call_args);
      }
    }
    // Unresolved reflection: conservative no-flow (this is precisely the gap
    // DexLego's direct-call replacement closes).
    return out;
  }
  if (cls == "Ljava/lang/Class;" && name == "newInstance") {
    if (!args.empty() && !args[0].reflect_class.empty()) {
      out.known_class = args[0].reflect_class;
      if (AMethod* ctor = find_method(args[0].reflect_class, "<init>", "()V")) {
        apply_summary(caller, *ctor, {out});
      }
    }
    return out;
  }

  // Intent / ICC cells.
  if (cls == "Landroid/content/Intent;" && name == "putExtra") {
    std::string key = (args.size() > 1 && args[1].str_const)
                          ? "intent:" + *args[1].str_const
                          : "intent:*";
    Taint word = args.size() > 2 ? args[2].taint : 0;
    // Writes happen regardless of the tool's ICC support; only reads differ.
    Taint src = source_bits(word);
    if (src != 0) {
      Taint& cell = global_cells_[key];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(word) != 0) {
      changed_ |= caller.summary.merge_field(key, token_bits(word));
    }
    if (!args.empty()) out = args[0];  // returns the intent
    return out;
  }
  if (cls == "Landroid/content/Intent;" && name == "getStringExtra") {
    if (cfg_.icc) {
      std::string key = (args.size() > 1 && args[1].str_const)
                            ? "intent:" + *args[1].str_const
                            : "intent:*";
      auto it = global_cells_.find(key);
      if (it != global_cells_.end()) out.taint |= it->second;
      auto wild = global_cells_.find("intent:*");
      if (wild != global_cells_.end()) out.taint |= wild->second;
    }
    return out;
  }

  // View tags: a single coarse cell — the framework summary every tool uses
  // (keeps Button1/3-style flows detectable; causes coarse-tag FPs).
  if (cls == "Landroid/view/View;" && name == "setTag") {
    Taint word = args.size() > 1 ? args[1].taint : 0;
    Taint src = source_bits(word);
    if (src != 0) {
      Taint& cell = global_cells_["viewtag"];
      if ((cell | src) != cell) {
        cell |= src;
        changed_ = true;
      }
    }
    if (token_bits(word) != 0) {
      changed_ |= caller.summary.merge_field("viewtag", token_bits(word));
    }
    return out;
  }
  if (cls == "Landroid/view/View;" && name == "getTag") {
    auto it = global_cells_.find("viewtag");
    if (it != global_cells_.end()) out.taint = it->second;
    return out;
  }

  // External files: no tool models this channel (paper, PrivateDataLeak3).
  if (cls == "Ldexlego/api/Io;") return out;
  // Sanitizer clears taint.
  if (cls == "Ldexlego/api/Sanitizer;") return out;

  // Handler.post: edge into the runnable's run() when its class is known.
  if (cls == "Landroid/os/Handler;" && name == "post") {
    if (cfg_.handler_edges && args.size() > 1 && !args[1].known_class.empty()) {
      if (AMethod* run = find_method(args[1].known_class, "run", "()V")) {
        apply_summary(caller, *run, {args[1]});
      }
    }
    return out;
  }

  // Value-sensitive string building (HornDroid): evaluate xor decoding and
  // concatenation over known constants so runtime-built reflection strings
  // resolve statically.
  if (cfg_.value_sensitive) {
    if (cls == "Ldexlego/api/Crypto;" && name == "xorDecode" && args.size() > 1 &&
        args[0].str_const && args[1].int_const) {
      std::string s = *args[0].str_const;
      for (char& c : s) c = static_cast<char>(c ^ static_cast<char>(*args[1].int_const));
      out.str_const = s;
    } else if (cls == "Ljava/lang/String;" && name == "concat" &&
               args.size() > 1 && args[0].str_const && args[1].str_const) {
      out.str_const = *args[0].str_const + *args[1].str_const;
    } else if (cls == "Ljava/lang/StringBuilder;" && name == "append" &&
               args.size() > 1 && args[0].str_const && args[1].str_const) {
      out.str_const = *args[0].str_const + *args[1].str_const;
      out.is_builder = true;
    } else if (cls == "Ljava/lang/StringBuilder;" && name == "toString" &&
               !args.empty() && args[0].str_const) {
      out.str_const = args[0].str_const;
    }
  }

  // Default framework summary: taint-preserving (result = union of args).
  for (const AbsValue& a : args) out.taint |= a.taint;
  return out;
}

void Engine::handle_invoke(AMethod& method, const Insn& insn, State& state) {
  const dex::MethodRef& ref = file_.methods.at(insn.idx);
  std::string cls = file_.type_descriptor(ref.class_type);
  std::string name = file_.string_at(ref.name);
  std::string shorty = file_.proto_shorty(ref.proto);

  std::vector<AbsValue> args;
  for (uint8_t i = 0; i < insn.a; ++i) args.push_back(state.regs.at(insn.args[i]));

  // Prefer the receiver's known dynamic class for virtual dispatch.
  std::string dispatch_cls = cls;
  if (insn.op == Op::kInvokeVirtual && !args.empty() &&
      !args[0].known_class.empty()) {
    dispatch_cls = args[0].known_class;
  }

  std::vector<AMethod*> targets =
      insn.op == Op::kInvokeVirtual ? resolve_targets(dispatch_cls, name, shorty)
                                    : resolve_targets(cls, name, shorty);
  if (targets.empty()) {
    state.result = framework_call(method, cls, name, args);
    // new StringBuilder() constructor: start constant tracking.
    if (cfg_.value_sensitive && name == "<init>" &&
        cls == "Ljava/lang/StringBuilder;" && !args.empty()) {
      AbsValue builder = args[0];
      builder.str_const = args.size() > 1 && args[1].str_const
                              ? *args[1].str_const
                              : std::string();
      builder.is_builder = true;
      state.regs.at(insn.args[0]) = builder;
    }
    return;
  }
  AbsValue merged;
  for (AMethod* target : targets) {
    AbsValue r = apply_summary(method, *target, args);
    merged.taint |= r.taint;
  }
  state.result = merged;
}

void Engine::transfer(AMethod& method, const dex::CodeItem& code, size_t pc,
                      const Insn& insn, State& state) {
  (void)code;
  // Implicit-flow context for this pc (HornDroid preset only).
  Taint implicit = 0;
  if (cfg_.implicit_flows) {
    for (const auto& [key, taint] : branch_taint_) {
      if (key.first != &method) continue;
      // Region of a forward branch at b with target t: (b, t).
      size_t b = key.second;
      std::span<const uint16_t> insns(method.def->code->insns);
      Insn branch = bc::decode_at(insns, b);
      size_t t = b + static_cast<size_t>(branch.off);
      if (t > b && pc > b && pc < t) implicit |= taint;
    }
  }
  auto write_reg = [&](uint8_t r, AbsValue v) {
    v.taint |= implicit;
    state.regs.at(r) = std::move(v);
  };
  // Flow-sensitive field handling defers global-store publication to method
  // exits so intra-method strong updates can kill overwritten taint first.
  auto fold_exit = [&] {
    if (!cfg_.flow_sensitive_fields) return;
    for (const auto& [key, word] : state.field_override) {
      Taint src = source_bits(word);
      if (src != 0) {
        Taint& cell = global_cells_[key];
        if ((cell | src) != cell) {
          cell |= src;
          changed_ = true;
        }
      }
    }
  };

  switch (insn.op) {
    case Op::kReturnVoid:
    case Op::kThrow:
      fold_exit();
      break;
    case Op::kMove:
      write_reg(insn.a, state.regs.at(insn.b));
      break;
    case Op::kConst16:
    case Op::kConst32:
    case Op::kConstWide: {
      AbsValue v;
      v.int_const = insn.lit;
      write_reg(insn.a, v);
      break;
    }
    case Op::kConstString: {
      AbsValue v;
      v.str_const = file_.string_at(insn.idx);
      write_reg(insn.a, v);
      break;
    }
    case Op::kConstNull:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kMoveResult:
      write_reg(insn.a, state.result);
      break;
    case Op::kMoveException:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kReturn:
      changed_ |= method.summary.merge_ret(state.regs.at(insn.a).taint);
      fold_exit();
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kShr:
    case Op::kCmp: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint | state.regs.at(insn.c).taint;
      if (cfg_.value_sensitive && state.regs.at(insn.b).int_const &&
          state.regs.at(insn.c).int_const) {
        int64_t b = *state.regs.at(insn.b).int_const;
        int64_t c = *state.regs.at(insn.c).int_const;
        switch (insn.op) {
          case Op::kAdd: v.int_const = b + c; break;
          case Op::kSub: v.int_const = b - c; break;
          case Op::kMul: v.int_const = b * c; break;
          case Op::kXor: v.int_const = b ^ c; break;
          default: break;  // leave unknown (div by zero etc.)
        }
      }
      write_reg(insn.a, v);
      break;
    }
    case Op::kAddLit8:
    case Op::kMulLit8: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      if (cfg_.value_sensitive && state.regs.at(insn.b).int_const) {
        v.int_const = insn.op == Op::kAddLit8
                          ? *state.regs.at(insn.b).int_const + insn.lit
                          : *state.regs.at(insn.b).int_const * insn.lit;
      }
      write_reg(insn.a, v);
      break;
    }
    case Op::kNeg:
    case Op::kNot:
    case Op::kArrayLength: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      write_reg(insn.a, v);
      break;
    }
    case Op::kNewInstance: {
      AbsValue v;
      v.known_class = file_.type_descriptor(insn.idx);
      write_reg(insn.a, v);
      break;
    }
    case Op::kNewArray:
      write_reg(insn.a, AbsValue{});
      break;
    case Op::kAget: {
      // Coarse array abstraction: element reads carry the array's taint.
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint | state.regs.at(insn.c).taint;
      write_reg(insn.a, v);
      break;
    }
    case Op::kAput: {
      // Stores taint the whole array (register-level).
      AbsValue arr = state.regs.at(insn.b);
      arr.taint |= state.regs.at(insn.a).taint;
      state.regs.at(insn.b) = arr;
      break;
    }
    case Op::kIget: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint |
                read_cell(state, field_key(file_.type_descriptor(f.class_type),
                                           file_.string_at(f.name)));
      write_reg(insn.a, v);
      break;
    }
    case Op::kIput: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      write_cell(method, state,
                 field_key(file_.type_descriptor(f.class_type),
                           file_.string_at(f.name)),
                 state.regs.at(insn.a).taint | implicit);
      break;
    }
    case Op::kSget: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      AbsValue v;
      v.taint = read_cell(state, field_key(file_.type_descriptor(f.class_type),
                                           file_.string_at(f.name)));
      write_reg(insn.a, v);
      break;
    }
    case Op::kSput: {
      const dex::FieldRef& f = file_.fields.at(insn.idx);
      write_cell(method, state,
                 field_key(file_.type_descriptor(f.class_type),
                           file_.string_at(f.name)),
                 state.regs.at(insn.a).taint | implicit);
      break;
    }
    case Op::kInvokeVirtual:
    case Op::kInvokeDirect:
    case Op::kInvokeStatic:
      handle_invoke(method, insn, state);
      if (implicit != 0) state.result.taint |= implicit;
      break;
    case Op::kInstanceOf: {
      AbsValue v;
      v.taint = state.regs.at(insn.b).taint;
      write_reg(insn.a, v);
      break;
    }
    default:
      break;
  }
}

void Engine::analyze_method(AMethod& method) {
  const dex::CodeItem& code = *method.def->code;
  std::span<const uint16_t> insns(code.insns);
  current_ = &method;

  State entry;
  entry.regs.assign(code.registers_size, AbsValue{});
  size_t base = code.registers_size - code.ins_size;
  for (size_t i = 0; i < method.num_args && i < code.ins_size && i < kMaxArgs; ++i) {
    entry.regs[base + i].taint = arg_token(i);
  }

  std::map<size_t, State> states;
  states.emplace(0, entry);
  std::deque<size_t> worklist{0};
  std::set<size_t> seen;
  size_t iterations = 0;
  const size_t kMaxIterations = 20000;

  while (!worklist.empty() && ++iterations < kMaxIterations) {
    size_t pc = worklist.front();
    worklist.pop_front();
    State state = states.at(pc);
    Insn insn;
    try {
      insn = bc::decode_at(insns, pc);
    } catch (const support::ParseError&) {
      continue;
    }
    if (insn.op == Op::kPayload) continue;

    // Record conditional-branch condition taints for implicit flows, and
    // determine successors (value-sensitive pruning of constant branches).
    std::vector<size_t> succ;
    if (bc::is_conditional_branch(insn.op)) {
      Taint cond = state.regs.at(insn.a).taint;
      if (bc::is_two_reg_if(insn.op)) cond |= state.regs.at(insn.b).taint;
      if (cfg_.implicit_flows && cond != 0) {
        Taint& slot = branch_taint_[{&method, pc}];
        if ((slot | cond) != slot) {
          slot |= cond;
          changed_ = true;
        }
      }
      std::optional<bool> known;
      if (cfg_.value_sensitive) {
        const AbsValue& a = state.regs.at(insn.a);
        if (!bc::is_two_reg_if(insn.op) && a.int_const) {
          int64_t x = *a.int_const;
          switch (insn.op) {
            case Op::kIfEqz: known = (x == 0); break;
            case Op::kIfNez: known = (x != 0); break;
            case Op::kIfLtz: known = (x < 0); break;
            case Op::kIfGez: known = (x >= 0); break;
            case Op::kIfGtz: known = (x > 0); break;
            case Op::kIfLez: known = (x <= 0); break;
            default: break;
          }
        } else if (bc::is_two_reg_if(insn.op) && a.int_const &&
                   state.regs.at(insn.b).int_const) {
          int64_t x = *a.int_const, y = *state.regs.at(insn.b).int_const;
          switch (insn.op) {
            case Op::kIfEq: known = (x == y); break;
            case Op::kIfNe: known = (x != y); break;
            case Op::kIfLt: known = (x < y); break;
            case Op::kIfGe: known = (x >= y); break;
            case Op::kIfGt: known = (x > y); break;
            case Op::kIfLe: known = (x <= y); break;
            default: break;
          }
        }
      }
      if (known.has_value()) {
        succ.push_back(*known ? pc + static_cast<size_t>(insn.off)
                              : pc + insn.width);
      } else {
        succ.push_back(pc + insn.width);
        succ.push_back(pc + static_cast<size_t>(insn.off));
      }
      transfer(method, code, pc, insn, state);
    } else {
      transfer(method, code, pc, insn, state);
      try {
        succ = bc::successors_at(insns, pc);
      } catch (const support::ParseError&) {
        succ.clear();
      }
    }

    // Exception edges: any instruction inside a try range may reach the
    // handler (registers merged conservatively).
    for (const dex::TryItem& t : code.tries) {
      if (pc >= t.start_pc && pc < t.end_pc) succ.push_back(t.handler_pc);
    }

    for (size_t next : succ) {
      if (next >= insns.size()) continue;
      auto [it, inserted] = states.emplace(next, state);
      bool changed = inserted || it->second.merge(state);
      if (changed || !seen.contains(next)) {
        seen.insert(next);
        worklist.push_back(next);
      }
    }
  }
  current_ = nullptr;
}

AnalysisResult Engine::run() {
  build_method_table();
  compute_liveness();

  for (int round = 0; round < cfg_.max_rounds; ++round) {
    changed_ = false;
    for (AMethod& method : methods_) {
      if (method.analyzed) analyze_method(method);
    }
    if (!changed_) break;
  }
  return std::move(result_);
}

}  // namespace

AnalysisResult StaticAnalyzer::analyze(const dex::DexFile& file) {
  Engine engine(cfg_, file);
  return engine.run();
}

AnalysisResult StaticAnalyzer::analyze_apk(const dex::Apk& apk) {
  dex::DexFile file = dex::load_classes(apk);
  return analyze(file);
}

}  // namespace dexlego::analysis
