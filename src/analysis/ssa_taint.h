// Flow-sensitive taint engine over the SSA IR (src/ir/). Selected with
// ToolConfig::engine = TaintEngine::kSsa; shares the interprocedural core
// (taint_core.h) with the original per-pc bytecode engine, so summaries,
// framework models and precision knobs behave identically. The SSA engine
// computes sparse per-value facts with phi joins restricted to executable
// edges and prunes provably-constant branches unconditionally — the
// DeadBranch false positives disappear under every preset, not just the
// value-sensitive one.
#pragma once

#include "src/analysis/report.h"
#include "src/analysis/tool_config.h"
#include "src/dex/dex.h"

namespace dexlego::analysis {

AnalysisResult analyze_ssa(const ToolConfig& cfg, const dex::DexFile& file);

}  // namespace dexlego::analysis
