// Shared machinery behind the two static taint engines. The interprocedural
// skeleton — method table, liveness roots, CHA dispatch, summaries, framework
// models, field cells, implicit-flow regions — is engine-independent; only
// the intra-method dataflow differs:
//
//   BytecodeEngine (static_taint.cpp) — per-pc worklist over raw LDEX, the
//     original engine and the default (`ToolConfig::engine = kBytecode`).
//   SsaEngine (ssa_taint.cpp)         — per-value facts over the SSA IR
//     (src/ir/) with sparse phi joins and always-on constant-branch pruning.
//
// Both engines must agree on every DroidBench detection; the SSA engine is
// additionally allowed to *drop* false positives that only exist because the
// bytecode engine walks provably dead branches (tests/ir_test.cpp pins the
// exact contract as a per-sample precision table).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/report.h"
#include "src/analysis/tool_config.h"
#include "src/bytecode/insn.h"
#include "src/dex/dex.h"

namespace dexlego::analysis {

// Taint words: low 32 bits = source bits, bits 32+ = argument tokens.
using Taint = uint64_t;
inline constexpr Taint kSourceMask = 0xffffffffull;
inline constexpr int kMaxArgs = 8;
inline Taint arg_token(size_t i) { return 1ull << (32 + i); }
inline Taint source_bits(Taint t) { return t & kSourceMask; }
inline Taint token_bits(Taint t) { return t & ~kSourceMask; }

std::string source_name_for_bit(uint32_t bit);

// Per-method summary accumulated across fixpoint rounds.
struct Summary {
  Taint ret = 0;
  std::vector<std::pair<std::string, Taint>> sinks;        // sink name, word
  std::map<std::string, Taint> field_writes;               // cell key -> word
  int depth = 1;

  bool merge_ret(Taint t) {
    Taint merged = ret | t;
    bool changed = merged != ret;
    ret = merged;
    return changed;
  }
  bool merge_sink(const std::string& sink, Taint t) {
    for (auto& [name, word] : sinks) {
      if (name == sink) {
        Taint merged = word | t;
        bool changed = merged != word;
        word = merged;
        return changed;
      }
    }
    sinks.emplace_back(sink, t);
    return true;
  }
  bool merge_field(const std::string& key, Taint t) {
    Taint& slot = field_writes[key];
    Taint merged = slot | t;
    bool changed = merged != slot;
    slot = merged;
    return changed;
  }
};

struct AMethod {
  const dex::MethodDef* def = nullptr;
  std::string class_descriptor;
  std::string name;
  std::string shorty;
  size_t num_args = 0;  // including `this` for instance methods
  bool is_static = false;
  bool analyzed = false;
  Summary summary;
};

// Abstract value: taint word plus optional constant views used by reflection
// resolution and constant-branch pruning.
struct AbsValue {
  Taint taint = 0;
  std::optional<int64_t> int_const;
  std::optional<std::string> str_const;
  std::string reflect_class;            // set on Class.forName results
  std::string reflect_method;           // "class|name" on getMethod results
  std::string known_class;              // from new-instance (CHA aid)
  bool is_builder = false;              // StringBuilder tracking (value-sens.)

  bool operator==(const AbsValue&) const = default;

  void merge(const AbsValue& other) {
    taint |= other.taint;
    if (int_const != other.int_const) int_const.reset();
    if (str_const != other.str_const) str_const.reset();
    if (reflect_class != other.reflect_class) reflect_class.clear();
    if (reflect_method != other.reflect_method) reflect_method.clear();
    if (known_class != other.known_class) known_class.clear();
    is_builder = is_builder && other.is_builder;
  }
};

// Field-override map: intra-method strong updates (flow-sensitive heap).
using FieldOverrides = std::map<std::string, Taint>;

class TaintCore {
 public:
  TaintCore(const ToolConfig& cfg, const dex::DexFile& file)
      : cfg_(cfg), file_(file) {}
  virtual ~TaintCore() = default;

  // Global fixpoint: rounds over all analyzed methods until summaries, cells
  // and flows stabilize. Calls the engine's analyze_method per method.
  AnalysisResult run();

 protected:
  // Engine hook: intra-method dataflow for one method with code.
  virtual void analyze_method(AMethod& method) = 0;

  // --- Interprocedural skeleton (shared verbatim by both engines) ---
  void build_method_table();
  void compute_liveness();
  AMethod* find_method(const std::string& cls, const std::string& name,
                       const std::string& shorty);
  std::vector<AMethod*> resolve_targets(const std::string& cls,
                                        const std::string& name,
                                        const std::string& shorty);
  bool is_subclass(const std::string& sub, const std::string& super) const;

  // Call-site transfer: resolves app targets (CHA, receiver type narrowing),
  // falls back to the framework model, applies summaries. If the call is a
  // value-sensitive StringBuilder <init>, `update_receiver` asks the engine
  // to rebind the receiver to `receiver`.
  struct InvokeResult {
    AbsValue result;
    bool update_receiver = false;
    AbsValue receiver;
  };
  InvokeResult invoke_transfer(AMethod& caller, bc::Op op, uint32_t method_idx,
                               const std::vector<AbsValue>& args);

  AbsValue apply_summary(AMethod& caller, AMethod& callee,
                         const std::vector<AbsValue>& args);
  AbsValue framework_call(AMethod& caller, const std::string& cls,
                          const std::string& name,
                          const std::vector<AbsValue>& args);
  void record_sink(AMethod& method, const std::string& sink, Taint word);
  void write_cell(AMethod& method, FieldOverrides& overrides,
                  const std::string& key, Taint word);
  Taint read_cell(const FieldOverrides& overrides,
                  const std::string& key) const;
  // Publishes override cells into the global store (method-exit fold).
  void publish_overrides(const FieldOverrides& overrides);
  std::string field_key(const std::string& cls, const std::string& name) const {
    return cfg_.field_collision_heap ? name : cls + "." + name;
  }

  // Implicit-flow context at `pc`: union of recorded condition taints whose
  // forward-branch region (b, t) contains pc (HornDroid preset only).
  Taint implicit_context(const AMethod& method, size_t pc) const;
  // Records a conditional branch's condition taint for implicit flows.
  void record_branch_taint(const AMethod& method, size_t pc, Taint cond);

  const ToolConfig& cfg_;
  const dex::DexFile& file_;
  std::deque<AMethod> methods_;
  std::map<std::string, std::vector<AMethod*>> by_class_;
  std::map<std::string, std::string> super_of_;
  std::set<std::string> live_classes_;
  std::map<std::string, Taint> global_cells_;  // fields + intent extras + tags
  // Implicit-flow support: conditional branch pc (per method) -> cond taint.
  std::map<std::pair<const AMethod*, size_t>, Taint> branch_taint_;
  AnalysisResult result_;
  bool changed_ = false;
};

}  // namespace dexlego::analysis
