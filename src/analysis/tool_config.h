// Capability presets for the static taint engine. One engine, three
// configurations — each knob encodes a *published* capability difference
// between FlowDroid, DroidSafe and HornDroid that the paper's evaluation
// depends on (Table II/III/IV and Fig. 5):
//
//   icc                   — inter-component taint through Intent extras
//                           (FlowDroid without IccTA misses these).
//   implicit_flows        — control-dependence tainting (HornDroid only).
//   value_sensitive       — constant propagation: prunes provably dead
//                           branches and resolves reflection strings built
//                           at runtime via concat/xor (HornDroid's
//                           value-sensitive analysis).
//   handler_edges         — callback edges through Handler.post runnables
//                           (EdgeMiner-style; DroidSafe's model lacks them).
//   orphan_callbacks      — analyze callback methods of classes never
//                           instantiated (FlowDroid's lifecycle
//                           over-approximation; sources false positives).
//   field_collision_heap  — heap keyed by field *name* only (DroidSafe's
//                           object-insensitive model; alias FPs).
//   flow_sensitive_fields — strong updates on field stores (DroidSafe is
//                           flow-insensitive; overwrite FPs).
//   max_summary_depth     — call-chain depth cut-off for summary
//                           propagation (DroidSafe's scalability cut).
#pragma once

#include <cstdint>
#include <string>

namespace dexlego::analysis {

// Intra-method dataflow backend. Both engines share the interprocedural
// core (src/analysis/taint_core.h); kSsa analyzes the typed SSA IR
// (src/ir/) with sparse per-value facts and always-on constant-branch
// pruning, so it never walks provably dead branches — strictly fewer false
// positives than kBytecode on the DeadBranch samples, identical recall
// everywhere (pinned by tests/ir_test.cpp's precision table).
enum class TaintEngine : uint8_t {
  kBytecode,  // original per-pc worklist over raw LDEX (default)
  kSsa,       // flow-sensitive engine over the SSA IR
};

struct ToolConfig {
  std::string name;
  TaintEngine engine = TaintEngine::kBytecode;
  bool icc = false;
  bool implicit_flows = false;
  bool value_sensitive = false;
  bool handler_edges = true;
  bool orphan_callbacks = false;
  bool field_collision_heap = false;
  bool flow_sensitive_fields = true;
  int max_summary_depth = 64;  // effectively unbounded
  int max_rounds = 30;         // global fixpoint bound
};

inline ToolConfig flowdroid_config() {
  ToolConfig cfg;
  cfg.name = "FlowDroid";
  cfg.orphan_callbacks = true;
  return cfg;
}

inline ToolConfig droidsafe_config() {
  ToolConfig cfg;
  cfg.name = "DroidSafe";
  cfg.icc = true;
  cfg.handler_edges = false;
  cfg.field_collision_heap = true;
  cfg.flow_sensitive_fields = false;
  cfg.max_summary_depth = 5;
  return cfg;
}

inline ToolConfig horndroid_config() {
  ToolConfig cfg;
  cfg.name = "HornDroid";
  cfg.icc = true;
  cfg.implicit_flows = true;
  cfg.value_sensitive = true;
  return cfg;
}

}  // namespace dexlego::analysis
