// Synthetic application generator — stands in for the app populations the
// paper draws from ecosystems we cannot access (AOSP app sources at specific
// sizes for Table I, packed Google-Play/360/Wandoujia apps for Table V,
// F-Droid apps for Tables VI/VII, CF-Bench and popular-app launches for
// Fig. 6 / Table VIII). Generation is seed-deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/dex/archive.h"
#include "src/runtime/runtime.h"
#include "src/support/rng.h"

namespace dexlego::suite {

struct AppSpec {
  std::string name;            // "Calculator", "com.moji.mjweather", ...
  std::string package;
  uint64_t seed = 1;
  size_t target_units = 2000;  // approximate total code units

  // Every generated branch executes both sides in one run (2-iteration loops
  // with alternating conditions) so a single instrumented run covers every
  // instruction — required for the Table I full-inclusion check.
  bool full_coverage_style = false;

  // Table V: number of leak flows to hide (device id always included;
  // location/ssid mixed in).
  int leak_flows = 0;

  // Table VI/VII: fraction of code behind semantic input guards (reachable
  // by force execution, practically unreachable by random fuzzing) and
  // fraction in never-called methods (unreachable by anything).
  double guarded_fraction = 0.0;
  double dead_fraction = 0.0;

  // Embedded-library model (the large_corpus pipeline scenario): this
  // fraction of target_units is emitted as "library" classes whose method
  // bodies are generated from the listed seeds instead of `seed`, split
  // evenly across them. Two apps naming the same library seed get
  // byte-identical library method bodies (class names differ per app, but
  // bodies carry only symbolic refs), so fleet-level dedup sees the
  // market-style reuse real corpora exhibit. Empty list or 0 fraction
  // disables the partition.
  std::vector<uint64_t> library_seeds{};
  double library_fraction = 0.0;

  // Table VIII: thousands of framework render-loop iterations executed in
  // onCreate — models the native init/display share of an app launch, which
  // collection does not slow down.
  int render_frames_k = 0;

  // --- hostile-app knobs (the fuzz behavioral family, docs/FUZZING.md) ---
  // Opaque-true guards stacked in front of the entry calls: the CFG deepens
  // but runtime behaviour is unchanged (the skip side is never taken).
  int guard_stack = 0;
  // Depth of an xor-obfuscated reflective dispatch chain invoked from
  // onCreate (Class.forName / getMethod / Method.invoke with encoded names).
  int reflection_maze = 0;
  int reflection_key = 7;  // xor key for the encoded maze names
  // Adds a tamper native that swaps a benign call for a covert one between
  // loop iterations (the paper's Code 1 shape). The native resolves method
  // indices against the executing image, and the returned
  // GeneratedApp::configure_runtime must be installed on every runtime.
  bool self_modifying = false;

  // Alternate container: 0 ships the usual classes.ldex; >= 1 ships the app
  // as a real Android DEX container instead (classes.dex, plus classes2.dex
  // ... when > 1 — the multidex shape). See src/dex/real/real_dex.h.
  size_t real_dex_parts = 0;
};

struct GeneratedApp {
  dex::Apk apk;
  size_t code_units = 0;  // the "# of Instructions" metric
  // Registers generated natives (self-modification). Null unless the spec
  // asked for features that need one.
  std::function<void(rt::Runtime&)> configure_runtime;
};

GeneratedApp generate_app(const AppSpec& spec);

// --- fixed populations used by the benches ---

// Table I: HTMLViewer / Calculator / Calendar / Contacts at the paper's
// instruction counts (217 / 2,507 / 78,598 / 103,602).
std::vector<AppSpec> table1_apps();

// Table V: the nine market apps with their paper leak counts
// (4,5,3,4,5,2,3,5,14) plus package/version/set metadata for the table.
struct MarketAppInfo {
  AppSpec spec;
  std::string version;
  std::string sample_set;  // "A" Google Play, "B" 360, "C" Wandoujia
  std::string installs;
};
std::vector<MarketAppInfo> table5_apps();

// Table VI/VII: five F-Droid apps at the paper's instruction counts.
std::vector<AppSpec> fdroid_apps();

// Fig. 6: CF-Bench analog workloads — a bytecode-heavy app ("Java score")
// and a native-heavy app ("native score"). Registers the native compute
// kernel on the runtime.
GeneratedApp cfbench_java_app();
GeneratedApp cfbench_native_app();
void register_cfbench_natives(rt::Runtime& rt);

// Table VIII: three launch-time apps (Snapchat/Instagram/WhatsApp analogs)
// with progressively heavier onCreate work.
std::vector<AppSpec> launch_apps();

}  // namespace dexlego::suite
