#include "src/benchsuite/droidbench.h"

#include "src/bytecode/assembler.h"
#include "src/bytecode/insn.h"
#include "src/dex/builder.h"
#include "src/dex/io.h"

namespace dexlego::suite {

using bc::MethodAssembler;
using bc::Op;

namespace {

enum class Src { kDevice, kLocation, kSsid, kSecret, kContacts };
enum class Snk { kSms, kLog, kNet };

struct SrcSpec {
  const char* cls;
  const char* method;
};
SrcSpec src_spec(Src s) {
  switch (s) {
    case Src::kDevice: return {"Landroid/telephony/TelephonyManager;", "getDeviceId"};
    case Src::kLocation:
      return {"Landroid/location/LocationManager;", "getLastKnownLocation"};
    case Src::kSsid: return {"Landroid/net/wifi/WifiInfo;", "getSSID"};
    case Src::kSecret: return {"Ldexlego/api/Source;", "secret"};
    case Src::kContacts: return {"Landroid/provider/ContactsContract;", "query"};
  }
  return {"", ""};
}

constexpr const char* kStr = "Ljava/lang/String;";
constexpr const char* kObj = "Ljava/lang/Object;";

uint16_t m(dex::DexBuilder& b, const std::string& cls, const std::string& name,
           const std::string& ret, const std::vector<std::string>& params) {
  return static_cast<uint16_t>(b.intern_method(cls, name, ret, params));
}

void emit_source(dex::DexBuilder& b, MethodAssembler& as, Src s, uint8_t dst) {
  SrcSpec spec = src_spec(s);
  as.invoke(Op::kInvokeStatic, m(b, spec.cls, spec.method, kStr, {}), {});
  as.move_result(dst);
}

// Emits a sink call consuming register `val`; `scratch` may be clobbered.
void emit_sink(dex::DexBuilder& b, MethodAssembler& as, Snk k, uint8_t val,
               uint8_t scratch) {
  switch (k) {
    case Snk::kLog:
      as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}),
                {val});
      break;
    case Snk::kNet:
      as.invoke(Op::kInvokeStatic,
                m(b, "Ldexlego/api/Network;", "send", "V", {kStr}), {val});
      break;
    case Snk::kSms:
      as.invoke(Op::kInvokeStatic,
                m(b, "Landroid/telephony/SmsManager;", "getDefault",
                  "Landroid/telephony/SmsManager;", {}),
                {});
      as.move_result(scratch);
      as.invoke(Op::kInvokeVirtual,
                m(b, "Landroid/telephony/SmsManager;", "sendTextMessage", "V",
                  {kStr}),
                {scratch, val});
      break;
  }
}

std::string main_class(const std::string& name) { return "Ldb/" + name + "/Main;"; }

Sample finish_sample(const std::string& name, const std::string& category,
                     bool leaky, int flows, dex::DexBuilder builder,
                     std::function<void(rt::Runtime&)> configure = {}) {
  Sample sample;
  sample.name = name;
  sample.category = category;
  sample.leaky = leaky;
  sample.expected_flows = flows;
  sample.configure_runtime = std::move(configure);
  dex::Manifest manifest;
  manifest.package = "db." + name;
  manifest.entry_class = main_class(name);
  manifest.version = "1.0";
  manifest.permissions = {"READ_PHONE_STATE", "SEND_SMS", "INTERNET"};
  sample.apk.set_manifest(manifest);
  sample.apk.set_classes(dex::write_dex(std::move(builder).build()));
  return sample;
}

// ---------------------------------------------------------------------------
// Direct (easy) archetypes — every static tool detects these.
// ---------------------------------------------------------------------------

Sample direct_straight(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  emit_source(b, as, s, 0);
  emit_sink(b, as, k, 0, 1);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/straight", true, 1, std::move(b));
}

Sample direct_helper(const std::string& name, Src s, Snk k, int chain) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  b.start_class(cls, "Landroid/app/Activity;");
  // h<chain> sinks; h<i> forwards to h<i+1>.
  for (int i = chain; i >= 1; --i) {
    MethodAssembler as(3, 2);  // this v1, param v2
    if (i == chain) {
      emit_sink(b, as, k, 2, 0);
    } else {
      as.invoke(Op::kInvokeVirtual,
                m(b, cls, "h" + std::to_string(i + 1), "V", {kStr}), {1, 2});
    }
    as.return_void();
    b.add_virtual_method("h" + std::to_string(i), "V", {kStr}, as.finish());
  }
  MethodAssembler as(3, 1);  // this v2
  emit_source(b, as, s, 0);
  as.invoke(Op::kInvokeVirtual, m(b, cls, "h1", "V", {kStr}), {2, 0});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/helper" + std::to_string(chain), true, 1,
                       std::move(b));
}

Sample direct_loop_concat(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint32_t bang = b.intern_string("!");
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(5, 1);  // this v4
  auto loop = as.make_label();
  auto done = as.make_label();
  emit_source(b, as, s, 0);
  as.const16(1, 0);
  as.const16(2, 3);
  as.bind(loop);
  as.if_test(Op::kIfGe, 1, 2, done);
  as.const_string(3, static_cast<uint16_t>(bang));
  as.invoke(Op::kInvokeVirtual, m(b, kStr, "concat", kStr, {kStr}), {0, 3});
  as.move_result(0);
  as.add_lit8(1, 1, 1);
  as.goto_(loop);
  as.bind(done);
  emit_sink(b, as, k, 0, 1);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/loop", true, 1, std::move(b));
}

Sample direct_branch(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint32_t ok = b.intern_string("all good");
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  auto leak = as.make_label();
  auto end = as.make_label();
  emit_source(b, as, s, 0);
  as.invoke(Op::kInvokeVirtual, m(b, kStr, "length", "I", {}), {0});
  as.move_result(1);
  as.if_testz(Op::kIfGtz, 1, leak);
  as.const_string(2, static_cast<uint16_t>(ok));
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "d", "V", {kStr}), {2});
  as.goto_(end);
  as.bind(leak);
  emit_sink(b, as, k, 0, 2);
  as.bind(end);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/branch", true, 1, std::move(b));
}

Sample direct_field(const std::string& name, Src s, Snk k, bool lifecycle) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  b.start_class(cls, "Landroid/app/Activity;");
  b.add_instance_field("data", kStr);
  uint16_t f = static_cast<uint16_t>(b.intern_field(cls, kStr, "data"));
  {
    MethodAssembler as(3, 1);  // this v2
    emit_source(b, as, s, 0);
    as.iput(0, 2, f);
    if (!lifecycle) {
      as.iget(1, 2, f);
      emit_sink(b, as, k, 1, 0);
    }
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  if (lifecycle) {
    MethodAssembler as(3, 1);  // this v2
    as.iget(0, 2, f);
    emit_sink(b, as, k, 0, 1);
    as.return_void();
    b.add_virtual_method("onPause", "V", {}, as.finish());
  }
  return finish_sample(name, lifecycle ? "direct/lifecycle" : "direct/field",
                       true, 1, std::move(b));
}

// Button archetype: tainted data marshalled through a View tag, leaked in the
// onClick callback (Table IV Button1/Button3 — dynamic tools lose the taint
// at the framework boundary, static framework summaries keep it).
Sample direct_button(const std::string& name, Src s, const std::vector<Snk>& sinks) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  uint16_t find_view = m(b, "Landroid/app/Activity;", "findViewById",
                         "Landroid/view/View;", {"I"});
  uint16_t set_tag = m(b, "Landroid/view/View;", "setTag", "V", {kObj});
  uint16_t get_tag = m(b, "Landroid/view/View;", "getTag", kObj, {});
  uint16_t set_click =
      m(b, "Landroid/view/View;", "setOnClickListener", "V", {kObj});
  b.start_class(cls, "Landroid/app/Activity;");
  {
    MethodAssembler as(4, 1);  // this v3
    as.const16(0, 7);
    as.invoke(Op::kInvokeVirtual, find_view, {3, 0});
    as.move_result(0);
    emit_source(b, as, s, 1);
    as.invoke(Op::kInvokeVirtual, set_tag, {0, 1});
    as.invoke(Op::kInvokeVirtual, set_click, {0, 3});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  {
    MethodAssembler as(4, 2);  // this v2, view v3
    as.invoke(Op::kInvokeVirtual, get_tag, {3});
    as.move_result(0);
    for (Snk k : sinks) emit_sink(b, as, k, 0, 1);
    as.return_void();
    b.add_virtual_method("onClick", "V", {"Landroid/view/View;"}, as.finish());
  }
  return finish_sample(name, "direct/button", true,
                       static_cast<int>(sinks.size()), std::move(b));
}

Sample direct_trycatch(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  auto handler = as.make_label();
  emit_source(b, as, s, 0);
  as.begin_try();
  as.const16(1, 1);
  as.const16(2, 0);
  as.binop(Op::kDiv, 1, 1, 2);
  as.end_try(handler);
  as.return_void();
  as.bind(handler);
  as.move_exception(1);
  emit_sink(b, as, k, 0, 1);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/trycatch", true, 1, std::move(b));
}

Sample direct_switch(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  auto c0 = as.make_label();
  auto c1 = as.make_label();
  auto end = as.make_label();
  emit_source(b, as, s, 0);
  as.invoke(Op::kInvokeVirtual, m(b, kStr, "length", "I", {}), {0});
  as.move_result(1);
  as.const16(2, 2);
  as.binop(Op::kRem, 1, 1, 2);
  as.packed_switch(1, 0, {c0, c1});
  as.goto_(end);
  as.bind(c0);
  emit_sink(b, as, k, 0, 2);
  as.goto_(end);
  as.bind(c1);
  emit_sink(b, as, k, 0, 2);
  as.bind(end);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/switch", true, 1, std::move(b));
}

Sample direct_builder(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint32_t prefix = b.intern_string("payload=");
  uint16_t sb_t = static_cast<uint16_t>(b.intern_type("Ljava/lang/StringBuilder;"));
  uint16_t sb_init =
      m(b, "Ljava/lang/StringBuilder;", "<init>", "V", {kStr});
  uint16_t sb_append = m(b, "Ljava/lang/StringBuilder;", "append",
                         "Ljava/lang/StringBuilder;", {kObj});
  uint16_t sb_tostr = m(b, "Ljava/lang/StringBuilder;", "toString", kStr, {});
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  as.new_instance(0, sb_t);
  as.const_string(1, static_cast<uint16_t>(prefix));
  as.invoke(Op::kInvokeDirect, sb_init, {0, 1});
  emit_source(b, as, s, 1);
  as.invoke(Op::kInvokeVirtual, sb_append, {0, 1});
  as.move_result(0);
  as.invoke(Op::kInvokeVirtual, sb_tostr, {0});
  as.move_result(1);
  emit_sink(b, as, k, 1, 2);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/stringbuilder", true, 1, std::move(b));
}

Sample direct_array(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint16_t arr_t = static_cast<uint16_t>(b.intern_type("[Ljava/lang/String;"));
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(5, 1);
  as.const16(0, 2);
  as.new_array(1, 0, arr_t);
  emit_source(b, as, s, 2);
  as.const16(3, 0);
  as.aput(2, 1, 3);
  as.aget(0, 1, 3);
  emit_sink(b, as, k, 0, 2);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/array", true, 1, std::move(b));
}

Sample direct_static_field(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  std::string holder = "Ldb/" + name + "/Holder;";
  std::string cls = main_class(name);
  // Holder first so new-instance/liveness sees it (static-only use is fine).
  b.start_class(holder);
  b.add_static_field("S", kStr);
  uint16_t f = static_cast<uint16_t>(b.intern_field(holder, kStr, "S"));
  b.start_class(cls, "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  emit_source(b, as, s, 0);
  as.sput(0, f);
  as.sget(1, f);
  emit_sink(b, as, k, 1, 0);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/staticfield", true, 1, std::move(b));
}

// EmulatorDetection archetype: leak guarded by a "not running on an
// emulator" probe. Static tools ignore the guard (detect); TaintDroid runs
// on the emulator profile and never sees the leak.
Sample direct_emulator_guard(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  auto skip = as.make_label();
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/os/Build;", "isEmulator", "I", {}),
            {});
  as.move_result(0);
  as.if_testz(Op::kIfNez, 0, skip);
  emit_source(b, as, s, 0);
  emit_sink(b, as, k, 0, 1);
  as.bind(skip);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/emulator", true, 1, std::move(b));
}

Sample direct_valueof(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  emit_source(b, as, s, 0);
  as.invoke(Op::kInvokeStatic, m(b, kStr, "valueOf", kStr, {kObj}), {0});
  as.move_result(0);
  as.invoke(Op::kInvokeVirtual, m(b, kStr, "toUpperCase", kStr, {}), {0});
  as.move_result(0);
  emit_sink(b, as, k, 0, 1);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/strings", true, 1, std::move(b));
}

// PrivateDataLeak3: one direct flow plus one through an external file —
// the file flow is missed by every evaluated tool (paper Table IV).
Sample private_data_leak3() {
  dex::DexBuilder b;
  std::string name = "PrivateDataLeak3";
  uint32_t path = b.intern_string("/sdcard/out.txt");
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  emit_source(b, as, Src::kDevice, 0);
  emit_sink(b, as, Snk::kSms, 0, 1);  // flow 1: direct
  as.const_string(1, static_cast<uint16_t>(path));
  as.invoke(Op::kInvokeStatic,
            m(b, "Ldexlego/api/Io;", "writeFile", "V", {kStr, kStr}), {1, 0});
  as.invoke(Op::kInvokeStatic, m(b, "Ldexlego/api/Io;", "readFile", kStr, {kStr}),
            {1});
  as.move_result(2);
  emit_sink(b, as, Snk::kLog, 2, 3);  // flow 2: via external file (lost)
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "direct/file", true, 2, std::move(b));
}

// ImplicitFlow1: two leaks whose data dependence is control-flow only.
Sample implicit_flow1() {
  dex::DexBuilder b;
  std::string name = "ImplicitFlow1";
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(5, 1);
  auto after1 = as.make_label();
  auto after2 = as.make_label();
  emit_source(b, as, Src::kDevice, 0);
  as.invoke(Op::kInvokeVirtual, m(b, kStr, "length", "I", {}), {0});
  as.move_result(1);
  as.const16(2, 0);
  as.const16(3, 10);
  // if (len >= 10) copy = 1   (control-dependent assignment)
  as.if_test(Op::kIfLt, 1, 3, after1);
  as.const16(2, 1);
  as.bind(after1);
  as.invoke(Op::kInvokeStatic, m(b, "Ljava/lang/Integer;", "toString", kStr, {"I"}),
            {2});
  as.move_result(2);
  emit_sink(b, as, Snk::kLog, 2, 4);  // leak 1
  // Second implicit copy to a different sink.
  as.const16(2, 0);
  as.if_test(Op::kIfLt, 1, 3, after2);
  as.const16(2, 2);
  as.bind(after2);
  as.invoke(Op::kInvokeStatic, m(b, "Ljava/lang/Integer;", "toString", kStr, {"I"}),
            {2});
  as.move_result(2);
  emit_sink(b, as, Snk::kSms, 2, 4);  // leak 2
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "implicit", true, 2, std::move(b));
}

// ---------------------------------------------------------------------------
// ICC: source in one activity, sink in another, data through Intent extras.
// FlowDroid (without IccTA) misses these; DroidSafe/HornDroid model them.
// ---------------------------------------------------------------------------
Sample icc_sample(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  std::string first = main_class(name);
  std::string second = "Ldb/" + name + "/Second;";
  uint16_t intent_t = static_cast<uint16_t>(b.intern_type("Landroid/content/Intent;"));
  uint16_t intent_init = m(b, "Landroid/content/Intent;", "<init>", "V", {kStr});
  uint16_t put_extra = m(b, "Landroid/content/Intent;", "putExtra",
                         "Landroid/content/Intent;", {kStr, kObj});
  uint16_t start_act =
      m(b, "Landroid/app/Activity;", "startActivity", "V",
        {"Landroid/content/Intent;"});
  uint16_t get_intent = m(b, "Landroid/app/Activity;", "getIntent",
                          "Landroid/content/Intent;", {});
  uint16_t get_extra = m(b, "Landroid/content/Intent;", "getStringExtra", kStr,
                         {kStr});
  uint32_t second_s = b.intern_string(second);
  uint32_t key_s = b.intern_string("secret_" + name);

  b.start_class(first, "Landroid/app/Activity;");
  {
    MethodAssembler as(4, 1);  // this v3
    as.new_instance(0, intent_t);
    as.const_string(1, static_cast<uint16_t>(second_s));
    as.invoke(Op::kInvokeDirect, intent_init, {0, 1});
    as.const_string(1, static_cast<uint16_t>(key_s));
    emit_source(b, as, s, 2);
    as.invoke(Op::kInvokeVirtual, put_extra, {0, 1, 2});
    as.invoke(Op::kInvokeVirtual, start_act, {3, 0});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  b.start_class(second, "Landroid/app/Activity;");
  {
    MethodAssembler as(4, 1);  // this v3
    as.invoke(Op::kInvokeVirtual, get_intent, {3});
    as.move_result(0);
    as.const_string(1, static_cast<uint16_t>(key_s));
    as.invoke(Op::kInvokeVirtual, get_extra, {0, 1});
    as.move_result(2);
    emit_sink(b, as, k, 2, 0);
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  return finish_sample(name, "icc", true, 1, std::move(b));
}

// ---------------------------------------------------------------------------
// Reflection families.
// ---------------------------------------------------------------------------

std::string xor_encrypt(std::string s, char key) {
  for (char& c : s) c = static_cast<char>(c ^ key);
  return s;
}

// Target class whose static method leaks; shared by the reflection samples.
void add_reflection_target(dex::DexBuilder& b, const std::string& target_cls,
                           Src s, Snk k, int chain) {
  b.start_class(target_cls);
  if (chain <= 0) {
    MethodAssembler as(3, 0);
    emit_source(b, as, s, 0);
    emit_sink(b, as, k, 0, 1);
    as.return_void();
    b.add_direct_method("exfiltrate", "V", {}, as.finish());
    return;
  }
  // Deep-chain flavour: exfiltrate -> c1 -> ... -> c<chain> -> sink. The
  // chain depth defeats DroidSafe's summary cut-off even after revealing.
  for (int i = chain; i >= 1; --i) {
    MethodAssembler as(3, 1);  // param v2
    if (i == chain) {
      emit_sink(b, as, k, 2, 0);
    } else {
      as.invoke(Op::kInvokeStatic,
                m(b, target_cls, "c" + std::to_string(i + 1), "V", {kStr}), {2});
    }
    as.return_void();
    b.add_direct_method("c" + std::to_string(i), "V", {kStr}, as.finish());
  }
  MethodAssembler as(3, 0);
  emit_source(b, as, s, 0);
  as.invoke(Op::kInvokeStatic, m(b, target_cls, "c1", "V", {kStr}), {0});
  as.return_void();
  b.add_direct_method("exfiltrate", "V", {}, as.finish());
}

// Emits: decode strings (with key in reg `key_reg`), forName/getMethod/
// invoke. Assumes registers v0..v2 free.
void emit_reflective_call(dex::DexBuilder& b, MethodAssembler& as,
                          const std::string& target_cls, char key,
                          uint8_t key_reg) {
  uint16_t xor_m = m(b, "Ldexlego/api/Crypto;", "xorDecode", kStr, {kStr, "I"});
  uint16_t forname = m(b, "Ljava/lang/Class;", "forName", "Ljava/lang/Class;",
                       {kStr});
  uint16_t getm = m(b, "Ljava/lang/Class;", "getMethod",
                    "Ljava/lang/reflect/Method;", {kStr});
  uint16_t invoke_m = m(b, "Ljava/lang/reflect/Method;", "invoke", kObj, {kObj});
  uint32_t enc_cls = b.intern_string(xor_encrypt(target_cls, key));
  uint32_t enc_method = b.intern_string(xor_encrypt("exfiltrate", key));
  as.const_string(0, static_cast<uint16_t>(enc_cls));
  as.invoke(Op::kInvokeStatic, xor_m, {0, key_reg});
  as.move_result(0);
  as.invoke(Op::kInvokeStatic, forname, {0});
  as.move_result(0);
  as.const_string(1, static_cast<uint16_t>(enc_method));
  as.invoke(Op::kInvokeStatic, xor_m, {1, key_reg});
  as.move_result(1);
  as.invoke(Op::kInvokeVirtual, getm, {0, 1});
  as.move_result(0);
  as.const_null(1);
  as.invoke(Op::kInvokeVirtual, invoke_m, {0, 1});
}

// Obfuscated reflection with a *constant* key: only a value-sensitive tool
// (HornDroid) folds the xor and resolves the target statically.
Sample obf_reflection(const std::string& name, Src s, Snk k, char key) {
  dex::DexBuilder b;
  std::string target = "Ldb/" + name + "/Hidden;";
  add_reflection_target(b, target, s, k, 0);
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  as.const16(3, key);
  emit_reflective_call(b, as, target, key, 3);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "obf-reflection", true, 1, std::move(b));
}

// Advanced reflection (contributed samples): the key comes from a native
// method, so *no* static tool resolves the strings — only DexLego's runtime
// replacement reveals the call.
Sample advanced_reflection(const std::string& name, Src s, Snk k, char key,
                           bool deep_chain) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  std::string target = "Ldb/" + name + "/Hidden;";
  add_reflection_target(b, target, s, k, deep_chain ? 6 : 0);
  b.start_class(cls, "Landroid/app/Activity;");
  b.add_native_method("keySource", "I", {});
  uint16_t key_m = m(b, cls, "keySource", "I", {});
  MethodAssembler as(5, 1);  // this v4
  as.invoke(Op::kInvokeVirtual, key_m, {4});
  as.move_result(3);
  emit_reflective_call(b, as, target, key, 3);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  std::string native_name = cls + "->keySource";
  auto configure = [native_name, key](rt::Runtime& runtime) {
    runtime.register_native(native_name,
                            [key](rt::NativeContext&, std::span<rt::Value>) {
                              return rt::Value::Int(key);
                            });
  };
  return finish_sample(name, deep_chain ? "adv-reflection/deep" : "adv-reflection",
                       true, 1, std::move(b), configure);
}

// Dynamic loading (contributed): the leaking class lives in an encrypted
// asset, released at runtime and invoked reflectively.
Sample dynamic_loading(const std::string& name, Src s, Snk k, uint8_t key) {
  dex::DexBuilder payload;
  std::string target = "Ldb/" + name + "/Payload;";
  add_reflection_target(payload, target, s, k, 0);
  std::vector<uint8_t> enc = dex::write_dex(std::move(payload).build());
  uint8_t rolling = key;
  for (uint8_t& byte : enc) {
    byte ^= rolling;
    rolling = static_cast<uint8_t>(rolling * 31 + 7);
  }

  dex::DexBuilder b;
  uint16_t load = m(b, "Ldalvik/system/DexClassLoader;", "loadFromAsset", "V",
                    {kStr, "I"});
  uint16_t forname = m(b, "Ljava/lang/Class;", "forName", "Ljava/lang/Class;",
                       {kStr});
  uint16_t getm = m(b, "Ljava/lang/Class;", "getMethod",
                    "Ljava/lang/reflect/Method;", {kStr});
  uint16_t invoke_m = m(b, "Ljava/lang/reflect/Method;", "invoke", kObj, {kObj});
  uint32_t asset_s = b.intern_string("assets/payload.bin");
  uint32_t cls_s = b.intern_string(target);
  uint32_t m_s = b.intern_string("exfiltrate");
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  as.const_string(0, static_cast<uint16_t>(asset_s));
  as.const16(1, key);
  as.invoke(Op::kInvokeStatic, load, {0, 1});
  as.const_string(0, static_cast<uint16_t>(cls_s));
  as.invoke(Op::kInvokeStatic, forname, {0});
  as.move_result(0);
  as.const_string(1, static_cast<uint16_t>(m_s));
  as.invoke(Op::kInvokeVirtual, getm, {0, 1});
  as.move_result(0);
  as.const_null(1);
  as.invoke(Op::kInvokeVirtual, invoke_m, {0, 1});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  Sample sample = finish_sample(name, "dynamic-loading", true, 1, std::move(b));
  sample.apk.set_entry("assets/payload.bin", enc);
  return sample;
}

// Self-modifying (contributed): the paper's Code 1 — a native swaps a
// normal(...) call with sink(...) between loop iterations.
Sample self_modifying(const std::string& name, Src s, Snk k, bool deep_chain) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  uint16_t normal_m = m(b, cls, "normal", "V", {kStr});
  m(b, cls, deep_chain ? "d1" : "covert", "V", {kStr});  // intern for the original DEX
  uint16_t tamper_m = m(b, cls, "bytecodeTamper", "V", {"I"});
  uint16_t leak_m = m(b, cls, "advancedLeak", "V", {});

  b.start_class(cls, "Landroid/app/Activity;");
  size_t call_pc = 0;
  {
    MethodAssembler as(4, 1);  // this v3
    auto loop = as.make_label();
    auto done = as.make_label();
    emit_source(b, as, s, 0);
    as.const16(1, 0);
    as.const16(2, 2);
    as.bind(loop);
    as.if_test(Op::kIfGe, 1, 2, done);
    call_pc = as.current_pc();
    as.invoke(Op::kInvokeVirtual, normal_m, {3, 0});
    as.invoke(Op::kInvokeVirtual, tamper_m, {3, 1});
    as.add_lit8(1, 1, 1);
    as.goto_(loop);
    as.bind(done);
    as.return_void();
    b.add_virtual_method("advancedLeak", "V", {}, as.finish());
  }
  {
    MethodAssembler as(2, 2);
    as.return_void();
    b.add_virtual_method("normal", "V", {kStr}, as.finish());
  }
  if (deep_chain) {
    // d1..d6 chain ends at the sink — defeats DroidSafe post-reveal.
    for (int i = 6; i >= 1; --i) {
      MethodAssembler as(3, 2);  // this v1, param v2
      if (i == 6) {
        emit_sink(b, as, k, 2, 0);
      } else {
        as.invoke(Op::kInvokeVirtual,
                  m(b, cls, "d" + std::to_string(i + 1), "V", {kStr}), {1, 2});
      }
      as.return_void();
      b.add_virtual_method("d" + std::to_string(i), "V", {kStr}, as.finish());
    }
  } else {
    MethodAssembler as(3, 2);  // this v1, param v2
    emit_sink(b, as, k, 2, 0);
    as.return_void();
    b.add_virtual_method("covert", "V", {kStr}, as.finish());
  }
  b.add_native_method("bytecodeTamper", "V", {"I"});
  {
    MethodAssembler as(2, 1);  // this v1
    as.invoke(Op::kInvokeVirtual, leak_m, {1});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }

  std::string native_name = cls + "->bytecodeTamper";
  std::string covert_name = deep_chain ? "d1" : "covert";
  auto configure = [native_name, cls, call_pc, covert_name](rt::Runtime& runtime) {
    runtime.register_native(
        native_name,
        [cls, call_pc, covert_name](rt::NativeContext& ctx,
                                    std::span<rt::Value> args) {
          rt::RtClass* c = ctx.runtime.linker().resolve(cls);
          if (c == nullptr) return rt::Value::Null();
          rt::RtMethod* leak = c->find_declared("advancedLeak");
          if (leak == nullptr || !leak->code) return rt::Value::Null();
          // Resolve the method index in the image that actually defines the
          // class — packers re-intern pools, so build-time indices are void.
          const dex::DexFile& file = leak->image->file;
          uint32_t target = file.find_method_ref(
              cls, args[1].test_value() == 0 ? covert_name : "normal");
          if (target == dex::kNoIndex) return rt::Value::Null();
          // Announced patch: bumps the code generation so the predecoded
          // cache invalidates the swapped invoke without a full rebuild.
          leak->patch_code_unit(call_pc + 1, static_cast<uint16_t>(target));
          return rt::Value::Null();
        });
  };
  return finish_sample(name, deep_chain ? "self-modifying/deep" : "self-modifying",
                       true, 1, std::move(b), configure);
}

// Leak performed entirely inside native code — invisible to every bytecode
// analysis, before and after revealing (the paper's JNI limitation).
Sample native_flow(const std::string& name) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  b.start_class(cls, "Landroid/app/Activity;");
  b.add_native_method("nativeLeak", "V", {kStr});
  uint16_t native_m = m(b, cls, "nativeLeak", "V", {kStr});
  MethodAssembler as(3, 1);  // this v2
  emit_source(b, as, Src::kDevice, 0);
  as.invoke(Op::kInvokeVirtual, native_m, {2, 0});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  std::string native_name = cls + "->nativeLeak";
  auto configure = [native_name](rt::Runtime& runtime) {
    runtime.register_native(native_name, [](rt::NativeContext& ctx,
                                            std::span<rt::Value> args) {
      // The JNI code posts the data itself; bytecode never sees a sink.
      ctx.runtime.record_sink("net", args.subspan(1));
      return rt::Value::Null();
    });
  };
  return finish_sample(name, "native-flow", true, 1, std::move(b), configure);
}

// Leaks only on tablets; executed on a phone, so DexLego's revealed DEX
// cannot contain it (the paper's single miss).
Sample tablet_only(const std::string& name) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  auto skip = as.make_label();
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/os/Build;", "isTablet", "I", {}), {});
  as.move_result(0);
  as.if_testz(Op::kIfEqz, 0, skip);
  emit_source(b, as, Src::kLocation, 0);
  emit_sink(b, as, Snk::kNet, 0, 1);
  as.bind(skip);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "tablet-only", true, 1, std::move(b));
}

// ---------------------------------------------------------------------------
// Benign samples.
// ---------------------------------------------------------------------------

Sample benign_clean(const std::string& name, int variant) {
  dex::DexBuilder b;
  uint32_t msg = b.intern_string("status ok " + std::to_string(variant));
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(4, 1);
  auto loop = as.make_label();
  auto done = as.make_label();
  as.const16(0, 0);
  as.const16(1, static_cast<int16_t>(5 + variant));
  as.bind(loop);
  as.if_test(Op::kIfGe, 0, 1, done);
  as.add_lit8(0, 0, 1);
  as.goto_(loop);
  as.bind(done);
  as.const_string(2, static_cast<uint16_t>(msg));
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {2});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/clean", false, 0, std::move(b));
}

// A complete source->sink flow inside a method nothing ever calls — the
// contributed "unreachable taint flow" samples (FPs for every tool that
// analyzes whole classes; removed by DexLego's executed-only collection).
Sample benign_dead_method(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint32_t msg = b.intern_string("nothing to see");
  std::string cls = main_class(name);
  b.start_class(cls, "Landroid/app/Activity;");
  {
    MethodAssembler as(3, 1);
    as.const_string(0, static_cast<uint16_t>(msg));
    as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {0});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  {
    MethodAssembler as(3, 1);
    emit_source(b, as, s, 0);
    emit_sink(b, as, k, 0, 1);
    as.return_void();
    b.add_virtual_method("neverCalled", "V", {}, as.finish());
  }
  return finish_sample(name, "benign/dead-method", false, 0, std::move(b));
}

// Flow behind a provably-false constant branch: path-insensitive tools flag
// it, the value-sensitive preset (HornDroid) prunes it.
Sample benign_dead_branch(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(3, 1);
  auto dead = as.make_label();
  auto end = as.make_label();
  as.const16(0, 0);
  as.if_testz(Op::kIfNez, 0, dead);
  as.goto_(end);
  as.bind(dead);
  emit_source(b, as, s, 0);
  emit_sink(b, as, k, 0, 1);
  as.bind(end);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/dead-branch", false, 0, std::move(b));
}

// Implicit flow inside a dead method: only the implicit-tracking preset
// (HornDroid) reports it.
Sample benign_dead_implicit(const std::string& name, Src s, Snk k) {
  dex::DexBuilder b;
  uint32_t msg = b.intern_string("idle");
  std::string cls = main_class(name);
  b.start_class(cls, "Landroid/app/Activity;");
  {
    MethodAssembler as(3, 1);
    as.const_string(0, static_cast<uint16_t>(msg));
    as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "d", "V", {kStr}), {0});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  {
    MethodAssembler as(5, 1);
    auto after = as.make_label();
    emit_source(b, as, s, 0);
    as.invoke(Op::kInvokeVirtual, m(b, kStr, "length", "I", {}), {0});
    as.move_result(1);
    as.const16(2, 0);
    as.const16(3, 8);
    as.if_test(Op::kIfLt, 1, 3, after);
    as.const16(2, 1);
    as.bind(after);
    as.invoke(Op::kInvokeStatic,
              m(b, "Ljava/lang/Integer;", "toString", kStr, {"I"}), {2});
    as.move_result(2);
    emit_sink(b, as, k, 2, 4);
    as.return_void();
    b.add_virtual_method("neverCalled", "V", {}, as.finish());
  }
  return finish_sample(name, "benign/dead-implicit", false, 0, std::move(b));
}

// Flow inside onClick of a listener class that is never instantiated or
// registered: FlowDroid's callback over-approximation flags it.
Sample benign_orphan_callback(const std::string& name) {
  dex::DexBuilder b;
  uint32_t msg = b.intern_string("plain");
  std::string listener = "Ldb/" + name + "/Orphan;";
  b.start_class(listener);
  {
    MethodAssembler as(3, 2);  // this v1, view v2
    emit_source(b, as, Src::kContacts, 0);
    emit_sink(b, as, Snk::kNet, 0, 1);
    as.return_void();
    b.add_virtual_method("onClick", "V", {"Landroid/view/View;"}, as.finish());
  }
  b.start_class(main_class(name), "Landroid/app/Activity;");
  {
    MethodAssembler as(3, 1);
    as.const_string(0, static_cast<uint16_t>(msg));
    as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {0});
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }
  return finish_sample(name, "benign/orphan-callback", false, 0, std::move(b));
}

// Coarse-array FP: the sink receives the untainted element, but the
// array-granularity abstraction of every tool taints it (survives DexLego).
Sample benign_coarse_array(const std::string& name, Src s) {
  dex::DexBuilder b;
  uint32_t ok = b.intern_string("public info");
  uint16_t arr_t = static_cast<uint16_t>(b.intern_type("[Ljava/lang/String;"));
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(6, 1);
  as.const16(0, 2);
  as.new_array(1, 0, arr_t);
  emit_source(b, as, s, 2);
  as.const16(3, 0);
  as.aput(2, 1, 3);  // arr[0] = secret
  as.const_string(2, static_cast<uint16_t>(ok));
  as.const16(3, 1);
  as.aput(2, 1, 3);  // arr[1] = public
  as.aget(4, 1, 3);  // read arr[1]
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {4});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/coarse-array", false, 0, std::move(b));
}

// Coarse-tag FP: two views, only the benign tag is sunk; the single-cell
// framework tag summary taints both (survives DexLego).
Sample benign_coarse_tag(const std::string& name, Src s) {
  dex::DexBuilder b;
  uint32_t ok = b.intern_string("label");
  uint16_t find_view = m(b, "Landroid/app/Activity;", "findViewById",
                         "Landroid/view/View;", {"I"});
  uint16_t set_tag = m(b, "Landroid/view/View;", "setTag", "V", {kObj});
  uint16_t get_tag = m(b, "Landroid/view/View;", "getTag", kObj, {});
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(5, 1);  // this v4
  as.const16(0, 5);
  as.invoke(Op::kInvokeVirtual, find_view, {4, 0});
  as.move_result(0);
  emit_source(b, as, s, 1);
  as.invoke(Op::kInvokeVirtual, set_tag, {0, 1});  // view5.tag = secret
  as.const16(1, 6);
  as.invoke(Op::kInvokeVirtual, find_view, {4, 1});
  as.move_result(1);
  as.const_string(2, static_cast<uint16_t>(ok));
  as.invoke(Op::kInvokeVirtual, set_tag, {1, 2});  // view6.tag = label
  as.invoke(Op::kInvokeVirtual, get_tag, {1});
  as.move_result(2);
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {2});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/coarse-tag", false, 0, std::move(b));
}

// Alias FP for the field-name-keyed heap (DroidSafe): same field name on two
// unrelated classes.
Sample benign_alias_field(const std::string& name, Src s) {
  dex::DexBuilder b;
  std::string h1 = "Ldb/" + name + "/CacheA;";
  std::string h2 = "Ldb/" + name + "/CacheB;";
  b.start_class(h1);
  b.add_instance_field("data", kStr);
  b.start_class(h2);
  b.add_instance_field("data", kStr);
  uint16_t f1 = static_cast<uint16_t>(b.intern_field(h1, kStr, "data"));
  uint16_t f2 = static_cast<uint16_t>(b.intern_field(h2, kStr, "data"));
  uint16_t t1 = static_cast<uint16_t>(b.intern_type(h1));
  uint16_t t2 = static_cast<uint16_t>(b.intern_type(h2));
  uint32_t ok = b.intern_string("cache header");
  b.start_class(main_class(name), "Landroid/app/Activity;");
  MethodAssembler as(5, 1);
  as.new_instance(0, t1);
  emit_source(b, as, s, 1);
  as.iput(1, 0, f1);  // a.data = secret
  as.new_instance(2, t2);
  as.const_string(3, static_cast<uint16_t>(ok));
  as.iput(3, 2, f2);  // b.data = benign
  as.iget(3, 2, f2);
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {3});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/alias-field", false, 0, std::move(b));
}

// Overwrite FP for flow-insensitive field handling (DroidSafe): the tainted
// field value is replaced before the sink reads it.
Sample benign_overwrite(const std::string& name, Src s) {
  dex::DexBuilder b;
  std::string cls = main_class(name);
  uint32_t ok = b.intern_string("reset");
  b.start_class(cls, "Landroid/app/Activity;");
  b.add_instance_field("buf", kStr);
  uint16_t f = static_cast<uint16_t>(b.intern_field(cls, kStr, "buf"));
  MethodAssembler as(3, 1);  // this v2
  emit_source(b, as, s, 0);
  as.iput(0, 2, f);
  as.const_string(0, static_cast<uint16_t>(ok));
  as.iput(0, 2, f);  // strong update kills the taint
  as.iget(1, 2, f);
  as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}), {1});
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());
  return finish_sample(name, "benign/overwrite", false, 0, std::move(b));
}

}  // namespace

const Sample* DroidBench::find(const std::string& name) const {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

size_t DroidBench::leaky_count() const {
  size_t n = 0;
  for (const Sample& s : samples) n += s.leaky ? 1 : 0;
  return n;
}

size_t DroidBench::benign_count() const { return samples.size() - leaky_count(); }

DroidBench build_droidbench() {
  DroidBench suite;
  auto add = [&](Sample s) { suite.samples.push_back(std::move(s)); };

  const Src sources[] = {Src::kDevice, Src::kLocation, Src::kSsid, Src::kSecret,
                         Src::kContacts};
  const Snk sinks[] = {Snk::kSms, Snk::kLog, Snk::kNet};
  auto s_at = [&](int i) { return sources[i % 5]; };
  auto k_at = [&](int i) { return sinks[i % 3]; };

  // --- 81 direct samples: named Table IV samples + archetype instances ---
  add(direct_button("Button1", Src::kDevice, {Snk::kSms}));
  add(direct_button("Button3", Src::kDevice, {Snk::kSms, Snk::kLog}));
  add(direct_emulator_guard("EmulatorDetection1", Src::kDevice, Snk::kSms));
  add(private_data_leak3());
  int made = 4;
  for (int i = 0; made < 80; ++i) {  // +StringOps1 below = 81 direct samples
    std::string n = std::to_string(i + 1);
    switch (i % 13) {
      case 0: add(direct_straight("Straight" + n, s_at(i), k_at(i))); break;
      case 1: add(direct_helper("Helper" + n, s_at(i), k_at(i), 1)); break;
      case 2: add(direct_helper("Chain" + n, s_at(i), k_at(i), 2)); break;
      case 3: add(direct_loop_concat("Loop" + n, s_at(i), k_at(i))); break;
      case 4: add(direct_branch("Branch" + n, s_at(i), k_at(i))); break;
      case 5: add(direct_field("Field" + n, s_at(i), k_at(i), false)); break;
      case 6: add(direct_field("Lifecycle" + n, s_at(i), k_at(i), true)); break;
      case 7: add(direct_button("Callback" + n, s_at(i), {k_at(i)})); break;
      case 8: add(direct_trycatch("Exception" + n, s_at(i), k_at(i))); break;
      case 9: add(direct_switch("Switch" + n, s_at(i), k_at(i))); break;
      case 10: add(direct_builder("Builder" + n, s_at(i), k_at(i))); break;
      case 11: add(direct_array("Array" + n, s_at(i), k_at(i))); break;
      case 12: add(direct_static_field("Static" + n, s_at(i), k_at(i))); break;
    }
    ++made;
  }
  add(direct_valueof("StringOps1", Src::kSsid, Snk::kNet));
  add(implicit_flow1());
  ++made;  // StringOps1 counted towards direct; ImplicitFlow1 is its own cat.

  // --- 13 ICC samples ---
  for (int i = 0; i < 13; ++i) {
    add(icc_sample("Icc" + std::to_string(i + 1), s_at(i), k_at(i + 1)));
  }
  // --- 2 obfuscated (constant-key) reflection ---
  add(obf_reflection("ObfReflect1", Src::kDevice, Snk::kNet, 7));
  add(obf_reflection("ObfReflect2", Src::kContacts, Snk::kSms, 11));
  // --- 1 native flow, 1 tablet-only ---
  add(native_flow("NativeFlow1"));
  add(tablet_only("TabletLeak1"));
  // --- 15 contributed: 5 advanced reflection, 3 dynamic loading, 4 self-mod,
  //     3 unreachable (benign, below) ---
  add(advanced_reflection("AdvReflect1", Src::kDevice, Snk::kSms, 7, false));
  add(advanced_reflection("AdvReflect2", Src::kLocation, Snk::kNet, 13, false));
  add(advanced_reflection("AdvReflect3", Src::kSecret, Snk::kLog, 23, false));
  add(advanced_reflection("AdvReflect4", Src::kDevice, Snk::kNet, 17, true));
  add(advanced_reflection("AdvReflect5", Src::kContacts, Snk::kSms, 29, true));
  add(dynamic_loading("DynLoad1", Src::kDevice, Snk::kNet, 42));
  add(dynamic_loading("DynLoad2", Src::kSsid, Snk::kSms, 99));
  add(dynamic_loading("DynLoad3", Src::kSecret, Snk::kLog, 123));
  add(self_modifying("SelfMod1", Src::kSecret, Snk::kSms, false));
  add(self_modifying("SelfMod2", Src::kDevice, Snk::kNet, false));
  add(self_modifying("SelfMod3", Src::kLocation, Snk::kLog, true));
  add(self_modifying("SelfMod4", Src::kContacts, Snk::kSms, true));

  // --- 23 benign ---
  for (int i = 0; i < 8; ++i) add(benign_clean("Clean" + std::to_string(i + 1), i));
  add(benign_dead_method("Unreachable1", Src::kDevice, Snk::kSms));
  add(benign_dead_method("Unreachable2", Src::kLocation, Snk::kNet));
  add(benign_dead_method("Unreachable3", Src::kSecret, Snk::kLog));
  add(benign_dead_branch("DeadBranch1", Src::kDevice, Snk::kLog));
  add(benign_dead_branch("DeadBranch2", Src::kSsid, Snk::kSms));
  add(benign_dead_implicit("DeadImplicit1", Src::kDevice, Snk::kNet));
  add(benign_dead_implicit("DeadImplicit2", Src::kContacts, Snk::kLog));
  add(benign_orphan_callback("OrphanCallback1"));
  add(benign_coarse_array("CoarseArray1", Src::kDevice));
  add(benign_coarse_array("CoarseArray2", Src::kSecret));
  add(benign_coarse_tag("CoarseTag1", Src::kDevice));
  add(benign_coarse_tag("CoarseTag2", Src::kLocation));
  add(benign_alias_field("AliasField1", Src::kDevice));
  add(benign_alias_field("AliasField2", Src::kSsid));
  add(benign_overwrite("Overwrite1", Src::kDevice));

  return suite;
}

}  // namespace dexlego::suite
