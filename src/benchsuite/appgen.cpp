#include "src/benchsuite/appgen.h"

#include <optional>

#include "src/bytecode/assembler.h"
#include "src/dex/builder.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"

namespace dexlego::suite {

using bc::MethodAssembler;
using bc::Op;

namespace {

constexpr const char* kStr = "Ljava/lang/String;";
constexpr const char* kObj = "Ljava/lang/Object;";

uint16_t m(dex::DexBuilder& b, const std::string& cls, const std::string& name,
           const std::string& ret, const std::vector<std::string>& params) {
  return static_cast<uint16_t>(b.intern_method(cls, name, ret, params));
}

// Emits one pseudo-random code block into `as`; returns roughly the number
// of units emitted. Register protocol: v0 = accumulator, v1-v3 scratch,
// param register passed by caller. full_cov blocks execute BOTH branch sides
// in a single run via 2-iteration alternating loops. pool_free restricts the
// mix to blocks without pool references (no const-string/invoke), so the
// raw code units are identical across apps whose pools differ — the
// property shared-library bodies need to dedup fleet-wide.
void emit_block(dex::DexBuilder& b, MethodAssembler& as, support::Rng& rng,
                bool full_cov, uint32_t line, bool pool_free = false) {
  as.line(line);
  switch (rng.below(pool_free ? 4 : 5)) {
    case 0: {  // arithmetic run
      as.const16(1, static_cast<int16_t>(rng.range(1, 999)));
      as.binop(Op::kAdd, 0, 0, 1);
      as.mul_lit8(1, 1, static_cast<int8_t>(rng.range(2, 9)));
      as.binop(Op::kXor, 0, 0, 1);
      as.add_lit8(0, 0, static_cast<int8_t>(rng.range(-9, 9)));
      break;
    }
    case 1: {  // bounded loop
      auto loop = as.make_label();
      auto done = as.make_label();
      as.const16(1, 0);
      as.const16(2, static_cast<int16_t>(rng.range(2, 5)));
      as.bind(loop);
      as.if_test(Op::kIfGe, 1, 2, done);
      as.binop(Op::kAdd, 0, 0, 1);
      as.add_lit8(1, 1, 1);
      as.goto_(loop);
      as.bind(done);
      break;
    }
    case 2: {  // branch pair
      if (full_cov) {
        // for (t = 0; t < 2; ++t) { if (t == 0) B else A } — both sides run.
        auto loop = as.make_label();
        auto done = as.make_label();
        auto other = as.make_label();
        auto cont = as.make_label();
        as.const16(1, 0);
        as.const16(2, 2);
        as.bind(loop);
        as.if_test(Op::kIfGe, 1, 2, done);
        as.if_testz(Op::kIfEqz, 1, other);
        as.add_lit8(0, 0, 3);
        as.goto_(cont);
        as.bind(other);
        as.add_lit8(0, 0, 5);
        as.bind(cont);
        as.add_lit8(1, 1, 1);
        as.goto_(loop);
        as.bind(done);
      } else {
        auto other = as.make_label();
        auto cont = as.make_label();
        as.const16(1, static_cast<int16_t>(rng.range(0, 9)));
        as.if_test(Op::kIfLt, 0, 1, other);
        as.add_lit8(0, 0, 7);
        as.goto_(cont);
        as.bind(other);
        as.add_lit8(0, 0, -2);
        as.bind(cont);
      }
      break;
    }
    case 3: {  // switch over a loop counter (all cases execute in full_cov)
      auto loop = as.make_label();
      auto done = as.make_label();
      auto c0 = as.make_label();
      auto c1 = as.make_label();
      auto cont = as.make_label();
      as.const16(1, 0);
      as.const16(2, full_cov ? 3 : 1);
      as.bind(loop);
      as.if_test(Op::kIfGe, 1, 2, done);
      as.packed_switch(1, 0, {c0, c1});
      as.add_lit8(0, 0, 1);  // default
      as.goto_(cont);
      as.bind(c0);
      as.add_lit8(0, 0, 2);
      as.goto_(cont);
      as.bind(c1);
      as.add_lit8(0, 0, 4);
      as.bind(cont);
      as.add_lit8(1, 1, 1);
      as.goto_(loop);
      as.bind(done);
      break;
    }
    default: {  // string plumbing
      uint32_t s = b.intern_string("blk" + std::to_string(rng.below(64)));
      as.const_string(3, static_cast<uint16_t>(s));
      as.invoke(Op::kInvokeVirtual, m(b, kStr, "length", "I", {}), {3});
      as.move_result(1);
      as.binop(Op::kAdd, 0, 0, 1);
      break;
    }
  }
}

// Generates a static method "I f(I)" of roughly `units` code units that ends
// by calling `next` (if any) and returning the accumulator.
dex::CodeItem gen_method(dex::DexBuilder& b, support::Rng& rng, size_t units,
                         std::optional<uint16_t> next, bool full_cov,
                         bool with_try, uint32_t base_line,
                         bool pool_free = false) {
  MethodAssembler as(8, 1);  // param in v7
  as.line(base_line);
  as.move(0, 7);
  uint32_t line = base_line;
  if (with_try) {
    // try { arithmetic } catch { unreached } — the handler instructions stay
    // uncovered even under forcing (paper's cause 3 of missed coverage).
    auto handler = as.make_label();
    auto after = as.make_label();
    as.begin_try();
    as.const16(1, 100);
    as.binop(Op::kAdd, 0, 0, 1);
    as.end_try(handler);
    as.goto_(after);
    as.bind(handler);
    as.move_exception(1);
    as.add_lit8(0, 0, -1);
    as.add_lit8(0, 0, -1);
    as.bind(after);
  }
  while (as.current_pc() + 26 < units) {
    emit_block(b, as, rng, full_cov, ++line, pool_free);
  }
  while (as.current_pc() + 4 < units) {  // pad toward the exact size target
    as.const16(1, static_cast<int16_t>(rng.range(1, 99)));
    as.binop(Op::kAdd, 0, 0, 1);
  }
  if (next) {
    as.invoke(Op::kInvokeStatic, *next, {0});
    as.move_result(0);
  }
  as.return_value(0);
  return as.finish();
}

struct SrcSink {
  const char* src_cls;
  const char* src_m;
  const char* snk_cls;
  const char* snk_m;
};

void add_leak_method(dex::DexBuilder& b, int index,
                     const SrcSink& ss) {
  MethodAssembler as(3, 0);
  as.invoke(Op::kInvokeStatic, m(b, ss.src_cls, ss.src_m, kStr, {}), {});
  as.move_result(0);
  as.invoke(Op::kInvokeStatic, m(b, ss.snk_cls, ss.snk_m, "V", {kStr}), {0});
  as.return_void();
  b.add_direct_method("leak" + std::to_string(index), "V", {}, as.finish());
}

// --- hostile-app features (AppSpec fuzz knobs, docs/FUZZING.md) ------------

std::string xor_encode(std::string s, int key) {
  for (char& c : s) c = static_cast<char>(c ^ key);
  return s;
}

// Dispatch chain m1 -> m2 -> ... -> Log.i, entered reflectively from
// onCreate with xor-encoded names (the obf-reflection DroidBench shape).
void add_reflection_maze(dex::DexBuilder& b, const std::string& maze_cls,
                         int depth, uint64_t seed) {
  b.start_class(maze_cls);
  for (int i = depth; i >= 1; --i) {
    MethodAssembler as(3, 0);
    if (i == depth) {
      uint32_t msg = b.intern_string("maze-end-" + std::to_string(seed));
      as.const_string(0, static_cast<uint16_t>(msg));
      as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}),
                {0});
    } else {
      as.invoke(Op::kInvokeStatic,
                m(b, maze_cls, "m" + std::to_string(i + 1), "V", {}), {});
    }
    as.return_void();
    b.add_direct_method("m" + std::to_string(i), "V", {}, as.finish());
  }
}

// The paper's Code 1 shape on the main activity: smDrive loops twice calling
// smNormal(payload) then a tamper native that swaps the call target to
// smCovert (which logs the payload) and back. Returns the pc of the
// swappable invoke inside smDrive.
size_t add_self_mod_methods(dex::DexBuilder& b, const std::string& main,
                            uint64_t seed) {
  uint16_t norm_m = m(b, main, "smNormal", "V", {kStr});
  m(b, main, "smCovert", "V", {kStr});  // interned so the tamper can name it
  b.add_native_method("smTamper", "V", {"I"});
  uint16_t tamper_m = m(b, main, "smTamper", "V", {"I"});
  {
    MethodAssembler as(2, 2);
    as.return_void();
    b.add_virtual_method("smNormal", "V", {kStr}, as.finish());
  }
  {
    MethodAssembler as(3, 2);  // this v1, param v2
    as.invoke(Op::kInvokeStatic, m(b, "Landroid/util/Log;", "i", "V", {kStr}),
              {2});
    as.return_void();
    b.add_virtual_method("smCovert", "V", {kStr}, as.finish());
  }
  size_t call_pc = 0;
  {
    MethodAssembler as(4, 1);  // this v3
    auto loop = as.make_label();
    auto done = as.make_label();
    uint32_t payload = b.intern_string("sm-payload-" + std::to_string(seed));
    as.const_string(0, static_cast<uint16_t>(payload));
    as.const16(1, 0);
    as.const16(2, 2);
    as.bind(loop);
    as.if_test(Op::kIfGe, 1, 2, done);
    call_pc = as.current_pc();
    as.invoke(Op::kInvokeVirtual, norm_m, {3, 0});
    as.invoke(Op::kInvokeVirtual, tamper_m, {3, 1});
    as.add_lit8(1, 1, 1);
    as.goto_(loop);
    as.bind(done);
    as.return_void();
    b.add_virtual_method("smDrive", "V", {}, as.finish());
  }
  return call_pc;
}

}  // namespace

GeneratedApp generate_app(const AppSpec& spec) {
  support::Rng rng(spec.seed);
  dex::DexBuilder b;
  std::string pkg_path = spec.package;
  for (char& c : pkg_path) {
    if (c == '.') c = '/';
  }
  std::string main = "L" + pkg_path + "/Main;";

  // Partition the unit budget.
  size_t guarded_units =
      static_cast<size_t>(static_cast<double>(spec.target_units) * spec.guarded_fraction);
  size_t dead_units =
      static_cast<size_t>(static_cast<double>(spec.target_units) * spec.dead_fraction);
  size_t library_units =
      spec.library_seeds.empty()
          ? 0
          : static_cast<size_t>(static_cast<double>(spec.target_units) *
                                spec.library_fraction);
  size_t carved = guarded_units + dead_units + library_units;
  size_t base_units = spec.target_units > carved + 120
                          ? spec.target_units - carved - 120
                          : 60;

  constexpr size_t kMethodUnits = 150;
  constexpr size_t kMethodsPerClass = 6;

  // Builds classes covering `units`; each class gets an `entry(I)I` that
  // calls its methods sequentially (call depth stays 2, regardless of app
  // size). Returns the entry method ids. `gen` drives body generation:
  // library partitions pass a seed-pinned Rng so the same library seed
  // yields the same body stream in every app embedding it, while the app's
  // own partitions consume the app rng as before.
  auto build_classes = [&](const std::string& prefix, size_t units,
                           bool full_cov, support::Rng& gen, bool pool_free,
                           size_t method_units) -> std::vector<uint16_t> {
    std::vector<uint16_t> entries;
    // Entry methods, dispatch glue and onCreate guards add ~10% on top of
    // the generated bodies; compensate so totals land on the target.
    size_t adjusted = units - units / 10;
    size_t n_methods =
        std::max<size_t>(1, (adjusted + method_units / 2) / method_units);
    size_t n_classes = (n_methods + kMethodsPerClass - 1) / kMethodsPerClass;
    for (size_t c = 0; c < n_classes; ++c) {
      std::string cls =
          "L" + pkg_path + "/" + prefix + "C" + std::to_string(c) + ";";
      size_t in_class =
          std::min(kMethodsPerClass, n_methods - c * kMethodsPerClass);
      b.start_class(cls);
      for (size_t i = 0; i < in_class; ++i) {
        // Unreachable catch handlers would break the Table I full-inclusion
        // property, so they only appear in non-full-coverage apps.
        bool with_try = !full_cov && gen.chance(0.1);
        dex::CodeItem code = gen_method(
            b, gen, method_units, std::nullopt, full_cov, with_try,
            static_cast<uint32_t>(100 * (c + 1) + i * 10), pool_free);
        b.add_direct_method("m" + std::to_string(i), "I", {"I"}, std::move(code));
      }
      MethodAssembler as(8, 1);  // param in v7
      as.move(0, 7);
      for (size_t i = 0; i < in_class; ++i) {
        as.invoke(Op::kInvokeStatic, m(b, cls, "m" + std::to_string(i), "I", {"I"}),
                  {0});
        as.move_result(0);
      }
      as.return_value(0);
      b.add_direct_method("entry", "I", {"I"}, as.finish());
      entries.push_back(m(b, cls, "entry", "I", {"I"}));
    }
    return entries;
  };

  // Library partition first: bodies come from the library seeds' own rng
  // streams (pool-free, so raw units match across apps — see emit_block),
  // split evenly across the listed seeds. Entry glue still names this app's
  // classes, mirroring how real apps link the same library differently.
  std::vector<uint16_t> library_entries;
  if (library_units > 0) {
    // Library methods are small helpers (~kMethodUnits/2), so one embedded
    // library contributes several dedup-able bodies, not one monolith.
    size_t per_library = library_units / spec.library_seeds.size();
    for (size_t k = 0; k < spec.library_seeds.size() && per_library > 60; ++k) {
      support::Rng lib_rng(spec.library_seeds[k]);
      std::vector<uint16_t> entries =
          build_classes("Lib" + std::to_string(k), per_library,
                        spec.full_coverage_style, lib_rng, /*pool_free=*/true,
                        kMethodUnits / 2);
      library_entries.insert(library_entries.end(), entries.begin(),
                             entries.end());
    }
  }

  std::vector<uint16_t> base_entries =
      build_classes("Base", base_units, spec.full_coverage_style, rng,
                    /*pool_free=*/false, kMethodUnits);
  std::vector<uint16_t> guarded_entries;
  if (guarded_units > 60) {
    guarded_entries = build_classes("Guarded", guarded_units,
                                    spec.full_coverage_style, rng,
                                    /*pool_free=*/false, kMethodUnits);
  }
  if (dead_units > 60) {
    build_classes("Dead", dead_units, spec.full_coverage_style, rng,
                  /*pool_free=*/false, kMethodUnits);  // never called
  }

  std::string maze_cls = "L" + pkg_path + "/Maze;";
  if (spec.reflection_maze > 0) {
    add_reflection_maze(b, maze_cls, spec.reflection_maze, spec.seed);
  }

  // Leak methods (Table V): device id first, then the app's assigned mix.
  std::vector<SrcSink> leak_specs = {
      {"Landroid/telephony/TelephonyManager;", "getDeviceId",
       "Ldexlego/api/Network;", "send"},
      {"Landroid/telephony/TelephonyManager;", "getDeviceId",
       "Landroid/util/Log;", "i"},
      {"Landroid/location/LocationManager;", "getLastKnownLocation",
       "Ldexlego/api/Network;", "send"},
      {"Landroid/net/wifi/WifiInfo;", "getSSID", "Ldexlego/api/Network;", "send"},
      {"Landroid/provider/ContactsContract;", "query", "Landroid/util/Log;", "i"},
  };

  b.start_class(main, "Landroid/app/Activity;");
  if (spec.leak_flows > 0) {
    // Leak methods live on the activity class, each a distinct flow site.
    for (int i = 0; i < spec.leak_flows; ++i) {
      add_leak_method(b, i, leak_specs[static_cast<size_t>(i) % leak_specs.size()]);
    }
  }
  size_t sm_call_pc = 0;
  if (spec.self_modifying) {
    sm_call_pc = add_self_mod_methods(b, main, spec.seed);
  }
  {
    MethodAssembler as(5, 1);  // this in v4
    as.line(10);
    if (spec.render_frames_k > 0) {
      as.const16(0, static_cast<int16_t>(spec.render_frames_k));
      as.invoke(Op::kInvokeStatic,
                m(b, "Landroid/view/Choreographer;", "renderFrames", "V", {"I"}),
                {0});
    }
    as.const16(0, 1);
    // Opaque-true guard stack: each level recomputes the same value two ways
    // and branches to skip on the (never-true) mismatch, so static CFGs gain
    // depth while runtime behaviour stays identical.
    std::optional<MethodAssembler::Label> hostile_skip;
    if (spec.guard_stack > 0) {
      hostile_skip = as.make_label();
      for (int g = 0; g < spec.guard_stack; ++g) {
        int16_t anchor = static_cast<int16_t>(
            101 + (spec.seed + static_cast<uint64_t>(g) * 37) % 997);
        int8_t delta = static_cast<int8_t>(1 + g % 7);
        as.const16(1, anchor);
        as.add_lit8(2, 1, delta);
        as.add_lit8(2, 2, static_cast<int8_t>(-delta));
        as.if_test(Op::kIfNe, 1, 2, *hostile_skip);
      }
    }
    for (uint16_t entry : library_entries) {
      as.invoke(Op::kInvokeStatic, entry, {0});
      as.move_result(0);
    }
    for (uint16_t entry : base_entries) {
      as.invoke(Op::kInvokeStatic, entry, {0});
      as.move_result(0);
    }
    if (hostile_skip.has_value()) as.bind(*hostile_skip);
    for (int i = 0; i < spec.leak_flows; ++i) {
      as.invoke(Op::kInvokeStatic,
                m(b, main, "leak" + std::to_string(i), "V", {}), {});
    }
    // One semantic input guard per guarded class: reachable only when the
    // corresponding text field holds the app-specific magic value — random
    // fuzzing essentially never satisfies it; force execution flips it.
    for (size_t g = 0; g < guarded_entries.size(); ++g) {
      auto skip = as.make_label();
      uint32_t magic = b.intern_string("magic-" + std::to_string(spec.seed) +
                                       "-" + std::to_string(g));
      as.const16(0, static_cast<int16_t>(3 + g));
      as.invoke(Op::kInvokeVirtual,
                m(b, "Landroid/app/Activity;", "findViewById",
                  "Landroid/view/View;", {"I"}),
                {4, 0});
      as.move_result(0);
      as.invoke(Op::kInvokeVirtual,
                m(b, "Landroid/widget/EditText;", "getText", kStr, {}), {0});
      as.move_result(0);
      as.const_string(1, static_cast<uint16_t>(magic));
      as.invoke(Op::kInvokeVirtual, m(b, kStr, "equals", "I", {kStr}), {0, 1});
      as.move_result(1);
      as.if_testz(Op::kIfEqz, 1, skip);
      as.const16(0, 1);
      as.invoke(Op::kInvokeStatic, guarded_entries[g], {0});
      as.move_result(0);
      as.bind(skip);
    }
    if (spec.reflection_maze > 0) {
      int key = spec.reflection_key & 0x7f;
      if (key == 0) key = 7;
      uint16_t xor_m =
          m(b, "Ldexlego/api/Crypto;", "xorDecode", kStr, {kStr, "I"});
      uint16_t forname =
          m(b, "Ljava/lang/Class;", "forName", "Ljava/lang/Class;", {kStr});
      uint16_t getm = m(b, "Ljava/lang/Class;", "getMethod",
                        "Ljava/lang/reflect/Method;", {kStr});
      uint16_t invoke_m =
          m(b, "Ljava/lang/reflect/Method;", "invoke", kObj, {kObj});
      uint32_t enc_cls = b.intern_string(xor_encode(maze_cls, key));
      uint32_t enc_method = b.intern_string(xor_encode("m1", key));
      as.const16(2, static_cast<int16_t>(key));
      as.const_string(0, static_cast<uint16_t>(enc_cls));
      as.invoke(Op::kInvokeStatic, xor_m, {0, 2});
      as.move_result(0);
      as.invoke(Op::kInvokeStatic, forname, {0});
      as.move_result(0);
      as.const_string(1, static_cast<uint16_t>(enc_method));
      as.invoke(Op::kInvokeStatic, xor_m, {1, 2});
      as.move_result(1);
      as.invoke(Op::kInvokeVirtual, getm, {0, 1});
      as.move_result(0);
      as.const_null(1);
      as.invoke(Op::kInvokeVirtual, invoke_m, {0, 1});
    }
    if (spec.self_modifying) {
      as.invoke(Op::kInvokeVirtual, m(b, main, "smDrive", "V", {}), {4});
    }
    as.return_void();
    b.add_virtual_method("onCreate", "V", {}, as.finish());
  }

  GeneratedApp app;
  dex::DexFile file = std::move(b).build();
  app.code_units = file.total_code_units();
  dex::Manifest manifest;
  manifest.package = spec.package;
  manifest.entry_class = main;
  manifest.version = "1.0";
  app.apk.set_manifest(manifest);
  app.apk.set_classes(dex::write_dex(file));
  if (spec.real_dex_parts > 0) {
    app.apk = dex::to_real_container(app.apk, spec.real_dex_parts);
  }
  if (spec.self_modifying) {
    // The tamper resolves the swap target against the image that actually
    // defines the class (packers re-intern pools), exactly like the
    // DroidBench self-modifying samples.
    std::string native_name = main + "->smTamper";
    std::string cls = main;
    size_t call_pc = sm_call_pc;
    app.configure_runtime = [native_name, cls, call_pc](rt::Runtime& runtime) {
      runtime.register_native(
          native_name,
          [cls, call_pc](rt::NativeContext& ctx, std::span<rt::Value> args) {
            rt::RtClass* c = ctx.runtime.linker().resolve(cls);
            if (c == nullptr) return rt::Value::Null();
            rt::RtMethod* drive = c->find_declared("smDrive");
            if (drive == nullptr || !drive->code) return rt::Value::Null();
            const dex::DexFile& file = drive->image->file;
            uint32_t target = file.find_method_ref(
                cls, args.size() > 1 && args[1].test_value() == 0 ? "smCovert"
                                                                  : "smNormal");
            if (target == dex::kNoIndex) return rt::Value::Null();
            // Announced patch (generation-bumping); see RtMethod::patch_code_unit.
            drive->patch_code_unit(call_pc + 1, static_cast<uint16_t>(target));
            return rt::Value::Null();
          });
    };
  }
  return app;
}

std::vector<AppSpec> table1_apps() {
  return {
      {.name = "HTMLViewer", .package = "com.android.htmlviewer", .seed = 11,
       .target_units = 217, .full_coverage_style = true},
      {.name = "Calculator", .package = "com.android.calculator2", .seed = 12,
       .target_units = 2507, .full_coverage_style = true},
      {.name = "Calendar", .package = "com.android.calendar", .seed = 13,
       .target_units = 78598, .full_coverage_style = true},
      {.name = "Contacts", .package = "com.android.contacts", .seed = 14,
       .target_units = 103602, .full_coverage_style = true},
  };
}

std::vector<MarketAppInfo> table5_apps() {
  auto spec = [](const char* pkg, uint64_t seed, int flows) {
    AppSpec s;
    s.name = pkg;
    s.package = pkg;
    s.seed = seed;
    s.target_units = 2600;
    s.full_coverage_style = true;
    s.leak_flows = flows;
    return s;
  };
  return {
      {spec("com.lenovo.anyshare", 21, 4), "3.6.68", "A", "100 million"},
      {spec("com.moji.mjweather", 22, 5), "6.0102.02", "A", "1 million"},
      {spec("com.rongcai.show", 23, 3), "3.4.9", "A", "100 thousand"},
      {spec("com.wawoo.snipershootwar", 24, 4), "2.6", "B", "10 million"},
      {spec("com.wawoo.gunshootwar", 25, 5), "2.6", "B", "10 million"},
      {spec("com.alex.lookwifipassword", 26, 2), "2.9.6", "B", "100 thousand"},
      {spec("com.gome.eshopnew", 27, 3), "4.3.5", "C", "15.63 million"},
      {spec("com.szzc.ucar.pilot", 28, 5), "3.4.0", "C", "3.59 million"},
      {spec("com.pingan.pabank.activity", 29, 14), "2.6.9", "C", "7.9 million"},
  };
}

std::vector<AppSpec> fdroid_apps() {
  auto spec = [](const char* pkg, uint64_t seed, size_t units) {
    AppSpec s;
    s.name = pkg;
    s.package = pkg;
    s.seed = seed;
    s.target_units = units;
    s.guarded_fraction = 0.50;
    s.dead_fraction = 0.17;
    return s;
  };
  return {
      spec("be.ppareit.swiftp", 31, 8812),
      spec("fr.gaulupeau.apps.InThePoche", 32, 29231),
      spec("org.gnucash.android", 33, 56565),
      spec("org.liberty.android.fantastischmemopro", 34, 57575),
      spec("com.fastaccess.github", 35, 93913),
  };
}

GeneratedApp cfbench_java_app() {
  AppSpec spec;
  spec.name = "cfbench.java";
  spec.package = "eu.chainfire.cfbench.java";
  spec.seed = 41;
  spec.target_units = 4000;
  spec.full_coverage_style = true;
  return generate_app(spec);
}

GeneratedApp cfbench_native_app() {
  dex::DexBuilder b;
  std::string main = "Leu/chainfire/cfbench/NativeMain;";
  b.start_class(main, "Landroid/app/Activity;");
  b.add_native_method("kernel", "I", {"I"});
  uint16_t kernel = m(b, main, "kernel", "I", {"I"});
  MethodAssembler as(4, 1);  // this in v3
  auto loop = as.make_label();
  auto done = as.make_label();
  as.const16(0, 0);
  // Many short kernel invocations: native time dominates but the managed
  // call glue is still visible, like CF-Bench's native score.
  as.const16(1, 4096);
  as.bind(loop);
  as.if_test(Op::kIfGe, 0, 1, done);
  as.invoke(Op::kInvokeVirtual, kernel, {3, 0});
  as.move_result(2);
  as.add_lit8(0, 0, 1);
  as.goto_(loop);
  as.bind(done);
  as.return_void();
  b.add_virtual_method("onCreate", "V", {}, as.finish());

  GeneratedApp app;
  dex::DexFile file = std::move(b).build();
  app.code_units = file.total_code_units();
  dex::Manifest manifest;
  manifest.package = "eu.chainfire.cfbench.native";
  manifest.entry_class = main;
  app.apk.set_manifest(manifest);
  app.apk.set_classes(dex::write_dex(file));
  return app;
}

void register_cfbench_natives(rt::Runtime& rt) {
  rt.register_native(
      "Leu/chainfire/cfbench/NativeMain;->kernel",
      [](rt::NativeContext&, std::span<rt::Value> args) {
        // Real native work: xorshift mixing, ~200k iterations per call.
        uint64_t x = static_cast<uint64_t>(
                         args.size() > 1 ? args[1].test_value() : 1) |
                     1;
        for (int i = 0; i < 800; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
        }
        return rt::Value::Int(static_cast<int64_t>(x & 0x7fffffff));
      });
}

std::vector<AppSpec> launch_apps() {
  auto spec = [](const char* pkg, uint64_t seed, size_t units, int render_k) {
    AppSpec s;
    s.name = pkg;
    s.package = pkg;
    s.seed = seed;
    s.target_units = units;
    s.full_coverage_style = true;
    s.render_frames_k = render_k;
    return s;
  };
  return {
      spec("com.snapchat.android", 51, 9000, 575),
      spec("com.instagram.android", 52, 6500, 420),
      spec("com.whatsapp", 53, 2500, 125),
  };
}

}  // namespace dexlego::suite
