// DroidBench-analog benchmark suite: 134 generated samples (111 leaky, 23
// benign) mirroring the paper's evaluation set — the 119-sample public
// release plus the authors' 15 contributed samples (5 advanced reflection,
// 3 dynamic loading, 4 self-modifying, 3 unreachable taint flows).
//
// Every sample is a real LDEX app executed by the runtime and analyzed by
// the real engines; ground truth is sample-level (leak exists / not) with
// per-sample expected flow counts for the Table IV samples (Button1,
// Button3, EmulatorDetection1, ImplicitFlow1, PrivateDataLeak3 exist by
// name).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::suite {

struct Sample {
  std::string name;
  std::string category;
  bool leaky = false;
  int expected_flows = 0;  // ground-truth flow count (Table IV granularity)
  dex::Apk apk;
  // Registers sample natives (self-modification, key sources, JNI leaks).
  std::function<void(rt::Runtime&)> configure_runtime;
};

struct DroidBench {
  std::vector<Sample> samples;

  const Sample* find(const std::string& name) const;
  size_t leaky_count() const;
  size_t benign_count() const;
};

// Builds the full 134-sample suite (deterministic).
DroidBench build_droidbench();

}  // namespace dexlego::suite
