#include "src/core/collector.h"

#include "src/bytecode/insn.h"
#include "src/runtime/object.h"
#include "src/support/bytes.h"
#include "src/support/hash.h"
#include "src/support/log.h"

namespace dexlego::core {

uint64_t TreeNode::fingerprint() const {
  support::Fnv1a h;
  h.add(il.size());
  for (const ILEntry& e : il) {
    h.add(e.pc);
    for (uint16_t u : e.units) h.add(u);
    if (e.ref) {
      h.add(static_cast<uint64_t>(e.ref->kind));
      for (const std::string& p : e.ref->parts) h.add(support::fnv1a(p));
    }
  }
  h.add(sm_start);
  h.add(sm_end ? *sm_end + 1 : 0);
  for (const auto& child : children) h.add(child->fingerprint());
  return h.digest();
}

std::optional<SymRef> symbolic_ref(const rt::RtMethod& method,
                                   std::span<const uint16_t> code, size_t pc) {
  bc::Insn insn = bc::decode_at(code, pc);
  bc::RefKind kind = bc::op_info(insn.op).ref;
  if (kind == bc::RefKind::kNone) return std::nullopt;
  const dex::DexFile& file = method.image->file;
  SymRef ref;
  ref.kind = kind;
  switch (kind) {
    case bc::RefKind::kString:
      ref.parts = {file.string_at(insn.idx)};
      break;
    case bc::RefKind::kType:
      ref.parts = {file.type_descriptor(insn.idx)};
      break;
    case bc::RefKind::kField: {
      const dex::FieldRef& f = file.fields.at(insn.idx);
      ref.parts = {file.type_descriptor(f.class_type), file.type_descriptor(f.type),
                   file.string_at(f.name)};
      break;
    }
    case bc::RefKind::kMethod: {
      const dex::MethodRef& m = file.methods.at(insn.idx);
      const dex::Proto& proto = file.protos.at(m.proto);
      ref.parts = {file.type_descriptor(m.class_type), file.string_at(m.name),
                   file.type_descriptor(proto.return_type)};
      for (uint32_t p : proto.param_types) {
        ref.parts.push_back(file.type_descriptor(p));
      }
      break;
    }
    case bc::RefKind::kNone:
      break;
  }
  return ref;
}

MethodKey Collector::key_of(const rt::RtMethod& method) {
  return MethodKey{
      method.declaring != nullptr ? method.declaring->descriptor : "?",
      method.name, method.shorty};
}

namespace {

std::vector<CollectedField> snapshot_statics(const rt::RtClass& cls) {
  std::vector<CollectedField> fields;
  for (const rt::RtField& f : cls.static_fields) {
    CollectedField cf;
    cf.name = f.name;
    cf.type_descriptor = f.type_descriptor;
    cf.access_flags = f.access_flags;
    const rt::Value& v = cls.static_values.at(f.slot);
    if (!v.is_ref()) {
      cf.static_value.kind = CollectedValue::Kind::kInt;
      cf.static_value.i = v.i;
    } else if (v.ref != nullptr && v.ref->kind == rt::Object::Kind::kString) {
      cf.static_value.kind = CollectedValue::Kind::kString;
      cf.static_value.s = v.ref->str;
    } else {
      cf.static_value.kind = CollectedValue::Kind::kNull;
    }
    fields.push_back(std::move(cf));
  }
  return fields;
}

}  // namespace

void Collector::on_class_loaded(rt::RtClass& cls) {
  if (cls.is_framework) return;
  if (class_index_.contains(cls.descriptor)) return;

  CollectedClass out;
  out.descriptor = cls.descriptor;
  out.super_descriptor = cls.super_descriptor;
  out.access_flags = cls.access_flags;
  for (const rt::RtField& f : cls.instance_fields) {
    CollectedField cf;
    cf.name = f.name;
    cf.type_descriptor = f.type_descriptor;
    cf.access_flags = f.access_flags;
    out.instance_fields.push_back(std::move(cf));
  }
  out.static_fields = snapshot_statics(cls);
  class_index_.emplace(cls.descriptor, output_.classes.size());
  output_.classes.push_back(std::move(out));
}

void Collector::on_class_initialized(rt::RtClass& cls) {
  if (cls.is_framework) return;
  // Load always precedes initialization, but be defensive about hooks
  // attached mid-run (force execution re-runs apps on a shared collector).
  auto it = class_index_.find(cls.descriptor);
  if (it == class_index_.end()) {
    on_class_loaded(cls);
    it = class_index_.find(cls.descriptor);
    if (it == class_index_.end()) return;
  }
  output_.classes[it->second].static_fields = snapshot_statics(cls);
}

MethodRecord& Collector::record_for(rt::RtMethod& method) {
  MethodKey key = key_of(method);
  auto it = output_.methods.find(key);
  if (it != output_.methods.end()) return it->second;

  MethodRecord rec;
  rec.key = key;
  rec.access_flags = method.access_flags;
  rec.is_native = method.is_native();
  if (method.code) {
    rec.registers_size = method.code->registers_size;
    rec.ins_size = method.code->ins_size;
    rec.tries = method.code->tries;
    rec.lines = method.code->lines;
  }
  // Proto descriptors straight from the defining image.
  if (method.image != nullptr) {
    const dex::DexFile& file = method.image->file;
    const dex::MethodRef& mref = file.methods.at(method.dex_method_idx);
    const dex::Proto& proto = file.protos.at(mref.proto);
    rec.return_type = file.type_descriptor(proto.return_type);
    for (uint32_t p : proto.param_types) {
      rec.param_types.push_back(file.type_descriptor(p));
    }
  }
  return output_.methods.emplace(std::move(key), std::move(rec)).first->second;
}

void Collector::on_method_entry(rt::RtMethod& method) {
  Activation act;
  act.key = key_of(method);
  act.bytecode = method.code != nullptr;
  MethodRecord& rec = record_for(method);
  ++rec.executions;
  if (act.bytecode) {
    act.root = std::make_unique<TreeNode>();
    act.current = act.root.get();
  }
  stack_.push_back(std::move(act));
}

void Collector::on_instruction(rt::RtMethod& method, uint32_t dex_pc,
                               std::span<const uint16_t> code) {
  ++output_.total_instructions_observed;
  if (stack_.empty() || !stack_.back().bytecode) return;
  Activation& act = stack_.back();
  if (act.key.name != method.name) return;  // defensive: mismatched frame

  // Snapshot the instruction's units *now* — the array may change later.
  ILEntry entry;
  entry.pc = static_cast<uint16_t>(dex_pc);
  size_t width;
  try {
    width = bc::width_at(code, dex_pc);
    entry.units.assign(code.begin() + dex_pc, code.begin() + dex_pc + width);
    entry.ref = symbolic_ref(method, code, dex_pc);
    bc::Insn insn = bc::decode_at(code, dex_pc);
    if (insn.op == bc::Op::kPackedSwitch) {
      // Payload units are data the interpreter never "executes"; snapshot
      // them as metadata so the reassembler can rebuild the switch.
      bc::SwitchPayload payload = bc::read_switch_payload(code, dex_pc, insn);
      SwitchSnapshot snap;
      snap.first_key = payload.first_key;
      for (int32_t rel : payload.rel_targets) {
        snap.target_pcs.push_back(
            static_cast<uint16_t>(static_cast<int32_t>(dex_pc) + rel));
      }
      entry.switch_payload = std::move(snap);
    }
  } catch (const support::ParseError&) {
    return;  // undecodable (runtime raises VerifyError); nothing to collect
  } catch (const std::out_of_range&) {
    return;
  }

  TreeNode* current = act.current;
  auto it = current->iim.find(entry.pc);
  if (it != current->iim.end()) {
    const ILEntry& old = current->il[it->second];
    if (old.same_instruction(entry)) {
      return;  // same instruction at same index: already recorded
    }
    // Divergence: the instruction at this dex_pc changed since we recorded
    // it — a new layer of self-modifying code (Algorithm 1 lines 9-13).
    auto child = std::make_unique<TreeNode>();
    child->parent = current;
    child->sm_start = entry.pc;
    current->children.push_back(std::move(child));
    act.current = current->children.back().get();
    current = act.current;
    ++output_.divergences_detected;
  } else if (current->parent != nullptr) {
    auto pit = current->parent->iim.find(entry.pc);
    if (pit != current->parent->iim.end()) {
      const ILEntry& old = current->parent->il[pit->second];
      if (old.same_instruction(entry)) {
        // Convergence: this divergence layer ended (Algorithm 1 lines 17-27).
        current->sm_end = entry.pc;
        act.current = current->parent;
        return;
      }
    }
  }

  current->iim.emplace(entry.pc, current->il.size());
  current->il.push_back(std::move(entry));
}

void Collector::finish_activation(Activation& act) {
  if (!act.bytecode || act.root == nullptr || act.root->il.empty()) return;
  auto it = output_.methods.find(act.key);
  if (it == output_.methods.end()) return;
  MethodRecord& rec = it->second;
  uint64_t fp = act.root->fingerprint();
  std::set<uint64_t>& seen = tree_fingerprints_[act.key];
  if (seen.contains(fp)) return;  // keep unique trees only
  if (rec.trees.size() >= options_.max_variants) {
    ++rec.dropped_trees;
    DL_DEBUG << "variant cap reached for " << rec.key.pretty();
    return;
  }
  seen.insert(fp);
  rec.trees.push_back(std::move(act.root));
}

void Collector::on_method_exit(rt::RtMethod& method) {
  (void)method;
  if (stack_.empty()) return;
  finish_activation(stack_.back());
  stack_.pop_back();
}

void Collector::on_reflective_invoke(rt::RtMethod& caller, uint32_t dex_pc,
                                     rt::RtMethod& target) {
  if (!options_.collect_reflection) return;
  MethodRecord& rec = record_for(caller);
  SymRef ref;
  ref.kind = bc::RefKind::kMethod;
  const dex::DexFile& file = target.image->file;
  const dex::MethodRef& mref = file.methods.at(target.dex_method_idx);
  const dex::Proto& proto = file.protos.at(mref.proto);
  ref.parts = {target.declaring->descriptor, target.name,
               file.type_descriptor(proto.return_type)};
  for (uint32_t p : proto.param_types) ref.parts.push_back(file.type_descriptor(p));
  // Record whether the target is static so the reassembler can pick the
  // invoke opcode; encoded as an extra trailing marker part.
  ref.parts.push_back(target.is_static() ? "#static" : "#virtual");
  auto [it, inserted] =
      rec.reflection_targets.emplace(static_cast<uint16_t>(dex_pc), ref);
  if (inserted) ++output_.reflection_sites;
  else if (!(it->second == ref)) {
    DL_DEBUG << "multiple reflective targets at " << rec.key.pretty() << "@"
             << dex_pc << " — keeping first";
  }
}

void merge_collection(CollectionOutput& into, CollectionOutput&& from,
                      size_t max_variants) {
  std::set<std::string> have_classes;
  for (const CollectedClass& c : into.classes) have_classes.insert(c.descriptor);
  for (CollectedClass& c : from.classes) {
    if (have_classes.insert(c.descriptor).second) {
      into.classes.push_back(std::move(c));
    }
  }

  for (auto& [key, rec] : from.methods) {
    auto it = into.methods.find(key);
    if (it == into.methods.end()) {
      into.methods.emplace(key, std::move(rec));
      continue;
    }
    MethodRecord& mine = it->second;
    mine.executions += rec.executions;
    mine.dropped_trees += rec.dropped_trees;
    std::set<uint64_t> seen;
    for (const auto& tree : mine.trees) seen.insert(tree->fingerprint());
    for (auto& tree : rec.trees) {
      if (!seen.insert(tree->fingerprint()).second) continue;
      if (mine.trees.size() >= max_variants) {
        ++mine.dropped_trees;
        continue;
      }
      mine.trees.push_back(std::move(tree));
    }
    for (auto& [pc, ref] : rec.reflection_targets) {
      mine.reflection_targets.emplace(pc, std::move(ref));  // first one wins
    }
  }

  into.total_instructions_observed += from.total_instructions_observed;
  into.divergences_detected += from.divergences_detected;
  // The site counter mirrors the per-method maps exactly (the collector
  // increments it only on insert), so recompute rather than guess overlap.
  into.reflection_sites = 0;
  for (const auto& [key, rec] : into.methods) {
    into.reflection_sites += rec.reflection_targets.size();
  }
}

CollectionOutput Collector::take_output() {
  while (!stack_.empty()) {
    finish_activation(stack_.back());
    stack_.pop_back();
  }
  // The fingerprint cache mirrors output_.methods[...].trees, which the move
  // empties — drop it so a reused Collector dedups against reality.
  tree_fingerprints_.clear();
  return std::move(output_);
}

}  // namespace dexlego::core
