// Serialization of the collection output into the five collection files of
// paper Fig. 2 (class data, field data, static values, method data,
// bytecode). The files are the interface between the online collection phase
// and the *offline* reassembling phase; their combined size is the
// "Dump File Size" column of Table VI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/collection.h"

namespace dexlego::core {

struct CollectionFiles {
  std::vector<uint8_t> class_data;
  std::vector<uint8_t> field_data;
  std::vector<uint8_t> static_values;
  std::vector<uint8_t> method_data;
  std::vector<uint8_t> bytecode;

  size_t total_size() const {
    return class_data.size() + field_data.size() + static_values.size() +
           method_data.size() + bytecode.size();
  }

  // Writes the five files into `dir` with their canonical names; loads back.
  void save(const std::string& dir) const;
  static CollectionFiles load(const std::string& dir);
};

// Round-trippable encoding: decode(encode(x)) preserves every field the
// reassembler consumes (property-tested).
CollectionFiles encode_collection(const CollectionOutput& output);
CollectionOutput decode_collection(const CollectionFiles& files);

// Canonical byte form of one collection tree — the same encoding the
// bytecode file uses per tree. This is the content the batch pipeline's
// DedupStore keys on: equal trees serialize to equal bytes.
std::vector<uint8_t> serialize_tree(const TreeNode& tree);

}  // namespace dexlego::core
