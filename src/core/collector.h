// The JIT collection hook — DexLego's online half. Implements Algorithm 1
// (comparison-based instruction collection with divergence/convergence
// detection) on the interpreter's per-instruction callback, plus the class/
// field/static-value collection on the class-linker callbacks and the
// reflection-target recording on the reflective-invoke callback.
//
// A Collector outlives individual Runtime instances: force execution and
// fuzzing run the app many times, and trees accumulate per MethodKey across
// runs (unique trees only, capped by `max_variants`). Uniqueness is decided
// against a cached per-method fingerprint set, the in-collector half of the
// dedup that pipeline::DedupStore extends across apps and worker threads.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/core/collection.h"
#include "src/runtime/hooks.h"

namespace dexlego::core {

class Collector : public rt::RuntimeHooks {
 public:
  struct Options {
    size_t max_variants = 8;  // unique trees kept per method
    bool collect_reflection = true;
  };

  Collector() : options_(Options{}) {}
  explicit Collector(const Options& options) : options_(options) {}

  // --- RuntimeHooks ---
  uint32_t subscribed_events() const override {
    return rt::hook_mask(rt::HookEvent::kClassLoaded) |
           rt::hook_mask(rt::HookEvent::kClassInitialized) |
           rt::hook_mask(rt::HookEvent::kMethodEntry) |
           rt::hook_mask(rt::HookEvent::kMethodExit) |
           rt::hook_mask(rt::HookEvent::kInstruction) |
           rt::hook_mask(rt::HookEvent::kReflectiveInvoke);
  }
  // Structure is captured at *load* so classes reached only reflectively
  // (Class.forName without a subsequent call) survive into the revealed
  // file; static values are re-snapshotted at *initialization* so they
  // reflect the post-<clinit> state. Split found by the structural fuzzer:
  // a mutant that died between forName and the first call produced a
  // revealed app missing the loaded class (replay file
  // tests/data/fuzz/structural-loaded-class-fixed.lfz).
  void on_class_loaded(rt::RtClass& cls) override;
  void on_class_initialized(rt::RtClass& cls) override;
  void on_method_entry(rt::RtMethod& method) override;
  void on_method_exit(rt::RtMethod& method) override;
  void on_instruction(rt::RtMethod& method, uint32_t dex_pc,
                      std::span<const uint16_t> code) override;
  void on_reflective_invoke(rt::RtMethod& caller, uint32_t dex_pc,
                            rt::RtMethod& target) override;

  // Finalizes any dangling activations and returns the collection output.
  CollectionOutput take_output();
  const CollectionOutput& output() const { return output_; }

 private:
  struct Activation {
    MethodKey key;
    std::unique_ptr<TreeNode> root;
    TreeNode* current = nullptr;
    bool bytecode = false;  // native/abstract activations collect nothing
  };

  MethodRecord& record_for(rt::RtMethod& method);
  void finish_activation(Activation& act);
  static MethodKey key_of(const rt::RtMethod& method);

  Options options_;
  CollectionOutput output_;
  std::vector<Activation> stack_;
  // descriptor -> index into output_.classes, for the init-time re-snapshot.
  std::map<std::string, size_t> class_index_;
  // Fingerprints of the trees already stored per method — mirrors
  // output_.methods[key].trees so finish_activation dedups in O(log n)
  // instead of re-hashing every stored tree.
  std::map<MethodKey, std::set<uint64_t>> tree_fingerprints_;
};

// Builds the symbolic form of the pool operand of the instruction at `pc`
// in `code`, resolved against the method's defining image. Returns nullopt
// for instructions without pool operands. Exposed for tests.
std::optional<SymRef> symbolic_ref(const rt::RtMethod& method,
                                   std::span<const uint16_t> code, size_t pc);

}  // namespace dexlego::core
