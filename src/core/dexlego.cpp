#include "src/core/dexlego.h"

#include "src/bytecode/verify_code.h"
#include "src/dex/io.h"
#include "src/dex/real/real_dex.h"
#include "src/support/log.h"

namespace dexlego::core {

void default_driver(rt::Runtime& rt, int run_index) {
  (void)run_index;
  rt::ExecOutcome out = rt.launch();
  if (!out.completed) {
    DL_INFO << "launch did not complete: " << out.abort_reason
            << out.exception_type;
  }
  for (int id : rt.ui_clickable_ids()) rt.fire_click(id);
  rt.call_activity_method("onPause");
  rt.call_activity_method("onDestroy");
}

CollectionOutput DexLego::collect(const dex::Apk& apk,
                                  const DexLegoOptions& options) {
  Collector collector(options.collector);
  for (int run = 0; run < options.runs; ++run) {
    rt::Runtime runtime(options.runtime);
    if (options.configure_runtime) options.configure_runtime(runtime);
    runtime.add_hooks(&collector);
    runtime.install(apk);
    if (options.driver) {
      options.driver(runtime, run);
    } else {
      default_driver(runtime, run);
    }
    runtime.remove_hooks(&collector);
  }
  return collector.take_output();
}

RevealResult DexLego::reveal(const dex::Apk& apk) {
  CollectionFiles files = encode_collection(collect(apk, options_));
  return reassemble_files(files, apk, options_.reassemble);
}

RevealResult DexLego::reassemble_files(const CollectionFiles& files,
                                       const dex::Apk& original,
                                       const ReassembleOptions& options) {
  RevealResult result;
  result.files = files;
  result.collection = decode_collection(files);
  ReassembleResult ra = reassemble(result.collection, options);
  result.stats = ra.stats;

  dex::VerifyResult verify = bc::verify_dex(ra.file);
  result.verified = verify.ok();
  result.verify_errors = verify.message();
  if (!result.verified) {
    DL_WARN << "reassembled DEX failed verification:\n" << result.verify_errors;
  }

  // Replace the DEX inside the original APK (paper: "we leverage the Android
  // Asset Packaging Tool ... to replace the DEX file in the original APK").
  // Real-DEX entries are stripped so the revealed APK carries exactly one
  // container — the revealed bytes are identical whichever container the
  // input shipped (ARCHITECTURE invariant 12).
  result.revealed_apk = original;
  dex::strip_real_classes(result.revealed_apk);
  result.revealed_apk.set_classes(dex::write_dex(ra.file));
  return result;
}

}  // namespace dexlego::core
