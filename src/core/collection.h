// Data model of DexLego's JIT collection — the paper's Fig. 2/Fig. 3
// structures. A method execution produces a *collection tree*: the root
// holds the baseline Instruction List (IL) in first-execution order with an
// Instruction Index Map (IIM) from dex_pc to IL position; every divergence
// caused by self-modifying code forks a child node bounded by
// sm_start/sm_end. Unique trees per method are kept and later merged into
// method variants by the reassembler.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/bytecode/opcodes.h"
#include "src/dex/dex.h"

namespace dexlego::core {

// Symbolic form of a pool reference, resolved at collection time so the
// offline reassembling phase is independent of the original images.
//   kString: parts = {content}
//   kType:   parts = {descriptor}
//   kField:  parts = {class, type, name}
//   kMethod: parts = {class, name, return_type, param0, param1, ...}
struct SymRef {
  bc::RefKind kind = bc::RefKind::kNone;
  std::vector<std::string> parts;

  bool operator==(const SymRef&) const = default;
};

// Snapshot of a packed-switch payload taken when the switch instruction
// executes (payload units are data, never "executed", so the collector
// records them as instruction metadata; targets are absolute original pcs).
struct SwitchSnapshot {
  int32_t first_key = 0;
  std::vector<uint16_t> target_pcs;

  bool operator==(const SwitchSnapshot&) const = default;
};

// One recorded instruction: its original dex_pc, its raw code units at the
// moment of execution, and the symbolic target of its pool operand (if any).
struct ILEntry {
  uint16_t pc = 0;
  std::vector<uint16_t> units;
  std::optional<SymRef> ref;
  std::optional<SwitchSnapshot> switch_payload;

  bool same_instruction(const ILEntry& other) const {
    return pc == other.pc && units == other.units && ref == other.ref;
  }
};

// TreeNode per Fig. 3: IL + IIM + divergence bounds + children.
struct TreeNode {
  std::vector<ILEntry> il;
  std::map<uint16_t, size_t> iim;  // dex_pc -> index in il
  uint16_t sm_start = 0;           // divergence start (children only)
  std::optional<uint16_t> sm_end;  // convergence pc; empty if never converged
  TreeNode* parent = nullptr;
  std::vector<std::unique_ptr<TreeNode>> children;

  uint64_t fingerprint() const;  // structural hash for tree dedup
};

// Identity of a method across runtimes and runs.
struct MethodKey {
  std::string class_descriptor;
  std::string name;
  std::string shorty;

  auto operator<=>(const MethodKey&) const = default;
  std::string pretty() const { return class_descriptor + "->" + name + shorty; }
};

// Everything collected about one method: frame metadata, the set of unique
// collection trees, the original exception table / line table (with original
// pcs; the reassembler remaps them) and reflection replacements keyed by the
// call-site dex_pc.
struct MethodRecord {
  MethodKey key;
  uint32_t access_flags = 0;
  uint16_t registers_size = 0;
  uint16_t ins_size = 0;
  std::string return_type;               // descriptor
  std::vector<std::string> param_types;  // descriptors
  bool is_native = false;
  std::vector<std::unique_ptr<TreeNode>> trees;  // unique per fingerprint
  std::vector<dex::TryItem> tries;   // original-pc ranges
  std::vector<dex::LineEntry> lines; // original-pc line table
  // dex_pc of a reflective Method.invoke call -> resolved direct target.
  std::map<uint16_t, SymRef> reflection_targets;
  uint64_t executions = 0;
  uint64_t dropped_trees = 0;  // unique trees beyond the variant cap
};

// Static value snapshot taken when the class linker initializes the class
// (paper IV-C: name, type and initial value of each static field).
struct CollectedValue {
  enum class Kind : uint8_t { kInt, kString, kNull } kind = Kind::kNull;
  int64_t i = 0;
  std::string s;
};

struct CollectedField {
  std::string name;
  std::string type_descriptor;
  uint32_t access_flags = 0;
  CollectedValue static_value;  // statics only
};

struct CollectedClass {
  std::string descriptor;
  std::string super_descriptor;
  uint32_t access_flags = 0;
  std::vector<CollectedField> static_fields;
  std::vector<CollectedField> instance_fields;
};

// The full collection output, in-memory form of the five collection files.
struct CollectionOutput {
  std::vector<CollectedClass> classes;                // class + field + static data
  std::map<MethodKey, MethodRecord> methods;          // method data + bytecode
  uint64_t total_instructions_observed = 0;           // raw per-step counter
  uint64_t divergences_detected = 0;                  // child nodes created
  uint64_t reflection_sites = 0;

  const MethodRecord* find_method(const MethodKey& key) const {
    auto it = methods.find(key);
    return it == methods.end() ? nullptr : &it->second;
  }
};

// Merges `from` into `into` with the Collector's own dedup semantics:
// classes union by descriptor (first arrival wins, order preserved), method
// records accumulate unique trees by fingerprint under the `max_variants`
// cap, reflection targets keep the first recorded target per call site.
// Deterministic — merging the same outputs in the same order always yields
// the same result, which is how the batch pipeline makes per-plan-unit
// collection sharding byte-identical to a sequential run.
void merge_collection(CollectionOutput& into, CollectionOutput&& from,
                      size_t max_variants);

}  // namespace dexlego::core
