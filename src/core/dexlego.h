// DexLego end-to-end pipeline (paper Fig. 1): execute the target APK inside
// the instrumented runtime (just-in-time collection), optionally under a
// caller-provided driver (fuzzer, force execution, simple launch), then
// reassemble the collection files into a new DEX and splice it back into the
// original APK. The revealed APK is what gets handed to static analysis.
#pragma once

#include <functional>
#include <string>

#include "src/core/collector.h"
#include "src/core/files.h"
#include "src/core/reassembler.h"
#include "src/dex/archive.h"
#include "src/runtime/runtime.h"

namespace dexlego::core {

struct DexLegoOptions {
  Collector::Options collector;
  ReassembleOptions reassemble;
  rt::RuntimeConfig runtime;
  // Called on each fresh runtime before execution — registers the sample's
  // native methods (JNI analog) and any packer natives.
  std::function<void(rt::Runtime&)> configure_runtime;
  // Exercises the app. Default: launch + fire every registered click handler.
  // Called once per run; `run_index` supports multi-run drivers.
  std::function<void(rt::Runtime&, int run_index)> driver;
  int runs = 1;  // fresh runtime per run; trees accumulate across runs
};

struct RevealResult {
  dex::Apk revealed_apk;          // original APK with the DEX replaced
  CollectionFiles files;          // the five collection files (Table VI sizes)
  ReassembleStats stats;
  CollectionOutput collection;    // decoded form, for inspection
  bool verified = false;          // reassembled DEX passed the full verifier
  std::string verify_errors;
};

class DexLego {
 public:
  explicit DexLego(DexLegoOptions options = {}) : options_(std::move(options)) {}

  // Runs collection + reassembling on the APK. The collection phase is
  // online (instrumented execution); reassembling is offline (works only on
  // the collection files, mirroring the paper's split).
  RevealResult reveal(const dex::Apk& apk);

  // Online half only: `options.runs` driver executions against fresh
  // runtimes with a collector attached, returning the raw collection.
  // reveal() is collect + encode + reassemble_files; the batch pipeline
  // calls this directly for its per-plan-unit collection runs.
  static CollectionOutput collect(const dex::Apk& apk,
                                  const DexLegoOptions& options);

  // Offline half only: collection files -> revealed APK (manifest and assets
  // copied from `original`).
  static RevealResult reassemble_files(const CollectionFiles& files,
                                       const dex::Apk& original,
                                       const ReassembleOptions& options = {});

 private:
  DexLegoOptions options_;
};

// The default driver: launch the entry activity, then fire every click
// handler once, then the remaining lifecycle callbacks.
void default_driver(rt::Runtime& rt, int run_index);

}  // namespace dexlego::core
