#include "src/core/semantic_check.h"

#include <map>
#include <sstream>

#include "src/bytecode/insn.h"
#include "src/support/bytes.h"

namespace dexlego::core {

namespace {

// Canonical token for an instruction: opcode plus the *symbolic* operand
// (pool indices differ between files; offsets differ between layouts).
std::string token_of(const dex::DexFile& file, const bc::Insn& insn) {
  std::string tok(bc::op_info(insn.op).name);
  switch (bc::op_info(insn.op).ref) {
    case bc::RefKind::kString:
      tok += " s:" + file.string_at(insn.idx);
      break;
    case bc::RefKind::kType:
      tok += " t:" + file.type_descriptor(insn.idx);
      break;
    case bc::RefKind::kField:
      tok += " f:" + file.pretty_field(insn.idx);
      break;
    case bc::RefKind::kMethod:
      tok += " m:" + file.pretty_method(insn.idx);
      break;
    case bc::RefKind::kNone:
      break;
  }
  return tok;
}

std::map<std::string, size_t> tokens_of(const dex::DexFile& file,
                                        const dex::CodeItem& code) {
  std::map<std::string, size_t> tokens;
  std::span<const uint16_t> insns(code.insns);
  size_t pc = 0;
  while (pc < insns.size()) {
    bc::Insn insn;
    try {
      insn = bc::decode_at(insns, pc);
    } catch (const support::ParseError&) {
      break;
    }
    if (insn.op != bc::Op::kPayload && insn.op != bc::Op::kNop) {
      ++tokens[token_of(file, insn)];
    }
    pc += insn.width;
  }
  return tokens;
}

std::string method_key(const dex::DexFile& file, uint32_t method_ref) {
  const dex::MethodRef& ref = file.methods.at(method_ref);
  std::string name = file.string_at(ref.name);
  // Method variants fold into their base method.
  auto dollar = name.find("$v");
  if (dollar != std::string::npos) name = name.substr(0, dollar);
  return file.type_descriptor(ref.class_type) + "->" + name +
         file.proto_shorty(ref.proto);
}

}  // namespace

std::string ContainmentReport::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAILED") << " (" << methods_checked << " methods";
  if (!missing.empty()) os << ", " << missing.size() << " missing tokens";
  os << ")";
  return os.str();
}

ContainmentReport check_containment(const dex::DexFile& original,
                                    const dex::DexFile& revealed) {
  ContainmentReport report;

  // Accumulate revealed tokens per base method (variants merged).
  std::map<std::string, std::map<std::string, size_t>> revealed_tokens;
  for (const dex::ClassDef& cls : revealed.classes) {
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (!m.code) continue;
        auto tokens = tokens_of(revealed, *m.code);
        auto& slot = revealed_tokens[method_key(revealed, m.method_ref)];
        for (const auto& [tok, count] : tokens) slot[tok] += count;
      }
    }
  }

  report.ok = true;
  for (const dex::ClassDef& cls : original.classes) {
    for (const auto* methods : {&cls.direct_methods, &cls.virtual_methods}) {
      for (const dex::MethodDef& m : *methods) {
        if (!m.code) continue;
        ++report.methods_checked;
        std::string key = method_key(original, m.method_ref);
        auto it = revealed_tokens.find(key);
        auto orig_tokens = tokens_of(original, *m.code);
        if (it == revealed_tokens.end()) {
          report.ok = false;
          report.missing.push_back(key + ": method absent");
          continue;
        }
        for (const auto& [tok, count] : orig_tokens) {
          auto rit = it->second.find(tok);
          size_t have = rit == it->second.end() ? 0 : rit->second;
          if (have < count) {
            report.ok = false;
            report.missing.push_back(key + ": " + tok);
          }
        }
      }
    }
  }
  return report;
}

}  // namespace dexlego::core
