#include "src/core/reassembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "src/bytecode/assembler.h"
#include "src/bytecode/insn.h"
#include "src/dex/builder.h"
#include "src/ir/roundtrip.h"
#include "src/support/log.h"

namespace dexlego::core {

using bc::Insn;
using bc::Op;

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

// One method-body emitter. Works on a flat item list: instructions carried
// over from the tree (with their owning node for target resolution), guards,
// synthetic gotos, the landing pad and switch payloads.
class TreeEmitter {
 public:
  TreeEmitter(dex::DexBuilder& builder, const MethodRecord& rec,
              const TreeNode& root, const ReassembleOptions& options,
              ReassembleStats& stats, size_t guard_field_base)
      : builder_(builder),
        rec_(rec),
        root_(root),
        options_(options),
        stats_(stats),
        guard_field_base_(guard_field_base) {}

  dex::CodeItem emit();
  size_t guards_used() const { return guards_used_; }

 private:
  struct Item {
    enum class Kind { kInsn, kGuard, kGoto, kPad, kPayload } kind;
    const TreeNode* node = nullptr;  // kInsn: owning node
    size_t il_index = 0;             // kInsn
    uint32_t guard_field = 0;        // kGuard: field pool index (new file)
    size_t guard_target = 0;         // kGuard: item index of child block start
    // kGoto: original-pc target searched from `node`
    uint16_t goto_pc = 0;
    // kPayload: owning switch item index
    size_t switch_item = 0;
    size_t offset = 0;  // filled by layout
    size_t width = 0;
  };

  void build_node(const TreeNode& node);
  size_t item_width(const Item& item) const;
  // Resolves an original pc starting from `node` (self, ancestors, then
  // descendants). Returns the item index or pad_item_.
  size_t resolve(const TreeNode* node, uint16_t pc);
  size_t find_in(const TreeNode* node, uint16_t pc) const;
  uint8_t guard_reg() const { return static_cast<uint8_t>(frame_registers_ - 1); }
  uint32_t new_pool_index(const SymRef& ref);
  void emit_insn_units(const Item& item, std::vector<uint16_t>& out);

  dex::DexBuilder& builder_;
  const MethodRecord& rec_;
  const TreeNode& root_;
  const ReassembleOptions& options_;
  ReassembleStats& stats_;
  size_t guard_field_base_;
  size_t guards_used_ = 0;

  std::vector<Item> items_;
  std::map<std::pair<const TreeNode*, uint16_t>, size_t> insn_item_;
  std::map<const TreeNode*, size_t> child_block_start_;
  std::vector<std::pair<const TreeNode*, size_t>> child_guard_items_;
  std::map<const ILEntry*, size_t> payload_item_;
  size_t pad_item_ = SIZE_MAX;
  bool pad_referenced_ = false;
  uint16_t frame_registers_ = 0;
};

void TreeEmitter::build_node(const TreeNode& node) {
  for (size_t i = 0; i < node.il.size(); ++i) {
    const ILEntry& entry = node.il[i];
    // Divergence guards for children forking at this pc: the guard branches
    // to the child block (emitted after the main stream), the fallthrough
    // executes this node's version (paper Code 4 structure).
    for (const auto& child : node.children) {
      if (child->sm_start == entry.pc && !child->il.empty()) {
        Item guard;
        guard.kind = Item::Kind::kGuard;
        guard.node = &node;
        std::string field_name =
            sanitize(rec_.key.class_descriptor + "_" + rec_.key.name) + "_" +
            std::to_string(guard_field_base_ + guards_used_);
        guard.guard_field =
            builder_.intern_field(kModificationClass, "I", field_name);
        guard.guard_target = SIZE_MAX;  // patched once the child block exists
        child_guard_items_.emplace_back(child.get(), items_.size());
        items_.push_back(guard);
        ++guards_used_;
        ++stats_.guards;
      }
    }

    Item item;
    item.kind = Item::Kind::kInsn;
    item.node = &node;
    item.il_index = i;
    insn_item_[{&node, entry.pc}] = items_.size();
    items_.push_back(item);

    // Explicit fallthrough: if the next recorded instruction of this node is
    // not the natural successor, synthesize a goto to it.
    Insn insn = bc::decode_at(entry.units, 0);
    if (bc::can_continue(insn.op)) {
      uint16_t fall_pc = static_cast<uint16_t>(entry.pc + insn.width);
      bool natural = (i + 1 < node.il.size()) && node.il[i + 1].pc == fall_pc;
      if (!natural) {
        Item go;
        go.kind = Item::Kind::kGoto;
        go.node = &node;
        go.goto_pc = fall_pc;
        items_.push_back(go);
      }
    }
  }

  // Child blocks follow the node's main stream.
  for (const auto& child : node.children) {
    if (child->il.empty()) continue;
    child_block_start_[child.get()] = items_.size();
    build_node(*child);
  }
}

size_t TreeEmitter::item_width(const Item& item) const {
  switch (item.kind) {
    case Item::Kind::kInsn:
      return item.node->il[item.il_index].units.size();
    case Item::Kind::kGuard:
      return 4;  // sget (2) + if-eqz (2)
    case Item::Kind::kGoto:
      return 2;
    case Item::Kind::kPad:
      // return-void (1), or const (1-2 units) + return (1).
      return rec_.return_type == "V" ? 1 : 3;
    case Item::Kind::kPayload: {
      const Item& sw = items_[item.switch_item];
      const ILEntry& entry = sw.node->il[sw.il_index];
      return 4 + (entry.switch_payload ? entry.switch_payload->target_pcs.size()
                                       : 0);
    }
  }
  return 0;
}

size_t TreeEmitter::find_in(const TreeNode* node, uint16_t pc) const {
  auto it = insn_item_.find({node, pc});
  return it == insn_item_.end() ? SIZE_MAX : it->second;
}

size_t TreeEmitter::resolve(const TreeNode* node, uint16_t pc) {
  // Own IL, then ancestors (convergence), then descendants (code first
  // executed while a divergence layer was active).
  for (const TreeNode* n = node; n != nullptr; n = n->parent) {
    size_t found = find_in(n, pc);
    if (found != SIZE_MAX) return found;
  }
  std::vector<const TreeNode*> queue;
  for (const auto& c : node->children) queue.push_back(c.get());
  while (!queue.empty()) {
    const TreeNode* n = queue.back();
    queue.pop_back();
    size_t found = find_in(n, pc);
    if (found != SIZE_MAX) return found;
    for (const auto& c : n->children) queue.push_back(c.get());
  }
  pad_referenced_ = true;
  ++stats_.pad_edges;
  return pad_item_;
}

uint32_t TreeEmitter::new_pool_index(const SymRef& ref) {
  switch (ref.kind) {
    case bc::RefKind::kString:
      return builder_.intern_string(ref.parts.at(0));
    case bc::RefKind::kType:
      return builder_.intern_type(ref.parts.at(0));
    case bc::RefKind::kField:
      return builder_.intern_field(ref.parts.at(0), ref.parts.at(1),
                                   ref.parts.at(2));
    case bc::RefKind::kMethod: {
      std::vector<std::string> params;
      for (size_t i = 3; i < ref.parts.size(); ++i) {
        if (!ref.parts[i].empty() && ref.parts[i][0] == '#') continue;  // marker
        params.push_back(ref.parts[i]);
      }
      return builder_.intern_method(ref.parts.at(0), ref.parts.at(1),
                                    ref.parts.at(2), params);
    }
    case bc::RefKind::kNone:
      return 0;
  }
  return 0;
}

void TreeEmitter::emit_insn_units(const Item& item, std::vector<uint16_t>& out) {
  const ILEntry& entry = item.node->il[item.il_index];
  Insn insn = bc::decode_at(entry.units, 0);

  // Reflective call sites recorded at this pc become direct calls.
  if (options_.replace_reflection && bc::is_invoke(insn.op)) {
    auto rit = rec_.reflection_targets.find(entry.pc);
    if (rit != rec_.reflection_targets.end() && insn.a >= 1) {
      const SymRef& target = rit->second;
      bool is_static =
          !target.parts.empty() && target.parts.back() == "#static";
      Insn direct;
      direct.op = is_static ? Op::kInvokeStatic : Op::kInvokeVirtual;
      // Method.invoke(methodObj, receiver, args...): drop the Method object;
      // static targets also drop the receiver.
      uint8_t skip = is_static ? 2 : 1;
      uint8_t argc = insn.a > skip ? static_cast<uint8_t>(insn.a - skip) : 0;
      direct.a = argc;
      for (uint8_t i = 0; i < argc && i + skip < 4; ++i) {
        direct.args[i] = insn.args[i + skip];
      }
      uint32_t idx = new_pool_index(target);
      direct.idx = static_cast<uint16_t>(idx);
      std::vector<uint16_t> units = bc::encode(direct);
      // Same 4-unit footprint as the original invoke.
      out.insert(out.end(), units.begin(), units.end());
      ++stats_.reflection_replaced;
      return;
    }
  }

  std::vector<uint16_t> units = entry.units;
  // Re-intern the pool operand.
  if (entry.ref) {
    uint32_t idx = new_pool_index(*entry.ref);
    if (idx > 0xffff) throw std::runtime_error("pool overflow in reassembly");
    size_t idx_unit;
    switch (insn.op) {
      case Op::kIget:
      case Op::kIput:
      case Op::kNewArray:
      case Op::kInstanceOf:
        idx_unit = 2;
        break;
      default:
        idx_unit = 1;  // const-string, sget/sput, new-instance, invokes
        break;
    }
    units.at(idx_unit) = static_cast<uint16_t>(idx);
  }

  // Retarget branches to the new layout.
  auto rel_to = [&](size_t target_item) {
    ptrdiff_t delta = static_cast<ptrdiff_t>(items_[target_item].offset) -
                      static_cast<ptrdiff_t>(item.offset);
    if (delta < INT16_MIN || delta > INT16_MAX) {
      throw std::runtime_error("reassembled branch out of rel16 range");
    }
    return static_cast<uint16_t>(static_cast<int16_t>(delta));
  };
  if (insn.op == Op::kGoto) {
    size_t t = resolve(item.node, static_cast<uint16_t>(entry.pc + insn.off));
    units.at(1) = rel_to(t);
  } else if (bc::is_conditional_branch(insn.op)) {
    size_t t = resolve(item.node, static_cast<uint16_t>(entry.pc + insn.off));
    units.at(bc::is_two_reg_if(insn.op) ? 2 : 1) = rel_to(t);
  } else if (insn.op == Op::kPackedSwitch) {
    units.at(1) = rel_to(payload_item_.at(&entry));
  }
  out.insert(out.end(), units.begin(), units.end());
}

dex::CodeItem TreeEmitter::emit() {
  build_node(root_);

  // Patch guard targets now that child blocks are placed.
  for (const auto& [child, guard_index] : child_guard_items_) {
    auto it = child_block_start_.find(child);
    items_[guard_index].guard_target =
        it != child_block_start_.end() ? it->second : SIZE_MAX;
  }

  // Landing pad for never-executed edges, then switch payloads.
  pad_item_ = items_.size();
  {
    Item pad;
    pad.kind = Item::Kind::kPad;
    items_.push_back(pad);
  }
  for (size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].kind != Item::Kind::kInsn) continue;
    const ILEntry& entry = items_[i].node->il[items_[i].il_index];
    if (entry.switch_payload) {
      Item payload;
      payload.kind = Item::Kind::kPayload;
      payload.switch_item = i;
      payload_item_[&entry] = items_.size();
      items_.push_back(payload);
    }
  }

  // Frame: one extra register for guards when any exist (also used by the
  // pad's constant for value-returning methods).
  bool needs_scratch = guards_used_ > 0 || rec_.return_type != "V";
  frame_registers_ = static_cast<uint16_t>(
      std::max<uint16_t>(rec_.registers_size, rec_.ins_size) +
      (needs_scratch ? 1 : 0));
  if (frame_registers_ == 0) frame_registers_ = 1;
  if (frame_registers_ > 255) throw std::runtime_error("frame overflow");

  // Growing the frame moves the incoming arguments up (the interpreter banks
  // ins at the top of the frame), while the carried-over code still addresses
  // them at their original registers. A prologue of moves puts every argument
  // back where the original code expects it. Latent until the fuzzer made
  // control flow depend on an argument register (replay file
  // tests/data/fuzz/bytecode-arg-shift-fixed.lfz).
  std::vector<uint16_t> prologue;
  {
    uint16_t old_base = static_cast<uint16_t>(
        std::max<uint16_t>(rec_.registers_size, rec_.ins_size) - rec_.ins_size);
    uint16_t new_base =
        static_cast<uint16_t>(frame_registers_ - rec_.ins_size);
    // Increasing order is overlap-safe: each move reads above every register
    // written so far.
    for (uint16_t i = 0; new_base != old_base && i < rec_.ins_size; ++i) {
      Insn mv{.op = Op::kMove, .a = static_cast<uint8_t>(old_base + i),
              .b = static_cast<uint8_t>(new_base + i)};
      bc::encode_to(mv, prologue);
    }
  }

  // Layout pass. Offsets start past the prologue; every control transfer is
  // a difference of item offsets, so the uniform shift cancels.
  size_t offset = prologue.size();
  for (Item& item : items_) {
    item.offset = offset;
    item.width = item_width(item);
    offset += item.width;
  }

  // Emission pass.
  std::vector<uint16_t> code;
  code.reserve(offset);
  code.insert(code.end(), prologue.begin(), prologue.end());
  for (const Item& item : items_) {
    switch (item.kind) {
      case Item::Kind::kInsn:
        emit_insn_units(item, code);
        break;
      case Item::Kind::kGuard: {
        Insn sget{.op = Op::kSget, .a = guard_reg(),
                  .idx = static_cast<uint16_t>(item.guard_field)};
        bc::encode_to(sget, code);
        size_t target =
            item.guard_target == SIZE_MAX ? pad_item_ : item.guard_target;
        ptrdiff_t delta = static_cast<ptrdiff_t>(items_[target].offset) -
                          static_cast<ptrdiff_t>(item.offset + 2);
        Insn ifz{.op = Op::kIfEqz, .a = guard_reg(),
                 .off = static_cast<int32_t>(delta)};
        bc::encode_to(ifz, code);
        break;
      }
      case Item::Kind::kGoto: {
        size_t t = resolve(item.node, item.goto_pc);
        ptrdiff_t delta = static_cast<ptrdiff_t>(items_[t].offset) -
                          static_cast<ptrdiff_t>(item.offset);
        Insn go{.op = Op::kGoto, .off = static_cast<int32_t>(delta)};
        bc::encode_to(go, code);
        break;
      }
      case Item::Kind::kPad: {
        if (rec_.return_type == "V") {
          bc::encode_to({.op = Op::kReturnVoid}, code);
        } else if (rec_.return_type == "I" || rec_.return_type == "J" ||
                   rec_.return_type == "Z") {
          bc::encode_to({.op = Op::kConst16, .a = guard_reg(), .lit = 0}, code);
          bc::encode_to({.op = Op::kReturn, .a = guard_reg()}, code);
        } else {
          bc::encode_to({.op = Op::kConstNull, .a = guard_reg()}, code);
          // const-null is 1 unit; keep the 3-unit width with a nop.
          bc::encode_to({.op = Op::kNop}, code);
          bc::encode_to({.op = Op::kReturn, .a = guard_reg()}, code);
        }
        break;
      }
      case Item::Kind::kPayload: {
        const Item& sw = items_[item.switch_item];
        const ILEntry& entry = sw.node->il[sw.il_index];
        code.push_back(static_cast<uint16_t>(Op::kPayload));
        code.push_back(
            static_cast<uint16_t>(entry.switch_payload->target_pcs.size()));
        code.push_back(static_cast<uint16_t>(entry.switch_payload->first_key &
                                             0xffff));
        code.push_back(static_cast<uint16_t>(
            (entry.switch_payload->first_key >> 16) & 0xffff));
        for (uint16_t orig_target : entry.switch_payload->target_pcs) {
          size_t t = resolve(sw.node, orig_target);
          ptrdiff_t delta = static_cast<ptrdiff_t>(items_[t].offset) -
                            static_cast<ptrdiff_t>(sw.offset);
          code.push_back(static_cast<uint16_t>(static_cast<int16_t>(delta)));
        }
        break;
      }
    }
  }

  dex::CodeItem out;
  out.registers_size = frame_registers_;
  out.ins_size = rec_.ins_size;
  out.insns = std::move(code);

  if (options_.keep_debug_info) {
    // Lines: map each emitted root-context instruction to its original line.
    auto line_of = [&](uint16_t pc) -> uint32_t {
      uint32_t line = 0;
      for (const dex::LineEntry& e : rec_.lines) {
        if (e.pc <= pc) line = e.line;
      }
      return line;
    };
    uint32_t last = 0;
    for (const Item& item : items_) {
      if (item.kind != Item::Kind::kInsn) continue;
      uint32_t line = line_of(item.node->il[item.il_index].pc);
      if (line != 0 && line != last) {
        out.lines.push_back({static_cast<uint16_t>(item.offset), line});
        last = line;
      }
    }
    // Tries: cover the emitted span of each original range when its handler
    // was executed; never-executed handlers vanish with the dead code.
    for (const dex::TryItem& t : rec_.tries) {
      size_t handler = find_in(&root_, t.handler_pc);
      if (handler == SIZE_MAX) continue;
      size_t lo = SIZE_MAX, hi = 0;
      for (const Item& item : items_) {
        if (item.kind != Item::Kind::kInsn || item.node != &root_) continue;
        uint16_t pc = item.node->il[item.il_index].pc;
        if (pc >= t.start_pc && pc < t.end_pc) {
          lo = std::min(lo, item.offset);
          hi = std::max(hi, item.offset + item.width);
        }
      }
      if (lo < hi && lo != SIZE_MAX) {
        dex::TryItem nt;
        nt.start_pc = static_cast<uint16_t>(lo);
        nt.end_pc = static_cast<uint16_t>(hi);
        nt.handler_pc = static_cast<uint16_t>(items_[handler].offset);
        out.tries.push_back(nt);
      }
    }
  }
  stats_.output_code_units += out.insns.size();
  return out;
}

}  // namespace

// --- whole-file reassembly ---

namespace {

// Builds the guarded dispatcher body used when a method has several unique
// instruction arrays ("Merging Instruction Arrays", paper IV-B).
dex::CodeItem build_dispatcher(dex::DexBuilder& builder, const MethodRecord& rec,
                               const std::vector<uint32_t>& variant_refs,
                               const std::vector<uint32_t>& selector_fields) {
  uint16_t ins = rec.ins_size;
  uint16_t registers = static_cast<uint16_t>(ins + 1);  // v0 = scratch
  std::vector<uint16_t> code;
  std::vector<uint8_t> arg_regs;
  for (uint16_t i = 0; i < ins; ++i) {
    arg_regs.push_back(static_cast<uint8_t>(registers - ins + i));
  }
  bool is_static = (rec.access_flags & dex::kAccStatic) != 0;
  Op invoke_op = is_static ? Op::kInvokeStatic : Op::kInvokeVirtual;

  // Per-variant call block width: invoke (4) + [move-result (1)] + return (1).
  size_t block_width = 4 + (rec.return_type == "V" ? 1 : 2);
  size_t header_width = 4 * (variant_refs.size() - 1) + 2;  // guards + goto

  size_t k = 0;
  for (; k + 1 < variant_refs.size(); ++k) {
    Insn sget{.op = Op::kSget, .a = 0,
              .idx = static_cast<uint16_t>(selector_fields[k])};
    bc::encode_to(sget, code);
    size_t here = code.size();  // offset of the if-eqz
    ptrdiff_t target = static_cast<ptrdiff_t>(header_width + k * block_width);
    Insn ifz{.op = Op::kIfEqz, .a = 0,
             .off = static_cast<int32_t>(target - static_cast<ptrdiff_t>(here))};
    bc::encode_to(ifz, code);
  }
  {
    size_t here = code.size();
    ptrdiff_t target = static_cast<ptrdiff_t>(header_width + k * block_width);
    Insn go{.op = Op::kGoto,
            .off = static_cast<int32_t>(target - static_cast<ptrdiff_t>(here))};
    bc::encode_to(go, code);
  }
  for (size_t v = 0; v < variant_refs.size(); ++v) {
    Insn invoke{.op = invoke_op, .a = static_cast<uint8_t>(arg_regs.size()),
                .idx = static_cast<uint16_t>(variant_refs[v])};
    for (size_t i = 0; i < arg_regs.size(); ++i) invoke.args[i] = arg_regs[i];
    bc::encode_to(invoke, code);
    if (rec.return_type == "V") {
      bc::encode_to({.op = Op::kReturnVoid}, code);
    } else {
      bc::encode_to({.op = Op::kMoveResult, .a = 0}, code);
      bc::encode_to({.op = Op::kReturn, .a = 0}, code);
    }
  }
  (void)builder;
  dex::CodeItem item;
  item.registers_size = registers;
  item.ins_size = ins;
  item.insns = std::move(code);
  return item;
}

dex::EncodedValue encode_static_value(dex::DexBuilder& builder,
                                      const CollectedValue& v) {
  switch (v.kind) {
    case CollectedValue::Kind::kInt:
      return dex::DexBuilder::int_value(v.i);
    case CollectedValue::Kind::kString:
      return builder.string_value(v.s);
    case CollectedValue::Kind::kNull:
      return dex::DexBuilder::null_value();
  }
  return dex::DexBuilder::null_value();
}

}  // namespace

ReassembleResult reassemble(const CollectionOutput& input,
                            const ReassembleOptions& options) {
  ReassembleResult result;
  dex::DexBuilder builder;
  ReassembleStats& stats = result.stats;

  // Group methods by declaring class; include classes that somehow have
  // method records but no class record (defensive completeness).
  std::map<std::string, std::vector<const MethodRecord*>> by_class;
  for (const auto& [key, rec] : input.methods) {
    by_class[key.class_descriptor].push_back(&rec);
  }
  std::set<std::string> class_descriptors;
  for (const CollectedClass& c : input.classes) class_descriptors.insert(c.descriptor);

  size_t guard_counter = 0;

  auto emit_class = [&](const CollectedClass* cls, const std::string& descriptor) {
    std::string super =
        (cls != nullptr && !cls->super_descriptor.empty()) ? cls->super_descriptor
                                                           : "Ljava/lang/Object;";
    builder.start_class(descriptor, super,
                        cls != nullptr ? cls->access_flags : dex::kAccPublic);
    ++stats.classes;
    if (cls != nullptr) {
      for (const CollectedField& f : cls->instance_fields) {
        builder.add_instance_field(f.name, f.type_descriptor, f.access_flags);
      }
      for (const CollectedField& f : cls->static_fields) {
        builder.add_static_field(f.name, f.type_descriptor,
                                 encode_static_value(builder, f.static_value),
                                 f.access_flags);
      }
    }

    auto mit = by_class.find(descriptor);
    if (mit == by_class.end()) return;
    // Synthetic variant names must never collide with a method already in
    // the input: a once-revealed app carries the previous round's name$vN
    // variants, and re-defining one made invoke resolution ambiguous (the
    // first definition — a traced dispatcher body invoking its own name —
    // recursed to StackOverflowError; fuzzer finding, replay file
    // tests/data/fuzz/bytecode-variant-collision-fixed.lfz).
    std::set<std::string> taken_names;
    for (const MethodRecord* r : mit->second) taken_names.insert(r->key.name);
    for (const MethodRecord* rec : mit->second) {
      ++stats.methods;
      bool is_direct = (rec->access_flags &
                        (dex::kAccStatic | dex::kAccPrivate | dex::kAccConstructor)) != 0 ||
                       rec->key.name == "<init>" || rec->key.name == "<clinit>";
      if (rec->is_native) {
        builder.add_native_method(rec->key.name, rec->return_type,
                                  rec->param_types, rec->access_flags);
        continue;
      }
      if (rec->trees.empty()) {
        // Entered but nothing recorded (aborted immediately): emit a stub so
        // references still resolve.
        bc::MethodAssembler as(std::max<uint16_t>(rec->registers_size, 1),
                               rec->ins_size);
        if (rec->return_type == "V") {
          as.return_void();
        } else if (rec->return_type == "I" || rec->return_type == "J" ||
                   rec->return_type == "Z") {
          as.const16(0, 0);
          as.return_value(0);
        } else {
          as.const_null(0);
          as.return_value(0);
        }
        if (is_direct) {
          builder.add_direct_method(rec->key.name, rec->return_type,
                                    rec->param_types, as.finish(),
                                    rec->access_flags);
        } else {
          builder.add_virtual_method(rec->key.name, rec->return_type,
                                     rec->param_types, as.finish(),
                                     rec->access_flags);
        }
        continue;
      }

      // Emit one body per unique tree.
      std::vector<dex::CodeItem> bodies;
      for (const auto& tree : rec->trees) {
        TreeEmitter emitter(builder, *rec, *tree, options, stats, guard_counter);
        bodies.push_back(emitter.emit());
        guard_counter += emitter.guards_used();
      }
      // Track Modification fields created by the emitters (they intern them;
      // collect for the instrument class definition below).
      if (bodies.size() == 1) {
        if (is_direct) {
          builder.add_direct_method(rec->key.name, rec->return_type,
                                    rec->param_types, std::move(bodies[0]),
                                    rec->access_flags);
        } else {
          builder.add_virtual_method(rec->key.name, rec->return_type,
                                     rec->param_types, std::move(bodies[0]),
                                     rec->access_flags);
        }
        continue;
      }

      // Method variants + guarded dispatcher (paper IV-B, merging arrays).
      std::vector<uint32_t> variant_refs;
      std::vector<uint32_t> selector_fields;
      for (size_t v = 0; v < bodies.size(); ++v) {
        std::string vname;
        for (size_t ordinal = v;; ++ordinal) {
          vname = rec->key.name + "$v" + std::to_string(ordinal);
          if (taken_names.insert(vname).second) break;
        }
        uint32_t mref;
        uint32_t vflags = (rec->access_flags & ~dex::kAccConstructor) |
                          dex::kAccSynthetic;
        if (is_direct) {
          mref = builder.add_direct_method(vname, rec->return_type,
                                           rec->param_types, std::move(bodies[v]),
                                           vflags);
        } else {
          mref = builder.add_virtual_method(vname, rec->return_type,
                                            rec->param_types, std::move(bodies[v]),
                                            vflags);
        }
        variant_refs.push_back(mref);
        ++stats.variants;
        if (v + 1 < bodies.size()) {
          std::string fname =
              sanitize(rec->key.class_descriptor + "_" + rec->key.name) +
              "_variant_" + std::to_string(v);
          selector_fields.push_back(
              builder.intern_field(kModificationClass, "I", fname));
        }
      }
      dex::CodeItem dispatcher =
          build_dispatcher(builder, *rec, variant_refs, selector_fields);
      if (is_direct) {
        builder.add_direct_method(rec->key.name, rec->return_type,
                                  rec->param_types, std::move(dispatcher),
                                  rec->access_flags);
      } else {
        builder.add_virtual_method(rec->key.name, rec->return_type,
                                   rec->param_types, std::move(dispatcher),
                                   rec->access_flags);
      }
    }
  };

  // The reassembler owns the instrument class: a once-revealed input already
  // carries Ldexlego/Modification;, and emitting the collected copy *and*
  // the synthesized one below produced a duplicate class definition on
  // re-reveal (found by the fuzzer's idempotence oracle, replay file
  // tests/data/fuzz/bytecode-idempotence-fixed.lfz). Hold the collected copy
  // back and fold its fields into the synthesized definition instead.
  const CollectedClass* collected_instrument = nullptr;
  for (const CollectedClass& cls : input.classes) {
    if (cls.descriptor == kModificationClass) {
      collected_instrument = &cls;
      continue;
    }
    emit_class(&cls, cls.descriptor);
  }
  for (const auto& [descriptor, _] : by_class) {
    if (descriptor == kModificationClass) continue;
    if (!class_descriptors.contains(descriptor)) emit_class(nullptr, descriptor);
  }

  // The instrument class: every Ldexlego/Modification; field interned by the
  // emitters becomes a static int field initialized to 0 (value is irrelevant
  // to static analysis; reachability of both branches is what matters).
  // Collected fields come first so the definition is stable across repeated
  // reveals even when this round's emitters interned nothing new.
  {
    std::vector<std::string> field_names;
    std::set<std::string> seen_fields;
    if (collected_instrument != nullptr) {
      for (const CollectedField& f : collected_instrument->static_fields) {
        if (seen_fields.insert(f.name).second) field_names.push_back(f.name);
      }
    }
    const dex::DexFile& partial = builder.file();
    for (const dex::FieldRef& f : partial.fields) {
      if (partial.type_descriptor(f.class_type) == kModificationClass) {
        std::string name = partial.string_at(f.name);
        if (seen_fields.insert(name).second) field_names.push_back(name);
      }
    }
    if (!field_names.empty()) {
      builder.start_class(kModificationClass);
      ++stats.classes;
      for (const std::string& name : field_names) {
        builder.add_static_field(name, "I", dex::DexBuilder::int_value(0));
      }
    }
  }

  result.file = std::move(builder).build();

  // Optional IR validation pass: every reassembled body must survive
  // lift→lower byte-identically (ARCHITECTURE invariant 15). Runs on the
  // finished file and never mutates it; failures are counted, not fatal —
  // the caller (pipeline stats, fuzz oracle) decides what a non-zero
  // ir_failed means.
  if (options.ir_roundtrip) {
    std::vector<std::string> errors;
    ir::RoundtripStats rt = ir::roundtrip_file(
        result.file, ir::RoundtripOptions{.apply_dce = false, .check_ssa = true},
        &errors);
    stats.ir_methods = rt.methods;
    stats.ir_byte_identical = rt.byte_identical;
    stats.ir_failed = rt.failed + rt.mismatched;
    for (const std::string& e : errors) {
      DL_LOG(support::LogLevel::kWarn) << "ir_roundtrip: " << e;
    }
  }
  return result;
}

}  // namespace dexlego::core
