// Semantic containment check used by the Table I experiment: verifies that
// every instruction (opcode + symbolic operand) of the original program is
// included in the reassembled result, per method. Branch offsets are layout-
// dependent and excluded; control-flow preservation is checked by comparing
// branch-instruction counts and is additionally covered by the verifier and
// the behavioural tests.
#pragma once

#include <string>
#include <vector>

#include "src/dex/dex.h"

namespace dexlego::core {

struct ContainmentReport {
  bool ok = false;
  size_t methods_checked = 0;
  std::vector<std::string> missing;  // "method: token" diagnostics

  std::string summary() const;
};

// Checks that `revealed` contains every instruction of every concrete method
// of `original` (methods are matched by class+name+shorty; method variants
// name$vK in `revealed` are credited to their base method).
ContainmentReport check_containment(const dex::DexFile& original,
                                    const dex::DexFile& revealed);

}  // namespace dexlego::core
