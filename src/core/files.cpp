#include "src/core/files.h"

#include <filesystem>

#include "src/support/bytes.h"

namespace dexlego::core {

using support::ByteReader;
using support::ByteWriter;

namespace {

void write_sym_ref(ByteWriter& w, const SymRef& ref) {
  w.u8(static_cast<uint8_t>(ref.kind));
  w.u32(static_cast<uint32_t>(ref.parts.size()));
  for (const std::string& p : ref.parts) w.str(p);
}

SymRef read_sym_ref(ByteReader& r) {
  SymRef ref;
  ref.kind = static_cast<bc::RefKind>(r.u8());
  uint32_t n = r.u32();
  ref.parts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ref.parts.push_back(r.str());
  return ref;
}

void write_tree(ByteWriter& w, const TreeNode& node) {
  w.u32(static_cast<uint32_t>(node.il.size()));
  for (const ILEntry& e : node.il) {
    w.u16(e.pc);
    w.u16(static_cast<uint16_t>(e.units.size()));
    for (uint16_t u : e.units) w.u16(u);
    w.u8(e.ref ? 1 : 0);
    if (e.ref) write_sym_ref(w, *e.ref);
    w.u8(e.switch_payload ? 1 : 0);
    if (e.switch_payload) {
      w.i32(e.switch_payload->first_key);
      w.u16(static_cast<uint16_t>(e.switch_payload->target_pcs.size()));
      for (uint16_t t : e.switch_payload->target_pcs) w.u16(t);
    }
  }
  w.u16(node.sm_start);
  w.u8(node.sm_end ? 1 : 0);
  if (node.sm_end) w.u16(*node.sm_end);
  w.u32(static_cast<uint32_t>(node.children.size()));
  for (const auto& child : node.children) write_tree(w, *child);
}

std::unique_ptr<TreeNode> read_tree(ByteReader& r, TreeNode* parent) {
  auto node = std::make_unique<TreeNode>();
  node->parent = parent;
  uint32_t n_il = r.u32();
  node->il.reserve(n_il);
  for (uint32_t i = 0; i < n_il; ++i) {
    ILEntry e;
    e.pc = r.u16();
    uint16_t n_units = r.u16();
    e.units.reserve(n_units);
    for (uint16_t j = 0; j < n_units; ++j) e.units.push_back(r.u16());
    if (r.u8()) e.ref = read_sym_ref(r);
    if (r.u8()) {
      SwitchSnapshot snap;
      snap.first_key = r.i32();
      uint16_t n_targets = r.u16();
      for (uint16_t k = 0; k < n_targets; ++k) snap.target_pcs.push_back(r.u16());
      e.switch_payload = std::move(snap);
    }
    node->iim.emplace(e.pc, node->il.size());
    node->il.push_back(std::move(e));
  }
  node->sm_start = r.u16();
  if (r.u8()) node->sm_end = r.u16();
  uint32_t n_children = r.u32();
  for (uint32_t i = 0; i < n_children; ++i) {
    node->children.push_back(read_tree(r, node.get()));
  }
  return node;
}

void write_value(ByteWriter& w, const CollectedValue& v) {
  w.u8(static_cast<uint8_t>(v.kind));
  w.i64(v.i);
  w.str(v.s);
}

CollectedValue read_value(ByteReader& r) {
  CollectedValue v;
  v.kind = static_cast<CollectedValue::Kind>(r.u8());
  v.i = r.i64();
  v.s = r.str();
  return v;
}

void write_key(ByteWriter& w, const MethodKey& key) {
  w.str(key.class_descriptor);
  w.str(key.name);
  w.str(key.shorty);
}

MethodKey read_key(ByteReader& r) {
  MethodKey key;
  key.class_descriptor = r.str();
  key.name = r.str();
  key.shorty = r.str();
  return key;
}

}  // namespace

std::vector<uint8_t> serialize_tree(const TreeNode& tree) {
  ByteWriter w;
  write_tree(w, tree);
  return w.take();
}

CollectionFiles encode_collection(const CollectionOutput& output) {
  CollectionFiles files;

  {  // class data file: descriptor, super, flags
    ByteWriter w;
    w.u32(static_cast<uint32_t>(output.classes.size()));
    for (const CollectedClass& c : output.classes) {
      w.str(c.descriptor);
      w.str(c.super_descriptor);
      w.u32(c.access_flags);
    }
    files.class_data = w.take();
  }
  {  // field data file: per class, instance + static field declarations
    ByteWriter w;
    w.u32(static_cast<uint32_t>(output.classes.size()));
    for (const CollectedClass& c : output.classes) {
      w.str(c.descriptor);
      w.u32(static_cast<uint32_t>(c.instance_fields.size()));
      for (const CollectedField& f : c.instance_fields) {
        w.str(f.name);
        w.str(f.type_descriptor);
        w.u32(f.access_flags);
      }
      w.u32(static_cast<uint32_t>(c.static_fields.size()));
      for (const CollectedField& f : c.static_fields) {
        w.str(f.name);
        w.str(f.type_descriptor);
        w.u32(f.access_flags);
      }
    }
    files.field_data = w.take();
  }
  {  // static values file
    ByteWriter w;
    w.u32(static_cast<uint32_t>(output.classes.size()));
    for (const CollectedClass& c : output.classes) {
      w.str(c.descriptor);
      w.u32(static_cast<uint32_t>(c.static_fields.size()));
      for (const CollectedField& f : c.static_fields) {
        w.str(f.name);
        write_value(w, f.static_value);
      }
    }
    files.static_values = w.take();
  }
  {  // method data file: signatures, frames, tries, lines, reflection
    ByteWriter w;
    w.u32(static_cast<uint32_t>(output.methods.size()));
    for (const auto& [key, rec] : output.methods) {
      write_key(w, key);
      w.u32(rec.access_flags);
      w.u16(rec.registers_size);
      w.u16(rec.ins_size);
      w.str(rec.return_type);
      w.u32(static_cast<uint32_t>(rec.param_types.size()));
      for (const std::string& p : rec.param_types) w.str(p);
      w.u8(rec.is_native ? 1 : 0);
      w.u64(rec.executions);
      w.u64(rec.dropped_trees);
      w.u32(static_cast<uint32_t>(rec.tries.size()));
      for (const dex::TryItem& t : rec.tries) {
        w.u16(t.start_pc);
        w.u16(t.end_pc);
        w.u16(t.handler_pc);
      }
      w.u32(static_cast<uint32_t>(rec.lines.size()));
      for (const dex::LineEntry& e : rec.lines) {
        w.u16(e.pc);
        w.u32(e.line);
      }
      w.u32(static_cast<uint32_t>(rec.reflection_targets.size()));
      for (const auto& [pc, ref] : rec.reflection_targets) {
        w.u16(pc);
        write_sym_ref(w, ref);
      }
    }
    files.method_data = w.take();
  }
  {  // bytecode file: collection trees per method
    ByteWriter w;
    w.u64(output.total_instructions_observed);
    w.u64(output.divergences_detected);
    w.u64(output.reflection_sites);
    w.u32(static_cast<uint32_t>(output.methods.size()));
    for (const auto& [key, rec] : output.methods) {
      write_key(w, key);
      w.u32(static_cast<uint32_t>(rec.trees.size()));
      for (const auto& tree : rec.trees) write_tree(w, *tree);
    }
    files.bytecode = w.take();
  }
  return files;
}

CollectionOutput decode_collection(const CollectionFiles& files) {
  CollectionOutput out;

  {
    ByteReader r(files.class_data);
    uint32_t n = r.u32();
    out.classes.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      out.classes[i].descriptor = r.str();
      out.classes[i].super_descriptor = r.str();
      out.classes[i].access_flags = r.u32();
    }
  }
  {
    ByteReader r(files.field_data);
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      std::string descriptor = r.str();
      CollectedClass* cls = nullptr;
      for (CollectedClass& c : out.classes) {
        if (c.descriptor == descriptor) cls = &c;
      }
      uint32_t n_inst = r.u32();
      for (uint32_t j = 0; j < n_inst; ++j) {
        CollectedField f;
        f.name = r.str();
        f.type_descriptor = r.str();
        f.access_flags = r.u32();
        if (cls != nullptr) cls->instance_fields.push_back(std::move(f));
      }
      uint32_t n_stat = r.u32();
      for (uint32_t j = 0; j < n_stat; ++j) {
        CollectedField f;
        f.name = r.str();
        f.type_descriptor = r.str();
        f.access_flags = r.u32();
        if (cls != nullptr) cls->static_fields.push_back(std::move(f));
      }
    }
  }
  {
    ByteReader r(files.static_values);
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      std::string descriptor = r.str();
      CollectedClass* cls = nullptr;
      for (CollectedClass& c : out.classes) {
        if (c.descriptor == descriptor) cls = &c;
      }
      uint32_t n_vals = r.u32();
      for (uint32_t j = 0; j < n_vals; ++j) {
        std::string name = r.str();
        CollectedValue v = read_value(r);
        if (cls != nullptr) {
          for (CollectedField& f : cls->static_fields) {
            if (f.name == name) f.static_value = v;
          }
        }
      }
    }
  }
  {
    ByteReader r(files.method_data);
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      MethodKey key = read_key(r);
      MethodRecord rec;
      rec.key = key;
      rec.access_flags = r.u32();
      rec.registers_size = r.u16();
      rec.ins_size = r.u16();
      rec.return_type = r.str();
      uint32_t n_params = r.u32();
      for (uint32_t j = 0; j < n_params; ++j) rec.param_types.push_back(r.str());
      rec.is_native = r.u8() != 0;
      rec.executions = r.u64();
      rec.dropped_trees = r.u64();
      uint32_t n_tries = r.u32();
      for (uint32_t j = 0; j < n_tries; ++j) {
        dex::TryItem t;
        t.start_pc = r.u16();
        t.end_pc = r.u16();
        t.handler_pc = r.u16();
        rec.tries.push_back(t);
      }
      uint32_t n_lines = r.u32();
      for (uint32_t j = 0; j < n_lines; ++j) {
        dex::LineEntry e;
        e.pc = r.u16();
        e.line = r.u32();
        rec.lines.push_back(e);
      }
      uint32_t n_refl = r.u32();
      for (uint32_t j = 0; j < n_refl; ++j) {
        uint16_t pc = r.u16();
        rec.reflection_targets.emplace(pc, read_sym_ref(r));
      }
      out.methods.emplace(std::move(key), std::move(rec));
    }
  }
  {
    ByteReader r(files.bytecode);
    out.total_instructions_observed = r.u64();
    out.divergences_detected = r.u64();
    out.reflection_sites = r.u64();
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      MethodKey key = read_key(r);
      uint32_t n_trees = r.u32();
      auto it = out.methods.find(key);
      for (uint32_t j = 0; j < n_trees; ++j) {
        auto tree = read_tree(r, nullptr);
        if (it != out.methods.end()) it->second.trees.push_back(std::move(tree));
      }
    }
  }
  return out;
}

void CollectionFiles::save(const std::string& dir) const {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  support::write_file(dir + "/class_data.bin", class_data);
  support::write_file(dir + "/field_data.bin", field_data);
  support::write_file(dir + "/static_values.bin", static_values);
  support::write_file(dir + "/method_data.bin", method_data);
  support::write_file(dir + "/bytecode.bin", bytecode);
}

CollectionFiles CollectionFiles::load(const std::string& dir) {
  CollectionFiles files;
  files.class_data = support::read_file(dir + "/class_data.bin");
  files.field_data = support::read_file(dir + "/field_data.bin");
  files.static_values = support::read_file(dir + "/static_values.bin");
  files.method_data = support::read_file(dir + "/method_data.bin");
  files.bytecode = support::read_file(dir + "/bytecode.bin");
  return files;
}

}  // namespace dexlego::core
