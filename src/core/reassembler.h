// The offline reassembling phase (paper Section IV-B) — the key contribution:
// converts collection trees back into a single valid DEX file.
//
//  * Each tree linearizes into one instruction array in IL (first-execution)
//    order. Branch/switch offsets are retargeted to the new layout; edges
//    whose target was never executed are routed to a synthetic landing pad
//    (executed-only code is exactly what removes dead-code false positives).
//  * Divergence branches (self-modifying layers) merge bottom-up into their
//    parents behind guards on static fields of the synthetic
//    Ldexlego/Modification; class, so static analysis sees both the pre- and
//    post-modification code as reachable (paper Code 4).
//  * Multiple unique trees of one method become method variants
//    name$v0..name$vK behind a guarded dispatcher.
//  * Reflective Method.invoke call sites recorded by the collector are
//    rewritten into direct invoke instructions (paper Section IV-D).
//  * Pool indices are re-interned from the symbolic refs, merging every
//    dynamically loaded image into the one output DEX.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/collection.h"
#include "src/dex/dex.h"

namespace dexlego::core {

struct ReassembleOptions {
  bool replace_reflection = true;
  // Lines/tries are remapped onto the new layout when true.
  bool keep_debug_info = true;
  // Lift every reassembled body to SSA IR and lower it back, asserting the
  // result is byte-identical (invariant 15). Pure validation: the output
  // file is never modified. Counts land in the ir_* stats fields.
  bool ir_roundtrip = false;
};

struct ReassembleStats {
  size_t classes = 0;
  size_t methods = 0;
  size_t variants = 0;            // extra method variants emitted
  size_t guards = 0;              // divergence guards inserted
  size_t reflection_replaced = 0;
  size_t pad_edges = 0;           // never-executed edges routed to the pad
  size_t output_code_units = 0;
  // Populated only when ReassembleOptions::ir_roundtrip is set.
  size_t ir_methods = 0;         // code-bearing methods round-tripped
  size_t ir_byte_identical = 0;  // lower(lift(code)) == code
  size_t ir_failed = 0;          // lift/lower failure or byte mismatch
};

struct ReassembleResult {
  dex::DexFile file;
  ReassembleStats stats;
};

ReassembleResult reassemble(const CollectionOutput& input,
                            const ReassembleOptions& options = {});

// Descriptor of the instrument class holding divergence-guard fields.
inline constexpr const char* kModificationClass = "Ldexlego/Modification;";

}  // namespace dexlego::core
