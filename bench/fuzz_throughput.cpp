// Differential-fuzzing throughput: runs fixed-seed campaigns through
// fuzz::run_campaign at 1, 2, 4 and 8 worker threads and reports oracle
// executions/sec — the fleet-level metric for the mutate→reveal→diff loop.
// The campaign report fingerprint is printed per row and must be identical
// across thread counts (the determinism contract pinned by tests/fuzz_test).
//
// Each line prefixed BENCH_JSON is machine-readable (one JSON object per
// thread count) so execs/sec trajectories can be tracked across commits.
//
// Usage: fuzz_throughput [iters] [seed]
//   iters (default 120) oracle executions per thread count
//   seed  (default 1)   campaign seed
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "src/fuzz/triage.h"

using namespace dexlego;

int main(int argc, char** argv) {
  size_t iters = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;
  if (iters < 8) iters = 8;

  bench::print_header("Differential fuzzing execs/sec (campaign seed " +
                      std::to_string(seed) + ", " + std::to_string(iters) +
                      " iters)");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  bench::print_row({"Threads", "Wall ms", "Execs", "Execs/sec", "Findings",
                    "Speedup", "Report"},
                   {10, 12, 8, 12, 10, 10, 18});

  double sequential_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    fuzz::CampaignOptions options;
    options.seed = seed;
    options.iters = iters;
    options.threads = threads;
    options.minimize = false;  // measure the oracle loop, not triage
    fuzz::CampaignReport report = fuzz::run_campaign(options);
    if (threads == 1) sequential_ms = report.wall_ms;
    double speedup =
        report.wall_ms > 0.0 ? sequential_ms / report.wall_ms : 0.0;

    char wall_s[24], execs_s[16], rate_s[24], findings_s[16], speed_s[16],
        fp_s[24];
    std::snprintf(wall_s, sizeof(wall_s), "%.1f", report.wall_ms);
    std::snprintf(execs_s, sizeof(execs_s), "%zu", report.executed);
    std::snprintf(rate_s, sizeof(rate_s), "%.1f", report.execs_per_sec);
    std::snprintf(findings_s, sizeof(findings_s), "%zu",
                  report.findings.size());
    std::snprintf(speed_s, sizeof(speed_s), "%.2fx", speedup);
    std::snprintf(fp_s, sizeof(fp_s), "%016llx",
                  static_cast<unsigned long long>(report.report_fingerprint()));
    bench::print_row({std::to_string(threads), wall_s, execs_s, rate_s,
                      findings_s, speed_s, fp_s},
                     {10, 12, 8, 12, 10, 10, 18});

    std::printf(
        "BENCH_JSON {\"bench\":\"fuzz_throughput\",\"threads\":%zu,"
        "\"iters\":%zu,\"executed\":%zu,\"wall_ms\":%.2f,"
        "\"execs_per_sec\":%.2f,\"equivalent\":%zu,\"rejected\":%zu,"
        "\"divergent\":%zu,\"crashed\":%zu,\"findings\":%zu,"
        "\"report_fingerprint\":\"%016llx\",\"speedup_vs_1t\":%.3f}\n",
        threads, iters, report.executed, report.wall_ms, report.execs_per_sec,
        report.equivalent, report.rejected, report.divergent, report.crashed,
        report.findings.size(),
        static_cast<unsigned long long>(report.report_fingerprint()), speedup);
  }
  std::printf(
      "\n(execs/sec tracks the cores the container actually grants; the "
      "report fingerprint must not vary across rows)\n");
  return 0;
}
