// Reproduces Table II (analysis result of static tools on DroidBench,
// original vs DexLego-revealed) and the Original/DEXLEGO series of Fig. 5
// (F-measures per formula (1)). The DexHunter/AppSpear series of Fig. 5
// comes from bench/table3_packed_tools.
//
// Paper reference values:
//   FlowDroid  original TP 81 FP 10 -> DexLego TP 95  FP 4   (F 63% -> 84%)
//   DroidSafe  original TP 95 FP 12 -> DexLego TP 105 FP 7   (F 61% -> 80%)
//   HornDroid  original TP 98 FP  9 -> DexLego TP 106 FP 4   (F 72% -> 89%)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_util.h"
#include "src/analysis/static_taint.h"
#include "src/benchsuite/droidbench.h"
#include "src/core/dexlego.h"

using namespace dexlego;

int main() {
  bool calibrate = std::getenv("CALIBRATE") != nullptr;
  suite::DroidBench db = suite::build_droidbench();
  std::printf("DroidBench-analog suite: %zu samples (%zu leaky / %zu benign)\n",
              db.samples.size(), db.leaky_count(), db.benign_count());

  // Reveal every sample once (shared by the three tools).
  std::map<std::string, dex::Apk> revealed;
  size_t reveal_failures = 0;
  for (const suite::Sample& sample : db.samples) {
    core::DexLegoOptions options;
    options.configure_runtime = sample.configure_runtime;
    core::DexLego dexlego(options);
    core::RevealResult result = dexlego.reveal(sample.apk);
    if (!result.verified) {
      ++reveal_failures;
      std::fprintf(stderr, "reveal verify failed for %s:\n%s\n",
                   sample.name.c_str(), result.verify_errors.c_str());
    }
    revealed.emplace(sample.name, std::move(result.revealed_apk));
  }
  std::printf("DexLego reveal: %zu/%zu reassembled DEX files verified\n",
              db.samples.size() - reveal_failures, db.samples.size());

  const analysis::ToolConfig tools[] = {analysis::flowdroid_config(),
                                        analysis::droidsafe_config(),
                                        analysis::horndroid_config()};
  struct PaperRow {
    int tp_orig, fp_orig, tp_dexlego, fp_dexlego;
    double f_orig, f_dexlego;
  };
  const std::map<std::string, PaperRow> paper = {
      {"FlowDroid", {81, 10, 95, 4, 0.63, 0.84}},
      {"DroidSafe", {95, 12, 105, 7, 0.61, 0.80}},
      {"HornDroid", {98, 9, 106, 4, 0.72, 0.89}},
  };

  bench::print_header("Table II: Analysis Result of Static Analysis Tools");
  bench::print_row({"Tool", "Samples", "Malware", "Orig TP", "Orig FP",
                    "DexLego TP", "DexLego FP", "(paper)"},
                   {11, 9, 9, 9, 9, 12, 12, 24});

  std::map<std::string, analysis::Classification> orig_cls, lego_cls;
  for (const analysis::ToolConfig& cfg : tools) {
    analysis::StaticAnalyzer analyzer(cfg);
    analysis::Classification orig, lego;
    for (const suite::Sample& sample : db.samples) {
      bool detected_orig = analyzer.analyze_apk(sample.apk).leak_detected();
      bool detected_lego =
          analyzer.analyze_apk(revealed.at(sample.name)).leak_detected();
      orig.add(sample.leaky, detected_orig);
      lego.add(sample.leaky, detected_lego);
      if (calibrate) {
        bool bad_orig = sample.leaky ? false : detected_orig;
        bool miss_orig = sample.leaky && !detected_orig;
        bool bad_lego = !sample.leaky && detected_lego;
        bool miss_lego = sample.leaky && !detected_lego;
        if (bad_orig || miss_orig || bad_lego || miss_lego) {
          std::printf("  [%s] %-22s (%-22s) orig:%s lego:%s\n", cfg.name.c_str(),
                      sample.name.c_str(), sample.category.c_str(),
                      sample.leaky ? (detected_orig ? "TP" : "FN")
                                   : (detected_orig ? "FP" : "TN"),
                      sample.leaky ? (detected_lego ? "TP" : "FN")
                                   : (detected_lego ? "FP" : "TN"));
        }
      }
    }
    orig_cls[cfg.name] = orig;
    lego_cls[cfg.name] = lego;
    const PaperRow& p = paper.at(cfg.name);
    char paper_note[64];
    std::snprintf(paper_note, sizeof(paper_note), "paper: %d/%d -> %d/%d",
                  p.tp_orig, p.fp_orig, p.tp_dexlego, p.fp_dexlego);
    bench::print_row({cfg.name, std::to_string(db.samples.size()),
                      std::to_string(db.leaky_count()), std::to_string(orig.tp),
                      std::to_string(orig.fp), std::to_string(lego.tp),
                      std::to_string(lego.fp), paper_note},
                     {11, 9, 9, 9, 9, 12, 12, 24});
  }

  bench::print_header("Fig. 5: F-Measures of Static Analysis Tools");
  bench::print_row({"Tool", "Original", "DexLego", "Delta", "(paper)"},
                   {11, 10, 10, 9, 28});
  for (const analysis::ToolConfig& cfg : tools) {
    double f0 = orig_cls[cfg.name].f_measure();
    double f1 = lego_cls[cfg.name].f_measure();
    const PaperRow& p = paper.at(cfg.name);
    char paper_note[96];
    std::snprintf(paper_note, sizeof(paper_note),
                  "paper: %.0f%% -> %.0f%% (+%.1f%%)", p.f_orig * 100,
                  p.f_dexlego * 100, (p.f_dexlego / p.f_orig - 1.0) * 100);
    bench::print_row({cfg.name, bench::pct(f0), bench::pct(f1),
                      bench::pct(f1 / f0 - 1.0), paper_note},
                     {11, 10, 10, 9, 28});
  }
  return 0;
}
