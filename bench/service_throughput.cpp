// Extraction-service throughput and the warm-vs-cold incremental speedup
// (docs/SERVICE.md). Four phases over one persistent store directory:
//
//   cold_v0        fresh store, the base large_corpus — every app extracts
//   warm_identical service restart, the SAME corpus — every app must come
//                  back warm from the manifest (zero re-extraction)
//   warm_mutated   service restart, the updated corpus (every
//                  --mutate-every-th app ships new code) — only mutated
//                  apps extract
//   cold_v1        the updated corpus through pipeline::run_batch on a
//                  fresh in-memory store: the identity reference and the
//                  denominator of the incremental speedup
//
// Every warm_mutated dex fingerprint is compared against cold_v1 — any
// divergence is exit 1 (ARCHITECTURE invariant 14: warm incremental output
// is byte-identical to a cold full run). Lines prefixed BENCH_JSON are
// machine-readable, one per phase.
//
// Usage:
//   service_throughput [--count N] [--threads T] [--mutate-every M]
//                      [--min-warm-speedup X]
//
//   --count             corpus size (default 64)
//   --threads           service worker count (0 = hardware threads)
//   --mutate-every      update cadence: apps 0, M, 2M, ... change (default 10)
//   --min-warm-speedup  exit 1 unless cold_v1 wall / warm_mutated wall
//                       reaches X (ci.sh gates this; default 0 = report only)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/scenarios.h"
#include "src/service/service.h"

using namespace dexlego;

namespace {

struct PhaseResult {
  double wall_ms = 0.0;
  size_t jobs = 0;
  size_t ok = 0;
  size_t incremental = 0;
  uint64_t methods_new = 0;
  uint64_t methods_reused = 0;
  size_t store_entries = 0;
  std::vector<uint64_t> fingerprints;
};

PhaseResult run_service_phase(const std::string& dir, size_t threads,
                              std::vector<pipeline::BatchJob> jobs) {
  PhaseResult out;
  out.jobs = jobs.size();
  service::ServiceOptions options;
  options.threads = threads;
  options.keep_dex = false;  // fingerprints suffice; keep the bench lean
  service::ExtractionService svc(dir, options);
  bench::Stopwatch wall;
  std::vector<service::JobId> ids = svc.submit_batch(std::move(jobs));
  for (service::JobId id : ids) {
    service::JobStatus status = svc.wait(id);
    if (status.state == service::JobState::kDone) ++out.ok;
    if (status.incremental) ++out.incremental;
    out.methods_new += status.methods_new;
    out.methods_reused += status.methods_reused;
    out.fingerprints.push_back(status.result.dex_fingerprint);
  }
  out.wall_ms = wall.elapsed_ms();
  svc.checkpoint();
  out.store_entries = svc.store().stats().entries;
  return out;
}

void print_phase(const char* phase, const PhaseResult& r, size_t threads,
                 double speedup_vs_cold) {
  std::printf(
      "%-15s %5zu jobs  %8.1f ms  %7.1f apps/sec  %4zu warm  "
      "%6llu new / %6llu reused  store %zu",
      phase, r.jobs, r.wall_ms,
      r.wall_ms > 0 ? r.jobs * 1000.0 / r.wall_ms : 0.0, r.incremental,
      static_cast<unsigned long long>(r.methods_new),
      static_cast<unsigned long long>(r.methods_reused), r.store_entries);
  if (speedup_vs_cold > 0) std::printf("  %.2fx vs cold", speedup_vs_cold);
  std::printf("\n");
  std::printf(
      "BENCH_JSON {\"bench\":\"service_throughput\",\"phase\":\"%s\","
      "\"jobs\":%zu,\"threads\":%zu,\"wall_ms\":%.2f,\"apps_per_sec\":%.2f,"
      "\"incremental_jobs\":%zu,\"methods_new\":%llu,\"methods_reused\":%llu,"
      "\"store_entries\":%zu,\"speedup_vs_cold\":%.3f}\n",
      phase, r.jobs, threads, r.wall_ms,
      r.wall_ms > 0 ? r.jobs * 1000.0 / r.wall_ms : 0.0, r.incremental,
      static_cast<unsigned long long>(r.methods_new),
      static_cast<unsigned long long>(r.methods_reused), r.store_entries,
      speedup_vs_cold);
}

}  // namespace

int main(int argc, char** argv) {
  size_t count = 64;
  size_t threads = 0;
  size_t mutate_every = 10;
  double min_warm_speedup = 0.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_number = [&](long min, long max) -> long {
      const char* text = next();
      char* end = nullptr;
      long value = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || value < min || value > max) {
        std::fprintf(stderr, "%s: invalid value '%s'\n", arg.c_str(), text);
        std::exit(2);
      }
      return value;
    };
    if (arg == "--count") {
      count = static_cast<size_t>(next_number(2, 100000));
    } else if (arg == "--threads") {
      threads = static_cast<size_t>(next_number(0, 4096));
    } else if (arg == "--mutate-every") {
      mutate_every = static_cast<size_t>(next_number(1, 100000));
    } else if (arg == "--min-warm-speedup") {
      const char* text = next();
      char* end = nullptr;
      min_warm_speedup = std::strtod(text, &end);
      if (end == text || *end != '\0' || min_warm_speedup < 0) {
        std::fprintf(stderr, "--min-warm-speedup: invalid '%s'\n", text);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("dexlego_service_bench_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  bench::print_header("extraction service: cold vs incremental");
  int failed = 0;
  {
    PhaseResult cold_v0 = run_service_phase(
        dir, threads, pipeline::large_corpus_jobs(count));
    print_phase("cold_v0", cold_v0, threads, 0.0);

    PhaseResult warm_identical = run_service_phase(
        dir, threads, pipeline::large_corpus_jobs(count));
    print_phase("warm_identical", warm_identical, threads,
                warm_identical.wall_ms > 0
                    ? cold_v0.wall_ms / warm_identical.wall_ms
                    : 0.0);
    if (warm_identical.incremental != count || warm_identical.methods_new) {
      std::fprintf(stderr,
                   "FAIL: identical resubmit not fully warm (%zu/%zu warm, "
                   "%llu new)\n",
                   warm_identical.incremental, count,
                   static_cast<unsigned long long>(warm_identical.methods_new));
      failed = 1;
    }

    std::vector<pipeline::BatchJob> updated = pipeline::large_corpus_update_jobs(
        count, 1701, 900, 48, mutate_every);
    PhaseResult warm_mutated =
        run_service_phase(dir, threads, std::move(updated));

    // Cold reference for the same updated corpus: in-memory run_batch.
    std::vector<pipeline::BatchJob> reference = pipeline::large_corpus_update_jobs(
        count, 1701, 900, 48, mutate_every);
    bench::Stopwatch cold_wall;
    pipeline::BatchOptions batch_options;
    batch_options.threads = threads;
    batch_options.keep_dex = false;
    pipeline::BatchReport cold_v1 =
        pipeline::run_batch(reference, batch_options);
    const double cold_v1_ms = cold_wall.elapsed_ms();
    const double speedup =
        warm_mutated.wall_ms > 0 ? cold_v1_ms / warm_mutated.wall_ms : 0.0;
    print_phase("warm_mutated", warm_mutated, threads, speedup);

    PhaseResult cold_phase;
    cold_phase.jobs = cold_v1.jobs.size();
    cold_phase.ok = cold_v1.fleet.ok;
    cold_phase.wall_ms = cold_v1_ms;
    cold_phase.methods_new = cold_v1.fleet.dedup_misses;
    cold_phase.methods_reused = cold_v1.fleet.dedup_hits;
    cold_phase.store_entries = cold_v1.fleet.store.entries;
    print_phase("cold_v1", cold_phase, threads, 0.0);

    size_t mismatches = 0;
    for (size_t i = 0; i < cold_v1.jobs.size(); ++i) {
      if (warm_mutated.fingerprints[i] != cold_v1.jobs[i].dex_fingerprint) {
        ++mismatches;
        std::fprintf(stderr, "IDENTITY MISMATCH: %s\n",
                     cold_v1.jobs[i].name.c_str());
      }
    }
    std::printf("identity: %zu/%zu warm fingerprints == cold full run\n",
                cold_v1.jobs.size() - mismatches, cold_v1.jobs.size());
    if (mismatches > 0) failed = 1;
    if (warm_mutated.ok != count) {
      std::fprintf(stderr, "FAIL: %zu/%zu jobs ok in warm_mutated\n",
                   warm_mutated.ok, count);
      failed = 1;
    }
    if (min_warm_speedup > 0 && speedup < min_warm_speedup) {
      std::fprintf(stderr,
                   "FAIL: warm_mutated speedup %.2fx below gate %.2fx\n",
                   speedup, min_warm_speedup);
      failed = 1;
    }
  }
  fs::remove_all(dir);
  return failed;
}
