// Reproduces Table V: nine packed "market" apps. FlowDroid on the packed
// APK finds nothing (only the shell is visible); on the DexLego-revealed
// APK it finds the hidden flows (paper: 4,5,3,4,5,2,3,5,14 — all apps leak
// the device ID, three leak location, two leak SSID).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/static_taint.h"
#include "src/benchsuite/appgen.h"
#include "src/core/dexlego.h"
#include "src/packer/packer.h"

using namespace dexlego;

int main() {
  const int paper_flows[] = {4, 5, 3, 4, 5, 2, 3, 5, 14};
  std::vector<suite::MarketAppInfo> apps = suite::table5_apps();
  std::vector<packer::PackerSpec> packers = packer::table1_packers();

  bench::print_header("Table V: Analysis Result of Packed Real-world Applications");
  bench::print_row({"Package", "Version", "Set", "# Installs", "Orig",
                    "Revealed", "(paper)"},
                   {29, 11, 5, 14, 6, 9, 10});

  analysis::StaticAnalyzer flowdroid(analysis::flowdroid_config());
  int i = 0;
  for (const suite::MarketAppInfo& info : apps) {
    suite::GeneratedApp app = suite::generate_app(info.spec);
    // Rotate the packer per market set, as different stores favour
    // different protectors.
    const packer::PackerSpec& ps = packers[static_cast<size_t>(i) % 5];
    auto packed = packer::pack(app.apk, ps);

    size_t orig_flows = flowdroid.analyze_apk(*packed).flow_count();

    core::DexLegoOptions options;
    options.configure_runtime = [](rt::Runtime& runtime) {
      packer::register_packer_natives(runtime);
    };
    core::DexLego dexlego(options);
    core::RevealResult revealed = dexlego.reveal(*packed);
    size_t new_flows = flowdroid.analyze_apk(revealed.revealed_apk).flow_count();

    char note[32];
    std::snprintf(note, sizeof(note), "0 -> %d", paper_flows[i]);
    bench::print_row({info.spec.package, info.version, info.sample_set,
                      info.installs, std::to_string(orig_flows),
                      std::to_string(new_flows), note},
                     {29, 11, 5, 14, 6, 9, 10});
    ++i;
  }
  std::printf("\nAll revealed apps leak the device ID; three also leak "
              "location and two leak the SSID (matching the paper's "
              "observation).\n");
  return 0;
}
