// Interpreter dispatch throughput across the three tiers — decode-every-step
// (DispatchMode::kBaseline, reported as "fallback"), the predecoded cached
// path ("cached") and the direct-threaded + superinstruction path
// ("threaded") — over two workloads:
//
//   hot_loop — a tight loop exercising every inline cache the cached path
//              adds (const-string, sget/sput, invoke-static, monomorphic
//              invoke-virtual) plus a dispatch-heavy stretch of the three
//              fusable pairs (cmp+branch, const+move, iget+invoke) the
//              threaded tier compiles into superinstructions;
//   self_mod — the same loop with a native patching a const literal every
//              iteration through RtMethod::patch_code_unit, measuring
//              per-iteration targeted invalidation (fused-span splitting
//              included).
//
// Each line prefixed BENCH_JSON is machine-readable; ci.sh collects them
// into BENCH_interp.json and relies on the exit code: non-zero when any
// workload's tier ladder regresses (ARCHITECTURE invariant 13 — every tier
// must beat the one below it).
//
// Usage: interp_dispatch [--loops N] [--reps R] [--min-speedup X]
//                        [--min-threaded-speedup Y] [--min-ladder Z]
//   --min-speedup           hot_loop cached vs fallback gate
//   --min-threaded-speedup  hot_loop threaded vs cached gate
//   --min-ladder            self_mod gate for both adjacent-tier ratios
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/assembler.h"
#include "src/dex/builder.h"
#include "src/dex/io.h"
#include "src/runtime/runtime.h"

using namespace dexlego;
using bc::MethodAssembler;
using bc::Op;

namespace {

struct Workload {
  std::vector<uint8_t> dex_bytes;
  bool self_mod = false;
};

// Lbench/Hot; with a spin(n) loop touching every cached resolution kind and
// all three superinstruction families.
Workload build_hot_loop(bool self_mod) {
  dex::DexBuilder b;
  const std::string cls = "Lbench/Hot;";
  uint32_t acc = b.intern_field(cls, "I", "acc");
  uint32_t fld = b.intern_field(cls, "I", "f");
  uint32_t step_m = b.intern_method(cls, "step", "I", {"I"});
  uint32_t vstep_m = b.intern_method(cls, "vstep", "I", {"I"});
  uint32_t bump_m = b.intern_method(cls, "bump", "V", {});
  uint32_t key = b.intern_string("bench/hot-key");

  b.start_class(cls);
  b.add_static_field("acc", "I", dex::DexBuilder::int_value(0));
  b.add_instance_field("f", "I");
  {
    MethodAssembler as(2, 1);  // static step(v1) -> v1 + 3
    as.add_lit8(0, 1, 3);
    as.return_value(0);
    b.add_direct_method("step", "I", {"I"}, as.finish());
  }
  {
    MethodAssembler as(3, 2);  // virtual vstep(this v1, n v2) -> n * 2
    as.mul_lit8(0, 2, 2);
    as.return_value(0);
    b.add_virtual_method("vstep", "I", {"I"}, as.finish());
  }
  if (self_mod) b.add_native_method("bump", "V", {});
  {
    // virtual spin(this v8, n v9): the measured loop.
    MethodAssembler as(10, 2);
    auto loop = as.make_label();
    auto done = as.make_label();
    as.const16(0, 0);  // i
    as.bind(loop);
    as.if_test(Op::kIfGe, 0, 9, done);
    as.const_string(1, static_cast<uint16_t>(key));
    as.sget(2, static_cast<uint16_t>(acc));
    as.const16(3, 7);  // self_mod: bump() rewrites this literal
    as.binop(Op::kAdd, 2, 2, 3);
    as.sput(2, static_cast<uint16_t>(acc));
    as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(step_m), {0});
    as.move_result(4);
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(vstep_m), {8, 4});
    as.move_result(4);
    // Fusable stretch — a dispatch-heavy unrolled run of the cmp+branch and
    // const+move superinstruction families (the threaded tier executes each
    // pair as one dispatch), plus one iget+invoke pair per iteration.
    for (int u = 0; u < 64; ++u) {
      as.binop(Op::kCmp, 6, 0, 9);       // cmp+branch head (i < n in body...)
      as.if_testz(Op::kIfGez, 6, done);  // ...so this tail never takes
      as.const16(7, 5);                  // const+move pair
      as.move(6, 7);
    }
    as.iget(7, 8, static_cast<uint16_t>(fld));  // iget+invoke pair
    as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(step_m), {7});
    as.move_result(7);
    if (self_mod) as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(bump_m), {8});
    as.add_lit8(0, 0, 1);
    as.goto_(loop);
    as.bind(done);
    as.sget(5, static_cast<uint16_t>(acc));
    as.return_value(5);
    b.add_virtual_method("spin", "I", {"I"}, as.finish());
  }

  Workload w;
  w.dex_bytes = dex::write_dex(std::move(b).build());
  w.self_mod = self_mod;
  return w;
}

struct Measurement {
  uint64_t steps = 0;
  double wall_ms = 0.0;
  double insns_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(steps) / (wall_ms / 1e3) : 0.0;
  }
};

// One live runtime with the workload installed and warmed, ready to be
// measured repeatedly. Keeping all modes' runners alive and alternating
// measurements de-correlates machine noise from the mode (a noise burst
// hits every side instead of whichever mode ran last).
struct Runner {
  std::unique_ptr<rt::Runtime> runtime;
  rt::RtMethod* spin = nullptr;
  rt::Object* self = nullptr;

  Measurement measure(int loops) {
    uint64_t before = runtime->interp().steps();
    support::Stopwatch sw;
    rt::ExecOutcome out = runtime->interp().invoke(
        *spin, {rt::Value::Ref(self), rt::Value::Int(loops)});
    double wall = sw.elapsed_ms();
    if (!out.completed) {
      std::fprintf(stderr, "workload did not complete: %s\n",
                   out.abort_reason.c_str());
      std::exit(2);
    }
    return {runtime->interp().steps() - before, wall};
  }
};

Runner make_runner(const Workload& w, rt::DispatchMode mode) {
  rt::RuntimeConfig cfg;
  cfg.dispatch = mode;
  Runner r;
  r.runtime = std::make_unique<rt::Runtime>(cfg);
  rt::Runtime& runtime = *r.runtime;
  if (w.self_mod) {
    // Patches the loop's const/16 literal every call — an announced
    // self-modification the cached path must absorb without rebuilds.
    runtime.register_native(
        "Lbench/Hot;->bump", [](rt::NativeContext& ctx, std::span<rt::Value>) {
          rt::RtClass* cls = ctx.runtime.linker().find_loaded("Lbench/Hot;");
          if (cls == nullptr) return rt::Value::Null();
          rt::RtMethod* spin = cls->find_declared("spin");
          // const/16 v3 is patched every call; locate it by scanning for the
          // opcode with a=3 once, then patch its literal.
          static thread_local size_t lit_pc = 0;
          if (lit_pc == 0 && spin != nullptr && spin->code) {
            std::span<const uint16_t> insns(spin->code->insns);
            for (size_t pc = 0; pc < insns.size();) {
              bc::Insn insn = bc::decode_at(insns, pc);
              if (insn.op == bc::Op::kConst16 && insn.a == 3) {
                lit_pc = pc;
                break;
              }
              pc += insn.width;
            }
          }
          if (spin != nullptr && spin->code && lit_pc != 0) {
            uint16_t cur = spin->code->insns[lit_pc + 1];
            spin->patch_code_unit(lit_pc + 1, static_cast<uint16_t>(cur ^ 2));
          }
          return rt::Value::Null();
        });
  }
  const rt::DexImage& image =
      runtime.load_dex_buffer(w.dex_bytes, "bench:interp_dispatch");
  (void)image;
  rt::RtClass* cls = runtime.linker().ensure_initialized("Lbench/Hot;");
  if (cls == nullptr) {
    std::fprintf(stderr, "workload class failed to load\n");
    std::exit(2);
  }
  r.self =
      runtime.heap().new_instance(cls, cls->descriptor, cls->instance_slot_count);
  r.spin = cls->find_declared("spin");

  // Warm-up call so all modes measure steady state (caches built, classes
  // initialized, field resolutions memoized so fused fast paths arm) rather
  // than first-run setup.
  runtime.interp().invoke(*r.spin, {rt::Value::Ref(r.self), rt::Value::Int(100)});
  return r;
}

const char* mode_name(rt::DispatchMode mode) {
  switch (mode) {
    case rt::DispatchMode::kCached:
      return "cached";
    case rt::DispatchMode::kThreaded:
      return "threaded";
    case rt::DispatchMode::kBaseline:
      break;
  }
  return "fallback";
}

constexpr rt::DispatchMode kTierLadder[] = {rt::DispatchMode::kBaseline,
                                            rt::DispatchMode::kCached,
                                            rt::DispatchMode::kThreaded};

// Per-tier measurements for one workload, bottom of the ladder first.
struct TierResults {
  Measurement m[3];
  double cached_vs_fallback() const {
    return m[0].insns_per_sec() > 0.0
               ? m[1].insns_per_sec() / m[0].insns_per_sec()
               : 0.0;
  }
  double threaded_vs_cached() const {
    return m[1].insns_per_sec() > 0.0
               ? m[2].insns_per_sec() / m[1].insns_per_sec()
               : 0.0;
  }
};

// Best-of-`reps`, alternating the three runners each rep.
TierResults measure_tiers(Runner* runners, int loops, int reps) {
  TierResults best;
  for (int i = 0; i < reps; ++i) {
    for (int t = 0; t < 3; ++t) {
      Measurement m = runners[t].measure(loops);
      if (best.m[t].wall_ms == 0.0 ||
          m.insns_per_sec() > best.m[t].insns_per_sec()) {
        best.m[t] = m;
      }
    }
  }
  return best;
}

void report(const char* workload, rt::DispatchMode mode, int loops,
            const Measurement& m) {
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.0f", m.insns_per_sec());
  bench::print_row({workload, mode_name(mode), std::to_string(m.steps),
                    std::to_string(m.wall_ms).substr(0, 6), rate},
                   {12, 10, 12, 10, 14});
  std::printf(
      "BENCH_JSON {\"bench\":\"interp_dispatch\",\"workload\":\"%s\","
      "\"mode\":\"%s\",\"loops\":%d,\"steps\":%llu,\"wall_ms\":%.3f,"
      "\"insns_per_sec\":%.0f}\n",
      workload, mode_name(mode), loops,
      static_cast<unsigned long long>(m.steps), m.wall_ms, m.insns_per_sec());
}

// Workload summary line + ladder gate: cached must beat fallback by
// min_cached, threaded must beat cached by min_threaded. Returns pass.
bool summarize(const char* workload, const TierResults& r, double min_cached,
               double min_threaded) {
  double cf = r.cached_vs_fallback();
  double tc = r.threaded_vs_cached();
  bool pass = cf >= min_cached && tc >= min_threaded;
  std::printf(
      "\n%s speedups: cached vs fallback %.2fx (min %.2f), threaded vs "
      "cached %.2fx (min %.2f)\n",
      workload, cf, min_cached, tc, min_threaded);
  std::printf(
      "BENCH_JSON {\"bench\":\"interp_dispatch\",\"workload\":\"%s\","
      "\"speedup_cached_vs_fallback\":%.3f,\"speedup_threaded_vs_cached\":"
      "%.3f,\"min_required\":%.2f,\"min_threaded_required\":%.2f,"
      "\"pass\":%s}\n",
      workload, cf, tc, min_cached, min_threaded, pass ? "true" : "false");
  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: %s tier ladder regressed: cached %.2fx (>= %.2f), "
                 "threaded %.2fx (>= %.2f)\n",
                 workload, cf, min_cached, tc, min_threaded);
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  int loops = 300000;
  int reps = 3;
  double min_speedup = 1.0;           // hot_loop: cached vs fallback
  double min_threaded_speedup = 1.0;  // hot_loop: threaded vs cached
  double min_ladder = 1.0;            // self_mod: both adjacent ratios
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loops") == 0 && i + 1 < argc) {
      loops = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-threaded-speedup") == 0 &&
               i + 1 < argc) {
      min_threaded_speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-ladder") == 0 && i + 1 < argc) {
      min_ladder = std::atof(argv[++i]);
    }
  }
  if (loops < 1) loops = 1;
  if (reps < 1) reps = 1;

  bench::print_header(
      "Interpreter dispatch (fallback vs cached vs threaded)");
  bench::print_row({"Workload", "Mode", "Steps", "Wall ms", "Insns/sec"},
                   {12, 10, 12, 10, 14});

  Workload hot = build_hot_loop(false);
  Runner hot_runners[3];
  for (int t = 0; t < 3; ++t) hot_runners[t] = make_runner(hot, kTierLadder[t]);
  TierResults hot_r = measure_tiers(hot_runners, loops, reps);
  for (int t = 0; t < 3; ++t) {
    report("hot_loop", kTierLadder[t], loops, hot_r.m[t]);
  }

  // Self-modifying variant: announced per-iteration patches, including the
  // fused-span split every patch forces in the threaded tier.
  int sm_loops = loops / 10 > 0 ? loops / 10 : 1;
  Workload sm = build_hot_loop(true);
  Runner sm_runners[3];
  for (int t = 0; t < 3; ++t) sm_runners[t] = make_runner(sm, kTierLadder[t]);
  TierResults sm_r = measure_tiers(sm_runners, sm_loops, reps);
  for (int t = 0; t < 3; ++t) {
    report("self_mod", kTierLadder[t], sm_loops, sm_r.m[t]);
  }

  bool ok = summarize("hot_loop", hot_r, min_speedup, min_threaded_speedup);
  ok = summarize("self_mod", sm_r, min_ladder, min_ladder) && ok;
  return ok ? 0 : 1;
}
