// Interpreter dispatch throughput: the predecoded cached path
// (DispatchMode::kCached) vs the decode-every-step fallback
// (DispatchMode::kBaseline) over two workloads:
//
//   hot_loop — a tight loop exercising every inline cache the cached path
//              adds: const-string (interned literal cache), sget/sput
//              (field cache), invoke-static (method cache), invoke-virtual
//              (monomorphic call-site cache), plus arithmetic and branches;
//   self_mod — the same loop with a native patching a const literal every
//              iteration through RtMethod::patch_code_unit, measuring the
//              cost of per-iteration targeted invalidation.
//
// Each line prefixed BENCH_JSON is machine-readable; ci.sh collects them
// into BENCH_interp.json and relies on the exit code: non-zero when the
// cached path is slower than the fallback on hot_loop (--min-speedup).
//
// Usage: interp_dispatch [--loops N] [--reps R] [--min-speedup X]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/bytecode/assembler.h"
#include "src/dex/builder.h"
#include "src/dex/io.h"
#include "src/runtime/runtime.h"

using namespace dexlego;
using bc::MethodAssembler;
using bc::Op;

namespace {

struct Workload {
  std::vector<uint8_t> dex_bytes;
  bool self_mod = false;
};

// Lbench/Hot; with a spin(n) loop touching every cached resolution kind.
Workload build_hot_loop(bool self_mod) {
  dex::DexBuilder b;
  const std::string cls = "Lbench/Hot;";
  uint32_t acc = b.intern_field(cls, "I", "acc");
  uint32_t step_m = b.intern_method(cls, "step", "I", {"I"});
  uint32_t vstep_m = b.intern_method(cls, "vstep", "I", {"I"});
  uint32_t bump_m = b.intern_method(cls, "bump", "V", {});
  uint32_t key = b.intern_string("bench/hot-key");

  b.start_class(cls);
  b.add_static_field("acc", "I", dex::DexBuilder::int_value(0));
  {
    MethodAssembler as(2, 1);  // static step(v1) -> v1 + 3
    as.add_lit8(0, 1, 3);
    as.return_value(0);
    b.add_direct_method("step", "I", {"I"}, as.finish());
  }
  {
    MethodAssembler as(3, 2);  // virtual vstep(this v1, n v2) -> n * 2
    as.mul_lit8(0, 2, 2);
    as.return_value(0);
    b.add_virtual_method("vstep", "I", {"I"}, as.finish());
  }
  if (self_mod) b.add_native_method("bump", "V", {});
  {
    // virtual spin(this v6, n v7): the measured loop.
    MethodAssembler as(8, 2);
    auto loop = as.make_label();
    auto done = as.make_label();
    as.const16(0, 0);  // i
    as.bind(loop);
    as.if_test(Op::kIfGe, 0, 7, done);
    as.const_string(1, static_cast<uint16_t>(key));
    as.sget(2, static_cast<uint16_t>(acc));
    as.const16(3, 7);  // self_mod: bump() rewrites this literal
    as.binop(Op::kAdd, 2, 2, 3);
    as.sput(2, static_cast<uint16_t>(acc));
    as.invoke(Op::kInvokeStatic, static_cast<uint16_t>(step_m), {0});
    as.move_result(4);
    as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(vstep_m), {6, 4});
    as.move_result(4);
    if (self_mod) as.invoke(Op::kInvokeVirtual, static_cast<uint16_t>(bump_m), {6});
    as.add_lit8(0, 0, 1);
    as.goto_(loop);
    as.bind(done);
    as.sget(5, static_cast<uint16_t>(acc));
    as.return_value(5);
    b.add_virtual_method("spin", "I", {"I"}, as.finish());
  }

  Workload w;
  w.dex_bytes = dex::write_dex(std::move(b).build());
  w.self_mod = self_mod;
  return w;
}

struct Measurement {
  uint64_t steps = 0;
  double wall_ms = 0.0;
  double insns_per_sec() const {
    return wall_ms > 0.0 ? static_cast<double>(steps) / (wall_ms / 1e3) : 0.0;
  }
};

// One live runtime with the workload installed and warmed, ready to be
// measured repeatedly. Keeping both modes' runners alive and alternating
// measurements de-correlates machine noise from the mode (a noise burst
// hits both sides instead of whichever mode ran second).
struct Runner {
  std::unique_ptr<rt::Runtime> runtime;
  rt::RtMethod* spin = nullptr;
  rt::Object* self = nullptr;

  Measurement measure(int loops) {
    uint64_t before = runtime->interp().steps();
    support::Stopwatch sw;
    rt::ExecOutcome out = runtime->interp().invoke(
        *spin, {rt::Value::Ref(self), rt::Value::Int(loops)});
    double wall = sw.elapsed_ms();
    if (!out.completed) {
      std::fprintf(stderr, "workload did not complete: %s\n",
                   out.abort_reason.c_str());
      std::exit(2);
    }
    return {runtime->interp().steps() - before, wall};
  }
};

Runner make_runner(const Workload& w, rt::DispatchMode mode) {
  rt::RuntimeConfig cfg;
  cfg.dispatch = mode;
  Runner r;
  r.runtime = std::make_unique<rt::Runtime>(cfg);
  rt::Runtime& runtime = *r.runtime;
  if (w.self_mod) {
    // Patches the loop's const/16 literal every call — an announced
    // self-modification the cached path must absorb without rebuilds.
    runtime.register_native(
        "Lbench/Hot;->bump", [](rt::NativeContext& ctx, std::span<rt::Value>) {
          rt::RtClass* cls = ctx.runtime.linker().find_loaded("Lbench/Hot;");
          if (cls == nullptr) return rt::Value::Null();
          rt::RtMethod* spin = cls->find_declared("spin");
          // const/16 v3 is the 8th code unit pair in the loop; locate it by
          // scanning for the opcode with a=3 once, then patch its literal.
          static thread_local size_t lit_pc = 0;
          if (lit_pc == 0 && spin != nullptr && spin->code) {
            std::span<const uint16_t> insns(spin->code->insns);
            for (size_t pc = 0; pc < insns.size();) {
              bc::Insn insn = bc::decode_at(insns, pc);
              if (insn.op == bc::Op::kConst16 && insn.a == 3) {
                lit_pc = pc;
                break;
              }
              pc += insn.width;
            }
          }
          if (spin != nullptr && spin->code && lit_pc != 0) {
            uint16_t cur = spin->code->insns[lit_pc + 1];
            spin->patch_code_unit(lit_pc + 1, static_cast<uint16_t>(cur ^ 2));
          }
          return rt::Value::Null();
        });
  }
  const rt::DexImage& image =
      runtime.load_dex_buffer(w.dex_bytes, "bench:interp_dispatch");
  (void)image;
  rt::RtClass* cls = runtime.linker().ensure_initialized("Lbench/Hot;");
  if (cls == nullptr) {
    std::fprintf(stderr, "workload class failed to load\n");
    std::exit(2);
  }
  r.self =
      runtime.heap().new_instance(cls, cls->descriptor, cls->instance_slot_count);
  r.spin = cls->find_declared("spin");

  // Warm-up call so both modes measure steady state (caches built, classes
  // initialized) rather than first-run setup.
  runtime.interp().invoke(*r.spin, {rt::Value::Ref(r.self), rt::Value::Int(100)});
  return r;
}

// Best-of-`reps`, alternating the two runners each rep.
std::pair<Measurement, Measurement> measure_pair(Runner& a, Runner& b,
                                                 int loops, int reps) {
  Measurement best_a, best_b;
  for (int i = 0; i < reps; ++i) {
    Measurement ma = a.measure(loops);
    Measurement mb = b.measure(loops);
    if (best_a.wall_ms == 0.0 || ma.insns_per_sec() > best_a.insns_per_sec()) {
      best_a = ma;
    }
    if (best_b.wall_ms == 0.0 || mb.insns_per_sec() > best_b.insns_per_sec()) {
      best_b = mb;
    }
  }
  return {best_a, best_b};
}

const char* mode_name(rt::DispatchMode mode) {
  return mode == rt::DispatchMode::kCached ? "cached" : "fallback";
}

void report(const char* workload, rt::DispatchMode mode, int loops,
            const Measurement& m) {
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.0f", m.insns_per_sec());
  bench::print_row({workload, mode_name(mode), std::to_string(m.steps),
                    std::to_string(m.wall_ms).substr(0, 6), rate},
                   {12, 10, 12, 10, 14});
  std::printf(
      "BENCH_JSON {\"bench\":\"interp_dispatch\",\"workload\":\"%s\","
      "\"mode\":\"%s\",\"loops\":%d,\"steps\":%llu,\"wall_ms\":%.3f,"
      "\"insns_per_sec\":%.0f}\n",
      workload, mode_name(mode), loops,
      static_cast<unsigned long long>(m.steps), m.wall_ms, m.insns_per_sec());
}

}  // namespace

int main(int argc, char** argv) {
  int loops = 300000;
  int reps = 3;
  double min_speedup = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loops") == 0 && i + 1 < argc) {
      loops = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    }
  }
  if (loops < 1) loops = 1;
  if (reps < 1) reps = 1;

  bench::print_header("Interpreter dispatch (cached vs decode-every-step)");
  bench::print_row({"Workload", "Mode", "Steps", "Wall ms", "Insns/sec"},
                   {12, 10, 12, 10, 14});

  Workload hot = build_hot_loop(false);
  Runner hot_cached = make_runner(hot, rt::DispatchMode::kCached);
  Runner hot_fallback = make_runner(hot, rt::DispatchMode::kBaseline);
  auto [cached, fallback] = measure_pair(hot_cached, hot_fallback, loops, reps);
  report("hot_loop", rt::DispatchMode::kCached, loops, cached);
  report("hot_loop", rt::DispatchMode::kBaseline, loops, fallback);

  double speedup = fallback.insns_per_sec() > 0.0
                       ? cached.insns_per_sec() / fallback.insns_per_sec()
                       : 0.0;
  std::printf("\nhot_loop speedup (cached vs fallback): %.2fx\n", speedup);
  std::printf(
      "BENCH_JSON {\"bench\":\"interp_dispatch\",\"workload\":\"hot_loop\","
      "\"speedup_cached_vs_fallback\":%.3f,\"min_required\":%.2f,"
      "\"pass\":%s}\n",
      speedup, min_speedup, speedup >= min_speedup ? "true" : "false");

  // Self-modifying variant: announced per-iteration patches. Reported for
  // the trajectory; not gated (invalidations are supposed to cost).
  int sm_loops = loops / 10 > 0 ? loops / 10 : 1;
  Workload sm = build_hot_loop(true);
  Runner sm_cached_r = make_runner(sm, rt::DispatchMode::kCached);
  Runner sm_fallback_r = make_runner(sm, rt::DispatchMode::kBaseline);
  auto [sm_cached, sm_fallback] =
      measure_pair(sm_cached_r, sm_fallback_r, sm_loops, reps);
  report("self_mod", rt::DispatchMode::kCached, sm_loops, sm_cached);
  report("self_mod", rt::DispatchMode::kBaseline, sm_loops, sm_fallback);

  if (speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: cached dispatch %.2fx vs fallback (required >= %.2fx)\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
