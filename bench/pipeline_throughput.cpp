// Batch-pipeline throughput: runs a corpus through pipeline::run_batch over
// a (threads x dedup-store shards) config matrix and reports apps/sec, the
// speedup over the sequential baseline and the dedup store's hit rate. Not
// a paper table — this measures the fleet capability the ROADMAP asks for,
// and (gated via ci.sh) proves the multi-core speedup is real on the
// 10k-app large_corpus scenario.
//
// Each line prefixed BENCH_JSON is machine-readable (one JSON object per
// config) so throughput trajectories can be tracked across commits. Every
// config's per-app dex fingerprints are compared against the first config's
// — any divergence across thread or shard counts is an immediate exit 1
// (the pipeline's byte-identity invariant, docs/ARCHITECTURE.md).
//
// Usage:
//   pipeline_throughput [--corpus droidbench|large] [--count N] [--repeat R]
//                       [--threads CSV] [--shards CSV]
//                       [--gate-threads T --min-speedup X]
//                       [--baseline-apps-per-sec Y] [--max-regression F]
//
//   --corpus    droidbench (134 samples x repeat) or large (the generated
//               large_corpus market population; default droidbench)
//   --count     large-corpus app count (default 10000)
//   --repeat    droidbench replication factor (default 3)
//   --threads   comma list of worker counts (default 1,2,4,8; the first
//               entry must be 1 — it is the speedup baseline)
//   --shards    comma list of DedupStore shard counts (default 64)
//   --gate-threads/--min-speedup
//               exit 1 unless speedup_vs_1t at that thread count (first
//               shard config) reaches the bar — ci.sh sets 4/2.0 on hosts
//               with >= 4 hardware threads, reporting-only elsewhere
//   --baseline-apps-per-sec/--max-regression
//               exit 1 if the 1-thread apps/sec of the first shard config
//               falls more than the fraction (default 0.10) below the
//               recorded baseline (ci.sh reads bench/pipeline_baseline.json)
//
// A bare positional number is accepted as the legacy droidbench repeat.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/scenarios.h"

using namespace dexlego;

namespace {

std::vector<size_t> parse_csv(const char* text, size_t min, size_t max) {
  std::vector<size_t> values;
  std::string item;
  for (const char* p = text;; ++p) {
    if (*p != '\0' && *p != ',') {
      item.push_back(*p);
      continue;
    }
    char* end = nullptr;
    long value = std::strtol(item.c_str(), &end, 10);
    if (item.empty() || end == nullptr || *end != '\0' ||
        value < static_cast<long>(min) || value > static_cast<long>(max)) {
      std::fprintf(stderr, "invalid list entry '%s' (want %zu..%zu)\n",
                   item.c_str(), min, max);
      std::exit(2);
    }
    values.push_back(static_cast<size_t>(value));
    item.clear();
    if (*p == '\0') break;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus = "droidbench";
  size_t count = 10000;
  int repeat = 3;
  std::vector<size_t> thread_list = {1, 2, 4, 8};
  std::vector<size_t> shard_list = {64};
  size_t gate_threads = 0;
  double min_speedup = 0.0;
  double baseline_apps_per_sec = 0.0;
  double max_regression = 0.10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--corpus") {
      corpus = next();
    } else if (arg == "--count") {
      count = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--repeat") {
      repeat = std::atoi(next());
    } else if (arg == "--threads") {
      thread_list = parse_csv(next(), 1, 256);
    } else if (arg == "--shards") {
      shard_list = parse_csv(next(), 1, 256);
    } else if (arg == "--gate-threads") {
      gate_threads = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(next());
    } else if (arg == "--baseline-apps-per-sec") {
      baseline_apps_per_sec = std::atof(next());
    } else if (arg == "--max-regression") {
      max_regression = std::atof(next());
    } else if (arg.find_first_not_of("0123456789") == std::string::npos &&
               !arg.empty()) {
      repeat = std::atoi(arg.c_str());  // legacy positional droidbench repeat
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (repeat < 1) repeat = 1;
  if (count < 1) count = 1;
  if (thread_list.empty() || thread_list[0] != 1) {
    std::fprintf(stderr, "--threads list must start with 1 (the baseline)\n");
    return 2;
  }

  std::vector<pipeline::BatchJob> jobs;
  std::string label;
  if (corpus == "droidbench") {
    jobs = pipeline::replicate_jobs(pipeline::droidbench_jobs(), repeat);
    label = "DroidBench x" + std::to_string(repeat);
  } else if (corpus == "large" || corpus == "large_corpus") {
    corpus = "large_corpus";
    jobs = pipeline::large_corpus_jobs(count);
    label = "large_corpus market population";
  } else {
    std::fprintf(stderr, "unknown corpus '%s'\n", corpus.c_str());
    return 2;
  }

  bench::print_header("Batch pipeline throughput (" + label + ", " +
                      std::to_string(jobs.size()) + " jobs)");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  bench::print_row({"Threads", "Shards", "Wall ms", "Apps/sec", "Speedup",
                    "Dedup hit", "Verified"},
                   {10, 8, 12, 12, 10, 12, 10});

  // Per-app fingerprints of the first config: every other config must
  // reproduce them bit for bit, whatever its thread or shard count.
  std::vector<uint64_t> reference;
  size_t identity_mismatches = 0;
  double sequential_ms = 0.0;       // 1-thread wall of the FIRST shard config
  double sequential_rate = 0.0;     // its apps/sec
  double gate_speedup = -1.0;       // speedup at the gate config, if run

  for (size_t si = 0; si < shard_list.size(); ++si) {
    for (size_t threads : thread_list) {
      pipeline::BatchOptions options;
      options.threads = threads;
      options.store_shards = shard_list[si];
      options.keep_dex = false;  // throughput run; don't hold every DEX
      pipeline::BatchReport report = pipeline::run_batch(jobs, options);
      const pipeline::FleetStats& fleet = report.fleet;

      if (reference.empty()) {
        reference.reserve(report.jobs.size());
        for (const pipeline::JobResult& job : report.jobs) {
          reference.push_back(job.dex_fingerprint);
        }
      } else {
        for (size_t j = 0; j < report.jobs.size(); ++j) {
          if (report.jobs[j].dex_fingerprint != reference[j]) {
            ++identity_mismatches;
            std::fprintf(stderr,
                         "IDENTITY MISMATCH at threads=%zu shards=%zu: %s\n",
                         threads, shard_list[si],
                         report.jobs[j].name.c_str());
          }
        }
      }

      if (si == 0 && threads == 1) {
        sequential_ms = fleet.wall_ms;
        sequential_rate = fleet.apps_per_sec;
      }
      double speedup =
          fleet.wall_ms > 0.0 ? sequential_ms / fleet.wall_ms : 0.0;
      if (si == 0 && threads == gate_threads) gate_speedup = speedup;

      char wall_s[24], rate_s[24], speed_s[16], hit_s[16], ver_s[16];
      std::snprintf(wall_s, sizeof(wall_s), "%.1f", fleet.wall_ms);
      std::snprintf(rate_s, sizeof(rate_s), "%.1f", fleet.apps_per_sec);
      std::snprintf(speed_s, sizeof(speed_s), "%.2fx", speedup);
      std::snprintf(hit_s, sizeof(hit_s), "%.1f%%",
                    fleet.dedup_hit_rate * 100.0);
      std::snprintf(ver_s, sizeof(ver_s), "%zu/%zu", fleet.verified,
                    fleet.jobs);
      bench::print_row({std::to_string(threads),
                        std::to_string(shard_list[si]), wall_s, rate_s,
                        speed_s, hit_s, ver_s},
                       {10, 8, 12, 12, 10, 12, 10});

      std::printf(
          "BENCH_JSON {\"bench\":\"pipeline_throughput\",\"corpus\":\"%s\","
          "\"threads\":%zu,\"shards\":%zu,\"jobs\":%zu,\"wall_ms\":%.2f,"
          "\"apps_per_sec\":%.2f,\"speedup_vs_1t\":%.3f,"
          "\"dedup_hit_rate\":%.4f,\"store_entries\":%zu,"
          "\"bytes_deduped\":%llu,\"verified\":%zu,\"queue_pops\":%llu,"
          "\"queue_tasks\":%llu,\"max_chunk\":%zu}\n",
          corpus.c_str(), threads, shard_list[si], fleet.jobs, fleet.wall_ms,
          fleet.apps_per_sec, speedup, fleet.dedup_hit_rate,
          fleet.store.entries,
          static_cast<unsigned long long>(fleet.store.bytes_deduped),
          fleet.verified, static_cast<unsigned long long>(fleet.queue_pops),
          static_cast<unsigned long long>(fleet.queue_tasks),
          fleet.max_chunk);
    }
  }

  bool failed = false;
  if (identity_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu per-app outputs diverged across configs\n",
                 identity_mismatches);
    failed = true;
  }
  if (min_speedup > 0.0 && gate_threads > 0) {
    if (gate_speedup < 0.0) {
      std::fprintf(stderr,
                   "FAIL: gate threads %zu not in the --threads list\n",
                   gate_threads);
      failed = true;
    } else if (gate_speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: speedup at %zu threads is %.2fx, below the %.2fx "
                   "gate\n",
                   gate_threads, gate_speedup, min_speedup);
      failed = true;
    } else {
      std::printf("speedup gate passed: %.2fx at %zu threads (>= %.2fx)\n",
                  gate_speedup, gate_threads, min_speedup);
    }
  }
  if (baseline_apps_per_sec > 0.0) {
    double floor = baseline_apps_per_sec * (1.0 - max_regression);
    if (sequential_rate < floor) {
      std::fprintf(stderr,
                   "FAIL: 1-thread throughput %.1f apps/sec regressed more "
                   "than %.0f%% below the recorded baseline %.1f\n",
                   sequential_rate, max_regression * 100.0,
                   baseline_apps_per_sec);
      failed = true;
    } else {
      std::printf(
          "baseline gate passed: %.1f apps/sec at 1 thread (baseline %.1f, "
          "floor %.1f)\n",
          sequential_rate, baseline_apps_per_sec, floor);
    }
  }
  std::printf(
      "\n(speedups track the cores the container actually grants; on a "
      "single-core box every row is ~1x)\n");
  return failed ? 1 : 0;
}
