// Batch-pipeline throughput: runs the full DroidBench-analog set through
// pipeline::run_batch at 1, 2, 4 and 8 threads and reports apps/sec, the
// speedup over the sequential baseline and the dedup store's hit rate. Not
// a paper table — this measures the fleet capability the ROADMAP asks for.
//
// Each line prefixed BENCH_JSON is machine-readable (one JSON object per
// thread count) so throughput trajectories can be tracked across commits.
//
// Usage: pipeline_throughput [repeat]
//   repeat (default 3) replicates the job list to lengthen the run; dedup
//   hit rates climb with repeat because repeated apps intern identical
//   method bodies.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/scenarios.h"

using namespace dexlego;

int main(int argc, char** argv) {
  int repeat = argc > 1 ? std::atoi(argv[1]) : 3;
  if (repeat < 1) repeat = 1;

  std::vector<pipeline::BatchJob> jobs =
      pipeline::replicate_jobs(pipeline::droidbench_jobs(), repeat);

  bench::print_header("Batch pipeline throughput (DroidBench x" +
                      std::to_string(repeat) + ", " +
                      std::to_string(jobs.size()) + " jobs)");
  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  bench::print_row({"Threads", "Wall ms", "Apps/sec", "Speedup", "Dedup hit",
                    "Verified"},
                   {10, 12, 12, 10, 12, 10});

  double sequential_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    pipeline::BatchOptions options;
    options.threads = threads;
    options.keep_dex = false;  // throughput run; don't hold every DEX
    pipeline::BatchReport report = pipeline::run_batch(jobs, options);
    const pipeline::FleetStats& fleet = report.fleet;
    if (threads == 1) sequential_ms = fleet.wall_ms;
    double speedup =
        fleet.wall_ms > 0.0 ? sequential_ms / fleet.wall_ms : 0.0;

    char wall_s[24], rate_s[24], speed_s[16], hit_s[16], ver_s[16];
    std::snprintf(wall_s, sizeof(wall_s), "%.1f", fleet.wall_ms);
    std::snprintf(rate_s, sizeof(rate_s), "%.1f", fleet.apps_per_sec);
    std::snprintf(speed_s, sizeof(speed_s), "%.2fx", speedup);
    std::snprintf(hit_s, sizeof(hit_s), "%.1f%%",
                  fleet.dedup_hit_rate * 100.0);
    std::snprintf(ver_s, sizeof(ver_s), "%zu/%zu", fleet.verified, fleet.jobs);
    bench::print_row({std::to_string(threads), wall_s, rate_s, speed_s, hit_s,
                      ver_s},
                     {10, 12, 12, 10, 12, 10});

    std::printf(
        "BENCH_JSON {\"bench\":\"pipeline_throughput\",\"threads\":%zu,"
        "\"jobs\":%zu,\"wall_ms\":%.2f,\"apps_per_sec\":%.2f,"
        "\"speedup_vs_1t\":%.3f,\"dedup_hit_rate\":%.4f,"
        "\"store_entries\":%zu,\"bytes_deduped\":%llu,\"verified\":%zu}\n",
        threads, fleet.jobs, fleet.wall_ms, fleet.apps_per_sec, speedup,
        fleet.dedup_hit_rate, fleet.store.entries,
        static_cast<unsigned long long>(fleet.store.bytes_deduped),
        fleet.verified);
  }
  std::printf(
      "\n(speedups track the cores the container actually grants; on a "
      "single-core box every row is ~1x)\n");
  return 0;
}
