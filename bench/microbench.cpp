// google-benchmark microbenchmarks for the library's hot paths: interpreter
// throughput with and without collection hooks, LDEX serialization, the
// reassembler and the static analyzer. Complements the table benches with
// per-component numbers.
#include <benchmark/benchmark.h>

#include "src/analysis/static_taint.h"
#include "src/benchsuite/appgen.h"
#include "src/core/collector.h"
#include "src/core/dexlego.h"
#include "src/core/files.h"
#include "src/core/reassembler.h"
#include "src/dex/io.h"

using namespace dexlego;

namespace {

const suite::GeneratedApp& bench_app() {
  static suite::GeneratedApp app = [] {
    suite::AppSpec spec;
    spec.name = "micro";
    spec.package = "bench.micro";
    spec.seed = 7;
    spec.target_units = 4000;
    spec.full_coverage_style = true;
    return suite::generate_app(spec);
  }();
  return app;
}

const core::CollectionOutput& bench_collection() {
  static core::CollectionOutput output = [] {
    core::Collector collector;
    rt::Runtime runtime;
    runtime.add_hooks(&collector);
    runtime.install(bench_app().apk);
    runtime.launch();
    return collector.take_output();
  }();
  return output;
}

void BM_InterpreterPlain(benchmark::State& state) {
  for (auto _ : state) {
    rt::Runtime runtime;
    runtime.install(bench_app().apk);
    runtime.launch();
    benchmark::DoNotOptimize(runtime.interp().steps());
    state.counters["steps"] = static_cast<double>(runtime.interp().steps());
  }
}
BENCHMARK(BM_InterpreterPlain)->Unit(benchmark::kMillisecond);

void BM_InterpreterWithCollection(benchmark::State& state) {
  for (auto _ : state) {
    core::Collector collector;
    rt::Runtime runtime;
    runtime.add_hooks(&collector);
    runtime.install(bench_app().apk);
    runtime.launch();
    benchmark::DoNotOptimize(collector.output().total_instructions_observed);
  }
}
BENCHMARK(BM_InterpreterWithCollection)->Unit(benchmark::kMillisecond);

void BM_DexWrite(benchmark::State& state) {
  dex::DexFile file = dex::read_dex(bench_app().apk.classes());
  for (auto _ : state) {
    auto bytes = dex::write_dex(file);
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_DexWrite)->Unit(benchmark::kMicrosecond);

void BM_DexRead(benchmark::State& state) {
  auto bytes = bench_app().apk.classes();
  for (auto _ : state) {
    dex::DexFile file = dex::read_dex(bytes);
    benchmark::DoNotOptimize(file.classes.size());
  }
}
BENCHMARK(BM_DexRead)->Unit(benchmark::kMicrosecond);

void BM_EncodeCollection(benchmark::State& state) {
  for (auto _ : state) {
    core::CollectionFiles files = core::encode_collection(bench_collection());
    benchmark::DoNotOptimize(files.total_size());
  }
}
BENCHMARK(BM_EncodeCollection)->Unit(benchmark::kMicrosecond);

void BM_Reassemble(benchmark::State& state) {
  for (auto _ : state) {
    core::ReassembleResult result = core::reassemble(bench_collection());
    benchmark::DoNotOptimize(result.stats.output_code_units);
  }
}
BENCHMARK(BM_Reassemble)->Unit(benchmark::kMicrosecond);

void BM_StaticAnalysis(benchmark::State& state) {
  analysis::StaticAnalyzer analyzer(analysis::horndroid_config());
  dex::DexFile file = dex::read_dex(bench_app().apk.classes());
  for (auto _ : state) {
    auto result = analyzer.analyze(file);
    benchmark::DoNotOptimize(result.flows.size());
  }
}
BENCHMARK(BM_StaticAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
