// Force-execution throughput: runs the guarded generated population (the
// Table VII force workload) through pipeline::run_batch with ForceEngine
// exploration at 1, 2, 4 and 8 threads and reports forced paths/sec — the
// fleet-level metric for the worklist engine — plus the branch coverage it
// buys over the natural batch and over the legacy single-plan replay.
//
// Each line prefixed BENCH_JSON is machine-readable (one JSON object per
// thread count) so paths/sec trajectories can be tracked across commits.
//
// Usage: force_paths [apps] [units]
//   apps  (default 6)    guarded apps in the batch
//   units (default 4000) approximate code units per app
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/dexlego.h"
#include "src/coverage/force.h"
#include "src/dex/io.h"
#include "src/pipeline/batch.h"
#include "src/pipeline/scenarios.h"
#include "src/runtime/runtime.h"

using namespace dexlego;

int main(int argc, char** argv) {
  size_t apps = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 6;
  size_t units = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4000;
  if (apps < 1) apps = 1;
  if (units < 500) units = 500;

  std::vector<pipeline::BatchJob> jobs = pipeline::guarded_jobs(apps, 301, units);

  // Reference points: the natural batch and the legacy single-plan replay.
  pipeline::BatchReport natural = pipeline::run_batch(jobs, {});

  double legacy_branch = 0.0;
  size_t legacy_paths = 0;
  double legacy_ms = bench::time_call_ms([&]() {
    for (const pipeline::BatchJob& job : jobs) {
      dex::DexFile file = dex::read_dex(job.apk.classes());
      coverage::CoverageTracker seed;
      {
        rt::Runtime runtime;
        runtime.add_hooks(&seed);
        runtime.install(job.apk);
        core::default_driver(runtime, 0);
      }
      coverage::ForceOptions options;
      options.driver = [](rt::Runtime& rt) { core::default_driver(rt, 0); };
      coverage::ForceResult r =
          coverage::single_plan_force_execute(job.apk, options, seed);
      legacy_branch += r.coverage.report(file).branch_pct();
      legacy_paths += r.paths_executed;
    }
  });
  legacy_branch /= static_cast<double>(jobs.size());

  bench::print_header("Force-execution paths/sec (guarded x" +
                      std::to_string(apps) + ", ~" + std::to_string(units) +
                      " units each)");
  std::printf("hardware threads available: %u\n", std::thread::hardware_concurrency());
  std::printf("natural batch:      branch %.1f%%\n",
              natural.fleet.mean_branch_coverage * 100.0);
  std::printf("single-plan replay: branch %.1f%% (%zu paths, %.1f ms)\n\n",
              legacy_branch * 100.0, legacy_paths, legacy_ms);

  bench::print_row({"Threads", "Wall ms", "Paths", "Paths/sec", "Branch",
                    "Speedup"},
                   {10, 12, 8, 12, 10, 10});

  pipeline::enable_force(jobs, {});
  double sequential_ms = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    pipeline::BatchOptions options;
    options.threads = threads;
    options.keep_dex = false;
    pipeline::BatchReport report = pipeline::run_batch(jobs, options);
    const pipeline::FleetStats& fleet = report.fleet;
    if (threads == 1) sequential_ms = fleet.wall_ms;
    double paths_per_sec = fleet.wall_ms > 0.0
                               ? static_cast<double>(fleet.forced_paths) /
                                     (fleet.wall_ms / 1000.0)
                               : 0.0;
    double speedup = fleet.wall_ms > 0.0 ? sequential_ms / fleet.wall_ms : 0.0;

    char wall_s[24], paths_s[16], rate_s[24], branch_s[16], speed_s[16];
    std::snprintf(wall_s, sizeof(wall_s), "%.1f", fleet.wall_ms);
    std::snprintf(paths_s, sizeof(paths_s), "%zu", fleet.forced_paths);
    std::snprintf(rate_s, sizeof(rate_s), "%.1f", paths_per_sec);
    std::snprintf(branch_s, sizeof(branch_s), "%.1f%%",
                  fleet.mean_branch_coverage * 100.0);
    std::snprintf(speed_s, sizeof(speed_s), "%.2fx", speedup);
    bench::print_row({std::to_string(threads), wall_s, paths_s, rate_s,
                      branch_s, speed_s},
                     {10, 12, 8, 12, 10, 10});

    std::printf(
        "BENCH_JSON {\"bench\":\"force_paths\",\"threads\":%zu,\"jobs\":%zu,"
        "\"wall_ms\":%.2f,\"forced_paths\":%zu,\"paths_per_sec\":%.2f,"
        "\"mean_branch_coverage\":%.4f,\"natural_branch_coverage\":%.4f,"
        "\"single_plan_branch_coverage\":%.4f,\"speedup_vs_1t\":%.3f}\n",
        threads, fleet.jobs, fleet.wall_ms, fleet.forced_paths, paths_per_sec,
        fleet.mean_branch_coverage, natural.fleet.mean_branch_coverage,
        legacy_branch, speedup);
  }
  std::printf(
      "\n(paths/sec tracks the cores the container actually grants; on a "
      "single-core box every row is ~1x)\n");
  return 0;
}
