// Reproduces Table VIII: launch time (mean and standard deviation over 30
// launches) of three popular-app analogs with the unmodified runtime and
// with DexLego's collection attached.
//
// Paper reference (ms): Snapchat 826.9±52.11 -> 1664.7±16.08, Instagram
// 608.5±45.6 -> 1275.8±25.37, WhatsApp 236.4±12.24 -> 480.2±84.3 — about a
// 2x slowdown; the reproduction target is the ratio, not absolute ms.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/benchsuite/appgen.h"
#include "src/core/collector.h"

using namespace dexlego;

int main() {
  constexpr int kLaunches = 30;
  const char* paper[] = {"826.9 -> 1664.7 ms", "608.5 -> 1275.8 ms",
                         "236.4 -> 480.2 ms"};

  bench::print_header("Table VIII: Launch Time Consumption of DexLego");
  bench::print_row({"Application", "Original mean/std", "DexLego mean/std",
                    "Slowdown", "(paper)"},
                   {26, 20, 20, 10, 22});

  std::vector<suite::AppSpec> specs = suite::launch_apps();
  for (size_t i = 0; i < specs.size(); ++i) {
    suite::GeneratedApp app = suite::generate_app(specs[i]);
    bench::MeanStd timing[2];
    for (int mode = 0; mode < 2; ++mode) {
      std::vector<double> times;
      for (int run = 0; run < kLaunches; ++run) {
        rt::Runtime runtime;
        core::Collector collector;
        if (mode == 1) runtime.add_hooks(&collector);
        runtime.install(app.apk);
        // ActivityManager-style init+display window.
        times.push_back(bench::time_call_ms([&] { runtime.launch(); }));
      }
      timing[mode] = bench::mean_std(times);
    }
    char orig_s[40], lego_s[40], ratio_s[16];
    std::snprintf(orig_s, sizeof(orig_s), "%.2f / %.2f ms", timing[0].mean,
                  timing[0].stddev);
    std::snprintf(lego_s, sizeof(lego_s), "%.2f / %.2f ms", timing[1].mean,
                  timing[1].stddev);
    std::snprintf(ratio_s, sizeof(ratio_s), "%.2fx",
                  timing[1].mean / timing[0].mean);
    bench::print_row({specs[i].package, orig_s, lego_s, ratio_s, paper[i]},
                     {26, 20, 20, 10, 22});
  }
  std::printf("\n(paper observes about a 2x launch slowdown, matching the "
              "CF-Bench overall overhead)\n");
  return 0;
}
