// Reproduces Table I: four open-source apps at the paper's instruction
// counts, packed by each public packer preset, revealed by DexLego, and
// checked for full instruction/control-flow inclusion. NetQin / APKProtect /
// Ijiami report their paper unavailability reasons.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/benchsuite/appgen.h"
#include "src/core/dexlego.h"
#include "src/core/semantic_check.h"
#include "src/dex/io.h"
#include "src/packer/packer.h"

using namespace dexlego;

int main() {
  std::vector<suite::AppSpec> specs = suite::table1_apps();
  std::vector<suite::GeneratedApp> apps;
  std::vector<dex::DexFile> originals;

  bench::print_header("Table I: Test Result of Different Packers");
  std::printf("%-14s", "Applications");
  for (const suite::AppSpec& spec : specs) std::printf("%-12s", spec.name.c_str());
  std::printf("\n%-14s", "# of Insns");
  for (const suite::AppSpec& spec : specs) {
    suite::GeneratedApp app = suite::generate_app(spec);
    originals.push_back(dex::read_dex(app.apk.classes()));
    std::printf("%-12zu", app.code_units);
    apps.push_back(std::move(app));
  }
  std::printf("   (paper: 217 / 2,507 / 78,598 / 103,602)\n");

  for (const packer::PackerSpec& ps : packer::table1_packers()) {
    std::printf("%-14s", ps.vendor.c_str());
    if (!ps.available()) {
      std::printf("%s\n", ps.unavailable_reason.c_str());
      continue;
    }
    for (size_t i = 0; i < apps.size(); ++i) {
      auto packed = packer::pack(apps[i].apk, ps);
      core::DexLegoOptions options;
      options.configure_runtime = [](rt::Runtime& runtime) {
        packer::register_packer_natives(runtime);
      };
      core::DexLego dexlego(options);
      core::RevealResult result = dexlego.reveal(*packed);
      bool ok = result.verified;
      if (ok) {
        dex::DexFile revealed = dex::read_dex(result.revealed_apk.classes());
        core::ContainmentReport report =
            core::check_containment(originals[i], revealed);
        ok = report.ok;
        if (!ok && !report.missing.empty()) {
          std::fprintf(stderr, "[%s/%s] first missing: %s\n", ps.vendor.c_str(),
                       specs[i].name.c_str(), report.missing[0].c_str());
        }
      }
      std::printf("%-12s", ok ? "PASS" : "FAIL");
    }
    std::printf("\n");
  }
  std::printf("\nPASS = collection + reassembling succeeded and every original "
              "instruction/control flow is included in the revealed DEX "
              "(paper: check marks for 360/Alibaba/Tencent/Baidu/Bangcle).\n");
  return 0;
}
