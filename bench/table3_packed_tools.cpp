// Reproduces Table III: the DroidBench suite packed with the 360 preset,
// processed by the DexHunter / AppSpear baselines and by DexLego, then
// analyzed by the three static tools. Also prints the DexHunter/AppSpear
// series of Fig. 5.
//
// Paper reference:
//   FlowDroid  DH/AS TP 84 FP 10 | DexLego TP 95  FP 4
//   DroidSafe  DH/AS TP 98 FP 12 | DexLego TP 105 FP 7
//   HornDroid  DH/AS TP 101 FP 9 | DexLego TP 106 FP 4
//   (DexHunter and AppSpear recover the original DEX plus dynamically loaded
//    code, i.e. original + 3 TPs, but miss self-modifying code/reflection;
//    their F-measure gain is < 3%.)
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/analysis/static_taint.h"
#include "src/benchsuite/droidbench.h"
#include "src/core/dexlego.h"
#include "src/packer/packer.h"
#include "src/unpackers/unpackers.h"

using namespace dexlego;

int main() {
  suite::DroidBench db = suite::build_droidbench();
  packer::PackerSpec ps = packer::packer_360();
  std::printf("Packing %zu samples with the %s preset...\n", db.samples.size(),
              ps.vendor.c_str());

  std::map<std::string, dex::Apk> dh_out, as_out, lego_out;
  size_t pack_failures = 0;
  for (const suite::Sample& sample : db.samples) {
    auto packed = packer::pack(sample.apk, ps);
    if (!packed) {
      ++pack_failures;
      continue;
    }
    auto configure = [&sample](rt::Runtime& runtime) {
      packer::register_packer_natives(runtime);
      if (sample.configure_runtime) sample.configure_runtime(runtime);
    };
    unpackers::UnpackOptions uo;
    uo.configure_runtime = configure;
    dh_out.emplace(sample.name, unpackers::dexhunter_unpack(*packed, uo).unpacked);
    as_out.emplace(sample.name, unpackers::appspear_unpack(*packed, uo).unpacked);

    core::DexLegoOptions options;
    options.configure_runtime = configure;
    core::DexLego dexlego(options);
    lego_out.emplace(sample.name, dexlego.reveal(*packed).revealed_apk);
  }
  std::printf("packed/unpacked %zu samples (%zu failures)\n",
              db.samples.size() - pack_failures, pack_failures);

  const analysis::ToolConfig tools[] = {analysis::flowdroid_config(),
                                        analysis::droidsafe_config(),
                                        analysis::horndroid_config()};
  struct PaperRow { int dh_tp, dh_fp, lego_tp, lego_fp; };
  const std::map<std::string, PaperRow> paper = {
      {"FlowDroid", {84, 10, 95, 4}},
      {"DroidSafe", {98, 12, 105, 7}},
      {"HornDroid", {101, 9, 106, 4}},
  };

  bench::print_header("Table III: Analysis Result of Packed Samples");
  bench::print_row({"Tool", "DH TP/FP", "AS TP/FP", "DexLego TP/FP", "(paper)"},
                   {11, 12, 12, 15, 30});
  std::map<std::string, analysis::Classification> dh_cls, lego_cls;
  for (const analysis::ToolConfig& cfg : tools) {
    analysis::StaticAnalyzer analyzer(cfg);
    analysis::Classification dh, as_c, lego;
    for (const suite::Sample& sample : db.samples) {
      dh.add(sample.leaky, analyzer.analyze_apk(dh_out.at(sample.name)).leak_detected());
      as_c.add(sample.leaky,
               analyzer.analyze_apk(as_out.at(sample.name)).leak_detected());
      lego.add(sample.leaky,
               analyzer.analyze_apk(lego_out.at(sample.name)).leak_detected());
    }
    dh_cls[cfg.name] = dh;
    lego_cls[cfg.name] = lego;
    const PaperRow& p = paper.at(cfg.name);
    char note[96];
    std::snprintf(note, sizeof(note), "paper: DH/AS %d/%d, DexLego %d/%d",
                  p.dh_tp, p.dh_fp, p.lego_tp, p.lego_fp);
    char dh_s[24], as_s[24], lego_s[24];
    std::snprintf(dh_s, sizeof(dh_s), "%d/%d", dh.tp, dh.fp);
    std::snprintf(as_s, sizeof(as_s), "%d/%d", as_c.tp, as_c.fp);
    std::snprintf(lego_s, sizeof(lego_s), "%d/%d", lego.tp, lego.fp);
    bench::print_row({cfg.name, dh_s, as_s, lego_s, note}, {11, 12, 12, 15, 30});
  }

  bench::print_header("Fig. 5 (DexHunter/AppSpear series): F-Measures");
  for (const analysis::ToolConfig& cfg : tools) {
    std::printf("%-11s DexHunter/AppSpear %s -> DexLego %s\n", cfg.name.c_str(),
                bench::pct(dh_cls[cfg.name].f_measure()).c_str(),
                bench::pct(lego_cls[cfg.name].f_measure()).c_str());
  }
  std::printf("(paper: the DexHunter/AppSpear improvement over the original "
              "DEX is below 3%%)\n");
  return 0;
}
