// Reproduces Tables VI and VII: the five F-Droid apps' collection dump
// sizes after Sapienz-style fuzzing, and the coverage improvement from the
// force-execution module.
//
// Paper reference:
//   Table VI sizes: 47.26 KB / 771.81 KB / 2.40 MB / 1.55 MB / 3.18 MB for
//   8,812 / 29,231 / 56,565 / 57,575 / 93,913 instructions.
//   Table VII coverage: Sapienz 44/37/32/20/32% (class/method/line/branch/
//   instruction) -> Sapienz+DexLego(force) 87/88/82/78/82%.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/benchsuite/appgen.h"
#include "src/core/collector.h"
#include "src/core/files.h"
#include "src/coverage/force.h"
#include "src/coverage/fuzzer.h"
#include "src/dex/io.h"

using namespace dexlego;

namespace {
std::string human_size(size_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f KB", static_cast<double>(bytes) / 1024.0);
  }
  return buf;
}
}  // namespace

int main() {
  const char* paper_sizes[] = {"47.26 KB", "771.81 KB", "2.40 MB", "1.55 MB",
                               "3.18 MB"};
  std::vector<suite::AppSpec> specs = suite::fdroid_apps();

  bench::print_header("Table VI: Samples from F-Droid");
  bench::print_row({"Package", "# Insns", "Dump Size", "(paper insns/size)"},
                   {42, 10, 12, 24});

  coverage::CoverageTracker fuzz_total, force_total;
  std::vector<coverage::CoverageTracker::Report> fuzz_reports, force_reports;
  std::vector<dex::DexFile> files;

  for (size_t i = 0; i < specs.size(); ++i) {
    suite::GeneratedApp app = suite::generate_app(specs[i]);
    files.push_back(dex::read_dex(app.apk.classes()));

    // Sapienz-style fuzzing with the DexLego collector attached: the dump
    // files of Table VI are the collection output of the fuzzing phase.
    core::Collector collector;
    coverage::FuzzOptions fuzz_options;
    fuzz_options.seed = specs[i].seed * 97;
    fuzz_options.extra_hooks.push_back(&collector);
    coverage::FuzzResult fuzz = coverage::fuzz_app(app.apk, fuzz_options);
    core::CollectionFiles dump = core::encode_collection(collector.take_output());

    char paper_note[48];
    std::snprintf(paper_note, sizeof(paper_note), "%s", paper_sizes[i]);
    bench::print_row({specs[i].package, std::to_string(app.code_units),
                      human_size(dump.total_size()), paper_note},
                     {42, 10, 12, 24});

    fuzz_reports.push_back(fuzz.coverage.report(files[i]));

    // Force execution seeded with the fuzzing result (paper Fig. 4).
    coverage::ForceOptions force_options;
    force_options.run.configure_runtime = fuzz_options.configure_runtime;
    force_options.seed_sequence = fuzz.best;
    coverage::ForceResult forced =
        coverage::force_execute(app.apk, force_options, fuzz.coverage);
    force_reports.push_back(forced.coverage.report(files[i]));
  }

  auto average = [&](const std::vector<coverage::CoverageTracker::Report>& reports,
                     auto metric) {
    double sum = 0;
    for (const auto& r : reports) sum += metric(r);
    return sum / static_cast<double>(reports.size());
  };
  auto row = [&](const char* name,
                 const std::vector<coverage::CoverageTracker::Report>& reports,
                 const char* paper_note) {
    bench::print_row(
        {name,
         bench::pct(average(reports, [](const auto& r) { return r.class_pct(); })),
         bench::pct(average(reports, [](const auto& r) { return r.method_pct(); })),
         bench::pct(average(reports, [](const auto& r) { return r.line_pct(); })),
         bench::pct(average(reports, [](const auto& r) { return r.branch_pct(); })),
         bench::pct(average(reports,
                            [](const auto& r) { return r.instruction_pct(); })),
         paper_note},
        {20, 9, 9, 9, 9, 12, 30});
  };

  bench::print_header("Table VII: Code Coverage with F-Droid Applications");
  bench::print_row({"", "Class", "Method", "Line", "Branch", "Instruction",
                    "(paper)"},
                   {20, 9, 9, 9, 9, 12, 30});
  row("Sapienz", fuzz_reports, "44/37/32/20/32%");
  row("Sapienz + DexLego", force_reports, "87/88/82/78/82%");
  return 0;
}
